// Quickstart: index a handful of documents, run full-text queries with two
// different plug-in scoring schemes, and inspect the optimized plan.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "index/inverted_index.h"
#include "text/tokenizer.h"

int main() {
  // 1. Index some documents. The tokenizer fixes term positions; the index
  //    records them (full-text search reasons about positions, not bags of
  //    words).
  const std::vector<std::string> documents = {
      "Wine is a free software compatibility layer, not a windows emulator, "
      "that lets windows software run on unix like systems.",
      "The city of san francisco sits near a major fault line, and fault "
      "studies shape its building codes.",
      "This FOSS project ships a windows emulator with free software "
      "licensing for retro games.",
      "A dinosaur species list with an image or picture for every entry.",
      "Free wireless internet service is offered in the city library.",
  };

  graft::index::IndexBuilder builder;
  for (const std::string& doc : documents) {
    builder.AddDocumentStrings(graft::text::Tokenize(doc));
  }
  graft::index::InvertedIndex index = builder.Build();
  std::printf("indexed %llu documents, %zu terms, %llu words\n\n",
              static_cast<unsigned long long>(index.doc_count()),
              index.term_count(),
              static_cast<unsigned long long>(index.total_words()));

  // 2. Search. The query language is the paper's shorthand: juxtaposition
  //    is AND, '|' is OR, quotes are phrases, and positional predicates
  //    attach to groups.
  graft::core::Engine engine(&index);
  const std::string query =
      "(windows emulator)WINDOW[50] (foss | \"free software\")";

  for (const char* scheme : {"MeanSum", "BestSumMinDist"}) {
    auto result = engine.Search(query, scheme);
    if (!result.ok()) {
      std::printf("search failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("query: %s\nscheme: %s  (optimizations: %s)\n", query.c_str(),
                scheme, result->applied_optimizations.c_str());
    for (const graft::ma::ScoredDoc& hit : result->results) {
      std::printf("  doc %u  score %.4f\n", hit.doc, hit.score);
    }
    std::printf("\n");
  }

  // 3. EXPLAIN: the same query compiles to a different plan per scheme.
  auto explain = engine.Explain(query, "AnySum");
  if (explain.ok()) {
    std::printf("plan for AnySum (constant scheme: alternate elimination, "
                "pre-counting):\n%s\n", explain->c_str());
  }
  return 0;
}
