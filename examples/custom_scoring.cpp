// Plug-in scoring (the paper's desideratum 4): define a new scoring scheme
// by implementing the six SA operators and declaring a handful of
// algebraic properties — without knowing anything about the optimizer —
// and watch the optimizer adapt the plan to the declarations.
//
// The example defines two schemes with identical scoring formulas but
// different (honest) declarations, and prints the optimizations GRAFT
// selects for each.
//
// Build & run:  ./build/examples/custom_scoring

#include <cstdio>
#include <memory>

#include "core/engine.h"
#include "sa/weighting.h"
#include "text/corpus.h"

namespace {

// A recency-flavoured scheme: BM25 per cell, sum everywhere, and a
// finalizer that folds in a document-age prior (the paper's ω "also
// performs post-processing including incorporation of match-unrelated
// score components such as document age").
class FreshnessScheme : public graft::sa::ScoringScheme {
 public:
  FreshnessScheme(std::string name, graft::sa::SchemeProperties props)
      : name_(std::move(name)), props_(props) {}

  std::string_view name() const override { return name_; }
  const graft::sa::SchemeProperties& properties() const override {
    return props_;
  }

  graft::sa::InternalScore Init(const graft::sa::DocContext& doc,
                                const graft::sa::ColumnContext& col,
                                graft::Offset offset) const override {
    if (offset == graft::kEmptyOffset) {
      return graft::sa::InternalScore(0.0);
    }
    return graft::sa::InternalScore(graft::sa::Bm25(doc, col));
  }
  graft::sa::InternalScore Conj(
      const graft::sa::InternalScore& l,
      const graft::sa::InternalScore& r) const override {
    return graft::sa::InternalScore(l.a + r.a);
  }
  graft::sa::InternalScore Disj(
      const graft::sa::InternalScore& l,
      const graft::sa::InternalScore& r) const override {
    return graft::sa::InternalScore(l.a + r.a);
  }
  graft::sa::InternalScore Alt(
      const graft::sa::InternalScore& l,
      const graft::sa::InternalScore& r) const override {
    return graft::sa::InternalScore(l.a + r.a);
  }
  graft::sa::InternalScore Scale(const graft::sa::InternalScore& s,
                                 uint64_t k) const override {
    return graft::sa::InternalScore(s.a * static_cast<double>(k));
  }
  double Finalize(const graft::sa::DocContext& doc,
                  const graft::sa::QueryContext&,
                  const graft::sa::InternalScore& s) const override {
    // Pretend newer documents have higher ids: a mild recency prior.
    const double age_prior =
        1.0 + 0.1 * static_cast<double>(doc.doc) /
                  static_cast<double>(doc.collection_size + 1);
    return s.a * age_prior;
  }

 private:
  std::string name_;
  graft::sa::SchemeProperties props_;
};

}  // namespace

int main() {
  // Build a small synthetic corpus.
  graft::text::CorpusConfig config = graft::text::WikipediaLikeConfig(2000);
  graft::index::IndexBuilder builder;
  graft::text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  graft::index::InvertedIndex index = builder.Build();

  // Declare the same scoring formula twice, with different properties.
  graft::sa::SchemeProperties generous;
  generous.direction = graft::sa::Direction::kDiagonal;
  generous.alt = {true, true, true, false};
  generous.alt_multiplies = true;
  generous.conj = {true, true, true, false};
  generous.disj = {true, true, true, false};

  graft::sa::SchemeProperties conservative;  // declares almost nothing
  conservative.direction = graft::sa::Direction::kRowFirst;
  conservative.alt = {false, true, false, false};
  conservative.conj = {true, true, true, false};
  conservative.disj = {true, true, true, false};

  auto& registry = graft::sa::SchemeRegistry::Global();
  registry.Register(std::make_unique<FreshnessScheme>("FreshnessFull",
                                                      generous));
  registry.Register(
      std::make_unique<FreshnessScheme>("FreshnessConservative",
                                        conservative));

  graft::core::Engine engine(&index);
  const char* query = "free software (windows | foss)";

  std::printf("The optimizer adapts to the *declared* properties — same "
              "formula, different plans:\n\n");
  for (const char* scheme : {"FreshnessFull", "FreshnessConservative"}) {
    auto explain = engine.Explain(query, scheme);
    if (!explain.ok()) {
      std::printf("explain failed: %s\n", explain.status().ToString().c_str());
      return 1;
    }
    std::printf("--- %s ---\n%s\n", scheme, explain->c_str());
  }

  // Both declarations are score-consistent: identical results.
  auto full = engine.Search(query, "FreshnessFull");
  auto conservative_result = engine.Search(query, "FreshnessConservative");
  if (!full.ok() || !conservative_result.ok()) {
    std::printf("search failed\n");
    return 1;
  }
  std::printf("results agree: %s (%zu documents)\n",
              full->results.size() == conservative_result->results.size()
                  ? "yes"
                  : "NO",
              full->results.size());
  for (size_t i = 0; i < std::min<size_t>(5, full->results.size()); ++i) {
    std::printf("  #%zu doc %u  %.4f  vs  doc %u  %.4f\n", i + 1,
                full->results[i].doc, full->results[i].score,
                conservative_result->results[i].doc,
                conservative_result->results[i].score);
  }
  return 0;
}
