// Enterprise-search scenario (the paper's motivating domain: Westlaw,
// PubMed, patent and legal search): expert users issue precise positional
// queries and pick the ranking function that suits the task.
//
// Demonstrates:
//   * expressive positional predicates (WINDOW, PROXIMITY, DISTANCE, ORDER)
//     including a user-defined plug-in predicate (SAMESENTENCE),
//   * how different scoring schemes rank the same result set differently,
//   * top-k early-terminating execution (rank-join) where the gate allows.
//
// Build & run:  ./build/examples/enterprise_search

#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "exec/rank_join.h"
#include "mcalc/parser.h"
#include "text/corpus.h"

int main() {
  // A larger synthetic collection standing in for an enterprise corpus.
  graft::text::CorpusConfig config = graft::text::WikipediaLikeConfig(20000);
  graft::index::IndexBuilder builder;
  graft::text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  graft::index::InvertedIndex index = builder.Build();
  std::printf("corpus: %llu documents / %llu words / %zu terms\n\n",
              static_cast<unsigned long long>(index.doc_count()),
              static_cast<unsigned long long>(index.total_words()),
              index.term_count());

  // Register a plug-in positional predicate: both keywords in the same
  // simulated sentence (sentences approximated as 18-word segments).
  graft::mcalc::PredicateDef same_sentence;
  same_sentence.name = "SAMESENTENCE";
  same_sentence.min_vars = 2;
  same_sentence.max_vars = -1;
  same_sentence.num_params = 0;
  same_sentence.evaluator = [](std::span<const graft::Offset> positions,
                               std::span<const int64_t>) {
    if (positions.size() < 2) return true;
    const graft::Offset sentence = positions[0] / 18;
    for (const graft::Offset p : positions) {
      if (p / 18 != sentence) return false;
    }
    return true;
  };
  auto registered =
      graft::mcalc::PredicateRegistry::Global().Register(same_sentence);
  (void)registered;

  graft::core::Engine engine(&index);

  const char* queries[] = {
      // Regulatory research: all terms within a tight window.
      "arizona ((fishing | hunting) (rules | regulations))WINDOW[20]",
      // Prior-art style phrase + proximity.
      "\"free software\" (windows emulator)PROXIMITY[12]",
      // Plug-in predicate.
      "(wireless internet)SAMESENTENCE service",
      // Ordered mention: 'fault' before 'line' anywhere in the document.
      "(fault line)ORDER san",
  };

  for (const char* query : queries) {
    std::printf("== %s\n", query);
    for (const char* scheme : {"MeanSum", "BestSumMinDist", "EventModel"}) {
      auto result = engine.Search(query, scheme);
      if (!result.ok()) {
        std::printf("  %s: error %s\n", scheme,
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("  %-16s %4zu hits  [%s]\n", scheme,
                  result->results.size(),
                  result->applied_optimizations.c_str());
      for (size_t i = 0; i < std::min<size_t>(3, result->results.size());
           ++i) {
        std::printf("      doc %-6u %.4f\n", result->results[i].doc,
                    result->results[i].score);
      }
    }
    std::printf("\n");
  }

  // Top-k with early termination for an eligible scheme.
  auto query = graft::mcalc::ParseQuery("free software service");
  const graft::sa::ScoringScheme* lucene =
      graft::sa::SchemeRegistry::Global().Lookup("Lucene");
  graft::exec::TopKRankEngine rank_engine(&index, lucene);
  auto top = rank_engine.TopK(*query, 10);
  if (top.ok()) {
    const graft::exec::RankStats& stats = rank_engine.stats();
    std::printf("rank-join top-10 for 'free software service' (Lucene): "
                "scored %llu of %llu candidates before the threshold "
                "fired\n",
                static_cast<unsigned long long>(stats.candidates_scored),
                static_cast<unsigned long long>(stats.total_candidates));
    for (const graft::ma::ScoredDoc& hit : *top) {
      std::printf("  doc %-6u %.4f\n", hit.doc, hit.score);
    }
  }
  return 0;
}
