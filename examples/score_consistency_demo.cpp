// The paper's Section 2, as a runnable demo.
//
// Part 1 re-enacts the state-of-the-art failure: with scoring encapsulated
// inside relational operators (Botev et al.'s join-normalized SJ), the
// textbook selection-pushing rewrite changes the document's score.
//
// Part 2 runs the same query through GRAFT with the Join-Normalized
// scheme under several optimizer configurations: every plan produces the
// same score (Definition 1, score consistency).
//
// Build & run:  ./build/examples/score_consistency_demo

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "index/stats.h"
#include "text/tokenizer.h"

namespace {

// Document d_w from the paper (Figure 1): 'free'@3, 'software'@{4,32,180,
// 189}, 'windows'@{27,42,144,187}, 'emulator'@64, 'foss'@179; 207 words.
graft::index::InvertedIndex BuildWineIndex() {
  std::vector<std::string> tokens(207);
  for (size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = "w" + std::to_string(i);
  }
  tokens[3] = "free";
  for (const size_t p : {4, 32, 180, 189}) tokens[p] = "software";
  for (const size_t p : {27, 42, 144, 187}) tokens[p] = "windows";
  tokens[64] = "emulator";
  tokens[179] = "foss";
  graft::index::IndexBuilder builder;
  builder.AddDocumentStrings(tokens);
  return builder.Build();
}

// The encapsulated evaluation of Q1 over d_w, with SJ(mL, mR) =
// mL.s/|M_R| + mR.s/|M_L| applied inside the joins. `push_selection`
// chooses between the paper's Plan 1 and Plan 2.
double EncapsulatedScore(bool push_selection) {
  struct M {
    graft::Offset free_pos, software_pos;
    double score;
  };
  const graft::Offset software[] = {4, 32, 180, 189};
  // J1: free(3) ⋈ software: free's score 1 distributes over 4 outputs,
  // each software tuple's score 1 distributes over 1.
  std::vector<M> j1;
  for (const graft::Offset s : software) {
    j1.push_back(M{3, s, 1.0 / 4 + 1.0 / 1});
  }
  if (push_selection) {
    // Plan 2: σ DISTANCE=1 pushed below J2.
    std::vector<M> selected;
    for (const M& m : j1) {
      if (m.software_pos - m.free_pos == 1) selected.push_back(m);
    }
    j1 = selected;
  }
  // J2: emulator(64) joins the remaining tuples.
  double doc_score = 0.0;
  for (const M& m : j1) {
    const double joined =
        1.0 / static_cast<double>(j1.size()) + m.score / 1.0;
    if (push_selection || m.software_pos - m.free_pos == 1) {
      doc_score += joined;  // Plan 1 applies σ here, after the join.
    }
  }
  return doc_score;
}

}  // namespace

int main() {
  std::printf("Part 1 — encapsulated scoring (state of the art)\n");
  std::printf("  query Q1: emulator ∧ 'free' immediately before "
              "'software'\n");
  const double plan1 = EncapsulatedScore(/*push_selection=*/false);
  const double plan2 = EncapsulatedScore(/*push_selection=*/true);
  std::printf("  Plan 1 (σ after joins):   score(d_w) = %.4f\n", plan1);
  std::printf("  Plan 2 (σ pushed):        score(d_w) = %.4f\n", plan2);
  std::printf("  => the textbook rewrite changed the score by %.4f — the\n"
              "     optimizer must disable selection pushing for this\n"
              "     scoring function, or give up score consistency.\n\n",
              plan2 - plan1);

  std::printf("Part 2 — GRAFT (score-isolated model)\n");
  graft::index::InvertedIndex index = BuildWineIndex();
  graft::core::Engine engine(&index);
  const char* query = "emulator \"free software\"";

  struct Config {
    const char* label;
    bool push;
    bool eager;
  };
  const Config configs[] = {
      {"canonical (no rewrites)", false, false},
      {"selection pushing", true, false},
      {"selection pushing + eager aggregation", true, true},
  };
  for (const Config& config : configs) {
    graft::core::SearchOptions options;
    options.optimizer.push_selections = config.push;
    options.optimizer.eager_aggregation = config.eager;
    options.optimizer.eager_counting = config.eager;
    options.optimizer.pre_counting = config.eager;
    auto result = engine.Search(query, "JoinNormalized", options);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-40s score(d_w) = %.6f\n", config.label,
                result->results.empty() ? 0.0 : result->results[0].score);
  }
  std::printf("  => same score under every optimizer configuration: the\n"
              "     scoring functions are standalone aggregates over the\n"
              "     match table, so matching rewrites cannot perturb "
              "them.\n");
  return 0;
}
