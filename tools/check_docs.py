#!/usr/bin/env python3
"""Docs drift lint for the GRAFT repo.

Fails (exit 1) when the reference pages under docs/ fall behind the code:

  * every top-level subdirectory of src/ must be mentioned (as "src/<name>")
    in docs/architecture.md;
  * every Prometheus metric name exported by src/server/server_stats.cc and
    src/server/search_service.cc (any "graft_..." name inside a string
    literal) must appear in docs/operations.md;
  * every command-line flag graft_server parses (arg == "--flag" in
    tools/graft_server.cc) must appear in docs/operations.md;
  * likewise for the router: every "graft_..." metric name in
    src/router/router_service.cc and every flag graft_router parses must
    appear in docs/distributed.md;
  * docs/index-format.md (the normative on-disk spec) must agree with
    src/index/index_format.h: every kFmt* constant's value, every
    FmtV5Section enum entry at its index, both struct sizes asserted by
    static_assert, and every on-disk struct field name;
  * every relative markdown link in README.md, DESIGN.md, EXPERIMENTS.md
    and docs/*.md must resolve to an existing file.

`--self-test` proves the lint actually bites: it re-runs every check on
deliberately broken inputs and fails if any breakage goes undetected.
CI runs both modes.
"""

import argparse
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

METRIC_SOURCES = ("src/server/server_stats.cc", "src/server/search_service.cc")
FLAG_SOURCE = "tools/graft_server.cc"
ROUTER_METRIC_SOURCES = ("src/router/router_service.cc",)
ROUTER_FLAG_SOURCE = "tools/graft_router.cc"
LINKED_DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md")


def read(path):
    with open(os.path.join(REPO, path), encoding="utf-8") as f:
        return f.read()


# ---- check 1: architecture page covers every src/ subdirectory -----------


def src_subdirs(repo=REPO):
    root = os.path.join(repo, "src")
    return sorted(
        name
        for name in os.listdir(root)
        if os.path.isdir(os.path.join(root, name))
    )


def check_architecture(arch_text, subdirs):
    errors = []
    for name in subdirs:
        if f"src/{name}" not in arch_text:
            errors.append(
                f"docs/architecture.md does not mention src/{name} — every "
                "src/ subsystem needs at least a pointer paragraph"
            )
    return errors


# ---- check 2: operations page lists every exported metric ----------------


def quoted_segments(source_text):
    # String literals only: a metric name in a comment ("graft_-prefixed")
    # or an identifier (graft_server) must not count as an exported metric.
    return re.findall(r'"([^"\\]*(?:\\.[^"\\]*)*)"', source_text)


def exported_metrics(source_texts):
    names = set()
    for text in source_texts:
        for segment in quoted_segments(text):
            names.update(re.findall(r"\bgraft_[a-z][a-z0-9_]*", segment))
    return sorted(names)


def check_metrics(ops_text, metric_names, page="docs/operations.md"):
    return [
        f"{page} does not document exported metric {name}"
        for name in metric_names
        if name not in ops_text
    ]


# ---- check 3: operations page lists every graft_server flag --------------


def server_flags(flag_source_text):
    return sorted(set(re.findall(r'arg == "(--[a-z][a-z-]*)"', flag_source_text)))


def check_flags(ops_text, flags, page="docs/operations.md", binary="graft_server"):
    return [
        f"{page} does not document {binary} flag {flag}"
        for flag in flags
        if f"`{flag}" not in ops_text and f"| {flag}" not in ops_text
        and flag not in ops_text
    ]


# ---- check 4: index-format spec mirrors index_format.h -------------------

FORMAT_HEADER = "src/index/index_format.h"
FORMAT_DOC = "docs/index-format.md"


def format_facts(header_text):
    """Extract the layout facts the spec page must quote verbatim."""
    facts = {
        # ('kFmtVersionV3', '3') ...
        "versions": re.findall(
            r"(kFmtVersionV\d)\s*=\s*'(\d)'", header_text
        ),
        # ('kFmtV5SectionCount', '7'), ('kFmtV5BlockSize', '128')
        "numeric": re.findall(
            r"(kFmtV5SectionCount|kFmtV5BlockSize)\s*=\s*(\d+)", header_text
        ),
        # ('BlockHeaderV5', '16'), ('TermMetaV5', '48')
        "sizes": re.findall(
            r"static_assert\(sizeof\((\w+)\)\s*==\s*(\d+)", header_text
        ),
        "sections": [],
        "fields": [],
    }
    enum = re.search(r"enum class FmtV5Section[^{]*\{(.*?)\}", header_text,
                     re.DOTALL)
    if enum:
        facts["sections"] = re.findall(r"(k\w+)\s*=\s*(\d+)", enum.group(1))
    for struct in re.finditer(r"struct (\w+V5)\s*\{(.*?)\};", header_text,
                              re.DOTALL):
        for field in re.findall(r"^\s*u?int\d+_t\s+(\w+)\s*;",
                                struct.group(2), re.MULTILINE):
            facts["fields"].append((struct.group(1), field))
    return facts


def check_format_spec(spec_text, facts):
    errors = []
    doc = FORMAT_DOC
    if "GRFTIDX" not in spec_text:
        errors.append(f"{doc} does not state the magic string GRFTIDX")
    for name, char in facts["versions"]:
        if f"`{name}` | `'{char}'`" not in spec_text:
            errors.append(
                f"{doc} does not list {name} = '{char}' in the version table"
            )
    for name, value in facts["numeric"]:
        if f"`{name}` | {value}" not in spec_text:
            errors.append(f"{doc} does not list {name} = {value}")
    for name, size in facts["sizes"]:
        if f"`{name}` | {size} bytes" not in spec_text:
            errors.append(
                f"{doc} does not state sizeof({name}) == {size} bytes"
            )
    for name, index in facts["sections"]:
        if f"| {index} | `{name}` |" not in spec_text:
            errors.append(
                f"{doc} does not document section {name} at index {index}"
            )
    for struct, field in facts["fields"]:
        if f"`{field}`" not in spec_text:
            errors.append(
                f"{doc} does not document {struct} field {field}"
            )
    return errors


# ---- check 5: relative markdown links resolve ----------------------------

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links(doc_path, text, repo=REPO):
    errors = []
    base = os.path.dirname(os.path.join(repo, doc_path))
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not os.path.exists(os.path.normpath(os.path.join(base, path))):
            errors.append(f"{doc_path}: broken relative link -> {target}")
    return errors


# ---- driver --------------------------------------------------------------


def docs_to_link_check(repo=REPO):
    docs = [p for p in LINKED_DOCS if os.path.exists(os.path.join(repo, p))]
    docs_dir = os.path.join(repo, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md"):
            docs.append(os.path.join("docs", name))
    return docs


def run_checks():
    arch = read("docs/architecture.md")
    ops = read("docs/operations.md")
    dist = read("docs/distributed.md")
    errors = []
    errors += check_architecture(arch, src_subdirs())
    errors += check_metrics(ops, exported_metrics(read(p) for p in METRIC_SOURCES))
    errors += check_flags(ops, server_flags(read(FLAG_SOURCE)))
    errors += check_metrics(
        dist,
        exported_metrics(read(p) for p in ROUTER_METRIC_SOURCES),
        page="docs/distributed.md",
    )
    errors += check_flags(
        dist,
        server_flags(read(ROUTER_FLAG_SOURCE)),
        page="docs/distributed.md",
        binary="graft_router",
    )
    errors += check_format_spec(read(FORMAT_DOC), format_facts(read(FORMAT_HEADER)))
    for doc in docs_to_link_check():
        errors += check_links(doc, read(doc))
    return errors


def self_test():
    """Every check must flag a deliberately broken input (negative test)."""
    failures = []

    arch = read("docs/architecture.md")
    mutated = arch.replace("src/exec", "src/(redacted)")
    if not check_architecture(mutated, src_subdirs()):
        failures.append("architecture check missed a removed src/exec mention")
    if check_architecture(arch, src_subdirs()):
        failures.append("architecture check fails on the real docs")

    ops = read("docs/operations.md")
    mutated = ops.replace("graft_requests_total", "graft_requests_renamed")
    metrics = exported_metrics(read(p) for p in METRIC_SOURCES)
    if "graft_requests_total" not in metrics:
        failures.append("metric extraction lost graft_requests_total")
    if not check_metrics(mutated, metrics):
        failures.append("metrics check missed a removed metric row")
    if check_metrics(ops, metrics):
        failures.append("metrics check fails on the real docs")

    flags = server_flags(read(FLAG_SOURCE))
    if "--slow-query-ms" not in flags:
        failures.append("flag extraction lost --slow-query-ms")
    mutated = ops.replace("--slow-query-ms", "--renamed-flag")
    if not check_flags(mutated, flags):
        failures.append("flags check missed a removed flag row")
    if check_flags(ops, flags):
        failures.append("flags check fails on the real docs")

    dist = read("docs/distributed.md")
    router_metrics = exported_metrics(read(p) for p in ROUTER_METRIC_SOURCES)
    if "graft_router_gathers_total" not in router_metrics:
        failures.append("metric extraction lost graft_router_gathers_total")
    mutated = dist.replace(
        "graft_router_gathers_total", "graft_router_gathers_renamed"
    )
    if not check_metrics(mutated, router_metrics, page="docs/distributed.md"):
        failures.append("router metrics check missed a removed metric row")
    if check_metrics(dist, router_metrics, page="docs/distributed.md"):
        failures.append("router metrics check fails on the real docs")

    router_flags = server_flags(read(ROUTER_FLAG_SOURCE))
    if "--hedge-ms" not in router_flags:
        failures.append("flag extraction lost --hedge-ms")
    mutated = dist.replace("--hedge-ms", "--renamed-flag")
    if not check_flags(
        mutated, router_flags, page="docs/distributed.md", binary="graft_router"
    ):
        failures.append("router flags check missed a removed flag row")
    if check_flags(
        dist, router_flags, page="docs/distributed.md", binary="graft_router"
    ):
        failures.append("router flags check fails on the real docs")

    spec = read(FORMAT_DOC)
    facts = format_facts(read(FORMAT_HEADER))
    if ("kFmtV5BlockSize", "128") not in facts["numeric"]:
        failures.append("format fact extraction lost kFmtV5BlockSize = 128")
    if ("BlockHeaderV5", "16") not in facts["sizes"]:
        failures.append("format fact extraction lost sizeof(BlockHeaderV5)")
    if ("kPayload", "4") not in facts["sections"]:
        failures.append("format fact extraction lost section kPayload = 4")
    if ("BlockHeaderV5", "last_doc") not in facts["fields"]:
        failures.append("format fact extraction lost BlockHeaderV5.last_doc")
    mutated = spec.replace("`kFmtV5BlockSize` | 128", "`kFmtV5BlockSize` | 256")
    if not check_format_spec(mutated, facts):
        failures.append("format check missed a wrong kFmtV5BlockSize value")
    mutated = spec.replace("| 4 | `kPayload` |", "| 4 | `kRenamed` |")
    if not check_format_spec(mutated, facts):
        failures.append("format check missed a renamed section row")
    mutated = spec.replace("`last_doc`", "`renamed_doc`")
    if not check_format_spec(mutated, facts):
        failures.append("format check missed a removed struct field")
    if check_format_spec(spec, facts):
        failures.append("format check fails on the real docs")

    broken = "see [the docs](docs/definitely-not-a-real-file.md) for more"
    if not check_links("README.md", broken):
        failures.append("link check missed a broken relative link")
    ok = "see [the index](src/index/index_io.h) and [web](https://x.test/)"
    if check_links("README.md", ok):
        failures.append("link check flags a valid link")

    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify each check detects deliberately broken input",
    )
    args = parser.parse_args()

    problems = self_test() if args.self_test else run_checks()
    label = "self-test" if args.self_test else "docs lint"
    for problem in problems:
        print(f"check_docs: {problem}", file=sys.stderr)
    if problems:
        print(f"check_docs: {label} FAILED ({len(problems)} problems)",
              file=sys.stderr)
        return 1
    print(f"check_docs: {label} ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
