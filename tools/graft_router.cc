// graft_router — score-consistent scatter-gather front end over N
// graft_server shards.
//
//   graft_router --shard PORT[,PORT...] [--shard ...] [--port N]
//                [--policy fail|partial] [--max-attempts N]
//                [--hedge-ms N] [--deadline-ms N] [--threads N]
//                [--max-inflight N] [--eject-after N] [--probe-ms N]
//
//   --shard P[,P...]  one shard per flag, in global doc-id order (the
//                     corpus split is contiguous: shard 0's documents come
//                     first). Comma-separated ports are replicas of the
//                     same shard (required, at least one)
//   --port N          listen port on 127.0.0.1 (default 8090; 0 =
//                     ephemeral, printed on startup)
//   --policy P        partial-result policy when shards fail: "partial"
//                     (default) serves a degraded 200 with per-shard
//                     outcomes; "fail" answers 502 instead
//   --max-attempts N  attempts per shard request across replicas
//                     (default 3)
//   --hedge-ms N      send a hedged second request to a shard that has not
//                     answered after N ms (default 0 = disabled)
//   --deadline-ms N   default per-request budget (default 2000)
//   --threads N       handler pool workers (default 0 = hardware
//                     concurrency)
//   --max-inflight N  admission cap; connections beyond it get 503
//                     (default 64)
//   --eject-after N   consecutive failures that eject a replica
//                     (default 3)
//   --probe-ms N      ejected-replica readmission probe cadence
//                     (default 200)
//
// Endpoints: GET /search, /stats, /metrics, /healthz — see
// docs/distributed.md for the stats-epoch protocol and the partial-result
// policy table.
//
// SIGINT/SIGTERM drain and exit 0. GRAFT_FAILPOINTS is honored (the
// router.client.* failpoints inject wire faults into the shard client).

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/request.h"
#include "router/router_service.h"
#include "text/structure.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: graft_router --shard PORT[,PORT...] [--shard ...]\n"
      "                    [--port N] [--policy fail|partial]\n"
      "                    [--max-attempts N] [--hedge-ms N]\n"
      "                    [--deadline-ms N] [--threads N]\n"
      "                    [--max-inflight N] [--eject-after N]\n"
      "                    [--probe-ms N]\n");
  return 2;
}

int Fail(const graft::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// "8081,8082" -> replica port list for one shard.
graft::StatusOr<std::vector<uint16_t>> ParseShardSpec(
    const std::string& spec) {
  std::vector<uint16_t> ports;
  size_t begin = 0;
  while (begin <= spec.size()) {
    const size_t comma = spec.find(',', begin);
    const std::string piece =
        spec.substr(begin, comma == std::string::npos ? std::string::npos
                                                      : comma - begin);
    GRAFT_ASSIGN_OR_RETURN(const size_t port,
                           graft::core::ParseCount(piece, "--shard port"));
    if (port == 0 || port > 65535) {
      return graft::Status::InvalidArgument(
          "--shard ports must be in [1, 65535]");
    }
    ports.push_back(static_cast<uint16_t>(port));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  (void)graft::text::RegisterStructuralPredicates();
  {
    const graft::Status activated =
        graft::common::FailpointRegistry::Global().ActivateFromEnv();
    if (!activated.ok()) return Fail(activated);
  }

  size_t port = 8090;
  std::vector<std::vector<uint16_t>> shard_replicas;
  graft::router::RouterOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i + 1 >= argc) return Usage();
    const std::string value = argv[++i];
    if (arg == "--shard") {
      auto ports = ParseShardSpec(value);
      if (!ports.ok()) return Fail(ports.status());
      shard_replicas.push_back(std::move(*ports));
      continue;
    }
    if (arg == "--policy") {
      if (value == "fail") {
        options.gather.partial_policy = graft::router::PartialPolicy::kFail;
      } else if (value == "partial") {
        options.gather.partial_policy =
            graft::router::PartialPolicy::kPartial;
      } else {
        return Fail(graft::Status::InvalidArgument(
            "--policy must be \"fail\" or \"partial\""));
      }
      continue;
    }
    auto parsed = graft::core::ParseCount(value, arg);
    if (!parsed.ok()) return Fail(parsed.status());
    if (arg == "--port") {
      if (*parsed > 65535) {
        return Fail(
            graft::Status::InvalidArgument("--port must be <= 65535"));
      }
      port = *parsed;
    } else if (arg == "--max-attempts") {
      if (*parsed == 0) {
        return Fail(graft::Status::InvalidArgument(
            "--max-attempts must be > 0"));
      }
      options.gather.client.max_attempts = *parsed;
    } else if (arg == "--hedge-ms") {
      options.gather.hedge_ms = *parsed;
    } else if (arg == "--deadline-ms") {
      options.default_deadline_ms = *parsed;
    } else if (arg == "--threads") {
      options.handler_threads = *parsed;
    } else if (arg == "--max-inflight") {
      if (*parsed == 0) {
        return Fail(graft::Status::InvalidArgument(
            "--max-inflight must be > 0"));
      }
      options.max_inflight = *parsed;
    } else if (arg == "--eject-after") {
      if (*parsed == 0) {
        return Fail(graft::Status::InvalidArgument(
            "--eject-after must be > 0"));
      }
      options.gather.client.eject_after = static_cast<uint32_t>(*parsed);
    } else if (arg == "--probe-ms") {
      if (*parsed == 0) {
        return Fail(
            graft::Status::InvalidArgument("--probe-ms must be > 0"));
      }
      options.gather.probe_interval_ms = *parsed;
    } else {
      return Usage();
    }
  }
  if (shard_replicas.empty()) return Usage();
  options.port = static_cast<uint16_t>(port);

  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  if (pthread_sigmask(SIG_BLOCK, &mask, nullptr) != 0) {
    return Fail(graft::Status::Internal("pthread_sigmask failed"));
  }

  graft::router::RouterService service(std::move(shard_replicas), options);
  const graft::Status started = service.Start();
  if (!started.ok()) return Fail(started);
  std::fprintf(
      stderr,
      "graft_router listening on 127.0.0.1:%u (%zu shard(s), policy=%s, "
      "hedge_ms=%llu, max_inflight=%zu)\n",
      service.port(), service.gather().shard_count(),
      options.gather.partial_policy == graft::router::PartialPolicy::kFail
          ? "fail"
          : "partial",
      static_cast<unsigned long long>(options.gather.hedge_ms),
      options.max_inflight);
  std::fflush(stderr);

  int signal_number = 0;
  if (sigwait(&mask, &signal_number) != 0) {
    return Fail(graft::Status::Internal("sigwait failed"));
  }
  std::fprintf(stderr, "received %s; draining...\n",
               strsignal(signal_number));
  service.Shutdown();
  std::fprintf(stderr, "drained; bye\n");
  return 0;
}
