// graft_cli — index text files and search them from the command line.
//
//   graft_cli index [--format v4|v5] <index-file> <text-file>...
//     build an index; v5 (default) writes delta-encoded bit-packed
//     posting blocks that graft_server can mmap (--mmap-index), v4 the
//     uncompressed arrays
//   graft_cli search <index-file> <scheme> <query>   ranked search
//   graft_cli explain <index-file> <scheme> <query>  show the plan
//     explain prints the optimized plan, the full rewrite-attempt table
//     (every catalog optimization with its gate verdict), and the
//     cost-model estimate; with --analyze it also EXECUTES the query and
//     prints the measured per-operator counters plus the span trace
//     (EXPLAIN ANALYZE).
//   graft_cli schemes                                 list schemes
//   graft_cli rules [--ids] [scheme]                  rewrite-rule catalog
//     prints the declarative catalog (pattern, transform, required SA
//     properties); --ids emits one rule id per line for scripting, and a
//     scheme name adds that scheme's per-rule gate verdict.
//
// search accepts two parallel-execution flags (before or after the
// positional arguments):
//   --segments N   partition the index into N segments at load time and
//                  execute the query segment-parallel (default 1)
//   --threads N    total worker threads for segment execution; 0 means
//                  hardware concurrency, 1 means serial (default 0)
//
// Each input file becomes one document; tokenization is sentence- and
// paragraph-aware, so SAMESENTENCE / SAMEPARAGRAPH predicates work.
//
// Example:
//   ./graft_cli index /tmp/docs.idx docs/*.txt
//   ./graft_cli search /tmp/docs.idx MeanSum \
//       '(windows emulator)WINDOW[50] (foss | "free software")'

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/engine.h"
#include "core/request.h"
#include "core/rewrite_rules.h"
#include "index/index_io.h"
#include "sa/property_checker.h"
#include "text/structure.h"

namespace {

int Fail(const graft::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdIndex(int argc, char** argv) {
  // --format v4 writes the materialized array format; v5 (the default)
  // writes delta-encoded bit-packed blocks that load mmap-ed.
  std::string format = "v5";
  std::vector<char*> positional;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 2 || (format != "v4" && format != "v5")) {
    std::fprintf(stderr,
                 "usage: graft_cli index [--format v4|v5] <index-file> "
                 "<file>...\n");
    return 2;
  }
  const std::string output = positional[0];
  graft::index::IndexBuilder builder;
  for (size_t i = 1; i < positional.size(); ++i) {
    std::ifstream in(positional[i]);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", positional[i]);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const graft::text::StructuredDocument doc =
        graft::text::TokenizeStructured(text.str());
    std::vector<std::string_view> tokens;
    std::vector<graft::Offset> offsets;
    tokens.reserve(doc.tokens.size());
    offsets.reserve(doc.tokens.size());
    for (const graft::text::PositionedToken& token : doc.tokens) {
      tokens.emplace_back(token.text);
      offsets.push_back(token.offset);
    }
    const graft::DocId id = builder.AddDocumentPositioned(tokens, offsets);
    std::printf("doc %u <- %s (%zu tokens, %u sentences, %u paragraphs)\n",
                id, positional[i], tokens.size(), doc.sentence_count,
                doc.paragraph_count);
  }
  graft::index::InvertedIndex index = builder.Build();
  const graft::Status saved =
      format == "v5" ? graft::index::SaveIndexV5(index, output)
                     : graft::index::SaveIndex(index, output);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %s (%s): %llu docs, %zu terms, %llu words\n",
              output.c_str(), format.c_str(),
              static_cast<unsigned long long>(index.doc_count()),
              index.term_count(),
              static_cast<unsigned long long>(index.total_words()));
  return 0;
}

int CmdSearchOrExplain(bool explain, int argc, char** argv) {
  size_t segments = 1;
  size_t threads = 0;
  bool analyze = false;
  std::vector<const char*> positional;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--segments" || arg == "--threads") && i + 1 < argc) {
      auto value = graft::core::ParseCount(argv[++i], arg);
      if (!value.ok()) return Fail(value.status());
      (arg == "--segments" ? segments : threads) = *value;
    } else if (arg == "--analyze" && explain) {
      analyze = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 3) {
    std::fprintf(stderr,
                 "usage: graft_cli %s [--segments N] [--threads N]%s "
                 "<index-file> <scheme> <query>\n",
                 explain ? "explain" : "search",
                 explain ? " [--analyze]" : "");
    return 2;
  }
  const char* index_file = positional[0];

  // The engine pool plus the calling thread together provide `threads`
  // workers (0 → hardware concurrency).
  const size_t pool_threads =
      threads == 0 ? 0 : std::max<size_t>(1, threads - 1);
  auto bundle =
      graft::core::LoadEngineBundle(index_file, segments, pool_threads);
  if (!bundle.ok()) return Fail(bundle.status());

  graft::core::SearchRequestParams params;
  params.scheme = positional[1];
  params.query = positional[2];
  params.num_threads = threads;

  if (explain) {
    // --analyze executes the query with the user's partitioning so the
    // measured counters describe the real segmented run.
    graft::core::SearchOptions explain_options;
    explain_options.num_threads = threads;
    auto plan = analyze
                    ? bundle->engine->ExplainAnalyze(
                          params.query, params.scheme, explain_options)
                    : bundle->engine->Explain(params.query, params.scheme);
    if (!plan.ok()) return Fail(plan.status());
    std::fputs(plan->c_str(), stdout);
    return 0;
  }
  auto resolved = graft::core::ResolveRequest(*bundle->engine, params);
  if (!resolved.ok()) return Fail(resolved.status());
  auto result = bundle->engine->SearchQuery(resolved->query, *resolved->scheme,
                                            resolved->options);
  if (!result.ok()) return Fail(result.status());
  std::printf("%zu documents  [%s]  (%zu segment%s)\n",
              result->results.size(), result->applied_optimizations.c_str(),
              result->segments_searched,
              result->segments_searched == 1 ? "" : "s");
  for (const graft::ma::ScoredDoc& hit : result->results) {
    std::printf("  doc %-8u %.6f\n", hit.doc, hit.score);
  }
  return 0;
}

// `rules` prints the declarative rewrite catalog; `rules --ids` prints one
// id per line for scripting (CI iterates these as GRAFT_FUZZ_RULE values).
// With a scheme name, each rule additionally shows that scheme's gate
// verdict.
int CmdRules(int argc, char** argv) {
  bool ids_only = false;
  const char* scheme_name = nullptr;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ids") {
      ids_only = true;
    } else if (scheme_name == nullptr) {
      scheme_name = argv[i];
    } else {
      std::fprintf(stderr, "usage: graft_cli rules [--ids] [scheme]\n");
      return 2;
    }
  }
  const graft::core::RewriteRuleRegistry& registry =
      graft::core::RewriteRuleRegistry::Global();
  if (ids_only) {
    for (const graft::core::RewriteRule& rule : registry.All()) {
      std::printf("%s\n", rule.id.c_str());
    }
    return 0;
  }
  const graft::sa::ScoringScheme* scheme = nullptr;
  if (scheme_name != nullptr) {
    scheme = graft::sa::SchemeRegistry::Global().Lookup(scheme_name);
    if (scheme == nullptr) {
      std::fprintf(stderr, "unknown scheme: %s\n", scheme_name);
      return 1;
    }
  }
  std::printf("rewrite-rule catalog (%zu rules):\n", registry.All().size());
  for (const graft::core::RewriteRule& rule : registry.All()) {
    std::printf("  %-22s [%s]\n", rule.id.c_str(),
                rule.stage == graft::core::RuleStage::kPlan ? "plan"
                                                            : "execution");
    std::printf("    matches:    %s\n", rule.pattern.c_str());
    std::printf("    rewrite to: %s\n", rule.transform.c_str());
    if (rule.requirements.empty()) {
      std::printf("    requires:   nothing (always score-consistent)\n");
    } else {
      std::string requires_line;
      for (const graft::core::PropertyRequirement& req : rule.requirements) {
        if (!requires_line.empty()) requires_line += ", ";
        requires_line += req.name;
      }
      std::printf("    requires:   %s\n", requires_line.c_str());
    }
    if (scheme != nullptr) {
      const graft::core::GateDecision decision =
          rule.Explain(scheme->properties());
      std::printf("    %s:  %s: %s\n", std::string(scheme->name()).c_str(),
                  decision.valid ? "licensed" : "blocked",
                  decision.reason.c_str());
    }
  }
  return 0;
}

int CmdSchemes() {
  std::printf("registered scoring schemes:\n");
  for (const graft::sa::ScoringScheme* scheme :
       graft::sa::SchemeRegistry::Global().All()) {
    const graft::sa::SchemeProperties& props = scheme->properties();
    std::printf("  %-16s %s%s%s\n", std::string(scheme->name()).c_str(),
                graft::sa::DirectionName(props.direction).c_str(),
                props.positional ? ", positional" : "",
                props.constant ? ", constant" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  graft::Status structural =
      graft::text::RegisterStructuralPredicates();
  (void)structural;
  // Honor GRAFT_FAILPOINTS ("name=action[@N];...") so chaos scripts can
  // inject faults into any CLI run. A bad spec fails fast — including in
  // failpoints-off builds, where every named site is NotFound rather than
  // silently inert.
  {
    const graft::Status activated =
        graft::common::FailpointRegistry::Global().ActivateFromEnv();
    if (!activated.ok()) {
      std::fprintf(stderr, "error: %s\n", activated.ToString().c_str());
      return 2;
    }
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: graft_cli <index|search|explain|schemes|rules> "
                 "...\n");
    return 2;
  }
  const std::string command = argv[1];
  if (command == "index") return CmdIndex(argc - 2, argv + 2);
  if (command == "search") return CmdSearchOrExplain(false, argc - 2, argv + 2);
  if (command == "explain") return CmdSearchOrExplain(true, argc - 2, argv + 2);
  if (command == "schemes") return CmdSchemes();
  if (command == "rules") return CmdRules(argc - 2, argv + 2);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}
