// graft_cli — index text files and search them from the command line.
//
//   graft_cli index  <index-file> <text-file>...     build an index
//   graft_cli search <index-file> <scheme> <query>   ranked search
//   graft_cli explain <index-file> <scheme> <query>  show the plan
//   graft_cli schemes                                 list schemes
//
// Each input file becomes one document; tokenization is sentence- and
// paragraph-aware, so SAMESENTENCE / SAMEPARAGRAPH predicates work.
//
// Example:
//   ./graft_cli index /tmp/docs.idx docs/*.txt
//   ./graft_cli search /tmp/docs.idx MeanSum \
//       '(windows emulator)WINDOW[50] (foss | "free software")'

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "index/index_io.h"
#include "sa/property_checker.h"
#include "text/structure.h"

namespace {

int Fail(const graft::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdIndex(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: graft_cli index <index-file> <file>...\n");
    return 2;
  }
  const std::string output = argv[0];
  graft::index::IndexBuilder builder;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const graft::text::StructuredDocument doc =
        graft::text::TokenizeStructured(text.str());
    std::vector<std::string_view> tokens;
    std::vector<graft::Offset> offsets;
    tokens.reserve(doc.tokens.size());
    offsets.reserve(doc.tokens.size());
    for (const graft::text::PositionedToken& token : doc.tokens) {
      tokens.emplace_back(token.text);
      offsets.push_back(token.offset);
    }
    const graft::DocId id = builder.AddDocumentPositioned(tokens, offsets);
    std::printf("doc %u <- %s (%zu tokens, %u sentences, %u paragraphs)\n",
                id, argv[i], tokens.size(), doc.sentence_count,
                doc.paragraph_count);
  }
  graft::index::InvertedIndex index = builder.Build();
  const graft::Status saved = graft::index::SaveIndex(index, output);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %s: %llu docs, %zu terms, %llu words\n", output.c_str(),
              static_cast<unsigned long long>(index.doc_count()),
              index.term_count(),
              static_cast<unsigned long long>(index.total_words()));
  return 0;
}

int CmdSearchOrExplain(bool explain, int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: graft_cli %s <index-file> <scheme> <query>\n",
                 explain ? "explain" : "search");
    return 2;
  }
  auto loaded = graft::index::LoadIndex(argv[0]);
  if (!loaded.ok()) return Fail(loaded.status());
  graft::core::Engine engine(&*loaded);

  if (explain) {
    auto plan = engine.Explain(argv[2], argv[1]);
    if (!plan.ok()) return Fail(plan.status());
    std::fputs(plan->c_str(), stdout);
    return 0;
  }
  auto result = engine.Search(argv[2], argv[1]);
  if (!result.ok()) return Fail(result.status());
  std::printf("%zu documents  [%s]\n", result->results.size(),
              result->applied_optimizations.c_str());
  for (const graft::ma::ScoredDoc& hit : result->results) {
    std::printf("  doc %-8u %.6f\n", hit.doc, hit.score);
  }
  return 0;
}

int CmdSchemes() {
  std::printf("registered scoring schemes:\n");
  for (const graft::sa::ScoringScheme* scheme :
       graft::sa::SchemeRegistry::Global().All()) {
    const graft::sa::SchemeProperties& props = scheme->properties();
    std::printf("  %-16s %s%s%s\n", std::string(scheme->name()).c_str(),
                graft::sa::DirectionName(props.direction).c_str(),
                props.positional ? ", positional" : "",
                props.constant ? ", constant" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  graft::Status structural =
      graft::text::RegisterStructuralPredicates();
  (void)structural;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: graft_cli <index|search|explain|schemes> ...\n");
    return 2;
  }
  const std::string command = argv[1];
  if (command == "index") return CmdIndex(argc - 2, argv + 2);
  if (command == "search") return CmdSearchOrExplain(false, argc - 2, argv + 2);
  if (command == "explain") return CmdSearchOrExplain(true, argc - 2, argv + 2);
  if (command == "schemes") return CmdSchemes();
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}
