// graft_server — serve a GRAFT index over HTTP.
//
//   graft_server --index FILE [--port N] [--segments N] [--threads N]
//                [--max-inflight N] [--deadline-ms N] [--default-k N]
//                [--slow-query-ms N] [--trace-ring N]
//                [--mmap-index] [--block-cache-mb N]
//
//   --index FILE      index built with `graft_cli index` (required)
//   --port N          listen port on 127.0.0.1 (default 8080; 0 = ephemeral,
//                     printed on startup)
//   --segments N      partition the index into N segments at load time and
//                     execute queries segment-parallel (default 1)
//   --threads N       handler pool workers (default 0 = hardware concurrency)
//   --max-inflight N  admission cap; connections beyond it get 503
//                     (default 64)
//   --deadline-ms N   default per-request deadline (default 2000)
//   --default-k N     k when the client sends none (default 10)
//   --slow-query-ms N log any /search slower than N ms to stderr with its
//                     measured operator counters (default 0 = disabled)
//   --trace-ring N    keep the last N query traces in the in-process ring
//                     (common::Tracer) for post-hoc debugging (default 0 =
//                     tracing gated off, one relaxed atomic per query)
//   --mmap-index      map a v5 index instead of materializing it: postings
//                     stay on disk and decode on demand through a metered
//                     block cache (reported on /stats + /metrics). v3/v4
//                     files fall back to the eager load. Hot reloads share
//                     one cache across generations.
//   --block-cache-mb N  decoded-block cache capacity for --mmap-index,
//                     in MiB (default 64)
//
// Endpoints:
//   GET /search?q=...&scheme=MeanSum&k=10[&threads=N][&segments=N]
//              [&explain=1]
//   GET /stats
//   GET /metrics      Prometheus text exposition
//   GET /healthz
//   GET /admin/reload
//
// SIGHUP triggers a hot reload: the index file is reloaded and swapped in
// under load (generation + 1); if the reload fails the old index keeps
// serving and /stats reports degraded=true. SIGINT/SIGTERM trigger a
// draining shutdown: the listener closes, every admitted request is
// answered, then the process exits 0.
//
// GRAFT_FAILPOINTS (environment) accepts ';'-separated failpoint specs
// ("name=action[@N]") for fault-injection testing; see
// src/common/failpoint.h. Ignored in builds configured with
// -DGRAFT_FAILPOINTS=OFF.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "common/trace.h"
#include "core/request.h"
#include "server/search_service.h"
#include "text/structure.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: graft_server --index FILE [--port N] [--segments N]\n"
      "                    [--threads N] [--max-inflight N]\n"
      "                    [--deadline-ms N] [--default-k N]\n"
      "                    [--slow-query-ms N] [--trace-ring N]\n"
      "                    [--mmap-index] [--block-cache-mb N]\n");
  return 2;
}

int Fail(const graft::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  (void)graft::text::RegisterStructuralPredicates();
  {
    // A bad spec is a startup error, not something to discover mid-chaos.
    // Runs in failpoints-off builds too: named sites are then NotFound,
    // never silently inert.
    const graft::Status activated =
        graft::common::FailpointRegistry::Global().ActivateFromEnv();
    if (!activated.ok()) return Fail(activated);
  }

  std::string index_path;
  size_t port = 8080;
  size_t segments = 1;
  size_t threads = 0;
  graft::server::ServiceOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mmap-index") {  // value-less flag
      options.mmap_index = true;
      continue;
    }
    if (i + 1 >= argc) return Usage();
    const std::string value = argv[++i];
    if (arg == "--index") {
      index_path = value;
      continue;
    }
    auto parsed = graft::core::ParseCount(value, arg);
    if (!parsed.ok()) return Fail(parsed.status());
    if (arg == "--port") {
      if (*parsed > 65535) return Fail(graft::Status::InvalidArgument(
          "--port must be <= 65535"));
      port = *parsed;
    } else if (arg == "--segments") {
      segments = *parsed;
    } else if (arg == "--threads") {
      threads = *parsed;
    } else if (arg == "--max-inflight") {
      if (*parsed == 0) return Fail(graft::Status::InvalidArgument(
          "--max-inflight must be > 0"));
      options.max_inflight = *parsed;
    } else if (arg == "--deadline-ms") {
      options.default_deadline_ms = *parsed;
    } else if (arg == "--default-k") {
      options.default_top_k = *parsed;
    } else if (arg == "--slow-query-ms") {
      options.slow_query_ms = *parsed;
    } else if (arg == "--block-cache-mb") {
      if (*parsed == 0 || *parsed > (size_t{1} << 24)) {
        return Fail(graft::Status::InvalidArgument(
            "--block-cache-mb must be in [1, 2^24]"));
      }
      options.block_cache_bytes = *parsed << 20;
    } else if (arg == "--trace-ring") {
      if (*parsed > 0) {
        graft::common::Tracer::Global().Enable(*parsed);
      }
    } else {
      return Usage();
    }
  }
  if (index_path.empty()) return Usage();
  options.port = static_cast<uint16_t>(port);
  options.handler_threads = threads;
  // Wire up hot reload: /admin/reload and SIGHUP re-run LoadEngineBundle
  // with exactly the startup partitioning.
  options.index_path = index_path;
  options.segments = segments;
  options.engine_threads = threads;

  // Block the handled signals before any thread spawns, so every service
  // thread inherits the mask and delivery goes only to sigwait below.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGHUP);
  if (pthread_sigmask(SIG_BLOCK, &mask, nullptr) != 0) {
    return Fail(graft::Status::Internal("pthread_sigmask failed"));
  }

  graft::core::BundleLoadOptions load;
  load.mmap_index = options.mmap_index;
  load.block_cache_bytes = options.block_cache_bytes;
  auto loaded =
      graft::core::LoadEngineBundle(index_path, segments, threads, load);
  if (!loaded.ok()) return Fail(loaded.status());
  auto bundle = std::make_shared<const graft::core::EngineBundle>(
      std::move(loaded).value());
  std::fprintf(stderr, "loaded %s: %llu docs, %zu terms, %zu segment(s)%s\n",
               index_path.c_str(),
               static_cast<unsigned long long>(bundle->index->doc_count()),
               bundle->index->term_count(),
               bundle->segmented == nullptr
                   ? size_t{1}
                   : bundle->segmented->segment_count(),
               bundle->index->is_packed() ? ", mmap (packed postings)" : "");

  graft::server::SearchService service(std::move(bundle), options);
  const graft::Status started = service.Start();
  if (!started.ok()) return Fail(started);
  std::fprintf(stderr,
               "graft_server listening on 127.0.0.1:%u "
               "(max_inflight=%zu, deadline=%llums)\n",
               service.port(), options.max_inflight,
               static_cast<unsigned long long>(options.default_deadline_ms));
  std::fflush(stderr);

  for (;;) {
    int signal_number = 0;
    if (sigwait(&mask, &signal_number) != 0) {
      return Fail(graft::Status::Internal("sigwait failed"));
    }
    if (signal_number == SIGHUP) {
      std::fprintf(stderr, "received SIGHUP; reloading %s...\n",
                   index_path.c_str());
      const graft::Status reloaded = service.Reload();
      if (reloaded.ok()) {
        std::fprintf(stderr, "reload ok; now serving generation %llu\n",
                     static_cast<unsigned long long>(service.generation()));
      } else {
        std::fprintf(stderr,
                     "reload FAILED (%s); still serving generation %llu "
                     "(degraded)\n",
                     reloaded.ToString().c_str(),
                     static_cast<unsigned long long>(service.generation()));
      }
      std::fflush(stderr);
      continue;
    }
    std::fprintf(stderr, "received %s; draining...\n",
                 strsignal(signal_number));
    break;
  }
  service.Shutdown();
  std::fprintf(stderr, "drained; bye\n");
  return 0;
}
