#include <gtest/gtest.h>

#include <set>

#include "text/corpus.h"
#include "text/tokenizer.h"

namespace graft::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  const auto tokens = Tokenize("Free Software, FOSS; windows-emulator!");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "free");
  EXPECT_EQ(tokens[1], "software");
  EXPECT_EQ(tokens[2], "foss");
  EXPECT_EQ(tokens[3], "windows");
  EXPECT_EQ(tokens[4], "emulator");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! ... ---").empty());
}

TEST(TokenizerTest, DigitsAreTokens) {
  const auto tokens = Tokenize("wine 1.0 release");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1], "1");
  EXPECT_EQ(tokens[2], "0");
}

TEST(CorpusTest, DeterministicFromSeed) {
  CorpusConfig config = WikipediaLikeConfig(50, /*seed=*/99);
  InMemoryCorpus a = GenerateInMemory(config);
  InMemoryCorpus b = GenerateInMemory(config);
  ASSERT_EQ(a.docs.size(), b.docs.size());
  for (size_t i = 0; i < a.docs.size(); ++i) {
    EXPECT_EQ(a.docs[i], b.docs[i]) << "doc " << i;
  }
}

TEST(CorpusTest, RespectsDocCountAndLengths) {
  CorpusConfig config;
  config.num_docs = 25;
  config.min_doc_len = 10;
  config.max_doc_len = 20;
  config.filler_vocab = 100;
  InMemoryCorpus corpus = GenerateInMemory(config);
  ASSERT_EQ(corpus.docs.size(), 25u);
  for (const auto& doc : corpus.docs) {
    EXPECT_GE(doc.size(), 10u);
    EXPECT_LE(doc.size(), 20u);
  }
}

TEST(CorpusTest, PlantsQueryVocabulary) {
  // At the default fractions, 4000 docs must contain the frequent planted
  // terms and at least some bundle content.
  CorpusConfig config = WikipediaLikeConfig(4000);
  InMemoryCorpus corpus = GenerateInMemory(config);
  std::set<std::string> seen;
  for (const auto& doc : corpus.docs) {
    for (const auto& token : doc) {
      seen.insert(token);
    }
  }
  for (const char* word :
       {"free", "software", "windows", "san", "francisco", "dinosaur",
        "arizona", "obama", "service", "county"}) {
    EXPECT_TRUE(seen.count(word)) << word;
  }
}

TEST(CorpusTest, PhrasePlantsAreAdjacent) {
  CorpusConfig config;
  config.num_docs = 300;
  config.min_doc_len = 50;
  config.max_doc_len = 80;
  config.phrases = {{{"alpha", "beta"}, 1.0}};
  InMemoryCorpus corpus = GenerateInMemory(config);
  int adjacent = 0;
  for (const auto& doc : corpus.docs) {
    for (size_t i = 0; i + 1 < doc.size(); ++i) {
      if (doc[i] == "alpha" && doc[i + 1] == "beta") {
        ++adjacent;
        break;
      }
    }
  }
  // Nearly every document should carry the planted phrase (a later plant
  // may occasionally overwrite one of its words).
  EXPECT_GT(adjacent, 290);
}

TEST(CorpusTest, TotalWordsReported) {
  CorpusConfig config;
  config.num_docs = 10;
  config.min_doc_len = 30;
  config.max_doc_len = 30;
  CorpusGenerator generator(config);
  uint64_t sum = 0;
  generator.Generate([&sum](uint64_t, const std::vector<std::string_view>& t) {
    sum += t.size();
  });
  EXPECT_EQ(generator.total_words(), sum);
  EXPECT_EQ(sum, 300u);
}

}  // namespace
}  // namespace graft::text
