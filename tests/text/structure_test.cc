#include "text/structure.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "index/inverted_index.h"

namespace graft::text {
namespace {

TEST(StructureTest, SentenceAndParagraphOffsets) {
  const StructuredDocument doc = TokenizeStructured(
      "Wine runs windows software. It is free software.\n\n"
      "A new paragraph mentions foss.");
  ASSERT_EQ(doc.tokens.size(), 13u);
  EXPECT_EQ(doc.sentence_count, 3u);
  EXPECT_EQ(doc.paragraph_count, 2u);

  // Sentence 0: wine runs windows software.
  EXPECT_EQ(doc.tokens[0].text, "wine");
  EXPECT_EQ(doc.tokens[0].offset, 0u);
  EXPECT_EQ(doc.tokens[3].text, "software");
  EXPECT_EQ(doc.tokens[3].offset, 3u);
  // Sentence 1 starts at the next sentence stride.
  EXPECT_EQ(doc.tokens[4].text, "it");
  EXPECT_EQ(doc.tokens[4].offset, kSentenceStride);
  // Paragraph 2 starts at the paragraph stride.
  EXPECT_EQ(doc.tokens[8].text, "a");
  EXPECT_EQ(doc.tokens[8].offset, kParagraphStride);
}

TEST(StructureTest, AdjacencyPreservedWithinSentence) {
  const StructuredDocument doc =
      TokenizeStructured("free software wins. free minds");
  // 'free software' adjacent within sentence 0.
  EXPECT_EQ(doc.tokens[1].offset - doc.tokens[0].offset, 1u);
  // The second 'free' is in sentence 1: far from 'wins'.
  EXPECT_GT(doc.tokens[3].offset - doc.tokens[2].offset, 1u);
}

TEST(StructureTest, SentenceOverflowSplits) {
  std::string text;
  for (int i = 0; i < 300; ++i) {
    text += "word" + std::to_string(i) + " ";
  }
  const StructuredDocument doc = TokenizeStructured(text);
  ASSERT_EQ(doc.tokens.size(), 300u);
  // Offsets stay strictly increasing across the forced split.
  for (size_t i = 1; i < doc.tokens.size(); ++i) {
    EXPECT_LT(doc.tokens[i - 1].offset, doc.tokens[i].offset);
  }
  EXPECT_GT(doc.sentence_count, 1u);
}

TEST(StructureTest, PredicatesRegistered) {
  ASSERT_TRUE(RegisterStructuralPredicates().ok());
  // Idempotent.
  ASSERT_TRUE(RegisterStructuralPredicates().ok());
  EXPECT_NE(mcalc::PredicateRegistry::Global().Lookup("SAMESENTENCE"),
            nullptr);
  EXPECT_NE(mcalc::PredicateRegistry::Global().Lookup("SAMEPARAGRAPH"),
            nullptr);
}

index::InvertedIndex StructuredIndex() {
  EXPECT_TRUE(RegisterStructuralPredicates().ok());
  index::IndexBuilder builder;
  const char* docs[] = {
      // doc 0: 'windows emulator' in the same sentence.
      "Wine is a windows emulator alternative. It hosts free software.",
      // doc 1: 'windows' and 'emulator' in different sentences, same
      // paragraph.
      "This tool targets windows. It is not an emulator though.",
      // doc 2: different paragraphs.
      "All about windows here.\n\nThe emulator story is separate.",
  };
  for (const char* text : docs) {
    const StructuredDocument doc = TokenizeStructured(text);
    std::vector<std::string_view> tokens;
    std::vector<Offset> offsets;
    for (const PositionedToken& token : doc.tokens) {
      tokens.emplace_back(token.text);
      offsets.push_back(token.offset);
    }
    builder.AddDocumentPositioned(tokens, offsets);
  }
  return builder.Build();
}

TEST(StructureTest, SameSentenceQueryEndToEnd) {
  index::InvertedIndex index = StructuredIndex();
  core::Engine engine(&index);

  auto same_sentence =
      engine.Search("(windows emulator)SAMESENTENCE", "MeanSum");
  ASSERT_TRUE(same_sentence.ok()) << same_sentence.status().ToString();
  ASSERT_EQ(same_sentence->results.size(), 1u);
  EXPECT_EQ(same_sentence->results[0].doc, 0u);

  auto same_paragraph =
      engine.Search("(windows emulator)SAMEPARAGRAPH", "MeanSum");
  ASSERT_TRUE(same_paragraph.ok());
  ASSERT_EQ(same_paragraph->results.size(), 2u);

  auto unconstrained = engine.Search("windows emulator", "MeanSum");
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_EQ(unconstrained->results.size(), 3u);
}

TEST(StructureTest, PhraseCannotCrossSentenceBoundary) {
  ASSERT_TRUE(RegisterStructuralPredicates().ok());
  index::IndexBuilder builder;
  // 'free' ends one sentence, 'software' starts the next: not a phrase.
  const StructuredDocument doc =
      TokenizeStructured("Everything here is free. Software is separate.");
  std::vector<std::string_view> tokens;
  std::vector<Offset> offsets;
  for (const PositionedToken& token : doc.tokens) {
    tokens.emplace_back(token.text);
    offsets.push_back(token.offset);
  }
  builder.AddDocumentPositioned(tokens, offsets);
  index::InvertedIndex index = builder.Build();
  core::Engine engine(&index);
  auto phrase = engine.Search("\"free software\"", "MeanSum");
  ASSERT_TRUE(phrase.ok());
  EXPECT_TRUE(phrase->results.empty());
  auto loose = engine.Search("free software", "MeanSum");
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(loose->results.size(), 1u);
}

}  // namespace
}  // namespace graft::text
