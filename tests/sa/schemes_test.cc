#include "sa/schemes.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "sa/property_checker.h"
#include "sa/weighting.h"

namespace graft::sa {
namespace {

// The paper's Figure 1 / Example 5 statistics for document d_w.
DocContext WineDoc() {
  DocContext doc;
  doc.doc = 0;
  doc.length = 207;
  doc.collection_size = 4638535;
  doc.avg_doc_length = 250.0;
  return doc;
}

ColumnContext Foss() {
  ColumnContext col;
  col.term = 1;
  col.doc_freq = 2044;
  col.tf_in_doc = 1;
  return col;
}

TEST(WeightingTest, TfIdfMatchesExample5) {
  // α(d_w, p4, ⟨179,...⟩) = (1/207) × (4638535/2044) = 10.96 (paper).
  const double tfidf = TfIdf(WineDoc(), Foss());
  EXPECT_NEAR(tfidf, 10.96, 0.01);
}

TEST(WeightingTest, TfIdfZeroOnDegenerateStats) {
  DocContext doc = WineDoc();
  ColumnContext col = Foss();
  col.tf_in_doc = 0;
  EXPECT_EQ(TfIdf(doc, col), 0.0);
  col = Foss();
  doc.length = 0;
  EXPECT_EQ(TfIdf(doc, col), 0.0);
}

TEST(WeightingTest, Bm25PositiveAndMonotoneInTf) {
  DocContext doc = WineDoc();
  ColumnContext col = Foss();
  const double w1 = Bm25(doc, col);
  EXPECT_GT(w1, 0.0);
  col.tf_in_doc = 4;
  const double w4 = Bm25(doc, col);
  EXPECT_GT(w4, w1);
  // Rare terms weigh more than common terms.
  ColumnContext common = Foss();
  common.doc_freq = 332335;
  EXPECT_GT(w1, Bm25(doc, common));
}

TEST(MeanSumTest, Example5InitScores) {
  auto scheme = MakeMeanSumScheme();
  const InternalScore real = scheme->Init(WineDoc(), Foss(), 179);
  EXPECT_NEAR(real.a, 10.96, 0.01);
  EXPECT_EQ(real.b, 1.0);
  const InternalScore empty = scheme->Init(WineDoc(), Foss(), kEmptyOffset);
  EXPECT_EQ(empty.a, 0.0);
  EXPECT_EQ(empty.b, 1.0);
}

TEST(MeanSumTest, Example5ColumnAggregation) {
  // Column p4 = [179, ∅, 179, ∅] aggregates to ⟨21.92, 4⟩ (paper).
  auto scheme = MakeMeanSumScheme();
  const InternalScore real = scheme->Init(WineDoc(), Foss(), 179);
  const InternalScore empty = scheme->Init(WineDoc(), Foss(), kEmptyOffset);
  const InternalScore left = scheme->Alt(real, empty);
  const InternalScore right = scheme->Alt(real, empty);
  const InternalScore column = scheme->Alt(left, right);
  EXPECT_NEAR(column.a, 21.92, 0.02);
  EXPECT_EQ(column.b, 4.0);
}

TEST(MeanSumTest, Example5Finalize) {
  // ω(d, ⟨65.086, 4⟩) = 1 − 1/ln(65.086/4 + e) = 0.660 (paper).
  auto scheme = MakeMeanSumScheme();
  QueryContext query;
  query.num_columns = 5;
  const double score =
      scheme->Finalize(WineDoc(), query, InternalScore(65.086, 4.0));
  EXPECT_NEAR(score, 0.660, 0.001);
}

TEST(AnySumTest, ConstantAcrossPositions) {
  auto scheme = MakeAnySumScheme();
  const InternalScore a = scheme->Init(WineDoc(), Foss(), 5);
  const InternalScore b = scheme->Init(WineDoc(), Foss(), 179);
  const InternalScore c = scheme->Init(WineDoc(), Foss(), kEmptyOffset);
  EXPECT_EQ(a.a, b.a);
  EXPECT_EQ(a.a, c.a);  // ∅ has the same weight: AnySum ignores positions
  EXPECT_EQ(scheme->Alt(a, b).a, a.a);
  EXPECT_TRUE(scheme->properties().constant);
}

TEST(SumBestTest, EmptyIsZeroAndAltIsMax) {
  auto scheme = MakeSumBestScheme();
  const InternalScore real = scheme->Init(WineDoc(), Foss(), 179);
  const InternalScore empty = scheme->Init(WineDoc(), Foss(), kEmptyOffset);
  EXPECT_GT(real.a, 0.0);
  EXPECT_EQ(empty.a, 0.0);
  EXPECT_EQ(scheme->Alt(real, empty).a, real.a);
  EXPECT_EQ(scheme->properties().direction, Direction::kColumnFirst);
}

TEST(LuceneTest, CoordFactorInFinalize) {
  auto scheme = MakeLuceneScheme();
  QueryContext query;
  query.num_columns = 4;
  // Two matched columns out of four: coord = 0.5.
  InternalScore s(10.0, 2.0);
  EXPECT_NEAR(scheme->Finalize(WineDoc(), query, s), 5.0, 1e-9);
}

TEST(JoinNormalizedTest, ConjDistributesScoreBySize) {
  auto scheme = MakeJoinNormalizedScheme();
  // ⊘(⟨a, s⟩, ⟨b, t⟩) = ⟨a/t + b/s, s·t⟩
  const InternalScore left(6.0, 2.0);
  const InternalScore right(4.0, 3.0);
  const InternalScore combined = scheme->Conj(left, right);
  EXPECT_NEAR(combined.a, 6.0 / 3.0 + 4.0 / 2.0, 1e-9);
  EXPECT_NEAR(combined.b, 6.0, 1e-9);
}

TEST(JoinNormalizedTest, DisjPiecewise) {
  auto scheme = MakeJoinNormalizedScheme();
  const InternalScore zero(0.0, 2.0);
  const InternalScore real(8.0, 4.0);
  EXPECT_NEAR(scheme->Disj(real, zero).a, 4.0, 1e-9);  // s_L/2
  EXPECT_NEAR(scheme->Disj(zero, real).a, 4.0, 1e-9);  // s_R/2
  const InternalScore both = scheme->Disj(real, real);
  EXPECT_NEAR(both.a, 8.0 / (2 * 4.0) + 8.0 / (2 * 4.0), 1e-9);
  EXPECT_NEAR(both.b, 4.0 * 4.0 + 4.0 + 4.0, 1e-9);
}

TEST(EventModelTest, ProbabilisticCombinators) {
  auto scheme = MakeEventModelScheme();
  const InternalScore p(0.5);
  const InternalScore q(0.25);
  EXPECT_NEAR(scheme->Conj(p, q).a, 0.125, 1e-9);
  EXPECT_NEAR(scheme->Disj(p, q).a, 0.5 + 0.25 - 0.125, 1e-9);
  EXPECT_NEAR(scheme->Scale(p, 2).a, 0.75, 1e-9);
  // α maps BM25 into [0, 1).
  const InternalScore w = scheme->Init(WineDoc(), Foss(), 179);
  EXPECT_GT(w.a, 0.0);
  EXPECT_LT(w.a, 1.0);
}

TEST(BestSumMinDistTest, MinDistTracksClosestPair) {
  auto scheme = MakeBestSumMinDistScheme();
  InternalScore a = scheme->Init(WineDoc(), Foss(), 10);
  InternalScore b = scheme->Init(WineDoc(), Foss(), 14);
  InternalScore c = scheme->Init(WineDoc(), Foss(), 15);
  EXPECT_TRUE(std::isinf(a.b));  // singleton: no pair
  const InternalScore ab = scheme->Conj(a, b);
  EXPECT_EQ(ab.b, 4.0);
  const InternalScore abc = scheme->Conj(ab, c);
  EXPECT_EQ(abc.b, 1.0);  // 14 and 15
  ASSERT_EQ(abc.positions.size(), 3u);
  EXPECT_TRUE(std::is_sorted(abc.positions.begin(), abc.positions.end()));
}

TEST(BestSumMinDistTest, ProximityBoostsFinalScore) {
  auto scheme = MakeBestSumMinDistScheme();
  QueryContext query;
  query.num_columns = 2;
  InternalScore near(5.0, 1.0);
  InternalScore far(5.0, 100.0);
  const double near_score = scheme->Finalize(WineDoc(), query, near);
  const double far_score = scheme->Finalize(WineDoc(), query, far);
  EXPECT_GT(near_score, far_score);
  // dist = ∞ contributes no boost at all.
  InternalScore none(5.0, std::numeric_limits<double>::infinity());
  EXPECT_NEAR(scheme->Finalize(WineDoc(), query, none), 5.0, 1e-12);
}

TEST(SchemeRegistryTest, SevenSchemesPreRegistered) {
  const auto all = SchemeRegistry::Global().All();
  EXPECT_GE(all.size(), 8u);
  for (const char* name :
       {"AnySum", "AnyProd", "SumBest", "Lucene", "JoinNormalized",
        "EventModel", "MeanSum", "BestSumMinDist"}) {
    EXPECT_NE(SchemeRegistry::Global().Lookup(name), nullptr) << name;
  }
  EXPECT_EQ(SchemeRegistry::Global().Lookup("NoSuchScheme"), nullptr);
}

// ---- Table 2 reproduction: every declared property must hold on
// randomized realizable samples, for every scheme. ----
class PropertyCheckTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PropertyCheckTest, DeclarationsConsistent) {
  const ScoringScheme* scheme = SchemeRegistry::Global().Lookup(GetParam());
  ASSERT_NE(scheme, nullptr);
  const PropertyReport report = CheckSchemeProperties(*scheme, 300);
  EXPECT_TRUE(report.DeclarationsConsistent()) << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PropertyCheckTest,
                         ::testing::Values("AnySum", "AnyProd", "SumBest", "Lucene",
                                           "JoinNormalized", "EventModel",
                                           "MeanSum", "BestSumMinDist"));

// Spot checks of the Table 2 entries that drive Table 3's shape.
TEST(Table2Test, KeyDeclarations) {
  const auto& registry = SchemeRegistry::Global();
  EXPECT_TRUE(registry.Lookup("AnySum")->properties().constant);
  EXPECT_FALSE(registry.Lookup("SumBest")->properties().constant);
  EXPECT_EQ(registry.Lookup("SumBest")->properties().direction,
            Direction::kColumnFirst);
  EXPECT_EQ(registry.Lookup("EventModel")->properties().direction,
            Direction::kRowFirst);
  EXPECT_EQ(registry.Lookup("BestSumMinDist")->properties().direction,
            Direction::kRowFirst);
  EXPECT_TRUE(registry.Lookup("BestSumMinDist")->properties().positional);
  EXPECT_FALSE(registry.Lookup("MeanSum")->properties().positional);
  EXPECT_TRUE(registry.Lookup("MeanSum")->properties().diagonal());
  // ⊕ commutes for every scheme (τ elimination row of Table 3 is all ✓).
  for (const ScoringScheme* scheme : registry.All()) {
    EXPECT_TRUE(scheme->properties().alt.commutative) << scheme->name();
  }
}

}  // namespace
}  // namespace graft::sa
