// Operator-level unit tests of the reference evaluator and the plan
// machinery on a tiny hand-built index.

#include <gtest/gtest.h>

#include "ma/reference_evaluator.h"
#include "sa/schemes.h"
#include "text/tokenizer.h"

namespace graft::ma {
namespace {

// doc 0: "alpha beta alpha gamma"
// doc 1: "beta beta delta"
// doc 2: "alpha delta delta gamma gamma"
index::InvertedIndex TinyIndex() {
  index::IndexBuilder builder;
  builder.AddDocumentStrings(text::Tokenize("alpha beta alpha gamma"));
  builder.AddDocumentStrings(text::Tokenize("beta beta delta"));
  builder.AddDocumentStrings(
      text::Tokenize("alpha delta delta gamma gamma"));
  return builder.Build();
}

MatchTable Eval(const index::InvertedIndex& index, const PlanNode& plan,
                const sa::ScoringScheme* scheme = nullptr) {
  ReferenceEvaluator evaluator(&index, scheme, sa::QueryContext{2});
  auto table = evaluator.Evaluate(plan);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return table.ok() ? std::move(table).value() : MatchTable{};
}

TEST(EvaluatorUnitsTest, AtomScan) {
  index::InvertedIndex index = TinyIndex();
  PlanNodePtr plan = MakeAtom("alpha", 0);
  ASSERT_TRUE(ResolvePlan(plan.get(), index).ok());
  const MatchTable table = Eval(index, *plan);
  ASSERT_EQ(table.rows.size(), 3u);
  EXPECT_EQ(table.rows[0].doc, 0u);
  EXPECT_EQ(table.rows[0].values[0].pos, 0u);
  EXPECT_EQ(table.rows[1].values[0].pos, 2u);
  EXPECT_EQ(table.rows[2].doc, 2u);
}

TEST(EvaluatorUnitsTest, JoinCrossProductWithinDoc) {
  index::InvertedIndex index = TinyIndex();
  PlanNodePtr plan = MakeJoin(MakeAtom("alpha", 0), MakeAtom("gamma", 1));
  ASSERT_TRUE(ResolvePlan(plan.get(), index).ok());
  const MatchTable table = Eval(index, *plan);
  // doc 0: 2 alphas × 1 gamma; doc 2: 1 alpha × 2 gammas.
  ASSERT_EQ(table.rows.size(), 4u);
  EXPECT_EQ(table.rows[0].doc, 0u);
  EXPECT_EQ(table.rows[3].doc, 2u);
}

TEST(EvaluatorUnitsTest, JoinResidualPredicate) {
  index::InvertedIndex index = TinyIndex();
  PlanNodePtr plan =
      MakeJoin(MakeAtom("alpha", 0), MakeAtom("gamma", 1),
               {mcalc::PredicateCall{"DISTANCE", {0, 1}, {1}}});
  ASSERT_TRUE(ResolvePlan(plan.get(), index).ok());
  const MatchTable table = Eval(index, *plan);
  // doc 0: alpha@2, gamma@3. doc 2: alpha@0? gamma@3 no; gamma@4 no.
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0].doc, 0u);
  EXPECT_EQ(table.rows[0].values[0].pos, 2u);
  EXPECT_EQ(table.rows[0].values[1].pos, 3u);
}

TEST(EvaluatorUnitsTest, OuterUnionPadsWithEmpty) {
  index::InvertedIndex index = TinyIndex();
  std::vector<PlanNodePtr> branches;
  branches.push_back(MakeAtom("alpha", 0));
  branches.push_back(MakeAtom("delta", 1));
  PlanNodePtr plan = MakeOuterUnion(std::move(branches));
  ASSERT_TRUE(ResolvePlan(plan.get(), index).ok());
  const MatchTable table = Eval(index, *plan);
  // alpha: 3 rows, delta: 3 rows -> 6 padded rows.
  ASSERT_EQ(table.rows.size(), 6u);
  const int alpha_col = table.schema.FindVar(0);
  const int delta_col = table.schema.FindVar(1);
  for (const Tuple& row : table.rows) {
    const bool alpha_bound = row.values[alpha_col].pos != kEmptyOffset;
    const bool delta_bound = row.values[delta_col].pos != kEmptyOffset;
    EXPECT_NE(alpha_bound, delta_bound);  // exactly one branch per row
  }
}

TEST(EvaluatorUnitsTest, AntiJoinRemovesDocs) {
  index::InvertedIndex index = TinyIndex();
  PlanNodePtr plan =
      MakeAntiJoin(MakeAtom("gamma", 0), MakeAtom("beta", 1));
  ASSERT_TRUE(ResolvePlan(plan.get(), index).ok());
  const MatchTable table = Eval(index, *plan);
  // gamma in docs 0, 2; beta in docs 0, 1 -> only doc 2 survives.
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0].doc, 2u);
  // The anti side contributes no columns.
  EXPECT_EQ(table.schema.columns.size(), 1u);
}

TEST(EvaluatorUnitsTest, AltElimKeepsFirstRowPerDoc) {
  index::InvertedIndex index = TinyIndex();
  PlanNodePtr plan = MakeAltElim(MakeAtom("gamma", 0));
  ASSERT_TRUE(ResolvePlan(plan.get(), index).ok());
  const MatchTable table = Eval(index, *plan);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0].doc, 0u);
  EXPECT_EQ(table.rows[1].doc, 2u);
  EXPECT_EQ(table.rows[1].values[0].pos, 3u);  // first gamma of doc 2
}

TEST(EvaluatorUnitsTest, GroupCountsAndAggregates) {
  index::InvertedIndex index = TinyIndex();
  auto scheme = sa::MakeMeanSumScheme();
  std::vector<ProjectItem> items;
  items.push_back(ProjectItem::Scored("s0", ScoreExpr::InitPos("p0")));
  PlanNodePtr plan = MakeProject(MakeAtom("delta", 0), std::move(items));
  GroupSpec spec;
  spec.score_aggs.push_back({"s0", "s0", ""});
  spec.count_output = "c";
  plan = MakeGroup(std::move(plan), std::move(spec));
  ASSERT_TRUE(ResolvePlan(plan.get(), index).ok());
  const MatchTable table = Eval(index, *plan, scheme.get());
  // delta: doc 1 (1 occurrence), doc 2 (2 occurrences).
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0].values[1].count, 1u);
  EXPECT_EQ(table.rows[1].values[1].count, 2u);
  // MeanSum ⊕ adds counts: the doc-2 aggregate has count 2.
  EXPECT_EQ(table.rows[1].values[0].score.b, 2.0);
}

TEST(EvaluatorUnitsTest, CountProductTreatsZeroAsOne) {
  index::InvertedIndex index = TinyIndex();
  PlanNodePtr ca = MakePreCountAtom("delta", "c0");
  std::vector<ProjectItem> items;
  items.push_back(ProjectItem::Passthrough("c0"));
  items.push_back(ProjectItem::CountProduct("cw", {"c0", "c0"}));
  PlanNodePtr plan = MakeProject(std::move(ca), std::move(items));
  ASSERT_TRUE(ResolvePlan(plan.get(), index).ok());
  const MatchTable table = Eval(index, *plan);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1].values[1].count, 4u);  // 2 × 2
}

TEST(EvaluatorUnitsTest, ResolveRejectsBadPlans) {
  index::InvertedIndex index = TinyIndex();
  {
    // Duplicate column across join.
    PlanNodePtr plan = MakeJoin(MakeAtom("alpha", 0), MakeAtom("beta", 0));
    EXPECT_FALSE(ResolvePlan(plan.get(), index).ok());
  }
  {
    // Projection of a missing column.
    std::vector<ProjectItem> items;
    items.push_back(ProjectItem::Passthrough("p9"));
    PlanNodePtr plan = MakeProject(MakeAtom("alpha", 0), std::move(items));
    EXPECT_FALSE(ResolvePlan(plan.get(), index).ok());
  }
  {
    // α over a nonexistent column.
    std::vector<ProjectItem> items;
    items.push_back(ProjectItem::Scored("s", ScoreExpr::InitPos("p7")));
    PlanNodePtr plan = MakeProject(MakeAtom("alpha", 0), std::move(items));
    EXPECT_FALSE(ResolvePlan(plan.get(), index).ok());
  }
  {
    // Predicate over a variable that is not in scope.
    PlanNodePtr plan = MakeSelect(
        MakeAtom("alpha", 0), {mcalc::PredicateCall{"WINDOW", {0, 5}, {3}}});
    EXPECT_FALSE(ResolvePlan(plan.get(), index).ok());
  }
  {
    // γ ⊕ over a non-score column.
    GroupSpec spec;
    spec.score_aggs.push_back({"p0", "s", ""});
    PlanNodePtr plan = MakeGroup(MakeAtom("alpha", 0), std::move(spec));
    EXPECT_FALSE(ResolvePlan(plan.get(), index).ok());
  }
}

TEST(EvaluatorUnitsTest, ScoringWithoutSchemeFails) {
  index::InvertedIndex index = TinyIndex();
  std::vector<ProjectItem> items;
  items.push_back(ProjectItem::Scored("s", ScoreExpr::InitPos("p0")));
  PlanNodePtr plan = MakeProject(MakeAtom("alpha", 0), std::move(items));
  ASSERT_TRUE(ResolvePlan(plan.get(), index).ok());
  ReferenceEvaluator evaluator(&index, nullptr, sa::QueryContext{});
  EXPECT_EQ(evaluator.Evaluate(*plan).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EvaluatorUnitsTest, PlanCloneIsDeep) {
  PlanNodePtr plan = MakeJoin(MakeAtom("alpha", 0), MakeAtom("beta", 1),
                              {mcalc::PredicateCall{"ORDER", {0, 1}, {}}});
  PlanNodePtr copy = plan->Clone();
  EXPECT_NE(copy.get(), plan.get());
  EXPECT_EQ(copy->predicates.size(), 1u);
  EXPECT_EQ(copy->children[0]->keyword, "alpha");
  plan->children[0]->keyword = "changed";
  EXPECT_EQ(copy->children[0]->keyword, "alpha");
}

TEST(EvaluatorUnitsTest, PlanPrinting) {
  index::InvertedIndex index = TinyIndex();
  PlanNodePtr plan = MakeSort(MakeJoin(MakeAtom("alpha", 0),
                                       MakeAtom("beta", 1)));
  ASSERT_TRUE(ResolvePlan(plan.get(), index).ok());
  const std::string text = PlanToString(*plan);
  EXPECT_NE(text.find("τ"), std::string::npos);
  EXPECT_NE(text.find("⋈"), std::string::npos);
  EXPECT_NE(text.find("A('alpha', d, p0)"), std::string::npos);
}

}  // namespace
}  // namespace graft::ma
