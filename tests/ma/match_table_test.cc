#include "ma/match_table.h"

#include <gtest/gtest.h>

namespace graft::ma {
namespace {

TEST(CompareValueTest, PositionsAscendWithEmptyLast) {
  EXPECT_LT(CompareValue(Value::Pos(3), Value::Pos(4)), 0);
  EXPECT_GT(CompareValue(Value::Pos(4), Value::Pos(3)), 0);
  EXPECT_EQ(CompareValue(Value::Pos(3), Value::Pos(3)), 0);
  // ∅ encodes as the maximum offset: sorts last naturally.
  EXPECT_LT(CompareValue(Value::Pos(1000000), Value::EmptyPos()), 0);
}

TEST(CompareValueTest, CountsAndScores) {
  EXPECT_LT(CompareValue(Value::Count(2), Value::Count(5)), 0);
  EXPECT_EQ(CompareValue(Value::Count(5), Value::Count(5)), 0);
  EXPECT_LT(CompareValue(Value::Score(sa::InternalScore(1.0)),
                         Value::Score(sa::InternalScore(2.0))),
            0);
  EXPECT_LT(CompareValue(Value::Score(sa::InternalScore(1.0, 0.0)),
                         Value::Score(sa::InternalScore(1.0, 3.0))),
            0);
}

Tuple MakeRow(DocId doc, std::initializer_list<Offset> positions) {
  Tuple row;
  row.doc = doc;
  for (const Offset p : positions) {
    row.values.push_back(Value::Pos(p));
  }
  return row;
}

TEST(CompareTupleTest, LexicographicWithDocFirst) {
  EXPECT_LT(CompareTuple(MakeRow(1, {9, 9}), MakeRow(2, {0, 0})), 0);
  EXPECT_LT(CompareTuple(MakeRow(1, {3, 4}), MakeRow(1, {3, 5})), 0);
  EXPECT_EQ(CompareTuple(MakeRow(1, {3, 4}), MakeRow(1, {3, 4})), 0);
  EXPECT_LT(CompareTuple(MakeRow(1, {3, 4}),
                         MakeRow(1, {kEmptyOffset, 0})),
            0);
}

MatchTable TwoRowTable() {
  MatchTable table;
  table.schema.columns.push_back(Column::Pos("p0", 0, 7, "free"));
  table.schema.columns.push_back(Column::Score("s"));
  Tuple a;
  a.doc = 1;
  a.values.push_back(Value::Pos(3));
  a.values.push_back(Value::Score(sa::InternalScore(1.5, 2.0)));
  Tuple b;
  b.doc = 4;
  b.values.push_back(Value::EmptyPos());
  b.values.push_back(Value::Score(sa::InternalScore(0.25, 1.0)));
  table.rows.push_back(std::move(a));
  table.rows.push_back(std::move(b));
  return table;
}

TEST(TablesEqualTest, ExactAndTolerantScoreComparison) {
  const MatchTable left = TwoRowTable();
  MatchTable right = TwoRowTable();
  EXPECT_TRUE(TablesEqual(left, right));
  right.rows[0].values[1].score.a += 1e-12;
  EXPECT_TRUE(TablesEqual(left, right));  // within tolerance
  right.rows[0].values[1].score.a += 1.0;
  EXPECT_FALSE(TablesEqual(left, right));
}

TEST(TablesEqualTest, DetectsShapeDifferences) {
  const MatchTable left = TwoRowTable();
  MatchTable fewer = TwoRowTable();
  fewer.rows.pop_back();
  EXPECT_FALSE(TablesEqual(left, fewer));

  MatchTable renamed = TwoRowTable();
  renamed.schema.columns[0].name = "p9";
  EXPECT_FALSE(TablesEqual(left, renamed));

  MatchTable repositioned = TwoRowTable();
  repositioned.rows[1].values[0] = Value::Pos(8);
  EXPECT_FALSE(TablesEqual(left, repositioned));
}

TEST(ExtractRankedResultsTest, SortsDescendingWithDocTiebreak) {
  MatchTable table;
  table.schema.columns.push_back(Column::Score("score"));
  for (const auto& [doc, score] :
       std::vector<std::pair<DocId, double>>{
           {5, 1.0}, {2, 3.0}, {9, 3.0}, {1, 0.5}}) {
    Tuple row;
    row.doc = doc;
    row.values.push_back(Value::Score(sa::InternalScore(score)));
    table.rows.push_back(std::move(row));
  }
  auto ranked = ExtractRankedResults(table);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 4u);
  EXPECT_EQ((*ranked)[0].doc, 2u);  // tie at 3.0: lower doc id first
  EXPECT_EQ((*ranked)[1].doc, 9u);
  EXPECT_EQ((*ranked)[2].doc, 5u);
  EXPECT_EQ((*ranked)[3].doc, 1u);
}

TEST(ExtractRankedResultsTest, RejectsNonScoreSchemas) {
  MatchTable positions;
  positions.schema.columns.push_back(Column::Pos("p0", 0, 0, "x"));
  EXPECT_FALSE(ExtractRankedResults(positions).ok());

  MatchTable two_columns = TwoRowTable();
  EXPECT_FALSE(ExtractRankedResults(two_columns).ok());
}

TEST(MatchTableTest, PrintingIsHumanReadable) {
  const MatchTable table = TwoRowTable();
  const std::string text = table.ToString();
  EXPECT_NE(text.find("p0"), std::string::npos);
  EXPECT_NE(text.find("∅"), std::string::npos);
  EXPECT_NE(text.find("⟨1, 3"), std::string::npos);
}

}  // namespace
}  // namespace graft::ma
