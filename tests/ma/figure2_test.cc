// Reproduces Figure 2 of the paper: the match table of query Q3 over
// document d_w, computed by the canonical matching subplan on the
// reference evaluator.

#include <gtest/gtest.h>

#include <set>

#include "core/canonical_plan.h"
#include "ma/reference_evaluator.h"
#include "testutil/fixtures.h"

namespace graft {
namespace {

TEST(Figure2Test, MatchTableOfQ3OverWineDoc) {
  testutil::WineFixture fixture = testutil::MakeWineFixture();
  const mcalc::Query query = testutil::MakeQ3();
  ASSERT_TRUE(mcalc::ValidateQuery(query).ok());

  auto plan_or = core::BuildMatchingSubplan(query);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  ma::PlanNodePtr plan = std::move(plan_or).value();
  ASSERT_TRUE(ma::ResolvePlan(plan.get(), fixture.index).ok());

  ma::ReferenceEvaluator evaluator(&fixture.index, nullptr,
                                   sa::QueryContext{5}, &fixture.overlay);
  auto table_or = evaluator.Evaluate(*plan);
  ASSERT_TRUE(table_or.ok()) << table_or.status().ToString();
  const ma::MatchTable& table = *table_or;

  // Figure 2: exactly four matches.
  ASSERT_EQ(table.rows.size(), 4u) << table.ToString();

  // Columns p0..p4 in variable order after the canonical sort.
  const int p0 = table.schema.FindVar(0);
  const int p1 = table.schema.FindVar(1);
  const int p2 = table.schema.FindVar(2);
  const int p3 = table.schema.FindVar(3);
  const int p4 = table.schema.FindVar(4);
  ASSERT_GE(p0, 0);
  ASSERT_GE(p4, 0);

  std::set<std::array<Offset, 5>> rows;
  for (const ma::Tuple& row : table.rows) {
    EXPECT_EQ(row.doc, fixture.doc);
    rows.insert({row.values[p0].pos, row.values[p1].pos, row.values[p2].pos,
                 row.values[p3].pos, row.values[p4].pos});
  }
  constexpr Offset E = kEmptyOffset;
  const std::set<std::array<Offset, 5>> expected = {
      {27, 64, E, E, 179},
      {27, 64, 3, 4, E},
      {42, 64, E, E, 179},
      {42, 64, 3, 4, E},
  };
  EXPECT_EQ(rows, expected) << table.ToString();
}

TEST(Figure2Test, SortedRowOrderIsCanonical) {
  testutil::WineFixture fixture = testutil::MakeWineFixture();
  const mcalc::Query query = testutil::MakeQ3();
  auto plan_or = core::BuildMatchingSubplan(query);
  ASSERT_TRUE(plan_or.ok());
  ma::PlanNodePtr plan = std::move(plan_or).value();
  ASSERT_TRUE(ma::ResolvePlan(plan.get(), fixture.index).ok());
  ma::ReferenceEvaluator evaluator(&fixture.index, nullptr,
                                   sa::QueryContext{5}, &fixture.overlay);
  auto table_or = evaluator.Evaluate(*plan);
  ASSERT_TRUE(table_or.ok());
  const ma::MatchTable& table = *table_or;
  ASSERT_EQ(table.rows.size(), 4u);

  // Lexicographic by (p0..p4), ∅ last: (27,64,3,4,∅) < (27,64,∅,∅,179).
  const int p0 = table.schema.FindVar(0);
  const int p2 = table.schema.FindVar(2);
  EXPECT_EQ(table.rows[0].values[p0].pos, 27u);
  EXPECT_EQ(table.rows[0].values[p2].pos, 3u);
  EXPECT_EQ(table.rows[1].values[p0].pos, 27u);
  EXPECT_EQ(table.rows[1].values[p2].pos, kEmptyOffset);
  EXPECT_EQ(table.rows[2].values[p0].pos, 42u);
  EXPECT_EQ(table.rows[3].values[p0].pos, 42u);
}

// Without the DISTANCE predicate, 'free software' contributes all four
// 'software' positions (the Section 2 discussion of Q1's matches).
TEST(Figure2Test, WithoutDistanceFourPhraseCandidates) {
  testutil::WineFixture fixture = testutil::MakeWineFixture();
  mcalc::Query query;
  query.variables = {{0, "emulator"}, {1, "free"}, {2, "software"}};
  std::vector<mcalc::NodePtr> kids;
  kids.push_back(mcalc::MakeKeyword("emulator", 0));
  kids.push_back(mcalc::MakeKeyword("free", 1));
  kids.push_back(mcalc::MakeKeyword("software", 2));
  query.root = mcalc::MakeAnd(std::move(kids));

  auto plan_or = core::BuildMatchingSubplan(query);
  ASSERT_TRUE(plan_or.ok());
  ma::PlanNodePtr plan = std::move(plan_or).value();
  ASSERT_TRUE(ma::ResolvePlan(plan.get(), fixture.index).ok());
  ma::ReferenceEvaluator evaluator(&fixture.index, nullptr,
                                   sa::QueryContext{3}, &fixture.overlay);
  auto table = evaluator.Evaluate(*plan);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 4u);  // 1 × 1 × 4

  // Adding DISTANCE(p1,p2,1) narrows to the single match ⟨d_w,64,3,4⟩.
  mcalc::Query narrowed;
  narrowed.variables = query.variables;
  std::vector<mcalc::NodePtr> kids2;
  kids2.push_back(mcalc::MakeKeyword("emulator", 0));
  kids2.push_back(mcalc::MakeKeyword("free", 1));
  kids2.push_back(mcalc::MakeKeyword("software", 2));
  narrowed.root = mcalc::MakeConstrained(
      mcalc::MakeAnd(std::move(kids2)),
      {mcalc::PredicateCall{"DISTANCE", {1, 2}, {1}}});
  auto plan2_or = core::BuildMatchingSubplan(narrowed);
  ASSERT_TRUE(plan2_or.ok());
  ma::PlanNodePtr plan2 = std::move(plan2_or).value();
  ASSERT_TRUE(ma::ResolvePlan(plan2.get(), fixture.index).ok());
  auto table2 = evaluator.Evaluate(*plan2);
  ASSERT_TRUE(table2.ok());
  ASSERT_EQ(table2->rows.size(), 1u);
  EXPECT_EQ(table2->rows[0].values[table2->schema.FindVar(0)].pos, 64u);
  EXPECT_EQ(table2->rows[0].values[table2->schema.FindVar(1)].pos, 3u);
  EXPECT_EQ(table2->rows[0].values[table2->schema.FindVar(2)].pos, 4u);
}

}  // namespace
}  // namespace graft
