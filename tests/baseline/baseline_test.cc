// The rigid baseline engines: query-class gating, agreement with GRAFT
// where the scoring coincides, and internal consistency.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "baseline/lucene_like.h"
#include "baseline/terrier_like.h"
#include "core/engine.h"
#include "mcalc/parser.h"
#include "text/corpus.h"

namespace graft::baseline {
namespace {

const index::InvertedIndex& CorpusIndex() {
  static const index::InvertedIndex& index = *[] {
    text::CorpusConfig config = text::WikipediaLikeConfig(1200, /*seed=*/21);
    for (auto& bundle : config.bundles) {
      bundle.doc_fraction = std::min(1.0, bundle.doc_fraction * 30);
    }
    for (auto& phrase : config.phrases) {
      phrase.doc_fraction = std::min(1.0, phrase.doc_fraction * 15);
    }
    index::IndexBuilder builder;
    text::CorpusGenerator generator(config);
    generator.Generate(
        [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
          builder.AddDocument(tokens);
        });
    return new index::InvertedIndex(builder.Build());
  }();
  return index;
}

TEST(LuceneLikeTest, QueryClassGate) {
  const auto supports = [](const char* text) {
    auto query = mcalc::ParseQuery(text);
    EXPECT_TRUE(query.ok());
    return LuceneLikeEngine::SupportsQuery(*query);
  };
  EXPECT_TRUE(supports("san francisco fault line"));
  EXPECT_TRUE(supports("\"san francisco\" \"fault line\""));
  EXPECT_TRUE(supports("a b (c | d)"));
  EXPECT_TRUE(supports("(free wireless internet)PROXIMITY[10] service"));
  // WINDOW and nested groups are beyond Lucene's expressive power (the
  // paper: Lucene and Terrier do not support Q8 or Q10).
  EXPECT_FALSE(
      supports("(windows emulator)WINDOW[50] (foss | \"free software\")"));
  EXPECT_FALSE(
      supports("arizona ((fishing | hunting) (rules | regulations))WINDOW[20]"));
}

// On every query Lucene supports, the Lucene-like engine's scores coincide
// with GRAFT running the Lucene scheme (the Figure-4 comparison is
// apples-to-apples).
class LuceneAgreementTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LuceneAgreementTest, ScoresMatchGraftLuceneScheme) {
  auto query = mcalc::ParseQuery(GetParam());
  ASSERT_TRUE(query.ok());

  LuceneLikeEngine lucene(&CorpusIndex());
  auto baseline_results = lucene.SearchQuery(*query);
  ASSERT_TRUE(baseline_results.ok()) << baseline_results.status().ToString();

  core::Engine engine(&CorpusIndex());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("Lucene");
  auto graft_results = engine.SearchQuery(*query, *scheme);
  ASSERT_TRUE(graft_results.ok()) << graft_results.status().ToString();

  std::map<DocId, double> graft_map;
  for (const ma::ScoredDoc& r : graft_results->results) {
    graft_map[r.doc] = r.score;
  }
  ASSERT_EQ(baseline_results->size(), graft_map.size());
  for (const ma::ScoredDoc& r : *baseline_results) {
    const auto it = graft_map.find(r.doc);
    ASSERT_NE(it, graft_map.end()) << "doc " << r.doc;
    EXPECT_NEAR(r.score, it->second,
                1e-7 * std::max(1.0, std::fabs(r.score)))
        << "doc " << r.doc;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SupportedQueries, LuceneAgreementTest,
    ::testing::Values("san francisco fault line",
                      "\"san francisco\" \"fault line\"",
                      "\"orange county convention center\" orlando",
                      "(free wireless internet)PROXIMITY[10] service",
                      "dinosaur species list (image | picture | drawing | "
                      "illustration)",
                      "software", "free (software | service)"));

TEST(TerrierLikeTest, ConjunctiveAgreesWithGraftAnySum) {
  auto query = mcalc::ParseQuery("san francisco fault line");
  ASSERT_TRUE(query.ok());
  TerrierLikeEngine terrier(&CorpusIndex());
  auto baseline_results = terrier.SearchQuery(*query);
  ASSERT_TRUE(baseline_results.ok());

  core::Engine engine(&CorpusIndex());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("AnySum");
  auto graft_results = engine.SearchQuery(*query, *scheme);
  ASSERT_TRUE(graft_results.ok());

  std::map<DocId, double> graft_map;
  for (const ma::ScoredDoc& r : graft_results->results) {
    graft_map[r.doc] = r.score;
  }
  ASSERT_EQ(baseline_results->size(), graft_map.size());
  for (const ma::ScoredDoc& r : *baseline_results) {
    const auto it = graft_map.find(r.doc);
    ASSERT_NE(it, graft_map.end());
    EXPECT_NEAR(r.score, it->second,
                1e-7 * std::max(1.0, std::fabs(r.score)));
  }
}

TEST(TerrierLikeTest, PhraseFiltering) {
  auto with_phrase = mcalc::ParseQuery("\"san francisco\"");
  auto loose = mcalc::ParseQuery("san francisco");
  ASSERT_TRUE(with_phrase.ok());
  ASSERT_TRUE(loose.ok());
  TerrierLikeEngine terrier(&CorpusIndex());
  auto phrase_results = terrier.SearchQuery(*with_phrase);
  auto loose_results = terrier.SearchQuery(*loose);
  ASSERT_TRUE(phrase_results.ok());
  ASSERT_TRUE(loose_results.ok());
  // The phrase is strictly more selective.
  EXPECT_LE(phrase_results->size(), loose_results->size());
  EXPECT_GT(phrase_results->size(), 0u);
}

TEST(TerrierLikeTest, RejectsWindow) {
  TerrierLikeEngine terrier(&CorpusIndex());
  auto result = terrier.Search("(a b)WINDOW[5]");
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(BaselineTest, TopKTrims) {
  LuceneLikeEngine lucene(&CorpusIndex());
  auto all = lucene.Search("free");
  ASSERT_TRUE(all.ok());
  ASSERT_GT(all->size(), 5u);
  auto top = lucene.Search("free", 5);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*top)[i].doc, (*all)[i].doc);
  }
}

TEST(BaselineTest, MissingRequiredTermEmpties) {
  LuceneLikeEngine lucene(&CorpusIndex());
  auto results = lucene.Search("free neverheardofit");
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
  TerrierLikeEngine terrier(&CorpusIndex());
  auto terrier_results = terrier.Search("free neverheardofit");
  ASSERT_TRUE(terrier_results.ok());
  EXPECT_TRUE(terrier_results->empty());
}

}  // namespace
}  // namespace graft::baseline
