#include "mcalc/predicates.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace graft::mcalc {
namespace {

Offset PositionsOf(const std::vector<Offset>& positions, VarId var) {
  return positions[static_cast<size_t>(var)];
}

bool Eval(const PredicateCall& call, const std::vector<Offset>& positions) {
  auto result = EvaluatePredicate(call, [&positions](VarId var) {
    return PositionsOf(positions, var);
  });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() && *result;
}

TEST(PredicatesTest, DistanceExact) {
  const PredicateCall call{"DISTANCE", {0, 1}, {1}};
  EXPECT_TRUE(Eval(call, {3, 4}));
  EXPECT_FALSE(Eval(call, {3, 5}));
  EXPECT_FALSE(Eval(call, {4, 3}));  // signed: order matters
}

TEST(PredicatesTest, DistanceWithEmptyIsTrue) {
  const PredicateCall call{"DISTANCE", {0, 1}, {1}};
  EXPECT_TRUE(Eval(call, {kEmptyOffset, 4}));
  EXPECT_TRUE(Eval(call, {3, kEmptyOffset}));
  EXPECT_TRUE(Eval(call, {kEmptyOffset, kEmptyOffset}));
}

TEST(PredicatesTest, ProximityAndWindowAreSpans) {
  const PredicateCall proximity{"PROXIMITY", {0, 1, 2}, {10}};
  EXPECT_TRUE(Eval(proximity, {5, 10, 15}));
  EXPECT_FALSE(Eval(proximity, {5, 10, 16}));
  // ∅ positions are dropped before the span check.
  EXPECT_TRUE(Eval(proximity, {5, kEmptyOffset, 15}));
  EXPECT_FALSE(Eval(proximity, {5, kEmptyOffset, 16}));

  const PredicateCall window{"WINDOW", {0, 1}, {50}};
  EXPECT_TRUE(Eval(window, {27, 64}));   // |27-64| = 37 <= 50 (the paper's Q3)
  EXPECT_FALSE(Eval(window, {144, 64}));  // 80 > 50
}

TEST(PredicatesTest, OrderStrictlyIncreasing) {
  const PredicateCall call{"ORDER", {0, 1, 2}, {}};
  EXPECT_TRUE(Eval(call, {1, 5, 9}));
  EXPECT_FALSE(Eval(call, {1, 5, 5}));
  EXPECT_FALSE(Eval(call, {5, 1, 9}));
  EXPECT_TRUE(Eval(call, {1, kEmptyOffset, 9}));
}

TEST(PredicatesTest, ValidationCatchesArity) {
  EXPECT_FALSE(ValidatePredicateCall({"DISTANCE", {0, 1, 2}, {1}}).ok());
  EXPECT_FALSE(ValidatePredicateCall({"DISTANCE", {0, 1}, {}}).ok());
  EXPECT_FALSE(ValidatePredicateCall({"WINDOW", {0}, {5}}).ok());
  EXPECT_FALSE(ValidatePredicateCall({"NOPE", {0, 1}, {5}}).ok());
  EXPECT_TRUE(ValidatePredicateCall({"ORDER", {0, 1}, {}}).ok());
}

TEST(PredicatesTest, UserDefinedPredicateRegistersAndEvaluates) {
  // The paper's SAMESENTENCE example, simulated with 20-word sentences.
  PredicateDef def;
  def.name = "SAMESENTENCE20";
  def.min_vars = 2;
  def.max_vars = -1;
  def.num_params = 0;
  def.evaluator = [](std::span<const Offset> positions,
                     std::span<const int64_t>) {
    if (positions.size() < 2) return true;
    const Offset sentence = positions[0] / 20;
    for (const Offset p : positions) {
      if (p / 20 != sentence) return false;
    }
    return true;
  };
  const Status status = PredicateRegistry::Global().Register(def);
  // A second test run in the same process would hit AlreadyExists.
  ASSERT_TRUE(status.ok() || status.code() == StatusCode::kAlreadyExists);

  const PredicateCall call{"SAMESENTENCE20", {0, 1}, {}};
  EXPECT_TRUE(Eval(call, {21, 39}));
  EXPECT_FALSE(Eval(call, {19, 21}));
}

TEST(PredicatesTest, DuplicateRegistrationRejected) {
  PredicateDef def;
  def.name = "WINDOW";  // built-in
  def.evaluator = [](std::span<const Offset>, std::span<const int64_t>) {
    return true;
  };
  EXPECT_EQ(PredicateRegistry::Global().Register(def).code(),
            StatusCode::kAlreadyExists);
}

TEST(PredicatesTest, BuiltinsListed) {
  const auto names = PredicateRegistry::Global().Names();
  EXPECT_NE(std::find(names.begin(), names.end(), "DISTANCE"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "PROXIMITY"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "WINDOW"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "ORDER"), names.end());
}

}  // namespace
}  // namespace graft::mcalc
