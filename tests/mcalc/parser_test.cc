#include "mcalc/parser.h"

#include <gtest/gtest.h>

namespace graft::mcalc {
namespace {

// The paper's evaluation queries (Section 8).
constexpr const char* kQ4 = "san francisco fault line";
constexpr const char* kQ5 =
    "dinosaur species list (image | picture | drawing | illustration)";
constexpr const char* kQ6 = "\"orange county convention center\" orlando";
constexpr const char* kQ7 = "\"san francisco\" \"fault line\"";
constexpr const char* kQ8 =
    "(windows emulator)WINDOW[50] (foss | \"free software\")";
constexpr const char* kQ9 = "(free wireless internet)PROXIMITY[10] service";
constexpr const char* kQ10 =
    "arizona ((fishing | hunting) (rules | regulations))WINDOW[20]";
constexpr const char* kQ11 =
    "\"rick warren\" (obama inauguration)PROXIMITY[4] "
    "(controversy invocation)PROXIMITY[15]";

TEST(ParserTest, SimpleConjunction) {
  auto query = ParseQuery(kQ4);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->num_variables(), 4u);
  ASSERT_EQ(query->root->kind, NodeKind::kAnd);
  EXPECT_EQ(query->root->children.size(), 4u);
  EXPECT_EQ(query->root->children[0]->keyword, "san");
  EXPECT_EQ(query->variables[3].keyword, "line");
}

TEST(ParserTest, SingleKeyword) {
  auto query = ParseQuery("wine");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->root->kind, NodeKind::kKeyword);
  EXPECT_EQ(query->root->var, 0);
}

TEST(ParserTest, DisjunctionGroup) {
  auto query = ParseQuery(kQ5);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->num_variables(), 7u);
  ASSERT_EQ(query->root->kind, NodeKind::kAnd);
  const Node& group = *query->root->children[3];
  ASSERT_EQ(group.kind, NodeKind::kOr);
  EXPECT_EQ(group.children.size(), 4u);
  EXPECT_EQ(group.children[2]->keyword, "drawing");
}

TEST(ParserTest, PhraseExpandsToDistanceChain) {
  auto query = ParseQuery(kQ6);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->root->kind, NodeKind::kAnd);
  const Node& phrase = *query->root->children[0];
  ASSERT_EQ(phrase.kind, NodeKind::kConstrained);
  ASSERT_EQ(phrase.constraints.size(), 3u);  // 4-word phrase: 3 DISTANCEs
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(phrase.constraints[i].name, "DISTANCE");
    EXPECT_EQ(phrase.constraints[i].params[0], 1);
    EXPECT_EQ(phrase.constraints[i].vars[0], static_cast<VarId>(i));
    EXPECT_EQ(phrase.constraints[i].vars[1], static_cast<VarId>(i + 1));
  }
}

TEST(ParserTest, TwoPhrases) {
  auto query = ParseQuery(kQ7);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->num_variables(), 4u);
  ASSERT_EQ(query->root->kind, NodeKind::kAnd);
  EXPECT_EQ(query->root->children[0]->kind, NodeKind::kConstrained);
  EXPECT_EQ(query->root->children[1]->kind, NodeKind::kConstrained);
}

TEST(ParserTest, GroupPredicateOverGroupVariables) {
  auto query = ParseQuery(kQ8);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->num_variables(), 5u);
  ASSERT_EQ(query->root->kind, NodeKind::kAnd);
  const Node& window = *query->root->children[0];
  ASSERT_EQ(window.kind, NodeKind::kConstrained);
  ASSERT_EQ(window.constraints.size(), 1u);
  EXPECT_EQ(window.constraints[0].name, "WINDOW");
  EXPECT_EQ(window.constraints[0].params[0], 50);
  ASSERT_EQ(window.constraints[0].vars.size(), 2u);
  const Node& disjunction = *query->root->children[1];
  ASSERT_EQ(disjunction.kind, NodeKind::kOr);
  EXPECT_EQ(disjunction.children[0]->keyword, "foss");
  // "free software" branch is a phrase.
  EXPECT_EQ(disjunction.children[1]->kind, NodeKind::kConstrained);
}

TEST(ParserTest, ProximityOverThreeKeywords) {
  auto query = ParseQuery(kQ9);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const Node& proximity = *query->root->children[0];
  ASSERT_EQ(proximity.kind, NodeKind::kConstrained);
  EXPECT_EQ(proximity.constraints[0].name, "PROXIMITY");
  EXPECT_EQ(proximity.constraints[0].vars.size(), 3u);
  EXPECT_EQ(proximity.constraints[0].params[0], 10);
}

TEST(ParserTest, NestedGroupsWithWindow) {
  auto query = ParseQuery(kQ10);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->num_variables(), 5u);
  const Node& window = *query->root->children[1];
  ASSERT_EQ(window.kind, NodeKind::kConstrained);
  // WINDOW applies to all four variables bound inside the group.
  EXPECT_EQ(window.constraints[0].vars.size(), 4u);
  ASSERT_EQ(window.children[0]->kind, NodeKind::kAnd);
  EXPECT_EQ(window.children[0]->children[0]->kind, NodeKind::kOr);
}

TEST(ParserTest, MultiplePredicateGroups) {
  auto query = ParseQuery(kQ11);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->num_variables(), 6u);
  ASSERT_EQ(query->root->children.size(), 3u);
  EXPECT_EQ(query->root->children[1]->constraints[0].params[0], 4);
  EXPECT_EQ(query->root->children[2]->constraints[0].params[0], 15);
}

TEST(ParserTest, Negation) {
  auto query = ParseQuery("wine !emulator");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->root->kind, NodeKind::kAnd);
  EXPECT_EQ(query->root->children[1]->kind, NodeKind::kNot);
  EXPECT_EQ(query->root->children[1]->children[0]->keyword, "emulator");
}

TEST(ParserTest, KeywordsAreLowercased) {
  auto query = ParseQuery("Wine EMULATOR");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->root->children[0]->keyword, "wine");
  EXPECT_EQ(query->root->children[1]->keyword, "emulator");
}

TEST(ParserTest, VariablesBindInAppearanceOrder) {
  auto query = ParseQuery(kQ8);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->variables[0].keyword, "windows");
  EXPECT_EQ(query->variables[1].keyword, "emulator");
  EXPECT_EQ(query->variables[2].keyword, "foss");
  EXPECT_EQ(query->variables[3].keyword, "free");
  EXPECT_EQ(query->variables[4].keyword, "software");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("\"unterminated").ok());
  EXPECT_FALSE(ParseQuery("(a b").ok());
  EXPECT_FALSE(ParseQuery("a | ").ok());
  EXPECT_FALSE(ParseQuery("(a b)NOSUCHPRED[5]").ok());
  EXPECT_FALSE(ParseQuery("(a b)WINDOW[]").ok());
  EXPECT_FALSE(ParseQuery("a ) b").ok());
}

TEST(ParserTest, UnknownPredicateArityRejected) {
  // DISTANCE is strictly binary.
  EXPECT_FALSE(ParseQuery("(a b c)DISTANCE[1]").ok());
}

TEST(ParserTest, MCalcRendering) {
  auto query = ParseQuery("wine (free | foss)");
  ASSERT_TRUE(query.ok());
  const std::string rendered = ToMCalcString(*query);
  EXPECT_NE(rendered.find("HAS(d,p0,'wine')"), std::string::npos);
  EXPECT_NE(rendered.find("∨"), std::string::npos);
}

}  // namespace
}  // namespace graft::mcalc
