// SegmentedIndex persistence round-trip: saving the monolithic index with
// index_io, reloading it, and re-segmenting must reproduce bitwise-equal
// scores versus the pre-save segmented run — i.e. segmentation composes
// with persistence (PR 1 covered only the monolithic save/load path).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "index/index_io.h"
#include "index/inverted_index.h"
#include "index/segmented_index.h"
#include "text/corpus.h"

namespace graft::index {
namespace {

constexpr const char* kSchemes[] = {
    "AnySum",         "AnyProd", "SumBest",    "Lucene",
    "JoinNormalized", "MeanSum", "EventModel", "BestSumMinDist"};

constexpr const char* kQueries[] = {
    "san francisco fault line",
    "(windows emulator)WINDOW[50] (foss | \"free software\")",
    "free software !windows",
    "software",
};

constexpr size_t kSegments = 5;

void ExpectBitIdentical(const std::vector<ma::ScoredDoc>& expected,
                        const std::vector<ma::ScoredDoc>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].doc, actual[i].doc) << label << " rank " << i;
    ASSERT_EQ(expected[i].score, actual[i].score) << label << " rank " << i;
  }
}

TEST(SegmentedIoRoundTripTest, ReloadedResegmentedScoresBitIdentical) {
  text::CorpusConfig config = text::WikipediaLikeConfig(300, /*seed=*/41);
  IndexBuilder builder;
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  const InvertedIndex original = builder.Build();

  // Pre-save segmented engine.
  auto pre_segmented = SegmentedIndex::BuildFromMonolithic(original,
                                                           kSegments);
  ASSERT_TRUE(pre_segmented.ok()) << pre_segmented.status();
  core::Engine pre_engine(&original, &*pre_segmented, /*pool_threads=*/2);

  // Save, reload, re-segment.
  const std::string path = ::testing::TempDir() + "/roundtrip.idx";
  ASSERT_TRUE(SaveIndex(original, path).ok());
  auto reloaded = LoadIndex(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ASSERT_EQ(reloaded->doc_count(), original.doc_count());
  ASSERT_EQ(reloaded->term_count(), original.term_count());
  ASSERT_EQ(reloaded->total_words(), original.total_words());
  auto post_segmented = SegmentedIndex::BuildFromMonolithic(*reloaded,
                                                            kSegments);
  ASSERT_TRUE(post_segmented.ok()) << post_segmented.status();
  core::Engine post_engine(&*reloaded, &*post_segmented, /*pool_threads=*/2);

  for (const char* scheme : kSchemes) {
    for (const char* query : kQueries) {
      const std::string label =
          std::string(scheme) + " / " + query;
      // Full result sets.
      auto expected = pre_engine.Search(query, scheme);
      auto actual = post_engine.Search(query, scheme);
      ASSERT_TRUE(expected.ok()) << label << ": " << expected.status();
      ASSERT_TRUE(actual.ok()) << label << ": " << actual.status();
      ASSERT_EQ(actual->segments_searched, kSegments) << label;
      ExpectBitIdentical(expected->results, actual->results, label);

      // Top-k (exercises the rank-processed path where admitted).
      core::SearchOptions topk;
      topk.top_k = 10;
      auto expected_topk = pre_engine.Search(query, scheme, topk);
      auto actual_topk = post_engine.Search(query, scheme, topk);
      ASSERT_TRUE(expected_topk.ok()) << label;
      ASSERT_TRUE(actual_topk.ok()) << label;
      ExpectBitIdentical(expected_topk->results, actual_topk->results,
                         label + " top-10");
    }
  }
}

}  // namespace
}  // namespace graft::index
