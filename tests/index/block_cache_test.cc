// BlockCache unit tests: LRU eviction under a byte budget, generation
// invalidation on hot reload, the hit/miss/eviction meters (global and
// thread-local), and the docs-vs-full granularity keying that lets
// block-max pruning align on doc ids without paying for score payloads.

#include "index/block_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace graft::index {
namespace {

BlockCache::BlockPtr MakeBlock(uint32_t fill) {
  auto block = std::make_shared<DecodedBlock>();
  block->count = kFmtV5BlockSize;
  for (size_t i = 0; i < kFmtV5BlockSize; ++i) {
    block->docs[i] = fill + static_cast<uint32_t>(i);
  }
  return block;
}

TEST(BlockCacheTest, LookupMissThenInsertThenHit) {
  BlockCache cache(size_t{1} << 20);
  const uint64_t gen = BlockCache::NextGeneration();
  EXPECT_EQ(cache.Lookup(gen, 1, 0, BlockKind::kDocs), nullptr);
  cache.Insert(gen, 1, 0, BlockKind::kDocs, MakeBlock(100));
  const BlockCache::BlockPtr hit = cache.Lookup(gen, 1, 0, BlockKind::kDocs);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->docs[0], 100u);

  const BlockCache::Snapshot snap = cache.snapshot();
  EXPECT_EQ(snap.hits, 1u);
  EXPECT_EQ(snap.misses, 1u);
  EXPECT_EQ(snap.inserts, 1u);
  EXPECT_EQ(snap.entries, 1u);
  EXPECT_EQ(snap.evictions, 0u);
}

TEST(BlockCacheTest, KindIsPartOfTheKey) {
  // A kDocs entry must not satisfy a kFull lookup: the kDocs block's tf
  // column is garbage, and serving it would silently corrupt scores.
  BlockCache cache(size_t{1} << 20);
  const uint64_t gen = BlockCache::NextGeneration();
  cache.Insert(gen, 7, 3, BlockKind::kDocs, MakeBlock(0));
  EXPECT_NE(cache.Lookup(gen, 7, 3, BlockKind::kDocs), nullptr);
  EXPECT_EQ(cache.Lookup(gen, 7, 3, BlockKind::kFull), nullptr);
}

TEST(BlockCacheTest, PayloadDecodesCountOnlyFullInserts) {
  BlockCache cache(size_t{1} << 20);
  const uint64_t gen = BlockCache::NextGeneration();
  cache.Insert(gen, 0, 0, BlockKind::kDocs, MakeBlock(0));
  cache.Insert(gen, 0, 1, BlockKind::kFull, MakeBlock(0));
  cache.Insert(gen, 0, 2, BlockKind::kFull, MakeBlock(0));
  EXPECT_EQ(cache.snapshot().payload_decodes, 2u);
}

TEST(BlockCacheTest, LruEvictionUnderByteBudget) {
  // Room for ~3 entries; inserting 5 must evict the least recently used.
  BlockCache cache(3 * BlockCache::kEntryCharge);
  const uint64_t gen = BlockCache::NextGeneration();
  for (uint32_t b = 0; b < 5; ++b) {
    cache.Insert(gen, 0, b, BlockKind::kDocs, MakeBlock(b));
  }
  const BlockCache::Snapshot snap = cache.snapshot();
  EXPECT_EQ(snap.entries, 3u);
  EXPECT_EQ(snap.evictions, 2u);
  EXPECT_LE(snap.bytes, snap.capacity_bytes);
  // Oldest two gone, newest three resident.
  EXPECT_EQ(cache.Lookup(gen, 0, 0, BlockKind::kDocs), nullptr);
  EXPECT_EQ(cache.Lookup(gen, 0, 1, BlockKind::kDocs), nullptr);
  EXPECT_NE(cache.Lookup(gen, 0, 2, BlockKind::kDocs), nullptr);
  EXPECT_NE(cache.Lookup(gen, 0, 3, BlockKind::kDocs), nullptr);
  EXPECT_NE(cache.Lookup(gen, 0, 4, BlockKind::kDocs), nullptr);
}

TEST(BlockCacheTest, LookupRefreshesRecency) {
  BlockCache cache(2 * BlockCache::kEntryCharge);
  const uint64_t gen = BlockCache::NextGeneration();
  cache.Insert(gen, 0, 0, BlockKind::kDocs, MakeBlock(0));
  cache.Insert(gen, 0, 1, BlockKind::kDocs, MakeBlock(1));
  // Touch block 0 so block 1 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(gen, 0, 0, BlockKind::kDocs), nullptr);
  cache.Insert(gen, 0, 2, BlockKind::kDocs, MakeBlock(2));
  EXPECT_NE(cache.Lookup(gen, 0, 0, BlockKind::kDocs), nullptr);
  EXPECT_EQ(cache.Lookup(gen, 0, 1, BlockKind::kDocs), nullptr);
  EXPECT_NE(cache.Lookup(gen, 0, 2, BlockKind::kDocs), nullptr);
}

TEST(BlockCacheTest, EraseGenerationDropsOnlyThatGeneration) {
  // The hot-reload story: old and new index share one cache under
  // different generation keys; erasing the old generation must leave the
  // new one untouched and release the old bytes.
  BlockCache cache(size_t{1} << 20);
  const uint64_t old_gen = BlockCache::NextGeneration();
  const uint64_t new_gen = BlockCache::NextGeneration();
  ASSERT_NE(old_gen, new_gen);
  for (uint32_t b = 0; b < 4; ++b) {
    cache.Insert(old_gen, 0, b, BlockKind::kDocs, MakeBlock(b));
    cache.Insert(new_gen, 0, b, BlockKind::kDocs, MakeBlock(b + 100));
  }
  ASSERT_EQ(cache.snapshot().entries, 8u);
  cache.EraseGeneration(old_gen);
  const BlockCache::Snapshot snap = cache.snapshot();
  EXPECT_EQ(snap.entries, 4u);
  for (uint32_t b = 0; b < 4; ++b) {
    EXPECT_EQ(cache.Lookup(old_gen, 0, b, BlockKind::kDocs), nullptr);
    const BlockCache::BlockPtr kept =
        cache.Lookup(new_gen, 0, b, BlockKind::kDocs);
    ASSERT_NE(kept, nullptr);
    EXPECT_EQ(kept->docs[0], b + 100u);
  }
}

TEST(BlockCacheTest, EraseDoesNotInvalidatePinnedBlocks) {
  // An in-flight request holds a BlockPtr while the server erases its
  // generation: the shared_ptr keeps the decoded block alive and intact.
  BlockCache cache(size_t{1} << 20);
  const uint64_t gen = BlockCache::NextGeneration();
  cache.Insert(gen, 0, 0, BlockKind::kDocs, MakeBlock(42));
  const BlockCache::BlockPtr pinned =
      cache.Lookup(gen, 0, 0, BlockKind::kDocs);
  ASSERT_NE(pinned, nullptr);
  cache.EraseGeneration(gen);
  EXPECT_EQ(cache.Lookup(gen, 0, 0, BlockKind::kDocs), nullptr);
  EXPECT_EQ(pinned->docs[0], 42u);  // still valid
}

TEST(BlockCacheTest, DuplicateInsertIsTolerated) {
  // Two threads can miss the same block and both insert; the loser's
  // insert must not double-charge resident bytes. The resident entry is
  // kept (in production both decodes are bit-identical).
  BlockCache cache(size_t{1} << 20);
  const uint64_t gen = BlockCache::NextGeneration();
  cache.Insert(gen, 5, 5, BlockKind::kFull, MakeBlock(1));
  const uint64_t bytes_once = cache.snapshot().bytes;
  cache.Insert(gen, 5, 5, BlockKind::kFull, MakeBlock(2));
  EXPECT_EQ(cache.snapshot().bytes, bytes_once);
  EXPECT_EQ(cache.snapshot().entries, 1u);
  const BlockCache::BlockPtr got = cache.Lookup(gen, 5, 5, BlockKind::kFull);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->docs[0], 1u);  // resident entry kept
}

TEST(BlockCacheTest, TlsCountersAccumulatePerThread) {
  BlockCache cache(size_t{1} << 20);
  const uint64_t gen = BlockCache::NextGeneration();
  std::thread worker([&] {
    BlockCacheTls& tls = TlsBlockCacheCounters();
    const BlockCacheTls before = tls;
    (void)cache.Lookup(gen, 9, 0, BlockKind::kFull);  // miss
    cache.Insert(gen, 9, 0, BlockKind::kFull, MakeBlock(0));
    (void)cache.Lookup(gen, 9, 0, BlockKind::kFull);  // hit
    EXPECT_EQ(tls.misses - before.misses, 1u);
    EXPECT_EQ(tls.hits - before.hits, 1u);
    EXPECT_EQ(tls.payload_decodes - before.payload_decodes, 1u);
  });
  worker.join();
  // This thread saw none of the worker's traffic.
  BlockCacheTls& tls = TlsBlockCacheCounters();
  const BlockCacheTls main_before = tls;
  (void)cache.Lookup(gen, 9, 0, BlockKind::kFull);  // hit on main thread
  EXPECT_EQ(tls.hits - main_before.hits, 1u);
}

TEST(BlockCacheTest, ConcurrentMixedTrafficIsSafe) {
  // Smoke test for the mutex protocol (meaningful under TSan): readers,
  // writers, and an eraser race on a small cache.
  BlockCache cache(8 * BlockCache::kEntryCharge);
  const uint64_t gen_a = BlockCache::NextGeneration();
  const uint64_t gen_b = BlockCache::NextGeneration();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const uint64_t gen = (t % 2 == 0) ? gen_a : gen_b;
      for (uint32_t i = 0; i < 200; ++i) {
        const uint32_t block = i % 16;
        BlockCache::BlockPtr found =
            cache.Lookup(gen, 0, block, BlockKind::kDocs);
        if (found == nullptr) {
          cache.Insert(gen, 0, block, BlockKind::kDocs, MakeBlock(block));
        }
        if (i % 50 == 49 && t == 0) cache.EraseGeneration(gen_b);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const BlockCache::Snapshot snap = cache.snapshot();
  EXPECT_LE(snap.bytes, snap.capacity_bytes);
  EXPECT_EQ(snap.hits + snap.misses, 4u * 200u);
}

}  // namespace
}  // namespace graft::index
