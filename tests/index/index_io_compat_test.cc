// v3 <-> v4 <-> v5 format compatibility.
//
// v4 added per-term block-max frontier arrays (the Pareto frontier of
// each posting block's (tf, document length) pairs) inside the per-term
// checksummed records. v5 replaces the materialized posting arrays with
// delta-encoded bit-packed blocks in an mmap-able sectioned layout
// (docs/index-format.md); compression must be bit-transparent — every
// decoded value identical to the v4 arrays — or GRAFT's score-consistency
// guarantee breaks. The contracts under test:
//   * a v4 round trip preserves the block-max metadata bit-for-bit;
//   * a v3 file (written by SaveIndexV3) still loads — with
//     has_block_max() == false, so block-max pruning gates itself off and
//     EXPLAIN reports "blocked: no block-max metadata";
//   * search results are bit-identical across a v3-loaded and a v4-loaded
//     index — pruning only changes which documents get scored;
//   * single-byte flips inside the new block-max sections are caught by
//     the per-term CRC (the new arrays are NOT outside checksum coverage).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/maxscore_topk.h"
#include "index/index_io.h"
#include "index/inverted_index.h"
#include "index/posting_list.h"
#include "mcalc/parser.h"
#include "sa/scoring_scheme.h"
#include "text/corpus.h"

namespace graft::index {
namespace {

// PID-unique: ctest runs each test as its own process against the same
// TempDir — shared names would race.
std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/graft_" + std::to_string(::getpid()) +
         "_" + name;
}

InvertedIndex BuildSmallIndex() {
  text::CorpusConfig config = text::WikipediaLikeConfig(60, /*seed=*/7);
  IndexBuilder builder;
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  return builder.Build();
}

// Large enough that common terms span many 128-doc blocks and top-10
// pruning reliably lands whole-block skips (8000 docs is the floor CI
// uses for the pruning bench's same assertion; at 60 docs every term is
// a single block and nothing can be skipped).
InvertedIndex BuildPruneIndex() {
  text::CorpusConfig config = text::WikipediaLikeConfig(8000, /*seed=*/13);
  IndexBuilder builder;
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  return builder.Build();
}

// A few documents only: small enough that the v5 bit-flip fuzz below can
// afford to flip EVERY byte of the file.
InvertedIndex BuildTinyIndex() {
  text::CorpusConfig config = text::WikipediaLikeConfig(8, /*seed=*/21);
  IndexBuilder builder;
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  return builder.Build();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(IndexIoCompatTest, V4RoundTripPreservesBlockMax) {
  const InvertedIndex built = BuildSmallIndex();
  ASSERT_TRUE(built.has_block_max());
  const std::string path = TempPath("v4.idx");
  ASSERT_TRUE(SaveIndex(built, path).ok());
  EXPECT_EQ(ReadFile(path)[7], '4');

  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->has_block_max());
  ASSERT_EQ(loaded->term_count(), built.term_count());
  for (TermId t = 0; t < built.term_count(); ++t) {
    const PostingList& want = built.postings(t);
    const PostingList& got = loaded->postings(t);
    ASSERT_EQ(got.block_count(), want.block_count()) << "term " << t;
    EXPECT_EQ(got.raw_frontier_start(), want.raw_frontier_start())
        << "term " << t;
    EXPECT_EQ(got.raw_frontier_tf(), want.raw_frontier_tf()) << "term " << t;
    EXPECT_EQ(got.raw_frontier_doc_length(), want.raw_frontier_doc_length())
        << "term " << t;
  }
}

TEST(IndexIoCompatTest, V3LoadsWithPruningAutoDisabled) {
  const InvertedIndex built = BuildSmallIndex();
  const std::string path = TempPath("v3.idx");
  ASSERT_TRUE(SaveIndexV3(built, path).ok());
  EXPECT_EQ(ReadFile(path)[7], '3');

  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->has_block_max());
  ASSERT_EQ(loaded->term_count(), built.term_count());
  for (TermId t = 0; t < built.term_count(); ++t) {
    EXPECT_EQ(loaded->postings(t).block_count(), 0u) << "term " << t;
    EXPECT_EQ(loaded->postings(t).raw_docs(), built.postings(t).raw_docs())
        << "term " << t;
    EXPECT_EQ(loaded->postings(t).raw_tfs(), built.postings(t).raw_tfs())
        << "term " << t;
  }

  // The pruning gate stands down with the metadata verdict...
  auto query = mcalc::ParseQuery("free software");
  ASSERT_TRUE(query.ok()) << query.status();
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("AnySum");
  ASSERT_NE(scheme, nullptr);
  EXPECT_EQ(exec::MaxScoreTopK::GateVerdict(*query, *scheme, *loaded,
                                            /*overlay=*/nullptr),
            "blocked: no block-max metadata");

  // ...top-k still works (threshold algorithm), never reports pruning, and
  // the rewrite table carries the blocking verdict.
  core::Engine engine(&*loaded);
  core::SearchOptions options;
  options.top_k = 5;
  auto result = engine.SearchQuery(*query, *scheme, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->used_rank_processing);
  EXPECT_FALSE(result->used_block_max_pruning);
  EXPECT_EQ(result->exec_stats.topk_blocks_skipped, 0u);
  EXPECT_EQ(result->exec_stats.topk_ceiling_probes, 0u);
  bool verdict_row = false;
  for (const core::RewriteAttempt& attempt : result->rewrite_attempts) {
    if (attempt.opt == core::Optimization::kBlockMaxPruning) {
      EXPECT_FALSE(attempt.fired);
      EXPECT_NE(attempt.verdict.find("no block-max metadata"),
                std::string::npos)
          << attempt.verdict;
      verdict_row = true;
    }
  }
  EXPECT_TRUE(verdict_row);

  // EXPLAIN's top-k strategy line reports it too.
  auto explain = engine.Explain("free software", "AnySum", options);
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_NE(
      explain->find("block-max prune blocked: no block-max metadata"),
      std::string::npos)
      << *explain;
}

TEST(IndexIoCompatTest, V3AndV4ResultsBitIdentical) {
  const InvertedIndex built = BuildSmallIndex();
  const std::string v3_path = TempPath("v3_results.idx");
  const std::string v4_path = TempPath("v4_results.idx");
  ASSERT_TRUE(SaveIndexV3(built, v3_path).ok());
  ASSERT_TRUE(SaveIndex(built, v4_path).ok());
  auto v3 = LoadIndex(v3_path);
  auto v4 = LoadIndex(v4_path);
  ASSERT_TRUE(v3.ok()) << v3.status();
  ASSERT_TRUE(v4.ok()) << v4.status();

  core::Engine unpruned_engine(&*v3);
  core::Engine pruned_engine(&*v4);
  core::SearchOptions options;
  options.top_k = 10;
  for (const char* query : {"free software", "free | software | windows"}) {
    for (const char* scheme : {"AnySum", "Lucene", "MeanSum"}) {
      auto a = unpruned_engine.Search(query, scheme, options);
      auto b = pruned_engine.Search(query, scheme, options);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      EXPECT_FALSE(a->used_block_max_pruning);
      ASSERT_EQ(a->results.size(), b->results.size())
          << query << " / " << scheme;
      for (size_t i = 0; i < a->results.size(); ++i) {
        EXPECT_EQ(a->results[i].score, b->results[i].score)
            << query << " / " << scheme << " rank " << i
            << " (bit-identical required)";
      }
    }
  }
}

TEST(IndexIoCompatTest, BlockMaxSectionBitFlipsRejected) {
  // Walk the v4 layout to the first term's block-max frontier arrays and
  // flip bytes inside them: the arrays live INSIDE the per-term
  // checksummed record, so every flip must come back as kCorruption.
  const InvertedIndex built = BuildSmallIndex();
  const std::string path = TempPath("v4flip.idx");
  ASSERT_TRUE(SaveIndex(built, path).ok());
  std::string bytes = ReadFile(path);

  const auto read_u64 = [&](size_t at) {
    uint64_t v = 0;
    std::memcpy(&v, bytes.data() + at, sizeof(v));
    return v;
  };
  size_t off = 8;                                // magic + version byte
  off += 8 + 8;                                  // doc_count, total_words
  off += 8 + read_u64(off) * sizeof(uint32_t);   // doc_lengths
  off += 4;                                      // header section CRC
  off += 8 + 4;                                  // term_count + CRC
  // First term record: text, then docs/tfs/offset_starts/encoded_offsets.
  uint32_t text_len = 0;
  std::memcpy(&text_len, bytes.data() + off, sizeof(text_len));
  ASSERT_EQ(std::string(bytes.data() + off + 4, text_len),
            built.TermText(0));
  off += 4 + text_len;
  for (const size_t elem : {sizeof(DocId), sizeof(uint32_t),
                            sizeof(uint64_t), sizeof(uint8_t)}) {
    off += 8 + read_u64(off) * elem;
  }
  // `off` is now the u64 length prefix of frontier_start (block_count + 1
  // delimiters), followed by the length-prefixed frontier_tf and
  // frontier_doc_length point arrays.
  const uint64_t delimiters = read_u64(off);
  ASSERT_EQ(delimiters, built.postings(0).block_count() + 1);
  const size_t start_entry = off + 8;               // first delimiter
  const size_t tf_prefix = off + 8 + delimiters * 4;
  const uint64_t points = read_u64(tf_prefix);
  ASSERT_EQ(points, built.postings(0).raw_frontier_tf().size());
  ASSERT_GE(points, 1u);
  const size_t tf_entry = tf_prefix + 8;            // first frontier tf
  const size_t len_entry = tf_prefix + 8 + points * 4 + 8;  // first length
  const std::string corrupt_path = TempPath("v4flip_corrupt.idx");
  for (const size_t target : {off, start_entry, tf_entry, len_entry}) {
    std::string corrupt = bytes;
    corrupt[target] = static_cast<char>(corrupt[target] ^ 0x5A);
    WriteFile(corrupt_path, corrupt);
    auto loaded = LoadIndex(corrupt_path);
    ASSERT_FALSE(loaded.ok())
        << "flip at offset " << target << " went undetected";
    EXPECT_TRUE(loaded.status().code() == StatusCode::kCorruption ||
                loaded.status().code() == StatusCode::kDataLoss)
        << "offset " << target << ": " << loaded.status();
  }
}

// ---------------------------------------------------------------------------
// v5: compressed, mmap-able postings.
// ---------------------------------------------------------------------------

TEST(IndexIoCompatTest, V5EagerRoundTripBitIdentical) {
  // Save v5, load eagerly (plain LoadIndex): every materialized array must
  // come back bit-identical to the source index — compression is lossless
  // by construction, and any deviation is a score-consistency bug.
  const InvertedIndex built = BuildSmallIndex();
  const std::string path = TempPath("v5.idx");
  ASSERT_TRUE(SaveIndexV5(built, path).ok());
  EXPECT_EQ(ReadFile(path)[7], '5');

  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->is_packed());  // eager load materializes
  EXPECT_TRUE(loaded->has_block_max());
  EXPECT_EQ(loaded->doc_count(), built.doc_count());
  EXPECT_EQ(loaded->total_words(), built.total_words());
  ASSERT_EQ(loaded->term_count(), built.term_count());
  for (TermId t = 0; t < built.term_count(); ++t) {
    SCOPED_TRACE("term " + std::to_string(t));
    const PostingList& want = built.postings(t);
    const PostingList& got = loaded->postings(t);
    EXPECT_EQ(got.raw_docs(), want.raw_docs());
    EXPECT_EQ(got.raw_tfs(), want.raw_tfs());
    EXPECT_EQ(got.raw_offset_starts(), want.raw_offset_starts());
    EXPECT_EQ(got.raw_encoded_offsets(), want.raw_encoded_offsets());
    EXPECT_EQ(got.collection_frequency(), want.collection_frequency());
    EXPECT_EQ(got.raw_frontier_start(), want.raw_frontier_start());
    EXPECT_EQ(got.raw_frontier_tf(), want.raw_frontier_tf());
    EXPECT_EQ(got.raw_frontier_doc_length(), want.raw_frontier_doc_length());
  }
}

TEST(IndexIoCompatTest, V5CompressesRelativeToV4) {
  const InvertedIndex built = BuildSmallIndex();
  const std::string v4_path = TempPath("v5cmp_v4.idx");
  const std::string v5_path = TempPath("v5cmp_v5.idx");
  ASSERT_TRUE(SaveIndex(built, v4_path).ok());
  ASSERT_TRUE(SaveIndexV5(built, v5_path).ok());
  EXPECT_LT(ReadFile(v5_path).size(), ReadFile(v4_path).size());
}

TEST(IndexIoCompatTest, V5MappedLoadDecodesIdentically) {
  // The packed (mmap) load path: no arrays are materialized; every
  // accessor decodes through the block cache. Compare each decoded value
  // against the source index, posting by posting.
  const InvertedIndex built = BuildSmallIndex();
  const std::string path = TempPath("v5map.idx");
  ASSERT_TRUE(SaveIndexV5(built, path).ok());

  auto mapped = LoadIndexMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->is_packed());
  EXPECT_TRUE(mapped->has_block_max());
  EXPECT_NE(mapped->block_cache(), nullptr);
  EXPECT_NE(mapped->cache_generation(), 0u);
  ASSERT_EQ(mapped->term_count(), built.term_count());
  ASSERT_EQ(mapped->doc_count(), built.doc_count());
  for (DocId d = 0; d < built.doc_count(); ++d) {
    ASSERT_EQ(mapped->doc_length(d), built.doc_length(d)) << "doc " << d;
  }
  std::vector<Offset> want_offsets;
  std::vector<Offset> got_offsets;
  for (TermId t = 0; t < built.term_count(); ++t) {
    SCOPED_TRACE("term " + std::to_string(t));
    const PostingList& want = built.postings(t);
    const PostingList& got = mapped->postings(t);
    ASSERT_EQ(got.doc_count(), want.doc_count());
    EXPECT_EQ(got.collection_frequency(), want.collection_frequency());
    ASSERT_EQ(got.block_count(), want.block_count());
    for (size_t p = 0; p < want.doc_count(); ++p) {
      ASSERT_EQ(got.doc_at(p), want.doc_at(p)) << "posting " << p;
      ASSERT_EQ(got.tf_at(p), want.tf_at(p)) << "posting " << p;
      want.DecodeOffsets(p, &want_offsets);
      got.DecodeOffsets(p, &got_offsets);
      ASSERT_EQ(got_offsets, want_offsets) << "posting " << p;
    }
    // GallopTo agrees at every reachable target (exact and between-docs).
    for (size_t p = 0; p < want.doc_count(); ++p) {
      const DocId target = want.doc_at(p);
      ASSERT_EQ(got.GallopTo(0, target), want.GallopTo(0, target));
      ASSERT_EQ(got.GallopTo(0, target + 1), want.GallopTo(0, target + 1));
    }
    ASSERT_EQ(got.GallopTo(0, static_cast<DocId>(built.doc_count())),
              want.GallopTo(0, static_cast<DocId>(built.doc_count())));
  }
}

TEST(IndexIoCompatTest, V5SearchBitIdenticalAcrossLoadModes) {
  // Same queries, same schemes, three load modes of the same logical
  // index: v4 (materialized), v5 eager, v5 mapped. Scores must agree to
  // the last bit.
  const InvertedIndex built = BuildSmallIndex();
  const std::string v4_path = TempPath("v5modes_v4.idx");
  const std::string v5_path = TempPath("v5modes_v5.idx");
  ASSERT_TRUE(SaveIndex(built, v4_path).ok());
  ASSERT_TRUE(SaveIndexV5(built, v5_path).ok());
  auto v4 = LoadIndex(v4_path);
  auto v5_eager = LoadIndex(v5_path);
  auto v5_mapped = LoadIndexMapped(v5_path);
  ASSERT_TRUE(v4.ok()) << v4.status();
  ASSERT_TRUE(v5_eager.ok()) << v5_eager.status();
  ASSERT_TRUE(v5_mapped.ok()) << v5_mapped.status();

  core::Engine v4_engine(&*v4);
  core::Engine eager_engine(&*v5_eager);
  core::Engine mapped_engine(&*v5_mapped);
  core::SearchOptions options;
  options.top_k = 10;
  for (const char* query :
       {"free software", "free | software | windows",
        "(free software)WINDOW[20] system"}) {
    for (const char* scheme : {"AnySum", "Lucene", "MeanSum"}) {
      SCOPED_TRACE(std::string(query) + " / " + scheme);
      auto a = v4_engine.Search(query, scheme, options);
      auto b = eager_engine.Search(query, scheme, options);
      auto c = mapped_engine.Search(query, scheme, options);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      ASSERT_TRUE(c.ok()) << c.status();
      ASSERT_EQ(b->results.size(), a->results.size());
      ASSERT_EQ(c->results.size(), a->results.size());
      for (size_t i = 0; i < a->results.size(); ++i) {
        EXPECT_EQ(b->results[i].doc, a->results[i].doc) << "rank " << i;
        EXPECT_EQ(b->results[i].score, a->results[i].score) << "rank " << i;
        EXPECT_EQ(c->results[i].doc, a->results[i].doc) << "rank " << i;
        EXPECT_EQ(c->results[i].score, a->results[i].score) << "rank " << i;
      }
    }
  }
}

TEST(IndexIoCompatTest, V5MaxScoreSkipsBlocksWithoutPayloadDecodes) {
  // The point of the two-granularity cache: block-max pruning on a packed
  // index must align on headers and doc columns only — a SKIPPED block
  // never pays a kFull payload decode. Compare payload decodes between a
  // pruned top-k run and an exhaustive full-ranking run, each on a fresh
  // mapped load (private cache, nothing warm).
  const InvertedIndex built = BuildPruneIndex();
  const std::string path = TempPath("v5prune.idx");
  ASSERT_TRUE(SaveIndexV5(built, path).ok());

  const auto run = [&](bool prune) {
    auto mapped = LoadIndexMapped(path);
    EXPECT_TRUE(mapped.ok()) << mapped.status();
    core::Engine engine(&*mapped);
    core::SearchOptions options;
    options.top_k = 10;
    options.allow_rank_processing = prune;
    options.allow_block_max_pruning = prune;
    // Mid-frequency filler vocabulary: hundreds of blocks whose per-block
    // max tf varies, the regime where whole-block ceiling skips fire (the
    // planted paper terms have uniform tf 1 and rarely skip).
    auto result = engine.Search("city", "AnySum", options);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  };

  const core::SearchResult pruned = run(true);
  const core::SearchResult full = run(false);
  ASSERT_TRUE(pruned.used_block_max_pruning);
  ASSERT_GT(pruned.exec_stats.topk_blocks_skipped, 0u);
  // Cache traffic was harvested into the result's ExecStats...
  EXPECT_GT(pruned.exec_stats.block_cache_misses, 0u);
  EXPECT_GT(full.exec_stats.packed_payload_decodes, 0u);
  // ...and the pruned run paid fewer payload decodes than the exhaustive
  // one — skipped blocks stayed packed.
  EXPECT_LT(pruned.exec_stats.packed_payload_decodes,
            full.exec_stats.packed_payload_decodes);
  // Pruning changed the work, not the answer.
  ASSERT_EQ(pruned.results.size(), full.results.size());
  for (size_t i = 0; i < pruned.results.size(); ++i) {
    EXPECT_EQ(pruned.results[i].doc, full.results[i].doc);
    EXPECT_EQ(pruned.results[i].score, full.results[i].score);
  }
}

TEST(IndexIoCompatTest, V5EveryByteFlipRejected) {
  // The v5 layout is byte-accountable: prologue, section table, sections,
  // and alignment padding all sit under a CRC or an explicit zero check.
  // Flipping ANY single byte of the file must fail the load — on both the
  // eager and the mapped path.
  const InvertedIndex built = BuildTinyIndex();
  const std::string path = TempPath("v5fuzz.idx");
  ASSERT_TRUE(SaveIndexV5(built, path).ok());
  const std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 128u);
  const std::string corrupt_path = TempPath("v5fuzz_corrupt.idx");

  for (size_t at = 0; at < bytes.size(); ++at) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
    WriteFile(corrupt_path, corrupt);
    auto eager = LoadIndex(corrupt_path);
    ASSERT_FALSE(eager.ok()) << "eager load survived flip at byte " << at;
    auto mapped = LoadIndexMapped(corrupt_path);
    ASSERT_FALSE(mapped.ok()) << "mapped load survived flip at byte " << at;
    if (at >= 8) {
      // Past the prologue the error is always a checked class. (A prologue
      // flip may route to the legacy loaders, whose own sniffing rejects
      // the file with their own codes.)
      EXPECT_TRUE(eager.status().code() == StatusCode::kCorruption ||
                  eager.status().code() == StatusCode::kDataLoss)
          << "byte " << at << ": " << eager.status();
    }
  }
}

TEST(IndexIoCompatTest, V5TruncationRejectedAsDataLoss) {
  const InvertedIndex built = BuildTinyIndex();
  const std::string path = TempPath("v5trunc.idx");
  ASSERT_TRUE(SaveIndexV5(built, path).ok());
  const std::string bytes = ReadFile(path);
  const std::string corrupt_path = TempPath("v5trunc_cut.idx");
  for (const size_t keep :
       {size_t{0}, size_t{4}, size_t{8}, size_t{64}, size_t{127},
        size_t{128}, bytes.size() / 2, bytes.size() - 1}) {
    WriteFile(corrupt_path, bytes.substr(0, keep));
    auto loaded = LoadIndexMapped(corrupt_path);
    ASSERT_FALSE(loaded.ok()) << "truncation to " << keep << " bytes loaded";
    EXPECT_TRUE(loaded.status().code() == StatusCode::kDataLoss ||
                loaded.status().code() == StatusCode::kCorruption ||
                loaded.status().code() == StatusCode::kVersionMismatch)
        << "keep=" << keep << ": " << loaded.status();
  }
}

TEST(IndexIoCompatTest, V5PackedIndexRefusesReSave) {
  // A packed index never materializes its arrays, so saving it again
  // requires an eager round trip; the save APIs say so instead of
  // crashing on the missing arrays.
  const InvertedIndex built = BuildTinyIndex();
  const std::string path = TempPath("v5resave.idx");
  ASSERT_TRUE(SaveIndexV5(built, path).ok());
  auto mapped = LoadIndexMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  const std::string out = TempPath("v5resave_out.idx");
  EXPECT_EQ(SaveIndex(*mapped, out).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(SaveIndexV5(*mapped, out).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace graft::index
