// v3 <-> v4 format compatibility.
//
// v4 added per-term block-max frontier arrays (the Pareto frontier of
// each posting block's (tf, document length) pairs) inside the per-term
// checksummed records. The contracts under test:
//   * a v4 round trip preserves the block-max metadata bit-for-bit;
//   * a v3 file (written by SaveIndexV3) still loads — with
//     has_block_max() == false, so block-max pruning gates itself off and
//     EXPLAIN reports "blocked: no block-max metadata";
//   * search results are bit-identical across a v3-loaded and a v4-loaded
//     index — pruning only changes which documents get scored;
//   * single-byte flips inside the new block-max sections are caught by
//     the per-term CRC (the new arrays are NOT outside checksum coverage).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/maxscore_topk.h"
#include "index/index_io.h"
#include "index/inverted_index.h"
#include "index/posting_list.h"
#include "mcalc/parser.h"
#include "sa/scoring_scheme.h"
#include "text/corpus.h"

namespace graft::index {
namespace {

// PID-unique: ctest runs each test as its own process against the same
// TempDir — shared names would race.
std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/graft_" + std::to_string(::getpid()) +
         "_" + name;
}

InvertedIndex BuildSmallIndex() {
  text::CorpusConfig config = text::WikipediaLikeConfig(60, /*seed=*/7);
  IndexBuilder builder;
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  return builder.Build();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(IndexIoCompatTest, V4RoundTripPreservesBlockMax) {
  const InvertedIndex built = BuildSmallIndex();
  ASSERT_TRUE(built.has_block_max());
  const std::string path = TempPath("v4.idx");
  ASSERT_TRUE(SaveIndex(built, path).ok());
  EXPECT_EQ(ReadFile(path)[7], '4');

  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->has_block_max());
  ASSERT_EQ(loaded->term_count(), built.term_count());
  for (TermId t = 0; t < built.term_count(); ++t) {
    const PostingList& want = built.postings(t);
    const PostingList& got = loaded->postings(t);
    ASSERT_EQ(got.block_count(), want.block_count()) << "term " << t;
    EXPECT_EQ(got.raw_frontier_start(), want.raw_frontier_start())
        << "term " << t;
    EXPECT_EQ(got.raw_frontier_tf(), want.raw_frontier_tf()) << "term " << t;
    EXPECT_EQ(got.raw_frontier_doc_length(), want.raw_frontier_doc_length())
        << "term " << t;
  }
}

TEST(IndexIoCompatTest, V3LoadsWithPruningAutoDisabled) {
  const InvertedIndex built = BuildSmallIndex();
  const std::string path = TempPath("v3.idx");
  ASSERT_TRUE(SaveIndexV3(built, path).ok());
  EXPECT_EQ(ReadFile(path)[7], '3');

  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->has_block_max());
  ASSERT_EQ(loaded->term_count(), built.term_count());
  for (TermId t = 0; t < built.term_count(); ++t) {
    EXPECT_EQ(loaded->postings(t).block_count(), 0u) << "term " << t;
    EXPECT_EQ(loaded->postings(t).raw_docs(), built.postings(t).raw_docs())
        << "term " << t;
    EXPECT_EQ(loaded->postings(t).raw_tfs(), built.postings(t).raw_tfs())
        << "term " << t;
  }

  // The pruning gate stands down with the metadata verdict...
  auto query = mcalc::ParseQuery("free software");
  ASSERT_TRUE(query.ok()) << query.status();
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("AnySum");
  ASSERT_NE(scheme, nullptr);
  EXPECT_EQ(exec::MaxScoreTopK::GateVerdict(*query, *scheme, *loaded,
                                            /*overlay=*/nullptr),
            "blocked: no block-max metadata");

  // ...top-k still works (threshold algorithm), never reports pruning, and
  // the rewrite table carries the blocking verdict.
  core::Engine engine(&*loaded);
  core::SearchOptions options;
  options.top_k = 5;
  auto result = engine.SearchQuery(*query, *scheme, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->used_rank_processing);
  EXPECT_FALSE(result->used_block_max_pruning);
  EXPECT_EQ(result->exec_stats.topk_blocks_skipped, 0u);
  EXPECT_EQ(result->exec_stats.topk_ceiling_probes, 0u);
  bool verdict_row = false;
  for (const core::RewriteAttempt& attempt : result->rewrite_attempts) {
    if (attempt.opt == core::Optimization::kBlockMaxPruning) {
      EXPECT_FALSE(attempt.fired);
      EXPECT_NE(attempt.verdict.find("no block-max metadata"),
                std::string::npos)
          << attempt.verdict;
      verdict_row = true;
    }
  }
  EXPECT_TRUE(verdict_row);

  // EXPLAIN's top-k strategy line reports it too.
  auto explain = engine.Explain("free software", "AnySum", options);
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_NE(
      explain->find("block-max prune blocked: no block-max metadata"),
      std::string::npos)
      << *explain;
}

TEST(IndexIoCompatTest, V3AndV4ResultsBitIdentical) {
  const InvertedIndex built = BuildSmallIndex();
  const std::string v3_path = TempPath("v3_results.idx");
  const std::string v4_path = TempPath("v4_results.idx");
  ASSERT_TRUE(SaveIndexV3(built, v3_path).ok());
  ASSERT_TRUE(SaveIndex(built, v4_path).ok());
  auto v3 = LoadIndex(v3_path);
  auto v4 = LoadIndex(v4_path);
  ASSERT_TRUE(v3.ok()) << v3.status();
  ASSERT_TRUE(v4.ok()) << v4.status();

  core::Engine unpruned_engine(&*v3);
  core::Engine pruned_engine(&*v4);
  core::SearchOptions options;
  options.top_k = 10;
  for (const char* query : {"free software", "free | software | windows"}) {
    for (const char* scheme : {"AnySum", "Lucene", "MeanSum"}) {
      auto a = unpruned_engine.Search(query, scheme, options);
      auto b = pruned_engine.Search(query, scheme, options);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      EXPECT_FALSE(a->used_block_max_pruning);
      ASSERT_EQ(a->results.size(), b->results.size())
          << query << " / " << scheme;
      for (size_t i = 0; i < a->results.size(); ++i) {
        EXPECT_EQ(a->results[i].score, b->results[i].score)
            << query << " / " << scheme << " rank " << i
            << " (bit-identical required)";
      }
    }
  }
}

TEST(IndexIoCompatTest, BlockMaxSectionBitFlipsRejected) {
  // Walk the v4 layout to the first term's block-max frontier arrays and
  // flip bytes inside them: the arrays live INSIDE the per-term
  // checksummed record, so every flip must come back as kCorruption.
  const InvertedIndex built = BuildSmallIndex();
  const std::string path = TempPath("v4flip.idx");
  ASSERT_TRUE(SaveIndex(built, path).ok());
  std::string bytes = ReadFile(path);

  const auto read_u64 = [&](size_t at) {
    uint64_t v = 0;
    std::memcpy(&v, bytes.data() + at, sizeof(v));
    return v;
  };
  size_t off = 8;                                // magic + version byte
  off += 8 + 8;                                  // doc_count, total_words
  off += 8 + read_u64(off) * sizeof(uint32_t);   // doc_lengths
  off += 4;                                      // header section CRC
  off += 8 + 4;                                  // term_count + CRC
  // First term record: text, then docs/tfs/offset_starts/encoded_offsets.
  uint32_t text_len = 0;
  std::memcpy(&text_len, bytes.data() + off, sizeof(text_len));
  ASSERT_EQ(std::string(bytes.data() + off + 4, text_len),
            built.TermText(0));
  off += 4 + text_len;
  for (const size_t elem : {sizeof(DocId), sizeof(uint32_t),
                            sizeof(uint64_t), sizeof(uint8_t)}) {
    off += 8 + read_u64(off) * elem;
  }
  // `off` is now the u64 length prefix of frontier_start (block_count + 1
  // delimiters), followed by the length-prefixed frontier_tf and
  // frontier_doc_length point arrays.
  const uint64_t delimiters = read_u64(off);
  ASSERT_EQ(delimiters, built.postings(0).block_count() + 1);
  const size_t start_entry = off + 8;               // first delimiter
  const size_t tf_prefix = off + 8 + delimiters * 4;
  const uint64_t points = read_u64(tf_prefix);
  ASSERT_EQ(points, built.postings(0).raw_frontier_tf().size());
  ASSERT_GE(points, 1u);
  const size_t tf_entry = tf_prefix + 8;            // first frontier tf
  const size_t len_entry = tf_prefix + 8 + points * 4 + 8;  // first length
  const std::string corrupt_path = TempPath("v4flip_corrupt.idx");
  for (const size_t target : {off, start_entry, tf_entry, len_entry}) {
    std::string corrupt = bytes;
    corrupt[target] = static_cast<char>(corrupt[target] ^ 0x5A);
    WriteFile(corrupt_path, corrupt);
    auto loaded = LoadIndex(corrupt_path);
    ASSERT_FALSE(loaded.ok())
        << "flip at offset " << target << " went undetected";
    EXPECT_TRUE(loaded.status().code() == StatusCode::kCorruption ||
                loaded.status().code() == StatusCode::kDataLoss)
        << "offset " << target << ": " << loaded.status();
  }
}

}  // namespace
}  // namespace graft::index
