// LoadIndex hardening: truncated, bit-flipped, wrong-version, and
// length-inflated index files must all come back as a clean non-ok Status
// — never a crash, never undefined behavior, and never a giant
// allocation driven by a corrupt length field.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "index/index_io.h"
#include "index/inverted_index.h"
#include "text/corpus.h"

namespace graft::index {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

InvertedIndex BuildSmallIndex() {
  text::CorpusConfig config = text::WikipediaLikeConfig(60, /*seed=*/7);
  IndexBuilder builder;
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  return builder.Build();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

class IndexIoCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corruption.idx");
    ASSERT_TRUE(SaveIndex(BuildSmallIndex(), path_).ok());
    bytes_ = ReadFile(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(IndexIoCorruptionTest, IntactFileRoundTrips) {
  auto loaded = LoadIndex(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->doc_count(), 60u);
}

TEST_F(IndexIoCorruptionTest, TruncationAtEveryRegionFailsCleanly) {
  // Truncation points: inside the magic, inside the header scalars,
  // inside the doc-length array, and a dense sweep over the postings
  // region — every one must load as a non-ok Status.
  std::vector<size_t> cuts = {0, 1, 4, 7, 8, 9, 15, 16, 23, 24, 31};
  for (size_t cut = 32; cut < bytes_.size();
       cut += 1 + bytes_.size() / 257) {
    cuts.push_back(cut);
  }
  cuts.push_back(bytes_.size() - 1);
  const std::string truncated_path = TempPath("truncated.idx");
  for (const size_t cut : cuts) {
    ASSERT_LT(cut, bytes_.size());
    WriteFile(truncated_path, bytes_.substr(0, cut));
    auto loaded = LoadIndex(truncated_path);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << cut
                              << " unexpectedly loaded";
  }
}

TEST_F(IndexIoCorruptionTest, BadMagicRejected) {
  std::string corrupt = bytes_;
  corrupt[0] = 'X';
  const std::string corrupt_path = TempPath("badmagic.idx");
  WriteFile(corrupt_path, corrupt);
  auto loaded = LoadIndex(corrupt_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos);
}

TEST_F(IndexIoCorruptionTest, WrongFormatVersionRejectedDistinctly) {
  std::string corrupt = bytes_;
  corrupt[7] = '1';  // version byte; magic prefix intact
  const std::string corrupt_path = TempPath("badversion.idx");
  WriteFile(corrupt_path, corrupt);
  auto loaded = LoadIndex(corrupt_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("format version"),
            std::string::npos)
      << loaded.status().message();
}

TEST_F(IndexIoCorruptionTest, InflatedLengthFieldsRejectedBeforeAllocating) {
  // Overwrite each of the first few u64 length/count fields with a huge
  // value; the loader must refuse (length exceeds remaining bytes or
  // count mismatch) rather than resize to petabytes.
  const size_t u64_offsets[] = {8, 24};  // doc_count, doc_lengths size
  for (const size_t offset : u64_offsets) {
    std::string corrupt = bytes_;
    for (size_t b = 0; b < 8; ++b) {
      corrupt[offset + b] = static_cast<char>(0xFF);
    }
    const std::string corrupt_path = TempPath("inflated.idx");
    WriteFile(corrupt_path, corrupt);
    auto loaded = LoadIndex(corrupt_path);
    EXPECT_FALSE(loaded.ok()) << "inflated u64 at offset " << offset;
  }
}

TEST_F(IndexIoCorruptionTest, RandomByteFlipsNeverCrash) {
  // Deterministic sweep of single-byte flips across the file. Loads may
  // legitimately succeed when the flip hits a score-irrelevant byte that
  // still parses (e.g. inside term text); the invariant under test is "no
  // crash, no UB", with TSan/ASan-style failure surfacing in CI.
  const std::string corrupt_path = TempPath("bitflip.idx");
  for (size_t offset = 0; offset < bytes_.size();
       offset += 1 + bytes_.size() / 193) {
    std::string corrupt = bytes_;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x5A);
    WriteFile(corrupt_path, corrupt);
    auto loaded = LoadIndex(corrupt_path);
    (void)loaded;  // outcome-agnostic: surviving is the assertion
  }
}

TEST(IndexIoTest, MissingFileIsIOError) {
  auto loaded = LoadIndex(TempPath("does-not-exist.idx"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace graft::index
