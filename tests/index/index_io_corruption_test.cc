// LoadIndex hardening: truncated, bit-flipped, wrong-version, and
// length-inflated index files must all come back as a clean non-ok Status
// — never a crash, never undefined behavior, and never a giant
// allocation driven by a corrupt length field.
//
// The v3 format checksums every section (CRC32C), so the contract is
// stronger than "doesn't crash": EVERY corrupted or truncated file is
// rejected, with the failure class encoded in the status code —
//   kDataLoss        truncation / short read / bad magic
//   kVersionMismatch format-version skew
//   kCorruption      checksum mismatch or impossible structure

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "index/index_io.h"
#include "index/inverted_index.h"
#include "text/corpus.h"

namespace graft::index {
namespace {

// PID-unique: ctest runs each test of this suite as its own process, in
// parallel, against the same TempDir — shared names would race.
std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/graft_" + std::to_string(::getpid()) +
         "_" + name;
}

InvertedIndex BuildSmallIndex() {
  text::CorpusConfig config = text::WikipediaLikeConfig(60, /*seed=*/7);
  IndexBuilder builder;
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  return builder.Build();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

class IndexIoCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corruption.idx");
    ASSERT_TRUE(SaveIndex(BuildSmallIndex(), path_).ok());
    bytes_ = ReadFile(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(IndexIoCorruptionTest, IntactFileRoundTrips) {
  auto loaded = LoadIndex(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->doc_count(), 60u);
}

TEST_F(IndexIoCorruptionTest, TruncationAtEveryRegionFailsCleanly) {
  // Truncation points: inside the magic, inside the header scalars,
  // inside the doc-length array, and a dense sweep over the postings
  // region — every one must load as a non-ok Status.
  std::vector<size_t> cuts = {0, 1, 4, 7, 8, 9, 15, 16, 23, 24, 31};
  for (size_t cut = 32; cut < bytes_.size();
       cut += 1 + bytes_.size() / 257) {
    cuts.push_back(cut);
  }
  cuts.push_back(bytes_.size() - 1);
  const std::string truncated_path = TempPath("truncated.idx");
  for (const size_t cut : cuts) {
    ASSERT_LT(cut, bytes_.size());
    WriteFile(truncated_path, bytes_.substr(0, cut));
    auto loaded = LoadIndex(truncated_path);
    ASSERT_FALSE(loaded.ok()) << "truncation at " << cut
                              << " unexpectedly loaded";
    // Truncation is kDataLoss, except when the shrunken file trips the
    // term-count plausibility check first (kCorruption) — never any other
    // class, and never kVersionMismatch (the version byte is intact).
    EXPECT_TRUE(loaded.status().code() == StatusCode::kDataLoss ||
                loaded.status().code() == StatusCode::kCorruption)
        << "truncation at " << cut << ": " << loaded.status();
  }
}

TEST_F(IndexIoCorruptionTest, MidPayloadTruncationIsDataLoss) {
  // Chop the file in the middle of the postings region: the loader hits a
  // short read and must say so with kDataLoss specifically.
  const std::string truncated_path = TempPath("truncated_tail.idx");
  WriteFile(truncated_path, bytes_.substr(0, bytes_.size() - 9));
  auto loaded = LoadIndex(truncated_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
      << loaded.status();
}

TEST_F(IndexIoCorruptionTest, BadMagicRejected) {
  std::string corrupt = bytes_;
  corrupt[0] = 'X';
  const std::string corrupt_path = TempPath("badmagic.idx");
  WriteFile(corrupt_path, corrupt);
  auto loaded = LoadIndex(corrupt_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos);
}

TEST_F(IndexIoCorruptionTest, WrongFormatVersionRejectedDistinctly) {
  std::string corrupt = bytes_;
  corrupt[7] = '1';  // version byte; magic prefix intact
  const std::string corrupt_path = TempPath("badversion.idx");
  WriteFile(corrupt_path, corrupt);
  auto loaded = LoadIndex(corrupt_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kVersionMismatch);
  EXPECT_NE(loaded.status().message().find("format version"),
            std::string::npos)
      << loaded.status().message();
}

TEST_F(IndexIoCorruptionTest, InflatedLengthFieldsRejectedBeforeAllocating) {
  // Overwrite each of the first few u64 length/count fields with a huge
  // value; the loader must refuse (length exceeds remaining bytes or
  // count mismatch) rather than resize to petabytes.
  const size_t u64_offsets[] = {8, 24};  // doc_count, doc_lengths size
  for (const size_t offset : u64_offsets) {
    std::string corrupt = bytes_;
    for (size_t b = 0; b < 8; ++b) {
      corrupt[offset + b] = static_cast<char>(0xFF);
    }
    const std::string corrupt_path = TempPath("inflated.idx");
    WriteFile(corrupt_path, corrupt);
    auto loaded = LoadIndex(corrupt_path);
    EXPECT_FALSE(loaded.ok()) << "inflated u64 at offset " << offset;
  }
}

TEST_F(IndexIoCorruptionTest, EveryByteFlipIsRejectedWithTheRightClass) {
  // Deterministic sweep of single-byte flips across the file. With v3's
  // per-section CRC32C, every byte of the file is covered by the magic
  // comparison, the version check, or a checksum — so EVERY flip must be
  // rejected, and the status code must name the right failure class:
  //   offsets 0..6  magic          -> kDataLoss
  //   offset  7     version byte   -> kVersionMismatch
  //   offsets 8..   section data   -> kCorruption (checksum/structure) or
  //                                   kDataLoss (a flipped length field
  //                                   can fail the remaining-bytes check
  //                                   before its section CRC is reached)
  const std::string corrupt_path = TempPath("bitflip.idx");
  const size_t stride = 1 + bytes_.size() / 509;
  std::vector<size_t> offsets;
  for (size_t offset = 0; offset < 48 && offset < bytes_.size(); ++offset) {
    offsets.push_back(offset);  // dense over magic/version/header scalars
  }
  for (size_t offset = 48; offset < bytes_.size(); offset += stride) {
    offsets.push_back(offset);
  }
  offsets.push_back(bytes_.size() - 1);  // inside the final section CRC
  for (const size_t offset : offsets) {
    std::string corrupt = bytes_;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x5A);
    WriteFile(corrupt_path, corrupt);
    auto loaded = LoadIndex(corrupt_path);
    ASSERT_FALSE(loaded.ok())
        << "flip at offset " << offset << " went undetected";
    const StatusCode code = loaded.status().code();
    if (offset < 7) {
      EXPECT_EQ(code, StatusCode::kDataLoss) << "offset " << offset;
    } else if (offset == 7) {
      EXPECT_EQ(code, StatusCode::kVersionMismatch) << "offset " << offset;
    } else {
      EXPECT_TRUE(code == StatusCode::kCorruption ||
                  code == StatusCode::kDataLoss)
          << "offset " << offset << ": " << loaded.status();
    }
  }
}

TEST_F(IndexIoCorruptionTest, ChecksumByteFlipIsCorruption) {
  // The 4 bytes right after the doc-length payload are the header
  // section's stored CRC; flipping one must read back as kCorruption with
  // a message naming the section.
  const size_t doc_lengths_offset = 8 + 8 + 8 + 8;  // magic+ver, 2 u64s, len
  const size_t header_crc_offset = doc_lengths_offset + 60 * sizeof(uint32_t);
  ASSERT_LT(header_crc_offset + 3, bytes_.size());
  std::string corrupt = bytes_;
  corrupt[header_crc_offset] =
      static_cast<char>(corrupt[header_crc_offset] ^ 0xFF);
  const std::string corrupt_path = TempPath("badcrc.idx");
  WriteFile(corrupt_path, corrupt);
  auto loaded = LoadIndex(corrupt_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("header section"),
            std::string::npos)
      << loaded.status().message();
}

TEST(IndexIoTest, MissingFileIsIOError) {
  auto loaded = LoadIndex(TempPath("does-not-exist.idx"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace graft::index
