#include "index/varint.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"
#include "index/types.h"

namespace graft::index {
namespace {

uint32_t RoundTrip(uint32_t value, size_t* bytes = nullptr) {
  std::vector<uint8_t> buffer;
  PutVarint32(&buffer, value);
  if (bytes != nullptr) *bytes = buffer.size();
  const uint8_t* p = buffer.data();
  const uint32_t decoded = GetVarint32(&p);
  EXPECT_EQ(p, buffer.data() + buffer.size());
  return decoded;
}

TEST(VarintTest, Boundaries) {
  size_t bytes = 0;
  EXPECT_EQ(RoundTrip(0, &bytes), 0u);
  EXPECT_EQ(bytes, 1u);
  EXPECT_EQ(RoundTrip(127, &bytes), 127u);
  EXPECT_EQ(bytes, 1u);
  EXPECT_EQ(RoundTrip(128, &bytes), 128u);
  EXPECT_EQ(bytes, 2u);
  EXPECT_EQ(RoundTrip(16383, &bytes), 16383u);
  EXPECT_EQ(bytes, 2u);
  EXPECT_EQ(RoundTrip(16384, &bytes), 16384u);
  EXPECT_EQ(bytes, 3u);
  EXPECT_EQ(RoundTrip(std::numeric_limits<uint32_t>::max(), &bytes),
            std::numeric_limits<uint32_t>::max());
  EXPECT_EQ(bytes, 5u);
}

TEST(VarintTest, RandomRoundTrips) {
  Rng rng(404);
  for (int i = 0; i < 5000; ++i) {
    const uint32_t value = static_cast<uint32_t>(rng.NextUint64());
    EXPECT_EQ(RoundTrip(value), value);
  }
}

TEST(VarintTest, SequencesDecodeInOrder) {
  std::vector<uint8_t> buffer;
  const uint32_t values[] = {0, 1, 300, 7, 1u << 30, 127, 128};
  for (const uint32_t v : values) {
    PutVarint32(&buffer, v);
  }
  const uint8_t* p = buffer.data();
  for (const uint32_t v : values) {
    EXPECT_EQ(GetVarint32(&p), v);
  }
  EXPECT_EQ(p, buffer.data() + buffer.size());
}

TEST(VarintTest, DeltaEncodingOfTypicalOffsets) {
  // Posting offsets are small gaps: one byte each in the common case.
  std::vector<uint8_t> buffer;
  Offset previous = 0;
  for (const Offset offset : {3u, 5u, 9u, 40u, 41u, 120u}) {
    PutVarint32(&buffer, offset - previous);
    previous = offset;
  }
  EXPECT_EQ(buffer.size(), 6u);
}

}  // namespace
}  // namespace graft::index
