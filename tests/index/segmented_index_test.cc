#include "index/segmented_index.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "index/stats.h"
#include "text/corpus.h"

namespace graft::index {
namespace {

InvertedIndex BuildSmallIndex(uint64_t num_docs) {
  text::CorpusConfig config = text::WikipediaLikeConfig(num_docs, /*seed=*/11);
  IndexBuilder builder;
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  return builder.Build();
}

TEST(SegmentedIndexTest, RejectsZeroSegments) {
  InvertedIndex index = BuildSmallIndex(10);
  EXPECT_FALSE(SegmentedIndex::BuildFromMonolithic(index, 0).ok());
}

TEST(SegmentedIndexTest, ClampsSegmentCountToDocCount) {
  InvertedIndex index = BuildSmallIndex(3);
  auto segmented = SegmentedIndex::BuildFromMonolithic(index, 16);
  ASSERT_TRUE(segmented.ok()) << segmented.status().ToString();
  EXPECT_EQ(segmented->segment_count(), 3u);
}

TEST(SegmentedIndexTest, EmptyIndexYieldsOneEmptySegment) {
  IndexBuilder builder;
  InvertedIndex index = builder.Build();
  auto segmented = SegmentedIndex::BuildFromMonolithic(index, 4);
  ASSERT_TRUE(segmented.ok()) << segmented.status().ToString();
  EXPECT_EQ(segmented->segment_count(), 1u);
  EXPECT_EQ(segmented->doc_count(), 0u);
}

TEST(SegmentedIndexTest, SegmentsPartitionTheDocSpace) {
  InvertedIndex index = BuildSmallIndex(101);
  auto segmented = SegmentedIndex::BuildFromMonolithic(index, 4);
  ASSERT_TRUE(segmented.ok());
  EXPECT_EQ(segmented->doc_count(), index.doc_count());
  EXPECT_EQ(segmented->total_words(), index.total_words());
  DocId next = 0;
  uint64_t docs = 0, words = 0;
  for (size_t s = 0; s < segmented->segment_count(); ++s) {
    const SegmentedIndex::Segment& seg = segmented->segment(s);
    EXPECT_EQ(seg.base, next) << "segment " << s;
    EXPECT_GT(seg.index.doc_count(), 0u);
    next += static_cast<DocId>(seg.index.doc_count());
    docs += seg.index.doc_count();
    words += seg.index.total_words();
  }
  EXPECT_EQ(docs, index.doc_count());
  EXPECT_EQ(words, index.total_words());
}

TEST(SegmentedIndexTest, SharedVocabularyInvariant) {
  // Invariant 1: every segment interns the full monolithic vocabulary in
  // dictionary order, so TermIds are shared across segments and the
  // monolith — including for terms absent from a segment.
  InvertedIndex index = BuildSmallIndex(60);
  auto segmented = SegmentedIndex::BuildFromMonolithic(index, 5);
  ASSERT_TRUE(segmented.ok());
  for (size_t s = 0; s < segmented->segment_count(); ++s) {
    const InvertedIndex& local = segmented->segment(s).index;
    ASSERT_EQ(local.term_count(), index.term_count()) << "segment " << s;
    for (TermId t = 0; t < index.term_count(); ++t) {
      ASSERT_EQ(local.TermText(t), index.TermText(t))
          << "segment " << s << " term " << t;
    }
  }
}

TEST(SegmentedIndexTest, GlobalStatsMatchMonolith) {
  // Invariant 2: collection-level statistics exposed through each
  // segment's GlobalStats are those of the whole corpus.
  InvertedIndex index = BuildSmallIndex(80);
  auto segmented = SegmentedIndex::BuildFromMonolithic(index, 3);
  ASSERT_TRUE(segmented.ok());
  for (size_t s = 0; s < segmented->segment_count(); ++s) {
    const SegmentedIndex::Segment& seg = segmented->segment(s);
    StatsView stats(&seg.index, /*overlay=*/nullptr, &seg.stats);
    EXPECT_EQ(stats.CollectionSize(), index.doc_count());
    EXPECT_DOUBLE_EQ(stats.AverageDocLength(), index.average_doc_length());
    for (TermId t = 0; t < index.term_count(); ++t) {
      ASSERT_EQ(stats.DocFreq(t), index.DocFreq(t))
          << "segment " << s << " term " << index.TermText(t);
      ASSERT_EQ(stats.CollectionFreq(t), index.CollectionFreq(t))
          << "segment " << s << " term " << index.TermText(t);
    }
  }
}

TEST(SegmentedIndexTest, PerDocumentStatsResolveLocally) {
  InvertedIndex index = BuildSmallIndex(80);
  auto segmented = SegmentedIndex::BuildFromMonolithic(index, 3);
  ASSERT_TRUE(segmented.ok());
  for (size_t s = 0; s < segmented->segment_count(); ++s) {
    const SegmentedIndex::Segment& seg = segmented->segment(s);
    for (DocId local = 0; local < seg.index.doc_count(); ++local) {
      const DocId global = segmented->ToGlobal(s, local);
      ASSERT_EQ(seg.index.doc_length(local), index.doc_length(global));
      for (TermId t = 0; t < index.term_count(); ++t) {
        ASSERT_EQ(seg.index.TermFreqInDoc(t, local),
                  index.TermFreqInDoc(t, global))
            << "segment " << s << " doc " << global << " term "
            << index.TermText(t);
      }
    }
  }
}

TEST(SegmentedIndexTest, PostingsSliceExactlyWithPositions) {
  // Rebuild the global posting view from segment postings and compare,
  // positions included (positional predicates run per segment).
  InvertedIndex index = BuildSmallIndex(50);
  auto segmented = SegmentedIndex::BuildFromMonolithic(index, 4);
  ASSERT_TRUE(segmented.ok());
  for (TermId t = 0; t < index.term_count(); ++t) {
    std::vector<std::pair<DocId, std::vector<Offset>>> rebuilt;
    for (size_t s = 0; s < segmented->segment_count(); ++s) {
      const SegmentedIndex::Segment& seg = segmented->segment(s);
      const PostingList& list = seg.index.postings(t);
      for (size_t p = 0; p < list.doc_count(); ++p) {
        rebuilt.emplace_back(segmented->ToGlobal(s, list.doc_at(p)),
                             list.OffsetsAt(p));
      }
    }
    const PostingList& global = index.postings(t);
    ASSERT_EQ(rebuilt.size(), global.doc_count()) << index.TermText(t);
    for (size_t p = 0; p < global.doc_count(); ++p) {
      ASSERT_EQ(rebuilt[p].first, global.doc_at(p)) << index.TermText(t);
      ASSERT_EQ(rebuilt[p].second, global.OffsetsAt(p)) << index.TermText(t);
    }
  }
}

TEST(SegmentedIndexTest, GlobalStatsSurviveMove) {
  // GlobalStats point at heap buffers owned by the SegmentedIndex; a move
  // of the owner must not dangle them.
  InvertedIndex index = BuildSmallIndex(30);
  auto built = SegmentedIndex::BuildFromMonolithic(index, 2);
  ASSERT_TRUE(built.ok());
  SegmentedIndex moved = std::move(built).value();
  for (size_t s = 0; s < moved.segment_count(); ++s) {
    const SegmentedIndex::Segment& seg = moved.segment(s);
    StatsView stats(&seg.index, nullptr, &seg.stats);
    for (TermId t = 0; t < index.term_count(); ++t) {
      ASSERT_EQ(stats.DocFreq(t), index.DocFreq(t));
    }
  }
}

TEST(SegmentedIndexTest, SingleSegmentEqualsMonolith) {
  InvertedIndex index = BuildSmallIndex(25);
  auto segmented = SegmentedIndex::BuildFromMonolithic(index, 1);
  ASSERT_TRUE(segmented.ok());
  ASSERT_EQ(segmented->segment_count(), 1u);
  const SegmentedIndex::Segment& seg = segmented->segment(0);
  EXPECT_EQ(seg.base, 0u);
  EXPECT_EQ(seg.index.doc_count(), index.doc_count());
  EXPECT_EQ(seg.index.total_words(), index.total_words());
}

}  // namespace
}  // namespace graft::index
