// Crash-safety proof for SaveIndex's write-temp / fsync / atomic-rename
// protocol: a forked child process crashes (failpoint abort == _Exit, no
// flush, no cleanup) at EVERY registered save-path failpoint — including
// mid-way through the term loop — and the parent then asserts the
// on-disk invariant:
//
//   the index file is byte-for-byte EITHER the old generation OR the
//   complete new generation, and LoadIndex succeeds on it.
//
// SaveIndex output is deterministic for a given index, so byte equality
// (not just "loads fine") is the strongest checkable form of atomicity.
// Torn temp files may exist after a crash; they must never be visible at
// the real path and must not break the next successful save.

#ifdef GRAFT_FAILPOINTS_ENABLED

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "index/index_io.h"
#include "index/inverted_index.h"
#include "text/corpus.h"

namespace graft::index {
namespace {

// PID-unique: parallel ctest processes share TempDir.
std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/graft_" + std::to_string(::getpid()) +
         "_" + name;
}

InvertedIndex BuildIndex(uint64_t docs, uint64_t seed) {
  text::CorpusConfig config = text::WikipediaLikeConfig(docs, seed);
  IndexBuilder builder;
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  return builder.Build();
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::string();
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// Runs SaveIndex(new_index, path) in a forked child with `failpoint`
// armed to abort on hit `trigger_on_hit`. Returns the child's exit
// status; 134 means the injected crash fired, 0 means the save outran the
// trigger (hit count never reached it).
int CrashingSave(const InvertedIndex& new_index, const std::string& path,
                 const std::string& failpoint, uint64_t trigger_on_hit) {
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    common::FailpointConfig config;
    config.action = common::FailpointAction::kAbort;
    config.trigger_on_hit = trigger_on_hit;
    if (!common::FailpointRegistry::Global().Activate(failpoint, config)
             .ok()) {
      std::_Exit(99);
    }
    const Status saved = SaveIndex(new_index, path);
    // Reaching here means the failpoint never fired (e.g. trigger index
    // beyond the term count): the save must then have fully succeeded.
    std::_Exit(saved.ok() ? 0 : 98);
  }
  int wstatus = 0;
  EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  return WEXITSTATUS(wstatus);
}

class IndexIoChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    old_index_ = BuildIndex(40, /*seed=*/11);
    new_index_ = BuildIndex(55, /*seed=*/22);
    path_ = TempPath("chaos.idx");

    // Establish the old generation and capture its exact bytes.
    ASSERT_TRUE(SaveIndex(old_index_, path_).ok());
    old_bytes_ = ReadFileOrEmpty(path_);
    ASSERT_FALSE(old_bytes_.empty());

    // Capture the new generation's exact bytes via a scratch save.
    const std::string scratch = TempPath("chaos_new.idx");
    ASSERT_TRUE(SaveIndex(new_index_, scratch).ok());
    new_bytes_ = ReadFileOrEmpty(scratch);
    ASSERT_FALSE(new_bytes_.empty());
    ASSERT_NE(old_bytes_, new_bytes_);
    std::remove(scratch.c_str());
  }

  void TearDown() override {
    common::FailpointRegistry::Global().DeactivateAll();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  // The core invariant checked after every injected crash.
  void ExpectIntactGeneration(const std::string& context) {
    const std::string bytes = ReadFileOrEmpty(path_);
    EXPECT_TRUE(bytes == old_bytes_ || bytes == new_bytes_)
        << context << ": index file is neither the old nor the new "
        << "generation (" << bytes.size() << " bytes; old "
        << old_bytes_.size() << ", new " << new_bytes_.size() << ")";
    auto loaded = LoadIndex(path_);
    EXPECT_TRUE(loaded.ok()) << context << ": " << loaded.status();
    if (loaded.ok()) {
      EXPECT_TRUE(loaded->doc_count() == old_index_.doc_count() ||
                  loaded->doc_count() == new_index_.doc_count());
    }
  }

  InvertedIndex old_index_;
  InvertedIndex new_index_;
  std::string path_;
  std::string old_bytes_;
  std::string new_bytes_;
};

TEST_F(IndexIoChaosTest, CrashAtEverySaveFailpointKeepsAGenerationIntact) {
  const std::vector<std::string> names =
      common::FailpointRegistry::Global().RegisteredNames();
  size_t save_sites = 0;
  for (const std::string& name : names) {
    if (name.rfind("index_io.save.", 0) != 0) continue;
    ++save_sites;
    const int exit_code = CrashingSave(new_index_, path_, name,
                                       /*trigger_on_hit=*/1);
    EXPECT_EQ(exit_code, 134) << "crash at " << name << " did not fire";
    ExpectIntactGeneration("crash at " + name);
    // Restore the old generation so every site starts from the same state.
    ASSERT_TRUE(SaveIndex(old_index_, path_).ok());
    ASSERT_EQ(ReadFileOrEmpty(path_), old_bytes_);
  }
  // The harness is only meaningful if it actually exercised the protocol.
  EXPECT_GE(save_sites, 6u);
}

TEST_F(IndexIoChaosTest, CrashMidTermLoopSweep) {
  // Crash on the 1st, 2nd, 5th, 17th, ... hit of the per-term failpoint:
  // the temp file is torn at a different spot each time, and the real
  // path must stay byte-identical to the old generation throughout.
  for (const uint64_t hit : {1u, 2u, 5u, 17u, 50u, 200u}) {
    const int exit_code = CrashingSave(new_index_, path_,
                                       "index_io.save.term", hit);
    if (exit_code == 0) {
      // Trigger index beyond the term count: the save completed, so the
      // file must now be exactly the new generation. Reset and stop.
      EXPECT_EQ(ReadFileOrEmpty(path_), new_bytes_);
      ASSERT_TRUE(SaveIndex(old_index_, path_).ok());
      continue;
    }
    EXPECT_EQ(exit_code, 134) << "hit " << hit;
    EXPECT_EQ(ReadFileOrEmpty(path_), old_bytes_)
        << "old generation disturbed by crash at term hit " << hit;
    ExpectIntactGeneration("crash at term hit " + std::to_string(hit));
  }
}

TEST_F(IndexIoChaosTest, CrashAfterRenameLeavesNewGeneration) {
  // Past the rename the new generation is committed: a crash before the
  // directory sync may cost durability of the rename on a real power
  // failure, but the visible file is the complete new index.
  const int exit_code = CrashingSave(new_index_, path_,
                                     "index_io.save.before_dirsync",
                                     /*trigger_on_hit=*/1);
  ASSERT_EQ(exit_code, 134);
  EXPECT_EQ(ReadFileOrEmpty(path_), new_bytes_);
  auto loaded = LoadIndex(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->doc_count(), new_index_.doc_count());
}

TEST_F(IndexIoChaosTest, LeftoverTempFileIsHarmless) {
  // Crash mid-body: a torn .tmp may remain. The next save must succeed,
  // overwrite it, and remove it.
  const int exit_code = CrashingSave(new_index_, path_,
                                     "index_io.save.term",
                                     /*trigger_on_hit=*/3);
  ASSERT_EQ(exit_code, 134);
  ASSERT_TRUE(SaveIndex(new_index_, path_).ok());
  EXPECT_EQ(ReadFileOrEmpty(path_), new_bytes_);
  EXPECT_FALSE(FileExists(path_ + ".tmp"));
}

TEST_F(IndexIoChaosTest, InjectedTornWriteFailsCleanlyAndKeepsOldIndex) {
  // truncate(N) simulates a short write the writer notices: SaveIndex
  // must return IOError, leave the old generation untouched, and clean up
  // its temp file — no fork needed, the process survives.
  ASSERT_TRUE(common::FailpointRegistry::Global()
                  .ActivateSpec("index_io.save.before_sync=truncate(16)")
                  .ok());
  const Status saved = SaveIndex(new_index_, path_);
  EXPECT_EQ(saved.code(), StatusCode::kIOError);
  common::FailpointRegistry::Global().DeactivateAll();
  EXPECT_EQ(ReadFileOrEmpty(path_), old_bytes_);
  EXPECT_FALSE(FileExists(path_ + ".tmp"));
}

TEST_F(IndexIoChaosTest, InjectedErrorsOnEverySaveSiteKeepOldIndex) {
  for (const std::string& name :
       common::FailpointRegistry::Global().RegisteredNames()) {
    if (name.rfind("index_io.save.", 0) != 0) continue;
    ASSERT_TRUE(common::FailpointRegistry::Global()
                    .ActivateSpec(name + "=error(IOError)")
                    .ok());
    const Status saved = SaveIndex(new_index_, path_);
    common::FailpointRegistry::Global().DeactivateAll();
    if (name == "index_io.save.before_dirsync") {
      // Fired after the commit point: the error surfaces but the new
      // generation is already visible.
      EXPECT_EQ(saved.code(), StatusCode::kIOError) << name;
      EXPECT_EQ(ReadFileOrEmpty(path_), new_bytes_) << name;
      ASSERT_TRUE(SaveIndex(old_index_, path_).ok());
      continue;
    }
    EXPECT_EQ(saved.code(), StatusCode::kIOError) << name;
    EXPECT_EQ(ReadFileOrEmpty(path_), old_bytes_)
        << "old generation disturbed by error at " << name;
    EXPECT_FALSE(FileExists(path_ + ".tmp")) << name;
  }
}

}  // namespace
}  // namespace graft::index

#endif  // GRAFT_FAILPOINTS_ENABLED
