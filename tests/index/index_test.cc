#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "index/index_io.h"
#include "index/inverted_index.h"
#include "index/posting_list.h"
#include "index/stats.h"
#include "text/tokenizer.h"

namespace graft::index {
namespace {

InvertedIndex SmallIndex() {
  IndexBuilder builder;
  builder.AddDocumentStrings(text::Tokenize("free software wine emulator"));
  builder.AddDocumentStrings(text::Tokenize("windows emulator free free"));
  builder.AddDocumentStrings(text::Tokenize("fault line san francisco"));
  return builder.Build();
}

TEST(PostingListTest, AddAndAccess) {
  PostingList list;
  const Offset d0[] = {1, 5, 9};
  const Offset d1[] = {0};
  list.AddDocument(10, d0);
  list.AddDocument(42, d1);
  EXPECT_EQ(list.doc_count(), 2u);
  EXPECT_EQ(list.collection_frequency(), 4u);
  EXPECT_EQ(list.doc_at(0), 10u);
  EXPECT_EQ(list.tf_at(0), 3u);
  ASSERT_EQ(list.OffsetsAt(0).size(), 3u);
  EXPECT_EQ(list.OffsetsAt(0)[2], 9u);
  EXPECT_EQ(list.OffsetsAt(1)[0], 0u);
}

TEST(PostingListTest, GallopFindsTargets) {
  PostingList list;
  const Offset one[] = {0};
  for (DocId d = 0; d < 1000; d += 3) {
    list.AddDocument(d, one);
  }
  EXPECT_EQ(list.GallopTo(0, 0), 0u);
  EXPECT_EQ(list.doc_at(list.GallopTo(0, 301)), 303u);  // next multiple of 3
  EXPECT_EQ(list.doc_at(list.GallopTo(0, 999)), 999u);
  EXPECT_EQ(list.GallopTo(0, 1000), list.doc_count());
  // Galloping from the middle.
  const size_t mid = list.GallopTo(0, 500);
  EXPECT_EQ(list.doc_at(list.GallopTo(mid, 800)), 801u);
}

TEST(PostingCursorTest, SkipToAndIterate) {
  PostingList list;
  const Offset one[] = {7};
  for (DocId d = 2; d < 100; d += 2) {
    list.AddDocument(d, one);
  }
  PostingCursor cursor(&list);
  EXPECT_FALSE(cursor.AtEnd());
  EXPECT_EQ(cursor.doc(), 2u);
  cursor.SkipTo(51);
  EXPECT_EQ(cursor.doc(), 52u);
  cursor.Next();
  EXPECT_EQ(cursor.doc(), 54u);
  cursor.SkipTo(99);
  EXPECT_TRUE(cursor.AtEnd());
}

TEST(InvertedIndexTest, BuildsDictionaryAndStats) {
  InvertedIndex index = SmallIndex();
  EXPECT_EQ(index.doc_count(), 3u);
  EXPECT_EQ(index.total_words(), 12u);
  EXPECT_EQ(index.doc_length(1), 4u);

  const TermId free_term = index.LookupTerm("free");
  ASSERT_NE(free_term, kInvalidTerm);
  EXPECT_EQ(index.DocFreq(free_term), 2u);
  EXPECT_EQ(index.CollectionFreq(free_term), 3u);
  EXPECT_EQ(index.TermFreqInDoc(free_term, 0), 1u);
  EXPECT_EQ(index.TermFreqInDoc(free_term, 1), 2u);
  EXPECT_EQ(index.TermFreqInDoc(free_term, 2), 0u);
  EXPECT_EQ(index.LookupTerm("absent"), kInvalidTerm);
}

TEST(InvertedIndexTest, OffsetsRecorded) {
  InvertedIndex index = SmallIndex();
  const TermId term = index.LookupTerm("free");
  const PostingList& list = index.postings(term);
  // doc 1: "windows emulator free free" -> offsets 2, 3.
  ASSERT_EQ(list.doc_at(1), 1u);
  const auto offsets = list.OffsetsAt(1);
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_EQ(offsets[0], 2u);
  EXPECT_EQ(offsets[1], 3u);
}

TEST(StatsViewTest, OverlayWins) {
  InvertedIndex index = SmallIndex();
  StatsOverlay overlay;
  overlay.SetCollectionSize(4638535);
  overlay.SetDocFreq("free", 332335);
  overlay.SetTermFreqInDoc("free", 0, 17);
  overlay.SetDocLength(0, 207);

  StatsView plain(&index);
  StatsView overlaid(&index, &overlay);
  const TermId term = index.LookupTerm("free");

  EXPECT_EQ(plain.CollectionSize(), 3u);
  EXPECT_EQ(overlaid.CollectionSize(), 4638535u);
  EXPECT_EQ(plain.DocFreq(term), 2u);
  EXPECT_EQ(overlaid.DocFreq(term), 332335u);
  EXPECT_EQ(plain.TermFreqInDoc(term, 0), 1u);
  EXPECT_EQ(overlaid.TermFreqInDoc(term, 0), 17u);
  EXPECT_EQ(plain.DocLength(0), 4u);
  EXPECT_EQ(overlaid.DocLength(0), 207u);
  // Unoverlaid doc falls through.
  EXPECT_EQ(overlaid.DocLength(1), 4u);
}

TEST(IndexIoTest, SaveLoadRoundTrip) {
  InvertedIndex index = SmallIndex();
  const std::string path = ::testing::TempDir() + "/graft_index_test.idx";
  ASSERT_TRUE(SaveIndex(index, path).ok());

  auto loaded_or = LoadIndex(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const InvertedIndex& loaded = *loaded_or;

  EXPECT_EQ(loaded.doc_count(), index.doc_count());
  EXPECT_EQ(loaded.total_words(), index.total_words());
  EXPECT_EQ(loaded.term_count(), index.term_count());
  for (TermId t = 0; t < index.term_count(); ++t) {
    EXPECT_EQ(loaded.TermText(t), index.TermText(t));
    EXPECT_EQ(loaded.DocFreq(t), index.DocFreq(t));
    EXPECT_EQ(loaded.CollectionFreq(t), index.CollectionFreq(t));
    const PostingList& a = index.postings(t);
    const PostingList& b = loaded.postings(t);
    ASSERT_EQ(a.doc_count(), b.doc_count());
    for (size_t i = 0; i < a.doc_count(); ++i) {
      EXPECT_EQ(a.doc_at(i), b.doc_at(i));
      ASSERT_EQ(a.tf_at(i), b.tf_at(i));
      for (size_t j = 0; j < a.tf_at(i); ++j) {
        EXPECT_EQ(a.OffsetsAt(i)[j], b.OffsetsAt(i)[j]);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(IndexIoTest, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/graft_garbage.idx";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not an index", f);
  std::fclose(f);
  const auto result = LoadIndex(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(IndexIoTest, MissingFileIsIOError) {
  const auto result = LoadIndex("/nonexistent/graft.idx");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace graft::index
