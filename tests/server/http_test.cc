// HTTP plumbing units: URL decoding, request-head parsing (including the
// hardening paths — every malformed input must come back as a Status),
// response serialization, and JSON escaping.

#include "server/http.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

namespace graft::server {
namespace {

TEST(UrlDecodeTest, PassThroughAndPlus) {
  auto decoded = UrlDecode("abc-def_~.x+y");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "abc-def_~.x y");
}

TEST(UrlDecodeTest, PercentEscapes) {
  auto decoded = UrlDecode("%28windows%20emulator%29WINDOW%5B50%5D");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "(windows emulator)WINDOW[50]");
}

TEST(UrlDecodeTest, RejectsTruncatedEscape) {
  EXPECT_FALSE(UrlDecode("abc%2").ok());
  EXPECT_FALSE(UrlDecode("abc%").ok());
}

TEST(UrlDecodeTest, RejectsInvalidHex) {
  EXPECT_FALSE(UrlDecode("%zz").ok());
  EXPECT_FALSE(UrlDecode("%4g").ok());
}

TEST(UrlEncodeTest, RoundTripsThroughDecode) {
  const std::string original = "(foss | \"free software\")WINDOW[50] 100%";
  auto decoded = UrlDecode(UrlEncode(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(ParseRequestHeadTest, ParsesLineParamsAndHeaders) {
  auto request = ParseRequestHead(
      "GET /search?q=free%20software&k=10&scheme=MeanSum HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Trace:  abc \r\n"
      "\r\n");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/search");
  EXPECT_EQ(request->params.at("q"), "free software");
  EXPECT_EQ(request->params.at("k"), "10");
  EXPECT_EQ(request->params.at("scheme"), "MeanSum");
  EXPECT_EQ(request->headers.at("host"), "localhost");
  EXPECT_EQ(request->headers.at("x-trace"), "abc");  // trimmed, key lowered
}

TEST(ParseRequestHeadTest, AcceptsBareLfLineEndings) {
  auto request = ParseRequestHead("GET /healthz HTTP/1.0\nHost: x\n\n");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->path, "/healthz");
}

TEST(ParseRequestHeadTest, ValuelessAndEmptyParams) {
  auto request = ParseRequestHead("GET /search?q=&flag&&a=1 HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->params.at("q"), "");
  EXPECT_EQ(request->params.at("flag"), "");
  EXPECT_EQ(request->params.at("a"), "1");
}

TEST(ParseRequestHeadTest, RejectsMalformedInputs) {
  // No line terminator at all.
  EXPECT_FALSE(ParseRequestHead("GET /x HTTP/1.1").ok());
  // Too few / too many request-line tokens.
  EXPECT_FALSE(ParseRequestHead("GET /x\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequestHead("GET /x HTTP/1.1 extra\r\n\r\n").ok());
  // Unsupported version.
  EXPECT_FALSE(ParseRequestHead("GET /x HTTP/2.0\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequestHead("GET /x SPDY\r\n\r\n").ok());
  // Non-origin-form target.
  EXPECT_FALSE(ParseRequestHead("GET http://a/b HTTP/1.1\r\n\r\n").ok());
  // Bad percent-escape in target.
  EXPECT_FALSE(ParseRequestHead("GET /x?q=%zz HTTP/1.1\r\n\r\n").ok());
  // Header line without a colon, and empty header name.
  EXPECT_FALSE(
      ParseRequestHead("GET /x HTTP/1.1\r\nbroken header\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequestHead("GET /x HTTP/1.1\r\n: v\r\n\r\n").ok());
  // Empty parameter name.
  EXPECT_FALSE(ParseRequestHead("GET /x?=v HTTP/1.1\r\n\r\n").ok());
}

TEST(SerializeResponseTest, WellFormed) {
  const std::string wire = SerializeResponse(200, "application/json", "{}");
  EXPECT_EQ(wire,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            "Content-Length: 2\r\nConnection: close\r\n\r\n{}");
}

TEST(SerializeResponseTest, ReasonPhrases) {
  EXPECT_EQ(StatusReason(503), "Service Unavailable");
  EXPECT_EQ(StatusReason(504), "Gateway Timeout");
  EXPECT_EQ(StatusReason(418), "Unknown");
}

TEST(JsonAppendEscapedTest, EscapesControlAndSpecials) {
  std::string out;
  JsonAppendEscaped(&out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
}

TEST(ListenerTest, EphemeralBindReportsPort) {
  TcpListener listener;
  ASSERT_TRUE(listener.Bind(0).ok());
  EXPECT_GT(listener.port(), 0);
}

TEST(ListenerTest, ClientServerRoundTrip) {
  TcpListener listener;
  ASSERT_TRUE(listener.Bind(0).ok());
  std::thread server([&] {
    auto fd = listener.Accept();
    ASSERT_TRUE(fd.ok()) << fd.status();
    auto request = ReadRequest(*fd);
    ASSERT_TRUE(request.ok()) << request.status();
    EXPECT_EQ(request->path, "/ping");
    ASSERT_TRUE(WriteResponse(*fd, 200, "text/plain", "pong").ok());
    ::close(*fd);
  });
  auto response = HttpGet(listener.port(), "/ping");
  server.join();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, "pong");
}

TEST(ListenerTest, BindFailsFastWithClearErrorWhenPortTaken) {
  TcpListener first;
  ASSERT_TRUE(first.Bind(0).ok());
  TcpListener second;
  const Status status = second.Bind(first.port());
  EXPECT_FALSE(status.ok());
  // The message must name the port and say what to do — the graft_server /
  // graft_router startup error a misconfigured operator actually reads.
  EXPECT_NE(status.message().find(std::to_string(first.port())),
            std::string::npos)
      << status;
  EXPECT_NE(status.message().find("already in use"), std::string::npos)
      << status;
  first.Close();
}

TEST(SendAllTest, PeerClosingMidResponseDoesNotKillTheProcess) {
  // Regression for the transport hardening: a peer that disappears while
  // the server is still writing must surface as an IOError on that fd —
  // not as a SIGPIPE that terminates the process. A large body guarantees
  // the kernel send buffer fills and the write hits the dead socket.
  TcpListener listener;
  ASSERT_TRUE(listener.Bind(0).ok());
  std::thread server([&] {
    auto fd = listener.Accept(2000);
    ASSERT_TRUE(fd.ok()) << fd.status();
    auto request = ReadRequest(*fd);
    ASSERT_TRUE(request.ok()) << request.status();
    // 32 MiB: far beyond any socket buffer, so SendAll is mid-flight when
    // the client hangs up.
    const std::string huge(32 * 1024 * 1024, 'x');
    const Status sent = WriteResponse(*fd, 200, "text/plain", huge);
    // Either the peer died mid-write (IOError) or the kernel buffered a
    // surprising amount (ok); both are fine — being alive is the test.
    EXPECT_TRUE(sent.ok() || sent.code() == StatusCode::kIOError)
        << sent;
    ::close(*fd);
  });

  // A raw client that sends the request and slams the connection shut
  // without reading a single response byte.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(listener.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string request = "GET /never-read HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(SendAll(fd, request).ok());
    // RST on close (SO_LINGER 0) so the server's in-flight writes fail
    // immediately instead of filling a dead socket's window.
    linger hard{.l_onoff = 1, .l_linger = 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    ::close(fd);
  }
  server.join();
  // The process is alive to run this line — SIGPIPE did not fire.
  SUCCEED();
}

}  // namespace
}  // namespace graft::server
