// HTTP plumbing units: URL decoding, request-head parsing (including the
// hardening paths — every malformed input must come back as a Status),
// response serialization, and JSON escaping.

#include "server/http.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>

namespace graft::server {
namespace {

TEST(UrlDecodeTest, PassThroughAndPlus) {
  auto decoded = UrlDecode("abc-def_~.x+y");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "abc-def_~.x y");
}

TEST(UrlDecodeTest, PercentEscapes) {
  auto decoded = UrlDecode("%28windows%20emulator%29WINDOW%5B50%5D");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "(windows emulator)WINDOW[50]");
}

TEST(UrlDecodeTest, RejectsTruncatedEscape) {
  EXPECT_FALSE(UrlDecode("abc%2").ok());
  EXPECT_FALSE(UrlDecode("abc%").ok());
}

TEST(UrlDecodeTest, RejectsInvalidHex) {
  EXPECT_FALSE(UrlDecode("%zz").ok());
  EXPECT_FALSE(UrlDecode("%4g").ok());
}

TEST(UrlEncodeTest, RoundTripsThroughDecode) {
  const std::string original = "(foss | \"free software\")WINDOW[50] 100%";
  auto decoded = UrlDecode(UrlEncode(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(ParseRequestHeadTest, ParsesLineParamsAndHeaders) {
  auto request = ParseRequestHead(
      "GET /search?q=free%20software&k=10&scheme=MeanSum HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Trace:  abc \r\n"
      "\r\n");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/search");
  EXPECT_EQ(request->params.at("q"), "free software");
  EXPECT_EQ(request->params.at("k"), "10");
  EXPECT_EQ(request->params.at("scheme"), "MeanSum");
  EXPECT_EQ(request->headers.at("host"), "localhost");
  EXPECT_EQ(request->headers.at("x-trace"), "abc");  // trimmed, key lowered
}

TEST(ParseRequestHeadTest, AcceptsBareLfLineEndings) {
  auto request = ParseRequestHead("GET /healthz HTTP/1.0\nHost: x\n\n");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->path, "/healthz");
}

TEST(ParseRequestHeadTest, ValuelessAndEmptyParams) {
  auto request = ParseRequestHead("GET /search?q=&flag&&a=1 HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->params.at("q"), "");
  EXPECT_EQ(request->params.at("flag"), "");
  EXPECT_EQ(request->params.at("a"), "1");
}

TEST(ParseRequestHeadTest, RejectsMalformedInputs) {
  // No line terminator at all.
  EXPECT_FALSE(ParseRequestHead("GET /x HTTP/1.1").ok());
  // Too few / too many request-line tokens.
  EXPECT_FALSE(ParseRequestHead("GET /x\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequestHead("GET /x HTTP/1.1 extra\r\n\r\n").ok());
  // Unsupported version.
  EXPECT_FALSE(ParseRequestHead("GET /x HTTP/2.0\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequestHead("GET /x SPDY\r\n\r\n").ok());
  // Non-origin-form target.
  EXPECT_FALSE(ParseRequestHead("GET http://a/b HTTP/1.1\r\n\r\n").ok());
  // Bad percent-escape in target.
  EXPECT_FALSE(ParseRequestHead("GET /x?q=%zz HTTP/1.1\r\n\r\n").ok());
  // Header line without a colon, and empty header name.
  EXPECT_FALSE(
      ParseRequestHead("GET /x HTTP/1.1\r\nbroken header\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequestHead("GET /x HTTP/1.1\r\n: v\r\n\r\n").ok());
  // Empty parameter name.
  EXPECT_FALSE(ParseRequestHead("GET /x?=v HTTP/1.1\r\n\r\n").ok());
}

TEST(SerializeResponseTest, WellFormed) {
  const std::string wire = SerializeResponse(200, "application/json", "{}");
  EXPECT_EQ(wire,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            "Content-Length: 2\r\nConnection: close\r\n\r\n{}");
}

TEST(SerializeResponseTest, ReasonPhrases) {
  EXPECT_EQ(StatusReason(503), "Service Unavailable");
  EXPECT_EQ(StatusReason(504), "Gateway Timeout");
  EXPECT_EQ(StatusReason(418), "Unknown");
}

TEST(JsonAppendEscapedTest, EscapesControlAndSpecials) {
  std::string out;
  JsonAppendEscaped(&out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
}

TEST(ListenerTest, EphemeralBindReportsPort) {
  TcpListener listener;
  ASSERT_TRUE(listener.Bind(0).ok());
  EXPECT_GT(listener.port(), 0);
}

TEST(ListenerTest, ClientServerRoundTrip) {
  TcpListener listener;
  ASSERT_TRUE(listener.Bind(0).ok());
  std::thread server([&] {
    auto fd = listener.Accept();
    ASSERT_TRUE(fd.ok()) << fd.status();
    auto request = ReadRequest(*fd);
    ASSERT_TRUE(request.ok()) << request.status();
    EXPECT_EQ(request->path, "/ping");
    ASSERT_TRUE(WriteResponse(*fd, 200, "text/plain", "pong").ok());
    ::close(*fd);
  });
  auto response = HttpGet(listener.port(), "/ping");
  server.join();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, "pong");
}

}  // namespace
}  // namespace graft::server
