// Observability endpoints of SearchService, over real sockets:
//
//   * /metrics conforms to the Prometheus text exposition format 0.0.4:
//     every line is a comment, a HELP/TYPE declaration, or a sample whose
//     value parses as a number; every sample belongs to a TYPE-declared
//     family; summaries carry quantile labels plus _sum/_count;
//   * /metrics counters agree with the traffic the test actually sent;
//   * ?explain=1 appends the explain block — pinned generation, the FULL
//     rewrite-attempt table (one entry per catalog optimization, each with
//     a gate verdict), all twelve operator counters, and a span trace with
//     parse → optimize → execute spans — and plain requests omit it;
//   * an explain that overlaps a hot reload reports the generation it
//     actually executed on (the pinned snapshot), not the post-reload one;
//   * the slow-query threshold counts into stats.slow_queries and
//     graft_slow_queries_total.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/optimization_gate.h"
#include "core/request.h"
#include "index/index_io.h"
#include "index/inverted_index.h"
#include "server/http.h"
#include "server/search_service.h"
#include "text/corpus.h"

namespace graft::server {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/graft_" + std::to_string(::getpid()) +
         "_" + name;
}

index::InvertedIndex BuildCorpusIndex(uint64_t docs, uint64_t seed) {
  text::CorpusConfig config = text::WikipediaLikeConfig(docs, seed);
  index::IndexBuilder builder;
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  return builder.Build();
}

const core::EngineBundle& SharedBundle() {
  static const core::EngineBundle& bundle = *[] {
    auto made = core::MakeEngineBundle(BuildCorpusIndex(150, /*seed=*/71),
                                       /*segments=*/2, /*pool_threads=*/2);
    EXPECT_TRUE(made.ok()) << made.status();
    return new core::EngineBundle(std::move(made).value());
  }();
  return bundle;
}

std::string SearchTarget(const std::string& query, const std::string& scheme,
                         size_t k, bool explain = false) {
  std::string target = "/search?q=" + UrlEncode(query) +
                       "&scheme=" + scheme + "&k=" + std::to_string(k);
  if (explain) target += "&explain=1";
  return target;
}

// ---- Prometheus text-format conformance ----------------------------------

bool IsMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_' &&
      name[0] != ':') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':') {
      return false;
    }
  }
  return true;
}

// Strips a trailing _sum/_count/_bucket so summary samples map back to
// their declared family name.
std::string FamilyOf(const std::string& sample_name) {
  for (const char* suffix : {"_sum", "_count", "_bucket"}) {
    const std::string s(suffix);
    if (sample_name.size() > s.size() &&
        sample_name.compare(sample_name.size() - s.size(), s.size(), s) ==
            0) {
      return sample_name.substr(0, sample_name.size() - s.size());
    }
  }
  return sample_name;
}

// Validates the exposition format and fills `samples` with values keyed by
// the full sample text before the value ("name" or "name{labels}").
// Void because ASSERT_* requires it; drive through ASSERT_NO_FATAL_FAILURE.
void ParseExposition(const std::string& body,
                     std::map<std::string, double>* samples_out) {
  std::map<std::string, double>& samples = *samples_out;
  EXPECT_FALSE(body.empty());
  EXPECT_EQ(body.back(), '\n') << "exposition must end in a newline";

  std::map<std::string, std::string> types;  // family -> counter/gauge/...
  std::set<std::string> helped;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name;
      fields >> name;
      ASSERT_TRUE(IsMetricName(name)) << line;
      EXPECT_TRUE(helped.insert(name).second)
          << "duplicate HELP for " << name;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, type;
      fields >> name >> type;
      ASSERT_TRUE(IsMetricName(name)) << line;
      ASSERT_TRUE(type == "counter" || type == "gauge" || type == "summary" ||
                  type == "histogram" || type == "untyped")
          << line;
      EXPECT_TRUE(types.emplace(name, type).second)
          << "duplicate TYPE for " << name;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;

    // Sample: name[{labels}] value
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string key = line.substr(0, space);
    const std::string value_text = line.substr(space + 1);
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    ASSERT_TRUE(end != nullptr && *end == '\0')
        << "unparsable value in: " << line;

    std::string name = key;
    const size_t brace = key.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(key.back(), '}') << line;
      name = key.substr(0, brace);
    }
    ASSERT_TRUE(IsMetricName(name)) << line;
    const std::string family = FamilyOf(name);
    EXPECT_TRUE(types.count(family) == 1 || types.count(name) == 1)
        << "sample without TYPE declaration: " << line;
    samples[key] = value;
  }
}

TEST(MetricsTest, PrometheusExpositionConformsAndCountsTraffic) {
  ServiceOptions options;
  SearchService service(SharedBundle().engine.get(), options);
  ASSERT_TRUE(service.Start().ok());

  constexpr int kSearches = 3;
  for (int i = 0; i < kSearches; ++i) {
    auto response =
        HttpGet(service.port(), SearchTarget("software", "MeanSum", 5));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->status_code, 200);
  }
  auto bad = HttpGet(service.port(), "/search?scheme=MeanSum");  // missing q
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status_code, 400);

  auto metrics = HttpGet(service.port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->status_code, 200);
  const auto content_type = metrics->headers.find("content-type");
  ASSERT_NE(content_type, metrics->headers.end());
  EXPECT_NE(content_type->second.find("text/plain"), std::string::npos);
  EXPECT_NE(content_type->second.find("version=0.0.4"), std::string::npos);

  std::map<std::string, double> samples;
  ASSERT_NO_FATAL_FAILURE(ParseExposition(metrics->body, &samples));

  EXPECT_GE(samples.at("graft_requests_total"), kSearches + 1);
  EXPECT_GE(samples.at("graft_responses_ok_total"), kSearches);
  EXPECT_GE(samples.at("graft_client_errors_total"), 1);
  // The missing-q 400 short-circuits before latency recording, so only
  // the successful searches contribute samples.
  EXPECT_EQ(samples.at("graft_search_latency_microseconds_count"),
            kSearches);
  EXPECT_GT(samples.at("graft_search_latency_microseconds_sum"), 0);
  for (const char* quantile : {"0.5", "0.95", "0.99"}) {
    EXPECT_TRUE(samples.count(
        "graft_search_latency_microseconds{quantile=\"" +
        std::string(quantile) + "\"}"))
        << "missing quantile " << quantile;
  }
  EXPECT_EQ(samples.at("graft_search_by_scheme_total{scheme=\"MeanSum\"}"),
            kSearches);
  EXPECT_EQ(samples.at("graft_index_generation"), 1);
  EXPECT_EQ(samples.at("graft_degraded"), 0);
  EXPECT_EQ(samples.at("graft_inflight_requests"), 1);  // this /metrics call
  EXPECT_TRUE(samples.count("graft_uptime_seconds"));

  service.Shutdown();
}

// ---- ?explain=1 ----------------------------------------------------------

TEST(ExplainEndpointTest, ExplainBlockCarriesRewritesCountersAndTrace) {
  ServiceOptions options;
  SearchService service(SharedBundle().engine.get(), options);
  ASSERT_TRUE(service.Start().ok());

  auto plain = HttpGet(service.port(),
                       SearchTarget("free software", "MeanSum", 5));
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->status_code, 200);
  EXPECT_EQ(plain->body.find("\"explain\""), std::string::npos)
      << "explain block must be opt-in";

  auto explained = HttpGet(
      service.port(),
      SearchTarget("free software", "MeanSum", 5, /*explain=*/true));
  ASSERT_TRUE(explained.ok()) << explained.status();
  EXPECT_EQ(explained->status_code, 200);
  const std::string& body = explained->body;

  EXPECT_NE(body.find("\"explain\":{\"generation\":1,"), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"plan\":\""), std::string::npos);

  // The rewrite table is complete: one entry per catalog optimization,
  // each with a verdict.
  for (const core::Optimization opt : core::kAllOptimizations) {
    EXPECT_NE(body.find("\"name\":\"" + core::OptimizationName(opt) + "\""),
              std::string::npos)
        << "missing rewrite entry for " << core::OptimizationName(opt);
  }
  size_t verdicts = 0;
  for (size_t pos = body.find("\"verdict\":"); pos != std::string::npos;
       pos = body.find("\"verdict\":", pos + 1)) {
    ++verdicts;
  }
  EXPECT_EQ(verdicts, std::size(core::kAllOptimizations));
  EXPECT_NE(body.find("\"fired\":true"), std::string::npos)
      << "at least one rewrite must fire for a conjunction under MeanSum";

  // All nineteen operator counters.
  for (const char* counter :
       {"docs_visited", "rows_built", "positions_scanned",
        "count_entries_scanned", "blocks_decoded", "gallop_probes",
        "skip_calls", "skip_hits", "rank_heap_ops", "rank_stopping_depth",
        "docs_scored", "docs_pruned", "topk_blocks_skipped",
        "topk_blocks_decoded", "topk_ceiling_probes",
        "topk_threshold_updates", "topk_sorted_accesses",
        "topk_random_accesses", "topk_bound_refinements"}) {
    EXPECT_NE(body.find("\"" + std::string(counter) + "\":"),
              std::string::npos)
        << "missing counter " << counter;
  }

  // The span trace shows the pipeline stages. (No parse span here: the
  // server hands the engine a pre-parsed query via ResolveRequest.)
  EXPECT_NE(body.find("\"trace\":[{"), std::string::npos);
  for (const char* span :
       {"\"name\":\"optimize\"", "\"name\":\"execute\""}) {
    EXPECT_NE(body.find(span), std::string::npos) << "missing span " << span;
  }
  EXPECT_NE(body.find("rewrite "), std::string::npos)
      << "optimize span should contain per-rewrite events";

  service.Shutdown();
}

TEST(ExplainEndpointTest, ExplainOverlappingReloadReportsPinnedGeneration) {
  const std::string index_path = TempPath("explain_reload.idx");
  ASSERT_TRUE(
      index::SaveIndex(BuildCorpusIndex(100, /*seed=*/13), index_path).ok());
  auto loaded = core::LoadEngineBundle(index_path, /*segments=*/2,
                                       /*pool_threads=*/2);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  ServiceOptions options;
  options.index_path = index_path;
  options.segments = 2;
  options.engine_threads = 2;
  options.default_deadline_ms = 120000;
  options.max_deadline_ms = 120000;
  // The handler pins its engine snapshot + generation BEFORE this delay,
  // so a reload landing inside the window must not change what the explain
  // block reports.
  options.test_search_delay_ms = 400;
  SearchService service(
      std::make_shared<const core::EngineBundle>(std::move(loaded).value()),
      options);
  ASSERT_TRUE(service.Start().ok());

  StatusOr<HttpClientResponse> explained = Status::Internal("not run");
  std::thread searcher([&] {
    explained = HttpGet(service.port(),
                        SearchTarget("software", "MeanSum", 5, true),
                        /*timeout_ms=*/30000);
  });
  // Let the handler pin generation 1, then swap in generation 2 while the
  // search is still sleeping in its delay window.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(service.Reload().ok());
  EXPECT_EQ(service.generation(), 2u);
  searcher.join();

  ASSERT_TRUE(explained.ok()) << explained.status();
  EXPECT_EQ(explained->status_code, 200);
  EXPECT_NE(explained->body.find("\"explain\":{\"generation\":1,"),
            std::string::npos)
      << "explain must describe the pinned (pre-reload) generation: "
      << explained->body.substr(0, 300);

  // A fresh explain after the reload reports the new generation.
  auto after = HttpGet(service.port(),
                       SearchTarget("software", "MeanSum", 5, true),
                       /*timeout_ms=*/30000);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_NE(after->body.find("\"explain\":{\"generation\":2,"),
            std::string::npos);

  service.Shutdown();
  std::remove(index_path.c_str());
}

TEST(MetricsTest, PrunedSearchCountsIntoMetricsStatsAndExplain) {
  ServiceOptions options;
  SearchService service(SharedBundle().engine.get(), options);
  ASSERT_TRUE(service.Start().ok());

  // AnySum licenses block-max pruning (α bounded, ⊕ idempotent); the
  // activation invariant says the pruned operator fires on every licensed
  // top-k keyword search.
  auto pruned = HttpGet(
      service.port(), SearchTarget("free software", "AnySum", 5, true));
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  EXPECT_EQ(pruned->status_code, 200);
  EXPECT_NE(pruned->body.find("\"used_block_max_pruning\":true"),
            std::string::npos)
      << pruned->body.substr(0, 400);
  EXPECT_NE(pruned->body.find("\"topk_ceiling_probes\":"), std::string::npos);

  // MeanSum's α is not upper-boundable: same query, pruning must not fire.
  auto blocked = HttpGet(
      service.port(), SearchTarget("free software", "MeanSum", 5, true));
  ASSERT_TRUE(blocked.ok()) << blocked.status();
  EXPECT_EQ(blocked->status_code, 200);
  EXPECT_NE(blocked->body.find("\"used_block_max_pruning\":false"),
            std::string::npos);
  EXPECT_NE(blocked->body.find("blocked by gate"), std::string::npos)
      << "the explain rewrite table must carry the blocking verdict";

  EXPECT_GE(service.stats().pruned_searches.load(), 1u);
  auto metrics = HttpGet(service.port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  std::map<std::string, double> samples;
  ASSERT_NO_FATAL_FAILURE(ParseExposition(metrics->body, &samples));
  EXPECT_GE(samples.at("graft_pruned_searches_total"), 1);
  EXPECT_TRUE(samples.count("graft_topk_blocks_skipped_total"));
  // Per-rule fire counts: the MeanSum search executed the full rewritten
  // plan, so its fired plan rules (join_reordering among them) were
  // stamped; the AnySum search took the pruned rank path, which skips the
  // plan rewrites entirely.
  EXPECT_GE(
      samples["graft_rewrite_rule_fired_total{rule=\"join_reordering\"}"], 1)
      << metrics->body;
  auto stats = HttpGet(service.port(), "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("\"pruned_searches\":"), std::string::npos);
  EXPECT_NE(stats->body.find("\"topk_blocks_skipped\":"), std::string::npos);
  EXPECT_NE(stats->body.find("\"rule_fired\":{"), std::string::npos);
  EXPECT_NE(stats->body.find("\"join_reordering\":"), std::string::npos);

  service.Shutdown();
}

TEST(SlowQueryTest, ThresholdCountsIntoStatsAndMetrics) {
  ServiceOptions options;
  options.slow_query_ms = 1;         // everything is "slow"
  options.test_search_delay_ms = 5;  // guarantee the threshold trips
  SearchService service(SharedBundle().engine.get(), options);
  ASSERT_TRUE(service.Start().ok());

  auto response =
      HttpGet(service.port(), SearchTarget("software", "Lucene", 5));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status_code, 200);

  EXPECT_EQ(service.stats().slow_queries.load(), 1u);
  auto metrics = HttpGet(service.port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("graft_slow_queries_total 1\n"),
            std::string::npos);
  auto stats = HttpGet(service.port(), "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("\"slow_queries\":1"), std::string::npos);

  service.Shutdown();
}

}  // namespace
}  // namespace graft::server
