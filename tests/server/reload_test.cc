// Hot-reload tests for SearchService: generation swap under concurrent
// load with bit-identical scores, graceful degradation when the reload
// source is corrupt, and recovery back to healthy — all over real sockets.
//
// The invariants being proven:
//   * /admin/reload (and Reload()) swaps the engine atomically: every
//     in-flight and subsequent request answers from EXACTLY one
//     generation, with scores byte-identical (%.17g) to a direct engine
//     call against that generation, for all registered schemes;
//   * zero requests are dropped or broken by a swap under load;
//   * a failed reload keeps the old generation serving (same answers),
//     raises the degraded flag on /stats and /healthz, and records the
//     error; a subsequent good reload clears it.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/request.h"
#include "index/index_io.h"
#include "index/inverted_index.h"
#include "server/http.h"
#include "server/search_service.h"
#include "text/corpus.h"

namespace graft::server {
namespace {

constexpr const char* kSchemes[] = {
    "AnySum",         "AnyProd", "SumBest",    "Lucene",
    "JoinNormalized", "MeanSum", "EventModel", "BestSumMinDist"};

constexpr size_t kSegments = 2;
// Single common term: guaranteed hits in every corpus size used here
// (a multi-term conjunction can be empty in a small synthetic corpus,
// which would make generations indistinguishable).
constexpr const char* kQuery = "software";

// PID-unique: parallel ctest processes share TempDir.
std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/graft_" + std::to_string(::getpid()) +
         "_" + name;
}

index::InvertedIndex BuildCorpusIndex(uint64_t docs, uint64_t seed) {
  text::CorpusConfig config = text::WikipediaLikeConfig(docs, seed);
  index::IndexBuilder builder;
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
        builder.AddDocument(tokens);
      });
  return builder.Build();
}

std::string SearchTarget(const std::string& scheme) {
  return "/search?q=" + UrlEncode(kQuery) + "&scheme=" + scheme + "&k=10";
}

// Ground truth for one (index, scheme): the exact results fragment the
// server must embed while serving that index.
std::string ExpectedFragment(const core::EngineBundle& bundle,
                             const std::string& scheme) {
  core::SearchRequestParams params;
  params.query = kQuery;
  params.scheme = scheme;
  params.top_k = 10;
  auto resolved = core::ResolveRequest(*bundle.engine, params);
  EXPECT_TRUE(resolved.ok()) << resolved.status();
  auto result = bundle.engine->SearchQuery(resolved->query, *resolved->scheme,
                                           resolved->options);
  EXPECT_TRUE(result.ok()) << result.status();
  return SearchService::FormatResultsFragment(result->results);
}

std::string ResultsFragment(const std::string& body) {
  const size_t start = body.find("\"results\":[");
  EXPECT_NE(start, std::string::npos) << body;
  if (start == std::string::npos) return "";
  return body.substr(start, body.size() - start - 1);
}

// A service backed by an index file on disk, reload-capable.
struct ReloadableService {
  std::string index_path;
  std::unique_ptr<SearchService> service;
};

ReloadableService MakeService(const index::InvertedIndex& index,
                              const char* file_name) {
  ReloadableService out;
  out.index_path = TempPath(file_name);
  EXPECT_TRUE(index::SaveIndex(index, out.index_path).ok());
  auto loaded = core::LoadEngineBundle(out.index_path, kSegments,
                                       /*pool_threads=*/2);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  auto bundle = std::make_shared<const core::EngineBundle>(
      std::move(loaded).value());
  ServiceOptions options;
  options.default_deadline_ms = 120000;
  options.max_deadline_ms = 120000;
  options.index_path = out.index_path;
  options.segments = kSegments;
  options.engine_threads = 2;
  out.service = std::make_unique<SearchService>(std::move(bundle), options);
  EXPECT_TRUE(out.service->Start().ok());
  return out;
}

TEST(ReloadTest, AdminReloadBumpsGeneration) {
  auto rs = MakeService(BuildCorpusIndex(120, /*seed=*/5), "reload_gen.idx");
  EXPECT_EQ(rs.service->generation(), 1u);

  auto before = HttpGet(rs.service->port(), "/healthz");
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_NE(before->body.find("\"generation\":1"), std::string::npos)
      << before->body;

  auto reload = HttpGet(rs.service->port(), "/admin/reload");
  ASSERT_TRUE(reload.ok()) << reload.status();
  EXPECT_EQ(reload->status_code, 200) << reload->body;
  EXPECT_NE(reload->body.find("\"reloaded\":true"), std::string::npos)
      << reload->body;
  EXPECT_NE(reload->body.find("\"generation\":2"), std::string::npos)
      << reload->body;
  EXPECT_EQ(rs.service->generation(), 2u);
  EXPECT_FALSE(rs.service->degraded());
  EXPECT_EQ(rs.service->stats().reloads_ok.load(), 1u);

  auto stats = HttpGet(rs.service->port(), "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("\"index_generation\":2"), std::string::npos)
      << stats->body;
  EXPECT_NE(stats->body.find("\"reloads_ok\":1"), std::string::npos);
  rs.service->Shutdown();
  std::remove(rs.index_path.c_str());
}

TEST(ReloadTest, ReloadUnsupportedWithoutIndexPathIs400) {
  // Legacy non-owning construction: no reload source exists.
  index::InvertedIndex index = BuildCorpusIndex(60, /*seed=*/3);
  auto made = core::MakeEngineBundle(std::move(index), 1, 0);
  ASSERT_TRUE(made.ok()) << made.status();
  ServiceOptions options;
  SearchService service(made->engine.get(), options);
  ASSERT_TRUE(service.Start().ok());
  auto reload = HttpGet(service.port(), "/admin/reload");
  ASSERT_TRUE(reload.ok()) << reload.status();
  EXPECT_EQ(reload->status_code, 400) << reload->body;
  EXPECT_NE(reload->body.find("\"reloaded\":false"), std::string::npos);
  EXPECT_EQ(service.generation(), 1u);
  // An unsupported reload is an input error, not a degradation: the
  // engine never left its good state.
  EXPECT_FALSE(service.degraded());
  service.Shutdown();
}

TEST(ReloadTest, SwapUnderConcurrentLoadKeepsScoresBitIdenticalAllSchemes) {
  // The index file starts as generation A, is rewritten on disk to a
  // DIFFERENT index B, and is hot-reloaded repeatedly while 8 client
  // threads (one per scheme) hammer /search. Every single response must
  // carry a fragment byte-identical to ground truth from A or from B —
  // a torn swap, a mixed-generation read, or any score drift fails here.
  index::InvertedIndex index_a = BuildCorpusIndex(150, /*seed=*/41);
  index::InvertedIndex index_b = BuildCorpusIndex(210, /*seed=*/42);
  auto rs = MakeService(index_a, "reload_swap.idx");

  auto bundle_a = core::LoadEngineBundle(rs.index_path, kSegments, 2);
  ASSERT_TRUE(bundle_a.ok());
  ASSERT_TRUE(index::SaveIndex(index_b, rs.index_path).ok());
  auto bundle_b = core::LoadEngineBundle(rs.index_path, kSegments, 2);
  ASSERT_TRUE(bundle_b.ok());

  std::vector<std::string> expected_a;
  std::vector<std::string> expected_b;
  for (const char* scheme : kSchemes) {
    expected_a.push_back(ExpectedFragment(*bundle_a, scheme));
    expected_b.push_back(ExpectedFragment(*bundle_b, scheme));
    // The two generations must actually answer differently for the test
    // to distinguish them (different corpus sizes guarantee it).
    EXPECT_NE(expected_a.back(), expected_b.back()) << scheme;
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> broken{0};
  std::atomic<size_t> mismatched{0};
  std::atomic<size_t> answered{0};
  std::vector<std::thread> clients;
  for (size_t s = 0; s < std::size(kSchemes); ++s) {
    clients.emplace_back([&, s] {
      const std::string target = SearchTarget(kSchemes[s]);
      while (!stop.load(std::memory_order_acquire)) {
        auto response = HttpGet(rs.service->port(), target);
        if (!response.ok() || response->status_code != 200) {
          broken.fetch_add(1);
          continue;
        }
        const std::string fragment = ResultsFragment(response->body);
        if (fragment != expected_a[s] && fragment != expected_b[s]) {
          mismatched.fetch_add(1);
        }
        answered.fetch_add(1);
      }
    });
  }

  // Several swaps while the clients run; every one lands generation B's
  // bytes (the file no longer changes), exercising swap-under-load each
  // time.
  size_t reloads = 0;
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    const Status reloaded = rs.service->Reload();
    EXPECT_TRUE(reloaded.ok()) << reloaded;
    ++reloads;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(broken.load(), 0u);
  EXPECT_EQ(mismatched.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(rs.service->generation(), 1u + reloads);
  EXPECT_EQ(rs.service->stats().reloads_ok.load(), reloads);

  // After the dust settles, answers are exactly generation B's.
  for (size_t s = 0; s < std::size(kSchemes); ++s) {
    auto response = HttpGet(rs.service->port(), SearchTarget(kSchemes[s]));
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->status_code, 200);
    EXPECT_EQ(ResultsFragment(response->body), expected_b[s]) << kSchemes[s];
  }
  rs.service->Shutdown();
  std::remove(rs.index_path.c_str());
}

TEST(ReloadTest, FailedReloadDegradesButKeepsServingOldAnswers) {
  index::InvertedIndex index = BuildCorpusIndex(100, /*seed=*/17);
  auto rs = MakeService(index, "reload_fail.idx");

  // Ground truth from the healthy generation.
  auto bundle = core::LoadEngineBundle(rs.index_path, kSegments, 2);
  ASSERT_TRUE(bundle.ok());
  const std::string expected = ExpectedFragment(*bundle, "MeanSum");

  // Corrupt the on-disk file: flip a byte in the middle (checksummed
  // region), so the reload's LoadIndex fails with kCorruption.
  std::string bytes;
  {
    std::ifstream in(rs.index_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 100u);
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] =
      static_cast<char>(corrupt[bytes.size() / 2] ^ 0x7F);
  {
    std::ofstream out(rs.index_path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }

  auto reload = HttpGet(rs.service->port(), "/admin/reload");
  ASSERT_TRUE(reload.ok()) << reload.status();
  EXPECT_EQ(reload->status_code, 500) << reload->body;
  EXPECT_NE(reload->body.find("\"reloaded\":false"), std::string::npos);
  EXPECT_NE(reload->body.find("\"degraded\":true"), std::string::npos);
  EXPECT_EQ(rs.service->generation(), 1u);
  EXPECT_TRUE(rs.service->degraded());
  EXPECT_EQ(rs.service->stats().reloads_failed.load(), 1u);

  // Degraded is visible on /stats and /healthz...
  auto stats = HttpGet(rs.service->port(), "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("\"degraded\":true"), std::string::npos)
      << stats->body;
  EXPECT_NE(stats->body.find("\"reloads_failed\":1"), std::string::npos);
  // ...with the error recorded.
  EXPECT_EQ(stats->body.find("\"last_reload_error\":\"\""),
            std::string::npos)
      << stats->body;
  auto healthz = HttpGet(rs.service->port(), "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_NE(healthz->body.find("\"status\":\"degraded\""), std::string::npos)
      << healthz->body;

  // ...but the old generation still answers, bit-identically.
  auto search = HttpGet(rs.service->port(), SearchTarget("MeanSum"));
  ASSERT_TRUE(search.ok()) << search.status();
  ASSERT_EQ(search->status_code, 200);
  EXPECT_EQ(ResultsFragment(search->body), expected);

  // Restore the good file: the next reload heals the service.
  {
    std::ofstream out(rs.index_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto heal = HttpGet(rs.service->port(), "/admin/reload");
  ASSERT_TRUE(heal.ok());
  EXPECT_EQ(heal->status_code, 200) << heal->body;
  EXPECT_EQ(rs.service->generation(), 2u);
  EXPECT_FALSE(rs.service->degraded());
  auto stats_after = HttpGet(rs.service->port(), "/stats");
  ASSERT_TRUE(stats_after.ok());
  EXPECT_NE(stats_after->body.find("\"degraded\":false"), std::string::npos);
  EXPECT_NE(stats_after->body.find("\"last_reload_error\":\"\""),
            std::string::npos)
      << stats_after->body;
  rs.service->Shutdown();
  std::remove(rs.index_path.c_str());
}

TEST(ReloadTest, MissingFileReloadDegradesDistinctly) {
  auto rs = MakeService(BuildCorpusIndex(80, /*seed=*/9), "reload_gone.idx");
  ASSERT_EQ(std::remove(rs.index_path.c_str()), 0);
  const Status reloaded = rs.service->Reload();
  EXPECT_EQ(reloaded.code(), StatusCode::kIOError) << reloaded;
  EXPECT_TRUE(rs.service->degraded());
  EXPECT_EQ(rs.service->generation(), 1u);
  // Still serving.
  auto healthz = HttpGet(rs.service->port(), "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status_code, 200);
  rs.service->Shutdown();
}

#ifdef GRAFT_FAILPOINTS_ENABLED
TEST(ReloadTest, FailpointInjectedReloadFailuresDegradeAndRecover) {
  auto rs = MakeService(BuildCorpusIndex(90, /*seed=*/13), "reload_fp.idx");
  auto& registry = common::FailpointRegistry::Global();

  // Fail inside LoadEngineBundle (the bundle-assembly path)...
  ASSERT_TRUE(
      registry.ActivateSpec("core.load_bundle=error(IOError)").ok());
  EXPECT_EQ(rs.service->Reload().code(), StatusCode::kIOError);
  EXPECT_TRUE(rs.service->degraded());
  EXPECT_EQ(rs.service->generation(), 1u);
  registry.DeactivateAll();

  // ...and at the last instant before the swap.
  ASSERT_TRUE(
      registry.ActivateSpec("service.reload.swap=error(Internal)").ok());
  EXPECT_EQ(rs.service->Reload().code(), StatusCode::kInternal);
  EXPECT_TRUE(rs.service->degraded());
  EXPECT_EQ(rs.service->stats().reloads_failed.load(), 2u);
  registry.DeactivateAll();

  // Clean reload recovers.
  EXPECT_TRUE(rs.service->Reload().ok());
  EXPECT_FALSE(rs.service->degraded());
  EXPECT_EQ(rs.service->generation(), 2u);
  rs.service->Shutdown();
  std::remove(rs.index_path.c_str());
}
#endif  // GRAFT_FAILPOINTS_ENABLED

TEST(ReloadTest, RetryAfterSurvivesCombinedOverloadAndReload) {
  // Overload and hot reload at the same time: back-pressure responses must
  // keep their Retry-After header (with the configured value) throughout,
  // and 503s and 504s must be counted distinctly in /stats.
  const std::string index_path = TempPath("retry_after.idx");
  ASSERT_TRUE(
      index::SaveIndex(BuildCorpusIndex(120, /*seed=*/5), index_path).ok());
  auto loaded = core::LoadEngineBundle(index_path, kSegments, 2);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ServiceOptions options;
  options.default_deadline_ms = 120000;
  options.max_deadline_ms = 120000;
  options.index_path = index_path;
  options.segments = kSegments;
  options.engine_threads = 2;
  options.max_inflight = 2;
  options.handler_threads = 2;
  options.test_search_delay_ms = 200;
  options.retry_after_s = 2;
  SearchService service(
      std::make_shared<const core::EngineBundle>(std::move(loaded).value()),
      options);
  ASSERT_TRUE(service.Start().ok());

  // Reload continuously while the flood runs.
  std::atomic<bool> stop_reloads{false};
  std::thread reloader([&] {
    while (!stop_reloads.load()) {
      EXPECT_TRUE(service.Reload().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  constexpr size_t kClients = 8;
  std::atomic<size_t> ok_count{0};
  std::atomic<size_t> rejected{0};
  std::atomic<size_t> bad{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto response = HttpGet(service.port(), SearchTarget("MeanSum"));
      if (!response.ok()) {
        bad.fetch_add(1);
        return;
      }
      if (response->status_code == 200) {
        ok_count.fetch_add(1);
        return;
      }
      if (response->status_code != 503) {
        bad.fetch_add(1);
        return;
      }
      const auto retry_after = response->headers.find("retry-after");
      if (retry_after == response->headers.end() ||
          retry_after->second != "2") {
        bad.fetch_add(1);
        return;
      }
      rejected.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(ok_count.load() + rejected.load(), kClients);
  EXPECT_GT(rejected.load(), 0u);

  // With the flood gone, an impossible client deadline rides the same
  // 200ms handler delay into a 504 — which must also carry the header.
  auto late = HttpGet(service.port(),
                      SearchTarget("MeanSum") + "&deadline_ms=10");
  ASSERT_TRUE(late.ok()) << late.status();
  EXPECT_EQ(late->status_code, 504) << late->body;
  const auto retry_after = late->headers.find("retry-after");
  ASSERT_NE(retry_after, late->headers.end());
  EXPECT_EQ(retry_after->second, "2");
  stop_reloads.store(true);
  reloader.join();

  // The two back-pressure outcomes are distinct counters, and both landed.
  EXPECT_EQ(service.stats().rejected_overload.load(), rejected.load());
  EXPECT_EQ(service.stats().deadline_exceeded.load(), 1u);
  auto stats = HttpGet(service.port(), "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("\"rejected_overload\":" +
                             std::to_string(rejected.load())),
            std::string::npos)
      << stats->body;
  EXPECT_NE(stats->body.find("\"deadline_exceeded\":1"), std::string::npos)
      << stats->body;
  service.Shutdown();
  std::remove(index_path.c_str());
}

}  // namespace
}  // namespace graft::server
