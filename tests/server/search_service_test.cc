// End-to-end SearchService tests over real sockets on an ephemeral port:
//
//   * concurrent correctness — responses are byte-identical (doc ids and
//     %.17g scores) to direct Engine calls, for all eight registered
//     schemes, under multi-threaded client load;
//   * malformed-request hardening — every bad input is a clean 4xx;
//   * admission control — load beyond max_inflight is answered with fast
//     503s, never queued unboundedly;
//   * deadline enforcement — queued-past-deadline and executed-past-
//     deadline requests answer 504;
//   * graceful shutdown — admitted requests drain to completion, new
//     connections are refused afterwards.

#include "server/search_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/request.h"
#include "index/inverted_index.h"
#include "server/http.h"
#include "server/pinned_stats.h"
#include "text/corpus.h"

namespace graft::server {
namespace {

constexpr const char* kSchemes[] = {
    "AnySum",         "AnyProd", "SumBest",    "Lucene",
    "JoinNormalized", "MeanSum", "EventModel", "BestSumMinDist"};

constexpr const char* kQueries[] = {
    "san francisco fault line",
    "(windows emulator)WINDOW[50] (foss | \"free software\")",
    "free software !windows",
    "software",
};

constexpr size_t kSegments = 4;

const core::EngineBundle& SharedBundle() {
  static const core::EngineBundle& bundle = *[] {
    text::CorpusConfig config = text::WikipediaLikeConfig(400, /*seed=*/29);
    index::IndexBuilder builder;
    text::CorpusGenerator generator(config);
    generator.Generate(
        [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
          builder.AddDocument(tokens);
        });
    auto made = core::MakeEngineBundle(builder.Build(), kSegments,
                                       /*pool_threads=*/3);
    EXPECT_TRUE(made.ok()) << made.status();
    return new core::EngineBundle(std::move(made).value());
  }();
  return bundle;
}

std::string SearchTarget(const std::string& query, const std::string& scheme,
                         size_t k) {
  return "/search?q=" + UrlEncode(query) + "&scheme=" + scheme +
         "&k=" + std::to_string(k);
}

// The ground truth a correct response must embed, computed by a direct
// engine call through the same request-resolution path the server uses.
std::string ExpectedFragment(const std::string& query,
                             const std::string& scheme, size_t k) {
  const core::EngineBundle& bundle = SharedBundle();
  core::SearchRequestParams params;
  params.query = query;
  params.scheme = scheme;
  params.top_k = k;
  auto resolved = core::ResolveRequest(*bundle.engine, params);
  EXPECT_TRUE(resolved.ok()) << resolved.status();
  auto result = bundle.engine->SearchQuery(resolved->query, *resolved->scheme,
                                           resolved->options);
  EXPECT_TRUE(result.ok()) << result.status();
  return SearchService::FormatResultsFragment(result->results);
}

// Extracts `"results":[...]` from a 200 body.
std::string ResultsFragment(const std::string& body) {
  const size_t start = body.find("\"results\":[");
  EXPECT_NE(start, std::string::npos) << body;
  if (start == std::string::npos) return "";
  EXPECT_EQ(body.back(), '}') << body;
  return body.substr(start, body.size() - start - 1);
}

// Default options for tests that are not about deadlines: a generous
// per-request deadline so sanitizer slowdown plus a loaded machine never
// turns a correctness test into a spurious 504.
ServiceOptions LenientOptions() {
  ServiceOptions options;
  options.default_deadline_ms = 120000;
  options.max_deadline_ms = 120000;
  return options;
}

TEST(SearchServiceTest, HealthzReportsServing) {
  SearchService service(SharedBundle().engine.get(), LenientOptions());
  ASSERT_TRUE(service.Start().ok());
  auto response = HttpGet(service.port(), "/healthz");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_NE(response->body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response->body.find("\"segments\":4"), std::string::npos)
      << response->body;
  service.Shutdown();
}

TEST(SearchServiceTest, ResponsesBitIdenticalToDirectEngineAllSchemes) {
  SearchService service(SharedBundle().engine.get(), LenientOptions());
  ASSERT_TRUE(service.Start().ok());
  for (const char* scheme : kSchemes) {
    for (const char* query : kQueries) {
      auto response =
          HttpGet(service.port(), SearchTarget(query, scheme, 10));
      ASSERT_TRUE(response.ok()) << response.status();
      ASSERT_EQ(response->status_code, 200)
          << scheme << " " << query << ": " << response->body;
      EXPECT_EQ(ResultsFragment(response->body),
                ExpectedFragment(query, scheme, 10))
          << scheme << " " << query;
    }
  }
  service.Shutdown();
}

TEST(SearchServiceTest, FullResultSetWithKZero) {
  SearchService service(SharedBundle().engine.get(), LenientOptions());
  ASSERT_TRUE(service.Start().ok());
  auto response =
      HttpGet(service.port(), SearchTarget("software", "MeanSum", 0));
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->status_code, 200) << response->body;
  EXPECT_EQ(ResultsFragment(response->body),
            ExpectedFragment("software", "MeanSum", 0));
  service.Shutdown();
}

TEST(SearchServiceTest, ConcurrentClientsStayBitIdentical) {
  SearchService service(SharedBundle().engine.get(), LenientOptions());
  ASSERT_TRUE(service.Start().ok());

  // Precompute ground truth serially (the engine is shared).
  struct Case {
    std::string target;
    std::string expected;
  };
  std::vector<Case> cases;
  for (const char* scheme : kSchemes) {
    for (const char* query : kQueries) {
      cases.push_back({SearchTarget(query, scheme, 10),
                       ExpectedFragment(query, scheme, 10)});
    }
  }

  constexpr size_t kClients = 6;
  constexpr size_t kRequestsPerClient = 24;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        const Case& test_case = cases[(c * 7 + r) % cases.size()];
        auto response = HttpGet(service.port(), test_case.target);
        if (!response.ok() || response->status_code != 200) {
          failures.fetch_add(1);
          continue;
        }
        if (ResultsFragment(response->body) != test_case.expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(service.stats().responses_ok.load(),
            kClients * kRequestsPerClient);
  service.Shutdown();
}

TEST(SearchServiceTest, MalformedRequestsAreClean4xx) {
  SearchService service(SharedBundle().engine.get(), LenientOptions());
  ASSERT_TRUE(service.Start().ok());
  const struct {
    const char* target;
    int expected_code;
  } cases[] = {
      {"/search", 400},                          // missing q
      {"/search?q=", 400},                       // empty q
      {"/search?q=free&scheme=NoSuch", 404},     // unknown scheme
      {"/search?q=free&k=banana", 400},          // non-numeric k
      {"/search?q=free&k=-1", 400},              // negative k
      {"/search?q=free&k=999999999", 400},       // k over server limit
      {"/search?q=free&segments=3", 400},        // partitioning mismatch
      {"/search?q=free&deadline_ms=0", 400},     // zero deadline
      {"/search?q=free&deadline_ms=x", 400},     // non-numeric deadline
      {"/search?q=%28unbalanced", 400},          // query parse error
      {"/search?q=%zz", 400},                    // invalid percent-escape
      {"/nope", 404},                            // unknown endpoint
  };
  for (const auto& test_case : cases) {
    auto response = HttpGet(service.port(), test_case.target);
    ASSERT_TRUE(response.ok()) << test_case.target;
    EXPECT_EQ(response->status_code, test_case.expected_code)
        << test_case.target << ": " << response->body;
    EXPECT_NE(response->body.find("\"error\""), std::string::npos)
        << test_case.target;
  }
  // A request that is not even HTTP.
  {
    auto garbage = HttpGet(service.port(), "not a path");
    // "GET not a path HTTP/1.1" has too many request-line tokens -> 400.
    ASSERT_TRUE(garbage.ok()) << garbage.status();
    EXPECT_EQ(garbage->status_code, 400);
  }
  EXPECT_GT(service.stats().client_errors.load(), 0u);
  service.Shutdown();
}

TEST(SearchServiceTest, SegmentsParamOneForcesMonolithic) {
  SearchService service(SharedBundle().engine.get(), LenientOptions());
  ASSERT_TRUE(service.Start().ok());
  auto segmented =
      HttpGet(service.port(), SearchTarget("software", "MeanSum", 5));
  auto monolithic = HttpGet(
      service.port(), SearchTarget("software", "MeanSum", 5) + "&segments=1");
  ASSERT_TRUE(segmented.ok() && monolithic.ok());
  ASSERT_EQ(segmented->status_code, 200);
  ASSERT_EQ(monolithic->status_code, 200);
  EXPECT_NE(segmented->body.find("\"segments_searched\":4"),
            std::string::npos)
      << segmented->body;
  EXPECT_NE(monolithic->body.find("\"segments_searched\":1"),
            std::string::npos)
      << monolithic->body;
  // Scores are segmentation-invariant.
  EXPECT_EQ(ResultsFragment(segmented->body),
            ResultsFragment(monolithic->body));
  service.Shutdown();
}

TEST(SearchServiceTest, OverloadGetsFast503NotUnboundedQueue) {
  ServiceOptions options;
  options.max_inflight = 2;
  options.handler_threads = 2;
  options.test_search_delay_ms = 300;
  SearchService service(SharedBundle().engine.get(), options);
  ASSERT_TRUE(service.Start().ok());

  constexpr size_t kClients = 8;
  std::atomic<size_t> ok_count{0};
  std::atomic<size_t> rejected_count{0};
  std::atomic<size_t> other{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto response =
          HttpGet(service.port(), SearchTarget("software", "MeanSum", 5));
      if (!response.ok()) {
        other.fetch_add(1);
      } else if (response->status_code == 200) {
        ok_count.fetch_add(1);
      } else if (response->status_code == 503) {
        rejected_count.fetch_add(1);
        // Overload rejections must tell the client when to come back.
        const auto retry_after = response->headers.find("retry-after");
        if (retry_after == response->headers.end() ||
            retry_after->second != "1") {
          other.fetch_add(1);
        }
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(other.load(), 0u);
  EXPECT_EQ(ok_count.load() + rejected_count.load(), kClients);
  // With a 300ms handler delay and a cap of 2, the 8 near-simultaneous
  // clients cannot all be admitted.
  EXPECT_GT(rejected_count.load(), 0u);
  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_EQ(service.stats().rejected_overload.load(), rejected_count.load());
  service.Shutdown();
}

TEST(SearchServiceTest, DeadlineExceededAnswers504) {
  ServiceOptions options;
  options.test_search_delay_ms = 60;
  SearchService service(SharedBundle().engine.get(), options);
  ASSERT_TRUE(service.Start().ok());
  auto response = HttpGet(
      service.port(),
      SearchTarget("software", "MeanSum", 5) + "&deadline_ms=10");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status_code, 504) << response->body;
  // 504s carry Retry-After just like overload 503s.
  const auto retry_after = response->headers.find("retry-after");
  ASSERT_NE(retry_after, response->headers.end());
  EXPECT_EQ(retry_after->second, "1");
  EXPECT_EQ(service.stats().deadline_exceeded.load(), 1u);
  // A generous deadline still succeeds.
  auto fine = HttpGet(
      service.port(),
      SearchTarget("software", "MeanSum", 5) + "&deadline_ms=10000");
  ASSERT_TRUE(fine.ok()) << fine.status();
  EXPECT_EQ(fine->status_code, 200) << fine->body;
  service.Shutdown();
}

TEST(SearchServiceTest, GracefulShutdownDrainsInFlight) {
  ServiceOptions options;
  options.test_search_delay_ms = 150;
  options.handler_threads = 4;
  SearchService service(SharedBundle().engine.get(), options);
  ASSERT_TRUE(service.Start().ok());
  const uint16_t port = service.port();

  constexpr size_t kClients = 4;
  std::atomic<size_t> ok_count{0};
  std::atomic<size_t> rejected_count{0};
  std::atomic<size_t> broken{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto response =
          HttpGet(port, SearchTarget("software", "MeanSum", 5));
      if (response.ok() && response->status_code == 200) {
        ok_count.fetch_add(1);
      } else if (response.ok() && response->status_code == 503) {
        rejected_count.fetch_add(1);
      } else {
        broken.fetch_add(1);
      }
    });
  }
  // Wait until every client has been accepted, then shut down mid-flight
  // (the 150ms handler delay keeps them all in flight meanwhile).
  for (int spin = 0;
       service.stats().requests_total.load() < kClients && spin < 1000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  service.Shutdown();
  for (std::thread& t : clients) t.join();

  // Every admitted request was answered — drained, not dropped.
  EXPECT_EQ(broken.load(), 0u);
  EXPECT_EQ(ok_count.load() + rejected_count.load(), kClients);
  EXPECT_GT(ok_count.load(), 0u);

  // The listener is gone: new connections fail outright.
  auto after = HttpGet(port, "/healthz", /*timeout_ms=*/500);
  EXPECT_FALSE(after.ok());
}

TEST(SearchServiceTest, StatsEndpointReflectsTraffic) {
  SearchService service(SharedBundle().engine.get(), LenientOptions());
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(
      HttpGet(service.port(), SearchTarget("software", "MeanSum", 5)).ok());
  ASSERT_TRUE(
      HttpGet(service.port(), SearchTarget("software", "Lucene", 5)).ok());
  ASSERT_TRUE(HttpGet(service.port(), "/search?q=free&scheme=NoSuch").ok());
  auto stats = HttpGet(service.port(), "/stats");
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->status_code, 200);
  for (const char* field :
       {"\"requests_total\":4", "\"responses_ok\":2", "\"client_errors\":1",
        "\"scheme_counts\":", "\"MeanSum\":1", "\"Lucene\":1",
        "\"search_latency\":", "\"p99_ms\":", "\"uptime_s\":",
        "\"index_generation\":1", "\"degraded\":false",
        "\"last_reload_error\":\"\"", "\"reloads_ok\":0"}) {
    EXPECT_NE(stats->body.find(field), std::string::npos)
        << field << " missing from " << stats->body;
  }
  service.Shutdown();
}

TEST(SearchServiceTest, ShardStatsEndpointReportsGenerationAndTermStats) {
  SearchService service(SharedBundle().engine.get(), LenientOptions());
  ASSERT_TRUE(service.Start().ok());
  const index::InvertedIndex& index = *SharedBundle().index;
  const TermId software = index.LookupTerm("software");
  ASSERT_NE(software, kInvalidTerm);
  auto response =
      HttpGet(service.port(), "/shard/stats?terms=software,nosuchterm");
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->status_code, 200) << response->body;
  EXPECT_NE(response->body.find("\"generation\":1"), std::string::npos);
  EXPECT_NE(response->body.find(
                "\"doc_count\":" + std::to_string(index.doc_count())),
            std::string::npos)
      << response->body;
  EXPECT_NE(response->body.find(
                "\"total_words\":" + std::to_string(index.total_words())),
            std::string::npos);
  EXPECT_NE(
      response->body.find("{\"term\":\"software\",\"df\":" +
                          std::to_string(index.DocFreq(software)) +
                          ",\"cf\":" +
                          std::to_string(index.CollectionFreq(software))),
      std::string::npos)
      << response->body;
  // Unknown terms are a normal partitioning outcome, reported as zeros.
  EXPECT_NE(
      response->body.find("{\"term\":\"nosuchterm\",\"df\":0,\"cf\":0}"),
      std::string::npos)
      << response->body;
  EXPECT_EQ(service.stats().shard_stats_requests.load(), 1u);
  auto stats = HttpGet(service.port(), "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("\"shard_stats_requests\":1"),
            std::string::npos);
  service.Shutdown();
}

TEST(SearchServiceTest, GstatsOverlayOfOwnStatsIsBitIdentical) {
  // The degenerate one-shard deployment: pinning the server's OWN
  // statistics through gstats must reproduce its plain answers exactly —
  // the overlay path introduces no drift.
  SearchService service(SharedBundle().engine.get(), LenientOptions());
  ASSERT_TRUE(service.Start().ok());
  const index::InvertedIndex& index = *SharedBundle().index;
  for (const char* scheme : kSchemes) {
    for (const char* query : kQueries) {
      auto parsed = mcalc::ParseQuery(query);
      ASSERT_TRUE(parsed.ok()) << parsed.status();
      PinnedStats pinned;
      pinned.doc_count = index.doc_count();
      pinned.total_words = index.total_words();
      for (const auto& variable : parsed->variables) {
        const TermId id = index.LookupTerm(variable.keyword);
        pinned.terms.push_back(
            {variable.keyword,
             id == kInvalidTerm ? 0 : index.DocFreq(id),
             id == kInvalidTerm ? 0 : index.CollectionFreq(id)});
      }
      const std::string target =
          SearchTarget(query, scheme, 10) +
          "&gstats=" + UrlEncode(EncodePinnedStats(pinned)) +
          "&expect_gen=1";
      auto overlaid = HttpGet(service.port(), target);
      ASSERT_TRUE(overlaid.ok()) << overlaid.status();
      ASSERT_EQ(overlaid->status_code, 200)
          << scheme << " " << query << ": " << overlaid->body;
      EXPECT_EQ(ResultsFragment(overlaid->body),
                ExpectedFragment(query, scheme, 10))
          << scheme << " " << query;
    }
  }
  service.Shutdown();
}

TEST(SearchServiceTest, ExpectGenMismatchAnswers409Conflict) {
  SearchService service(SharedBundle().engine.get(), LenientOptions());
  ASSERT_TRUE(service.Start().ok());
  // Matching fence: normal answer.
  auto matched = HttpGet(
      service.port(), SearchTarget("software", "MeanSum", 5) + "&expect_gen=1");
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(matched->status_code, 200);
  // Mismatched fence: 409 with both generations, counted distinctly.
  auto conflicted = HttpGet(
      service.port(), SearchTarget("software", "MeanSum", 5) + "&expect_gen=7");
  ASSERT_TRUE(conflicted.ok());
  EXPECT_EQ(conflicted->status_code, 409) << conflicted->body;
  EXPECT_NE(conflicted->body.find("\"error\":\"generation_conflict\""),
            std::string::npos);
  EXPECT_NE(conflicted->body.find("\"expected\":7"), std::string::npos);
  EXPECT_NE(conflicted->body.find("\"generation\":1"), std::string::npos);
  EXPECT_EQ(service.stats().generation_conflicts.load(), 1u);
  auto stats = HttpGet(service.port(), "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("\"generation_conflicts\":1"),
            std::string::npos);
  // Malformed fence values are a client error, not a conflict.
  auto malformed = HttpGet(
      service.port(), SearchTarget("software", "MeanSum", 5) + "&expect_gen=x");
  ASSERT_TRUE(malformed.ok());
  EXPECT_EQ(malformed->status_code, 400);
  EXPECT_EQ(service.stats().generation_conflicts.load(), 1u);
  service.Shutdown();
}

TEST(SearchServiceTest, MalformedGstatsIsClean400) {
  SearchService service(SharedBundle().engine.get(), LenientOptions());
  ASSERT_TRUE(service.Start().ok());
  auto response = HttpGet(
      service.port(),
      SearchTarget("software", "MeanSum", 5) + "&gstats=not-a-codec");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 400) << response->body;
  EXPECT_NE(response->body.find("\"error\""), std::string::npos);
  service.Shutdown();
}

}  // namespace
}  // namespace graft::server
