// ServerStats units: histogram bucketing/percentiles, disjoint outcome
// classification, per-scheme counters, and JSON rendering.

#include "server/server_stats.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace graft::server {
namespace {

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.PercentileMicros(0.5), 0.0);
}

TEST(LatencyHistogramTest, PercentilesAreBucketAccurate) {
  LatencyHistogram histogram;
  // 90 samples at ~1ms, 10 samples at ~100ms.
  for (int i = 0; i < 90; ++i) histogram.Record(1000);
  for (int i = 0; i < 10; ++i) histogram.Record(100000);
  EXPECT_EQ(histogram.count(), 100u);
  // Log-bucketed: the estimate must land within the 2x bucket of truth.
  const double p50 = histogram.PercentileMicros(0.50);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 2048.0);
  const double p99 = histogram.PercentileMicros(0.99);
  EXPECT_GE(p99, 65536.0);
  EXPECT_LE(p99, 262144.0);
}

TEST(LatencyHistogramTest, MonotoneAcrossQuantiles) {
  LatencyHistogram histogram;
  for (uint64_t v = 1; v <= 4096; v *= 2) {
    histogram.Record(v);
  }
  double prev = 0.0;
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double value = histogram.PercentileMicros(q);
    EXPECT_GE(value, prev) << "q=" << q;
    prev = value;
  }
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram.count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogramTest, JsonHasAllFields) {
  LatencyHistogram histogram;
  histogram.Record(1500);
  const std::string json = histogram.ToJson();
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  for (const char* field :
       {"\"mean_ms\":", "\"p50_ms\":", "\"p95_ms\":", "\"p99_ms\":",
        "\"max_ms\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << json;
  }
}

TEST(SchemeCountersTest, CountsKnownAndUnknownSchemes) {
  SchemeCounters counters;
  counters.Record("MeanSum");
  counters.Record("MeanSum");
  counters.Record("Lucene");
  counters.Record("NoSuchScheme");
  const std::string json = counters.ToJson();
  EXPECT_NE(json.find("\"MeanSum\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"Lucene\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"(other)\":1"), std::string::npos) << json;
  EXPECT_EQ(json.find("AnySum"), std::string::npos) << json;  // zero: omitted
}

TEST(ServerStatsTest, OutcomeClassificationIsDisjoint) {
  ServerStats stats;
  stats.requests_total.store(6);
  stats.RecordResponseCode(200);
  stats.RecordResponseCode(400);
  stats.RecordResponseCode(404);
  stats.RecordResponseCode(503);
  stats.RecordResponseCode(504);
  stats.RecordResponseCode(500);
  EXPECT_EQ(stats.responses_ok.load(), 1u);
  EXPECT_EQ(stats.client_errors.load(), 2u);
  EXPECT_EQ(stats.rejected_overload.load(), 1u);
  EXPECT_EQ(stats.deadline_exceeded.load(), 1u);
  EXPECT_EQ(stats.server_errors.load(), 1u);
  EXPECT_EQ(stats.responses_ok.load() + stats.client_errors.load() +
                stats.server_errors.load() + stats.rejected_overload.load() +
                stats.deadline_exceeded.load(),
            stats.requests_total.load());
}

TEST(ServerStatsTest, JsonDocumentShape) {
  ServerStats stats;
  stats.requests_total.store(3);
  stats.RecordResponseCode(200);
  stats.scheme_counts.Record("MeanSum");
  stats.search_latency.Record(2000);
  const std::string json = stats.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* field :
       {"\"requests_total\":3", "\"responses_ok\":1", "\"client_errors\":0",
        "\"rejected_overload\":0", "\"deadline_exceeded\":0",
        "\"malformed_requests\":0", "\"search_latency\":{",
        "\"scheme_counts\":{\"MeanSum\":1}"}) {
    EXPECT_NE(json.find(field), std::string::npos) << json;
  }
}

}  // namespace
}  // namespace graft::server
