// Property-based test for the segmented k-way top-k merge: for random
// corpora, random segment partitions, and random k, the segmented engine's
// merged top-k must be bit-identical to the monolithic engine's ranking
// prefix — same result count, same score sequence, and every returned
// document carrying its exact monolithic score. Ties are the hard part
// (a k-way merge can pick either of two equal-scored documents at the
// cut), so half the trials run a deliberately tie-heavy corpus of repeated
// documents under the constant AnySum scheme, where nearly every score
// collides.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "index/segmented_index.h"
#include "mcalc/parser.h"
#include "text/corpus.h"
#include "text/tokenizer.h"

namespace graft::core {
namespace {

// The merged top-k against the monolithic full ranking: exact score
// sequence, documents drawn from the full set at their exact scores (equal
// scores may permute document order at the cut).
void ExpectTopKMatchesPrefix(const std::vector<ma::ScoredDoc>& full,
                             const std::vector<ma::ScoredDoc>& got, size_t k,
                             const std::string& context) {
  const size_t want = std::min(k, full.size());
  ASSERT_EQ(got.size(), want) << context;
  std::map<DocId, double> full_map;
  for (const ma::ScoredDoc& r : full) full_map[r.doc] = r.score;
  for (size_t i = 0; i < want; ++i) {
    EXPECT_EQ(got[i].score, full[i].score)
        << context << " rank " << i << " score sequence diverged";
    const auto it = full_map.find(got[i].doc);
    ASSERT_NE(it, full_map.end())
        << context << " rank " << i << " doc " << got[i].doc
        << " not in the full ranking";
    EXPECT_EQ(it->second, got[i].score)
        << context << " rank " << i << " doc " << got[i].doc;
  }
}

void RunTrial(const std::vector<std::vector<std::string>>& docs,
              size_t num_segments, const std::vector<std::string>& queries,
              const std::vector<std::string>& schemes, Rng* rng,
              const std::string& corpus_label) {
  index::IndexBuilder builder;
  for (const auto& doc : docs) builder.AddDocumentStrings(doc);
  const index::InvertedIndex index = builder.Build();
  auto segmented =
      index::SegmentedIndex::BuildFromMonolithic(index, num_segments);
  ASSERT_TRUE(segmented.ok()) << segmented.status().ToString();

  const Engine mono(&index);
  const Engine parallel(&index, &*segmented, /*pool_threads=*/2);

  for (const std::string& query_text : queries) {
    auto query = mcalc::ParseQuery(query_text);
    ASSERT_TRUE(query.ok()) << query_text;
    for (const std::string& scheme_name : schemes) {
      const sa::ScoringScheme* scheme =
          sa::SchemeRegistry::Global().Lookup(scheme_name);
      ASSERT_NE(scheme, nullptr) << scheme_name;

      SearchOptions full_options;
      full_options.allow_rank_processing = false;
      full_options.use_segmented = false;
      auto full = mono.SearchQuery(*query, *scheme, full_options);
      ASSERT_TRUE(full.ok()) << full.status().ToString();

      // Random k each (query, scheme): below, at, and beyond the result
      // count all happen across trials.
      const size_t k = 1 + rng->NextBounded(30);
      SearchOptions topk_options;
      topk_options.top_k = k;
      auto merged = parallel.SearchQuery(*query, *scheme, topk_options);
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
      EXPECT_EQ(merged->segments_searched, num_segments);

      ExpectTopKMatchesPrefix(
          full->results, merged->results, k,
          corpus_label + " segments=" + std::to_string(num_segments) +
              " q=" + query_text + " scheme=" + scheme_name +
              " k=" + std::to_string(k));
    }
  }
}

TEST(TopKMergeProperty, RandomPartitionsMergeBitIdentically) {
  Rng rng(271828);
  const std::vector<std::string> queries = {
      "free software", "free | software | service", "county line",
      "image | species | fishing", "emulator"};
  const std::vector<std::string> schemes = {"AnySum", "Lucene", "MeanSum"};

  for (int trial = 0; trial < 6; ++trial) {
    const uint64_t corpus_seed = 1000 + rng.NextBounded(100000);
    std::vector<std::vector<std::string>> docs;
    text::CorpusGenerator generator(text::WikipediaLikeConfig(
        200 + rng.NextBounded(200), corpus_seed));
    generator.Generate(
        [&docs](uint64_t, const std::vector<std::string_view>& tokens) {
          docs.emplace_back(tokens.begin(), tokens.end());
        });
    const size_t num_segments = 2 + rng.NextBounded(4);
    RunTrial(docs, num_segments, queries, schemes, &rng,
             "trial=" + std::to_string(trial) +
                 " seed=" + std::to_string(corpus_seed));
  }
}

// Tie-heavy: 180 documents drawn from only five distinct token sequences,
// scored with the constant AnySum scheme — per-document scores collapse to
// a handful of values, so every merge boundary lands on a tie. The merged
// score sequence must still reproduce the monolithic prefix exactly.
TEST(TopKMergeProperty, TieHeavyCorporaMergeConsistently) {
  Rng rng(314159);
  const char* templates[] = {
      "free software for windows users",
      "free software emulator for the county",
      "image of the species in the city",
      "fishing line and service",
      "free free software software windows",
  };
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<std::vector<std::string>> docs;
    for (int i = 0; i < 180; ++i) {
      const std::string tokens_src =
          templates[rng.NextBounded(std::size(templates))];
      const auto tokens = text::Tokenize(tokens_src);
      docs.emplace_back(tokens.begin(), tokens.end());
    }
    const size_t num_segments = 2 + rng.NextBounded(4);
    RunTrial(docs, num_segments,
             {"free software", "free | image | fishing", "software windows"},
             {"AnySum", "AnyProd"}, &rng, "tie trial=" + std::to_string(trial));
  }
}

}  // namespace
}  // namespace graft::core
