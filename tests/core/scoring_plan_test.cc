#include "core/scoring_plan.h"

#include <gtest/gtest.h>

#include "mcalc/parser.h"
#include "testutil/fixtures.h"

namespace graft::core {
namespace {

TEST(ScoringPlanTest, Example4Q3Derivation) {
  // Φ(Q3) = (p0 ⊘ p1) ⊘ ((p2 ⊘ p3) ⊚ p4)   (the paper's Example 4)
  const mcalc::Query query = testutil::MakeQ3();
  auto phi = DeriveScoringPlan(query);
  ASSERT_TRUE(phi.ok()) << phi.status().ToString();
  EXPECT_EQ((*phi)->ToString(), "((p0 ⊘ p1) ⊘ ((p2 ⊘ p3) ⊚ p4))");
}

TEST(ScoringPlanTest, PredicatesErased) {
  auto query = mcalc::ParseQuery("(a b)WINDOW[10]");
  ASSERT_TRUE(query.ok());
  auto phi = DeriveScoringPlan(*query);
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ((*phi)->ToString(), "(p0 ⊘ p1)");
}

TEST(ScoringPlanTest, NegationsErased) {
  auto query = mcalc::ParseQuery("wine !emulator cellar");
  ASSERT_TRUE(query.ok());
  auto phi = DeriveScoringPlan(*query);
  ASSERT_TRUE(phi.ok());
  // p1 (emulator) is negated and disappears; the dangling ∧ is dropped.
  EXPECT_EQ((*phi)->ToString(), "(p0 ⊘ p2)");
}

TEST(ScoringPlanTest, SingleKeyword) {
  auto query = mcalc::ParseQuery("wine");
  ASSERT_TRUE(query.ok());
  auto phi = DeriveScoringPlan(*query);
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ((*phi)->ToString(), "p0");
}

TEST(ScoringPlanTest, DisjunctionUsesDisjCombinator) {
  auto query = mcalc::ParseQuery("a (b | c)");
  ASSERT_TRUE(query.ok());
  auto phi = DeriveScoringPlan(*query);
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ((*phi)->ToString(), "(p0 ⊘ (p1 ⊚ p2))");
}

TEST(ScoringPlanTest, AllNegatedFails) {
  // Built programmatically: Not(a) alone is unsafe but Φ-derivation is
  // what we exercise here.
  mcalc::Query query;
  query.variables = {{0, "a"}};
  query.root = mcalc::MakeNot(mcalc::MakeKeyword("a", 0));
  auto phi = DeriveScoringPlan(query);
  EXPECT_FALSE(phi.ok());
}

TEST(ScoringPlanTest, LoweringToScoreExpr) {
  const mcalc::Query query = testutil::MakeQ3();
  auto phi = DeriveScoringPlan(query);
  ASSERT_TRUE(phi.ok());
  ma::ScoreExprPtr expr =
      PhiToScoreExpr(**phi, [](mcalc::VarId var) {
        return ma::ScoreExpr::InitPos("p" + std::to_string(var));
      });
  EXPECT_EQ(expr->ToString(),
            "((α(p0) ⊘ α(p1)) ⊘ ((α(p2) ⊘ α(p3)) ⊚ α(p4)))");
}

TEST(ScoringPlanTest, CloneIsDeep) {
  const mcalc::Query query = testutil::MakeQ3();
  auto phi = DeriveScoringPlan(query);
  ASSERT_TRUE(phi.ok());
  PhiNodePtr copy = (*phi)->Clone();
  EXPECT_EQ(copy->ToString(), (*phi)->ToString());
  EXPECT_NE(copy.get(), phi->get());
}

}  // namespace
}  // namespace graft::core
