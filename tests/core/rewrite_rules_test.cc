// Registry invariants for the declarative rewrite-rule catalog: the gate's
// Table-1 logic and the catalog must be two views of the same data, ids
// must be stable (they are /metrics labels and GRAFT_FUZZ_RULE values),
// and the per-rule fuzzer configurations must enable exactly the rule
// under test plus its structural prerequisites.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/optimization_gate.h"
#include "core/rewrite_rules.h"
#include "sa/schemes.h"

namespace graft::core {
namespace {

TEST(RewriteRuleRegistry, OneRulePerOptimizationInTableOrder) {
  const auto& rules = RewriteRuleRegistry::Global().All();
  ASSERT_EQ(rules.size(), std::size(kAllOptimizations));
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].opt, kAllOptimizations[i])
        << "catalog order must match kAllOptimizations (EXPLAIN's "
           "rewrite-table order) at index "
        << i;
  }
}

TEST(RewriteRuleRegistry, IdsAreUniqueNonEmptyAndStable) {
  std::set<std::string> ids;
  for (const RewriteRule& rule : RewriteRuleRegistry::Global().All()) {
    ASSERT_FALSE(rule.id.empty());
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate id " << rule.id;
    // Metrics-label / env-var safe: lowercase + underscores only.
    for (const char c : rule.id) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_')
          << "id " << rule.id << " is not a stable lowercase identifier";
    }
    EXPECT_FALSE(rule.pattern.empty()) << rule.id;
    EXPECT_FALSE(rule.transform.empty()) << rule.id;
  }
  // The published names; renaming one breaks dashboards and CI matrices.
  for (const char* id :
       {"sort_elimination", "join_reordering", "selection_pushing",
        "zigzag_join", "forward_scan_join", "alternate_elimination",
        "eager_aggregation", "eager_counting", "pre_counting", "rank_join",
        "rank_union", "block_max_pruning"}) {
    EXPECT_NE(RewriteRuleRegistry::Global().Lookup(id), nullptr) << id;
  }
  EXPECT_EQ(RewriteRuleRegistry::Global().Lookup("no_such_rule"), nullptr);
}

TEST(RewriteRuleRegistry, LookupAndFindAgree) {
  const RewriteRuleRegistry& registry = RewriteRuleRegistry::Global();
  for (const RewriteRule& rule : registry.All()) {
    EXPECT_EQ(registry.Lookup(rule.id), &rule);
    EXPECT_EQ(registry.Find(rule.opt), &rule);
  }
}

// The tentpole's core claim: the gate IS the catalog. For every registered
// scheme and every optimization, IsOptimizationValid/ExplainGate must agree
// with the rule's own Licensed/Explain — same verdict, same wording.
TEST(RewriteRuleRegistry, GateDelegatesToCatalogForEveryScheme) {
  const RewriteRuleRegistry& registry = RewriteRuleRegistry::Global();
  for (const sa::ScoringScheme* scheme : sa::SchemeRegistry::Global().All()) {
    const sa::SchemeProperties& props = scheme->properties();
    for (const Optimization opt : kAllOptimizations) {
      const RewriteRule* rule = registry.Find(opt);
      ASSERT_NE(rule, nullptr) << OptimizationName(opt);
      EXPECT_EQ(IsOptimizationValid(opt, props), rule->Licensed(props))
          << scheme->name() << " / " << rule->id;
      const GateDecision via_gate = ExplainGate(opt, props);
      const GateDecision via_rule = rule->Explain(props);
      EXPECT_EQ(via_gate.valid, via_rule.valid)
          << scheme->name() << " / " << rule->id;
      EXPECT_EQ(via_gate.reason, via_rule.reason)
          << scheme->name() << " / " << rule->id;
    }
  }
}

TEST(RewriteRuleRegistry, StagesAndTogglesMatchThePipeline) {
  const RewriteRuleRegistry& registry = RewriteRuleRegistry::Global();
  for (const RewriteRule& rule : registry.All()) {
    const bool execution = rule.opt == Optimization::kRankJoin ||
                           rule.opt == Optimization::kRankUnion ||
                           rule.opt == Optimization::kBlockMaxPruning;
    EXPECT_EQ(rule.stage == RuleStage::kExecution, execution) << rule.id;
    // Execution-stage strategies and the always-on zig-zag join have no
    // plan toggle; every other rule must bind one.
    const bool has_toggle = rule.toggle != nullptr;
    EXPECT_EQ(has_toggle,
              !execution && rule.opt != Optimization::kZigZagJoin)
        << rule.id;
    if (execution) {
      EXPECT_FALSE(rule.execution_note.empty()) << rule.id;
    }
  }
}

TEST(RewriteRuleRegistry, AllRulesOffDisablesEveryToggle) {
  const OptimizerOptions off = RewriteRuleRegistry::Global().AllRulesOff();
  EXPECT_FALSE(off.push_selections);
  EXPECT_FALSE(off.reorder_joins);
  EXPECT_FALSE(off.cost_based_join_order);
  EXPECT_FALSE(off.eliminate_sort);
  EXPECT_FALSE(off.eager_aggregation);
  EXPECT_FALSE(off.eager_counting);
  EXPECT_FALSE(off.pre_counting);
  EXPECT_FALSE(off.alternate_elimination);
}

TEST(RewriteRuleRegistry, OnlyRuleOptionsEnablesRulePlusPrerequisites) {
  const RewriteRuleRegistry& registry = RewriteRuleRegistry::Global();
  for (const RewriteRule& rule : registry.All()) {
    const OptimizerOptions options = registry.OnlyRuleOptions(rule);
    EXPECT_TRUE(rule.Enabled(options)) << rule.id;
    if (rule.toggle != nullptr) {
      EXPECT_TRUE(options.*(rule.toggle)) << rule.id;
    }
    for (bool OptimizerOptions::* prereq : rule.prerequisites) {
      EXPECT_TRUE(options.*prereq) << rule.id;
    }
    // No rule other than this one and its prerequisites may be enabled.
    for (const RewriteRule& other : registry.All()) {
      if (other.toggle == nullptr || &other == &rule) continue;
      bool is_prereq = other.toggle == rule.toggle;
      for (bool OptimizerOptions::* prereq : rule.prerequisites) {
        is_prereq = is_prereq || prereq == other.toggle;
      }
      EXPECT_EQ(options.*(other.toggle), is_prereq)
          << rule.id << " unexpectedly toggles " << other.id;
    }
  }
}

TEST(RewriteRuleRegistry, PreCountingPullsInItsWholeStructuralPath) {
  const RewriteRule* rule =
      RewriteRuleRegistry::Global().Lookup("pre_counting");
  ASSERT_NE(rule, nullptr);
  const OptimizerOptions options =
      RewriteRuleRegistry::Global().OnlyRuleOptions(*rule);
  EXPECT_TRUE(options.pre_counting);
  EXPECT_TRUE(options.eliminate_sort);
  EXPECT_TRUE(options.alternate_elimination);
  EXPECT_TRUE(options.eager_aggregation);
  EXPECT_FALSE(options.push_selections);
  EXPECT_FALSE(options.reorder_joins);
  EXPECT_FALSE(options.eager_counting);
}

// Known Table-1 rows, as spot checks that the declarative data encodes the
// paper's matrix (the full cross product is covered by parity above plus
// optimization_gate_test.cc).
TEST(RewriteRuleRegistry, KnownLicensingRows) {
  const RewriteRuleRegistry& registry = RewriteRuleRegistry::Global();
  const auto props = [](const char* name) {
    const sa::ScoringScheme* scheme =
        sa::SchemeRegistry::Global().Lookup(name);
    EXPECT_NE(scheme, nullptr) << name;
    return scheme->properties();
  };
  EXPECT_TRUE(registry.Lookup("rank_join")->Licensed(props("AnySum")));
  EXPECT_FALSE(
      registry.Lookup("rank_join")->Licensed(props("BestSumMinDist")));
  EXPECT_TRUE(
      registry.Lookup("block_max_pruning")->Licensed(props("AnySum")));
  EXPECT_FALSE(
      registry.Lookup("block_max_pruning")->Licensed(props("MeanSum")));
  EXPECT_TRUE(
      registry.Lookup("alternate_elimination")->Licensed(props("AnySum")));
  EXPECT_FALSE(
      registry.Lookup("alternate_elimination")->Licensed(props("MeanSum")));
  // Always-valid rules (Section 5.2.4).
  for (const char* id :
       {"join_reordering", "selection_pushing", "zigzag_join"}) {
    for (const sa::ScoringScheme* scheme :
         sa::SchemeRegistry::Global().All()) {
      EXPECT_TRUE(registry.Lookup(id)->Licensed(scheme->properties()))
          << id << " / " << scheme->name();
    }
  }
}

}  // namespace
}  // namespace graft::core
