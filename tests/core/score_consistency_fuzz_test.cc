// Differential score-consistency fuzzer (the ISSUE's headline satellite):
// random well-formed MCalc ASTs — HAS atoms under AND/OR/NOT (NOT is the
// paper's EMPTY predicate) and DISTANCE/PROXIMITY/WINDOW/ORDER constraints —
// executed four ways through the PUBLIC engine API and compared for
// bit-identical results across every registered scheme:
//
//   base      unoptimized monolithic (every OptimizerOptions toggle off,
//             rank processing off, top_k = 0);
//   opt       optimized monolithic — same options as production defaults;
//   seg       optimized segmented (3 segments, thread-pool parallel);
//   topk      top-k runs (rank processing allowed, so the threshold
//             rank-join/rank-union engine fires where the gate admits it —
//             and the block-max PRUNED operator fires where its stricter
//             gate passes too), checked against the base ranking's prefix;
//   v5        the same corpus saved as a v5 (bit-packed, mmap-loaded)
//             index: full ranking and top-k through the packed decode
//             path, bit-identical to the materialized index's results —
//             the codec sits inside the score path, so this is the
//             configuration that catches a compression bug;
//   topk-unpruned  the same top-k with allow_block_max_pruning = false:
//             the pruned and unpruned top-k must both be bit-identical to
//             the full ranking's prefix. The fuzzer additionally asserts
//             the activation invariant: used_block_max_pruning is true
//             exactly when the extended gate licenses pruning (α bounded,
//             ⊕ idempotent, ⊘/⊚ monotone, diagonal, pure keyword query),
//             and NEVER for a blocked scheme — whose EXPLAIN rewrite table
//             must carry the blocking verdict.
//
// Comparison contract, verified per execution pair:
//
//   * base vs opt — score-consistent within the same 1e-7 relative bound
//     random_query_fuzz_test.cc uses against the reference oracle. NOT
//     bit-identical by design: the ⊗-scaling rewrites (eager aggregation,
//     eager/pre-counting) replace "⊕ of n equal α terms" with "α ⊗ n",
//     which is algebraically equal but reassociates floating point
//     (e.g. x+x+x+x+x vs x*5), and the drift compounds multiplicatively
//     for the product-flavoured schemes.
//   * opt vs seg, opt vs topk — BIT-IDENTICAL (==). Execution strategy
//     (segment fan-out + merge, threshold rank processing) must never
//     change a single bit: segments score against global statistics and
//     the rank engine evaluates the same score expression. This is the
//     strong claim engine.h makes and the one regressions actually hit.
//
// On failure the fuzzer greedily minimizes the AST (subtree promotion,
// child dropping, NOT/constraint stripping) while the disagreement
// reproduces, then prints the minimized formula plus the EXPLAIN-style
// rendering (plan + full rewrite-attempt table) of both plans.
//
// 10 shards x 50 queries = 500 ASTs by default. Environment overrides:
//   GRAFT_FUZZ_SEED   base seed (default 8312011); CI's nightly-style job
//                     passes a random one and logs it for replay.
//   GRAFT_FUZZ_ITERS  queries per shard (default 50).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "core/optimization_gate.h"
#include "core/optimizer.h"
#include "core/request.h"
#include "core/rewrite_rules.h"
#include "exec/maxscore_topk.h"
#include "exec/nra_topk.h"
#include "exec/rank_join.h"
#include "exec/threshold_topk.h"
#include "index/index_io.h"
#include "index/segmented_index.h"
#include "ma/plan.h"
#include "router/scatter_gather.h"
#include "server/http.h"
#include "server/search_service.h"
#include "text/corpus.h"

namespace graft::core {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

// Single-rule mode: GRAFT_FUZZ_RULE=<rule id> restricts the optimized and
// segmented configurations to exactly that catalog rule (every other
// toggle off, with the rule's structural prerequisites). CI iterates the
// registry through this knob so a regression names the rule that caused
// it. An unknown id aborts loudly rather than silently fuzzing nothing.
const RewriteRule* FuzzRuleFilter() {
  static const RewriteRule* rule = [] {
    const char* name = std::getenv("GRAFT_FUZZ_RULE");
    if (name == nullptr || *name == '\0') {
      return static_cast<const RewriteRule*>(nullptr);
    }
    const RewriteRule* found = RewriteRuleRegistry::Global().Lookup(name);
    if (found == nullptr) {
      std::fprintf(stderr,
                   "[fuzz] GRAFT_FUZZ_RULE=%s does not name a catalog rule; "
                   "valid ids:\n",
                   name);
      for (const RewriteRule& r : RewriteRuleRegistry::Global().All()) {
        std::fprintf(stderr, "  %s\n", r.id.c_str());
      }
      std::abort();
    }
    std::fprintf(stderr, "[fuzz] single-rule mode: %s\n", found->id.c_str());
    return found;
  }();
  return rule;
}

// Optimizer toggles for the filtered rule: plan-stage rules run alone (plus
// prerequisites); execution-stage rules (rank join/union, block-max) have
// no plan toggle, so the plan side goes all-off and the rule is exercised
// through the top-k configurations' allow flags below.
OptimizerOptions FilteredOptimizer(const RewriteRule& rule) {
  const RewriteRuleRegistry& registry = RewriteRuleRegistry::Global();
  return rule.stage == RuleStage::kPlan ? registry.OnlyRuleOptions(rule)
                                        : registry.AllRulesOff();
}

// The fuzz corpus as raw token vectors: the monolithic index and the
// 3-shard router topology below must index the SAME documents.
const std::vector<std::vector<std::string>>& FuzzDocs() {
  static const std::vector<std::vector<std::string>>& docs = *[] {
    text::CorpusConfig config = text::WikipediaLikeConfig(350, /*seed=*/97);
    for (auto& bundle : config.bundles) {
      bundle.doc_fraction = std::min(1.0, bundle.doc_fraction * 60);
    }
    auto* out = new std::vector<std::vector<std::string>>();
    text::CorpusGenerator generator(config);
    generator.Generate(
        [out](uint64_t, const std::vector<std::string_view>& tokens) {
          out->emplace_back(tokens.begin(), tokens.end());
        });
    return out;
  }();
  return docs;
}

const index::InvertedIndex& FuzzIndex() {
  static const index::InvertedIndex& index = *[] {
    index::IndexBuilder builder;
    for (const auto& doc : FuzzDocs()) builder.AddDocumentStrings(doc);
    return new index::InvertedIndex(builder.Build());
  }();
  return index;
}

const index::SegmentedIndex& FuzzSegments() {
  static const index::SegmentedIndex& segmented = *[] {
    auto built = index::SegmentedIndex::BuildFromMonolithic(FuzzIndex(), 3);
    if (!built.ok()) std::abort();
    return new index::SegmentedIndex(std::move(*built));
  }();
  return segmented;
}

const Engine& MonoEngine() {
  static const Engine engine(&FuzzIndex());
  return engine;
}

// The SAME fuzz corpus through a v5 save + mmap load: postings stay
// bit-packed on disk and decode through the block cache. Every score must
// be bit-identical to the materialized index's — the v5 codec is inside
// the score path, so this is where a codec bug would surface.
const index::InvertedIndex& PackedFuzzIndex() {
  static const index::InvertedIndex& index = *[] {
    const std::string path = ::testing::TempDir() + "/graft_fuzz_v5_" +
                             std::to_string(::getpid()) + ".idx";
    if (!index::SaveIndexV5(FuzzIndex(), path).ok()) std::abort();
    auto loaded = index::LoadIndexMapped(path);
    if (!loaded.ok()) std::abort();
    auto* out = new index::InvertedIndex(std::move(*loaded));
    if (!out->is_packed()) std::abort();
    return out;
  }();
  return index;
}

const Engine& PackedEngine() {
  static const Engine engine(&PackedFuzzIndex());
  return engine;
}

const Engine& SegmentedEngine() {
  static const Engine engine(&FuzzIndex(), &FuzzSegments(),
                             /*pool_threads=*/2);
  return engine;
}

// ---- Sixth configuration: the distributed router --------------------------
//
// Three in-process shard servers over a contiguous split of the SAME fuzz
// corpus, fronted by a ScatterGather. The distributed analogue of the
// opt-vs-seg claim: the two-phase stats exchange pins whole-corpus
// statistics, so per-document scores are bit-identical across processes
// and the k-way merge must reproduce the single-process top-k exactly.
struct RouterTopology {
  std::vector<EngineBundle> bundles;
  std::vector<std::unique_ptr<server::SearchService>> services;
  std::unique_ptr<router::ScatterGather> gather;
};

RouterTopology& FuzzRouter() {
  static RouterTopology& topology = *[] {
    auto* t = new RouterTopology();
    const auto& docs = FuzzDocs();
    constexpr size_t kShards = 3;
    const size_t chunk = (docs.size() + kShards - 1) / kShards;
    for (size_t shard = 0; shard < kShards; ++shard) {
      index::IndexBuilder builder;
      const size_t begin = shard * chunk;
      const size_t end = std::min(docs.size(), begin + chunk);
      for (size_t i = begin; i < end; ++i) {
        builder.AddDocumentStrings(docs[i]);
      }
      auto bundle = MakeEngineBundle(builder.Build(), /*segments=*/1,
                                     /*pool_threads=*/0);
      if (!bundle.ok()) std::abort();
      t->bundles.push_back(std::move(bundle).value());
    }
    server::ServiceOptions options;
    options.default_deadline_ms = 120000;
    options.max_deadline_ms = 120000;
    std::vector<std::vector<uint16_t>> ports;
    for (auto& bundle : t->bundles) {
      t->services.push_back(std::make_unique<server::SearchService>(
          bundle.engine.get(), options));
      if (!t->services.back()->Start().ok()) std::abort();
      ports.push_back({t->services.back()->port()});
    }
    router::ScatterGatherOptions gopts;
    gopts.client.max_attempts = 2;
    gopts.client.backoff_base_ms = 1;
    gopts.client.backoff_max_ms = 4;
    gopts.client.io_timeout_ms = 120000;
    t->gather = std::make_unique<router::ScatterGather>(std::move(ports),
                                                        gopts);
    return t;
  }();
  return topology;
}

// Vocabulary pool mixing frequent, mid, rare, and absent words.
const char* kWords[] = {"free",    "software", "windows",  "service",
                        "line",    "county",   "image",    "species",
                        "fishing", "obama",    "emulator", "foss",
                        "the",     "of",       "city",     "neverseen"};

class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  mcalc::Query Generate() {
    mcalc::Query query;
    query.root = GenNode(&query, /*depth=*/0, /*allow_not=*/true);
    return query;
  }

 private:
  // "the"/"of" are stopword-tier in the wiki-like corpus: hundreds of
  // positions per matching document. Binding two such variables in one
  // query makes the *unoptimized* reference plan enumerate the cross
  // product of their position lists — O(tf^2) tuples per document, which
  // is gigabytes of bindings and a timed-out shard without covering
  // anything the single-stopword case doesn't. Cap them at one per query.
  static bool IsStopword(const char* word) {
    return std::strcmp(word, "the") == 0 || std::strcmp(word, "of") == 0;
  }

  mcalc::NodePtr GenKeyword(mcalc::Query* query) {
    const char* word = kWords[rng_.NextBounded(std::size(kWords))];
    while (stopwords_used_ > 0 && IsStopword(word)) {
      word = kWords[rng_.NextBounded(std::size(kWords))];
    }
    if (IsStopword(word)) ++stopwords_used_;
    const mcalc::VarId var =
        static_cast<mcalc::VarId>(query->variables.size());
    query->variables.push_back(mcalc::Variable{var, word});
    return mcalc::MakeKeyword(word, var);
  }

  mcalc::NodePtr GenNode(mcalc::Query* query, int depth, bool allow_not) {
    const uint64_t kind = depth >= 3 ? 0 : rng_.NextBounded(10);
    if (kind < 3 || query->variables.size() >= 8) {
      return GenKeyword(query);
    }
    if (kind < 6) {  // conjunction, possibly with a negated child (EMPTY)
      std::vector<mcalc::NodePtr> kids;
      const uint64_t n = 2 + rng_.NextBounded(2);
      for (uint64_t i = 0; i < n; ++i) {
        kids.push_back(GenNode(query, depth + 1, /*allow_not=*/false));
      }
      if (allow_not && rng_.NextBool(0.3)) {
        kids.push_back(mcalc::MakeNot(GenKeyword(query)));
      }
      return mcalc::MakeAnd(std::move(kids));
    }
    if (kind < 8) {  // disjunction
      std::vector<mcalc::NodePtr> kids;
      const uint64_t n = 2 + rng_.NextBounded(3);
      for (uint64_t i = 0; i < n; ++i) {
        kids.push_back(GenNode(query, depth + 1, /*allow_not=*/false));
      }
      return mcalc::MakeOr(std::move(kids));
    }
    // Predicate group over a fresh conjunction of keywords.
    std::vector<mcalc::NodePtr> kids;
    std::vector<mcalc::VarId> vars;
    const uint64_t n = 2 + rng_.NextBounded(2);
    for (uint64_t i = 0; i < n; ++i) {
      mcalc::NodePtr kw = GenKeyword(query);
      vars.push_back(kw->var);
      kids.push_back(std::move(kw));
    }
    mcalc::PredicateCall call;
    switch (rng_.NextBounded(4)) {
      case 0:
        call = {"WINDOW", vars, {static_cast<int64_t>(
                                    5 + rng_.NextBounded(60))}};
        break;
      case 1:
        call = {"PROXIMITY", vars, {static_cast<int64_t>(
                                       3 + rng_.NextBounded(20))}};
        break;
      case 2:
        call = {"ORDER", vars, {}};
        break;
      default:
        call = {"DISTANCE",
                {vars[0], vars[1]},
                {static_cast<int64_t>(1 + rng_.NextBounded(3))}};
        break;
    }
    return mcalc::MakeConstrained(mcalc::MakeAnd(std::move(kids)),
                                  {std::move(call)});
  }

  Rng rng_;
  int stopwords_used_ = 0;
};

// ---- The four execution configurations -----------------------------------

SearchOptions BaseOptions() {
  SearchOptions options;
  options.optimizer = OptimizerOptions{
      .push_selections = false,
      .reorder_joins = false,
      .cost_based_join_order = false,
      .eliminate_sort = false,
      .eager_aggregation = false,
      .eager_counting = false,
      .pre_counting = false,
      .alternate_elimination = false,
  };
  options.allow_rank_processing = false;
  options.use_segmented = false;
  return options;
}

SearchOptions OptimizedOptions() {
  SearchOptions options;
  if (const RewriteRule* rule = FuzzRuleFilter()) {
    options.optimizer = FilteredOptimizer(*rule);
  }
  options.allow_rank_processing = false;
  options.use_segmented = false;
  return options;
}

SearchOptions SegmentedOptions() {
  SearchOptions options;
  if (const RewriteRule* rule = FuzzRuleFilter()) {
    options.optimizer = FilteredOptimizer(*rule);
  }
  options.allow_rank_processing = false;
  return options;  // use_segmented = true (default)
}

SearchOptions TopKOptions(size_t k, bool use_segmented) {
  SearchOptions options;
  options.top_k = k;
  options.use_segmented = use_segmented;
  if (const RewriteRule* rule = FuzzRuleFilter()) {
    options.optimizer = FilteredOptimizer(*rule);
    // Execution-stage rules are what the rank path implements; plan-stage
    // filters keep rank processing off so the top-k pair still exercises
    // just the one rule under test.
    options.allow_rank_processing = rule->stage == RuleStage::kExecution;
    options.allow_block_max_pruning =
        rule->opt == Optimization::kBlockMaxPruning;
  }
  return options;  // allow_rank_processing = true (default)
}

std::map<DocId, double> ToMap(const std::vector<ma::ScoredDoc>& results) {
  std::map<DocId, double> map;
  for (const ma::ScoredDoc& r : results) map[r.doc] = r.score;
  return map;
}

bool ScoresAgree(double got, double want, bool exact) {
  if (exact) return got == want;  // bit-identical
  // Same bound random_query_fuzz_test.cc uses against the reference
  // oracle: reassociation drift compounds multiplicatively for the
  // product-flavoured schemes (AnyProd, EventModel), so a pure
  // relative-ulp bound is too tight on small scores.
  return std::fabs(got - want) <= 1e-7 * std::max(1.0, std::fabs(want));
}

// Compares a full (top_k = 0) run against the reference map: identical doc
// set, scores per the pair's contract. Empty string = consistent.
std::string DiffFull(const std::map<DocId, double>& want,
                     const std::vector<ma::ScoredDoc>& got,
                     const char* label, bool exact) {
  const std::map<DocId, double> actual = ToMap(got);
  if (actual.size() != want.size()) {
    return std::string(label) + ": " + std::to_string(actual.size()) +
           " docs vs expected " + std::to_string(want.size());
  }
  for (const auto& [doc, score] : want) {
    const auto it = actual.find(doc);
    if (it == actual.end()) {
      return std::string(label) + ": doc " + std::to_string(doc) +
             " missing";
    }
    if (!ScoresAgree(it->second, score, exact)) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s: doc %u score %.17g vs expected %.17g%s", label, doc,
                    it->second, score, exact ? " (bit-identical required)" : "");
      return buf;
    }
  }
  return "";
}

// Compares a top-k run against the full optimized ranking: right count,
// each returned doc scored bit-identically, and the score sequence equal
// to the k best scores (ties may permute doc order at equal score).
std::string DiffTopK(const std::vector<ma::ScoredDoc>& full_ranked,
                     const std::map<DocId, double>& full,
                     const std::vector<ma::ScoredDoc>& got, size_t k,
                     const char* label) {
  const size_t want = std::min(k, full_ranked.size());
  if (got.size() != want) {
    return std::string(label) + ": " + std::to_string(got.size()) +
           " results vs expected " + std::to_string(want);
  }
  for (size_t i = 0; i < want; ++i) {
    if (got[i].score != full_ranked[i].score) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s: rank %zu score %.17g vs full ranking %.17g", label,
                    i, got[i].score, full_ranked[i].score);
      return buf;
    }
    const auto it = full.find(got[i].doc);
    if (it == full.end()) {
      return std::string(label) + ": rank " + std::to_string(i) + " doc " +
             std::to_string(got[i].doc) + " not in full result set";
    }
    if (it->second != got[i].score) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s: doc %u score %.17g vs full ranking %.17g", label,
                    got[i].doc, got[i].score, it->second);
      return buf;
    }
  }
  return "";
}

// Runs one query under one scheme through all four configurations.
// Returns "" when every pair agrees, else a description of the first
// disagreement.
std::string CheckQuery(const mcalc::Query& query,
                       const sa::ScoringScheme& scheme) {
  auto base = MonoEngine().SearchQuery(query, scheme, BaseOptions());
  if (!base.ok()) {
    // Degenerate queries (e.g. nothing scorable once Φ is derived) must be
    // rejected by EVERY configuration — a config that accepts what base
    // rejects is itself an inconsistency. The minimizer relies on this:
    // shrinking into a rejected query reads as consistent, so it cannot
    // trade a score mismatch for an unrelated engine error.
    auto opt = MonoEngine().SearchQuery(query, scheme, OptimizedOptions());
    if (opt.ok()) {
      return "base rejected (" + base.status().ToString() +
             ") but optimized succeeded";
    }
    auto seg =
        SegmentedEngine().SearchQuery(query, scheme, SegmentedOptions());
    if (seg.ok()) {
      return "base rejected (" + base.status().ToString() +
             ") but segmented succeeded";
    }
    return "";
  }
  const std::map<DocId, double> base_map = ToMap(base->results);

  auto opt = MonoEngine().SearchQuery(query, scheme, OptimizedOptions());
  if (!opt.ok()) return "optimized failed: " + opt.status().ToString();
  // Algebraic rewrites may reassociate ⊕ (see the header comment), so this
  // pair gets the relative bound; everything below is bit-identical.
  if (std::string diff =
          DiffFull(base_map, opt->results, "optimized", /*exact=*/false);
      !diff.empty()) {
    return diff;
  }
  const std::map<DocId, double> opt_map = ToMap(opt->results);

  auto seg = SegmentedEngine().SearchQuery(query, scheme, SegmentedOptions());
  if (!seg.ok()) return "segmented failed: " + seg.status().ToString();
  if (std::string diff =
          DiffFull(opt_map, seg->results, "segmented", /*exact=*/true);
      !diff.empty()) {
    return diff;
  }

  // v5 configuration: the same optimized plan over the mmap-packed index.
  // Compression must be invisible in the scores — bit-identical, same as
  // the segmented claim.
  auto packed = PackedEngine().SearchQuery(query, scheme, OptimizedOptions());
  if (!packed.ok()) return "v5 packed failed: " + packed.status().ToString();
  if (std::string diff =
          DiffFull(opt_map, packed->results, "v5 packed", /*exact=*/true);
      !diff.empty()) {
    return diff;
  }

  constexpr size_t kTopK = 10;
  auto topk = MonoEngine().SearchQuery(query, scheme,
                                       TopKOptions(kTopK, false));
  if (!topk.ok()) return "top-k failed: " + topk.status().ToString();
  if (std::string diff =
          DiffTopK(opt->results, opt_map, topk->results, kTopK, "top-k");
      !diff.empty()) {
    return diff;
  }

  auto topk_seg = SegmentedEngine().SearchQuery(query, scheme,
                                                TopKOptions(kTopK, true));
  if (!topk_seg.ok()) {
    return "segmented top-k failed: " + topk_seg.status().ToString();
  }
  if (std::string diff = DiffTopK(opt->results, opt_map, topk_seg->results,
                                  kTopK, "segmented top-k");
      !diff.empty()) {
    return diff;
  }

  // v5 top-k: rank processing AND block-max pruning run directly against
  // packed blocks (pruning aligns on v5 block headers). Same bit-identical
  // prefix contract as every other top-k configuration.
  auto packed_topk = PackedEngine().SearchQuery(query, scheme,
                                                TopKOptions(kTopK, false));
  if (!packed_topk.ok()) {
    return "v5 packed top-k failed: " + packed_topk.status().ToString();
  }
  if (std::string diff = DiffTopK(opt->results, opt_map,
                                  packed_topk->results, kTopK,
                                  "v5 packed top-k");
      !diff.empty()) {
    return diff;
  }

  // Fifth configuration: top-k with block-max pruning disabled. Must be
  // bit-identical to the full ranking's prefix too (so pruned == unpruned).
  SearchOptions unpruned_opts = TopKOptions(kTopK, false);
  unpruned_opts.allow_block_max_pruning = false;
  auto unpruned = MonoEngine().SearchQuery(query, scheme, unpruned_opts);
  if (!unpruned.ok()) {
    return "unpruned top-k failed: " + unpruned.status().ToString();
  }
  if (std::string diff = DiffTopK(opt->results, opt_map, unpruned->results,
                                  kTopK, "unpruned top-k");
      !diff.empty()) {
    return diff;
  }
  if (unpruned->used_block_max_pruning) {
    return "unpruned top-k run reports used_block_max_pruning";
  }

  // Activation invariant: the pruned operator fires exactly when the
  // extended gate licenses it — provably never for a blocked scheme. Under
  // a GRAFT_FUZZ_RULE filter the top-k options may disable rank processing
  // or pruning outright, so the expectation honors those flags too.
  const SearchOptions topk_mono_opts = TopKOptions(kTopK, false);
  const bool expect_prune =
      topk_mono_opts.allow_rank_processing &&
      topk_mono_opts.allow_block_max_pruning &&
      exec::TopKRankEngine::Supports(query, scheme) &&
      exec::MaxScoreTopK::GateVerdict(query, scheme, FuzzIndex(),
                                      /*overlay=*/nullptr)
          .empty();
  for (const auto& [label, run] :
       {std::pair<const char*, const SearchResult*>{"top-k", &*topk},
        {"segmented top-k", &*topk_seg}}) {
    if (run->used_block_max_pruning != expect_prune) {
      return std::string(label) + ": used_block_max_pruning=" +
             (run->used_block_max_pruning ? "true" : "false") +
             " but gate says " + (expect_prune ? "licensed" : "blocked");
    }
    if (!expect_prune && (run->exec_stats.topk_blocks_skipped != 0 ||
                          run->exec_stats.topk_ceiling_probes != 0)) {
      return std::string(label) +
             ": pruning counters nonzero on a non-pruned run";
    }
    if (run->used_rank_processing && !expect_prune) {
      // The rank path must log WHY pruning stood down.
      bool verdict_logged = false;
      for (const RewriteAttempt& attempt : run->rewrite_attempts) {
        if (attempt.opt == Optimization::kBlockMaxPruning) {
          verdict_logged = !attempt.fired && !attempt.verdict.empty();
        }
      }
      if (!verdict_logged) {
        return std::string(label) +
               ": no block-max gate verdict in the rewrite table";
      }
    }
  }
  if (!scheme.properties().bounded &&
      (topk->used_block_max_pruning || topk_seg->used_block_max_pruning)) {
    return "pruning activated for a scheme whose α is not bounded";
  }

  // Seventh/eighth configurations: the forced Fagin middleware strategies.
  // TA and NRA must each be bit-identical to the full ranking's prefix when
  // their gate licenses the query + scheme, and must fall back to full
  // ranking + truncate (topk_operator empty) when blocked — NEVER run a
  // different top-k operator. Skipped in single-rule mode, where the top-k
  // options deliberately pin a single rule's behaviour instead.
  if (FuzzRuleFilter() == nullptr) {
    struct ForcedStrategy {
      TopKStrategy strategy;
      const char* label;
      const char* op;
      std::string verdict;
    };
    const ForcedStrategy strategies[] = {
        {TopKStrategy::kThreshold, "TA top-k", "ta",
         exec::ThresholdTopK::GateVerdict(query, scheme)},
        {TopKStrategy::kNra, "NRA top-k", "nra",
         exec::NraTopK::GateVerdict(query, scheme)},
    };
    for (const ForcedStrategy& forced : strategies) {
      for (const bool segmented : {false, true}) {
        SearchOptions forced_opts = TopKOptions(kTopK, segmented);
        forced_opts.topk_strategy = forced.strategy;
        const Engine& engine = segmented ? SegmentedEngine() : MonoEngine();
        const std::string label =
            (segmented ? std::string("segmented ") : std::string()) +
            forced.label;
        auto run = engine.SearchQuery(query, scheme, forced_opts);
        if (!run.ok()) {
          return label + " failed: " + run.status().ToString();
        }
        if (std::string diff = DiffTopK(opt->results, opt_map, run->results,
                                        kTopK, label.c_str());
            !diff.empty()) {
          return diff;
        }
        const char* expect_op = forced.verdict.empty() ? forced.op : "";
        if (run->topk_operator != expect_op) {
          return label + ": topk_operator='" + run->topk_operator +
                 "' but the operator gate says '" +
                 (forced.verdict.empty() ? "licensed" : forced.verdict) + "'";
        }
        if (run->used_block_max_pruning) {
          return label + " reports used_block_max_pruning";
        }
      }
    }
  }
  return "";
}

// Renders a generated AST in the Section-8 surface syntax that
// /search?q= accepts (parser.h grammar). NOT guaranteed to be
// structure-preserving: a parenthesized predicate group re-binds the
// predicate to EVERY variable in the group, while the generator's
// DISTANCE calls may name a subset. Callers therefore reparse the
// rendering and use the reparsed query on both sides of the comparison;
// renderings the parser rejects (subset-bound DISTANCE over a 3-keyword
// group fails arity validation) are skipped.
std::string SurfaceNode(const mcalc::Node& node);

std::string SurfaceChild(const mcalc::Node& child) {
  if (child.kind == mcalc::NodeKind::kAnd ||
      child.kind == mcalc::NodeKind::kOr) {
    return "(" + SurfaceNode(child) + ")";
  }
  return SurfaceNode(child);  // keyword, !keyword, (group)PRED[...]
}

std::string SurfaceNode(const mcalc::Node& node) {
  switch (node.kind) {
    case mcalc::NodeKind::kKeyword:
      return node.keyword;
    case mcalc::NodeKind::kNot:
      return "!" + SurfaceChild(*node.children[0]);
    case mcalc::NodeKind::kAnd:
    case mcalc::NodeKind::kOr: {
      const char* sep = node.kind == mcalc::NodeKind::kAnd ? " " : " | ";
      std::string out;
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += sep;
        out += SurfaceChild(*node.children[i]);
      }
      return out;
    }
    case mcalc::NodeKind::kConstrained: {
      std::string out = "(" + SurfaceNode(*node.children[0]) + ")";
      for (const mcalc::PredicateCall& call : node.constraints) {
        out += call.name;
        if (!call.params.empty()) {
          out += "[";
          for (size_t i = 0; i < call.params.size(); ++i) {
            if (i > 0) out += ",";
            out += std::to_string(call.params[i]);
          }
          out += "]";
        }
      }
      return out;
    }
  }
  return "";
}

// Sixth configuration: the query travels to the shards as surface-syntax
// text, each shard scores its slice against the pinned global statistics,
// and the merged top-k must be bit-identical — doc ids and %.17g score
// renderings — to the monolithic engine running the SAME reparsed query.
// Queries the engine rejects must fail through the router too: every
// shard answers an error, so the gather errors out rather than merging a
// partial fiction.
std::string CheckRouterQuery(const mcalc::Query& query,
                             const sa::ScoringScheme& scheme) {
  constexpr size_t kTopK = 10;
  const std::string text = SurfaceNode(*query.root);
  auto reparsed = mcalc::ParseQuery(text);
  if (!reparsed.ok()) return "";  // not expressible in surface syntax

  RouterTopology& topology = FuzzRouter();
  auto topk =
      MonoEngine().SearchQuery(*reparsed, scheme, TopKOptions(kTopK, false));

  std::vector<std::string> terms;
  for (const auto& variable : reparsed->variables) {
    terms.push_back(variable.keyword);
  }
  const std::string tail = "q=" + server::UrlEncode(text) +
                           "&scheme=" + std::string(scheme.name());
  auto gathered =
      topology.gather->Search(terms, tail, kTopK, /*budget_ms=*/120000);

  if (!topk.ok()) {
    if (gathered.ok()) {
      return "engine rejected (" + topk.status().ToString() +
             ") but the router merged a result";
    }
    return "";
  }
  if (!gathered.ok()) {
    return "router failed: " + gathered.status().ToString();
  }
  if (gathered->degraded ||
      gathered->shards_ok != topology.gather->shard_count()) {
    return "router degraded with every shard alive (shards_ok " +
           std::to_string(gathered->shards_ok) + ")";
  }
  const std::string want =
      server::SearchService::FormatResultsFragment(topk->results);
  const std::string got =
      server::SearchService::FormatResultsFragment(gathered->results);
  if (want != got) {
    return "router merge diverged from single-process top-k (q=" + text +
           "):\n  router: " + got + "\n  engine: " + want;
  }
  return "";
}

// ---- Minimizer -----------------------------------------------------------

// Rebuilds a standalone Query from a subtree: clones it, renumbers the
// keyword variables densely in appearance order, and remaps predicate-call
// variables. Returns false when the subtree is not self-contained (a
// constraint references a variable bound outside it) or fails validation.
bool RenumberNode(mcalc::Node* node, mcalc::Query* out,
                  std::map<mcalc::VarId, mcalc::VarId>* remap) {
  if (node->kind == mcalc::NodeKind::kKeyword) {
    const mcalc::VarId fresh =
        static_cast<mcalc::VarId>(out->variables.size());
    (*remap)[node->var] = fresh;
    node->var = fresh;
    out->variables.push_back(mcalc::Variable{fresh, node->keyword});
  }
  for (mcalc::NodePtr& child : node->children) {
    if (!RenumberNode(child.get(), out, remap)) return false;
  }
  for (mcalc::PredicateCall& call : node->constraints) {
    for (mcalc::VarId& var : call.vars) {
      const auto it = remap->find(var);
      if (it == remap->end()) return false;
      var = it->second;
    }
  }
  return true;
}

bool RebuildQuery(const mcalc::Node& root, mcalc::Query* out) {
  mcalc::Query rebuilt;
  rebuilt.root = root.ClonePtr();
  std::map<mcalc::VarId, mcalc::VarId> remap;
  if (!RenumberNode(rebuilt.root.get(), &rebuilt, &remap)) return false;
  if (!mcalc::ValidateQuery(rebuilt).ok()) return false;
  *out = std::move(rebuilt);
  return true;
}

size_t CountNodes(const mcalc::Node& node) {
  size_t n = 1;
  for (const mcalc::NodePtr& child : node.children) {
    n += CountNodes(*child);
  }
  return n;
}

void CollectNodes(mcalc::Node* node, std::vector<mcalc::Node*>* out) {
  out->push_back(node);
  for (mcalc::NodePtr& child : node->children) {
    CollectNodes(child.get(), out);
  }
}

// All one-step shrinks of `query` that validate, smaller-first is not
// required — the greedy loop below only accepts candidates with fewer
// nodes than the current repro.
std::vector<mcalc::Query> ShrinkCandidates(const mcalc::Query& query) {
  std::vector<mcalc::Query> candidates;
  const mcalc::Node& root = *query.root;

  // Subtree promotion: any descendant becomes the whole query.
  std::vector<const mcalc::Node*> subtrees;
  {
    std::vector<mcalc::Node*> nodes;
    CollectNodes(const_cast<mcalc::Node*>(&root), &nodes);
    for (mcalc::Node* node : nodes) {
      if (node == &root) continue;
      subtrees.push_back(node);
    }
  }
  for (const mcalc::Node* subtree : subtrees) {
    mcalc::Query candidate;
    if (RebuildQuery(*subtree, &candidate)) {
      candidates.push_back(std::move(candidate));
    }
  }

  // In-place structural shrinks on a fresh clone each: drop one child of an
  // And/Or (collapsing to the surviving child when only one remains), strip
  // a Not or Constrained wrapper.
  std::vector<mcalc::Node*> positions;
  {
    mcalc::Query probe = query.Clone();
    CollectNodes(probe.root.get(), &positions);
    // Only the COUNT matters; each mutation below re-clones and re-collects
    // so the pointers stay valid for that clone.
  }
  const size_t num_positions = positions.size();
  for (size_t pos = 0; pos < num_positions; ++pos) {
    mcalc::Query probe = query.Clone();
    std::vector<mcalc::Node*> nodes;
    CollectNodes(probe.root.get(), &nodes);
    mcalc::Node* node = nodes[pos];
    if (node->kind == mcalc::NodeKind::kAnd ||
        node->kind == mcalc::NodeKind::kOr) {
      const size_t arity = node->children.size();
      for (size_t drop = 0; drop < arity; ++drop) {
        mcalc::Query variant = query.Clone();
        std::vector<mcalc::Node*> vnodes;
        CollectNodes(variant.root.get(), &vnodes);
        mcalc::Node* vnode = vnodes[pos];
        vnode->children.erase(vnode->children.begin() +
                              static_cast<ptrdiff_t>(drop));
        if (vnode->children.size() == 1) {
          mcalc::NodePtr only = std::move(vnode->children[0]);
          *vnode = std::move(*only);
        }
        mcalc::Query candidate;
        if (RebuildQuery(*variant.root, &candidate)) {
          candidates.push_back(std::move(candidate));
        }
      }
    } else if (node->kind == mcalc::NodeKind::kNot ||
               node->kind == mcalc::NodeKind::kConstrained) {
      mcalc::Query variant = query.Clone();
      std::vector<mcalc::Node*> vnodes;
      CollectNodes(variant.root.get(), &vnodes);
      mcalc::Node* vnode = vnodes[pos];
      mcalc::NodePtr child = std::move(vnode->children[0]);
      *vnode = std::move(*child);
      mcalc::Query candidate;
      if (RebuildQuery(*variant.root, &candidate)) {
        candidates.push_back(std::move(candidate));
      }
    }
  }
  return candidates;
}

// Greedily shrinks `query` while `check` (CheckQuery for the in-process
// configurations, CheckRouterQuery for the distributed one) still reports
// a disagreement for `scheme`. Bounded so a pathological repro cannot
// hang the test.
using QueryChecker = std::string (*)(const mcalc::Query&,
                                     const sa::ScoringScheme&);

mcalc::Query Minimize(mcalc::Query query, const sa::ScoringScheme& scheme,
                      QueryChecker check = &CheckQuery) {
  for (int round = 0; round < 64; ++round) {
    const size_t current = CountNodes(*query.root);
    bool improved = false;
    for (mcalc::Query& candidate : ShrinkCandidates(query)) {
      if (CountNodes(*candidate.root) >= current) continue;
      if (!check(candidate, scheme).empty()) {
        query = std::move(candidate);
        improved = true;
        break;
      }
    }
    if (!improved) break;
  }
  return query;
}

// EXPLAIN-style rendering of the unoptimized and optimized plans for the
// failure report: physical plan plus the full rewrite-attempt table.
std::string ExplainBoth(const mcalc::Query& query,
                        const sa::ScoringScheme& scheme) {
  std::string out;
  const auto render = [&](const char* title, OptimizerOptions options) {
    Optimizer optimizer(&scheme, options);
    auto plan = optimizer.Optimize(query, FuzzIndex());
    out += title;
    out += ":\n";
    if (!plan.ok()) {
      out += "  optimize failed: " + plan.status().ToString() + "\n";
      return;
    }
    out += ma::PlanToString(*plan->plan);
    out += "rewrites:\n";
    out += FormatRewriteAttempts(plan->attempts);
  };
  render("unoptimized plan", BaseOptions().optimizer);
  render("optimized plan", OptimizerOptions{});
  return out;
}

// ---- The fuzzer ----------------------------------------------------------

class ScoreConsistencyFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ScoreConsistencyFuzzTest, AllPlansBitIdenticalForEveryScheme) {
  const uint64_t base_seed = EnvOr("GRAFT_FUZZ_SEED", 8312011u);
  const uint64_t iters = EnvOr("GRAFT_FUZZ_ITERS", 50u);
  const uint64_t shard = static_cast<uint64_t>(GetParam());
  // Log the effective seed so a failing CI run (random-seed job) can be
  // replayed exactly with GRAFT_FUZZ_SEED.
  std::fprintf(stderr, "[fuzz] shard=%llu base_seed=%llu iters=%llu\n",
               static_cast<unsigned long long>(shard),
               static_cast<unsigned long long>(base_seed),
               static_cast<unsigned long long>(iters));

  for (uint64_t i = 0; i < iters; ++i) {
    const uint64_t seed = base_seed + shard * 1000003u + i;
    QueryGenerator generator(seed);
    const mcalc::Query query = generator.Generate();
    ASSERT_TRUE(mcalc::ValidateQuery(query).ok())
        << "generator produced invalid query (seed " << seed
        << "): " << mcalc::ToMCalcString(query);
    if (std::getenv("GRAFT_FUZZ_VERBOSE") != nullptr) {
      std::fprintf(stderr, "[fuzz] seed=%llu query=%s\n",
                   static_cast<unsigned long long>(seed),
                   mcalc::ToMCalcString(query).c_str());
    }

    for (const sa::ScoringScheme* scheme :
         sa::SchemeRegistry::Global().All()) {
      const std::string diff = CheckQuery(query, *scheme);
      if (diff.empty()) continue;
      const mcalc::Query minimized = Minimize(query.Clone(), *scheme);
      const std::string min_diff = CheckQuery(minimized, *scheme);
      FAIL() << "score inconsistency (seed " << seed << ", scheme "
             << scheme->name() << "): " << diff
             << "\nminimized query: " << mcalc::ToMCalcString(minimized)
             << "\nminimized disagreement: "
             << (min_diff.empty() ? diff : min_diff) << "\n"
             << ExplainBoth(minimized, *scheme);
    }
  }
}

// Sixth configuration, separately parameterized so a router disagreement
// is attributed to the distributed path and not mistaken for an engine
// inconsistency (the in-process variant above stays green when only the
// wire protocol or the merge is wrong).
TEST_P(ScoreConsistencyFuzzTest, RouterMergeBitIdenticalForEveryScheme) {
  const uint64_t base_seed = EnvOr("GRAFT_FUZZ_SEED", 8312011u);
  const uint64_t iters = EnvOr("GRAFT_FUZZ_ITERS", 50u);
  const uint64_t shard = static_cast<uint64_t>(GetParam());
  std::fprintf(stderr, "[fuzz/router] shard=%llu base_seed=%llu iters=%llu\n",
               static_cast<unsigned long long>(shard),
               static_cast<unsigned long long>(base_seed),
               static_cast<unsigned long long>(iters));

  for (uint64_t i = 0; i < iters; ++i) {
    const uint64_t seed = base_seed + shard * 1000003u + i;
    QueryGenerator generator(seed);
    const mcalc::Query query = generator.Generate();
    ASSERT_TRUE(mcalc::ValidateQuery(query).ok())
        << "generator produced invalid query (seed " << seed
        << "): " << mcalc::ToMCalcString(query);

    for (const sa::ScoringScheme* scheme :
         sa::SchemeRegistry::Global().All()) {
      const std::string diff = CheckRouterQuery(query, *scheme);
      if (diff.empty()) continue;
      const mcalc::Query minimized =
          Minimize(query.Clone(), *scheme, &CheckRouterQuery);
      const std::string min_diff = CheckRouterQuery(minimized, *scheme);
      FAIL() << "router inconsistency (seed " << seed << ", scheme "
             << scheme->name() << "): " << diff
             << "\nminimized query: " << mcalc::ToMCalcString(minimized)
             << "\nminimized disagreement: "
             << (min_diff.empty() ? diff : min_diff);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ScoreConsistencyFuzzTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace graft::core
