#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "ma/reference_evaluator.h"
#include "mcalc/parser.h"
#include "text/tokenizer.h"

namespace graft::core {
namespace {

// 40 documents: "needle" appears in 2 docs, 12 times each (low df, high
// cf); "hay" appears in 30 docs once (high df, low-ish cf); "grass" in 10
// docs twice.
index::InvertedIndex SkewedIndex() {
  index::IndexBuilder builder;
  for (int d = 0; d < 40; ++d) {
    std::vector<std::string> tokens;
    for (int i = 0; i < 40; ++i) {
      tokens.push_back("filler" + std::to_string(i % 7) +
                       std::to_string(d % 5));
    }
    if (d < 2) {
      for (int i = 0; i < 12; ++i) tokens[i * 3] = "needle";
    }
    if (d < 30) {
      tokens[38] = "hay";
    }
    if (d < 10) {
      tokens[20] = "grass";
      tokens[25] = "grass";
    }
    builder.AddDocumentStrings(tokens);
  }
  return builder.Build();
}

TEST(CostModelTest, AtomEstimates) {
  index::InvertedIndex index = SkewedIndex();
  CostModel model(&index);
  const auto needle = model.Estimate(*ma::MakeAtom("needle", 0));
  EXPECT_DOUBLE_EQ(needle.docs, 2.0);
  EXPECT_DOUBLE_EQ(needle.rows, 24.0);
  const auto hay = model.Estimate(*ma::MakeAtom("hay", 1));
  EXPECT_DOUBLE_EQ(hay.docs, 30.0);
  EXPECT_DOUBLE_EQ(hay.rows, 30.0);
  const auto missing = model.Estimate(*ma::MakeAtom("absent", 2));
  EXPECT_DOUBLE_EQ(missing.docs, 0.0);
  EXPECT_DOUBLE_EQ(missing.cost, 0.0);
}

TEST(CostModelTest, PreCountCheaperThanAtom) {
  index::InvertedIndex index = SkewedIndex();
  CostModel model(&index);
  const auto positional = model.Estimate(*ma::MakeAtom("needle", 0));
  const auto counted =
      model.Estimate(*ma::MakePreCountAtom("needle", "c0"));
  EXPECT_LT(counted.cost, positional.cost);
  EXPECT_DOUBLE_EQ(counted.docs, positional.docs);
}

TEST(CostModelTest, JoinShrinksDocsAndMultipliesRows) {
  index::InvertedIndex index = SkewedIndex();
  CostModel model(&index);
  const auto join = model.Estimate(
      *ma::MakeJoin(ma::MakeAtom("needle", 0), ma::MakeAtom("hay", 1)));
  // 2 * 30 / 40 = 1.5 docs.
  EXPECT_NEAR(join.docs, 1.5, 1e-9);
  // rows/doc: needle 12, hay 1 -> 1.5 * 12 = 18.
  EXPECT_NEAR(join.rows, 18.0, 1e-9);
  EXPECT_GT(join.cost, 0.0);
}

TEST(CostModelTest, PredicatesReduceRows) {
  index::InvertedIndex index = SkewedIndex();
  CostModel model(&index);
  const auto plain = model.Estimate(
      *ma::MakeJoin(ma::MakeAtom("needle", 0), ma::MakeAtom("grass", 1)));
  const auto filtered = model.Estimate(*ma::MakeJoin(
      ma::MakeAtom("needle", 0), ma::MakeAtom("grass", 1),
      {mcalc::PredicateCall{"WINDOW", {0, 1}, {5}}}));
  EXPECT_LT(filtered.rows, plain.rows);
}

TEST(CostModelTest, UnionAddsAndAltElimCollapses) {
  index::InvertedIndex index = SkewedIndex();
  CostModel model(&index);
  std::vector<ma::PlanNodePtr> branches;
  branches.push_back(ma::MakeAtom("hay", 0));
  branches.push_back(ma::MakeAtom("grass", 1));
  ma::PlanNodePtr union_plan = ma::MakeOuterUnion(std::move(branches));
  const auto unioned = model.Estimate(*union_plan);
  EXPECT_NEAR(unioned.docs, 40.0, 1e-9);  // 30 + 10, capped at N
  const auto collapsed =
      model.Estimate(*ma::MakeAltElim(union_plan->Clone()));
  EXPECT_LT(collapsed.cost, unioned.cost + unioned.rows);
  EXPECT_NEAR(collapsed.rows, collapsed.docs, 1e-9);
}

TEST(CostBasedOrderingTest, PicksFewestDocsNotFewestPositions) {
  index::InvertedIndex index = SkewedIndex();
  auto query = mcalc::ParseQuery("hay needle");
  ASSERT_TRUE(query.ok());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("BestSumMinDist");

  const auto outer_keyword = [&](const OptimizerOptions& options) {
    Optimizer optimizer(scheme, options);
    auto plan = optimizer.Optimize(*query, index);
    EXPECT_TRUE(plan.ok());
    const ma::PlanNode* node = plan->plan.get();
    while (node->kind != ma::OpKind::kJoin) {
      node = node->children[0].get();
    }
    const ma::PlanNode* left = node->children[0].get();
    while (!left->children.empty()) left = left->children[0].get();
    return left->keyword;
  };

  // Heuristic (positions ascending): hay has 30 positions vs needle's 24,
  // so the heuristic puts *needle* first despite hay being the more
  // selective stream... wait: needle cf=24 < hay cf=30, so both agree
  // here. Use grass (cf=20, df=10) vs needle (cf=24, df=2): heuristic
  // picks grass (fewer positions); the cost model picks needle (fewer
  // documents).
  auto query2 = mcalc::ParseQuery("grass needle");
  ASSERT_TRUE(query2.ok());
  query = std::move(query2);

  OptimizerOptions heuristic;
  EXPECT_EQ(outer_keyword(heuristic), "grass");

  OptimizerOptions cost_based;
  cost_based.cost_based_join_order = true;
  EXPECT_EQ(outer_keyword(cost_based), "needle");
}

TEST(CostBasedOrderingTest, ScoreConsistentUnderBothOrders) {
  index::InvertedIndex index = SkewedIndex();
  auto query = mcalc::ParseQuery("grass needle hay");
  ASSERT_TRUE(query.ok());
  for (const char* scheme_name : {"MeanSum", "Lucene", "BestSumMinDist"}) {
    const sa::ScoringScheme* scheme =
        sa::SchemeRegistry::Global().Lookup(scheme_name);
    std::vector<ma::ScoredDoc> results[2];
    for (int variant = 0; variant < 2; ++variant) {
      OptimizerOptions options;
      options.cost_based_join_order = variant == 1;
      Optimizer optimizer(scheme, options);
      auto plan = optimizer.Optimize(*query, index);
      ASSERT_TRUE(plan.ok());
      exec::Executor executor(&index, scheme, MakeQueryContext(*query));
      auto ranked = executor.ExecuteRanked(*plan->plan);
      ASSERT_TRUE(ranked.ok());
      results[variant] = std::move(ranked).value();
    }
    ASSERT_EQ(results[0].size(), results[1].size()) << scheme_name;
    for (size_t i = 0; i < results[0].size(); ++i) {
      EXPECT_EQ(results[0][i].doc, results[1][i].doc);
      EXPECT_NEAR(results[0][i].score, results[1][i].score, 1e-9);
    }
  }
}

}  // namespace
}  // namespace graft::core
