// Score consistency across the segmented parallel execution path: for
// every scoring scheme from the paper's Section 7 and every segment count,
// the parallel engine must return bit-identical scores in the identical
// order as the monolithic engine — both for full result sets and for
// top-k (rank-processed) searches. This is the end-to-end check of the
// two SegmentedIndex invariants (shared vocabulary, global statistics).

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "index/inverted_index.h"
#include "index/segmented_index.h"
#include "text/corpus.h"

namespace graft::core {
namespace {

constexpr const char* kQueries[] = {
    "san francisco fault line",
    "(windows emulator)WINDOW[50] (foss | \"free software\")",
    "(free wireless internet)PROXIMITY[10] service",
    "software",
    "fishing | hunting | dinosaur",
    "free software !windows",
};

// The seven Section 7 schemes plus the extra AnyProd registration.
constexpr const char* kSchemes[] = {
    "AnySum",  "AnyProd",    "SumBest",        "Lucene",
    "JoinNormalized", "MeanSum", "EventModel", "BestSumMinDist"};

constexpr size_t kSegmentCounts[] = {1, 2, 4, 7};

struct Fixture {
  index::InvertedIndex index;
  std::vector<index::SegmentedIndex> segmented;   // one per kSegmentCounts
  std::unique_ptr<Engine> monolithic;
  std::vector<std::unique_ptr<Engine>> parallel;  // one per kSegmentCounts
};

const Fixture& SharedFixture() {
  static const Fixture& fixture = *[] {
    auto* f = new Fixture();
    text::CorpusConfig config = text::WikipediaLikeConfig(500, /*seed=*/13);
    for (auto& bundle : config.bundles) {
      bundle.doc_fraction = std::min(1.0, bundle.doc_fraction * 40);
    }
    for (auto& phrase : config.phrases) {
      phrase.doc_fraction = std::min(1.0, phrase.doc_fraction * 20);
    }
    index::IndexBuilder builder;
    text::CorpusGenerator generator(config);
    generator.Generate(
        [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
          builder.AddDocument(tokens);
        });
    f->index = builder.Build();
    f->monolithic = std::make_unique<Engine>(&f->index);
    f->segmented.reserve(std::size(kSegmentCounts));
    for (size_t n : kSegmentCounts) {
      auto segmented = index::SegmentedIndex::BuildFromMonolithic(f->index, n);
      EXPECT_TRUE(segmented.ok()) << segmented.status().ToString();
      f->segmented.push_back(std::move(segmented).value());
    }
    for (index::SegmentedIndex& seg : f->segmented) {
      f->parallel.push_back(
          std::make_unique<Engine>(&f->index, &seg, /*pool_threads=*/3));
    }
    return f;
  }();
  return fixture;
}

void ExpectIdentical(const std::vector<ma::ScoredDoc>& expected,
                     const std::vector<ma::ScoredDoc>& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].doc, actual[i].doc) << label << " rank " << i;
    // Bit-identical, not approximately equal: segments evaluate the same
    // arithmetic on the same statistics.
    ASSERT_EQ(expected[i].score, actual[i].score)
        << label << " rank " << i << " doc " << expected[i].doc;
  }
}

struct Case {
  std::string query;
  std::string scheme;
};

class ParallelConsistencyTest : public ::testing::TestWithParam<Case> {};

TEST_P(ParallelConsistencyTest, FullSearchMatchesMonolithic) {
  const Fixture& f = SharedFixture();
  const Case& c = GetParam();
  auto expected = f.monolithic->Search(c.query, c.scheme);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  for (size_t i = 0; i < std::size(kSegmentCounts); ++i) {
    auto actual = f.parallel[i]->Search(c.query, c.scheme);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(actual->segments_searched, f.segmented[i].segment_count());
    ExpectIdentical(expected->results, actual->results,
                    "segments=" + std::to_string(kSegmentCounts[i]));
  }
}

TEST_P(ParallelConsistencyTest, TopKMatchesMonolithic) {
  const Fixture& f = SharedFixture();
  const Case& c = GetParam();
  for (size_t k : {1u, 5u, 25u}) {
    SearchOptions options;
    options.top_k = k;
    auto expected = f.monolithic->Search(c.query, c.scheme, options);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    for (size_t i = 0; i < std::size(kSegmentCounts); ++i) {
      auto actual = f.parallel[i]->Search(c.query, c.scheme, options);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      ExpectIdentical(expected->results, actual->results,
                      "k=" + std::to_string(k) + " segments=" +
                          std::to_string(kSegmentCounts[i]));
    }
  }
}

TEST_P(ParallelConsistencyTest, SerialSegmentedMatchesMonolithic) {
  // num_threads == 1: segments execute serially on the calling thread —
  // the merge logic alone, with no pool involvement.
  const Fixture& f = SharedFixture();
  const Case& c = GetParam();
  SearchOptions options;
  options.num_threads = 1;
  auto expected = f.monolithic->Search(c.query, c.scheme);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  auto actual = f.parallel.back()->Search(c.query, c.scheme, options);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ExpectIdentical(expected->results, actual->results, "serial segmented");
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (const char* query : kQueries) {
    for (const char* scheme : kSchemes) {
      cases.push_back(Case{query, scheme});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = info.param.scheme + "_q" + std::to_string(info.index);
  std::replace_if(
      name.begin(), name.end(),
      [](char ch) { return !std::isalnum(static_cast<unsigned char>(ch)); },
      '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllSchemesAllSegmentCounts, ParallelConsistencyTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

TEST(ParallelEngineTest, CanonicalReferenceFallsBackToMonolithic) {
  const Fixture& f = SharedFixture();
  SearchOptions options;
  options.use_canonical_reference = true;
  auto result = f.parallel[1]->Search("software", "MeanSum", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->segments_searched, 1u);
}

TEST(ParallelEngineTest, ReportsSegmentAnnotations) {
  const Fixture& f = SharedFixture();
  auto result = f.parallel[2]->Search("san francisco fault line", "MeanSum");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->segments_searched, 4u);
  EXPECT_NE(result->applied_optimizations.find("segmented"), std::string::npos);
}

TEST(ParallelEngineTest, ConcurrentSearchesOnOneEngine) {
  // Inter-query parallelism: many threads issuing searches against a
  // single shared engine (and its shared pool) must all get consistent
  // results. Exercised under TSan in CI.
  const Fixture& f = SharedFixture();
  auto expected = f.monolithic->Search("free software !windows", "Lucene");
  ASSERT_TRUE(expected.ok());
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<std::vector<ma::ScoredDoc>> outputs(kThreads);
  std::vector<char> ok(kThreads, 0);  // not vector<bool>: bits share words
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&f, &outputs, &ok, t] {
      auto result =
          f.parallel.back()->Search("free software !windows", "Lucene");
      if (result.ok()) {
        outputs[t] = std::move(result->results);
        ok[t] = 1;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(ok[t]) << "thread " << t;
    ExpectIdentical(expected->results, outputs[t],
                    "thread " + std::to_string(t));
  }
}

}  // namespace
}  // namespace graft::core
