// Property-based score-consistency fuzzing: random well-formed queries
// (conjunctions, disjunctions, negations, phrases, positional predicates,
// nesting) over the corpus vocabulary, executed through the optimizer and
// compared against the canonical reference oracle for every scheme.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/random.h"
#include "core/canonical_plan.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "ma/reference_evaluator.h"
#include "text/corpus.h"

namespace graft::core {
namespace {

const index::InvertedIndex& FuzzIndex() {
  static const index::InvertedIndex& index = *[] {
    text::CorpusConfig config = text::WikipediaLikeConfig(350, /*seed=*/97);
    for (auto& bundle : config.bundles) {
      bundle.doc_fraction = std::min(1.0, bundle.doc_fraction * 60);
    }
    index::IndexBuilder builder;
    text::CorpusGenerator generator(config);
    generator.Generate(
        [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
          builder.AddDocument(tokens);
        });
    return new index::InvertedIndex(builder.Build());
  }();
  return index;
}

// Vocabulary pool mixing frequent, mid, rare, and absent words.
const char* kWords[] = {"free",    "software", "windows", "service",
                        "line",    "county",   "image",   "species",
                        "fishing", "obama",    "emulator", "foss",
                        "the",     "of",       "city",     "neverseen"};

class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  mcalc::Query Generate() {
    mcalc::Query query;
    query.root = GenNode(&query, /*depth=*/0, /*allow_not=*/true);
    return query;
  }

 private:
  mcalc::NodePtr GenKeyword(mcalc::Query* query) {
    const char* word = kWords[rng_.NextBounded(std::size(kWords))];
    const mcalc::VarId var =
        static_cast<mcalc::VarId>(query->variables.size());
    query->variables.push_back(mcalc::Variable{var, word});
    return mcalc::MakeKeyword(word, var);
  }

  mcalc::NodePtr GenNode(mcalc::Query* query, int depth, bool allow_not) {
    const uint64_t kind = depth >= 2 ? 0 : rng_.NextBounded(10);
    if (kind < 3 || query->variables.size() >= 7) {
      return GenKeyword(query);
    }
    if (kind < 6) {  // conjunction, possibly with a negated child
      std::vector<mcalc::NodePtr> kids;
      const uint64_t n = 2 + rng_.NextBounded(2);
      for (uint64_t i = 0; i < n; ++i) {
        kids.push_back(GenNode(query, depth + 1, /*allow_not=*/false));
      }
      if (allow_not && rng_.NextBool(0.3)) {
        kids.push_back(mcalc::MakeNot(GenKeyword(query)));
      }
      return mcalc::MakeAnd(std::move(kids));
    }
    if (kind < 8) {  // disjunction
      std::vector<mcalc::NodePtr> kids;
      const uint64_t n = 2 + rng_.NextBounded(2);
      for (uint64_t i = 0; i < n; ++i) {
        kids.push_back(GenNode(query, depth + 1, /*allow_not=*/false));
      }
      return mcalc::MakeOr(std::move(kids));
    }
    // Predicate group over a fresh conjunction of keywords.
    std::vector<mcalc::NodePtr> kids;
    std::vector<mcalc::VarId> vars;
    const uint64_t n = 2 + rng_.NextBounded(2);
    for (uint64_t i = 0; i < n; ++i) {
      mcalc::NodePtr kw = GenKeyword(query);
      vars.push_back(kw->var);
      kids.push_back(std::move(kw));
    }
    mcalc::PredicateCall call;
    switch (rng_.NextBounded(4)) {
      case 0:
        call = {"WINDOW", vars, {static_cast<int64_t>(
                                    5 + rng_.NextBounded(60))}};
        break;
      case 1:
        call = {"PROXIMITY", vars, {static_cast<int64_t>(
                                       3 + rng_.NextBounded(20))}};
        break;
      case 2:
        call = {"ORDER", vars, {}};
        break;
      default:
        call = {"DISTANCE",
                {vars[0], vars[1]},
                {static_cast<int64_t>(1 + rng_.NextBounded(3))}};
        break;
    }
    return mcalc::MakeConstrained(mcalc::MakeAnd(std::move(kids)),
                                  {std::move(call)});
  }

  Rng rng_;
};

std::map<DocId, double> ToMap(const std::vector<ma::ScoredDoc>& results) {
  std::map<DocId, double> map;
  for (const ma::ScoredDoc& r : results) {
    map[r.doc] = r.score;
  }
  return map;
}

class RandomQueryFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomQueryFuzzTest, OptimizedEqualsCanonicalForEveryScheme) {
  QueryGenerator generator(20110612u + static_cast<uint64_t>(GetParam()));
  const mcalc::Query query = generator.Generate();
  ASSERT_TRUE(mcalc::ValidateQuery(query).ok())
      << mcalc::ToMCalcString(query);
  SCOPED_TRACE(mcalc::ToMCalcString(query));

  for (const sa::ScoringScheme* scheme :
       sa::SchemeRegistry::Global().All()) {
    SCOPED_TRACE(std::string(scheme->name()));
    auto canonical = BuildCanonicalPlan(query, *scheme);
    ASSERT_TRUE(canonical.ok()) << canonical.status().ToString();
    ASSERT_TRUE(ma::ResolvePlan(canonical->plan.get(), FuzzIndex()).ok());
    ma::ReferenceEvaluator reference(&FuzzIndex(), scheme,
                                     MakeQueryContext(query));
    auto oracle_table = reference.Evaluate(*canonical->plan);
    ASSERT_TRUE(oracle_table.ok()) << oracle_table.status().ToString();
    auto oracle_ranked = ma::ExtractRankedResults(*oracle_table);
    ASSERT_TRUE(oracle_ranked.ok());
    const std::map<DocId, double> oracle = ToMap(*oracle_ranked);

    Optimizer optimizer(scheme);
    auto plan = optimizer.Optimize(query, FuzzIndex());
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    exec::Executor executor(&FuzzIndex(), scheme, MakeQueryContext(query));
    auto optimized = executor.ExecuteRanked(*plan->plan);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    const std::map<DocId, double> actual = ToMap(*optimized);

    ASSERT_EQ(actual.size(), oracle.size())
        << "plan:\n" << ma::PlanToString(*plan->plan);
    for (const auto& [doc, score] : oracle) {
      const auto it = actual.find(doc);
      ASSERT_NE(it, actual.end()) << "doc " << doc;
      EXPECT_LE(std::fabs(score - it->second),
                1e-7 * std::max(1.0, std::fabs(score)))
          << "doc " << doc << ": " << score << " vs " << it->second
          << "\nplan:\n" << ma::PlanToString(*plan->plan);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryFuzzTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace graft::core
