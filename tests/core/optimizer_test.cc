// Optimizer plan-shape tests: the same query optimizes into structurally
// different plans under different schemes (the paper's central claim), and
// each rewrite leaves the expected fingerprints.

#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "mcalc/parser.h"
#include "text/corpus.h"

namespace graft::core {
namespace {

const index::InvertedIndex& CorpusIndex() {
  static const index::InvertedIndex& index = *[] {
    text::CorpusConfig config = text::WikipediaLikeConfig(300, /*seed=*/5);
    index::IndexBuilder builder;
    text::CorpusGenerator generator(config);
    generator.Generate(
        [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
          builder.AddDocument(tokens);
        });
    return new index::InvertedIndex(builder.Build());
  }();
  return index;
}

int CountKind(const ma::PlanNode& node, ma::OpKind kind) {
  int count = node.kind == kind ? 1 : 0;
  for (const ma::PlanNodePtr& child : node.children) {
    count += CountKind(*child, kind);
  }
  return count;
}

bool Applied(const OptimizedPlan& plan, Optimization opt) {
  return std::find(plan.applied.begin(), plan.applied.end(), opt) !=
         plan.applied.end();
}

OptimizedPlan OptimizeFor(const char* query_text, const char* scheme_name,
                          OptimizerOptions options = {}) {
  auto query = mcalc::ParseQuery(query_text);
  EXPECT_TRUE(query.ok());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup(scheme_name);
  EXPECT_NE(scheme, nullptr);
  Optimizer optimizer(scheme, options);
  auto plan = optimizer.Optimize(*query, CorpusIndex());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

constexpr const char* kQ8 =
    "(windows emulator)WINDOW[50] (foss | \"free software\")";

TEST(OptimizerShapeTest, AnySumGetsAltElimAndPreCount) {
  const OptimizedPlan plan = OptimizeFor(kQ8, "AnySum");
  EXPECT_TRUE(Applied(plan, Optimization::kAlternateElimination));
  EXPECT_TRUE(Applied(plan, Optimization::kPreCounting));
  EXPECT_GE(CountKind(*plan.plan, ma::OpKind::kAltElim), 1);
  EXPECT_GE(CountKind(*plan.plan, ma::OpKind::kPreCountAtom), 1);
  // Constant schemes need no grouping at all.
  EXPECT_EQ(CountKind(*plan.plan, ma::OpKind::kGroup), 0);
  EXPECT_EQ(CountKind(*plan.plan, ma::OpKind::kSort), 0);
}

TEST(OptimizerShapeTest, SumBestGetsEagerAggregation) {
  // Q4: every keyword is predicate-free, so every leaf aggregates.
  const OptimizedPlan plan =
      OptimizeFor("san francisco fault line", "SumBest");
  EXPECT_TRUE(Applied(plan, Optimization::kEagerAggregation));
  EXPECT_FALSE(Applied(plan, Optimization::kAlternateElimination));
  EXPECT_EQ(CountKind(*plan.plan, ma::OpKind::kAltElim), 0);
  // With pre-counting the aggregated leaves are π-over-CA; the final γ
  // remains on top.
  EXPECT_EQ(CountKind(*plan.plan, ma::OpKind::kPreCountAtom), 4);
  EXPECT_GE(CountKind(*plan.plan, ma::OpKind::kGroup), 1);
}

TEST(OptimizerShapeTest, EagerAggregationSkipsPredicateAndUnionAtoms) {
  // In Q8 every keyword is either a predicate argument or inside the
  // union, so the eager-aggregation path has nothing to aggregate and the
  // plan degenerates to the canonical column-first shape (no counts).
  const OptimizedPlan plan = OptimizeFor(kQ8, "SumBest");
  EXPECT_FALSE(Applied(plan, Optimization::kEagerAggregation));
  EXPECT_EQ(CountKind(*plan.plan, ma::OpKind::kPreCountAtom), 0);
  EXPECT_EQ(CountKind(*plan.plan, ma::OpKind::kAtom), 5);
}

TEST(OptimizerShapeTest, EventModelKeepsRowFirstWithCounting) {
  const OptimizedPlan plan = OptimizeFor("san francisco fault line",
                                         "EventModel");
  // Row-first: eager aggregation is gated off, eager counting applies.
  EXPECT_FALSE(Applied(plan, Optimization::kEagerAggregation));
  EXPECT_TRUE(Applied(plan, Optimization::kEagerCounting) ||
              Applied(plan, Optimization::kPreCounting));
}

TEST(OptimizerShapeTest, BestSumMinDistKeepsPositions) {
  const OptimizedPlan plan = OptimizeFor(kQ8, "BestSumMinDist");
  // Positional: no counting of any kind; positions must reach scoring.
  EXPECT_FALSE(Applied(plan, Optimization::kPreCounting));
  EXPECT_FALSE(Applied(plan, Optimization::kEagerCounting));
  EXPECT_FALSE(Applied(plan, Optimization::kEagerAggregation));
  EXPECT_EQ(CountKind(*plan.plan, ma::OpKind::kPreCountAtom), 0);
  EXPECT_EQ(CountKind(*plan.plan, ma::OpKind::kAtom), 5);
}

TEST(OptimizerShapeTest, SelectionPushingMovesPredicatesIntoJoins) {
  OptimizerOptions no_push;
  no_push.push_selections = false;
  const OptimizedPlan unpushed = OptimizeFor(kQ8, "BestSumMinDist", no_push);
  const OptimizedPlan pushed = OptimizeFor(kQ8, "BestSumMinDist");
  // Without pushing: a top-level σ carries both predicates.
  EXPECT_GE(CountKind(*unpushed.plan, ma::OpKind::kSelect), 1);
  // With pushing, the DISTANCE lands inside the phrase branch (a select
  // or join residual below the union), strictly deeper than before.
  EXPECT_TRUE(Applied(pushed, Optimization::kSelectionPushing));
  EXPECT_FALSE(Applied(unpushed, Optimization::kSelectionPushing));
}

TEST(OptimizerShapeTest, OptionsDisableRewrites) {
  OptimizerOptions off;
  off.eager_aggregation = false;
  off.eager_counting = false;
  off.pre_counting = false;
  off.alternate_elimination = false;
  const OptimizedPlan plan = OptimizeFor(kQ8, "AnySum", off);
  EXPECT_FALSE(Applied(plan, Optimization::kAlternateElimination));
  EXPECT_EQ(CountKind(*plan.plan, ma::OpKind::kPreCountAtom), 0);
  EXPECT_EQ(CountKind(*plan.plan, ma::OpKind::kAltElim), 0);
}

// A user-defined scheme with a non-commutative ⊕ forces the canonical τ to
// stay and all grouped paths off (the sort-elimination gate).
class OrderSensitiveScheme final : public sa::ScoringScheme {
 public:
  OrderSensitiveScheme() {
    props_.direction = sa::Direction::kRowFirst;
    props_.alt = {false, false, false, false};
    props_.conj = {true, true, true, false};
    props_.disj = {true, true, true, false};
  }
  std::string_view name() const override { return "OrderSensitive"; }
  const sa::SchemeProperties& properties() const override { return props_; }
  sa::InternalScore Init(const sa::DocContext& doc,
                         const sa::ColumnContext& col,
                         Offset offset) const override {
    (void)doc;
    (void)col;
    return sa::InternalScore(offset == kEmptyOffset ? 0.0 : 1.0);
  }
  sa::InternalScore Conj(const sa::InternalScore& l,
                         const sa::InternalScore& r) const override {
    return sa::InternalScore(l.a + r.a);
  }
  sa::InternalScore Disj(const sa::InternalScore& l,
                         const sa::InternalScore& r) const override {
    return sa::InternalScore(l.a + r.a);
  }
  sa::InternalScore Alt(const sa::InternalScore& l,
                        const sa::InternalScore& r) const override {
    // Decaying fold: order-sensitive on purpose.
    return sa::InternalScore(l.a + 0.5 * r.a);
  }
  double Finalize(const sa::DocContext&, const sa::QueryContext&,
                  const sa::InternalScore& s) const override {
    return s.a;
  }

 private:
  sa::SchemeProperties props_;
};

TEST(OptimizerShapeTest, NonCommutativeAltKeepsSort) {
  auto query = mcalc::ParseQuery("free software");
  ASSERT_TRUE(query.ok());
  OrderSensitiveScheme scheme;
  Optimizer optimizer(&scheme);
  auto plan = optimizer.Optimize(*query, CorpusIndex());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(Applied(*plan, Optimization::kSortElimination));
  EXPECT_EQ(CountKind(*plan->plan, ma::OpKind::kSort), 1);
  // And the grouped paths stayed off.
  EXPECT_FALSE(Applied(*plan, Optimization::kEagerAggregation));
  EXPECT_FALSE(Applied(*plan, Optimization::kEagerCounting));
}

TEST(OptimizerShapeTest, JoinReorderPutsRareTermOutermost) {
  // 'foss' is far rarer than 'free'; the reordered right-deep chain should
  // scan it as the outer (left) input.
  const OptimizedPlan plan = OptimizeFor("free foss", "BestSumMinDist");
  const ma::PlanNode* node = plan.plan.get();
  while (node->kind != ma::OpKind::kJoin) {
    node = node->children[0].get();
  }
  const ma::PlanNode* left = node->children[0].get();
  while (!left->children.empty()) left = left->children[0].get();
  EXPECT_EQ(left->keyword, "foss");
}

TEST(OptimizerShapeTest, ExplainMentionsPhiAndRewrites) {
  Engine engine(&CorpusIndex());
  auto explain = engine.Explain(kQ8, "AnySum");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("⊘"), std::string::npos);
  EXPECT_NE(explain->find("alt. elim."), std::string::npos);
  EXPECT_NE(explain->find("AnySum"), std::string::npos);
}

}  // namespace
}  // namespace graft::core
