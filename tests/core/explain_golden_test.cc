// Golden snapshot tests for EXPLAIN: the static plan rendering (query, Φ,
// scheme, the full rewrite-attempt table with gate verdicts, cost estimate,
// physical plan) is compared byte-for-byte against checked-in snapshots in
// tests/golden/. Only Engine::Explain is snapshotted — EXPLAIN ANALYZE
// carries timings, which cannot be golden.
//
// To regenerate after an intentional plan/format change:
//
//   ./graft_tests --update-golden --gtest_filter='ExplainGolden*'
//   (or GRAFT_UPDATE_GOLDEN=1 ./graft_tests ...)
//
// then review the snapshot diff like any other code change. The corpus is
// five hand-written documents, so every golden is small enough to read in
// review and the cost estimates are stable.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "index/inverted_index.h"
#include "text/tokenizer.h"

#ifndef GRAFT_TEST_GOLDEN_DIR
#error "GRAFT_TEST_GOLDEN_DIR must point at tests/golden"
#endif

namespace graft::core {
namespace {

bool UpdateGoldenRequested() {
  if (const char* env = std::getenv("GRAFT_UPDATE_GOLDEN");
      env != nullptr && *env != '\0' && std::string(env) != "0") {
    return true;
  }
  // gtest ignores flags it does not recognize, so --update-golden survives
  // in the command line; read it back from /proc (this repo is linux-only).
  std::ifstream cmdline("/proc/self/cmdline", std::ios::binary);
  std::stringstream buffer;
  buffer << cmdline.rdbuf();
  const std::string args = buffer.str();  // NUL-separated argv
  return args.find("--update-golden") != std::string::npos;
}

const index::InvertedIndex& GoldenIndex() {
  static const index::InvertedIndex& index = *[] {
    // Fixed micro-corpus covering the query vocabulary: term frequencies
    // (and therefore cost estimates and join orders) are part of the
    // snapshot contract.
    const char* docs[] = {
        "free software foundation ships free software for windows users",
        "the windows emulator runs free software on any machine",
        "foss means free and open software the emulator is foss",
        "windows users install the emulator to try foss software",
        "software engineering notes nothing about emulators or windows",
    };
    auto* built = new index::InvertedIndex([&] {
      index::IndexBuilder builder;
      for (const char* doc : docs) {
        builder.AddDocumentStrings(text::Tokenize(doc));
      }
      return builder.Build();
    }());
    return built;
  }();
  return index;
}

const Engine& GoldenEngine() {
  static const Engine engine(&GoldenIndex());
  return engine;
}

std::string GoldenPath(const std::string& name) {
  return std::string(GRAFT_TEST_GOLDEN_DIR) + "/" + name + ".txt";
}

void CheckGolden(const std::string& name, const std::string& query,
                 const std::string& scheme,
                 const SearchOptions& options = {}) {
  auto rendered = GoldenEngine().Explain(query, scheme, options);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();

  const std::string path = GoldenPath(name);
  if (UpdateGoldenRequested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << *rendered;
    ASSERT_TRUE(out.good()) << "short write to " << path;
    std::fprintf(stderr, "[golden] updated %s\n", path.c_str());
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run graft_tests --update-golden (or GRAFT_UPDATE_GOLDEN=1) "
         "to create it, then check it in";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();
  EXPECT_EQ(*rendered, expected)
      << "EXPLAIN output drifted from " << path
      << " — if the change is intentional, regenerate with "
         "--update-golden and review the diff";
}

// One query per optimizer regime (the header comment of optimizer.h):
// constant-scheme pre-counting, eager aggregation, eager counting,
// positional row-first, and a rank-eligible top-k shape.

TEST(ExplainGolden, ConjunctionMeanSum) {
  CheckGolden("explain_conjunction_meansum", "free software", "MeanSum");
}

TEST(ExplainGolden, ConjunctionAnySum) {
  CheckGolden("explain_conjunction_anysum", "free software", "AnySum");
}

TEST(ExplainGolden, DisjunctionLucene) {
  CheckGolden("explain_disjunction_lucene", "foss | (free software)",
              "Lucene");
}

TEST(ExplainGolden, WindowBestSumMinDist) {
  CheckGolden("explain_window_bestsumdist", "(windows emulator)WINDOW[50]",
              "BestSumMinDist");
}

TEST(ExplainGolden, NegationEventModel) {
  CheckGolden("explain_negation_eventmodel", "free software !windows",
              "EventModel");
}

TEST(ExplainGolden, PhraseSumBest) {
  CheckGolden("explain_phrase_sumbest",
              "\"free software\" (foss | emulator)", "SumBest");
}

// Top-k plans: the strategy line and the block-max prune gate verdict are
// part of the snapshot. AnySum is fully licensed (pruned plan); MeanSum is
// blocked on the bounded property (α not upper-boundable), so the same
// query falls back — the blocked verdict must appear in the rewrite table.

TEST(ExplainGolden, TopKPrunedAnySum) {
  SearchOptions options;
  options.top_k = 10;
  CheckGolden("explain_topk_pruned_anysum", "free software", "AnySum",
              options);
}

TEST(ExplainGolden, TopKBlockedMeanSum) {
  SearchOptions options;
  options.top_k = 10;
  CheckGolden("explain_topk_blocked_meansum", "free software", "MeanSum",
              options);
}

// Forced Fagin middleware strategies: the strategy line names the forced
// operator when its gate licenses the query + scheme, and shows the
// full-ranking fallback with the blocking verdict otherwise. The rewrite
// table carries the per-rule verdicts either way.

TEST(ExplainGolden, TopKThresholdForcedAnySum) {
  SearchOptions options;
  options.top_k = 10;
  options.topk_strategy = TopKStrategy::kThreshold;
  CheckGolden("explain_topk_ta_forced_anysum", "free software", "AnySum",
              options);
}

TEST(ExplainGolden, TopKNraForcedAnySum) {
  SearchOptions options;
  options.top_k = 10;
  options.topk_strategy = TopKStrategy::kNra;
  CheckGolden("explain_topk_nra_forced_anysum", "free software", "AnySum",
              options);
}

TEST(ExplainGolden, TopKNraBlockedMeanSum) {
  SearchOptions options;
  options.top_k = 10;
  options.topk_strategy = TopKStrategy::kNra;
  CheckGolden("explain_topk_nra_blocked_meansum", "free software", "MeanSum",
              options);
}

}  // namespace
}  // namespace graft::core
