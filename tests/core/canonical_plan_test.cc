#include "core/canonical_plan.h"

#include <gtest/gtest.h>

#include "mcalc/parser.h"
#include "testutil/fixtures.h"

namespace graft::core {
namespace {

TEST(CanonicalPlanTest, MatchingSubplanShape) {
  // Canonical: τ above σ above a right-deep join tree (Plan 7).
  const mcalc::Query query = testutil::MakeQ3();
  auto plan = BuildMatchingSubplan(query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const ma::PlanNode* node = plan->get();
  ASSERT_EQ(node->kind, ma::OpKind::kSort);
  node = node->children[0].get();
  ASSERT_EQ(node->kind, ma::OpKind::kSelect);
  EXPECT_EQ(node->predicates.size(), 2u);  // WINDOW + DISTANCE
  node = node->children[0].get();
  ASSERT_EQ(node->kind, ma::OpKind::kJoin);
}

TEST(CanonicalPlanTest, RightDeepJoinTreeInKeywordOrder) {
  auto query = mcalc::ParseQuery("a b c d");
  ASSERT_TRUE(query.ok());
  auto plan = BuildMatchingSubplanNoSort(*query);
  ASSERT_TRUE(plan.ok());
  const ma::PlanNode* node = plan->get();
  // join(a, join(b, join(c, d)))
  for (const char* expected : {"a", "b", "c"}) {
    ASSERT_EQ(node->kind, ma::OpKind::kJoin);
    EXPECT_EQ(node->children[0]->keyword, expected);
    node = node->children[1].get();
  }
  EXPECT_EQ(node->keyword, "d");
}

TEST(CanonicalPlanTest, RowFirstScoringPortion) {
  // Plan 6: π_{ω} ∘ γ_d{⊕} ∘ π_{Φ∘α} ∘ matching.
  auto query = mcalc::ParseQuery("a b");
  ASSERT_TRUE(query.ok());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("EventModel");  // row-first
  auto build = BuildCanonicalPlan(*query, *scheme);
  ASSERT_TRUE(build.ok());
  EXPECT_EQ(build->direction_used, sa::Direction::kRowFirst);
  const ma::PlanNode* node = build->plan.get();
  ASSERT_EQ(node->kind, ma::OpKind::kProject);
  EXPECT_TRUE(node->items[0].finalize);
  node = node->children[0].get();
  ASSERT_EQ(node->kind, ma::OpKind::kGroup);
  EXPECT_EQ(node->group.score_aggs.size(), 1u);  // one row-score fold
  node = node->children[0].get();
  ASSERT_EQ(node->kind, ma::OpKind::kProject);
  EXPECT_EQ(node->items.size(), 1u);
  node = node->children[0].get();
  EXPECT_EQ(node->kind, ma::OpKind::kSort);
}

TEST(CanonicalPlanTest, ColumnFirstScoringPortion) {
  // Plan 5: π_{ω∘Φ} ∘ γ_d{⊕ per column} ∘ π_α ∘ matching.
  auto query = mcalc::ParseQuery("a b c");
  ASSERT_TRUE(query.ok());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("SumBest");  // column-first
  auto build = BuildCanonicalPlan(*query, *scheme);
  ASSERT_TRUE(build.ok());
  EXPECT_EQ(build->direction_used, sa::Direction::kColumnFirst);
  const ma::PlanNode* node = build->plan.get();
  ASSERT_EQ(node->kind, ma::OpKind::kProject);
  node = node->children[0].get();
  ASSERT_EQ(node->kind, ma::OpKind::kGroup);
  EXPECT_EQ(node->group.score_aggs.size(), 3u);  // one ⊕ per column
  node = node->children[0].get();
  ASSERT_EQ(node->kind, ma::OpKind::kProject);
  EXPECT_EQ(node->items.size(), 3u);  // α per column
}

TEST(CanonicalPlanTest, DiagonalSchemesUseColumnFirst) {
  auto query = mcalc::ParseQuery("a b");
  ASSERT_TRUE(query.ok());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("MeanSum");
  auto build = BuildCanonicalPlan(*query, *scheme);
  ASSERT_TRUE(build.ok());
  EXPECT_EQ(build->direction_used, sa::Direction::kColumnFirst);
}

TEST(CanonicalPlanTest, NegationBecomesAntiJoin) {
  auto query = mcalc::ParseQuery("a !b");
  ASSERT_TRUE(query.ok());
  auto plan = BuildMatchingSubplanNoSort(*query);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind, ma::OpKind::kAntiJoin);
}

TEST(CanonicalPlanTest, PureNegationRejected) {
  mcalc::Query query;
  query.variables = {{0, "a"}, {1, "b"}};
  std::vector<mcalc::NodePtr> kids;
  kids.push_back(mcalc::MakeNot(mcalc::MakeKeyword("a", 0)));
  kids.push_back(mcalc::MakeNot(mcalc::MakeKeyword("b", 1)));
  query.root = mcalc::MakeAnd(std::move(kids));
  EXPECT_FALSE(BuildMatchingSubplan(query).ok());
}

TEST(CanonicalPlanTest, QueryContextCountsFreeVariables) {
  const mcalc::Query q3 = testutil::MakeQ3();
  EXPECT_EQ(MakeQueryContext(q3).num_columns, 5u);
  auto negated = mcalc::ParseQuery("a !b c");
  ASSERT_TRUE(negated.ok());
  EXPECT_EQ(MakeQueryContext(*negated).num_columns, 2u);
}

}  // namespace
}  // namespace graft::core
