// End-to-end engine tests over the synthetic corpus: the paper's Q4-Q11
// under every scheme, options handling, and API error paths.

#include "core/engine.h"

#include <gtest/gtest.h>

#include "index/index_io.h"
#include "text/corpus.h"
#include "text/tokenizer.h"

namespace graft::core {
namespace {

const index::InvertedIndex& CorpusIndex() {
  static const index::InvertedIndex& index = *[] {
    text::CorpusConfig config = text::WikipediaLikeConfig(1500, /*seed=*/3);
    for (auto& bundle : config.bundles) {
      bundle.doc_fraction = std::min(1.0, bundle.doc_fraction * 25);
    }
    for (auto& phrase : config.phrases) {
      phrase.doc_fraction = std::min(1.0, phrase.doc_fraction * 12);
    }
    index::IndexBuilder builder;
    text::CorpusGenerator generator(config);
    generator.Generate(
        [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
          builder.AddDocument(tokens);
        });
    return new index::InvertedIndex(builder.Build());
  }();
  return index;
}

struct EngineCase {
  std::string query;
  std::string scheme;
};

class EngineSweepTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineSweepTest, SearchSucceedsAndRanksDescending) {
  Engine engine(&CorpusIndex());
  auto result = engine.Search(GetParam().query, GetParam().scheme);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (size_t i = 1; i < result->results.size(); ++i) {
    EXPECT_GE(result->results[i - 1].score, result->results[i].score);
  }
  EXPECT_FALSE(result->plan_text.empty());
  EXPECT_FALSE(result->applied_optimizations.empty());
}

std::vector<EngineCase> SweepCases() {
  std::vector<EngineCase> cases;
  for (const char* query : {
           "san francisco fault line",
           "dinosaur species list (image | picture | drawing | illustration)",
           "\"orange county convention center\" orlando",
           "\"san francisco\" \"fault line\"",
           "(windows emulator)WINDOW[50] (foss | \"free software\")",
           "(free wireless internet)PROXIMITY[10] service",
           "arizona ((fishing | hunting) (rules | regulations))WINDOW[20]",
           "\"rick warren\" (obama inauguration)PROXIMITY[4] "
           "(controversy invocation)PROXIMITY[15]",
       }) {
    for (const char* scheme :
         {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
          "EventModel", "BestSumMinDist"}) {
      cases.push_back(EngineCase{query, scheme});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(PaperQueriesAllSchemes, EngineSweepTest,
                         ::testing::ValuesIn(SweepCases()));

TEST(EngineTest, FrequentQueriesFindDocuments) {
  Engine engine(&CorpusIndex());
  auto result = engine.Search("san francisco fault line", "MeanSum");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->results.size(), 0u);
}

TEST(EngineTest, UnknownSchemeRejected) {
  Engine engine(&CorpusIndex());
  EXPECT_EQ(engine.Search("free", "Mystery").status().code(),
            StatusCode::kNotFound);
}

TEST(EngineTest, MalformedQueryRejected) {
  Engine engine(&CorpusIndex());
  EXPECT_EQ(engine.Search("(a b", "AnySum").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, UnknownKeywordsYieldEmptyResults) {
  Engine engine(&CorpusIndex());
  auto result = engine.Search("zzzznonexistent free", "AnySum");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->results.empty());
}

TEST(EngineTest, TopKTrimsAndUsesRankProcessingWhenEligible) {
  Engine engine(&CorpusIndex());
  SearchOptions options;
  options.top_k = 3;
  auto result = engine.Search("free software", "Lucene", options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->results.size(), 3u);
  EXPECT_TRUE(result->used_rank_processing);

  // Ineligible scheme: same API, regular execution.
  auto sum_best = engine.Search("free software", "SumBest", options);
  ASSERT_TRUE(sum_best.ok());
  EXPECT_LE(sum_best->results.size(), 3u);
  EXPECT_FALSE(sum_best->used_rank_processing);

  // Rank processing can also be opted out.
  options.allow_rank_processing = false;
  auto opted_out = engine.Search("free software", "Lucene", options);
  ASSERT_TRUE(opted_out.ok());
  EXPECT_FALSE(opted_out->used_rank_processing);
}

TEST(EngineTest, CanonicalReferencePathAgreesWithOptimized) {
  Engine engine(&CorpusIndex());
  SearchOptions canonical;
  canonical.use_canonical_reference = true;
  auto slow = engine.Search("\"san francisco\" \"fault line\"", "SumBest",
                            canonical);
  auto fast = engine.Search("\"san francisco\" \"fault line\"", "SumBest");
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  ASSERT_EQ(slow->results.size(), fast->results.size());
  for (size_t i = 0; i < slow->results.size(); ++i) {
    EXPECT_EQ(slow->results[i].doc, fast->results[i].doc);
    EXPECT_NEAR(slow->results[i].score, fast->results[i].score, 1e-7);
  }
}

TEST(EngineTest, WorksOnReloadedIndex) {
  const std::string path = ::testing::TempDir() + "/graft_engine_test.idx";
  ASSERT_TRUE(index::SaveIndex(CorpusIndex(), path).ok());
  auto loaded = index::LoadIndex(path);
  ASSERT_TRUE(loaded.ok());

  Engine original(&CorpusIndex());
  Engine reloaded(&*loaded);
  auto a = original.Search("free software", "MeanSum");
  auto b = reloaded.Search("free software", "MeanSum");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->results.size(), b->results.size());
  for (size_t i = 0; i < a->results.size(); ++i) {
    EXPECT_EQ(a->results[i].doc, b->results[i].doc);
    EXPECT_NEAR(a->results[i].score, b->results[i].score, 1e-12);
  }
  std::remove(path.c_str());
}

TEST(EngineTest, UserDefinedSchemeRegistersAndSearches) {
  // Desideratum 4: plugging in a new scheme requires only the SA
  // operators and property declarations — the optimizer adapts by itself.
  class HarmonicScheme final : public sa::ScoringScheme {
   public:
    HarmonicScheme() {
      props_.direction = sa::Direction::kDiagonal;
      props_.alt = {true, true, true, false};
      props_.conj = {true, true, true, false};
      props_.disj = {true, true, true, false};
      props_.alt_multiplies = true;
    }
    std::string_view name() const override { return "TestHarmonic"; }
    const sa::SchemeProperties& properties() const override { return props_; }
    sa::InternalScore Init(const sa::DocContext& doc,
                           const sa::ColumnContext& col,
                           Offset offset) const override {
      if (offset == kEmptyOffset || col.doc_freq == 0) {
        return sa::InternalScore(0.0);
      }
      return sa::InternalScore(
          static_cast<double>(doc.collection_size) /
          static_cast<double>(col.doc_freq * (1 + doc.length)));
    }
    sa::InternalScore Conj(const sa::InternalScore& l,
                           const sa::InternalScore& r) const override {
      return sa::InternalScore(l.a + r.a);
    }
    sa::InternalScore Disj(const sa::InternalScore& l,
                           const sa::InternalScore& r) const override {
      return sa::InternalScore(l.a + r.a);
    }
    sa::InternalScore Alt(const sa::InternalScore& l,
                          const sa::InternalScore& r) const override {
      return sa::InternalScore(l.a + r.a);
    }
    sa::InternalScore Scale(const sa::InternalScore& s,
                            uint64_t k) const override {
      return sa::InternalScore(s.a * static_cast<double>(k));
    }
    double Finalize(const sa::DocContext&, const sa::QueryContext&,
                    const sa::InternalScore& s) const override {
      return s.a / (1.0 + s.a);
    }

   private:
    sa::SchemeProperties props_;
  };

  const Status registered = sa::SchemeRegistry::Global().Register(
      std::make_unique<HarmonicScheme>());
  ASSERT_TRUE(registered.ok() ||
              registered.code() == StatusCode::kAlreadyExists);

  Engine engine(&CorpusIndex());
  auto result = engine.Search("free software", "TestHarmonic");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Diagonal + associative ⊕: the optimizer picked eager aggregation.
  EXPECT_NE(result->applied_optimizations.find("eager agg."),
            std::string::npos)
      << result->applied_optimizations;

  // And it is score-consistent against its own canonical plan.
  SearchOptions canonical;
  canonical.use_canonical_reference = true;
  auto slow = engine.Search("free software", "TestHarmonic", canonical);
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(slow->results.size(), result->results.size());
  for (size_t i = 0; i < slow->results.size(); ++i) {
    EXPECT_EQ(slow->results[i].doc, result->results[i].doc);
    EXPECT_NEAR(slow->results[i].score, result->results[i].score, 1e-9);
  }
}

}  // namespace
}  // namespace graft::core
