// Definition 1 (score consistency), tested end to end: for every scoring
// scheme, every evaluation query (the paper's Q4-Q11 plus extras), and
// several optimizer configurations, the optimized streaming plan computes
// exactly the same answers and scores as the canonical score-isolated plan
// evaluated by the materializing reference oracle.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/canonical_plan.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "index/inverted_index.h"
#include "ma/reference_evaluator.h"
#include "mcalc/parser.h"
#include "text/corpus.h"

namespace graft::core {
namespace {

constexpr const char* kQueries[] = {
    "san francisco fault line",
    "dinosaur species list (image | picture | drawing | illustration)",
    "\"orange county convention center\" orlando",
    "\"san francisco\" \"fault line\"",
    "(windows emulator)WINDOW[50] (foss | \"free software\")",
    "(free wireless internet)PROXIMITY[10] service",
    "arizona ((fishing | hunting) (rules | regulations))WINDOW[20]",
    "\"rick warren\" (obama inauguration)PROXIMITY[4] "
    "(controversy invocation)PROXIMITY[15]",
    // Extras: single keyword, pure disjunction, negation, ORDER.
    "software",
    "fishing | hunting | dinosaur",
    "free software !windows",
    "(san francisco)ORDER",
};

constexpr const char* kSchemes[] = {
    "AnySum",  "AnyProd",    "SumBest",        "Lucene",
    "JoinNormalized", "MeanSum", "EventModel", "BestSumMinDist"};

const index::InvertedIndex& SharedIndex() {
  static const index::InvertedIndex& index = *[] {
    text::CorpusConfig config = text::WikipediaLikeConfig(700, /*seed=*/7);
    // Boost plant rates so small collections still produce matches for
    // the conjunctive queries.
    for (auto& bundle : config.bundles) {
      bundle.doc_fraction = std::min(1.0, bundle.doc_fraction * 40);
    }
    for (auto& phrase : config.phrases) {
      phrase.doc_fraction = std::min(1.0, phrase.doc_fraction * 20);
    }
    index::IndexBuilder builder;
    text::CorpusGenerator generator(config);
    generator.Generate(
        [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
          builder.AddDocument(tokens);
        });
    return new index::InvertedIndex(builder.Build());
  }();
  return index;
}

std::map<DocId, double> ToMap(const std::vector<ma::ScoredDoc>& results) {
  std::map<DocId, double> map;
  for (const ma::ScoredDoc& r : results) {
    map[r.doc] = r.score;
  }
  return map;
}

bool ScoresEqual(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-7 * scale;
}

// Oracle: canonical score-isolated plan on the reference evaluator.
std::map<DocId, double> Oracle(const mcalc::Query& query,
                               const sa::ScoringScheme& scheme) {
  auto build = BuildCanonicalPlan(query, scheme);
  EXPECT_TRUE(build.ok()) << build.status().ToString();
  EXPECT_TRUE(ma::ResolvePlan(build->plan.get(), SharedIndex()).ok());
  ma::ReferenceEvaluator evaluator(&SharedIndex(), &scheme,
                                   MakeQueryContext(query));
  auto table = evaluator.Evaluate(*build->plan);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  auto ranked = ma::ExtractRankedResults(*table);
  EXPECT_TRUE(ranked.ok());
  return ToMap(*ranked);
}

std::map<DocId, double> Optimized(const mcalc::Query& query,
                                  const sa::ScoringScheme& scheme,
                                  const OptimizerOptions& options) {
  Optimizer optimizer(&scheme, options);
  auto plan = optimizer.Optimize(query, SharedIndex());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  if (!plan.ok()) return {};
  exec::Executor executor(&SharedIndex(), &scheme, MakeQueryContext(query));
  auto results = executor.ExecuteRanked(*plan->plan);
  EXPECT_TRUE(results.ok()) << results.status().ToString()
                            << "\nplan:\n" << ma::PlanToString(*plan->plan);
  if (!results.ok()) return {};
  return ToMap(*results);
}

struct Case {
  std::string query;
  std::string scheme;
};

class ScoreConsistencyTest : public ::testing::TestWithParam<Case> {};

TEST_P(ScoreConsistencyTest, OptimizedEqualsCanonical) {
  const Case& test_case = GetParam();
  auto query_or = mcalc::ParseQuery(test_case.query);
  ASSERT_TRUE(query_or.ok()) << query_or.status().ToString();
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup(test_case.scheme);
  ASSERT_NE(scheme, nullptr);

  const std::map<DocId, double> oracle = Oracle(*query_or, *scheme);

  OptimizerOptions all_on;
  OptimizerOptions matching_only;
  matching_only.eager_aggregation = false;
  matching_only.eager_counting = false;
  matching_only.pre_counting = false;
  matching_only.alternate_elimination = false;
  OptimizerOptions count_no_precount = all_on;
  count_no_precount.eager_aggregation = false;
  count_no_precount.pre_counting = false;
  count_no_precount.alternate_elimination = false;

  int config = 0;
  for (const OptimizerOptions& options :
       {all_on, matching_only, count_no_precount}) {
    SCOPED_TRACE("optimizer config " + std::to_string(config++));
    const std::map<DocId, double> optimized =
        Optimized(*query_or, *scheme, options);
    ASSERT_EQ(optimized.size(), oracle.size())
        << "different answer sets for " << test_case.query << " under "
        << test_case.scheme;
    for (const auto& [doc, score] : oracle) {
      const auto it = optimized.find(doc);
      ASSERT_NE(it, optimized.end()) << "doc " << doc << " missing";
      EXPECT_TRUE(ScoresEqual(score, it->second))
          << "doc " << doc << ": canonical " << score << " vs optimized "
          << it->second << " (" << test_case.query << ", "
          << test_case.scheme << ")";
    }
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (const char* query : kQueries) {
    for (const char* scheme : kSchemes) {
      cases.push_back(Case{query, scheme});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = info.param.scheme + "_q" + std::to_string(info.index);
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllQueriesAllSchemes, ScoreConsistencyTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// Sanity: the evaluation queries actually match documents in the corpus
// (an empty result set would make consistency vacuous).
TEST(ScoreConsistencyCorpusTest, QueriesHaveMatches) {
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("AnySum");
  int with_matches = 0;
  for (const char* text : kQueries) {
    auto query = mcalc::ParseQuery(text);
    ASSERT_TRUE(query.ok());
    if (!Oracle(*query, *scheme).empty()) {
      ++with_matches;
    }
  }
  // The rare conjunctions (Q11-style) might miss on a small corpus, but
  // most queries must hit.
  EXPECT_GE(with_matches, 9);
}

}  // namespace
}  // namespace graft::core
