// End-to-end reproduction of the paper's Example 5: scoring Q3 over d_w
// with the MEANSUM scheme yields 0.660, with the intermediate column
// aggregates of the worked example.

#include <gtest/gtest.h>

#include "core/canonical_plan.h"
#include "core/engine.h"
#include "ma/reference_evaluator.h"
#include "sa/schemes.h"
#include "testutil/fixtures.h"

namespace graft {
namespace {

TEST(Example5Test, CanonicalPlanScores0660) {
  testutil::WineFixture fixture = testutil::MakeWineFixture();
  const mcalc::Query query = testutil::MakeQ3();
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("MeanSum");
  ASSERT_NE(scheme, nullptr);

  auto build = core::BuildCanonicalPlan(query, *scheme);
  ASSERT_TRUE(build.ok()) << build.status().ToString();
  ASSERT_TRUE(ma::ResolvePlan(build->plan.get(), fixture.index).ok());

  ma::ReferenceEvaluator evaluator(&fixture.index, scheme,
                                   core::MakeQueryContext(query),
                                   &fixture.overlay);
  auto table = evaluator.Evaluate(*build->plan);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  auto ranked = ma::ExtractRankedResults(*table);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 1u);
  EXPECT_EQ((*ranked)[0].doc, fixture.doc);
  EXPECT_NEAR((*ranked)[0].score, 0.660, 0.001);
}

TEST(Example5Test, ColumnAggregatesMatchThePaper) {
  // Column scores: p0 ⟨8.156,4⟩, p1 ⟨32.38,4⟩, p2 ⟨0.134,4⟩, p3 ⟨2.498,4⟩,
  // p4 ⟨21.92,4⟩; total ⟨65.086,4⟩.
  testutil::WineFixture fixture = testutil::MakeWineFixture();
  const mcalc::Query query = testutil::MakeQ3();
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("MeanSum");

  // Build the column-first canonical plan, but stop after the γ that
  // aggregates columns (peeling off the final two hosted-π layers).
  auto build = core::BuildCanonicalPlan(query, *scheme);
  ASSERT_TRUE(build.ok());
  // Plan shape: π_ω+Φ ( γ ( π_α ( matching ) ) ).
  const ma::PlanNode* group = build->plan->children[0].get();
  ASSERT_EQ(group->kind, ma::OpKind::kGroup);
  ma::PlanNodePtr group_clone = group->Clone();
  ASSERT_TRUE(ma::ResolvePlan(group_clone.get(), fixture.index).ok());

  ma::ReferenceEvaluator evaluator(&fixture.index, scheme,
                                   core::MakeQueryContext(query),
                                   &fixture.overlay);
  auto table = evaluator.Evaluate(*group_clone);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->rows.size(), 1u);

  const auto column_score = [&](mcalc::VarId var) {
    const int idx =
        table->schema.Find("s" + std::to_string(var));
    EXPECT_GE(idx, 0);
    return table->rows[0].values[idx].score;
  };
  EXPECT_NEAR(column_score(0).a, 8.156, 0.01);
  EXPECT_NEAR(column_score(1).a, 32.38, 0.02);
  EXPECT_NEAR(column_score(2).a, 0.134, 0.005);
  EXPECT_NEAR(column_score(3).a, 2.498, 0.005);
  EXPECT_NEAR(column_score(4).a, 21.92, 0.02);
  for (mcalc::VarId var = 0; var < 5; ++var) {
    EXPECT_EQ(column_score(var).b, 4.0) << "count of column " << var;
  }
}

TEST(Example5Test, OptimizedEngineAgreesWithThePaper) {
  testutil::WineFixture fixture = testutil::MakeWineFixture();
  core::Engine engine(&fixture.index, &fixture.overlay);
  const mcalc::Query query = testutil::MakeQ3();
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("MeanSum");
  auto result = engine.SearchQuery(query, *scheme);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->results.size(), 1u);
  EXPECT_NEAR(result->results[0].score, 0.660, 0.001);
}

}  // namespace
}  // namespace graft
