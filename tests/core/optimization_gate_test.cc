// Table 1 (the gate logic) and Table 3 (its product with the Table 2
// declarations), reproduced and pinned to the paper.

#include "core/optimization_gate.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "sa/scoring_scheme.h"

namespace graft::core {
namespace {

using Optimization::kAlternateElimination;
using Optimization::kEagerAggregation;
using Optimization::kEagerCounting;
using Optimization::kForwardScanJoin;
using Optimization::kJoinReordering;
using Optimization::kPreCounting;
using Optimization::kRankJoin;
using Optimization::kRankUnion;
using Optimization::kSelectionPushing;
using Optimization::kSortElimination;
using Optimization::kZigZagJoin;

bool Valid(Optimization opt, const std::string& scheme_name) {
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup(scheme_name);
  EXPECT_NE(scheme, nullptr) << scheme_name;
  return IsOptimizationValid(opt, scheme->properties());
}

TEST(Table1Test, ClassicalOptimizationsUnrestricted) {
  // "There are no restrictions on classical optimizations" (§5.2.4) —
  // a consequence of decoupling scoring from match computation.
  sa::SchemeProperties hostile;  // everything false / worst case
  hostile.direction = sa::Direction::kRowFirst;
  hostile.positional = true;
  EXPECT_TRUE(IsOptimizationValid(kJoinReordering, hostile));
  EXPECT_TRUE(IsOptimizationValid(kSelectionPushing, hostile));
  EXPECT_TRUE(IsOptimizationValid(kZigZagJoin, hostile));
  EXPECT_TRUE(IsOptimizationValid(kEagerCounting, hostile));
  // But the restricted ones are all off for the hostile scheme.
  EXPECT_FALSE(IsOptimizationValid(kSortElimination, hostile));
  EXPECT_FALSE(IsOptimizationValid(kForwardScanJoin, hostile));
  EXPECT_FALSE(IsOptimizationValid(kAlternateElimination, hostile));
  EXPECT_FALSE(IsOptimizationValid(kEagerAggregation, hostile));
  EXPECT_FALSE(IsOptimizationValid(kPreCounting, hostile));
  EXPECT_FALSE(IsOptimizationValid(kRankJoin, hostile));
  EXPECT_FALSE(IsOptimizationValid(kRankUnion, hostile));
}

TEST(Table1Test, RequirementStringsMatchThePaper) {
  EXPECT_EQ(OperatorRequirement(kSortElimination), "⊕ commutes");
  EXPECT_EQ(OperatorRequirement(kForwardScanJoin), "constant");
  EXPECT_EQ(OperatorRequirement(kAlternateElimination), "constant");
  EXPECT_EQ(OperatorRequirement(kEagerAggregation), "⊕ fully associative");
  EXPECT_EQ(DirectionRequirement(kEagerAggregation), "not row-first");
  EXPECT_EQ(OperatorRequirement(kPreCounting), "non-positional");
  EXPECT_EQ(OperatorRequirement(kRankJoin), "⊘ monotonic increasing");
  EXPECT_EQ(DirectionRequirement(kRankJoin), "diagonal");
  EXPECT_EQ(OperatorRequirement(kRankUnion), "⊚ monotonic increasing");
  EXPECT_EQ(DirectionRequirement(kRankUnion), "diagonal");
  EXPECT_EQ(OperatorRequirement(kJoinReordering), "");
  EXPECT_EQ(OperatorRequirement(kEagerCounting), "");
}

// The paper's Table 3, cell for cell. Columns: AnySum, SumBest, Lucene,
// JoinNormalized, MeanSum, EventModel, BestSumMinDist.
TEST(Table3Test, DerivedTableMatchesThePaper) {
  const std::vector<std::string> schemes = {
      "AnySum",  "SumBest",    "Lucene",        "JoinNormalized",
      "MeanSum", "EventModel", "BestSumMinDist"};

  const std::map<Optimization, std::set<std::string>> expected = {
      {kSortElimination,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
        "EventModel", "BestSumMinDist"}},
      {kJoinReordering,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
        "EventModel", "BestSumMinDist"}},
      {kSelectionPushing,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
        "EventModel", "BestSumMinDist"}},
      {kZigZagJoin,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
        "EventModel", "BestSumMinDist"}},
      {kForwardScanJoin, {"AnySum"}},
      {kAlternateElimination, {"AnySum"}},
      {kEagerAggregation,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum"}},
      {kEagerCounting,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
        "EventModel", "BestSumMinDist"}},
      {kPreCounting,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
        "EventModel"}},
      {kRankJoin, {"AnySum", "Lucene", "JoinNormalized", "MeanSum"}},
      {kRankUnion, {"AnySum", "Lucene", "JoinNormalized", "MeanSum"}},
  };

  for (const auto& [opt, valid_schemes] : expected) {
    for (const std::string& scheme : schemes) {
      EXPECT_EQ(Valid(opt, scheme), valid_schemes.count(scheme) != 0)
          << OptimizationName(opt) << " × " << scheme;
    }
  }
}

TEST(Table3Test, ValidOptimizationsListing) {
  const sa::ScoringScheme* any_sum =
      sa::SchemeRegistry::Global().Lookup("AnySum");
  const auto valid = ValidOptimizations(any_sum->properties());
  // AnySum admits every optimization in the catalog.
  EXPECT_EQ(valid.size(), std::size(kAllOptimizations));

  const sa::ScoringScheme* bsmd =
      sa::SchemeRegistry::Global().Lookup("BestSumMinDist");
  const auto bsmd_valid = ValidOptimizations(bsmd->properties());
  // BestSumMinDist: only τ elim + the four unrestricted classical ones.
  EXPECT_EQ(bsmd_valid.size(), 5u);
}

TEST(Table1Test, NamesAreStable) {
  std::set<std::string> names;
  for (const Optimization opt : kAllOptimizations) {
    names.insert(OptimizationName(opt));
  }
  EXPECT_EQ(names.size(), std::size(kAllOptimizations));
}

}  // namespace
}  // namespace graft::core
