// Section 2's motivating example, reproduced: under the state-of-the-art
// *encapsulated* scoring model (score functions inside the relational
// operators, as in Botev et al. [7]), pushing a selection through a join
// changes document scores — while GRAFT's score-isolated model gives the
// same score under every optimizer configuration.

#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "mcalc/parser.h"
#include "testutil/fixtures.h"

namespace graft::core {
namespace {

// A miniature encapsulated evaluator for Q1 ("emulator" ∧ "free"
// immediately-before "software") over d_w, with the join-normalized score
// function SJ(m_L, m_R) = m_L.s/|M_R| + m_R.s/|M_L| from [7]. Each input
// tuple starts with score 1.
struct ScoredMatch {
  Offset e, f, s;  // emulator, free, software positions
  double score;
};

// Plan 1: join emulator × (free ⋈ software), THEN select DISTANCE=1.
double EncapsulatedPlan1() {
  // J1: free(3) × software(4,32,180,189): |M_L|=1, |M_R|=4.
  std::vector<ScoredMatch> j1;
  const Offset software[] = {4, 32, 180, 189};
  for (const Offset s : software) {
    j1.push_back(ScoredMatch{0, 3, s, 1.0 / 4 + 1.0 / 1});
  }
  // J2: emulator(64) joins all 4: emulator's score 1 distributed over 4.
  std::vector<ScoredMatch> j2;
  for (const ScoredMatch& m : j1) {
    j2.push_back(ScoredMatch{64, m.f, m.s, 1.0 / 4 + m.score / 1});
  }
  // σ: keep software - free == 1, then aggregate (sum of match scores).
  double doc_score = 0;
  for (const ScoredMatch& m : j2) {
    if (m.s - m.f == 1) doc_score += m.score;
  }
  return doc_score;
}

// Plan 2: selection pushed below J2 (textbook rewrite).
double EncapsulatedPlan2() {
  std::vector<ScoredMatch> j1;
  const Offset software[] = {4, 32, 180, 189};
  for (const Offset s : software) {
    j1.push_back(ScoredMatch{0, 3, s, 1.0 / 4 + 1.0 / 1});
  }
  // σ first: only (3, 4) survives.
  std::vector<ScoredMatch> selected;
  for (const ScoredMatch& m : j1) {
    if (m.s - m.f == 1) selected.push_back(m);
  }
  // J2: emulator's score 1 now distributes over |M_R| = 1.
  double doc_score = 0;
  for (const ScoredMatch& m : selected) {
    doc_score += 1.0 / 1 + m.score / 1;
  }
  return doc_score;
}

TEST(Section2Test, EncapsulatedScoringIsNotScoreConsistent) {
  const double plan1 = EncapsulatedPlan1();
  const double plan2 = EncapsulatedPlan2();
  // The paper: in Plan 1 only a quarter of the emulator tuple's score value
  // reaches the document; in Plan 2 the whole value does.
  EXPECT_NE(plan1, plan2);
  EXPECT_GT(plan2, plan1);
  EXPECT_NEAR(plan2 - plan1, 1.0 - 0.25, 1e-9);
}

TEST(Section2Test, GraftIsScoreConsistentUnderSelectionPushing) {
  testutil::WineFixture fixture = testutil::MakeWineFixture();
  auto query = mcalc::ParseQuery("emulator \"free software\"");
  ASSERT_TRUE(query.ok());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("JoinNormalized");
  ASSERT_NE(scheme, nullptr);

  const auto run = [&](bool push) {
    OptimizerOptions options;
    options.push_selections = push;
    Optimizer optimizer(scheme, options);
    auto plan = optimizer.Optimize(*query, fixture.index);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    exec::Executor executor(&fixture.index, scheme,
                            MakeQueryContext(*query), &fixture.overlay);
    auto results = executor.ExecuteRanked(*plan->plan);
    EXPECT_TRUE(results.ok());
    EXPECT_EQ(results->size(), 1u);
    return results->empty() ? 0.0 : (*results)[0].score;
  };

  const double unpushed = run(false);
  const double pushed = run(true);
  EXPECT_GT(unpushed, 0.0);
  EXPECT_NEAR(unpushed, pushed, 1e-9 * std::max(1.0, std::fabs(unpushed)));
}

}  // namespace
}  // namespace graft::core
