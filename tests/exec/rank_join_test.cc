// Top-k rank-join / rank-union: gating, exactness against the full
// engine's ranking, and early termination.

#include "exec/rank_join.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "mcalc/parser.h"
#include "text/corpus.h"

namespace graft::exec {
namespace {

const index::InvertedIndex& CorpusIndex() {
  static const index::InvertedIndex& index = *[] {
    text::CorpusConfig config = text::WikipediaLikeConfig(3000, /*seed=*/13);
    index::IndexBuilder builder;
    text::CorpusGenerator generator(config);
    generator.Generate(
        [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
          builder.AddDocument(tokens);
        });
    return new index::InvertedIndex(builder.Build());
  }();
  return index;
}

TEST(RankJoinGateTest, SupportsFollowsTable1) {
  auto conjunctive = mcalc::ParseQuery("free software");
  auto disjunctive = mcalc::ParseQuery("free | software");
  auto with_predicate = mcalc::ParseQuery("\"free software\"");
  ASSERT_TRUE(conjunctive.ok());
  ASSERT_TRUE(disjunctive.ok());
  ASSERT_TRUE(with_predicate.ok());

  const auto& registry = sa::SchemeRegistry::Global();
  // Diagonal + monotone ⊘ + idempotent ⊕ (the implementation's threshold
  // bound requirement): rank-join eligible.
  for (const char* name : {"AnySum", "Lucene"}) {
    EXPECT_TRUE(TopKRankEngine::Supports(*conjunctive,
                                         *registry.Lookup(name)))
        << name;
  }
  // Column-first / row-first schemes: not eligible. JoinNormalized and
  // MeanSum pass the Table-1 gate but their ⊕ accumulates multiplicities,
  // which the TA-style bounds cannot cover.
  for (const char* name : {"SumBest", "EventModel", "BestSumMinDist",
                           "JoinNormalized", "MeanSum"}) {
    EXPECT_FALSE(TopKRankEngine::Supports(*conjunctive,
                                          *registry.Lookup(name)))
        << name;
  }
  // Positional predicates always disqualify.
  EXPECT_FALSE(TopKRankEngine::Supports(*with_predicate,
                                        *registry.Lookup("AnySum")));
  // Disjunction: rank-union gate.
  EXPECT_TRUE(TopKRankEngine::Supports(*disjunctive,
                                       *registry.Lookup("AnySum")));
  EXPECT_FALSE(TopKRankEngine::Supports(*disjunctive,
                                        *registry.Lookup("SumBest")));
}

struct RankCase {
  std::string query;
  std::string scheme;
};

class RankExactnessTest : public ::testing::TestWithParam<RankCase> {};

TEST_P(RankExactnessTest, TopKEqualsFullRankingPrefix) {
  const RankCase& test_case = GetParam();
  auto query = mcalc::ParseQuery(test_case.query);
  ASSERT_TRUE(query.ok());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup(test_case.scheme);
  ASSERT_NE(scheme, nullptr);

  // Full ranking from the regular optimized engine.
  core::Engine engine(&CorpusIndex());
  core::SearchOptions options;
  options.allow_rank_processing = false;
  auto full = engine.SearchQuery(*query, *scheme, options);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  TopKRankEngine rank_engine(&CorpusIndex(), scheme);
  constexpr size_t kK = 10;
  auto top = rank_engine.TopK(*query, kK);
  ASSERT_TRUE(top.ok()) << top.status().ToString();

  const size_t expected = std::min(kK, full->results.size());
  ASSERT_EQ(top->size(), expected);
  for (size_t i = 0; i < expected; ++i) {
    EXPECT_EQ((*top)[i].doc, full->results[i].doc) << "rank " << i;
    EXPECT_NEAR((*top)[i].score, full->results[i].score,
                1e-7 * std::max(1.0, std::fabs(full->results[i].score)))
        << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EligibleSchemes, RankExactnessTest,
    ::testing::Values(RankCase{"free software", "AnySum"},
                      RankCase{"free software", "Lucene"},
                      RankCase{"free software windows", "Lucene"},
                      RankCase{"san francisco", "AnySum"},
                      RankCase{"free | software | service", "AnySum"},
                      RankCase{"fishing | hunting | dinosaur", "Lucene"},
                      RankCase{"free | windows", "Lucene"},
                      RankCase{"service", "AnySum"}));

TEST(RankJoinTest, EarlyTerminationOnSelectiveQueries) {
  auto query = mcalc::ParseQuery("free software");
  ASSERT_TRUE(query.ok());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("Lucene");
  TopKRankEngine rank_engine(&CorpusIndex(), scheme);
  auto top = rank_engine.TopK(*query, 5);
  ASSERT_TRUE(top.ok());
  const RankStats& stats = rank_engine.stats();
  // The threshold must fire before every candidate is examined.
  EXPECT_GT(stats.total_candidates, 0u);
  EXPECT_LT(stats.candidates_scored, stats.total_candidates);
}

TEST(RankJoinTest, RejectsIneligibleScheme) {
  auto query = mcalc::ParseQuery("free software");
  ASSERT_TRUE(query.ok());
  for (const char* name : {"BestSumMinDist", "MeanSum"}) {
    const sa::ScoringScheme* scheme =
        sa::SchemeRegistry::Global().Lookup(name);
    TopKRankEngine rank_engine(&CorpusIndex(), scheme);
    EXPECT_EQ(rank_engine.TopK(*query, 5).status().code(),
              StatusCode::kFailedPrecondition)
        << name;
  }
}

TEST(RankJoinTest, AbsentTermEmptyConjunction) {
  auto query = mcalc::ParseQuery("free nosuchtermever");
  ASSERT_TRUE(query.ok());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("AnySum");
  TopKRankEngine rank_engine(&CorpusIndex(), scheme);
  auto top = rank_engine.TopK(*query, 5);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(top->empty());
}

}  // namespace
}  // namespace graft::exec
