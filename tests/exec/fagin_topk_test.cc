// The Fagin middleware operators (TA / NRA): gating, exactness against the
// full engine's ranking, early termination, and the access-model counters
// that distinguish them (TA pays random accesses, NRA never does).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/engine.h"
#include "exec/nra_topk.h"
#include "exec/threshold_topk.h"
#include "mcalc/parser.h"
#include "text/corpus.h"

namespace graft::exec {
namespace {

const index::InvertedIndex& CorpusIndex() {
  static const index::InvertedIndex& index = *[] {
    text::CorpusConfig config = text::WikipediaLikeConfig(3000, /*seed=*/13);
    index::IndexBuilder builder;
    text::CorpusGenerator generator(config);
    generator.Generate(
        [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
          builder.AddDocument(tokens);
        });
    return new index::InvertedIndex(builder.Build());
  }();
  return index;
}

TEST(FaginGateTest, BothOperatorsFollowTheRankGatePlusIdempotence) {
  auto conjunctive = mcalc::ParseQuery("free software");
  auto disjunctive = mcalc::ParseQuery("free | software");
  auto with_predicate = mcalc::ParseQuery("\"free software\"");
  ASSERT_TRUE(conjunctive.ok());
  ASSERT_TRUE(disjunctive.ok());
  ASSERT_TRUE(with_predicate.ok());

  const auto& registry = sa::SchemeRegistry::Global();
  // Same licensed set as TopKRankEngine: diagonal, monotone ⊘/⊚,
  // idempotent ⊕ — and all three of these schemes are bounded, so NRA's
  // extra requirement does not shrink the set.
  for (const char* name : {"AnySum", "AnyProd", "Lucene"}) {
    EXPECT_TRUE(ThresholdTopK::Supports(*conjunctive, *registry.Lookup(name)))
        << name;
    EXPECT_TRUE(NraTopK::Supports(*conjunctive, *registry.Lookup(name)))
        << name;
    EXPECT_TRUE(ThresholdTopK::Supports(*disjunctive, *registry.Lookup(name)))
        << name;
    EXPECT_TRUE(NraTopK::Supports(*disjunctive, *registry.Lookup(name)))
        << name;
  }
  for (const char* name : {"SumBest", "EventModel", "BestSumMinDist",
                           "JoinNormalized", "MeanSum"}) {
    EXPECT_FALSE(
        ThresholdTopK::Supports(*conjunctive, *registry.Lookup(name)))
        << name;
    EXPECT_FALSE(NraTopK::Supports(*conjunctive, *registry.Lookup(name)))
        << name;
  }
  // Positional predicates disqualify the pure-keyword shape.
  EXPECT_FALSE(
      ThresholdTopK::Supports(*with_predicate, *registry.Lookup("AnySum")));
  EXPECT_FALSE(
      NraTopK::Supports(*with_predicate, *registry.Lookup("AnySum")));

  // The verdicts are EXPLAIN text, not just booleans.
  EXPECT_NE(ThresholdTopK::GateVerdict(*conjunctive,
                                       *registry.Lookup("MeanSum"))
                .find("⊕ not idempotent"),
            std::string::npos);
  EXPECT_NE(NraTopK::GateVerdict(*with_predicate, *registry.Lookup("AnySum"))
                .find("not a pure keyword"),
            std::string::npos);
}

TEST(FaginGateTest, BlockedRunReturnsFailedPrecondition) {
  auto query = mcalc::ParseQuery("free software");
  ASSERT_TRUE(query.ok());
  const sa::ScoringScheme* meansum =
      sa::SchemeRegistry::Global().Lookup("MeanSum");
  ThresholdTopK ta(&CorpusIndex(), meansum);
  EXPECT_FALSE(ta.TopK(*query, 10).ok());
  NraTopK nra(&CorpusIndex(), meansum);
  EXPECT_FALSE(nra.TopK(*query, 10).ok());
}

struct FaginCase {
  std::string query;
  std::string scheme;
};

class FaginExactnessTest : public ::testing::TestWithParam<FaginCase> {};

// Both operators must reproduce the optimized engine's full ranking prefix
// bit-identically: same docs, same score bits (the operators evaluate the
// exact α/⊘/⊚/ω pipeline, not an approximation of it).
TEST_P(FaginExactnessTest, TopKEqualsFullRankingPrefixBitIdentically) {
  const FaginCase& test_case = GetParam();
  auto query = mcalc::ParseQuery(test_case.query);
  ASSERT_TRUE(query.ok());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup(test_case.scheme);
  ASSERT_NE(scheme, nullptr);

  core::Engine engine(&CorpusIndex());
  core::SearchOptions options;
  options.allow_rank_processing = false;
  auto full = engine.SearchQuery(*query, *scheme, options);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  constexpr size_t kK = 10;
  const size_t expected = std::min(kK, full->results.size());

  ThresholdTopK ta(&CorpusIndex(), scheme);
  auto ta_top = ta.TopK(*query, kK);
  ASSERT_TRUE(ta_top.ok()) << ta_top.status().ToString();
  ASSERT_EQ(ta_top->size(), expected);

  NraTopK nra(&CorpusIndex(), scheme);
  auto nra_top = nra.TopK(*query, kK);
  ASSERT_TRUE(nra_top.ok()) << nra_top.status().ToString();
  ASSERT_EQ(nra_top->size(), expected);

  for (size_t i = 0; i < expected; ++i) {
    EXPECT_EQ((*ta_top)[i].doc, full->results[i].doc) << "TA rank " << i;
    EXPECT_EQ((*ta_top)[i].score, full->results[i].score) << "TA rank " << i;
    EXPECT_EQ((*nra_top)[i].doc, full->results[i].doc) << "NRA rank " << i;
    EXPECT_EQ((*nra_top)[i].score, full->results[i].score)
        << "NRA rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EligibleSchemes, FaginExactnessTest,
    ::testing::Values(FaginCase{"free software", "AnySum"},
                      FaginCase{"free software", "AnyProd"},
                      FaginCase{"free software", "Lucene"},
                      FaginCase{"free software windows", "Lucene"},
                      FaginCase{"san francisco", "AnySum"},
                      FaginCase{"free | software | service", "AnySum"},
                      FaginCase{"fishing | hunting | dinosaur", "Lucene"},
                      FaginCase{"free | windows", "AnyProd"},
                      FaginCase{"service", "AnySum"},
                      FaginCase{"neverseenword free", "Lucene"},
                      FaginCase{"neverseenword | free", "Lucene"}));

TEST(FaginAccessModelTest, TaPaysRandomAccessesNraCountsBounds) {
  auto query = mcalc::ParseQuery("free software");
  ASSERT_TRUE(query.ok());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("Lucene");

  ThresholdTopK ta(&CorpusIndex(), scheme);
  auto ta_top = ta.TopK(*query, 5);
  ASSERT_TRUE(ta_top.ok());
  EXPECT_GT(ta.stats().sorted_accesses, 0u);
  EXPECT_GT(ta.stats().random_accesses, 0u);
  EXPECT_GT(ta.stats().threshold_checks, 0u);
  // The threshold stop must beat full exhaustion on a selective top-5.
  EXPECT_GT(ta.stats().entries_pruned(), 0u);
  EXPECT_EQ(ta.stats().stopping_depth, ta.stats().sorted_accesses);

  NraTopK nra(&CorpusIndex(), scheme);
  auto nra_top = nra.TopK(*query, 5);
  ASSERT_TRUE(nra_top.ok());
  EXPECT_GT(nra.stats().sorted_accesses, 0u);
  EXPECT_GT(nra.stats().candidates_tracked, 0u);
  EXPECT_GT(nra.stats().rounds, 0u);

  // NRA's early stop needs the candidate bounds to converge before the
  // streams drain, which depends on score skew: additive schemes over
  // this corpus's flat tf distribution run to exhaustion, while AnyProd's
  // multiplicative bounds collapse quickly. Assert the stop on AnyProd,
  // and only stream accounting (never negative pruning) on Lucene.
  EXPECT_LE(nra.stats().sorted_accesses, nra.stats().total_entries);
  const sa::ScoringScheme* product =
      sa::SchemeRegistry::Global().Lookup("AnyProd");
  NraTopK nra_prod(&CorpusIndex(), product);
  auto prod_top = nra_prod.TopK(*query, 5);
  ASSERT_TRUE(prod_top.ok());
  EXPECT_GT(nra_prod.stats().entries_pruned(), 0u)
      << "NRA never stopped early even under a product scheme";
}

TEST(FaginEdgeCaseTest, ZeroKAndOversizedK) {
  auto query = mcalc::ParseQuery("emulator foss");
  ASSERT_TRUE(query.ok());
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup("AnySum");

  ThresholdTopK ta(&CorpusIndex(), scheme);
  auto empty = ta.TopK(*query, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  core::Engine engine(&CorpusIndex());
  core::SearchOptions options;
  options.allow_rank_processing = false;
  auto full = engine.SearchQuery(*query, *scheme, options);
  ASSERT_TRUE(full.ok());

  NraTopK nra(&CorpusIndex(), scheme);
  auto all = nra.TopK(*query, full->results.size() + 100);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), full->results.size());
}

}  // namespace
}  // namespace graft::exec
