// Differential tests: the streaming executor against the materializing
// reference evaluator, operator by operator and end to end.

#include "exec/executor.h"

#include <gtest/gtest.h>

#include "core/canonical_plan.h"
#include "ma/reference_evaluator.h"
#include "mcalc/parser.h"
#include "text/corpus.h"
#include "text/tokenizer.h"

namespace graft::exec {
namespace {

const index::InvertedIndex& SmallCorpusIndex() {
  static const index::InvertedIndex& index = *[] {
    text::CorpusConfig config = text::WikipediaLikeConfig(400, /*seed=*/31);
    for (auto& bundle : config.bundles) {
      bundle.doc_fraction = std::min(1.0, bundle.doc_fraction * 50);
    }
    for (auto& phrase : config.phrases) {
      phrase.doc_fraction = std::min(1.0, phrase.doc_fraction * 25);
    }
    index::IndexBuilder builder;
    text::CorpusGenerator generator(config);
    generator.Generate(
        [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
          builder.AddDocument(tokens);
        });
    return new index::InvertedIndex(builder.Build());
  }();
  return index;
}

class MatchingSubplanStreamTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(MatchingSubplanStreamTest, StreamEqualsReference) {
  auto query = mcalc::ParseQuery(GetParam());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto plan_or = core::BuildMatchingSubplan(*query);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  ma::PlanNodePtr plan = std::move(plan_or).value();
  ASSERT_TRUE(ma::ResolvePlan(plan.get(), SmallCorpusIndex()).ok());

  ma::ReferenceEvaluator reference(&SmallCorpusIndex(), nullptr,
                                   sa::QueryContext{});
  auto expected = reference.Evaluate(*plan);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  Executor executor(&SmallCorpusIndex(), nullptr, sa::QueryContext{});
  auto actual = executor.ExecuteTable(*plan);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();

  EXPECT_TRUE(ma::TablesEqual(*expected, *actual))
      << "reference:\n" << expected->ToString() << "\nstream:\n"
      << actual->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    PaperQueries, MatchingSubplanStreamTest,
    ::testing::Values(
        "san francisco fault line",
        "dinosaur species list (image | picture | drawing | illustration)",
        "\"orange county convention center\" orlando",
        "\"san francisco\" \"fault line\"",
        "(windows emulator)WINDOW[50] (foss | \"free software\")",
        "(free wireless internet)PROXIMITY[10] service",
        "arizona ((fishing | hunting) (rules | regulations))WINDOW[20]",
        "software", "fishing | hunting", "free software !windows",
        "(san francisco)ORDER"));

TEST(ExecutorTest, CountScansAgree) {
  // Pre-count and eager-count leaves produce identical (doc, count) tables;
  // only the memory they touch differs.
  const TermId term = SmallCorpusIndex().LookupTerm("free");
  ASSERT_NE(term, kInvalidTerm);

  ma::PlanNodePtr pre = ma::MakePreCountAtom("free", "c0");
  ASSERT_TRUE(ma::ResolvePlan(pre.get(), SmallCorpusIndex()).ok());
  ma::PlanNodePtr eager = ma::MakeGroup(
      ma::MakeProject(ma::MakeAtom("free", 0), {}), [] {
        ma::GroupSpec spec;
        spec.count_output = "c0";
        spec.count_keyword = "free";
        return spec;
      }());
  ASSERT_TRUE(ma::ResolvePlan(eager.get(), SmallCorpusIndex()).ok());

  Executor executor(&SmallCorpusIndex(), nullptr, sa::QueryContext{});
  auto pre_table = executor.ExecuteTable(*pre);
  ASSERT_TRUE(pre_table.ok());
  const ExecStats pre_stats = executor.stats();

  executor.ResetStats();
  auto eager_table = executor.ExecuteTable(*eager);
  ASSERT_TRUE(eager_table.ok());
  const ExecStats eager_stats = executor.stats();

  EXPECT_TRUE(ma::TablesEqual(*pre_table, *eager_table));
  // The physical distinction of Section 5.2.3: CA never touches positions.
  EXPECT_EQ(pre_stats.positions_scanned, 0u);
  EXPECT_GT(eager_stats.positions_scanned, 0u);
  EXPECT_EQ(pre_stats.count_entries_scanned,
            SmallCorpusIndex().DocFreq(term));
  EXPECT_EQ(eager_stats.positions_scanned,
            SmallCorpusIndex().CollectionFreq(term));
}

TEST(ExecutorTest, AltElimSkipsRowConstruction) {
  // δ_A over a union of frequent keywords: the streaming executor must
  // touch far fewer positions than the full enumeration.
  auto query = mcalc::ParseQuery("free | software | service | line");
  ASSERT_TRUE(query.ok());
  auto plan_or = core::BuildMatchingSubplanNoSort(*query);
  ASSERT_TRUE(plan_or.ok());

  ma::PlanNodePtr full = std::move(plan_or).value();
  ma::PlanNodePtr limited = ma::MakeAltElim(full->Clone());
  ASSERT_TRUE(ma::ResolvePlan(full.get(), SmallCorpusIndex()).ok());
  ASSERT_TRUE(ma::ResolvePlan(limited.get(), SmallCorpusIndex()).ok());

  Executor executor(&SmallCorpusIndex(), nullptr, sa::QueryContext{});
  auto full_table = executor.ExecuteTable(*full);
  ASSERT_TRUE(full_table.ok());
  const uint64_t full_positions = executor.stats().positions_scanned;

  executor.ResetStats();
  auto limited_table = executor.ExecuteTable(*limited);
  ASSERT_TRUE(limited_table.ok());
  const uint64_t limited_positions = executor.stats().positions_scanned;

  // One row per doc, and each row is the first row of the doc.
  DocId last = kInvalidDoc;
  size_t expected_docs = 0;
  for (const ma::Tuple& row : full_table->rows) {
    if (row.doc != last) {
      last = row.doc;
      ++expected_docs;
    }
  }
  EXPECT_EQ(limited_table->rows.size(), expected_docs);
  EXPECT_LT(limited_positions, full_positions);
}

TEST(ExecutorTest, RankedExecutionRejectsNonScorePlans) {
  ma::PlanNodePtr atom = ma::MakeAtom("free", 0);
  ASSERT_TRUE(ma::ResolvePlan(atom.get(), SmallCorpusIndex()).ok());
  Executor executor(&SmallCorpusIndex(), nullptr, sa::QueryContext{});
  EXPECT_FALSE(executor.ExecuteRanked(*atom).ok());
}

TEST(ExecutorTest, UnknownKeywordYieldsEmptyStream) {
  index::IndexBuilder builder;
  builder.AddDocumentStrings(text::Tokenize("just a tiny document"));
  index::InvertedIndex index = builder.Build();
  ma::PlanNodePtr plan = ma::MakeJoin(ma::MakeAtom("tiny", 0),
                                      ma::MakeAtom("nonexistent", 1));
  ASSERT_TRUE(ma::ResolvePlan(plan.get(), index).ok());
  Executor executor(&index, nullptr, sa::QueryContext{});
  auto table = executor.ExecuteTable(*plan);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->rows.empty());
}

}  // namespace
}  // namespace graft::exec
