// CRC32C (Castagnoli) correctness: known-answer vectors from RFC 3720
// §B.4 pin the polynomial and bit order, and the streaming property pins
// Crc32cExtend — the index file format depends on both never changing.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32c.h"

namespace graft::common {
namespace {

TEST(Crc32cTest, Rfc3720KnownAnswers) {
  // The classic check value for CRC-32C.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);

  // RFC 3720 §B.4 test vectors.
  uint8_t zeros[32];
  std::memset(zeros, 0x00, sizeof(zeros));
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);

  uint8_t ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62A8AB43u);

  uint8_t ascending[32];
  for (size_t i = 0; i < sizeof(ascending); ++i) {
    ascending[i] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(Crc32c(ascending, sizeof(ascending)), 0x46DD794Eu);

  uint8_t descending[32];
  for (size_t i = 0; i < sizeof(descending); ++i) {
    descending[i] = static_cast<uint8_t>(31 - i);
  }
  EXPECT_EQ(Crc32c(descending, sizeof(descending)), 0x113FDB5Cu);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32cExtend(0, nullptr, 0), 0u);
}

TEST(Crc32cTest, StreamingEqualsOneShot) {
  // Extending in arbitrary chunk sizes must equal the one-shot CRC; the
  // index writer checksums sections scalar-by-scalar, so this property is
  // exactly what its correctness rests on.
  std::string data;
  for (int i = 0; i < 1000; ++i) {
    data += static_cast<char>((i * 131 + 89) & 0xFF);
  }
  const uint32_t oneshot = Crc32c(data.data(), data.size());
  for (const size_t chunk : {1u, 3u, 7u, 8u, 64u, 999u}) {
    uint32_t crc = 0;
    for (size_t pos = 0; pos < data.size(); pos += chunk) {
      const size_t n = std::min<size_t>(chunk, data.size() - pos);
      crc = Crc32cExtend(crc, data.data() + pos, n);
    }
    EXPECT_EQ(crc, oneshot) << "chunk size " << chunk;
  }
}

TEST(Crc32cTest, SingleBitFlipsAlwaysDetected) {
  // Every single-bit flip in a small buffer must change the CRC — this is
  // the guarantee the bit-flip corruption tests in index_io lean on.
  std::string data = "GRAFT index section payload under test";
  const uint32_t baseline = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(flipped.data(), flipped.size()), baseline)
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace graft::common
