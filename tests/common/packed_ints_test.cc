// Property tests for the fixed-width bit-packing codec under the v5
// posting blocks: for EVERY width in [0, 32], pack ∘ unpack must be the
// identity on values that fit the width, at every run length a posting
// block can have (1..128) — the codec is beneath every v5 score, so a
// single wrong bit here breaks GRAFT's score-consistency guarantee
// end-to-end.

#include "common/packed_ints.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace graft::common {
namespace {

// Largest value representable at `bits` (0 at width 0).
uint32_t MaxAt(unsigned bits) {
  if (bits == 0) return 0;
  if (bits >= 32) return ~uint32_t{0};
  return (uint32_t{1} << bits) - 1;
}

TEST(PackedIntsTest, PackedBytesAndBitsForAgree) {
  EXPECT_EQ(PackedBytes(128, 0), 0u);
  EXPECT_EQ(PackedBytes(128, 1), 16u);
  EXPECT_EQ(PackedBytes(128, 32), 512u);
  EXPECT_EQ(PackedBytes(3, 5), 2u);  // 15 bits -> 2 bytes
  EXPECT_EQ(BitsFor(0), 0u);
  EXPECT_EQ(BitsFor(1), 1u);
  EXPECT_EQ(BitsFor(2), 2u);
  EXPECT_EQ(BitsFor(255), 8u);
  EXPECT_EQ(BitsFor(256), 9u);
  EXPECT_EQ(BitsFor(~uint32_t{0}), 32u);
  // BitsFor's result always round-trips its own argument.
  for (const uint32_t v : {0u, 1u, 7u, 100u, 65535u, 1u << 30, ~0u}) {
    EXPECT_LE(v, MaxAt(BitsFor(v))) << v;
  }
}

TEST(PackedIntsTest, RoundTripEveryWidthRandomValues) {
  Rng rng(0x5eed);
  for (unsigned bits = 0; bits <= 32; ++bits) {
    const uint32_t max = MaxAt(bits);
    for (const size_t n : {size_t{1}, size_t{2}, size_t{7}, size_t{63},
                           size_t{127}, size_t{128}}) {
      std::vector<uint32_t> values(n);
      for (uint32_t& v : values) {
        v = bits == 0 ? 0
            : bits >= 32
                ? static_cast<uint32_t>(rng.NextUint64())
                : static_cast<uint32_t>(rng.NextUint64()) & max;
      }
      // Boundary values exercise the accumulator refill the hardest.
      values[0] = max;
      if (n > 1) values[n - 1] = max;

      std::vector<uint8_t> packed(PackedBytes(n, bits) + 8, 0xAB);
      PackInts(values.data(), n, bits, packed.data());
      // The pack wrote exactly PackedBytes — the sentinel tail is intact.
      for (size_t i = PackedBytes(n, bits); i < packed.size(); ++i) {
        ASSERT_EQ(packed[i], 0xAB) << "bits=" << bits << " n=" << n
                                   << " overwrote byte " << i;
      }

      std::vector<uint32_t> decoded(n, 0xDEADBEEF);
      UnpackInts(packed.data(), n, bits, decoded.data());
      ASSERT_EQ(decoded, values) << "bits=" << bits << " n=" << n;
    }
  }
}

TEST(PackedIntsTest, WidthZeroStoresNothingDecodesZeros) {
  const uint32_t zeros[4] = {0, 0, 0, 0};
  uint8_t out[1] = {0x77};
  PackInts(zeros, 4, 0, out);
  EXPECT_EQ(out[0], 0x77);  // nothing written
  uint32_t decoded[4] = {1, 2, 3, 4};
  UnpackInts(out, 4, 0, decoded);
  for (const uint32_t v : decoded) EXPECT_EQ(v, 0u);
}

TEST(PackedIntsTest, KnownBitLayoutLittleEndian) {
  // Two 12-bit values 0xABC, 0x123: the bit stream is value0 in bits
  // [0,12), value1 in bits [12,24) -> bytes BC 3A 12.
  const uint32_t values[2] = {0xABC, 0x123};
  uint8_t packed[3] = {};
  PackInts(values, 2, 12, packed);
  EXPECT_EQ(packed[0], 0xBC);
  EXPECT_EQ(packed[1], 0x3A);
  EXPECT_EQ(packed[2], 0x12);
  uint32_t decoded[2] = {};
  UnpackInts(packed, 2, 12, decoded);
  EXPECT_EQ(decoded[0], 0xABCu);
  EXPECT_EQ(decoded[1], 0x123u);
}

TEST(PackedIntsTest, AdversarialPatternsFullBlock) {
  // Alternating extremes at every width over a full 128-entry block:
  // max,0,max,0,... stresses carry-over across the 64-bit accumulator at
  // widths that don't divide 64.
  for (unsigned bits = 1; bits <= 32; ++bits) {
    const uint32_t max = MaxAt(bits);
    std::vector<uint32_t> values(128);
    for (size_t i = 0; i < values.size(); ++i) {
      values[i] = (i % 2 == 0) ? max : 0;
    }
    std::vector<uint8_t> packed(PackedBytes(values.size(), bits), 0);
    PackInts(values.data(), values.size(), bits, packed.data());
    std::vector<uint32_t> decoded(values.size());
    UnpackInts(packed.data(), decoded.size(), bits, decoded.data());
    ASSERT_EQ(decoded, values) << "bits=" << bits;
  }
}

}  // namespace
}  // namespace graft::common
