#include "common/status.h"

#include <gtest/gtest.h>

namespace graft {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return Status::InvalidArgument("odd");
  }
  return x / 2;
}

Status UseMacros(int x, int* out) {
  GRAFT_ASSIGN_OR_RETURN(const int half, Half(x));
  GRAFT_RETURN_IF_ERROR(Status::Ok());
  *out = half;
  return Status::Ok();
}

TEST(StatusOrTest, MacrosPropagateErrors) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  const Status s = UseMacros(9, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace graft
