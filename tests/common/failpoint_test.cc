// Failpoint registry semantics: registration, spec parsing, arming,
// trigger/hit accounting, and each injection action. The whole file is
// compiled only when failpoints are (GRAFT_FAILPOINTS=ON, the default) —
// with the option OFF there is nothing to test and nothing linked.

#ifdef GRAFT_FAILPOINTS_ENABLED

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/failpoint.h"

namespace graft::common {
namespace {

// Failpoints register during static initialization, exactly as production
// sites in index_io.cc do.
GRAFT_DEFINE_FAILPOINT(g_fp_alpha, "test.failpoint.alpha");
GRAFT_DEFINE_FAILPOINT(g_fp_beta, "test.failpoint.beta");

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().DeactivateAll(); }

  FailpointRegistry& registry() { return FailpointRegistry::Global(); }
};

TEST_F(FailpointTest, StaticDefinitionRegisters) {
  EXPECT_TRUE(registry().IsRegistered("test.failpoint.alpha"));
  EXPECT_TRUE(registry().IsRegistered("test.failpoint.beta"));
  EXPECT_FALSE(registry().IsRegistered("test.failpoint.nonexistent"));

  const std::vector<std::string> names = registry().RegisteredNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.failpoint.alpha"),
            names.end());
  // The production save-path sites must be compiled in too — the chaos
  // harness iterates them.
  EXPECT_TRUE(registry().IsRegistered("index_io.save.before_rename"));
}

TEST_F(FailpointTest, InactiveCheckIsOkAndCountsNothing) {
  EXPECT_TRUE(g_fp_alpha.Check().ok());
  EXPECT_FALSE(registry().IsActive("test.failpoint.alpha"));
  EXPECT_EQ(registry().HitCount("test.failpoint.alpha"), 0u);
}

TEST_F(FailpointTest, ActivateInjectsConfiguredError) {
  FailpointConfig config;
  config.action = FailpointAction::kError;
  config.error_code = StatusCode::kFailedPrecondition;
  config.message = "boom";
  ASSERT_TRUE(registry().Activate("test.failpoint.alpha", config).ok());
  EXPECT_TRUE(registry().IsActive("test.failpoint.alpha"));

  const Status injected = g_fp_alpha.Check();
  EXPECT_EQ(injected.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(injected.message(), "boom");
  // Other sites are unaffected.
  EXPECT_TRUE(g_fp_beta.Check().ok());

  registry().Deactivate("test.failpoint.alpha");
  EXPECT_TRUE(g_fp_alpha.Check().ok());
}

TEST_F(FailpointTest, ActivateUnknownNameIsNotFound) {
  FailpointConfig config;
  EXPECT_EQ(registry().Activate("test.failpoint.nonexistent", config).code(),
            StatusCode::kNotFound);
}

TEST_F(FailpointTest, SpecGrammar) {
  // Plain error defaults to kInternal with a message naming the site.
  ASSERT_TRUE(registry().ActivateSpec("test.failpoint.alpha=error").ok());
  Status injected = g_fp_alpha.Check();
  EXPECT_EQ(injected.code(), StatusCode::kInternal);
  EXPECT_NE(injected.message().find("test.failpoint.alpha"),
            std::string::npos);

  // error(CodeName) selects the status code by its StatusCodeName.
  ASSERT_TRUE(
      registry().ActivateSpec("test.failpoint.alpha=error(IOError)").ok());
  EXPECT_EQ(g_fp_alpha.Check().code(), StatusCode::kIOError);
  ASSERT_TRUE(
      registry().ActivateSpec("test.failpoint.alpha=error(DataLoss)").ok());
  EXPECT_EQ(g_fp_alpha.Check().code(), StatusCode::kDataLoss);

  // off deactivates.
  ASSERT_TRUE(registry().ActivateSpec("test.failpoint.alpha=off").ok());
  EXPECT_FALSE(registry().IsActive("test.failpoint.alpha"));
  EXPECT_TRUE(g_fp_alpha.Check().ok());

  // Malformed specs are InvalidArgument, unknown names NotFound.
  EXPECT_EQ(registry().ActivateSpec("no-equals-sign").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry().ActivateSpec("test.failpoint.alpha=explode").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry().ActivateSpec("test.failpoint.alpha=error(Bogus)")
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry().ActivateSpec("test.failpoint.alpha=delay(abc)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry().ActivateSpec("test.failpoint.ghost=error").code(),
            StatusCode::kNotFound);
}

TEST_F(FailpointTest, TriggerOnNthHit) {
  // "@3": survive two evaluations, fire from the third on.
  ASSERT_TRUE(
      registry().ActivateSpec("test.failpoint.alpha=error(IOError)@3").ok());
  EXPECT_TRUE(g_fp_alpha.Check().ok());
  EXPECT_TRUE(g_fp_alpha.Check().ok());
  EXPECT_EQ(g_fp_alpha.Check().code(), StatusCode::kIOError);
  EXPECT_EQ(g_fp_alpha.Check().code(), StatusCode::kIOError);
  EXPECT_EQ(registry().HitCount("test.failpoint.alpha"), 4u);
}

TEST_F(FailpointTest, MaxFiresLimitsInjections) {
  FailpointConfig config;
  config.action = FailpointAction::kError;
  config.error_code = StatusCode::kIOError;
  config.max_fires = 2;
  ASSERT_TRUE(registry().Activate("test.failpoint.alpha", config).ok());
  EXPECT_FALSE(g_fp_alpha.Check().ok());
  EXPECT_FALSE(g_fp_alpha.Check().ok());
  // Budget exhausted: passes through again.
  EXPECT_TRUE(g_fp_alpha.Check().ok());
  EXPECT_TRUE(g_fp_alpha.Check().ok());
}

TEST_F(FailpointTest, DelayActionSleepsThenProceeds) {
  ASSERT_TRUE(registry().ActivateSpec("test.failpoint.alpha=delay(30)").ok());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(g_fp_alpha.Check().ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 25);
}

TEST_F(FailpointTest, TruncateWriteChopsTheTail) {
  const std::string path = ::testing::TempDir() + "/failpoint_truncate.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char payload[16] = "0123456789abcde";
  ASSERT_EQ(std::fwrite(payload, 1, sizeof(payload), f), sizeof(payload));

  ASSERT_TRUE(
      registry().ActivateSpec("test.failpoint.alpha=truncate(6)").ok());
  const Status injected = g_fp_alpha.CheckWrite(f);
  EXPECT_EQ(injected.code(), StatusCode::kIOError);
  std::fclose(f);

  std::FILE* in = std::fopen(path.c_str(), "rb");
  ASSERT_NE(in, nullptr);
  ASSERT_EQ(std::fseek(in, 0, SEEK_END), 0);
  EXPECT_EQ(std::ftell(in), static_cast<long>(sizeof(payload) - 6));
  std::fclose(in);
  std::remove(path.c_str());
}

TEST_F(FailpointTest, TruncateOnNonWriteSiteIsInternal) {
  ASSERT_TRUE(
      registry().ActivateSpec("test.failpoint.alpha=truncate(1)").ok());
  EXPECT_EQ(g_fp_alpha.Check().code(), StatusCode::kInternal);
}

TEST_F(FailpointTest, ActivateFromEnvAppliesEverySpec) {
  ASSERT_EQ(::setenv("GRAFT_FAILPOINTS_TEST_ENV",
                     "test.failpoint.alpha=error(Unimplemented);"
                     "test.failpoint.beta=delay(1)",
                     /*overwrite=*/1),
            0);
  ASSERT_TRUE(
      registry().ActivateFromEnv("GRAFT_FAILPOINTS_TEST_ENV").ok());
  EXPECT_EQ(g_fp_alpha.Check().code(), StatusCode::kUnimplemented);
  EXPECT_TRUE(registry().IsActive("test.failpoint.beta"));

  // A bad spec in the variable fails fast with InvalidArgument.
  ASSERT_EQ(::setenv("GRAFT_FAILPOINTS_TEST_ENV", "garbage", 1), 0);
  EXPECT_EQ(registry().ActivateFromEnv("GRAFT_FAILPOINTS_TEST_ENV").code(),
            StatusCode::kInvalidArgument);

  // Unset or empty is the production default: Ok, nothing armed.
  ASSERT_EQ(::unsetenv("GRAFT_FAILPOINTS_TEST_ENV"), 0);
  EXPECT_TRUE(registry().ActivateFromEnv("GRAFT_FAILPOINTS_TEST_ENV").ok());
}

TEST_F(FailpointTest, AbortActionKillsTheProcess) {
  // Fork so the _Exit(134) takes down the child, not the test runner —
  // the same technique the index_io chaos harness uses at scale.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FailpointConfig config;
    config.action = FailpointAction::kAbort;
    if (!FailpointRegistry::Global()
             .Activate("test.failpoint.alpha", config)
             .ok()) {
      std::_Exit(99);
    }
    (void)g_fp_alpha.Check();  // must not return
    std::_Exit(98);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 134);
}

}  // namespace
}  // namespace graft::common

#endif  // GRAFT_FAILPOINTS_ENABLED
