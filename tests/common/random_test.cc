#include "common/random.h"

#include <gtest/gtest.h>

#include <map>

namespace graft {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfSamplerTest, RankZeroDominates) {
  ZipfSampler zipf(1000, 1.1, 42);
  std::map<uint64_t, int> histogram;
  for (int i = 0; i < 20000; ++i) {
    ++histogram[zipf.Next()];
  }
  // Rank 0 must be the most frequent, and much more frequent than rank 50.
  EXPECT_GT(histogram[0], histogram[50] * 3);
  // All samples in range.
  for (const auto& [rank, count] : histogram) {
    EXPECT_LT(rank, 1000u);
    (void)count;
  }
}

TEST(ZipfSamplerTest, Deterministic) {
  ZipfSampler a(100, 1.0, 9);
  ZipfSampler b(100, 1.0, 9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

}  // namespace
}  // namespace graft
