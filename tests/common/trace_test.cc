// Unit tests for the query tracer: span nesting, per-thread depth
// bookkeeping, the RAII wrapper's null/no-op and idempotence contracts, and
// the global ring buffer's wraparound + enable/disable gating. The
// cross-thread test runs under TSan in CI (the segmented engine closes
// spans from pool workers, so QueryTrace must be clean there).

#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace graft::common {
namespace {

TEST(MonotonicNanosTest, NeverDecreases) {
  const uint64_t a = MonotonicNanos();
  const uint64_t b = MonotonicNanos();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 0u);
}

TEST(QueryTraceTest, RecordsNestedDepths) {
  QueryTrace trace;
  const size_t outer = trace.BeginSpan("outer");
  const size_t inner = trace.BeginSpan("inner");
  trace.AddEvent("event", "note");
  trace.EndSpan(inner);
  trace.EndSpan(outer, "done");

  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[0].detail, "done");  // EndSpan detail replaces
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "event");
  EXPECT_EQ(spans[2].depth, 2u);  // inside both open spans
  EXPECT_EQ(spans[2].detail, "note");
  EXPECT_EQ(spans[2].start_ns, spans[2].end_ns);  // point event
  EXPECT_GE(spans[0].DurationNanos(), spans[1].DurationNanos());
}

TEST(QueryTraceTest, SiblingSpansShareDepth) {
  QueryTrace trace;
  const size_t first = trace.BeginSpan("first");
  trace.EndSpan(first);
  const size_t second = trace.BeginSpan("second");
  trace.EndSpan(second);
  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].depth, 0u);
}

TEST(QueryTraceTest, CrossThreadSpansAreSiblingsNotChildren) {
  QueryTrace trace;
  const size_t root = trace.BeginSpan("root");
  // Pool workers open spans concurrently; depth is tracked per opening
  // thread, so worker spans must come out at depth 0 (their own thread has
  // no enclosing span), never nested under each other.
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([&trace, i] {
      ScopedSpan span(&trace, "segment " + std::to_string(i));
      trace.AddEvent("work");
    });
  }
  for (std::thread& worker : workers) worker.join();
  trace.EndSpan(root);

  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 9u);  // root + 4 x (segment + event)
  int segments = 0;
  for (const TraceSpan& span : spans) {
    if (span.name.rfind("segment ", 0) == 0) {
      EXPECT_EQ(span.depth, 0u) << span.name;
      ++segments;
    }
    if (span.name == "work") {
      EXPECT_EQ(span.depth, 1u);  // under its own thread's segment span
    }
  }
  EXPECT_EQ(segments, 4);
}

TEST(QueryTraceTest, ToTextIndentsByDepth) {
  QueryTrace trace;
  const size_t outer = trace.BeginSpan("outer");
  const size_t inner = trace.BeginSpan("inner", "detail");
  trace.EndSpan(inner);
  trace.EndSpan(outer);
  const std::string text = trace.ToText();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("inner"), std::string::npos);
  EXPECT_NE(text.find("(detail)"), std::string::npos);
  // The nested span is indented further than its parent.
  const size_t outer_pos = text.find("outer");
  const size_t inner_pos = text.find("inner");
  const size_t outer_line = text.rfind('\n', outer_pos);
  const size_t inner_line = text.rfind('\n', inner_pos);
  const size_t outer_col =
      outer_pos - (outer_line == std::string::npos ? 0 : outer_line);
  const size_t inner_col =
      inner_pos - (inner_line == std::string::npos ? 0 : inner_line);
  EXPECT_GT(inner_col, outer_col);
}

TEST(ScopedSpanTest, NullTraceIsNoOp) {
  ScopedSpan span(nullptr, "nothing");
  span.End("ignored");  // must not crash
}

TEST(ScopedSpanTest, EndIsIdempotent) {
  QueryTrace trace;
  {
    ScopedSpan span(&trace, "once");
    span.End("first");
    span.End("second");  // ignored: already ended
  }                      // destructor End also ignored
  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].detail, "first");
}

class TracerRingTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::Global().Disable(); }
};

TEST_F(TracerRingTest, DisabledByDefaultAndRecordIsNoOp) {
  Tracer& tracer = Tracer::Global();
  ASSERT_FALSE(tracer.enabled());
  QueryTrace trace;
  trace.AddEvent("ignored");
  tracer.Record("q", trace);
  EXPECT_EQ(tracer.Snapshot().size(), 0u);
  EXPECT_EQ(tracer.records_accepted(), 0u);
}

TEST_F(TracerRingTest, RingKeepsNewestOnWraparound) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(/*capacity=*/4);
  ASSERT_TRUE(tracer.enabled());
  EXPECT_EQ(tracer.capacity(), 4u);

  for (int i = 0; i < 10; ++i) {
    QueryTrace trace;
    const size_t span = trace.BeginSpan("query");
    trace.EndSpan(span);
    tracer.Record("query " + std::to_string(i), trace);
  }
  EXPECT_EQ(tracer.records_accepted(), 10u);

  const std::vector<TraceRecord> records = tracer.Snapshot();
  ASSERT_EQ(records.size(), 4u);  // capacity, not accepted count
  // Oldest first, and only the newest 4 survive (sequences 6..9).
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sequence, 6u + i);
    EXPECT_EQ(records[i].label, "query " + std::to_string(6 + i));
    EXPECT_EQ(records[i].spans.size(), 1u);
  }
}

TEST_F(TracerRingTest, EnableClearsAndDisableStopsRecording) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(2);
  QueryTrace trace;
  tracer.Record("a", trace);
  ASSERT_EQ(tracer.Snapshot().size(), 1u);

  tracer.Enable(2);  // re-enable resets the ring + counters
  EXPECT_EQ(tracer.Snapshot().size(), 0u);
  EXPECT_EQ(tracer.records_accepted(), 0u);

  tracer.Record("b", trace);
  ASSERT_EQ(tracer.Snapshot().size(), 1u);
  tracer.Disable();
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.Snapshot().size(), 0u);
  tracer.Record("c", trace);  // dropped while disabled
  EXPECT_EQ(tracer.Snapshot().size(), 0u);
}

TEST_F(TracerRingTest, ConcurrentRecordsAllAccepted) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(/*capacity=*/256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryTrace trace;
        ScopedSpan span(&trace, "q");
        span.End();
        tracer.Record("concurrent", trace);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracer.records_accepted(),
            static_cast<uint64_t>(kThreads * kPerThread));
  const std::vector<TraceRecord> records = tracer.Snapshot();
  ASSERT_EQ(records.size(), static_cast<size_t>(kThreads * kPerThread));
  // Sequences are unique and oldest-first.
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sequence, records[i - 1].sequence + 1);
  }
}

}  // namespace
}  // namespace graft::common
