#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

#include "common/status.h"

namespace graft::common {
namespace {

TEST(FutureTest, SetThenTake) {
  Future<int> future;
  EXPECT_FALSE(future.Ready());
  future.Set(42);
  EXPECT_TRUE(future.Ready());
  EXPECT_EQ(future.Take(), 42);
}

TEST(FutureTest, TakeBlocksUntilSetFromAnotherThread) {
  Future<std::string> future;
  std::thread setter([future]() mutable { future.Set("hello"); });
  EXPECT_EQ(future.Take(), "hello");
  setter.join();
}

TEST(LatchTest, WaitReturnsAtZero) {
  Latch latch(3);
  std::thread counters([&] {
    latch.CountDown();
    latch.CountDown();
    latch.CountDown();
  });
  latch.Wait();  // must not deadlock
  counters.join();
}

TEST(ThreadPoolTest, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  Latch done(1);
  std::atomic<int> value{0};
  ASSERT_TRUE(pool.Submit([&] {
    value.store(7);
    done.CountDown();
  }));
  done.Wait();
  EXPECT_EQ(value.load(), 7);
}

TEST(ThreadPoolTest, SubmitFutureCarriesStatusOr) {
  ThreadPool pool(2);
  Future<StatusOr<int>> ok = pool.SubmitFuture([]() -> StatusOr<int> {
    return 123;
  });
  Future<StatusOr<int>> bad = pool.SubmitFuture([]() -> StatusOr<int> {
    return Status::InvalidArgument("nope");
  });
  StatusOr<int> ok_value = ok.Take();
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(*ok_value, 123);
  EXPECT_FALSE(bad.Take().ok());
}

TEST(ThreadPoolTest, ManyConcurrentSubmissions) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  Latch done(kTasks);
  std::atomic<int> sum{0};
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.Submit([&sum, &done, i] {
      sum.fetch_add(i, std::memory_order_relaxed);
      done.CountDown();
    }));
  }
  done.Wait();
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

TEST(ThreadPoolTest, DestructionWithIdleWorkersDoesNotHang) {
  ThreadPool pool(4);
  // Destructor joins idle workers; reaching the end of scope is the test.
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, 0, kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, InlineWithNullPool) {
  std::vector<int> hits(17, 0);
  ParallelFor(nullptr, 0, hits.size(), [&](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 17);
}

TEST(ParallelForTest, SerialWhenMaxWorkersIsOne) {
  ThreadPool pool(3);
  // max_workers == 1 → calling thread only; writes need no synchronization.
  std::vector<int> hits(64, 0);
  ParallelFor(&pool, 1, hits.size(), [&](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ParallelForTest, ZeroIterations) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, MoreWorkersThanIterations) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(&pool, 0, hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(hits[0].load() + hits[1].load() + hits[2].load(), 3);
}

TEST(ParallelForTest, CallerObservesAllWritesAfterReturn) {
  ThreadPool pool(4);
  constexpr size_t kN = 256;
  std::vector<uint64_t> out(kN, 0);  // plain writes, distinct slots
  ParallelFor(&pool, 0, kN, [&](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

// --- server-shaped load (the src/server handler pool usage) ---

TEST(ThreadPoolTest, TasksCanEnqueueFurtherTasks) {
  // A connection handler may hand follow-up work back to its own pool
  // (e.g. accept thread -> handler). Recursive Submit from inside a
  // worker must neither deadlock nor drop work.
  ThreadPool pool(2);
  constexpr int kRoots = 16;
  constexpr int kDepth = 5;
  Latch done(kRoots * kDepth);
  std::atomic<int> executed{0};
  std::function<void(int)> chain = [&](int remaining) {
    executed.fetch_add(1, std::memory_order_relaxed);
    done.CountDown();
    if (remaining > 1) {
      ASSERT_TRUE(pool.Submit([&chain, remaining] { chain(remaining - 1); }));
    }
  };
  for (int i = 0; i < kRoots; ++i) {
    ASSERT_TRUE(pool.Submit([&chain] { chain(kDepth); }));
  }
  done.Wait();
  EXPECT_EQ(executed.load(), kRoots * kDepth);
}

TEST(ThreadPoolTest, RecursiveSubmitFromEveryWorkerSimultaneously) {
  // All workers re-enqueue at once: the queue lock must not be held while
  // tasks run, or this deadlocks.
  ThreadPool pool(4);
  constexpr int kFanOut = 64;
  Latch done(kFanOut + 4);
  for (int w = 0; w < 4; ++w) {
    ASSERT_TRUE(pool.Submit([&] {
      for (int i = 0; i < kFanOut / 4; ++i) {
        ASSERT_TRUE(pool.Submit([&done] { done.CountDown(); }));
      }
      done.CountDown();
    }));
  }
  done.Wait();
}

TEST(ThreadPoolTest, ShutdownWithNonEmptyQueueDropsButNeverCrashes) {
  // Destroying the pool while the queue is deep (server shutdown with a
  // backlog): running tasks finish, queued tasks are dropped, and every
  // started task's side effects are visible — no use-after-free, no
  // torn state (the TSan CI job runs this).
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  {
    ThreadPool pool(2);
    Latch first_running(2);
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(pool.Submit([&] {
        started.fetch_add(1, std::memory_order_relaxed);
        first_running.CountDown();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        finished.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // Pile a deep backlog behind the two running tasks.
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(pool.Submit([&] {
        started.fetch_add(1, std::memory_order_relaxed);
        finished.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    first_running.Wait();
    // Pool destructor runs here with a non-empty queue.
  }
  EXPECT_EQ(started.load(), finished.load());
  EXPECT_GE(started.load(), 2);
}

TEST(ParallelForTest, ConcurrentCallersShareOnePool) {
  // An engine serving concurrent queries runs ParallelFor from multiple
  // (external) threads against one shared pool; helper tasks never block,
  // so callers cannot starve each other.
  ThreadPool pool(4);
  constexpr int kQueries = 8;
  std::atomic<int> total{0};
  std::vector<std::thread> queries;
  queries.reserve(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    queries.emplace_back([&] {
      ParallelFor(&pool, 2, 50,
                  [&](size_t) { total.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  for (std::thread& t : queries) {
    t.join();
  }
  EXPECT_EQ(total.load(), kQueries * 50);
}

}  // namespace
}  // namespace graft::common
