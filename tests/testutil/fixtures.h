// Shared test fixtures.
//
// WineDoc reproduces the paper's running example: document d_w (the
// abstract of the Wikipedia article Wine_(software)), 207 words long, with
// the keyword positions of Figure 1:
//
//   'free'     @ 3            (1 occurrence,   #Docs = 332335)
//   'software' @ 4,32,180,189 (4 occurrences,  #Docs = 71735)
//   'windows'  @ 27,42,144,187(4 occurrences,  #Docs = 43949)
//   'emulator' @ 64           (1 occurrence,   #Docs = 2768)
//   'foss'     @ 179          (1 occurrence,   #Docs = 2044)
//
// plus a StatsOverlay injecting the collection-level statistics the paper
// uses (collectionSize = 4,638,535 and the per-term document frequencies),
// so Example 5's MEANSUM walkthrough reproduces digit-for-digit.

#ifndef GRAFT_TESTS_TESTUTIL_FIXTURES_H_
#define GRAFT_TESTS_TESTUTIL_FIXTURES_H_

#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "index/stats.h"
#include "mcalc/ast.h"

namespace graft::testutil {

struct WineFixture {
  index::InvertedIndex index;
  index::StatsOverlay overlay;
  DocId doc = 0;
};

inline WineFixture MakeWineFixture() {
  constexpr uint32_t kLength = 207;
  std::vector<std::string> tokens(kLength);
  for (uint32_t i = 0; i < kLength; ++i) {
    tokens[i] = "filler" + std::to_string(i);
  }
  tokens[3] = "free";
  tokens[4] = "software";
  tokens[32] = "software";
  tokens[180] = "software";
  tokens[189] = "software";
  tokens[27] = "windows";
  tokens[42] = "windows";
  tokens[144] = "windows";
  tokens[187] = "windows";
  tokens[64] = "emulator";
  tokens[179] = "foss";

  WineFixture fixture;
  index::IndexBuilder builder;
  fixture.doc = builder.AddDocumentStrings(tokens);
  fixture.index = builder.Build();

  fixture.overlay.SetCollectionSize(4638535);
  fixture.overlay.SetDocFreq("emulator", 2768);
  fixture.overlay.SetDocFreq("free", 332335);
  fixture.overlay.SetDocFreq("foss", 2044);
  fixture.overlay.SetDocFreq("software", 71735);
  fixture.overlay.SetDocFreq("windows", 43949);
  return fixture;
}

// The paper's Q3 with its exact variable numbering:
//   p0='windows' p1='emulator' p2='free' p3='software' p4='foss'
//   (Ψ0 ∨ Ψ1) ∧ HAS(p0) ∧ HAS(p1) ∧ WINDOW(p0,p1,50)
//   Ψ0 = EMPTY(p2) ∧ EMPTY(p3) ∧ HAS(p4,'foss')
//   Ψ1 = HAS(p2,'free') ∧ HAS(p3,'software') ∧ DISTANCE(p2,p3,1) ∧ EMPTY(p4)
// Built as: Constrained(And(windows, emulator), WINDOW[50]) ∧
//           Or(foss-branch, Constrained(And(free, software), DISTANCE 1))
// with branch order chosen so the scoring plan matches Example 4:
//   Φ = (p0 ⊘ p1) ⊘ ((p2 ⊘ p3) ⊚ p4).
inline mcalc::Query MakeQ3() {
  using namespace graft::mcalc;
  Query query;
  query.variables = {
      {0, "windows"}, {1, "emulator"}, {2, "free"},
      {3, "software"}, {4, "foss"},
  };

  std::vector<NodePtr> window_kids;
  window_kids.push_back(MakeKeyword("windows", 0));
  window_kids.push_back(MakeKeyword("emulator", 1));
  NodePtr window_group = MakeConstrained(
      MakeAnd(std::move(window_kids)),
      {PredicateCall{"WINDOW", {0, 1}, {50}}});

  std::vector<NodePtr> phrase_kids;
  phrase_kids.push_back(MakeKeyword("free", 2));
  phrase_kids.push_back(MakeKeyword("software", 3));
  NodePtr phrase = MakeConstrained(
      MakeAnd(std::move(phrase_kids)),
      {PredicateCall{"DISTANCE", {2, 3}, {1}}});

  std::vector<NodePtr> branches;
  branches.push_back(std::move(phrase));        // (p2 ⊘ p3)
  branches.push_back(MakeKeyword("foss", 4));   // ⊚ p4
  NodePtr disjunction = MakeOr(std::move(branches));

  std::vector<NodePtr> top;
  top.push_back(std::move(window_group));
  top.push_back(std::move(disjunction));
  query.root = MakeAnd(std::move(top));
  return query;
}

}  // namespace graft::testutil

#endif  // GRAFT_TESTS_TESTUTIL_FIXTURES_H_
