// ShardClient retry discipline against live stub replicas: retries with
// budget-bounded backoff, round-robin failover, ejection after consecutive
// failures, probe-driven readmission, and the 4xx-is-an-answer rule.

#include "router/shard_client.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "server/http.h"

namespace graft::router {
namespace {

// A one-thread HTTP stub: answers every request via a handler returning
// (status_code, body). Stop() is clean and re-entrant.
class StubServer {
 public:
  using Handler = std::function<std::pair<int, std::string>(
      const server::HttpRequest&)>;

  explicit StubServer(Handler handler) : handler_(std::move(handler)) {}
  ~StubServer() { Stop(); }

  Status Start() {
    GRAFT_RETURN_IF_ERROR(listener_.Bind(0));
    running_ = true;
    thread_ = std::thread([this] { Loop(); });
    return Status::Ok();
  }

  void Stop() {
    if (!running_) return;
    stopping_.store(true);
    listener_.Interrupt();
    thread_.join();
    listener_.Close();
    running_ = false;
  }

  uint16_t port() const { return listener_.port(); }
  uint64_t requests() const { return requests_.load(); }

 private:
  void Loop() {
    while (!stopping_.load()) {
      StatusOr<int> accepted = listener_.Accept(2000);
      if (!accepted.ok()) {
        if (stopping_.load()) return;
        continue;
      }
      const int fd = *accepted;
      StatusOr<server::HttpRequest> request = server::ReadRequest(fd);
      if (request.ok()) {
        requests_.fetch_add(1);
        const auto [code, body] = handler_(*request);
        (void)server::WriteResponse(fd, code, "application/json", body);
      }
      ::close(fd);
    }
  }

  Handler handler_;
  server::TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_{0};
  bool running_ = false;
};

ShardClientOptions FastOptions() {
  ShardClientOptions options;
  options.max_attempts = 3;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 4;
  options.eject_after = 2;
  options.io_timeout_ms = 2000;
  return options;
}

TEST(ShardClientTest, ReturnsHealthyReply) {
  StubServer server([](const server::HttpRequest& request) {
    EXPECT_EQ(request.path, "/ping");
    return std::make_pair(200, std::string("{\"pong\":true}"));
  });
  ASSERT_TRUE(server.Start().ok());
  ShardClient client(0, {server.port()}, FastOptions(), 1);
  size_t attempts = 0;
  uint16_t port = 0;
  auto reply = client.Get("/ping", 5000, &attempts, &port);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status_code, 200);
  EXPECT_EQ(reply->body, "{\"pong\":true}");
  EXPECT_EQ(attempts, 1u);
  EXPECT_EQ(port, server.port());
}

TEST(ShardClientTest, RetriesTransportErrorsUpToMaxAttempts) {
  // Bind-then-close: the port is (very likely) unbound, so every connect
  // fails fast.
  uint16_t dead_port;
  {
    server::TcpListener listener;
    ASSERT_TRUE(listener.Bind(0).ok());
    dead_port = listener.port();
    listener.Close();
  }
  ShardClient client(0, {dead_port}, FastOptions(), 1);
  size_t attempts = 0;
  auto reply = client.Get("/ping", 5000, &attempts);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(attempts, 3u);
  EXPECT_EQ(client.counters().retries.load(), 2u);
  // eject_after=2 consecutive failures ejected the lone replica.
  EXPECT_TRUE(client.replica_ejected(0));
  EXPECT_EQ(client.healthy_count(), 0u);
  EXPECT_FALSE(client.any_healthy());
}

TEST(ShardClientTest, FailsOverToSecondReplica) {
  uint16_t dead_port;
  {
    server::TcpListener listener;
    ASSERT_TRUE(listener.Bind(0).ok());
    dead_port = listener.port();
    listener.Close();
  }
  StubServer healthy([](const server::HttpRequest&) {
    return std::make_pair(200, std::string("ok"));
  });
  ASSERT_TRUE(healthy.Start().ok());
  ShardClient client(0, {dead_port, healthy.port()}, FastOptions(), 1);
  // Two logical gets: whatever rotation order each starts on, both must
  // land on the healthy replica within the retry budget.
  for (int i = 0; i < 2; ++i) {
    uint16_t port = 0;
    auto reply = client.Get("/ping", 5000, nullptr, &port);
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->status_code, 200);
    EXPECT_EQ(port, healthy.port());
  }
}

TEST(ShardClientTest, FourHundredsAreAnswersNotRetries) {
  std::atomic<int> hits{0};
  StubServer server([&hits](const server::HttpRequest&) {
    hits.fetch_add(1);
    return std::make_pair(409, std::string("{\"error\":\"conflict\"}"));
  });
  ASSERT_TRUE(server.Start().ok());
  ShardClient client(0, {server.port()}, FastOptions(), 1);
  size_t attempts = 0;
  auto reply = client.Get("/ping", 5000, &attempts);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status_code, 409);
  EXPECT_EQ(attempts, 1u);
  EXPECT_EQ(hits.load(), 1);
  // A 4xx is a healthy transport: no failure recorded, replica stays in.
  EXPECT_FALSE(client.replica_ejected(0));
}

TEST(ShardClientTest, FiveHundredsAreRetriedAndCanEject) {
  StubServer server([](const server::HttpRequest&) {
    return std::make_pair(503, std::string("overloaded"));
  });
  ASSERT_TRUE(server.Start().ok());
  ShardClient client(0, {server.port()}, FastOptions(), 1);
  auto reply = client.Get("/ping", 5000);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status_code, 503);   // last reply surfaces to the caller
  EXPECT_EQ(server.requests(), 3u);     // all attempts burned
  EXPECT_TRUE(client.replica_ejected(0));
  EXPECT_GE(client.counters().ejections.load(), 1u);
}

TEST(ShardClientTest, ProbeReadmitsRecoveredReplica) {
  std::atomic<bool> healthy{false};
  StubServer server([&healthy](const server::HttpRequest& request) {
    if (!healthy.load()) return std::make_pair(500, std::string("down"));
    if (request.path == "/healthz") {
      return std::make_pair(200, std::string("{\"status\":\"ok\"}"));
    }
    return std::make_pair(200, std::string("ok"));
  });
  ASSERT_TRUE(server.Start().ok());
  ShardClient client(0, {server.port()}, FastOptions(), 1);
  (void)client.Get("/ping", 5000);  // burns attempts, ejects the replica
  ASSERT_TRUE(client.replica_ejected(0));

  client.ProbeEjected();  // still down: stays ejected
  EXPECT_TRUE(client.replica_ejected(0));

  healthy.store(true);
  client.ProbeEjected();
  EXPECT_FALSE(client.replica_ejected(0));
  EXPECT_EQ(client.counters().readmissions.load(), 1u);
  EXPECT_GE(client.counters().probes.load(), 2u);

  auto reply = client.Get("/ping", 5000);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status_code, 200);
}

TEST(ShardClientTest, BudgetBoundsTotalSpend) {
  uint16_t dead_port;
  {
    server::TcpListener listener;
    ASSERT_TRUE(listener.Bind(0).ok());
    dead_port = listener.port();
    listener.Close();
  }
  ShardClientOptions slow = FastOptions();
  slow.max_attempts = 50;
  slow.backoff_base_ms = 40;
  slow.backoff_max_ms = 40;
  ShardClient client(0, {dead_port}, slow, 1);
  const auto start = std::chrono::steady_clock::now();
  auto reply = client.Get("/ping", 100);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_FALSE(reply.ok());
  // Budget 100ms; allow slack for a slow connect-refused, but nowhere near
  // what 50 attempts with 40ms backoffs would take (~2s).
  EXPECT_LT(elapsed.count(), 1000);
}

TEST(ShardClientTest, AllEjectedStillAttemptsLastResort) {
  // One replica, ejected after its first failure. PickReplica must still
  // hand it out — a fully dark shard keeps getting last-resort attempts,
  // which doubles as an inline readmission path once it recovers.
  StubServer server([](const server::HttpRequest&) {
    return std::make_pair(500, std::string("down"));
  });
  ASSERT_TRUE(server.Start().ok());
  ShardClientOptions options = FastOptions();
  options.eject_after = 1;
  options.max_attempts = 1;
  ShardClient client(0, {server.port()}, options, 1);
  auto first = client.GetOnce("/ping", 2000);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status_code, 500);
  ASSERT_TRUE(client.replica_ejected(0));

  auto second = client.GetOnce("/ping", 2000);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(client.counters().attempts.load(), 2u);
  EXPECT_EQ(server.requests(), 2u);
}

}  // namespace
}  // namespace graft::router
