// ScatterGather over live in-process shard servers:
//
//   * the headline invariant — router-merged results are BIT-IDENTICAL
//     (doc ids and %.17g scores) to a single-process engine over the whole
//     corpus, for all eight registered schemes, whenever every shard
//     answers;
//   * the two-phase stats exchange: summed df/cf/doc_count/total_words
//     match the monolithic index exactly;
//   * generation conflicts (hot reload racing the exchange) are detected
//     via 409, invalidate the stats epoch, and the request recovers;
//   * partial-result policy: cached-term queries degrade gracefully when a
//     shard dies (kPartial) or fail loudly (kFail); cold-cache queries
//     fail either way because honest global statistics need every shard;
//   * hedging: a straggler replica gets a racing second request and the
//     fast replica's answer wins;
//   * strict reply parsers reject garbled and truncated bodies.

#include "router/scatter_gather.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/request.h"
#include "index/index_io.h"
#include "index/inverted_index.h"
#include "mcalc/parser.h"
#include "server/http.h"
#include "server/search_service.h"
#include "text/corpus.h"

namespace graft::router {
namespace {

constexpr const char* kSchemes[] = {
    "AnySum",         "AnyProd", "SumBest",    "Lucene",
    "JoinNormalized", "MeanSum", "EventModel", "BestSumMinDist"};

constexpr const char* kQueries[] = {
    "san francisco fault line",
    "(windows emulator)WINDOW[50] (foss | \"free software\")",
    "free software !windows",
    "software",
};

constexpr size_t kShards = 3;
constexpr uint64_t kBudgetMs = 120000;

std::vector<std::string> TermsOf(const std::string& query) {
  auto parsed = mcalc::ParseQuery(query);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  std::vector<std::string> terms;
  for (const auto& variable : parsed->variables) {
    terms.push_back(variable.keyword);
  }
  return terms;
}

std::string Tail(const std::string& query, const std::string& scheme) {
  return "q=" + server::UrlEncode(query) + "&scheme=" + scheme;
}

// The shared corpus, split contiguously into kShards slices, each served
// by an in-process SearchService; plus the monolithic ground-truth engine.
struct Topology {
  core::EngineBundle full;                       // whole corpus, 1 segment
  std::vector<core::EngineBundle> shard_bundles; // one per shard
  std::vector<std::unique_ptr<server::SearchService>> services;
  std::vector<std::vector<uint16_t>> replica_ports;  // 1 replica each
};

server::ServiceOptions LenientOptions() {
  server::ServiceOptions options;
  options.default_deadline_ms = kBudgetMs;
  options.max_deadline_ms = kBudgetMs;
  options.max_top_k = 100000;
  return options;
}

Topology* MakeTopology() {
  auto* topology = new Topology();
  std::vector<std::vector<std::string>> docs;
  text::CorpusConfig config = text::WikipediaLikeConfig(400, /*seed=*/29);
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&docs](uint64_t, const std::vector<std::string_view>& tokens) {
        docs.emplace_back(tokens.begin(), tokens.end());
      });

  index::IndexBuilder full_builder;
  for (const auto& doc : docs) full_builder.AddDocumentStrings(doc);
  auto full = core::MakeEngineBundle(full_builder.Build(), /*segments=*/1,
                                     /*pool_threads=*/0);
  EXPECT_TRUE(full.ok()) << full.status();
  topology->full = std::move(full).value();

  // Contiguous split: shard i serves docs [i*chunk, ...), uneven tail on
  // the last shard — global doc id = shard base + local id.
  const size_t chunk = (docs.size() + kShards - 1) / kShards;
  for (size_t shard = 0; shard < kShards; ++shard) {
    index::IndexBuilder builder;
    const size_t begin = shard * chunk;
    const size_t end = std::min(docs.size(), begin + chunk);
    for (size_t i = begin; i < end; ++i) {
      builder.AddDocumentStrings(docs[i]);
    }
    auto bundle = core::MakeEngineBundle(builder.Build(), /*segments=*/1,
                                         /*pool_threads=*/0);
    EXPECT_TRUE(bundle.ok()) << bundle.status();
    topology->shard_bundles.push_back(std::move(bundle).value());
  }
  for (size_t shard = 0; shard < kShards; ++shard) {
    topology->services.push_back(std::make_unique<server::SearchService>(
        topology->shard_bundles[shard].engine.get(), LenientOptions()));
    EXPECT_TRUE(topology->services.back()->Start().ok());
    topology->replica_ports.push_back(
        {topology->services.back()->port()});
  }
  return topology;
}

Topology& SharedTopology() {
  static Topology& topology = *MakeTopology();
  return topology;
}

std::vector<ma::ScoredDoc> GroundTruth(const std::string& query,
                                       const std::string& scheme, size_t k) {
  const Topology& topology = SharedTopology();
  core::SearchRequestParams params;
  params.query = query;
  params.scheme = scheme;
  params.top_k = k;
  auto resolved = core::ResolveRequest(*topology.full.engine, params);
  EXPECT_TRUE(resolved.ok()) << resolved.status();
  auto result = topology.full.engine->SearchQuery(
      resolved->query, *resolved->scheme, resolved->options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result->results;
}

ScatterGatherOptions FastGatherOptions() {
  ScatterGatherOptions options;
  options.client.max_attempts = 2;
  options.client.backoff_base_ms = 1;
  options.client.backoff_max_ms = 4;
  options.client.io_timeout_ms = static_cast<int>(kBudgetMs);
  return options;
}

TEST(ScatterGatherParserTest, RoundTripsServerResultsFragment) {
  std::vector<ma::ScoredDoc> results = {{0, 2.5}, {17, 1.0 / 3.0},
                                        {123456, -0.0078125}};
  const std::string body =
      "{\"k\":3," + server::SearchService::FormatResultsFragment(results) +
      "}";
  auto parsed = ParseResultsFragment(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ((*parsed)[i].doc, results[i].doc);
    EXPECT_EQ((*parsed)[i].score, results[i].score);  // bit-exact via %.17g
  }
  auto empty = ParseResultsFragment("{\"results\":[]}");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ScatterGatherParserTest, RejectsGarbledAndTruncatedBodies) {
  std::vector<ma::ScoredDoc> results = {{1, 1.5}, {2, 0.5}};
  std::string body =
      "{" + server::SearchService::FormatResultsFragment(results) + "}";
  // Mid-stream cut: half the body.
  EXPECT_FALSE(ParseResultsFragment(body.substr(0, body.size() / 2)).ok());
  // Wire corruption: every byte inverted.
  std::string garbled = body;
  for (char& c : garbled) c = static_cast<char>(~c);
  EXPECT_FALSE(ParseResultsFragment(garbled).ok());
  EXPECT_FALSE(ParseResultsFragment("").ok());
  EXPECT_FALSE(ParseResultsFragment("{\"results\":[{\"doc\":1}]}").ok());
}

TEST(ScatterGatherParserTest, ParsesShardStatsReply) {
  const std::string body =
      "{\"generation\":3,\"doc_count\":120,\"total_words\":4567,"
      "\"terms\":[{\"term\":\"software\",\"df\":12,\"cf\":40},"
      "{\"term\":\"a\\\"b\",\"df\":0,\"cf\":0}]}";
  auto parsed = ParseShardStatsReply(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->generation, 3u);
  EXPECT_EQ(parsed->doc_count, 120u);
  EXPECT_EQ(parsed->total_words, 4567u);
  ASSERT_EQ(parsed->terms.size(), 2u);
  EXPECT_EQ(parsed->terms[0].term, "software");
  EXPECT_EQ(parsed->terms[0].doc_freq, 12u);
  EXPECT_EQ(parsed->terms[1].term, "a\"b");
  EXPECT_FALSE(ParseShardStatsReply("{\"generation\":3}").ok());
}

TEST(ScatterGatherTest, CollectStatsSumsToMonolithicStatistics) {
  Topology& topology = SharedTopology();
  ScatterGather gather(topology.replica_ports, FastGatherOptions());
  std::vector<uint64_t> bases;
  std::vector<uint64_t> generations;
  auto pinned = gather.CollectStats({"software", "windows", "nosuchterm"},
                                    kBudgetMs, &bases, &generations);
  ASSERT_TRUE(pinned.ok()) << pinned.status();

  const index::InvertedIndex& full = *topology.full.index;
  EXPECT_EQ(pinned->doc_count, full.doc_count());
  EXPECT_EQ(pinned->total_words, full.total_words());
  ASSERT_EQ(pinned->terms.size(), 3u);
  for (const auto& term : pinned->terms) {
    const TermId id = full.LookupTerm(term.term);
    const uint64_t df = id == kInvalidTerm ? 0 : full.DocFreq(id);
    const uint64_t cf = id == kInvalidTerm ? 0 : full.CollectionFreq(id);
    EXPECT_EQ(term.doc_freq, df) << term.term;
    EXPECT_EQ(term.collection_freq, cf) << term.term;
  }

  // Bases are the prefix sums of the contiguous split.
  ASSERT_EQ(bases.size(), kShards);
  uint64_t expected_base = 0;
  for (size_t shard = 0; shard < kShards; ++shard) {
    EXPECT_EQ(bases[shard], expected_base);
    expected_base += topology.shard_bundles[shard].index->doc_count();
  }
  EXPECT_EQ(expected_base, full.doc_count());

  // A second collection of the same terms is served from the cache —
  // no further shard traffic.
  const uint64_t attempts_before =
      gather.shard(0).counters().attempts.load();
  auto cached = gather.CollectStats({"software"}, kBudgetMs, &bases,
                                    &generations);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(gather.shard(0).counters().attempts.load(), attempts_before);
}

TEST(ScatterGatherTest, BitIdenticalToSingleProcessAllSchemes) {
  Topology& topology = SharedTopology();
  ScatterGather gather(topology.replica_ports, FastGatherOptions());
  for (const char* scheme : kSchemes) {
    for (const char* query : kQueries) {
      auto gathered =
          gather.Search(TermsOf(query), Tail(query, scheme), 10, kBudgetMs);
      ASSERT_TRUE(gathered.ok()) << scheme << " " << query << ": "
                                 << gathered.status();
      EXPECT_FALSE(gathered->degraded);
      EXPECT_EQ(gathered->shards_ok, kShards);
      const std::vector<ma::ScoredDoc> expected =
          GroundTruth(query, scheme, 10);
      // Byte-for-byte: the %.17g rendering of both rankings must agree.
      EXPECT_EQ(
          server::SearchService::FormatResultsFragment(gathered->results),
          server::SearchService::FormatResultsFragment(expected))
          << scheme << " " << query;
    }
  }
}

TEST(ScatterGatherTest, LargeKCoversFullCorpusOrdering) {
  // k larger than any shard's hit count: the merge must interleave whole
  // shard result lists correctly, not just heads.
  Topology& topology = SharedTopology();
  ScatterGather gather(topology.replica_ports, FastGatherOptions());
  const std::string query = "software";
  auto gathered =
      gather.Search(TermsOf(query), Tail(query, "MeanSum"), 100000,
                    kBudgetMs);
  ASSERT_TRUE(gathered.ok()) << gathered.status();
  const std::vector<ma::ScoredDoc> expected =
      GroundTruth(query, "MeanSum", 100000);
  EXPECT_EQ(server::SearchService::FormatResultsFragment(gathered->results),
            server::SearchService::FormatResultsFragment(expected));
}

TEST(ScatterGatherTest, GenerationConflictInvalidatesEpochAndRecovers) {
  // A dedicated topology where shard 0 is reloadable (index saved to
  // disk), so its generation can move between the router's stats
  // collection and the fanned-out search.
  Topology& shared = SharedTopology();
  const std::string path = ::testing::TempDir() + "/graft_router_gen_" +
                           std::to_string(::getpid()) + ".idx";
  ASSERT_TRUE(index::SaveIndex(*shared.shard_bundles[0].index, path).ok());
  auto loaded = core::LoadEngineBundle(path, /*segments=*/1, 0);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto bundle = std::make_shared<const core::EngineBundle>(
      std::move(loaded).value());
  server::ServiceOptions options = LenientOptions();
  options.index_path = path;
  options.segments = 1;
  server::SearchService reloadable(bundle, options);
  ASSERT_TRUE(reloadable.Start().ok());

  std::vector<std::vector<uint16_t>> ports = shared.replica_ports;
  ports[0] = {reloadable.port()};
  ScatterGather gather(ports, FastGatherOptions());

  const std::string query = "free software";
  // Prime the stats cache at generation 1...
  std::vector<uint64_t> bases;
  std::vector<uint64_t> generations;
  ASSERT_TRUE(gather
                  .CollectStats(TermsOf(query), kBudgetMs, &bases,
                                &generations)
                  .ok());
  EXPECT_EQ(generations[0], 1u);
  const uint64_t epoch_before = gather.stats_epoch();

  // ...then reload shard 0 (same file: scores unchanged, generation 2).
  ASSERT_TRUE(reloadable.Reload().ok());
  ASSERT_EQ(reloadable.generation(), 2u);

  // The search fans out with expect_gen=1, gets 409 from shard 0,
  // invalidates the epoch, re-collects at generation 2, and succeeds.
  auto gathered =
      gather.Search(TermsOf(query), Tail(query, "MeanSum"), 10, kBudgetMs);
  ASSERT_TRUE(gathered.ok()) << gathered.status();
  EXPECT_FALSE(gathered->degraded);
  EXPECT_GE(gather.counters().gen_conflicts.load(), 1u);
  EXPECT_GE(gather.counters().stats_refreshes.load(), 1u);
  EXPECT_GT(gather.stats_epoch(), epoch_before);
  EXPECT_EQ(server::SearchService::FormatResultsFragment(gathered->results),
            server::SearchService::FormatResultsFragment(
                GroundTruth(query, "MeanSum", 10)));
  EXPECT_GE(reloadable.stats().generation_conflicts.load(), 1u);

  reloadable.Shutdown();
  std::remove(path.c_str());
}

// Partial-result policies need a killable shard, so these tests build
// their own private topology instead of sharing the static one.
struct PrivateTopology {
  std::vector<std::unique_ptr<server::SearchService>> services;
  std::vector<std::vector<uint16_t>> ports;
};

PrivateTopology MakePrivateTopology() {
  Topology& shared = SharedTopology();
  PrivateTopology topology;
  for (size_t shard = 0; shard < kShards; ++shard) {
    topology.services.push_back(std::make_unique<server::SearchService>(
        shared.shard_bundles[shard].engine.get(), LenientOptions()));
    EXPECT_TRUE(topology.services.back()->Start().ok());
    topology.ports.push_back({topology.services.back()->port()});
  }
  return topology;
}

TEST(ScatterGatherTest, CachedTermsDegradeToPartialWhenShardDies) {
  PrivateTopology topology = MakePrivateTopology();
  ScatterGatherOptions options = FastGatherOptions();
  options.partial_policy = PartialPolicy::kPartial;
  ScatterGather gather(topology.ports, options);

  const std::string query = "free software";
  // First query primes the stats cache while every shard is up.
  auto first =
      gather.Search(TermsOf(query), Tail(query, "MeanSum"), 10, kBudgetMs);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_FALSE(first->degraded);

  // Kill shard 1. The same query's terms are cached, so phase 1 needs no
  // shard contact and phase 2 degrades to a partial merge.
  topology.services[1]->Shutdown();
  auto partial =
      gather.Search(TermsOf(query), Tail(query, "MeanSum"), 10, kBudgetMs);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_TRUE(partial->degraded);
  EXPECT_EQ(partial->shards_total, kShards);
  EXPECT_EQ(partial->shards_ok, kShards - 1);
  EXPECT_EQ(partial->outcomes[1].outcome, "failed");
  EXPECT_FALSE(partial->outcomes[1].error.empty());
  EXPECT_EQ(partial->outcomes[0].outcome, "ok");
  EXPECT_EQ(partial->outcomes[2].outcome, "ok");
  EXPECT_GE(gather.counters().gathers_partial.load(), 1u);

  // The surviving shards' contributions are still bit-exact: any doc that
  // also appeared in the healthy top-10 must carry the identical score
  // (results past the healthy top-10 may legitimately surface once shard
  // 1's hits vanish — those have nothing to compare against).
  for (const ma::ScoredDoc& hit : partial->results) {
    for (const ma::ScoredDoc& truth : first->results) {
      if (truth.doc == hit.doc) {
        EXPECT_EQ(truth.score, hit.score);
        break;
      }
    }
  }
}

TEST(ScatterGatherTest, FailPolicyRefusesPartialResults) {
  PrivateTopology topology = MakePrivateTopology();
  ScatterGatherOptions options = FastGatherOptions();
  options.partial_policy = PartialPolicy::kFail;
  ScatterGather gather(topology.ports, options);

  const std::string query = "software";
  ASSERT_TRUE(gather.Search(TermsOf(query), Tail(query, "MeanSum"), 10,
                            kBudgetMs)
                  .ok());
  topology.services[2]->Shutdown();
  auto refused = gather.Search(TermsOf(query), Tail(query, "MeanSum"), 10,
                               kBudgetMs);
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.status().message().find("partial results forbidden"),
            std::string::npos)
      << refused.status();
  EXPECT_GE(gather.counters().gathers_failed.load(), 1u);
}

TEST(ScatterGatherTest, ColdCacheRequiresEveryShard) {
  PrivateTopology topology = MakePrivateTopology();
  ScatterGatherOptions options = FastGatherOptions();
  options.partial_policy = PartialPolicy::kPartial;  // even under kPartial
  ScatterGather gather(topology.ports, options);
  topology.services[0]->Shutdown();
  // No cached statistics: honest global df/cf sums need every shard, so
  // the request fails outright rather than degrading to dishonest scores.
  auto gathered = gather.Search(TermsOf("software"),
                                Tail("software", "MeanSum"), 10, kBudgetMs);
  EXPECT_FALSE(gathered.ok());
  EXPECT_NE(
      gathered.status().message().find("stats collection failed"),
      std::string::npos)
      << gathered.status();
}

// A protocol-speaking stub replica with a configurable pre-reply delay —
// the straggler in the hedging test. Serves one shard whose corpus is
// `doc_count` docs; /search answers a canned result list.
class StubReplica {
 public:
  StubReplica(uint64_t delay_ms, std::string search_results_json)
      : delay_ms_(delay_ms), results_(std::move(search_results_json)) {}
  ~StubReplica() { Stop(); }

  Status Start() {
    GRAFT_RETURN_IF_ERROR(listener_.Bind(0));
    running_ = true;
    thread_ = std::thread([this] { Loop(); });
    return Status::Ok();
  }

  void Stop() {
    if (!running_) return;
    stopping_.store(true);
    listener_.Interrupt();
    thread_.join();
    listener_.Close();
    running_ = false;
  }

  uint16_t port() const { return listener_.port(); }
  uint64_t searches() const { return searches_.load(); }

 private:
  void Loop() {
    while (!stopping_.load()) {
      StatusOr<int> accepted = listener_.Accept(2000);
      if (!accepted.ok()) {
        if (stopping_.load()) return;
        continue;
      }
      const int fd = *accepted;
      StatusOr<server::HttpRequest> request = server::ReadRequest(fd);
      if (request.ok()) {
        std::string body;
        if (request->path == "/shard/stats") {
          body =
              "{\"generation\":1,\"doc_count\":4,\"total_words\":40,"
              "\"terms\":[{\"term\":\"x\",\"df\":2,\"cf\":3}]}";
        } else {
          searches_.fetch_add(1);
          if (delay_ms_ > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay_ms_));
          }
          body = "{\"results\":[" + results_ + "]}";
        }
        (void)server::WriteResponse(fd, 200, "application/json", body);
      }
      ::close(fd);
    }
  }

  const uint64_t delay_ms_;
  const std::string results_;
  server::TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> searches_{0};
  bool running_ = false;
};

TEST(ScatterGatherTest, HedgeRacesStragglerAndFastReplicaWins) {
  const std::string results = "{\"doc\":0,\"score\":2},{\"doc\":1,\"score\":1}";
  StubReplica slow(/*delay_ms=*/1500, results);
  StubReplica fast(/*delay_ms=*/0, results);
  ASSERT_TRUE(slow.Start().ok());
  ASSERT_TRUE(fast.Start().ok());

  ScatterGatherOptions options = FastGatherOptions();
  options.hedge_ms = 60;
  ScatterGather gather({{slow.port(), fast.port()}}, options);

  // Run a handful of searches: round-robin rotation guarantees some
  // primaries land on the straggler, each of which must hedge to the fast
  // replica and finish far sooner than the straggler's delay.
  size_t hedged_and_fast = 0;
  for (int i = 0; i < 4; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto gathered = gather.Search({"x"}, "q=x&scheme=AnySum", 2, kBudgetMs);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    ASSERT_TRUE(gathered.ok()) << gathered.status();
    ASSERT_EQ(gathered->results.size(), 2u);
    EXPECT_EQ(gathered->results[0].doc, 0u);
    EXPECT_EQ(gathered->results[0].score, 2.0);
    if (gathered->outcomes[0].hedged && elapsed.count() < 1200) {
      ++hedged_and_fast;
    }
  }
  EXPECT_GE(hedged_and_fast, 1u);
  EXPECT_GE(gather.counters().hedges_launched.load(), 1u);
  EXPECT_GE(gather.counters().hedges_won.load(), 1u);
}

TEST(ScatterGatherTest, MergeBreaksTiesByGlobalDocId) {
  // Two stub shards with equal scores: merged order must be score desc,
  // then GLOBAL doc id asc (shard 0's docs first at equal score).
  StubReplica shard0(0, "{\"doc\":1,\"score\":5},{\"doc\":3,\"score\":3}");
  StubReplica shard1(0, "{\"doc\":0,\"score\":5},{\"doc\":2,\"score\":4}");
  ASSERT_TRUE(shard0.Start().ok());
  ASSERT_TRUE(shard1.Start().ok());
  ScatterGather gather({{shard0.port()}, {shard1.port()}},
                       FastGatherOptions());
  auto gathered = gather.Search({"x"}, "q=x&scheme=AnySum", 10, kBudgetMs);
  ASSERT_TRUE(gathered.ok()) << gathered.status();
  // Shard doc_count is 4 (stub stats), so shard 1's base is 4.
  ASSERT_EQ(gathered->results.size(), 4u);
  EXPECT_EQ(gathered->results[0].doc, 1u);   // score 5, global 1
  EXPECT_EQ(gathered->results[1].doc, 4u);   // score 5, global 4 (=0+4)
  EXPECT_EQ(gathered->results[2].doc, 6u);   // score 4, global 6 (=2+4)
  EXPECT_EQ(gathered->results[3].doc, 3u);   // score 3, global 3
}

}  // namespace
}  // namespace graft::router
