// Multi-process chaos for the scatter-gather layer: real forked shard
// server processes under a live ScatterGather, with SIGKILL mid-load,
// same-port restart, probe-driven readmission — and failpoint-injected
// wire faults (connect refusal, stragglers, garbled and cut bodies).
//
// The invariant under every fault: a 200 is either the complete
// bit-identical ranking (degraded=false) or an explicitly partial one
// (degraded=true with shard coverage) — never silently wrong, never
// merged from corrupted bytes.

#ifdef GRAFT_FAILPOINTS_ENABLED

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/request.h"
#include "index/index_io.h"
#include "index/inverted_index.h"
#include "mcalc/parser.h"
#include "router/scatter_gather.h"
#include "server/http.h"
#include "server/search_service.h"
#include "text/corpus.h"

namespace graft::router {
namespace {

constexpr size_t kShards = 3;
constexpr uint64_t kBudgetMs = 120000;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/graft_" + std::to_string(::getpid()) +
         "_" + name;
}

std::vector<std::string> TermsOf(const std::string& query) {
  auto parsed = mcalc::ParseQuery(query);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  std::vector<std::string> terms;
  for (const auto& variable : parsed->variables) {
    terms.push_back(variable.keyword);
  }
  return terms;
}

std::string Tail(const std::string& query, const std::string& scheme) {
  return "q=" + server::UrlEncode(query) + "&scheme=" + scheme;
}

server::ServiceOptions LenientOptions() {
  server::ServiceOptions options;
  options.default_deadline_ms = kBudgetMs;
  options.max_deadline_ms = kBudgetMs;
  options.max_top_k = 100000;
  return options;
}

struct ShardProcess {
  pid_t pid = -1;
  uint16_t port = 0;
};

// Forks a real shard server process: the child loads `index_path`, serves
// it on `port` (0 = ephemeral), reports the bound port through a pipe, and
// then sleeps until the parent SIGKILLs it — exactly the lifecycle of a
// graft_server the chaos scenario murders.
ShardProcess SpawnShard(const std::string& index_path, uint16_t port) {
  int fds[2];
  EXPECT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    ::close(fds[0]);
    auto bundle = core::LoadEngineBundle(index_path, /*segments=*/1,
                                         /*pool_threads=*/2);
    if (!bundle.ok()) std::_Exit(97);
    server::ServiceOptions options = LenientOptions();
    options.port = port;
    server::SearchService service(
        std::make_shared<const core::EngineBundle>(std::move(bundle).value()),
        options);
    if (!service.Start().ok()) std::_Exit(96);
    const uint16_t bound = service.port();
    if (::write(fds[1], &bound, sizeof(bound)) != sizeof(bound)) {
      std::_Exit(95);
    }
    ::close(fds[1]);
    for (;;) ::pause();  // SIGKILL is the only way out
  }
  ::close(fds[1]);
  ShardProcess shard;
  shard.pid = pid;
  EXPECT_EQ(::read(fds[0], &shard.port, sizeof(shard.port)),
            static_cast<ssize_t>(sizeof(shard.port)))
      << "shard child did not come up";
  ::close(fds[0]);
  return shard;
}

void KillShard(ShardProcess* shard) {
  if (shard->pid <= 0) return;
  ::kill(shard->pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(shard->pid, &wstatus, 0);
  shard->pid = -1;
}

// Corpus + per-shard slice index files + full-corpus ground truth, built
// once in the parent before any forking.
struct ChaosCorpus {
  core::EngineBundle full;
  std::vector<std::string> shard_paths;
};

ChaosCorpus BuildChaosCorpus() {
  ChaosCorpus corpus;
  std::vector<std::vector<std::string>> docs;
  text::CorpusGenerator generator(
      text::WikipediaLikeConfig(300, /*seed=*/31));
  generator.Generate(
      [&docs](uint64_t, const std::vector<std::string_view>& tokens) {
        docs.emplace_back(tokens.begin(), tokens.end());
      });
  index::IndexBuilder full_builder;
  for (const auto& doc : docs) full_builder.AddDocumentStrings(doc);
  auto full = core::MakeEngineBundle(full_builder.Build(), 1, 0);
  EXPECT_TRUE(full.ok()) << full.status();
  corpus.full = std::move(full).value();

  const size_t chunk = (docs.size() + kShards - 1) / kShards;
  for (size_t shard = 0; shard < kShards; ++shard) {
    index::IndexBuilder builder;
    const size_t begin = shard * chunk;
    const size_t end = std::min(docs.size(), begin + chunk);
    for (size_t i = begin; i < end; ++i) builder.AddDocumentStrings(docs[i]);
    const std::string path =
        TempPath(("chaos_shard" + std::to_string(shard) + ".idx").c_str());
    EXPECT_TRUE(index::SaveIndex(builder.Build(), path).ok());
    corpus.shard_paths.push_back(path);
  }
  return corpus;
}

std::string GroundTruthFragment(const core::EngineBundle& full,
                                const std::string& query,
                                const std::string& scheme, size_t k) {
  core::SearchRequestParams params;
  params.query = query;
  params.scheme = scheme;
  params.top_k = k;
  auto resolved = core::ResolveRequest(*full.engine, params);
  EXPECT_TRUE(resolved.ok()) << resolved.status();
  auto result = full.engine->SearchQuery(resolved->query, *resolved->scheme,
                                         resolved->options);
  EXPECT_TRUE(result.ok()) << result.status();
  return server::SearchService::FormatResultsFragment(result->results);
}

ScatterGatherOptions ChaosGatherOptions() {
  ScatterGatherOptions options;
  options.client.max_attempts = 2;
  options.client.backoff_base_ms = 1;
  options.client.backoff_max_ms = 4;
  options.client.eject_after = 2;
  options.client.io_timeout_ms = static_cast<int>(kBudgetMs);
  options.partial_policy = PartialPolicy::kPartial;
  options.probe_interval_ms = 50;
  return options;
}

TEST(RouterChaosTest, SigkillAndSamePortRestartUnderLoad) {
  ChaosCorpus corpus = BuildChaosCorpus();
  std::vector<ShardProcess> shards;
  std::vector<std::vector<uint16_t>> ports;
  for (const std::string& path : corpus.shard_paths) {
    shards.push_back(SpawnShard(path, /*port=*/0));
    ASSERT_GT(shards.back().port, 0);
    ports.push_back({shards.back().port});
  }

  const std::string query = "free software";
  const std::string scheme = "MeanSum";
  const std::string expected =
      GroundTruthFragment(corpus.full, query, scheme, 10);

  ScatterGather gather(ports, ChaosGatherOptions());
  gather.StartProbes();

  // Healthy baseline: the forked topology is bit-identical to the
  // monolithic engine (this also primes the stats cache, which is what
  // lets later queries degrade instead of failing once a shard dies).
  {
    auto gathered =
        gather.Search(TermsOf(query), Tail(query, scheme), 10, kBudgetMs);
    ASSERT_TRUE(gathered.ok()) << gathered.status();
    ASSERT_FALSE(gathered->degraded);
    ASSERT_EQ(
        server::SearchService::FormatResultsFragment(gathered->results),
        expected);
  }

  // Load thread: hammers the same query and checks the honesty invariant
  // on every answer. While a shard is down the response must be degraded
  // with coverage 2/3; while all are up it must be the exact full ranking.
  std::atomic<bool> stop_load{false};
  std::atomic<uint64_t> load_ok{0};
  std::atomic<uint64_t> load_degraded{0};
  std::thread load([&] {
    while (!stop_load.load()) {
      auto gathered =
          gather.Search(TermsOf(query), Tail(query, scheme), 10, 5000);
      if (!gathered.ok()) continue;  // budget blips are not dishonesty
      if (gathered->degraded) {
        EXPECT_EQ(gathered->shards_ok, kShards - 1);
        EXPECT_EQ(gathered->outcomes[1].outcome, "failed");
        load_degraded.fetch_add(1);
      } else {
        EXPECT_EQ(
            server::SearchService::FormatResultsFragment(gathered->results),
            expected);
        load_ok.fetch_add(1);
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Murder shard 1 mid-load, wait until the load thread actually OBSERVES
  // the degradation window (a fixed sleep raced on loaded machines: the
  // restart could land before any degraded answer, failing the
  // load_degraded assertion below), then restart it on the SAME port from
  // the same index file.
  const uint16_t shard1_port = shards[1].port;
  KillShard(&shards[1]);
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (load_degraded.load() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_GT(load_degraded.load(), 0u)
        << "kill window closed before any degraded answer was observed";
  }
  shards[1] = SpawnShard(corpus.shard_paths[1], shard1_port);
  ASSERT_EQ(shards[1].port, shard1_port);

  // Confirm the restarted process is actually serving before asserting
  // anything about readmission: poll its /healthz with a deadline (the
  // fork/pipe handshake proves the listener exists, not that the accept
  // loop is answering).
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    bool healthy = false;
    while (!healthy && std::chrono::steady_clock::now() < deadline) {
      auto health = server::HttpGet(shard1_port, "/healthz", /*timeout_ms=*/500);
      healthy = health.ok() && health->status_code == 200;
      if (!healthy) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    ASSERT_TRUE(healthy) << "restarted shard never answered /healthz";
  }

  // The background probes must readmit the restarted replica; wait until
  // a fresh query comes back complete again.
  bool recovered = false;
  for (int i = 0; i < 200 && !recovered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto gathered =
        gather.Search(TermsOf(query), Tail(query, scheme), 10, 5000);
    recovered = gathered.ok() && !gathered->degraded;
    if (recovered) {
      EXPECT_EQ(
          server::SearchService::FormatResultsFragment(gathered->results),
          expected);
    }
  }
  stop_load.store(true);
  load.join();
  gather.StopProbes();

  EXPECT_TRUE(recovered) << "topology never healed after restart";
  EXPECT_GE(load_ok.load(), 1u);
  EXPECT_GE(load_degraded.load(), 1u)
      << "the kill window was never observed as degraded";
  EXPECT_GE(gather.counters().gathers_partial.load(), 1u);
  EXPECT_GE(gather.shard(1).counters().failures.load(), 1u);

  for (ShardProcess& shard : shards) KillShard(&shard);
  for (const std::string& path : corpus.shard_paths) {
    std::remove(path.c_str());
  }
}

// In-process topology for the wire-fault injections (no forking needed:
// the faults strike inside the shard CLIENT).
struct LocalTopology {
  std::vector<core::EngineBundle> bundles;
  std::vector<std::unique_ptr<server::SearchService>> services;
  std::vector<std::vector<uint16_t>> ports;
  core::EngineBundle full;
};

LocalTopology MakeLocalTopology() {
  LocalTopology topology;
  std::vector<std::vector<std::string>> docs;
  text::CorpusGenerator generator(
      text::WikipediaLikeConfig(200, /*seed=*/37));
  generator.Generate(
      [&docs](uint64_t, const std::vector<std::string_view>& tokens) {
        docs.emplace_back(tokens.begin(), tokens.end());
      });
  index::IndexBuilder full_builder;
  for (const auto& doc : docs) full_builder.AddDocumentStrings(doc);
  auto full = core::MakeEngineBundle(full_builder.Build(), 1, 0);
  EXPECT_TRUE(full.ok());
  topology.full = std::move(full).value();

  const size_t chunk = (docs.size() + kShards - 1) / kShards;
  for (size_t shard = 0; shard < kShards; ++shard) {
    index::IndexBuilder builder;
    const size_t begin = shard * chunk;
    const size_t end = std::min(docs.size(), begin + chunk);
    for (size_t i = begin; i < end; ++i) builder.AddDocumentStrings(docs[i]);
    auto bundle = core::MakeEngineBundle(builder.Build(), 1, 0);
    EXPECT_TRUE(bundle.ok());
    topology.bundles.push_back(std::move(bundle).value());
    topology.services.push_back(std::make_unique<server::SearchService>(
        topology.bundles.back().engine.get(), LenientOptions()));
    EXPECT_TRUE(topology.services.back()->Start().ok());
    topology.ports.push_back({topology.services.back()->port()});
  }
  return topology;
}

class RouterFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override {
    common::FailpointRegistry::Global().DeactivateAll();
  }
};

TEST_F(RouterFailpointTest, InjectedConnectFailureIsRetriedTransparently) {
  LocalTopology topology = MakeLocalTopology();
  ScatterGather gather(topology.ports, ChaosGatherOptions());
  const std::string query = "software";
  const std::string expected =
      GroundTruthFragment(topology.full, query, "MeanSum", 10);

  // Exactly one connect attempt dies; the retry must absorb it with no
  // visible degradation.
  common::FailpointConfig config;
  config.action = common::FailpointAction::kError;
  config.error_code = StatusCode::kIOError;
  config.message = "injected connect refusal";
  config.max_fires = 1;
  ASSERT_TRUE(common::FailpointRegistry::Global()
                  .Activate("router.client.connect", config)
                  .ok());
  auto gathered =
      gather.Search(TermsOf(query), Tail(query, "MeanSum"), 10, kBudgetMs);
  ASSERT_TRUE(gathered.ok()) << gathered.status();
  EXPECT_FALSE(gathered->degraded);
  EXPECT_EQ(server::SearchService::FormatResultsFragment(gathered->results),
            expected);
  uint64_t retries = 0;
  for (size_t i = 0; i < kShards; ++i) {
    retries += gather.shard(i).counters().retries.load();
  }
  EXPECT_GE(retries, 1u);
}

TEST_F(RouterFailpointTest, GarbledBodyBecomesShardFailureNotGarbage) {
  LocalTopology topology = MakeLocalTopology();
  ScatterGather gather(topology.ports, ChaosGatherOptions());
  const std::string query = "free software";
  const std::string expected =
      GroundTruthFragment(topology.full, query, "Lucene", 10);

  // Healthy first (primes the stats cache so the degraded pass can run).
  auto healthy =
      gather.Search(TermsOf(query), Tail(query, "Lucene"), 10, kBudgetMs);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  ASSERT_EQ(server::SearchService::FormatResultsFragment(healthy->results),
            expected);

  // One shard's reply body is bit-inverted on the wire. The strict parser
  // must turn that into a shard failure: an honest partial, never a merge
  // of garbage doc ids / scores.
  common::FailpointConfig config;
  config.action = common::FailpointAction::kError;
  config.max_fires = 1;
  ASSERT_TRUE(common::FailpointRegistry::Global()
                  .Activate("router.client.garbled_body", config)
                  .ok());
  auto gathered =
      gather.Search(TermsOf(query), Tail(query, "Lucene"), 10, kBudgetMs);
  ASSERT_TRUE(gathered.ok()) << gathered.status();
  EXPECT_TRUE(gathered->degraded);
  EXPECT_EQ(gathered->shards_ok, kShards - 1);
  size_t failed = 0;
  for (const ShardOutcome& outcome : gathered->outcomes) {
    if (outcome.outcome == "failed") {
      ++failed;
      EXPECT_NE(outcome.error.find("shard reply"), std::string::npos)
          << outcome.error;
    }
  }
  EXPECT_EQ(failed, 1u);
  // Every surviving result is genuine: present in the full ranking with
  // the identical score.
  common::FailpointRegistry::Global().DeactivateAll();
  auto full_again =
      gather.Search(TermsOf(query), Tail(query, "Lucene"), 10, kBudgetMs);
  ASSERT_TRUE(full_again.ok());
  EXPECT_EQ(
      server::SearchService::FormatResultsFragment(full_again->results),
      expected);
}

TEST_F(RouterFailpointTest, CutBodyBecomesShardFailureNotGarbage) {
  LocalTopology topology = MakeLocalTopology();
  ScatterGather gather(topology.ports, ChaosGatherOptions());
  const std::string query = "software";
  auto healthy =
      gather.Search(TermsOf(query), Tail(query, "AnySum"), 10, kBudgetMs);
  ASSERT_TRUE(healthy.ok()) << healthy.status();

  common::FailpointConfig config;
  config.action = common::FailpointAction::kError;
  config.max_fires = 1;
  ASSERT_TRUE(common::FailpointRegistry::Global()
                  .Activate("router.client.cut_body", config)
                  .ok());
  auto gathered =
      gather.Search(TermsOf(query), Tail(query, "AnySum"), 10, kBudgetMs);
  ASSERT_TRUE(gathered.ok()) << gathered.status();
  EXPECT_TRUE(gathered->degraded);
  EXPECT_EQ(gathered->shards_ok, kShards - 1);
}

TEST_F(RouterFailpointTest, InjectedStragglerDelaysButStaysCorrect) {
  LocalTopology topology = MakeLocalTopology();
  ScatterGatherOptions options = ChaosGatherOptions();
  ScatterGather gather(topology.ports, options);
  const std::string query = "software";
  const std::string expected =
      GroundTruthFragment(topology.full, query, "MeanSum", 10);
  auto healthy =
      gather.Search(TermsOf(query), Tail(query, "MeanSum"), 10, kBudgetMs);
  ASSERT_TRUE(healthy.ok());

  // One leg sleeps 200ms before its request: without hedging the gather
  // simply waits it out and the answer is still complete and exact.
  common::FailpointConfig config;
  config.action = common::FailpointAction::kDelay;
  config.delay_ms = 200;
  config.max_fires = 1;
  ASSERT_TRUE(common::FailpointRegistry::Global()
                  .Activate("router.client.slow_reply", config)
                  .ok());
  const auto start = std::chrono::steady_clock::now();
  auto gathered =
      gather.Search(TermsOf(query), Tail(query, "MeanSum"), 10, kBudgetMs);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(gathered.ok()) << gathered.status();
  EXPECT_FALSE(gathered->degraded);
  EXPECT_EQ(server::SearchService::FormatResultsFragment(gathered->results),
            expected);
  EXPECT_GE(elapsed.count(), 190);
}

}  // namespace
}  // namespace graft::router

#endif  // GRAFT_FAILPOINTS_ENABLED
