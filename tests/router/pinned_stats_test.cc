// PinnedStats wire codec: round-trips, escaping of the format's own
// delimiters inside terms, and strict rejection of malformed input — the
// router and the shards must agree on every byte, because the pinned
// statistics define the scores.

#include "server/pinned_stats.h"

#include <gtest/gtest.h>

#include <string>

#include "index/stats.h"

namespace graft::server {
namespace {

TEST(PinnedStatsTest, RoundTripsBasic) {
  PinnedStats stats;
  stats.doc_count = 4638535;
  stats.total_words = 987654321;
  stats.terms.push_back({"software", 71735, 99999});
  stats.terms.push_back({"windows", 43949, 50000});

  const std::string encoded = EncodePinnedStats(stats);
  auto decoded = DecodePinnedStats(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->doc_count, stats.doc_count);
  EXPECT_EQ(decoded->total_words, stats.total_words);
  ASSERT_EQ(decoded->terms.size(), 2u);
  EXPECT_EQ(decoded->terms[0].term, "software");
  EXPECT_EQ(decoded->terms[0].doc_freq, 71735u);
  EXPECT_EQ(decoded->terms[0].collection_freq, 99999u);
  EXPECT_EQ(decoded->terms[1].term, "windows");
  // Re-encoding is byte-stable (the router may cache encoded forms).
  EXPECT_EQ(EncodePinnedStats(*decoded), encoded);
}

TEST(PinnedStatsTest, RoundTripsEmptyTermList) {
  PinnedStats stats;
  stats.doc_count = 7;
  stats.total_words = 13;
  auto decoded = DecodePinnedStats(EncodePinnedStats(stats));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->doc_count, 7u);
  EXPECT_EQ(decoded->total_words, 13u);
  EXPECT_TRUE(decoded->terms.empty());
}

TEST(PinnedStatsTest, EscapesDelimitersInsideTerms) {
  PinnedStats stats;
  stats.doc_count = 1;
  stats.total_words = 2;
  stats.terms.push_back({"a:b;c%d", 3, 4});
  const std::string encoded = EncodePinnedStats(stats);
  auto decoded = DecodePinnedStats(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status() << " encoded=" << encoded;
  ASSERT_EQ(decoded->terms.size(), 1u);
  EXPECT_EQ(decoded->terms[0].term, "a:b;c%d");
  EXPECT_EQ(decoded->terms[0].doc_freq, 3u);
  EXPECT_EQ(decoded->terms[0].collection_freq, 4u);
}

TEST(PinnedStatsTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",                 // nothing
      "12",               // missing total_words
      "a;b",              // non-numeric
      "1;2;term",         // term record missing counts
      "1;2;term:3",       // term record missing cf
      "1;2;term:3:x",     // non-numeric cf
      "1;2;term:3:4:5",   // trailing field
      "-1;2",             // sign
      "1;2;t%zz:1:1",     // invalid escape
      "99999999999999999999;2",  // u64 overflow
  };
  for (const char* input : bad) {
    EXPECT_FALSE(DecodePinnedStats(input).ok()) << "accepted: " << input;
  }
}

TEST(PinnedStatsTest, ToOverlayInstallsEveryStatistic) {
  PinnedStats stats;
  stats.doc_count = 100;
  stats.total_words = 5000;
  stats.terms.push_back({"foo", 17, 42});
  const index::StatsOverlay overlay = ToOverlay(stats);
  ASSERT_TRUE(overlay.collection_size().has_value());
  EXPECT_EQ(*overlay.collection_size(), 100u);
  ASSERT_TRUE(overlay.total_words().has_value());
  EXPECT_EQ(*overlay.total_words(), 5000u);
  ASSERT_TRUE(overlay.doc_freq("foo").has_value());
  EXPECT_EQ(*overlay.doc_freq("foo"), 17u);
  ASSERT_TRUE(overlay.collection_freq("foo").has_value());
  EXPECT_EQ(*overlay.collection_freq("foo"), 42u);
  EXPECT_FALSE(overlay.doc_freq("bar").has_value());
}

}  // namespace
}  // namespace graft::server
