// RouterService end-to-end over real sockets: a graft_router front end in
// front of three live shard servers. Covers the HTTP contract (bit-identical
// merged rankings, the always-present degradation fields, explain, /stats,
// /metrics, /healthz), input validation, partial degradation over HTTP when
// a shard dies, and fail-fast startup on an occupied port.

#include "router/router_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/request.h"
#include "index/inverted_index.h"
#include "mcalc/parser.h"
#include "server/http.h"
#include "server/search_service.h"
#include "text/corpus.h"

namespace graft::router {
namespace {

constexpr const char* kSchemes[] = {
    "AnySum",         "AnyProd", "SumBest",    "Lucene",
    "JoinNormalized", "MeanSum", "EventModel", "BestSumMinDist"};

constexpr const char* kQueries[] = {
    "san francisco fault line",
    "(windows emulator)WINDOW[50] (foss | \"free software\")",
    "free software !windows",
    "software",
};

constexpr size_t kShards = 3;
constexpr int kHttpTimeoutMs = 120000;

server::ServiceOptions LenientShardOptions() {
  server::ServiceOptions options;
  options.default_deadline_ms = 120000;
  options.max_deadline_ms = 120000;
  options.max_top_k = 100000;
  return options;
}

RouterOptions LenientRouterOptions() {
  RouterOptions options;
  options.default_deadline_ms = 120000;
  options.max_deadline_ms = 120000;
  options.max_top_k = 100000;
  options.io_timeout_ms = kHttpTimeoutMs;
  options.gather.client.max_attempts = 2;
  options.gather.client.backoff_base_ms = 1;
  options.gather.client.backoff_max_ms = 4;
  options.gather.client.io_timeout_ms = kHttpTimeoutMs;
  return options;
}

struct Fixture {
  core::EngineBundle full;
  std::vector<core::EngineBundle> shard_bundles;
  std::vector<std::unique_ptr<server::SearchService>> shards;
  std::unique_ptr<RouterService> router;
};

Fixture* MakeFixture() {
  auto* fixture = new Fixture();
  std::vector<std::vector<std::string>> docs;
  text::CorpusGenerator generator(text::WikipediaLikeConfig(400, /*seed=*/29));
  generator.Generate(
      [&docs](uint64_t, const std::vector<std::string_view>& tokens) {
        docs.emplace_back(tokens.begin(), tokens.end());
      });

  index::IndexBuilder full_builder;
  for (const auto& doc : docs) full_builder.AddDocumentStrings(doc);
  auto full = core::MakeEngineBundle(full_builder.Build(), 1, 0);
  EXPECT_TRUE(full.ok()) << full.status();
  fixture->full = std::move(full).value();

  const size_t chunk = (docs.size() + kShards - 1) / kShards;
  std::vector<std::vector<uint16_t>> replica_ports;
  for (size_t shard = 0; shard < kShards; ++shard) {
    index::IndexBuilder builder;
    const size_t begin = shard * chunk;
    const size_t end = std::min(docs.size(), begin + chunk);
    for (size_t i = begin; i < end; ++i) builder.AddDocumentStrings(docs[i]);
    auto bundle = core::MakeEngineBundle(builder.Build(), 1, 0);
    EXPECT_TRUE(bundle.ok()) << bundle.status();
    fixture->shard_bundles.push_back(std::move(bundle).value());
    fixture->shards.push_back(std::make_unique<server::SearchService>(
        fixture->shard_bundles.back().engine.get(), LenientShardOptions()));
    EXPECT_TRUE(fixture->shards.back()->Start().ok());
    replica_ports.push_back({fixture->shards.back()->port()});
  }
  fixture->router = std::make_unique<RouterService>(replica_ports,
                                                    LenientRouterOptions());
  EXPECT_TRUE(fixture->router->Start().ok());
  return fixture;
}

Fixture& Shared() {
  static Fixture& fixture = *MakeFixture();
  return fixture;
}

std::string SearchTarget(const std::string& query, const std::string& scheme,
                         size_t k) {
  return "/search?q=" + server::UrlEncode(query) + "&scheme=" + scheme +
         "&k=" + std::to_string(k);
}

std::string ExpectedFragment(const std::string& query,
                             const std::string& scheme, size_t k) {
  Fixture& fixture = Shared();
  core::SearchRequestParams params;
  params.query = query;
  params.scheme = scheme;
  params.top_k = k;
  auto resolved = core::ResolveRequest(*fixture.full.engine, params);
  EXPECT_TRUE(resolved.ok()) << resolved.status();
  auto result = fixture.full.engine->SearchQuery(
      resolved->query, *resolved->scheme, resolved->options);
  EXPECT_TRUE(result.ok()) << result.status();
  return server::SearchService::FormatResultsFragment(result->results);
}

server::HttpClientResponse Get(uint16_t port, const std::string& target) {
  auto response = server::HttpGet(port, target, kHttpTimeoutMs);
  EXPECT_TRUE(response.ok()) << target << ": " << response.status();
  return response.ok() ? *response : server::HttpClientResponse{};
}

TEST(RouterServiceTest, MergedRankingBitIdenticalToSingleProcess) {
  Fixture& fixture = Shared();
  for (const char* scheme : kSchemes) {
    for (const char* query : kQueries) {
      const auto response =
          Get(fixture.router->port(), SearchTarget(query, scheme, 10));
      ASSERT_EQ(response.status_code, 200) << scheme << " " << query << " "
                                           << response.body;
      EXPECT_NE(response.body.find(ExpectedFragment(query, scheme, 10)),
                std::string::npos)
          << scheme << " " << query << "\n" << response.body;
      EXPECT_NE(response.body.find("\"degraded\":false"), std::string::npos);
      EXPECT_NE(response.body.find("\"shards_ok\":3"), std::string::npos);
    }
  }
}

TEST(RouterServiceTest, ResponseCarriesDegradationContract) {
  Fixture& fixture = Shared();
  const auto response =
      Get(fixture.router->port(), SearchTarget("software", "MeanSum", 5));
  ASSERT_EQ(response.status_code, 200) << response.body;
  // The contract fields are present on every response, healthy or not.
  EXPECT_NE(response.body.find("\"degraded\":false"), std::string::npos);
  EXPECT_NE(response.body.find("\"shards_total\":3"), std::string::npos);
  EXPECT_NE(response.body.find("\"shards_ok\":3"), std::string::npos);
  EXPECT_NE(response.body.find("\"shards\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(response.body.find("\"timings\":{"), std::string::npos);
  // No explain block unless asked.
  EXPECT_EQ(response.body.find("\"explain\":"), std::string::npos);
}

TEST(RouterServiceTest, ExplainBlockReportsStatsEpochAndPolicy) {
  Fixture& fixture = Shared();
  const auto response = Get(
      fixture.router->port(),
      SearchTarget("free software", "Lucene", 5) + "&explain=1");
  ASSERT_EQ(response.status_code, 200) << response.body;
  EXPECT_NE(response.body.find("\"explain\":{"), std::string::npos);
  EXPECT_NE(response.body.find("\"stats_epoch\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"policy\":\"partial\""), std::string::npos);
  EXPECT_NE(response.body.find("\"terms\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"free\""), std::string::npos);
  EXPECT_NE(response.body.find("\"software\""), std::string::npos);
}

TEST(RouterServiceTest, RejectsMalformedRequests) {
  Fixture& fixture = Shared();
  const uint16_t port = fixture.router->port();
  // Missing q.
  EXPECT_EQ(Get(port, "/search?scheme=MeanSum").status_code, 400);
  // Unparseable query.
  EXPECT_EQ(Get(port, "/search?q=%28unclosed").status_code, 400);
  // k=0 (distributed top-all is refused, unlike the single server).
  EXPECT_EQ(Get(port, "/search?q=software&k=0").status_code, 400);
  // k over the cap.
  EXPECT_EQ(Get(port, "/search?q=software&k=999999999").status_code, 400);
  // Unknown scheme.
  EXPECT_EQ(Get(port, "/search?q=software&scheme=NoSuch").status_code, 404);
  // Unknown endpoint.
  EXPECT_EQ(Get(port, "/nosuch").status_code, 404);
  const auto& stats = fixture.router->stats();
  EXPECT_GE(stats.client_errors.load(), 6u);
}

TEST(RouterServiceTest, StatsEndpointReportsGatherCounters) {
  Fixture& fixture = Shared();
  // At least one successful search on record.
  ASSERT_EQ(
      Get(fixture.router->port(), SearchTarget("software", "MeanSum", 3))
          .status_code,
      200);
  const auto response = Get(fixture.router->port(), "/stats");
  ASSERT_EQ(response.status_code, 200);
  for (const char* field :
       {"\"requests_total\":", "\"responses_ok\":", "\"bad_gateway\":",
        "\"partial_responses\":", "\"gathers\":{\"total\":",
        "\"hedges_launched\":", "\"stats_refreshes\":", "\"gen_conflicts\":",
        "\"stats_epoch\":", "\"shards\":[", "\"search_latency\":",
        "\"by_scheme\":", "\"uptime_s\":"}) {
    EXPECT_NE(response.body.find(field), std::string::npos)
        << field << " missing from " << response.body;
  }
}

TEST(RouterServiceTest, MetricsExposeRouterAndPerShardSeries) {
  Fixture& fixture = Shared();
  ASSERT_EQ(
      Get(fixture.router->port(), SearchTarget("software", "AnySum", 3))
          .status_code,
      200);
  const auto response = Get(fixture.router->port(), "/metrics");
  ASSERT_EQ(response.status_code, 200);
  for (const char* series :
       {"graft_router_requests_total", "graft_router_responses_ok_total",
        "graft_router_bad_gateway_total",
        "graft_router_partial_responses_total", "graft_router_gathers_total",
        "graft_router_gathers_partial_total",
        "graft_router_hedges_launched_total",
        "graft_router_stats_refreshes_total",
        "graft_router_gen_conflicts_total", "graft_router_stats_epoch",
        "graft_router_shard_attempts_total{shard=\"0\"}",
        "graft_router_shard_failures_total{shard=\"1\"}",
        "graft_router_shard_ejections_total{shard=\"2\"}",
        "graft_router_shard_healthy_replicas{shard=\"0\"}",
        "graft_router_search_latency_seconds",
        "graft_router_uptime_seconds"}) {
    EXPECT_NE(response.body.find(series), std::string::npos)
        << series << " missing from " << response.body;
  }
}

TEST(RouterServiceTest, HealthzReportsPerShardReplicaHealth) {
  Fixture& fixture = Shared();
  const auto response = Get(fixture.router->port(), "/healthz");
  ASSERT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"shards\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"healthy\":1"), std::string::npos);
}

TEST(RouterServiceTest, ShardDeathDegradesOverHttp) {
  // Private topology: this test kills a shard. Shard engines are borrowed
  // from the shared fixture (non-owning services), only the processes'
  // stand-ins — the services — are private.
  Fixture& shared = Shared();
  std::vector<std::unique_ptr<server::SearchService>> services;
  std::vector<std::vector<uint16_t>> ports;
  for (size_t shard = 0; shard < kShards; ++shard) {
    services.push_back(std::make_unique<server::SearchService>(
        shared.shard_bundles[shard].engine.get(), LenientShardOptions()));
    ASSERT_TRUE(services.back()->Start().ok());
    ports.push_back({services.back()->port()});
  }
  RouterService router(ports, LenientRouterOptions());
  ASSERT_TRUE(router.Start().ok());

  const std::string target = SearchTarget("free software", "MeanSum", 10);
  const auto healthy = Get(router.port(), target);
  ASSERT_EQ(healthy.status_code, 200) << healthy.body;
  ASSERT_NE(healthy.body.find("\"degraded\":false"), std::string::npos);

  services[1]->Shutdown();
  const auto partial = Get(router.port(), target);
  ASSERT_EQ(partial.status_code, 200) << partial.body;
  EXPECT_NE(partial.body.find("\"degraded\":true"), std::string::npos)
      << partial.body;
  EXPECT_NE(partial.body.find("\"shards_ok\":2"), std::string::npos);
  EXPECT_NE(partial.body.find("\"outcome\":\"failed\""), std::string::npos);
  EXPECT_GE(router.stats().partial_responses.load(), 1u);

  // The metrics reflect the failure and the (eventual) ejection.
  const auto metrics = Get(router.port(), "/metrics");
  EXPECT_NE(
      metrics.body.find("graft_router_partial_responses_total 1"),
      std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("graft_router_shard_failures_total{shard=\"1\"}"),
            std::string::npos);

  // A cold-cache query against the degraded topology fails loudly: honest
  // global stats need every shard. 502, not a silently partial 200.
  const auto cold = Get(router.port(),
                        SearchTarget("emulator windows foss", "MeanSum", 10));
  EXPECT_EQ(cold.status_code, 502) << cold.body;
  EXPECT_GE(router.stats().bad_gateway.load(), 1u);
  router.Shutdown();
}

TEST(RouterServiceTest, FailPolicyAnswers502OnShardDeath) {
  Fixture& shared = Shared();
  std::vector<std::unique_ptr<server::SearchService>> services;
  std::vector<std::vector<uint16_t>> ports;
  for (size_t shard = 0; shard < kShards; ++shard) {
    services.push_back(std::make_unique<server::SearchService>(
        shared.shard_bundles[shard].engine.get(), LenientShardOptions()));
    ASSERT_TRUE(services.back()->Start().ok());
    ports.push_back({services.back()->port()});
  }
  RouterOptions options = LenientRouterOptions();
  options.gather.partial_policy = PartialPolicy::kFail;
  RouterService router(ports, options);
  ASSERT_TRUE(router.Start().ok());

  const std::string target = SearchTarget("software", "MeanSum", 10);
  ASSERT_EQ(Get(router.port(), target).status_code, 200);
  services[0]->Shutdown();
  const auto refused = Get(router.port(), target);
  EXPECT_EQ(refused.status_code, 502) << refused.body;
  EXPECT_NE(refused.body.find("partial results forbidden"), std::string::npos)
      << refused.body;
  router.Shutdown();
}

TEST(RouterServiceTest, StartFailsFastWhenPortTaken) {
  server::TcpListener squatter;
  ASSERT_TRUE(squatter.Bind(0).ok());
  RouterOptions options = LenientRouterOptions();
  options.port = squatter.port();
  RouterService router({{1}}, options);
  const Status status = router.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("already in use"), std::string::npos)
      << status;
  squatter.Close();
}

}  // namespace
}  // namespace graft::router
