// Section 5.2.3 / Section 8: "pre-counting yields significant performance
// gains over eager counting; we report a query with twenty-fold runtime
// speedup."
//
// The gap grows with the number of positions per document: eager counting
// walks the term-position postings (O(total positions)); the pre-counting
// Atomic Match Factory CA scans the much smaller term-document index
// (O(documents)). This bench sweeps occurrences-per-document and reports
// the speedup plus the memory-traffic counters that explain it.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "mcalc/parser.h"

int main() {
  using namespace graft;

  std::printf("Pre-counting vs eager counting (single free keyword, "
              "AnySum)\n");
  std::printf("%10s %8s | %12s %12s | %10s | %14s %14s\n", "positions/doc",
              "docs", "eager(ms)", "precount(ms)", "speedup", "pos-scanned",
              "count-scanned");
  std::printf("-----------------------------------------------------------"
              "----------------------------\n");

  for (const uint32_t per_doc : {4u, 16u, 64u, 256u, 1024u}) {
    // A dedicated corpus: one planted keyword with `per_doc` occurrences
    // in every document.
    const uint64_t docs = 8000;
    index::IndexBuilder builder;
    std::vector<std::string> tokens;
    Rng rng(per_doc);
    for (uint64_t d = 0; d < docs; ++d) {
      tokens.clear();
      const uint32_t len = per_doc * 3;
      for (uint32_t i = 0; i < len; ++i) {
        tokens.push_back("f" + std::to_string(rng.NextBounded(500)));
      }
      for (uint32_t i = 0; i < per_doc; ++i) {
        tokens[i * 3] = "needle";
      }
      builder.AddDocumentStrings(tokens);
    }
    index::InvertedIndex index = builder.Build();

    auto query = mcalc::ParseQuery("needle");
    const sa::ScoringScheme& scheme =
        *sa::SchemeRegistry::Global().Lookup("AnySum");

    core::OptimizerOptions eager;
    eager.eager_aggregation = false;
    eager.pre_counting = false;
    eager.alternate_elimination = false;
    core::OptimizerOptions pre = eager;
    pre.pre_counting = true;

    const auto measure = [&](const core::OptimizerOptions& options,
                             exec::ExecStats* stats) {
      core::Optimizer optimizer(&scheme, options);
      auto plan = optimizer.Optimize(*query, index);
      exec::Executor executor(&index, &scheme,
                              core::MakeQueryContext(*query));
      const double t = bench::MeasureSeconds([&] {
        auto r = executor.ExecuteRanked(*plan->plan);
        (void)r;
      });
      *stats = executor.stats();
      return t;
    };

    exec::ExecStats eager_stats;
    exec::ExecStats pre_stats;
    const double eager_time = measure(eager, &eager_stats);
    const double pre_time = measure(pre, &pre_stats);

    std::printf("%10u %8llu | %12.3f %12.3f | %9.1fx | %14llu %14llu\n",
                per_doc, static_cast<unsigned long long>(docs),
                eager_time * 1e3, pre_time * 1e3,
                pre_time > 0 ? eager_time / pre_time : 0.0,
                static_cast<unsigned long long>(
                    eager_stats.positions_scanned / 9),
                static_cast<unsigned long long>(
                    pre_stats.count_entries_scanned / 9));
  }
  std::printf("\nExpected shape (paper): the speedup scales with "
              "positions-per-document,\nreaching order-of-twenty-fold for "
              "position-heavy keywords, because CA touches\nno position "
              "memory at all.\n");
  return 0;
}
