// Rank-join / rank-union top-k (Section 5.2.1): early-termination gains
// for diagonal schemes with monotone combinators, against scoring every
// matching document.

#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"
#include "exec/rank_join.h"
#include "mcalc/parser.h"

int main() {
  using namespace graft;
  const index::InvertedIndex& index = bench::SharedBenchIndex();
  core::Engine engine(&index);

  struct Case {
    const char* label;
    const char* query;
    const char* scheme;
  };
  const Case cases[] = {
      {"rank-join", "free software", "Lucene"},
      {"rank-join", "free software", "AnySum"},
      {"rank-join", "free service internet", "Lucene"},
      {"rank-union", "fishing | hunting | dinosaur", "Lucene"},
      {"rank-union", "free | windows | service", "AnySum"},
  };

  std::printf("Top-k rank processing vs full evaluation\n");
  std::printf("%-10s %-28s %-8s %4s | %12s %12s %8s | %18s\n", "kind",
              "query", "scheme", "k", "full(ms)", "top-k(ms)", "speedup",
              "scored/candidates");
  std::printf("------------------------------------------------------------"
              "--------------------------------------\n");

  for (const Case& c : cases) {
    auto query = mcalc::ParseQuery(c.query);
    if (!query.ok()) continue;
    const sa::ScoringScheme& scheme =
        *sa::SchemeRegistry::Global().Lookup(c.scheme);
    if (!exec::TopKRankEngine::Supports(*query, scheme)) {
      std::printf("%-10s %-28s %-8s gate rejected\n", c.label, c.query,
                  c.scheme);
      continue;
    }
    for (const size_t k : {10u, 100u}) {
      core::SearchOptions full_options;
      full_options.allow_rank_processing = false;
      const double full_time = bench::MeasureSeconds([&] {
        auto r = engine.SearchQuery(*query, scheme, full_options);
        (void)r;
      });

      // Warm engine: the score-ordered streams (a real system's
      // impact-ordered postings) are built once and cached; the measured
      // time is pure rank-join consumption.
      exec::TopKRankEngine rank_engine(&index, &scheme);
      auto warm = rank_engine.TopK(*query, k);
      const exec::RankStats stats = rank_engine.stats();
      const double topk_time = bench::MeasureSeconds([&] {
        auto r = rank_engine.TopK(*query, k);
        (void)r;
      });
      std::printf("%-10s %-28s %-8s %4zu | %12.3f %12.3f %7.1fx | %8llu / "
                  "%llu\n",
                  c.label, c.query, c.scheme, k, full_time * 1e3,
                  topk_time * 1e3,
                  topk_time > 0 ? full_time / topk_time : 0.0,
                  static_cast<unsigned long long>(stats.candidates_scored),
                  static_cast<unsigned long long>(stats.total_candidates));
      (void)warm;
    }
  }
  std::printf("\nExpected shape: the threshold fires after examining a "
              "fraction of the\ncandidates; gains grow as k shrinks "
              "relative to the result count. (The\ntop-k path includes "
              "building score-ordered streams, which a production\nsystem "
              "would keep as impact-ordered postings.)\n");
  return 0;
}
