// Parallel query throughput: segment count × worker count sweep over the
// paper's evaluation queries (Section 8), reporting QPS and p50/p99
// latency per configuration, for full evaluation and for top-k=10.
//
// Emits BENCH_parallel_throughput.json in the working directory, then runs
// the block-max pruning sweep (pruned vs unpruned top-k over pure keyword
// queries, monolithic engine) and emits BENCH_topk_pruning.json with QPS
// for both modes, the skip counters, and docs scored — the artifact CI
// uploads to show pruning actually skips blocks without slowing the
// unpruned path. Finally the top-k operator sweep runs the four physical
// operators (MaxScore, HRJN, Fagin TA, Fagin NRA) head-to-head via
// SearchOptions::topk_strategy — each run bit-checked against the
// full-ranking prefix — and emits BENCH_topk_operators.json.
//
// Trace-overhead guard mode (GRAFT_BENCH_TRACE_OVERHEAD=1): instead of the
// sweep, measures the observability layer's cost and emits
// BENCH_trace_overhead.json.
//
// The enforced claim is the one trace.h makes: tracing *compiled in but
// disabled* (the production default) costs <2% QPS. QPS A/B cannot verify
// that in one binary — both arms pay the identical disabled-path cost, so
// their delta is definitionally noise. Instead the guard microbenchmarks
// the actual disabled hot path (one relaxed Tracer::enabled() load plus a
// null-QueryTrace ScopedSpan per instrumentation point), scales it by a
// realistic spans-per-query count, and bounds it against the measured
// per-query latency. If someone later puts allocation or locking on the
// disabled path, the per-op cost jumps by orders of magnitude and the
// bound trips deterministically — no flaky QPS comparison involved.
//
// The *enabled* layers are measured honestly and reported (not enforced):
//   off   tracing disabled — the baseline arm,
//   ring  global Tracer ring enabled (every query's spans recorded),
//   span  caller-supplied QueryTrace per query (EXPLAIN ANALYZE's cost),
//   off2  A/A repeat of `off` — its delta vs `off` is the run's noise
//         floor, printed next to ring/span so readers can judge them.
// Enabling the ring costs real money (~10-20% on sub-millisecond queries:
// per-span clock reads, string labels, a mutexed ring append) — it is a
// debugging control-plane switch, not a production default, and the JSON
// records that cost rather than pretending it away.
//
// With GRAFT_BENCH_ENFORCE=1 the process exits non-zero when the
// disabled-path bound is violated (the CI regression guard).
//
// Environment:
//   GRAFT_BENCH_DOCS            corpus size (default 30000)
//   GRAFT_BENCH_PAR_ROUNDS      rounds over the 8-query mix per
//                               configuration (default 5; raise for
//                               tighter tails; trace mode multiplies by 4)
//   GRAFT_BENCH_TRACE_OVERHEAD  1 = trace-overhead guard mode
//   GRAFT_BENCH_ENFORCE         1 = exit 1 when the 2% bound is violated
//
// Scores are segment-count-invariant (the parallel_consistency tests pin
// this down bit-for-bit), so every configuration does identical scoring
// work; the sweep isolates partitioning + scheduling + merge effects.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/trace.h"
#include "core/engine.h"
#include "index/segmented_index.h"

namespace {

struct ConfigResult {
  size_t segments;
  size_t workers;
  std::string mode;  // "full" or "topk10"
  double qps;
  double p50_ms;
  double p99_ms;
  size_t samples;
};

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

size_t Rounds() {
  const char* env = std::getenv("GRAFT_BENCH_PAR_ROUNDS");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 5;
}

// ---- Trace-overhead guard mode -------------------------------------------

struct TraceModeResult {
  const char* mode;
  double qps;
  double p50_ms;
  double p99_ms;
  size_t samples;
};

// Times the disabled-tracing hot path directly: one relaxed enabled()
// load plus a ScopedSpan over a null QueryTrace — exactly what every
// instrumentation point in the engine executes when tracing is off.
// Returns average nanoseconds per instrumentation point.
double MeasureDisabledPathNanos() {
  constexpr size_t kOps = 4'000'000;
  graft::common::Tracer& tracer = graft::common::Tracer::Global();
  tracer.Disable();
  size_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kOps; ++i) {
    if (tracer.enabled()) sink += i;
    graft::common::ScopedSpan span(nullptr, "probe");
    // Keep the loop and the span object observable so the compiler cannot
    // delete the measured work.
    asm volatile("" : "+r"(sink) : "r"(&span) : "memory");
  }
  const double total_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count();
  return total_ns / static_cast<double>(kOps);
}

// Runs the paper query mix with the observability layer in each of four
// modes, interleaved pass-by-pass so clock drift / thermal effects hit all
// modes equally. "off" and "off2" are identical configurations — their QPS
// difference is the run's noise floor, printed next to the deltas so a
// flaky violation is distinguishable from a real regression.
int RunTraceOverheadMode(const graft::index::InvertedIndex& index,
                         size_t rounds) {
  using namespace graft;
  core::Engine engine(&index);
  const char* scheme = "Lucene";
  constexpr const char* kModes[] = {"off", "ring", "span", "off2"};
  // 4 interleaved passes per round keeps total wall time comparable to one
  // sweep configuration.
  const size_t passes = rounds * 4;

  // Warm-up (index pages, score-stream caches) with tracing off.
  common::Tracer::Global().Disable();
  for (const bench::PaperQuery& q : bench::kPaperQueries) {
    auto r = engine.Search(q.text, scheme, core::SearchOptions{});
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", q.name,
                   r.status().ToString().c_str());
      return 1;
    }
  }

  std::vector<double> latencies[std::size(kModes)];
  double total_s[std::size(kModes)] = {};
  for (size_t pass = 0; pass < passes; ++pass) {
    for (size_t m = 0; m < std::size(kModes); ++m) {
      const bool ring = std::string(kModes[m]) == "ring";
      const bool span = std::string(kModes[m]) == "span";
      if (ring) {
        common::Tracer::Global().Enable(common::Tracer::kDefaultCapacity);
      } else {
        common::Tracer::Global().Disable();
      }
      // Repeat the mix within one timed pass so each pass is tens of
      // milliseconds — short passes drown the signal in scheduler jitter
      // (visible as a large A/A noise figure).
      constexpr size_t kMixRepeats = 20;
      const auto pass_start = std::chrono::steady_clock::now();
      for (size_t rep = 0; rep < kMixRepeats; ++rep) {
        for (const bench::PaperQuery& q : bench::kPaperQueries) {
          core::SearchOptions options;
          common::QueryTrace trace;
          if (span) options.trace = &trace;
          const auto start = std::chrono::steady_clock::now();
          auto r = engine.Search(q.text, scheme, options);
          const auto end = std::chrono::steady_clock::now();
          if (!r.ok()) return 1;
          latencies[m].push_back(
              std::chrono::duration<double, std::milli>(end - start)
                  .count());
        }
      }
      total_s[m] += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - pass_start)
                        .count();
    }
  }
  common::Tracer::Global().Disable();

  TraceModeResult results[std::size(kModes)];
  std::printf("Trace overhead (%llu docs, scheme %s, %zu passes x %zu "
              "queries per mode)\n",
              static_cast<unsigned long long>(index.doc_count()), scheme,
              passes, std::size(bench::kPaperQueries));
  std::printf("%6s | %10s %10s %10s\n", "mode", "QPS", "p50(ms)",
              "p99(ms)");
  std::printf("---------------------------------------\n");
  for (size_t m = 0; m < std::size(kModes); ++m) {
    std::sort(latencies[m].begin(), latencies[m].end());
    results[m] = TraceModeResult{
        kModes[m],
        total_s[m] > 0
            ? static_cast<double>(latencies[m].size()) / total_s[m]
            : 0.0,
        Percentile(latencies[m], 0.50), Percentile(latencies[m], 0.99),
        latencies[m].size()};
    std::printf("%6s | %10.1f %10.3f %10.3f\n", results[m].mode,
                results[m].qps, results[m].p50_ms, results[m].p99_ms);
  }

  const double off_qps = results[0].qps;
  const auto delta_pct = [off_qps](double qps) {
    return off_qps > 0 ? (off_qps - qps) / off_qps * 100.0 : 0.0;
  };
  const double ring_delta = delta_pct(results[1].qps);
  const double span_delta = delta_pct(results[2].qps);
  const double noise = std::fabs(delta_pct(results[3].qps));
  std::printf("\nenabled-layer cost (informational): ring %+.2f%%  "
              "span %+.2f%%  (A/A noise %.2f%%)\n",
              ring_delta, span_delta, noise);

  // The enforced bound: disabled-path cost per query < 2% of query time.
  // A query executes roughly kSpansPerQuery instrumentation points (parse,
  // optimize, one event per catalog rewrite, execute, per-segment, rank,
  // merge); size the per-query cost generously at twice today's count so
  // the bound keeps holding as spans are added.
  constexpr double kSpansPerQuery = 32.0;
  constexpr double kBoundPct = 2.0;
  const double per_op_ns = MeasureDisabledPathNanos();
  const double disabled_ns_per_query = per_op_ns * kSpansPerQuery;
  const double off_query_ns =
      off_qps > 0 ? 1e9 / off_qps : 0.0;
  const double disabled_pct =
      off_query_ns > 0 ? disabled_ns_per_query / off_query_ns * 100.0 : 0.0;
  const bool within = disabled_pct < kBoundPct;
  std::printf("disabled path: %.2f ns/instrumentation point x %.0f "
              "points = %.0f ns/query = %.4f%% of a %.0f ns query "
              "(bound %.1f%%) -> %s\n",
              per_op_ns, kSpansPerQuery, disabled_ns_per_query,
              disabled_pct, off_query_ns, kBoundPct,
              within ? "OK" : "VIOLATED");

  const char* out_path = "BENCH_trace_overhead.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"trace_overhead\",\n"
               "  \"doc_count\": %llu,\n  \"scheme\": \"%s\",\n"
               "  \"passes\": %zu,\n",
               static_cast<unsigned long long>(index.doc_count()), scheme,
               passes);
  bench::WriteHostParallelismFields(out, /*max_parallel=*/1);
  std::fprintf(out, "  \"modes\": [\n");
  for (size_t m = 0; m < std::size(kModes); ++m) {
    const TraceModeResult& r = results[m];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"qps\": %.2f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"samples\": %zu}%s\n",
                 r.mode, r.qps, r.p50_ms, r.p99_ms, r.samples,
                 m + 1 < std::size(kModes) ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"ring_delta_pct\": %.3f,\n"
               "  \"span_delta_pct\": %.3f,\n  \"aa_noise_pct\": %.3f,\n"
               "  \"disabled_ns_per_point\": %.3f,\n"
               "  \"disabled_points_per_query\": %.0f,\n"
               "  \"disabled_pct_of_query\": %.5f,\n"
               "  \"bound_pct\": %.1f,\n  \"within_bound\": %s\n}\n",
               ring_delta, span_delta, noise, per_op_ns, kSpansPerQuery,
               disabled_pct, kBoundPct, within ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);

  const char* enforce = std::getenv("GRAFT_BENCH_ENFORCE");
  if (!within && enforce != nullptr && std::string(enforce) != "0") {
    std::fprintf(stderr,
                 "disabled-tracing overhead bound violated "
                 "(%.4f%% >= %.1f%% of query time)\n",
                 disabled_pct, kBoundPct);
    return 1;
  }
  return 0;
}

// ---- Block-max pruning sweep ---------------------------------------------

// Pure keyword conjunctions/disjunctions — the only shapes the pruning
// gate admits. Phrases, windows, and mixed nesting fall back to the
// threshold engine regardless, so measuring them here would only dilute
// the signal.
struct PruningQuery {
  const char* name;
  const char* text;
};
constexpr PruningQuery kPruningQueries[] = {
    {"PK1", "san francisco fault line"},
    {"PK2", "dinosaur species list"},
    {"PK3", "image | picture | drawing | illustration"},
    {"PK4", "fishing | hunting | rules | regulations"},
    {"PK5", "windows emulator"},
    // Mid-frequency filler vocabulary: long posting lists (hundreds of
    // blocks) whose per-block max tf varies 1..4, the regime where whole-
    // block ceiling skips actually fire. The planted paper terms above
    // occur once per doc (uniform tf 1), so they exercise candidate
    // pruning but rarely block skips.
    {"PK6", "city"},
    {"PK7", "city state"},
    {"PK8", "city | state | world"},
};

struct PruningResult {
  const char* scheme;
  const char* name;
  size_t k;
  double pruned_qps;
  double unpruned_qps;
  uint64_t blocks_skipped;
  uint64_t blocks_decoded;  // distinct blocks the pruned operator read
  uint64_t blocks_total;    // Σ block_count over the query's term lists —
                            // what the unpruned top-k decodes to build its
                            // impact-ordered streams
  uint64_t ceiling_probes;
  uint64_t docs_scored_pruned;
  uint64_t docs_scored_unpruned;
};

int RunPruningSweep(const graft::index::InvertedIndex& index) {
  using namespace graft;
  core::Engine engine(&index);
  // Both licensed non-positional schemes: AnySum's saturating BM25 gives
  // tight block ceilings; Lucene's sqrt(tf) bound is looser, so the pair
  // brackets the pruning payoff.
  constexpr const char* kSchemes[] = {"AnySum", "Lucene"};

  // Posting blocks the unpruned top-k decodes for this query: every block
  // of every term list (the rank engine's stream build scans them all).
  const auto total_blocks = [&](const char* text) {
    uint64_t blocks = 0;
    std::istringstream in(text);
    std::string tok;
    while (in >> tok) {
      if (tok == "|") continue;
      const TermId term = index.LookupTerm(tok);
      if (term != kInvalidTerm) {
        blocks += index.postings(term).block_count();
      }
    }
    return blocks;
  };

  std::vector<PruningResult> results;
  std::printf("\nBlock-max pruning sweep (monolithic)\n");
  std::printf("%8s %5s %5s | %12s %12s %8s | %8s %8s %8s %10s %10s\n",
              "scheme", "query", "k", "pruned QPS", "unpruned", "delta",
              "blk skip", "blk dec", "blk tot", "scored(p)", "scored(u)");
  std::printf("-------------------------------------------------------------"
              "--------------------------------------------\n");

  for (const char* scheme : kSchemes) {
  for (const PruningQuery& q : kPruningQueries) {
    for (const size_t k : {size_t{10}, size_t{100}}) {
      core::SearchOptions pruned_opts;
      pruned_opts.top_k = k;
      core::SearchOptions unpruned_opts = pruned_opts;
      unpruned_opts.allow_block_max_pruning = false;

      // One instrumented run per mode for the counters (and to verify the
      // pruned plan actually fired).
      auto pruned = engine.Search(q.text, scheme, pruned_opts);
      auto unpruned = engine.Search(q.text, scheme, unpruned_opts);
      if (!pruned.ok() || !unpruned.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", q.name,
                     (!pruned.ok() ? pruned.status() : unpruned.status())
                         .ToString()
                         .c_str());
        return 1;
      }
      if (!pruned->used_block_max_pruning) {
        std::fprintf(stderr,
                     "%s: pruning did not fire (gate regression?)\n",
                     q.name);
        return 1;
      }
      // Pruning is score-safe: the two top-k lists must match
      // bit-for-bit. A cheap guard here catches soundness regressions in
      // the artifact itself, not just in the test suite.
      if (pruned->results.size() != unpruned->results.size()) {
        std::fprintf(stderr, "%s: pruned/unpruned size mismatch\n", q.name);
        return 1;
      }
      for (size_t i = 0; i < pruned->results.size(); ++i) {
        if (pruned->results[i].score != unpruned->results[i].score) {
          std::fprintf(stderr, "%s: score mismatch at rank %zu\n", q.name,
                       i);
          return 1;
        }
      }

      PruningResult r;
      r.scheme = scheme;
      r.name = q.name;
      r.k = k;
      r.blocks_skipped = pruned->exec_stats.topk_blocks_skipped;
      r.blocks_decoded = pruned->exec_stats.topk_blocks_decoded;
      r.blocks_total = total_blocks(q.text);
      r.ceiling_probes = pruned->exec_stats.topk_ceiling_probes;
      r.docs_scored_pruned = pruned->exec_stats.docs_scored;
      r.docs_scored_unpruned = unpruned->exec_stats.docs_scored;
      const double pruned_s = bench::MeasureSeconds([&] {
        auto res = engine.Search(q.text, scheme, pruned_opts);
        if (!res.ok()) std::abort();
      });
      const double unpruned_s = bench::MeasureSeconds([&] {
        auto res = engine.Search(q.text, scheme, unpruned_opts);
        if (!res.ok()) std::abort();
      });
      r.pruned_qps = pruned_s > 0 ? 1.0 / pruned_s : 0.0;
      r.unpruned_qps = unpruned_s > 0 ? 1.0 / unpruned_s : 0.0;
      results.push_back(r);
      const double delta_pct =
          r.unpruned_qps > 0
              ? (r.pruned_qps - r.unpruned_qps) / r.unpruned_qps * 100.0
              : 0.0;
      std::printf("%8s %5s %5zu | %12.1f %12.1f %+7.1f%% | %8llu %8llu "
                  "%8llu %10llu %10llu\n",
                  r.scheme, r.name, r.k, r.pruned_qps, r.unpruned_qps,
                  delta_pct,
                  static_cast<unsigned long long>(r.blocks_skipped),
                  static_cast<unsigned long long>(r.blocks_decoded),
                  static_cast<unsigned long long>(r.blocks_total),
                  static_cast<unsigned long long>(r.docs_scored_pruned),
                  static_cast<unsigned long long>(r.docs_scored_unpruned));
    }
  }
  }

  // The artifact's headline claim, enforced so a ceiling regression fails
  // CI instead of silently uploading a JSON full of zeros: at top-10 the
  // pruned operator must decode fewer posting blocks than the unpruned
  // top-k (which reads every block) and must land whole-block skips.
  uint64_t k10_decoded = 0;
  uint64_t k10_total = 0;
  uint64_t k10_skips = 0;
  for (const PruningResult& r : results) {
    if (r.k != 10) continue;
    k10_decoded += r.blocks_decoded;
    k10_total += r.blocks_total;
    k10_skips += r.blocks_skipped;
  }
  if (k10_decoded >= k10_total) {
    std::fprintf(stderr,
                 "top-10 pruned runs decoded %llu of %llu posting blocks — "
                 "no decode reduction over the unpruned top-k\n",
                 static_cast<unsigned long long>(k10_decoded),
                 static_cast<unsigned long long>(k10_total));
    return 1;
  }
  if (k10_skips == 0) {
    std::fprintf(stderr,
                 "no top-10 run skipped a single block — the ceilings have "
                 "gone loose (frontier regression?)\n");
    return 1;
  }
  std::printf("top-10 decode: %llu of %llu posting blocks (%llu whole-block "
              "skips)\n",
              static_cast<unsigned long long>(k10_decoded),
              static_cast<unsigned long long>(k10_total),
              static_cast<unsigned long long>(k10_skips));

  const char* out_path = "BENCH_topk_pruning.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"topk_pruning\",\n"
               "  \"doc_count\": %llu,\n",
               static_cast<unsigned long long>(index.doc_count()));
  bench::WriteHostParallelismFields(out, /*max_parallel=*/1);
  std::fprintf(out, "  \"queries\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const PruningResult& r = results[i];
    std::fprintf(
        out,
        "    {\"scheme\": \"%s\", \"query\": \"%s\", \"k\": %zu, "
        "\"pruned_qps\": %.2f, "
        "\"unpruned_qps\": %.2f, \"blocks_skipped\": %llu, "
        "\"blocks_decoded_pruned\": %llu, \"blocks_total\": %llu, "
        "\"ceiling_probes\": %llu, \"docs_scored_pruned\": %llu, "
        "\"docs_scored_unpruned\": %llu}%s\n",
        r.scheme, r.name, r.k, r.pruned_qps, r.unpruned_qps,
        static_cast<unsigned long long>(r.blocks_skipped),
        static_cast<unsigned long long>(r.blocks_decoded),
        static_cast<unsigned long long>(r.blocks_total),
        static_cast<unsigned long long>(r.ceiling_probes),
        static_cast<unsigned long long>(r.docs_scored_pruned),
        static_cast<unsigned long long>(r.docs_scored_unpruned),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}

// ---- Top-k operator sweep (TA / NRA vs MaxScore / HRJN) ------------------

// Head-to-head over the four top-k physical operators, selected through
// SearchOptions::topk_strategy on the same pure-keyword query mix as the
// pruning sweep. Every run is checked bit-identical against the
// full-ranking + truncate reference before it is timed — the sweep is also
// a soundness self-check, so a threshold-bound regression fails the bench
// instead of shipping a JSON of fast-but-wrong numbers.
struct OperatorResult {
  const char* scheme;
  const char* name;
  size_t k;
  const char* op;  // "maxscore", "hrjn", "ta", "nra"
  double qps;
  uint64_t sorted_accesses;
  uint64_t random_accesses;
  uint64_t bound_refinements;
  uint64_t docs_scored;
  uint64_t docs_pruned;
};

int RunTopKOperatorSweep(const graft::index::InvertedIndex& index) {
  using namespace graft;
  core::Engine engine(&index);
  constexpr const char* kSchemes[] = {"AnySum", "Lucene"};
  struct Strategy {
    const char* op;
    core::TopKStrategy strategy;
    bool allow_pruning;
  };
  constexpr Strategy kStrategies[] = {
      {"maxscore", core::TopKStrategy::kAuto, true},
      {"hrjn", core::TopKStrategy::kAuto, false},
      {"ta", core::TopKStrategy::kThreshold, false},
      {"nra", core::TopKStrategy::kNra, false},
  };

  std::vector<OperatorResult> results;
  std::printf("\nTop-k operator sweep (monolithic; every run bit-checked "
              "against full ranking + truncate)\n");
  std::printf("%8s %5s %5s %9s | %12s | %10s %10s %10s %10s\n", "scheme",
              "query", "k", "operator", "QPS", "sorted", "random", "bounds",
              "scored");
  std::printf("-------------------------------------------------------------"
              "---------------------------\n");

  for (const char* scheme : kSchemes) {
    for (const PruningQuery& q : kPruningQueries) {
      for (const size_t k : {size_t{10}, size_t{100}}) {
        // Reference: the optimized full ranking's prefix, the one result
        // every top-k operator claims to reproduce bit-for-bit.
        core::SearchOptions reference_opts;
        reference_opts.top_k = k;
        reference_opts.allow_rank_processing = false;
        auto reference = engine.Search(q.text, scheme, reference_opts);
        if (!reference.ok()) {
          std::fprintf(stderr, "%s reference failed: %s\n", q.name,
                       reference.status().ToString().c_str());
          return 1;
        }

        for (const Strategy& strategy : kStrategies) {
          core::SearchOptions options;
          options.top_k = k;
          options.topk_strategy = strategy.strategy;
          options.allow_block_max_pruning = strategy.allow_pruning;

          auto run = engine.Search(q.text, scheme, options);
          if (!run.ok()) {
            std::fprintf(stderr, "%s/%s failed: %s\n", q.name, strategy.op,
                         run.status().ToString().c_str());
            return 1;
          }
          if (run->topk_operator != strategy.op) {
            std::fprintf(stderr,
                         "%s/%s: expected operator %s but the engine ran "
                         "'%s' (gate regression?)\n",
                         q.name, scheme, strategy.op,
                         run->topk_operator.c_str());
            return 1;
          }
          // Bit-identity self-check: same count, same score sequence.
          if (run->results.size() != reference->results.size()) {
            std::fprintf(stderr, "%s/%s: %zu results vs reference %zu\n",
                         q.name, strategy.op, run->results.size(),
                         reference->results.size());
            return 1;
          }
          for (size_t i = 0; i < run->results.size(); ++i) {
            if (run->results[i].score != reference->results[i].score) {
              std::fprintf(stderr,
                           "%s/%s: score mismatch at rank %zu "
                           "(%.17g vs %.17g)\n",
                           q.name, strategy.op, i, run->results[i].score,
                           reference->results[i].score);
              return 1;
            }
          }

          OperatorResult r;
          r.scheme = scheme;
          r.name = q.name;
          r.k = k;
          r.op = strategy.op;
          r.sorted_accesses = run->exec_stats.topk_sorted_accesses;
          r.random_accesses = run->exec_stats.topk_random_accesses;
          r.bound_refinements = run->exec_stats.topk_bound_refinements;
          r.docs_scored = run->exec_stats.docs_scored;
          r.docs_pruned = run->exec_stats.docs_pruned;
          const double seconds = bench::MeasureSeconds([&] {
            auto res = engine.Search(q.text, scheme, options);
            if (!res.ok()) std::abort();
          });
          r.qps = seconds > 0 ? 1.0 / seconds : 0.0;
          results.push_back(r);
          std::printf(
              "%8s %5s %5zu %9s | %12.1f | %10llu %10llu %10llu %10llu\n",
              r.scheme, r.name, r.k, r.op, r.qps,
              static_cast<unsigned long long>(r.sorted_accesses),
              static_cast<unsigned long long>(r.random_accesses),
              static_cast<unsigned long long>(r.bound_refinements),
              static_cast<unsigned long long>(r.docs_scored));
        }
      }
    }
  }

  const char* out_path = "BENCH_topk_operators.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"topk_operators\",\n"
               "  \"doc_count\": %llu,\n"
               "  \"bit_identity_checked\": true,\n",
               static_cast<unsigned long long>(index.doc_count()));
  bench::WriteHostParallelismFields(out, /*max_parallel=*/1);
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const OperatorResult& r = results[i];
    std::fprintf(
        out,
        "    {\"scheme\": \"%s\", \"query\": \"%s\", \"k\": %zu, "
        "\"operator\": \"%s\", \"qps\": %.2f, \"sorted_accesses\": %llu, "
        "\"random_accesses\": %llu, \"bound_refinements\": %llu, "
        "\"docs_scored\": %llu, \"docs_pruned\": %llu}%s\n",
        r.scheme, r.name, r.k, r.op, r.qps,
        static_cast<unsigned long long>(r.sorted_accesses),
        static_cast<unsigned long long>(r.random_accesses),
        static_cast<unsigned long long>(r.bound_refinements),
        static_cast<unsigned long long>(r.docs_scored),
        static_cast<unsigned long long>(r.docs_pruned),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}

}  // namespace

int main() {
  using namespace graft;
  const index::InvertedIndex& index = bench::SharedBenchIndex();
  const size_t rounds = Rounds();
  const char* trace_mode = std::getenv("GRAFT_BENCH_TRACE_OVERHEAD");
  if (trace_mode != nullptr && std::string(trace_mode) != "0") {
    return RunTraceOverheadMode(index, rounds);
  }
  constexpr size_t kSegmentCounts[] = {1, 2, 4, 8};
  constexpr size_t kWorkerCounts[] = {1, 2, 4};
  const char* scheme = "Lucene";

  std::vector<ConfigResult> results;
  std::printf("Parallel throughput sweep (%llu docs, scheme %s, %zu rounds "
              "x %zu queries)\n",
              static_cast<unsigned long long>(index.doc_count()), scheme,
              rounds, std::size(bench::kPaperQueries));
  std::printf("%9s %8s %7s | %10s %10s %10s\n", "segments", "workers",
              "mode", "QPS", "p50(ms)", "p99(ms)");
  std::printf("--------------------------------------------------------\n");

  for (const size_t segments : kSegmentCounts) {
    auto segmented = index::SegmentedIndex::BuildFromMonolithic(index,
                                                               segments);
    if (!segmented.ok()) {
      std::fprintf(stderr, "segmentation failed: %s\n",
                   segmented.status().ToString().c_str());
      return 1;
    }
    // One pool sized for the largest worker count; SearchOptions caps the
    // per-query concurrency below that.
    const size_t max_workers =
        *std::max_element(std::begin(kWorkerCounts), std::end(kWorkerCounts));
    core::Engine engine(&index, &*segmented, max_workers - 1);

    for (const size_t workers : kWorkerCounts) {
      for (const bool topk : {false, true}) {
        core::SearchOptions options;
        options.num_threads = workers;
        options.top_k = topk ? 10 : 0;

        // Warm-up pass (index pages, score-stream caches).
        for (const bench::PaperQuery& q : bench::kPaperQueries) {
          auto r = engine.Search(q.text, scheme, options);
          if (!r.ok()) {
            std::fprintf(stderr, "%s failed: %s\n", q.name,
                         r.status().ToString().c_str());
            return 1;
          }
        }

        std::vector<double> latencies_ms;
        latencies_ms.reserve(rounds * std::size(bench::kPaperQueries));
        const auto sweep_start = std::chrono::steady_clock::now();
        for (size_t round = 0; round < rounds; ++round) {
          for (const bench::PaperQuery& q : bench::kPaperQueries) {
            const auto start = std::chrono::steady_clock::now();
            auto r = engine.Search(q.text, scheme, options);
            const auto end = std::chrono::steady_clock::now();
            if (!r.ok()) return 1;
            latencies_ms.push_back(
                std::chrono::duration<double, std::milli>(end - start)
                    .count());
          }
        }
        const double total_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          sweep_start)
                .count();
        std::sort(latencies_ms.begin(), latencies_ms.end());
        ConfigResult result;
        result.segments = segments;
        result.workers = workers;
        result.mode = topk ? "topk10" : "full";
        result.samples = latencies_ms.size();
        result.qps = total_s > 0
                         ? static_cast<double>(latencies_ms.size()) / total_s
                         : 0.0;
        result.p50_ms = Percentile(latencies_ms, 0.50);
        result.p99_ms = Percentile(latencies_ms, 0.99);
        results.push_back(result);
        std::printf("%9zu %8zu %7s | %10.1f %10.3f %10.3f\n", segments,
                    workers, result.mode.c_str(), result.qps, result.p50_ms,
                    result.p99_ms);
      }
    }
  }

  const char* out_path = "BENCH_parallel_throughput.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"parallel_throughput\",\n"
               "  \"doc_count\": %llu,\n  \"scheme\": \"%s\",\n",
               static_cast<unsigned long long>(index.doc_count()), scheme);
  // The widest configuration the sweep asks the host to run in parallel.
  bench::WriteHostParallelismFields(
      out, std::max(*std::max_element(std::begin(kSegmentCounts),
                                      std::end(kSegmentCounts)),
                    *std::max_element(std::begin(kWorkerCounts),
                                      std::end(kWorkerCounts))));
  std::fprintf(out, "  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(out,
                 "    {\"segments\": %zu, \"workers\": %zu, "
                 "\"mode\": \"%s\", \"qps\": %.2f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"samples\": %zu}%s\n",
                 r.segments, r.workers, r.mode.c_str(), r.qps, r.p50_ms,
                 r.p99_ms, r.samples, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  std::printf("Note: speedup from workers > 1 requires multiple physical "
              "cores; on a\nsingle-core host the sweep measures "
              "partitioning + merge overhead only.\n");
  // Run both sweeps even when one fails its self-check, so CI uploads
  // every artifact it can before the step goes red.
  const int pruning_rc = RunPruningSweep(index);
  const int operators_rc = RunTopKOperatorSweep(index);
  return pruning_rc != 0 ? pruning_rc : operators_rc;
}
