// Parallel query throughput: segment count × worker count sweep over the
// paper's evaluation queries (Section 8), reporting QPS and p50/p99
// latency per configuration, for full evaluation and for top-k=10.
//
// Emits BENCH_parallel_throughput.json in the working directory.
//
// Environment:
//   GRAFT_BENCH_DOCS        corpus size (default 30000)
//   GRAFT_BENCH_PAR_ROUNDS  rounds over the 8-query mix per configuration
//                           (default 5; raise for tighter tails)
//
// Scores are segment-count-invariant (the parallel_consistency tests pin
// this down bit-for-bit), so every configuration does identical scoring
// work; the sweep isolates partitioning + scheduling + merge effects.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "index/segmented_index.h"

namespace {

struct ConfigResult {
  size_t segments;
  size_t workers;
  std::string mode;  // "full" or "topk10"
  double qps;
  double p50_ms;
  double p99_ms;
  size_t samples;
};

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

size_t Rounds() {
  const char* env = std::getenv("GRAFT_BENCH_PAR_ROUNDS");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 5;
}

}  // namespace

int main() {
  using namespace graft;
  const index::InvertedIndex& index = bench::SharedBenchIndex();
  const size_t rounds = Rounds();
  constexpr size_t kSegmentCounts[] = {1, 2, 4, 8};
  constexpr size_t kWorkerCounts[] = {1, 2, 4};
  const char* scheme = "Lucene";

  std::vector<ConfigResult> results;
  std::printf("Parallel throughput sweep (%llu docs, scheme %s, %zu rounds "
              "x %zu queries)\n",
              static_cast<unsigned long long>(index.doc_count()), scheme,
              rounds, std::size(bench::kPaperQueries));
  std::printf("%9s %8s %7s | %10s %10s %10s\n", "segments", "workers",
              "mode", "QPS", "p50(ms)", "p99(ms)");
  std::printf("--------------------------------------------------------\n");

  for (const size_t segments : kSegmentCounts) {
    auto segmented = index::SegmentedIndex::BuildFromMonolithic(index,
                                                               segments);
    if (!segmented.ok()) {
      std::fprintf(stderr, "segmentation failed: %s\n",
                   segmented.status().ToString().c_str());
      return 1;
    }
    // One pool sized for the largest worker count; SearchOptions caps the
    // per-query concurrency below that.
    const size_t max_workers =
        *std::max_element(std::begin(kWorkerCounts), std::end(kWorkerCounts));
    core::Engine engine(&index, &*segmented, max_workers - 1);

    for (const size_t workers : kWorkerCounts) {
      for (const bool topk : {false, true}) {
        core::SearchOptions options;
        options.num_threads = workers;
        options.top_k = topk ? 10 : 0;

        // Warm-up pass (index pages, score-stream caches).
        for (const bench::PaperQuery& q : bench::kPaperQueries) {
          auto r = engine.Search(q.text, scheme, options);
          if (!r.ok()) {
            std::fprintf(stderr, "%s failed: %s\n", q.name,
                         r.status().ToString().c_str());
            return 1;
          }
        }

        std::vector<double> latencies_ms;
        latencies_ms.reserve(rounds * std::size(bench::kPaperQueries));
        const auto sweep_start = std::chrono::steady_clock::now();
        for (size_t round = 0; round < rounds; ++round) {
          for (const bench::PaperQuery& q : bench::kPaperQueries) {
            const auto start = std::chrono::steady_clock::now();
            auto r = engine.Search(q.text, scheme, options);
            const auto end = std::chrono::steady_clock::now();
            if (!r.ok()) return 1;
            latencies_ms.push_back(
                std::chrono::duration<double, std::milli>(end - start)
                    .count());
          }
        }
        const double total_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          sweep_start)
                .count();
        std::sort(latencies_ms.begin(), latencies_ms.end());
        ConfigResult result;
        result.segments = segments;
        result.workers = workers;
        result.mode = topk ? "topk10" : "full";
        result.samples = latencies_ms.size();
        result.qps = total_s > 0
                         ? static_cast<double>(latencies_ms.size()) / total_s
                         : 0.0;
        result.p50_ms = Percentile(latencies_ms, 0.50);
        result.p99_ms = Percentile(latencies_ms, 0.99);
        results.push_back(result);
        std::printf("%9zu %8zu %7s | %10.1f %10.3f %10.3f\n", segments,
                    workers, result.mode.c_str(), result.qps, result.p50_ms,
                    result.p99_ms);
      }
    }
  }

  const char* out_path = "BENCH_parallel_throughput.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"parallel_throughput\",\n"
               "  \"doc_count\": %llu,\n  \"scheme\": \"%s\",\n"
               "  \"hardware_concurrency\": %u,\n  \"configs\": [\n",
               static_cast<unsigned long long>(index.doc_count()), scheme,
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(out,
                 "    {\"segments\": %zu, \"workers\": %zu, "
                 "\"mode\": \"%s\", \"qps\": %.2f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"samples\": %zu}%s\n",
                 r.segments, r.workers, r.mode.c_str(), r.qps, r.p50_ms,
                 r.p99_ms, r.samples, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  std::printf("Note: speedup from workers > 1 requires multiple physical "
              "cores; on a\nsingle-core host the sweep measures "
              "partitioning + merge overhead only.\n");
  return 0;
}
