// Shared benchmark infrastructure.
//
// Corpus: a Wikipedia-like synthetic collection (default 30k documents,
// ~7M words; override with GRAFT_BENCH_DOCS). Built once and cached on
// disk next to the build tree so the eleven bench binaries don't each pay
// generation + indexing.
//
// Timing follows the paper's methodology (Section 8): each measurement is
// repeated nine times in succession and we report the average of the five
// median times. All measurements are warm-cache and single-threaded.

#ifndef GRAFT_BENCH_BENCH_UTIL_H_
#define GRAFT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "index/index_io.h"
#include "index/inverted_index.h"
#include "text/corpus.h"

namespace graft::bench {

inline uint64_t BenchDocCount() {
  const char* env = std::getenv("GRAFT_BENCH_DOCS");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<uint64_t>(parsed);
  }
  return 30000;
}

inline const index::InvertedIndex& SharedBenchIndex() {
  static const index::InvertedIndex& index = *[] {
    const uint64_t docs = BenchDocCount();
    // Bump the version whenever WikipediaLikeConfig OR the index file
    // format changes (v4 = block-max metadata; an older cache would load
    // fine but without block-max arrays, silently disabling the pruning
    // benchmarks — so the name forces a rebuild).
    const std::string cache_path =
        "graft_bench_v4_" + std::to_string(docs) + ".idx";
    auto loaded = index::LoadIndex(cache_path);
    if (loaded.ok()) {
      std::fprintf(stderr, "[bench] loaded cached index %s\n",
                   cache_path.c_str());
      return new index::InvertedIndex(std::move(loaded).value());
    }
    std::fprintf(stderr,
                 "[bench] building %llu-document corpus (cache miss)...\n",
                 static_cast<unsigned long long>(docs));
    text::CorpusConfig config = text::WikipediaLikeConfig(docs);
    index::IndexBuilder builder;
    text::CorpusGenerator generator(config);
    generator.Generate(
        [&builder](uint64_t, const std::vector<std::string_view>& tokens) {
          builder.AddDocument(tokens);
        });
    auto* built = new index::InvertedIndex(builder.Build());
    const Status saved = index::SaveIndex(*built, cache_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "[bench] cache save failed: %s\n",
                   saved.ToString().c_str());
    }
    std::fprintf(stderr, "[bench] corpus: %llu docs, %llu words, %zu terms\n",
                 static_cast<unsigned long long>(built->doc_count()),
                 static_cast<unsigned long long>(built->total_words()),
                 built->term_count());
    return built;
  }();
  return index;
}

// Every bench JSON writer records the host's core count next to the
// parallelism the sweep asked for. A result measured on a machine with
// fewer cores than the sweep's widest segment/thread configuration
// understates parallel speedups; the artifact carries an explicit
// "warning" field in that case instead of leaving the reader to notice.
// Emits into an open JSON object; trailing comma included.
inline void WriteHostParallelismFields(std::FILE* out, size_t max_parallel) {
  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", cores);
  if (cores != 0 && max_parallel > cores) {
    std::fprintf(out,
                 "  \"warning\": \"sweep requests %zu-way parallelism but "
                 "the host reports %u cores; parallel speedups are "
                 "understated\",\n",
                 max_parallel, cores);
  }
}

// Paper methodology: nine repetitions, average of the five medians. For
// sub-millisecond work, each repetition is an inner loop calibrated to run
// at least ~10 ms so clock granularity and scheduler noise wash out; the
// reported time is per single execution.
inline double MeasureSeconds(const std::function<void()>& fn) {
  // Calibrate the inner repetition count.
  uint64_t inner = 1;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < inner; ++i) {
      fn();
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (elapsed >= 0.01 || inner >= (1u << 20)) {
      break;
    }
    inner *= elapsed <= 0.001 ? 8 : 2;
  }

  std::vector<double> times;
  times.reserve(9);
  for (int run = 0; run < 9; ++run) {
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < inner; ++i) {
      fn();
    }
    const auto end = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double>(end - start).count() /
                    static_cast<double>(inner));
  }
  std::sort(times.begin(), times.end());
  double total = 0.0;
  for (int i = 2; i <= 6; ++i) {
    total += times[i];
  }
  return total / 5.0;
}

struct PaperQuery {
  const char* name;
  const char* text;
  bool baseline_supported;  // Lucene/Terrier support (no WINDOW)
};

// The paper's evaluation queries (Section 8).
inline constexpr PaperQuery kPaperQueries[] = {
    {"Q4", "san francisco fault line", true},
    {"Q5",
     "dinosaur species list (image | picture | drawing | illustration)",
     true},
    {"Q6", "\"orange county convention center\" orlando", true},
    {"Q7", "\"san francisco\" \"fault line\"", true},
    {"Q8", "(windows emulator)WINDOW[50] (foss | \"free software\")", false},
    {"Q9", "(free wireless internet)PROXIMITY[10] service", true},
    {"Q10", "arizona ((fishing | hunting) (rules | regulations))WINDOW[20]",
     false},
    {"Q11",
     "\"rick warren\" (obama inauguration)PROXIMITY[4] "
     "(controversy invocation)PROXIMITY[15]",
     true},
};

}  // namespace graft::bench

#endif  // GRAFT_BENCH_BENCH_UTIL_H_
