// Closed-loop load generator for the embedded HTTP search service.
//
// Starts a SearchService in-process on an ephemeral port, then sweeps the
// number of closed-loop client threads (each thread issues a request,
// waits for the full response, and immediately issues the next one) over a
// fixed wall-clock window per configuration. The request mix rotates
// through the paper's evaluation queries (Section 8) and all eight
// registered scoring schemes, top-k = 10.
//
// Reported per configuration: client-observed QPS and p50/p95/p99/max
// latency (measured connect-to-last-byte, which includes queueing in the
// service's admission window), plus server-side counters so overload
// rejections (503) and deadline misses (504) are visible rather than
// silently folded into averages.
//
// Emits BENCH_server_load.json in the working directory.
//
// Environment:
//   GRAFT_BENCH_DOCS          corpus size (default 30000)
//   GRAFT_BENCH_LOAD_SECONDS  measurement window per configuration
//                             (default 2; raise for tighter tails)
//   GRAFT_BENCH_LOAD_CLIENTS  max client threads in the sweep (default 8)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "index/segmented_index.h"
#include "server/http.h"
#include "server/search_service.h"

namespace {

using graft::server::HttpGet;
using graft::server::UrlEncode;

constexpr const char* kSchemes[] = {
    "AnySum",         "AnyProd", "SumBest",    "Lucene",
    "JoinNormalized", "MeanSum", "EventModel", "BestSumMinDist"};

struct ConfigResult {
  size_t clients;
  size_t requests;
  size_t errors;            // transport failures or non-200 responses
  double qps;
  double p50_ms;
  double p95_ms;
  double p99_ms;
  double max_ms;
  uint64_t server_ok;
  uint64_t server_rejected;  // 503 admission rejections
  uint64_t server_deadline;  // 504 deadline misses
};

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return fallback;
}

}  // namespace

int main() {
  using namespace graft;
  const index::InvertedIndex& index = bench::SharedBenchIndex();
  const double window_s =
      static_cast<double>(EnvCount("GRAFT_BENCH_LOAD_SECONDS", 2));
  const size_t max_clients = EnvCount("GRAFT_BENCH_LOAD_CLIENTS", 8);

  constexpr size_t kSegments = 4;
  auto segmented = index::SegmentedIndex::BuildFromMonolithic(index,
                                                             kSegments);
  if (!segmented.ok()) {
    std::fprintf(stderr, "segmentation failed: %s\n",
                 segmented.status().ToString().c_str());
    return 1;
  }
  core::Engine engine(&index, &*segmented, /*extra_threads=*/kSegments - 1);

  server::ServiceOptions options;
  options.default_deadline_ms = 30000;  // measure latency, not deadline cuts
  server::SearchService service(&engine, options);
  const Status started = service.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "service start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  // Pre-encode the request-target mix: paper queries × all schemes.
  std::vector<std::string> targets;
  for (const bench::PaperQuery& q : bench::kPaperQueries) {
    for (const char* scheme : kSchemes) {
      targets.push_back("/search?q=" + UrlEncode(q.text) +
                        "&scheme=" + std::string(scheme) + "&k=10");
    }
  }

  std::vector<size_t> client_counts;
  for (size_t c = 1; c <= max_clients; c *= 2) client_counts.push_back(c);

  std::printf("Server load sweep (%llu docs, %zu segments, %zu targets, "
              "%.0fs window)\n",
              static_cast<unsigned long long>(index.doc_count()), kSegments,
              targets.size(), window_s);
  std::printf("%8s | %9s %10s %9s %9s %9s | %6s %6s\n", "clients",
              "requests", "QPS", "p50(ms)", "p95(ms)", "p99(ms)", "errs",
              "503s");
  std::printf(
      "----------------------------------------------------------------------"
      "--\n");

  std::vector<ConfigResult> results;
  for (const size_t clients : client_counts) {
    // Warm-up: one pass over the mix so first-touch costs stay out of the
    // measured window.
    for (const std::string& target : targets) {
      auto r = HttpGet(service.port(), target);
      if (!r.ok() || r->status_code != 200) {
        std::fprintf(stderr, "warm-up failed on %s\n", target.c_str());
        return 1;
      }
    }

    const uint64_t ok_before = service.stats().responses_ok.load();
    const uint64_t rejected_before =
        service.stats().rejected_overload.load();
    const uint64_t deadline_before =
        service.stats().deadline_exceeded.load();

    std::atomic<bool> stop{false};
    std::atomic<size_t> errors{0};
    std::vector<std::vector<double>> per_client_ms(clients);
    std::vector<std::thread> threads;
    const auto window_start = std::chrono::steady_clock::now();
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        size_t i = c * 13;  // de-phase the clients across the mix
        while (!stop.load(std::memory_order_relaxed)) {
          const std::string& target = targets[i++ % targets.size()];
          const auto start = std::chrono::steady_clock::now();
          auto r = HttpGet(service.port(), target);
          const auto end = std::chrono::steady_clock::now();
          if (!r.ok() || r->status_code != 200) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          per_client_ms[c].push_back(
              std::chrono::duration<double, std::milli>(end - start)
                  .count());
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(window_s));
    stop.store(true);
    for (std::thread& t : threads) t.join();
    const double elapsed_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 window_start)
                                 .count();

    std::vector<double> latencies_ms;
    for (const std::vector<double>& v : per_client_ms)
      latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
    std::sort(latencies_ms.begin(), latencies_ms.end());

    ConfigResult result;
    result.clients = clients;
    result.requests = latencies_ms.size();
    result.errors = errors.load();
    result.qps = elapsed_s > 0
                     ? static_cast<double>(latencies_ms.size()) / elapsed_s
                     : 0.0;
    result.p50_ms = Percentile(latencies_ms, 0.50);
    result.p95_ms = Percentile(latencies_ms, 0.95);
    result.p99_ms = Percentile(latencies_ms, 0.99);
    result.max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();
    result.server_ok = service.stats().responses_ok.load() - ok_before;
    result.server_rejected =
        service.stats().rejected_overload.load() - rejected_before;
    result.server_deadline =
        service.stats().deadline_exceeded.load() - deadline_before;
    results.push_back(result);
    std::printf("%8zu | %9zu %10.1f %9.3f %9.3f %9.3f | %6zu %6llu\n",
                result.clients, result.requests, result.qps, result.p50_ms,
                result.p95_ms, result.p99_ms, result.errors,
                static_cast<unsigned long long>(result.server_rejected));
  }

  service.Shutdown();

  const char* out_path = "BENCH_server_load.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"server_load\",\n"
               "  \"doc_count\": %llu,\n  \"segments\": %zu,\n"
               "  \"targets\": %zu,\n  \"window_seconds\": %.1f,\n",
               static_cast<unsigned long long>(index.doc_count()), kSegments,
               targets.size(), window_s);
  // Each in-flight query fans across kSegments engine workers.
  bench::WriteHostParallelismFields(out, kSegments);
  std::fprintf(out, "  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(
        out,
        "    {\"clients\": %zu, \"requests\": %zu, \"qps\": %.2f, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"max_ms\": %.4f, \"errors\": %zu, \"server_ok\": %llu, "
        "\"server_rejected_503\": %llu, \"server_deadline_504\": %llu}%s\n",
        r.clients, r.requests, r.qps, r.p50_ms, r.p95_ms, r.p99_ms, r.max_ms,
        r.errors, static_cast<unsigned long long>(r.server_ok),
        static_cast<unsigned long long>(r.server_rejected),
        static_cast<unsigned long long>(r.server_deadline),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  std::printf("Note: clients are closed-loop, so QPS saturates at "
              "(handler throughput × concurrency);\nbeyond saturation added "
              "clients raise latency, not QPS.\n");
  return 0;
}
