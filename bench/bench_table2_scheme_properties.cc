// Table 2 reproduction: the optimization-relevant properties of the seven
// Section-7 scoring schemes — the declared matrix, plus an empirical pass
// that validates every declaration on randomized realizable score samples
// (the property checker used by the test suite).

#include <cstdio>
#include <functional>

#include "sa/property_checker.h"
#include "sa/scoring_scheme.h"

int main() {
  using namespace graft::sa;
  const char* scheme_names[] = {"AnySum",  "SumBest",    "Lucene",
                                "JoinNormalized", "MeanSum", "EventModel",
                                "BestSumMinDist"};

  std::printf("Table 2 — declared scheme properties\n");
  std::printf("%-22s", "property");
  for (const char* name : scheme_names) {
    std::printf(" %-8.8s", name);
  }
  std::printf("\n");

  const auto row = [&](const char* label,
                       const std::function<std::string(
                           const SchemeProperties&)>& cell) {
    std::printf("%-22s", label);
    for (const char* name : scheme_names) {
      const ScoringScheme* scheme = SchemeRegistry::Global().Lookup(name);
      std::printf(" %-8.8s", cell(scheme->properties()).c_str());
    }
    std::printf("\n");
  };
  const auto mark = [](bool b) { return std::string(b ? "✓" : "·"); };

  row("directional", [](const SchemeProperties& p) {
    switch (p.direction) {
      case Direction::kDiagonal: return std::string("·");
      case Direction::kRowFirst: return std::string("row");
      case Direction::kColumnFirst: return std::string("col");
    }
    return std::string("?");
  });
  row("positional",
      [&](const SchemeProperties& p) { return mark(p.positional); });
  row("⊕ associates",
      [&](const SchemeProperties& p) { return mark(p.alt.associative); });
  row("⊕ commutes",
      [&](const SchemeProperties& p) { return mark(p.alt.commutative); });
  row("⊕ monotonic inc", [&](const SchemeProperties& p) {
    return mark(p.alt.monotonic_increasing);
  });
  row("⊕ idempotent",
      [&](const SchemeProperties& p) { return mark(p.alt.idempotent); });
  row("⊕ multiplies",
      [&](const SchemeProperties& p) { return mark(p.alt_multiplies); });
  row("constant",
      [&](const SchemeProperties& p) { return mark(p.constant); });
  row("⊘ associates",
      [&](const SchemeProperties& p) { return mark(p.conj.associative); });
  row("⊘ commutes",
      [&](const SchemeProperties& p) { return mark(p.conj.commutative); });
  row("⊘ monotonic inc", [&](const SchemeProperties& p) {
    return mark(p.conj.monotonic_increasing);
  });
  row("⊚ associates",
      [&](const SchemeProperties& p) { return mark(p.disj.associative); });
  row("⊚ commutes",
      [&](const SchemeProperties& p) { return mark(p.disj.commutative); });
  row("⊚ monotonic inc", [&](const SchemeProperties& p) {
    return mark(p.disj.monotonic_increasing);
  });

  std::printf("\nEmpirical validation (2000 randomized realizable samples "
              "per property):\n");
  bool all_consistent = true;
  for (const char* name : scheme_names) {
    const ScoringScheme* scheme = SchemeRegistry::Global().Lookup(name);
    const PropertyReport report = CheckSchemeProperties(*scheme, 2000);
    const bool ok = report.DeclarationsConsistent();
    all_consistent &= ok;
    std::printf("  %-16s %s\n", name,
                ok ? "all declarations held" : "DECLARATION VIOLATED");
    if (!ok) {
      std::printf("%s", report.ToString().c_str());
    }
  }
  std::printf("%s\n", all_consistent
                          ? "\nTable 2 reproduced: every declared property "
                            "held on every sample."
                          : "\nMISMATCH — see violations above.");
  return all_consistent ? 0 : 1;
}
