// Table 3 reproduction: the optimizations each scheme admits, derived at
// runtime as (Table 1 gate) × (Table 2 declarations), then compared
// cell-for-cell with the paper's published table.

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "core/optimization_gate.h"
#include "sa/scoring_scheme.h"

int main() {
  using namespace graft::core;
  const char* scheme_names[] = {"AnySum",  "SumBest",    "Lucene",
                                "JoinNormalized", "MeanSum", "EventModel",
                                "BestSumMinDist"};

  // The paper's Table 3 (scheme columns in the same order).
  const std::map<Optimization, std::set<std::string>> paper = {
      {Optimization::kSortElimination,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
        "EventModel", "BestSumMinDist"}},
      {Optimization::kJoinReordering,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
        "EventModel", "BestSumMinDist"}},
      {Optimization::kSelectionPushing,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
        "EventModel", "BestSumMinDist"}},
      {Optimization::kZigZagJoin,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
        "EventModel", "BestSumMinDist"}},
      {Optimization::kForwardScanJoin, {"AnySum"}},
      {Optimization::kAlternateElimination, {"AnySum"}},
      {Optimization::kEagerAggregation,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum"}},
      {Optimization::kEagerCounting,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
        "EventModel", "BestSumMinDist"}},
      {Optimization::kPreCounting,
       {"AnySum", "SumBest", "Lucene", "JoinNormalized", "MeanSum",
        "EventModel"}},
      {Optimization::kRankJoin,
       {"AnySum", "Lucene", "JoinNormalized", "MeanSum"}},
      {Optimization::kRankUnion,
       {"AnySum", "Lucene", "JoinNormalized", "MeanSum"}},
  };

  std::printf("Table 3 — optimizations consistently applicable per scheme\n");
  std::printf("(derived = Table 1 gate × Table 2 declarations; compared "
              "against the paper)\n\n");
  std::printf("%-18s", "");
  for (const char* name : scheme_names) {
    std::printf(" %-8.8s", name);
  }
  std::printf("\n");

  int mismatches = 0;
  for (const Optimization opt : kAllOptimizations) {
    if (paper.count(opt) == 0) {
      // Post-paper extensions (e.g. block-max pruning) have no Table 3 row
      // to compare against; they are reported by bench_table1 and EXPLAIN.
      continue;
    }
    std::printf("%-18s", OptimizationName(opt).c_str());
    for (const char* name : scheme_names) {
      const graft::sa::ScoringScheme* scheme =
          graft::sa::SchemeRegistry::Global().Lookup(name);
      const bool derived = IsOptimizationValid(opt, scheme->properties());
      const bool expected = paper.at(opt).count(name) != 0;
      const char* cell = derived ? "✓" : "·";
      if (derived != expected) {
        cell = derived ? "✓!" : "·!";
        ++mismatches;
      }
      std::printf(" %-8s", cell);
    }
    std::printf("\n");
  }
  if (mismatches == 0) {
    std::printf("\nTable 3 reproduced exactly (77/77 cells match the "
                "paper).\n");
  } else {
    std::printf("\n%d cell(s) deviate from the paper (marked with !).\n",
                mismatches);
  }
  return mismatches == 0 ? 0 : 1;
}
