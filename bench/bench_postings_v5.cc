// v5 packed-postings benchmark + self-check (BENCH_postings_v5.json).
//
// Over a Wikipedia-like corpus (default 1,000,000 documents; override
// with GRAFT_BENCH_DOCS):
//
//   * compression ratio — v5 (delta + bit-packed blocks) file size vs the
//     v4 materialized-array format for the same logical index;
//   * cold QPS — a query sweep on a freshly mapped index whose block
//     cache starts empty, so every touched block pays mmap page-in plus
//     bit-unpack;
//   * warm QPS — the same sweep repeated with the decoded working set
//     resident; the gap is the decode + fault tax the cache amortizes;
//   * cache hit rate over the whole run (snapshot of the metered cache);
//   * SCORE SELF-CHECK — every query × scheme is executed on both the
//     materialized index and the mapped v5 index and compared for
//     bit-identical (doc, score) results. Any mismatch prints the
//     divergence and EXITS NON-ZERO: a wrong decode must fail the bench
//     job, not ship a pretty number.
//
// Timing follows the paper's methodology (Section 8) for the warm
// numbers; the cold number is necessarily a single pass (repeating it
// would warm the cache it is defined to miss).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "index/block_cache.h"
#include "index/index_io.h"
#include "index/inverted_index.h"

namespace {

struct BenchQuery {
  const char* text;
  const char* scheme;
};

// Mixes frequent and mid-frequency vocabulary, conjunctions,
// disjunctions, and a positional constraint, across schemes whose gates
// license different operators (block-max pruning, rank engine, plain
// streaming).
const BenchQuery kQueries[] = {
    {"free software", "MeanSum"},
    {"free software", "AnySum"},
    {"free | software | windows", "AnySum"},
    {"free | software | windows", "Lucene"},
    {"county line service", "MeanSum"},
    {"image | species | fishing", "AnySum"},
    {"(free software)WINDOW[20] system", "MeanSum"},
    {"city county | service line", "Lucene"},
};

double FileSizeBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0.0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size <= 0 ? 0.0 : static_cast<double>(size);
}

// Runs the full sweep once; returns total queries executed. Aborts the
// process on any engine error.
size_t RunSweep(const graft::core::Engine& engine) {
  size_t executed = 0;
  for (const BenchQuery& q : kQueries) {
    graft::core::SearchOptions options;
    options.top_k = 10;
    auto result = engine.Search(q.text, q.scheme, options);
    if (!result.ok()) {
      std::fprintf(stderr, "query '%s' (%s) failed: %s\n", q.text, q.scheme,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    ++executed;
  }
  return executed;
}

// The self-check: identical (doc, score) sequences, bit for bit.
// Returns false (after printing the divergence) on mismatch.
bool ScoresMatch(const graft::core::Engine& reference,
                 const graft::core::Engine& packed) {
  bool ok = true;
  for (const BenchQuery& q : kQueries) {
    graft::core::SearchOptions options;
    options.top_k = 100;
    auto want = reference.Search(q.text, q.scheme, options);
    auto got = packed.Search(q.text, q.scheme, options);
    if (!want.ok() || !got.ok()) {
      std::fprintf(stderr, "self-check query '%s' (%s) failed: %s / %s\n",
                   q.text, q.scheme, want.status().ToString().c_str(),
                   got.status().ToString().c_str());
      return false;
    }
    if (got->results.size() != want->results.size()) {
      std::fprintf(stderr,
                   "SELF-CHECK MISMATCH '%s' (%s): %zu results vs %zu\n",
                   q.text, q.scheme, got->results.size(),
                   want->results.size());
      ok = false;
      continue;
    }
    for (size_t i = 0; i < want->results.size(); ++i) {
      if (got->results[i].doc != want->results[i].doc ||
          got->results[i].score != want->results[i].score) {
        std::fprintf(stderr,
                     "SELF-CHECK MISMATCH '%s' (%s) rank %zu: "
                     "doc %u score %.17g vs doc %u score %.17g\n",
                     q.text, q.scheme, i, got->results[i].doc,
                     got->results[i].score, want->results[i].doc,
                     want->results[i].score);
        ok = false;
        break;
      }
    }
  }
  return ok;
}

}  // namespace

int main() {
  using graft::bench::MeasureSeconds;

  const graft::index::InvertedIndex& index = graft::bench::SharedBenchIndex();
  const uint64_t docs = index.doc_count();

  const std::string v4_path = "graft_bench_postings_v4_scratch.idx";
  const std::string v5_path = "graft_bench_postings_v5_scratch.idx";

  // --- compression: same logical index, both formats ---
  double save_v4_s = 0.0;
  double save_v5_s = 0.0;
  {
    save_v4_s = MeasureSeconds([&] {
      if (!graft::index::SaveIndex(index, v4_path).ok()) std::exit(1);
    });
    save_v5_s = MeasureSeconds([&] {
      if (!graft::index::SaveIndexV5(index, v5_path).ok()) std::exit(1);
    });
  }
  const double v4_bytes = FileSizeBytes(v4_path);
  const double v5_bytes = FileSizeBytes(v5_path);
  const double ratio = v5_bytes > 0 ? v4_bytes / v5_bytes : 0.0;
  std::printf("format_size_v4               %8.1f MB\n", v4_bytes / 1048576);
  std::printf("format_size_v5               %8.1f MB\n", v5_bytes / 1048576);
  std::printf("compression_ratio            %8.2fx\n", ratio);

  // --- mapped load + cold sweep (empty cache) ---
  auto cache =
      std::make_shared<graft::index::BlockCache>(size_t{256} << 20);
  graft::index::MappedLoadOptions mapped_options;
  mapped_options.cache = cache;
  auto mapped = graft::index::LoadIndexMapped(v5_path, mapped_options);
  if (!mapped.ok()) {
    std::fprintf(stderr, "mapped load failed: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }
  graft::core::Engine packed_engine(&*mapped);

  double cold_qps = 0.0;
  {
    const auto start = std::chrono::steady_clock::now();
    const size_t n = RunSweep(packed_engine);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    cold_qps = static_cast<double>(n) / seconds;
    std::printf("cold_qps                     %8.1f q/s\n", cold_qps);
  }

  // --- warm sweep (working set decoded and resident) ---
  double warm_qps = 0.0;
  {
    const double seconds = MeasureSeconds([&] { RunSweep(packed_engine); });
    warm_qps = static_cast<double>(std::size(kQueries)) / seconds;
    std::printf("warm_qps                     %8.1f q/s\n", warm_qps);
  }

  // --- reference: the same sweep on the materialized index ---
  graft::core::Engine eager_engine(&index);
  double eager_qps = 0.0;
  {
    const double seconds = MeasureSeconds([&] { RunSweep(eager_engine); });
    eager_qps = static_cast<double>(std::size(kQueries)) / seconds;
    std::printf("materialized_qps             %8.1f q/s\n", eager_qps);
  }

  const graft::index::BlockCache::Snapshot snap = cache->snapshot();
  const double lookups = static_cast<double>(snap.hits + snap.misses);
  const double hit_rate =
      lookups > 0 ? static_cast<double>(snap.hits) / lookups : 0.0;
  std::printf("cache_hit_rate               %8.1f %% (%llu hits, %llu "
              "misses, %llu evictions)\n",
              hit_rate * 100.0, static_cast<unsigned long long>(snap.hits),
              static_cast<unsigned long long>(snap.misses),
              static_cast<unsigned long long>(snap.evictions));

  // --- score self-check: the number that actually gates the job ---
  const bool scores_ok = ScoresMatch(eager_engine, packed_engine);
  std::printf("score_self_check             %s\n",
              scores_ok ? "ok (bit-identical)" : "MISMATCH");

  std::FILE* out = std::fopen("BENCH_postings_v5.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"benchmark\": \"postings_v5\",\n");
    std::fprintf(out, "  \"doc_count\": %llu,\n",
                 static_cast<unsigned long long>(docs));
    graft::bench::WriteHostParallelismFields(out, 1);
    std::fprintf(out, "  \"v4_bytes\": %.0f,\n", v4_bytes);
    std::fprintf(out, "  \"v5_bytes\": %.0f,\n", v5_bytes);
    std::fprintf(out, "  \"compression_ratio\": %.4f,\n", ratio);
    std::fprintf(out, "  \"save_v4_s\": %.4f,\n", save_v4_s);
    std::fprintf(out, "  \"save_v5_s\": %.4f,\n", save_v5_s);
    std::fprintf(out, "  \"queries\": %zu,\n", std::size(kQueries));
    std::fprintf(out, "  \"cold_qps\": %.2f,\n", cold_qps);
    std::fprintf(out, "  \"warm_qps\": %.2f,\n", warm_qps);
    std::fprintf(out, "  \"materialized_qps\": %.2f,\n", eager_qps);
    std::fprintf(out, "  \"cache_hits\": %llu,\n",
                 static_cast<unsigned long long>(snap.hits));
    std::fprintf(out, "  \"cache_misses\": %llu,\n",
                 static_cast<unsigned long long>(snap.misses));
    std::fprintf(out, "  \"cache_evictions\": %llu,\n",
                 static_cast<unsigned long long>(snap.evictions));
    std::fprintf(out, "  \"cache_hit_rate\": %.4f,\n", hit_rate);
    std::fprintf(out, "  \"score_self_check\": \"%s\"\n",
                 scores_ok ? "ok" : "mismatch");
    std::fprintf(out, "}\n");
    std::fclose(out);
  }

  std::remove(v4_path.c_str());
  // v5 scratch stays mapped until `mapped` dies; remove after use is safe
  // on POSIX (the mapping pins the inode), but exit is cleaner.
  std::remove(v5_path.c_str());
  return scores_ok ? 0 : 1;
}
