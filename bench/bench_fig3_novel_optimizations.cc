// Figure 3 reproduction: execution-time reduction provided by Alternate
// Elimination, Pre-Counting, and the combination of both, over the
// classical eager-count-optimized plan, for queries Q4-Q11 under the
// AnySum scheme (the only Section-7 scheme compatible with alternate
// elimination).
//
// The paper reports the reduction as a percentage of the unoptimized
// (eager-count) time; taller is better.

#include <cstdio>

#include "bench_util.h"
#include "core/canonical_plan.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "mcalc/parser.h"

namespace graft {
namespace {

using bench::kPaperQueries;

double RunOnce(const mcalc::Query& query, const sa::ScoringScheme& scheme,
               const core::OptimizerOptions& options, size_t* hits) {
  core::Optimizer optimizer(&scheme, options);
  auto plan = optimizer.Optimize(query, bench::SharedBenchIndex());
  if (!plan.ok()) {
    std::fprintf(stderr, "optimize failed: %s\n",
                 plan.status().ToString().c_str());
    return -1.0;
  }
  exec::Executor executor(&bench::SharedBenchIndex(), &scheme,
                          core::MakeQueryContext(query));
  // Warm up once (also captures the hit count).
  {
    auto results = executor.ExecuteRanked(*plan->plan);
    if (!results.ok()) {
      std::fprintf(stderr, "execute failed: %s\n",
                   results.status().ToString().c_str());
      return -1.0;
    }
    *hits = results->size();
  }
  return bench::MeasureSeconds([&executor, &plan] {
    auto results = executor.ExecuteRanked(*plan->plan);
    (void)results;
  });
}

}  // namespace
}  // namespace graft

int main() {
  using namespace graft;
  const sa::ScoringScheme& scheme =
      *sa::SchemeRegistry::Global().Lookup("AnySum");

  // Baseline: selection pushing + join reordering + eager counting (the
  // paper's "plans optimized as described above").
  core::OptimizerOptions baseline;
  baseline.eager_aggregation = false;
  baseline.pre_counting = false;
  baseline.alternate_elimination = false;

  core::OptimizerOptions alt_elim = baseline;
  alt_elim.alternate_elimination = true;

  core::OptimizerOptions pre_count = baseline;
  pre_count.pre_counting = true;

  core::OptimizerOptions combined = baseline;
  combined.alternate_elimination = true;
  combined.pre_counting = true;

  std::printf(
      "Figure 3 — execution-time reduction over the eager-count plan "
      "(AnySum scheme)\n");
  std::printf(
      "%-5s %8s | %12s %12s %12s | %9s %9s %9s\n", "query", "hits",
      "base(ms)", "altelim(ms)", "combo(ms)", "alt-elim%", "precount%",
      "combined%");
  std::printf("---------------------------------------------------------"
              "---------------------------\n");

  for (const bench::PaperQuery& pq : bench::kPaperQueries) {
    auto query = mcalc::ParseQuery(pq.text);
    if (!query.ok()) {
      std::printf("%-5s parse error\n", pq.name);
      continue;
    }
    size_t hits = 0;
    const double base = RunOnce(*query, scheme, baseline, &hits);
    size_t hits2 = 0;
    const double alt = RunOnce(*query, scheme, alt_elim, &hits2);
    const double pre = RunOnce(*query, scheme, pre_count, &hits2);
    const double both = RunOnce(*query, scheme, combined, &hits2);
    const auto reduction = [base](double t) {
      return base > 0 ? 100.0 * (base - t) / base : 0.0;
    };
    std::printf("%-5s %8zu | %12.3f %12.3f %12.3f | %8.1f%% %8.1f%% %8.1f%%\n",
                pq.name, hits, base * 1e3, alt * 1e3, both * 1e3,
                reduction(alt), reduction(pre), reduction(both));
  }
  std::printf(
      "\nExpected shape (paper): alternate elimination helps every query; "
      "pre-counting\ndominates on free-keyword-only queries (Q4, Q5) and is "
      "inapplicable to Q7/Q11\n(no free keywords); the combination is "
      "additive where the two apply to\ndifferent subplans (Q6).\n");
  return 0;
}
