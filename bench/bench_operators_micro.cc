// Operator micro-benchmarks (google-benchmark): the physical primitives
// every plan is made of — positional scans, galloping skips, zig-zag
// joins, count scans, grouping, and alternate elimination.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/canonical_plan.h"
#include "core/engine.h"
#include "exec/executor.h"
#include "mcalc/parser.h"
#include "sa/scoring_scheme.h"

namespace {

using namespace graft;

const index::InvertedIndex& Index() { return bench::SharedBenchIndex(); }

void BM_PostingScan(benchmark::State& state) {
  const TermId term = Index().LookupTerm("free");
  for (auto _ : state) {
    index::PostingCursor cursor(&Index().postings(term));
    uint64_t checksum = 0;
    while (!cursor.AtEnd()) {
      for (const Offset offset : cursor.offsets()) {
        checksum += offset;
      }
      cursor.Next();
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() *
                          Index().CollectionFreq(term));
}
BENCHMARK(BM_PostingScan);

void BM_GallopingSkip(benchmark::State& state) {
  // Skip through the frequent 'free' postings using a rare term's docs as
  // targets: the zig-zag access pattern.
  const TermId frequent = Index().LookupTerm("free");
  const TermId rare = Index().LookupTerm("emulator");
  const index::PostingList& targets = Index().postings(rare);
  for (auto _ : state) {
    index::CountCursor cursor(&Index().postings(frequent));
    uint64_t hits = 0;
    for (size_t i = 0; i < targets.doc_count(); ++i) {
      cursor.SkipTo(targets.doc_at(i));
      if (cursor.AtEnd()) break;
      hits += cursor.doc() == targets.doc_at(i) ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_GallopingSkip);

void RunMatchingSubplan(const char* query_text, benchmark::State& state) {
  auto query = mcalc::ParseQuery(query_text);
  auto plan = core::BuildMatchingSubplanNoSort(*query);
  if (!ma::ResolvePlan(plan->get(), Index()).ok()) {
    state.SkipWithError("resolve failed");
    return;
  }
  exec::Executor executor(&Index(), nullptr, sa::QueryContext{});
  for (auto _ : state) {
    auto table = executor.ExecuteTable(**plan);
    benchmark::DoNotOptimize(table->rows.size());
  }
}

void BM_ZigZagJoin_RareFrequent(benchmark::State& state) {
  RunMatchingSubplan("emulator free", state);
}
BENCHMARK(BM_ZigZagJoin_RareFrequent);

void BM_ZigZagJoin_FrequentFrequent(benchmark::State& state) {
  RunMatchingSubplan("free software", state);
}
BENCHMARK(BM_ZigZagJoin_FrequentFrequent);

void BM_UnionMerge(benchmark::State& state) {
  RunMatchingSubplan("image | picture | drawing | illustration", state);
}
BENCHMARK(BM_UnionMerge);

void BM_PhraseFilter(benchmark::State& state) {
  RunMatchingSubplan("\"san francisco\"", state);
}
BENCHMARK(BM_PhraseFilter);

void BM_EagerCountScan(benchmark::State& state) {
  ma::PlanNodePtr plan = ma::MakeGroup(
      ma::MakeProject(ma::MakeAtom("free", 0), {}), [] {
        ma::GroupSpec spec;
        spec.count_output = "c0";
        spec.count_keyword = "free";
        return spec;
      }());
  if (!ma::ResolvePlan(plan.get(), Index()).ok()) {
    state.SkipWithError("resolve failed");
    return;
  }
  exec::Executor executor(&Index(), nullptr, sa::QueryContext{});
  for (auto _ : state) {
    auto table = executor.ExecuteTable(*plan);
    benchmark::DoNotOptimize(table->rows.size());
  }
}
BENCHMARK(BM_EagerCountScan);

void BM_PreCountScan(benchmark::State& state) {
  ma::PlanNodePtr plan = ma::MakePreCountAtom("free", "c0");
  if (!ma::ResolvePlan(plan.get(), Index()).ok()) {
    state.SkipWithError("resolve failed");
    return;
  }
  exec::Executor executor(&Index(), nullptr, sa::QueryContext{});
  for (auto _ : state) {
    auto table = executor.ExecuteTable(*plan);
    benchmark::DoNotOptimize(table->rows.size());
  }
}
BENCHMARK(BM_PreCountScan);

void BM_StreamGroupVsAltElim(benchmark::State& state) {
  // γ_d over all positions of a frequent keyword vs δ_A taking one row.
  const bool alt_elim = state.range(0) == 1;
  auto query = mcalc::ParseQuery("free");
  auto matching = core::BuildMatchingSubplanNoSort(*query);
  const sa::ScoringScheme& scheme =
      *sa::SchemeRegistry::Global().Lookup("AnySum");
  ma::PlanNodePtr plan;
  if (alt_elim) {
    plan = ma::MakeAltElim(std::move(*matching));
  } else {
    std::vector<ma::ProjectItem> items;
    items.push_back(
        ma::ProjectItem::Scored("s", ma::ScoreExpr::InitPos("p0")));
    plan = ma::MakeProject(std::move(*matching), std::move(items));
    ma::GroupSpec spec;
    spec.score_aggs.push_back({"s", "s", ""});
    plan = ma::MakeGroup(std::move(plan), std::move(spec));
  }
  if (!ma::ResolvePlan(plan.get(), Index()).ok()) {
    state.SkipWithError("resolve failed");
    return;
  }
  exec::Executor executor(&Index(), &scheme, sa::QueryContext{1});
  for (auto _ : state) {
    auto table = executor.ExecuteTable(*plan);
    benchmark::DoNotOptimize(table->rows.size());
  }
}
BENCHMARK(BM_StreamGroupVsAltElim)->Arg(0)->Arg(1);

void BM_IndexBuild(benchmark::State& state) {
  // Index construction throughput (tokens/s): dominated by the builder's
  // per-document accumulation, which reuses its scratch allocations across
  // documents (offset vectors are cleared, not erased; doc_terms_ and
  // per-term offsets are reserved up front).
  const uint64_t num_docs = static_cast<uint64_t>(state.range(0));
  text::CorpusConfig config = text::WikipediaLikeConfig(num_docs);
  std::vector<std::vector<std::string>> docs;
  std::vector<std::vector<std::string_view>> views;
  docs.reserve(num_docs);
  text::CorpusGenerator generator(config);
  generator.Generate(
      [&docs](uint64_t, const std::vector<std::string_view>& tokens) {
        docs.emplace_back(tokens.begin(), tokens.end());
      });
  views.reserve(docs.size());
  uint64_t total_tokens = 0;
  for (const auto& doc : docs) {
    views.emplace_back(doc.begin(), doc.end());
    total_tokens += doc.size();
  }
  for (auto _ : state) {
    index::IndexBuilder builder;
    for (const auto& tokens : views) {
      builder.AddDocument(tokens);
    }
    index::InvertedIndex built = builder.Build();
    benchmark::DoNotOptimize(built.total_words());
  }
  state.SetItemsProcessed(state.iterations() * total_tokens);
}
BENCHMARK(BM_IndexBuild)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_FullEngineSearch(benchmark::State& state) {
  auto query = mcalc::ParseQuery("san francisco fault line");
  const sa::ScoringScheme& scheme =
      *sa::SchemeRegistry::Global().Lookup("Lucene");
  core::Engine engine(&Index());
  for (auto _ : state) {
    auto result = engine.SearchQuery(*query, scheme);
    benchmark::DoNotOptimize(result->results.size());
  }
}
BENCHMARK(BM_FullEngineSearch);

}  // namespace

BENCHMARK_MAIN();
