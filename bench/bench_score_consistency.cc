// Definition 1 at benchmark scale: for every scheme and every evaluation
// query, the optimized streaming plan must compute exactly the canonical
// score-isolated plan's answers and scores — and the speedup from
// interleaving matching and scoring is reported alongside.

#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/canonical_plan.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "ma/reference_evaluator.h"
#include "mcalc/parser.h"

int main() {
  using namespace graft;
  const index::InvertedIndex& index = bench::SharedBenchIndex();
  const char* scheme_names[] = {"AnySum",  "SumBest",    "Lucene",
                                "JoinNormalized", "MeanSum", "EventModel",
                                "BestSumMinDist"};

  std::printf("Score consistency (Definition 1): optimized plan vs "
              "canonical score-isolated plan\n");
  std::printf("%-5s %-16s %8s | %14s %14s %8s | %s\n", "query", "scheme",
              "hits", "canonical(ms)", "optimized(ms)", "speedup",
              "consistent");
  std::printf("------------------------------------------------------------"
              "--------------------------\n");

  int checked = 0;
  int consistent = 0;
  for (const bench::PaperQuery& pq : bench::kPaperQueries) {
    auto query = mcalc::ParseQuery(pq.text);
    if (!query.ok()) continue;
    for (const char* scheme_name : scheme_names) {
      const sa::ScoringScheme& scheme =
          *sa::SchemeRegistry::Global().Lookup(scheme_name);

      auto canonical = core::BuildCanonicalPlan(*query, scheme);
      if (!canonical.ok()) continue;
      if (!ma::ResolvePlan(canonical->plan.get(), index).ok()) continue;
      ma::ReferenceEvaluator reference(&index, &scheme,
                                       core::MakeQueryContext(*query));
      auto oracle_table = reference.Evaluate(*canonical->plan);
      if (!oracle_table.ok()) continue;
      auto oracle = ma::ExtractRankedResults(*oracle_table);
      if (!oracle.ok()) continue;

      core::Optimizer optimizer(&scheme);
      auto plan = optimizer.Optimize(*query, index);
      if (!plan.ok()) continue;
      exec::Executor executor(&index, &scheme,
                              core::MakeQueryContext(*query));
      auto optimized = executor.ExecuteRanked(*plan->plan);
      if (!optimized.ok()) continue;

      bool equal = oracle->size() == optimized->size();
      if (equal) {
        std::map<DocId, double> scores;
        for (const ma::ScoredDoc& r : *oracle) scores[r.doc] = r.score;
        for (const ma::ScoredDoc& r : *optimized) {
          const auto it = scores.find(r.doc);
          if (it == scores.end() ||
              std::fabs(it->second - r.score) >
                  1e-7 * std::max(1.0, std::fabs(it->second))) {
            equal = false;
            break;
          }
        }
      }
      ++checked;
      consistent += equal ? 1 : 0;

      const double canonical_time = bench::MeasureSeconds([&] {
        auto t = reference.Evaluate(*canonical->plan);
        (void)t;
      });
      const double optimized_time = bench::MeasureSeconds([&] {
        auto r = executor.ExecuteRanked(*plan->plan);
        (void)r;
      });
      std::printf("%-5s %-16s %8zu | %14.3f %14.3f %7.1fx | %s\n", pq.name,
                  scheme_name, oracle->size(), canonical_time * 1e3,
                  optimized_time * 1e3,
                  optimized_time > 0 ? canonical_time / optimized_time : 0.0,
                  equal ? "yes" : "NO");
    }
  }
  std::printf("------------------------------------------------------------"
              "--------------------------\n");
  std::printf("consistent: %d / %d plan pairs\n", consistent, checked);
  return consistent == checked ? 0 : 1;
}
