// Join-order ablation: the paper's heuristic (fewest positions scanned
// first) vs the cost-model order (fewest estimated documents first) —
// the cost-based extension the paper leaves as future work.
//
// The two orders differ when a keyword is document-rare but position-
// dense (many occurrences in few documents): the heuristic ranks it by
// its position count and may not drive the zig-zag with it, while the
// cost model recognizes it as the most selective stream.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "mcalc/parser.h"

int main() {
  using namespace graft;

  // Dedicated skewed corpus where the two orders disagree:
  //   'dense': 1% of docs, 96 occurrences each  -> df 200, cf ~19200
  //   'broad': ~40% of docs, 1-2 occurrences    -> df ~8000, cf ~12000
  //   'mid':   ~8% of docs, 4 occurrences       -> df ~1600, cf ~6400
  // The heuristic (positions ascending) drives with 'mid' then 'broad';
  // the cost model drives with 'dense' (fewest documents).
  const uint64_t docs = 20000;
  index::IndexBuilder builder;
  Rng rng(99);
  std::vector<std::string> tokens;
  for (uint64_t d = 0; d < docs; ++d) {
    tokens.clear();
    for (int i = 0; i < 200; ++i) {
      tokens.push_back("w" + std::to_string(rng.NextBounded(2000)));
    }
    if (d % 100 == 0) {
      for (int i = 0; i < 96; ++i) tokens[i * 2] = "dense";
    }
    if (rng.NextBool(0.4)) {
      tokens[100] = "broad";
      if (rng.NextBool(0.5)) tokens[110] = "broad";
    }
    if (rng.NextBool(0.08)) {
      for (int i = 0; i < 4; ++i) tokens[121 + i * 2] = "mid";
    }
    builder.AddDocumentStrings(tokens);
  }
  index::InvertedIndex index = builder.Build();

  const char* queries[] = {
      "dense broad",
      "dense mid broad",
      "(dense broad)WINDOW[60] mid",
  };

  std::printf("Join-order ablation: paper heuristic vs cost model\n");
  std::printf("%-28s | %14s %14s | %8s\n", "query", "heuristic(ms)",
              "cost-based(ms)", "ratio");
  std::printf("------------------------------------------------------------"
              "--------\n");

  const sa::ScoringScheme& scheme =
      *sa::SchemeRegistry::Global().Lookup("BestSumMinDist");
  for (const char* text : queries) {
    auto query = mcalc::ParseQuery(text);
    if (!query.ok()) continue;

    const auto measure = [&](bool cost_based, size_t* hits) {
      core::OptimizerOptions options;
      options.cost_based_join_order = cost_based;
      core::Optimizer optimizer(&scheme, options);
      auto plan = optimizer.Optimize(*query, index);
      exec::Executor executor(&index, &scheme,
                              core::MakeQueryContext(*query));
      auto warm = executor.ExecuteRanked(*plan->plan);
      *hits = warm.ok() ? warm->size() : 0;
      return bench::MeasureSeconds([&] {
        auto r = executor.ExecuteRanked(*plan->plan);
        (void)r;
      });
    };

    size_t hits_h = 0;
    size_t hits_c = 0;
    const double heuristic = measure(false, &hits_h);
    const double cost_based = measure(true, &hits_c);
    if (hits_h != hits_c) {
      std::printf("%-28s | RESULT MISMATCH (%zu vs %zu)\n", text, hits_h,
                  hits_c);
      return 1;
    }
    std::printf("%-28s | %14.3f %14.3f | %7.2fx\n", text, heuristic * 1e3,
                cost_based * 1e3,
                cost_based > 0 ? heuristic / cost_based : 0.0);
  }
  std::printf(
      "\nBoth orders are score-consistent (asserted). Observed finding: "
      "with\nsymmetric leapfrog alignment (each side gallops toward the "
      "other), the\nzig-zag join is largely insensitive to input order — "
      "the misordering cost\na classical one-sided nested/index join would "
      "pay does not arise. This is\na robustness property of the zig-zag "
      "technique itself (Section 5.2.1);\nthe cost model remains useful "
      "for choosing *leaf implementations* (CA vs\nA, see the pre-count "
      "estimates in core/cost_model.h) rather than order.\n");
  return 0;
}
