// Desideratum 3: "despite overhead from generic scoring, performs
// competitively with systems using a fixed scoring algorithm."
//
// Measures the cost of GRAFT's genericity head-on: the GRAFT engine with
// the Lucene plug-in scheme (virtual α/⊘/⊚/⊕/ω calls, generic operators)
// against the Lucene-like rigid engine whose identical scoring formula is
// fused into the match loop. Both produce identical scores (asserted by
// the test suite); only the architecture differs.

#include <cstdio>

#include "baseline/lucene_like.h"
#include "bench_util.h"
#include "core/engine.h"
#include "mcalc/parser.h"

int main() {
  using namespace graft;
  const index::InvertedIndex& index = bench::SharedBenchIndex();
  core::Engine engine(&index);
  baseline::LuceneLikeEngine rigid(&index);
  const sa::ScoringScheme& scheme =
      *sa::SchemeRegistry::Global().Lookup("Lucene");

  std::printf("Generic-scoring overhead: GRAFT(Lucene scheme) vs the fused "
              "rigid engine\n");
  std::printf("%-5s %8s | %14s %14s | %10s\n", "query", "hits", "GRAFT(ms)",
              "rigid(ms)", "ratio");
  std::printf("-----------------------------------------------------------"
              "---\n");

  double total_graft = 0.0;
  double total_rigid = 0.0;
  for (const bench::PaperQuery& pq : bench::kPaperQueries) {
    if (!pq.baseline_supported) continue;
    auto query = mcalc::ParseQuery(pq.text);
    if (!query.ok()) continue;

    auto hits = rigid.SearchQuery(*query);
    const double graft_time = bench::MeasureSeconds([&] {
      auto r = engine.SearchQuery(*query, scheme);
      (void)r;
    });
    const double rigid_time = bench::MeasureSeconds([&] {
      auto r = rigid.SearchQuery(*query);
      (void)r;
    });
    total_graft += graft_time;
    total_rigid += rigid_time;
    std::printf("%-5s %8zu | %14.3f %14.3f | %9.2fx\n", pq.name,
                hits.ok() ? hits->size() : 0, graft_time * 1e3,
                rigid_time * 1e3,
                rigid_time > 0 ? graft_time / rigid_time : 0.0);
  }
  std::printf("-----------------------------------------------------------"
              "---\n");
  std::printf("%-5s %8s | %14.3f %14.3f | %9.2fx\n", "sum", "",
              total_graft * 1e3, total_rigid * 1e3,
              total_rigid > 0 ? total_graft / total_rigid : 0.0);
  std::printf("\nExpected shape (paper): the optimized generic plans stay "
              "within a small\nconstant factor of — and sometimes beat — "
              "the fused engine, because the\nscheme-aware rewrites unlock "
              "the same physical tricks the rigid plan\nhardcodes.\n");
  return 0;
}
