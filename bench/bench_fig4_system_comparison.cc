// Figure 4 reproduction: comparative execution times for Q4-Q11 on
//   (a) GRAFT optimized for Lucene's scoring scheme,
//   (b) the Lucene-like rigid engine,
//   (c) GRAFT optimized for Terrier's scheme (AnySum),
//   (d) the Terrier-like rigid engine.
//
// Lucene and Terrier do not support the WINDOW predicate, so Q8 and Q10
// are n/a for the baselines (exactly as in the paper).

#include <cstdio>

#include "baseline/lucene_like.h"
#include "baseline/terrier_like.h"
#include "bench_util.h"
#include "core/engine.h"
#include "mcalc/parser.h"

int main() {
  using namespace graft;
  const index::InvertedIndex& index = bench::SharedBenchIndex();
  core::Engine engine(&index);
  baseline::LuceneLikeEngine lucene(&index);
  baseline::TerrierLikeEngine terrier(&index);

  std::printf("Figure 4 — execution time (ms): GRAFT vs rigid engines\n");
  std::printf("%-5s | %14s %14s | %14s %14s\n", "query", "GRAFT(Lucene)",
              "Lucene-like", "GRAFT(AnySum)", "Terrier-like");
  std::printf("---------------------------------------------------------"
              "---------\n");

  for (const bench::PaperQuery& pq : bench::kPaperQueries) {
    auto query = mcalc::ParseQuery(pq.text);
    if (!query.ok()) {
      continue;
    }

    const sa::ScoringScheme& lucene_scheme =
        *sa::SchemeRegistry::Global().Lookup("Lucene");
    const sa::ScoringScheme& anysum_scheme =
        *sa::SchemeRegistry::Global().Lookup("AnySum");

    // Warm up and verify once.
    auto warm = engine.SearchQuery(*query, lucene_scheme);
    if (!warm.ok()) {
      std::printf("%-5s engine error: %s\n", pq.name,
                  warm.status().ToString().c_str());
      continue;
    }

    const double graft_lucene = bench::MeasureSeconds([&] {
      auto r = engine.SearchQuery(*query, lucene_scheme);
      (void)r;
    });
    const double graft_anysum = bench::MeasureSeconds([&] {
      auto r = engine.SearchQuery(*query, anysum_scheme);
      (void)r;
    });

    double lucene_time = -1.0;
    double terrier_time = -1.0;
    if (pq.baseline_supported) {
      lucene_time = bench::MeasureSeconds([&] {
        auto r = lucene.SearchQuery(*query);
        (void)r;
      });
      terrier_time = bench::MeasureSeconds([&] {
        auto r = terrier.SearchQuery(*query);
        (void)r;
      });
    }

    const auto cell = [](double t) {
      static char buf[32];
      if (t < 0) {
        std::snprintf(buf, sizeof(buf), "%14s", "n/a");
      } else {
        std::snprintf(buf, sizeof(buf), "%14.3f", t * 1e3);
      }
      return std::string(buf);
    };
    std::printf("%-5s | %s %s | %s %s\n", pq.name, cell(graft_lucene).c_str(),
                cell(lucene_time).c_str(), cell(graft_anysum).c_str(),
                cell(terrier_time).c_str());
  }
  std::printf(
      "\nExpected shape (paper): properly optimized GRAFT plans run as "
      "fast, if not\nfaster, than both rigid engines — despite generic "
      "scoring — and only GRAFT\nanswers Q8/Q10 (WINDOW).\n");
  return 0;
}
