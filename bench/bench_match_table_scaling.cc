// Section 6: the match table is O(W^Q) in the worst case — the cost of
// eagerly materializing it (the score-isolated canonical plan) versus
// GRAFT's interleaved matching and scoring, as the query grows.
//
// Queries are conjunctions of 1..4 frequent keywords; the match table per
// document is the cross product of the keywords' position lists.

#include <cstdio>

#include "bench_util.h"
#include "core/canonical_plan.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "ma/reference_evaluator.h"
#include "mcalc/parser.h"

int main() {
  using namespace graft;
  const index::InvertedIndex& index = bench::SharedBenchIndex();
  const sa::ScoringScheme& scheme =
      *sa::SchemeRegistry::Global().Lookup("MeanSum");

  const char* queries[] = {
      "free",
      "free software",
      "free software windows",
      "free software windows service",
  };

  std::printf("Section 6 — match-table growth and the cost of eager "
              "materialization (MeanSum)\n");
  std::printf("%-3s %36s | %12s | %14s %14s | %8s\n", "Q", "query",
              "match rows", "canonical(ms)", "optimized(ms)", "speedup");
  std::printf("------------------------------------------------------------"
              "------------------------------\n");

  for (const char* text : queries) {
    auto query = mcalc::ParseQuery(text);
    if (!query.ok()) continue;

    // Canonical score-isolated plan: materialize the match table, then
    // score it (the reference evaluator is the paper's "eager" extreme).
    auto canonical = core::BuildCanonicalPlan(*query, scheme);
    if (!canonical.ok()) continue;
    if (!ma::ResolvePlan(canonical->plan.get(), index).ok()) continue;
    ma::ReferenceEvaluator reference(&index, &scheme,
                                     core::MakeQueryContext(*query));

    // Match-table size: evaluate the matching subplan once.
    auto matching = core::BuildMatchingSubplan(*query);
    if (!matching.ok()) continue;
    if (!ma::ResolvePlan(matching->get(), index).ok()) continue;
    auto table = reference.Evaluate(**matching);
    const size_t rows = table.ok() ? table->rows.size() : 0;

    const double canonical_time = bench::MeasureSeconds([&] {
      auto result = reference.Evaluate(*canonical->plan);
      (void)result;
    });

    core::Optimizer optimizer(&scheme);
    auto plan = optimizer.Optimize(*query, index);
    exec::Executor executor(&index, &scheme,
                            core::MakeQueryContext(*query));
    const double optimized_time = bench::MeasureSeconds([&] {
      auto result = executor.ExecuteRanked(*plan->plan);
      (void)result;
    });

    const size_t terms =
        std::count(text, text + std::string(text).size(), ' ') + 1;
    std::printf("%-3zu %36s | %12zu | %14.3f %14.3f | %7.1fx\n", terms, text,
                rows, canonical_time * 1e3, optimized_time * 1e3,
                optimized_time > 0 ? canonical_time / optimized_time : 0.0);
  }
  std::printf("\nExpected shape: match rows grow multiplicatively with "
              "query size (the\ncross-product of position lists); the "
              "optimized plan's advantage grows with\nthem because it "
              "never materializes the table (eager aggregation reduces\n"
              "each keyword to one ⟨score, count⟩ row per document).\n");
  return 0;
}
