// Durability-tax microbenchmark for the v3 index persistence path.
//
// Quantifies what crash safety costs on this machine:
//   * CRC32C throughput (the per-byte checksum tax on save AND load);
//   * SaveIndex — the full atomic protocol: temp file, per-section CRC,
//     fsync(file), rename, fsync(directory);
//   * LoadIndex — parse + verify every section checksum.
//
// Methodology matches the other benches (paper §8): nine repetitions,
// average of the five medians. Durable writes care about the fsync, so
// runs are NOT meaningfully comparable across filesystems — treat the
// output as a per-machine profile, not a cross-machine score.
//
//   GRAFT_BENCH_DOCS=N   corpus size (default 30000)

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/crc32c.h"
#include "index/index_io.h"
#include "index/inverted_index.h"

namespace {

double FileSizeMb(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0.0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size <= 0 ? 0.0 : static_cast<double>(size) / (1024.0 * 1024.0);
}

}  // namespace

int main() {
  using graft::bench::MeasureSeconds;

  // --- raw CRC32C throughput ---
  {
    std::vector<char> buffer(64 * 1024 * 1024);
    for (size_t i = 0; i < buffer.size(); ++i) {
      buffer[i] = static_cast<char>((i * 131) & 0xFF);
    }
    volatile uint32_t sink = 0;
    const double seconds = MeasureSeconds([&] {
      sink = graft::common::Crc32c(buffer.data(), buffer.size());
    });
    (void)sink;
    const double mb = static_cast<double>(buffer.size()) / (1024.0 * 1024.0);
    std::printf("crc32c_throughput            %8.0f MB/s\n", mb / seconds);
  }

  const graft::index::InvertedIndex& index = graft::bench::SharedBenchIndex();
  const std::string path = "graft_bench_durability_scratch.idx";

  // --- SaveIndex: full atomic-rename + fsync protocol ---
  {
    const double seconds = MeasureSeconds([&] {
      const graft::Status saved = graft::index::SaveIndex(index, path);
      if (!saved.ok()) {
        std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
        std::exit(1);
      }
    });
    const double mb = FileSizeMb(path);
    std::printf("save_atomic_fsync            %8.1f ms   (%.1f MB, %.0f MB/s)\n",
                seconds * 1e3, mb, mb / seconds);
  }

  // --- LoadIndex: parse + verify every section CRC ---
  {
    const double seconds = MeasureSeconds([&] {
      auto loaded = graft::index::LoadIndex(path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "load failed: %s\n",
                     loaded.status().ToString().c_str());
        std::exit(1);
      }
    });
    const double mb = FileSizeMb(path);
    std::printf("load_verify_checksums        %8.1f ms   (%.1f MB, %.0f MB/s)\n",
                seconds * 1e3, mb, mb / seconds);
  }

  std::remove(path.c_str());
  return 0;
}
