// Table 1 reproduction: the optimization gate — each optimization with the
// scheme properties it requires. Printed from the gate's decision logic
// itself (OperatorRequirement / DirectionRequirement feed the same switch
// that IsOptimizationValid executes), not a hardcoded table.

#include <cstdio>

#include "core/optimization_gate.h"

int main() {
  using namespace graft::core;
  std::printf("Table 1 — optimization gate (requirements for score "
              "consistency)\n");
  std::printf("%-18s | %-26s | %-14s\n", "OPTIMIZATION", "OPERATOR REQ.",
              "DIRECTION REQ.");
  std::printf("-------------------+----------------------------+-----------"
              "-----\n");
  for (const Optimization opt : kAllOptimizations) {
    std::printf("%-18s | %-26s | %-14s\n", OptimizationName(opt).c_str(),
                OperatorRequirement(opt).c_str(),
                DirectionRequirement(opt).c_str());
  }

  // Demonstrate the gate executing: a worst-case scheme declaration admits
  // exactly the four unrestricted classical optimizations.
  graft::sa::SchemeProperties hostile;
  hostile.direction = graft::sa::Direction::kRowFirst;
  hostile.positional = true;
  std::printf("\nWorst-case declaration (row-first, positional, no algebraic "
              "properties)\nadmits:");
  for (const Optimization opt : ValidOptimizations(hostile)) {
    std::printf(" [%s]", OptimizationName(opt).c_str());
  }
  std::printf("\n— the classical rewrites are never restricted "
              "(Section 5.2.4): decoupling\nscoring from match computation "
              "is what keeps join reordering, selection\npushing, zig-zag "
              "joins, and eager counting unconditionally valid.\n");
  return 0;
}
