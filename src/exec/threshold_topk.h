// Fagin's Threshold Algorithm (TA) as a GRAFT top-k physical operator.
//
// "Optimal Aggregation Algorithms for Middleware" (Fagin, Lotem, Naor):
// per-keyword streams sorted by column score are consumed round-robin
// (sorted access); every newly seen document is completed immediately by
// random access to the other lists; execution stops as soon as the k-th
// best exact score is at least the threshold τ = ω(⊘/⊚-fold of the last
// value seen under sorted access in each list). TA is instance-optimal
// among algorithms using sorted + random access.
//
// Relationship to TopKRankEngine (rank_join.h): both are threshold-family,
// but TopKRankEngine is the relational HRJN formulation with per-engine
// stream caching and a next-entry threshold; ThresholdTopK is the textbook
// TA with last-seen thresholds and explicit sorted/random access counters,
// selectable via SearchOptions::topk_strategy for head-to-head comparison.
//
// Score consistency: the scoring path is the exact α/⊘/⊚/⊕/ω pipeline of
// the full engine (topk_common.h), so results are bit-identical to the
// unpruned top-k; the gate below only admits (query, scheme) pairs where
// the threshold bound is sound (Table-1 rank-join/rank-union rows plus the
// ⊕-idempotence implementation constraint on stream-tail bounds).

#ifndef GRAFT_EXEC_THRESHOLD_TOPK_H_
#define GRAFT_EXEC_THRESHOLD_TOPK_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "index/stats.h"
#include "ma/match_table.h"
#include "mcalc/ast.h"
#include "sa/scoring_scheme.h"

namespace graft::exec {

// TA bookkeeping, in Fagin et al.'s access-cost model.
struct TaStats {
  uint64_t sorted_accesses = 0;    // stream entries consumed in score order
  uint64_t random_accesses = 0;    // per-list tf probes completing candidates
  uint64_t candidates_scored = 0;  // documents fully scored
  uint64_t heap_ops = 0;           // top-k inserts + evictions
  uint64_t threshold_checks = 0;   // τ evaluations (one per round)
  // sorted_accesses when the threshold stop fired (TA aggregation depth);
  // equals sorted_accesses when the streams were exhausted first.
  uint64_t stopping_depth = 0;
  uint64_t total_entries = 0;      // sum of the streams' lengths
  // Stream entries never consumed: the work the threshold stop avoided.
  uint64_t entries_pruned() const {
    return total_entries > sorted_accesses
               ? total_entries - sorted_accesses
               : 0;
  }
};

class ThresholdTopK {
 public:
  // `global` (optional) installs whole-corpus collection statistics; used
  // when `index` is one segment of a SegmentedIndex so per-segment top-k
  // scores match the monolithic index exactly.
  ThresholdTopK(const index::InvertedIndex* index,
                const sa::ScoringScheme* scheme,
                const index::StatsOverlay* overlay = nullptr,
                const index::GlobalStats* global = nullptr)
      : stats_view_(index, overlay, global), scheme_(scheme) {}

  // Empty string when TA is licensed for this query + scheme; otherwise
  // the human-readable EXPLAIN verdict ("blocked: ...", "blocked by
  // gate: ...").
  static std::string GateVerdict(const mcalc::Query& query,
                                 const sa::ScoringScheme& scheme);

  static bool Supports(const mcalc::Query& query,
                       const sa::ScoringScheme& scheme) {
    return GateVerdict(query, scheme).empty();
  }

  StatusOr<std::vector<ma::ScoredDoc>> TopK(const mcalc::Query& query,
                                            size_t k);

  const TaStats& stats() const { return stats_; }

 private:
  index::StatsView stats_view_;
  const sa::ScoringScheme* scheme_;
  TaStats stats_;
};

}  // namespace graft::exec

#endif  // GRAFT_EXEC_THRESHOLD_TOPK_H_
