// Fagin's No-Random-Access algorithm (NRA) as a GRAFT top-k operator.
//
// "Optimal Aggregation Algorithms for Middleware" (Fagin, Lotem, Naor):
// when random access is unavailable (or priced out — e.g. remote impact-
// ordered posting shards), candidates are maintained with bound-pair
// bookkeeping instead of immediate completion. Sorted access feeds each
// candidate's per-column knowledge; a candidate's score becomes exact once
// every column is known — either seen under sorted access or implied zero
// by an exhausted stream — and unresolved candidates carry an upper bound
// assembled from the streams' last-seen values. Execution stops when the
// k-th best exact score dominates every unresolved candidate's upper bound
// and the threshold for completely unseen documents.
//
// Score consistency: exact scores come from the full engine's α/⊘/⊚/⊕/ω
// pipeline (topk_common.h); bounds only decide when to stop, never a
// returned score. On top of the Table-1 rank-join/rank-union gate and the
// ⊕-idempotence constraint shared with TA, NRA requires a *bounded* α
// (sa/properties.h): its bound pairs substitute a tail entry's internal
// score for an unknown column, which is an upper bound only when α is
// monotone and non-primary slots are invariant across one term's cells.

#ifndef GRAFT_EXEC_NRA_TOPK_H_
#define GRAFT_EXEC_NRA_TOPK_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "index/stats.h"
#include "ma/match_table.h"
#include "mcalc/ast.h"
#include "sa/scoring_scheme.h"

namespace graft::exec {

// NRA bookkeeping, in Fagin et al.'s access-cost model (no random
// accesses by construction).
struct NraStats {
  uint64_t sorted_accesses = 0;      // stream entries consumed in score order
  uint64_t candidates_tracked = 0;   // distinct documents ever buffered
  uint64_t candidates_resolved = 0;  // candidates whose score became exact
  uint64_t bound_refinements = 0;    // candidate upper-bound evaluations
  uint64_t heap_ops = 0;             // top-k inserts + evictions
  uint64_t rounds = 0;               // sorted-access rounds executed
  // sorted_accesses when the stop condition fired; equals sorted_accesses
  // when the streams were exhausted first.
  uint64_t stopping_depth = 0;
  uint64_t total_entries = 0;        // sum of the streams' lengths
  uint64_t entries_pruned() const {
    return total_entries > sorted_accesses
               ? total_entries - sorted_accesses
               : 0;
  }
};

class NraTopK {
 public:
  // `global` (optional) installs whole-corpus collection statistics; used
  // when `index` is one segment of a SegmentedIndex so per-segment top-k
  // scores match the monolithic index exactly.
  NraTopK(const index::InvertedIndex* index, const sa::ScoringScheme* scheme,
          const index::StatsOverlay* overlay = nullptr,
          const index::GlobalStats* global = nullptr)
      : stats_view_(index, overlay, global), scheme_(scheme) {}

  // Empty string when NRA is licensed for this query + scheme; otherwise
  // the human-readable EXPLAIN verdict.
  static std::string GateVerdict(const mcalc::Query& query,
                                 const sa::ScoringScheme& scheme);

  static bool Supports(const mcalc::Query& query,
                       const sa::ScoringScheme& scheme) {
    return GateVerdict(query, scheme).empty();
  }

  StatusOr<std::vector<ma::ScoredDoc>> TopK(const mcalc::Query& query,
                                            size_t k);

  const NraStats& stats() const { return stats_; }

 private:
  index::StatsView stats_view_;
  const sa::ScoringScheme* scheme_;
  NraStats stats_;
};

}  // namespace graft::exec

#endif  // GRAFT_EXEC_NRA_TOPK_H_
