#include "exec/rank_join.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "core/optimization_gate.h"

namespace graft::exec {

namespace {

// Query shape probe: And(keywords...) or Or(keywords...) or one keyword.
enum class Shape { kUnsupported, kConjunction, kDisjunction };

Shape QueryShape(const mcalc::Query& query,
                 std::vector<const mcalc::Node*>* keywords) {
  const mcalc::Node& root = *query.root;
  if (root.kind == mcalc::NodeKind::kKeyword) {
    keywords->push_back(&root);
    return Shape::kConjunction;
  }
  if (root.kind != mcalc::NodeKind::kAnd &&
      root.kind != mcalc::NodeKind::kOr) {
    return Shape::kUnsupported;
  }
  for (const mcalc::NodePtr& child : root.children) {
    if (child->kind != mcalc::NodeKind::kKeyword) {
      return Shape::kUnsupported;
    }
    keywords->push_back(child.get());
  }
  return root.kind == mcalc::NodeKind::kAnd ? Shape::kConjunction
                                            : Shape::kDisjunction;
}

}  // namespace

bool TopKRankEngine::Supports(const mcalc::Query& query,
                              const sa::ScoringScheme& scheme) {
  std::vector<const mcalc::Node*> keywords;
  const Shape shape = QueryShape(query, &keywords);
  if (shape == Shape::kUnsupported || keywords.empty()) {
    return false;
  }
  const core::Optimization opt = shape == Shape::kConjunction
                                     ? core::Optimization::kRankJoin
                                     : core::Optimization::kRankUnion;
  if (!core::IsOptimizationValid(opt, scheme.properties())) {
    return false;
  }
  // Implementation constraint on top of the Table-1 gate: this TA-style
  // engine bounds unseen documents with per-column stream tails, which is
  // exact only when ⊕ over a column's equal alternates is idempotent
  // (AnySum, Lucene). Schemes whose ⊕ accumulates multiplicities
  // (Join-Normalized, MeanSum) admit rank joins in principle but need
  // multiplicity-aware bounds this implementation does not provide.
  return scheme.properties().alt.idempotent;
}

StatusOr<std::vector<ma::ScoredDoc>> TopKRankEngine::TopK(
    const mcalc::Query& query, size_t k) {
  std::vector<const mcalc::Node*> keywords;
  const Shape shape = QueryShape(query, &keywords);
  if (shape == Shape::kUnsupported) {
    return Status::InvalidArgument(
        "rank processing supports only pure keyword conjunctions or "
        "disjunctions");
  }
  if (!Supports(query, *scheme_)) {
    return Status::FailedPrecondition(
        "scheme properties do not admit rank-join/rank-union (Table 1)");
  }
  stats_ = RankStats();

  const index::InvertedIndex& index = stats_view_.index();
  const size_t n = keywords.size();
  sa::QueryContext query_ctx;
  query_ctx.num_columns = static_cast<uint32_t>(n);

  struct Input {
    TermId term = kInvalidTerm;
    const std::vector<std::pair<DocId, double>>* entries = nullptr;
    const std::unordered_map<DocId, uint32_t>* tf = nullptr;
    size_t next = 0;

    bool empty() const { return entries == nullptr || entries->empty(); }
    size_t size() const { return entries == nullptr ? 0 : entries->size(); }
  };

  const auto doc_context = [this](DocId doc) {
    sa::DocContext ctx;
    ctx.doc = doc;
    ctx.length = stats_view_.DocLength(doc);
    ctx.collection_size = stats_view_.CollectionSize();
    ctx.avg_doc_length = stats_view_.AverageDocLength();
    return ctx;
  };
  // The column score: the ⊕-fold of the tf equal alternates = ⊗.
  const auto column_score_tf = [&](TermId term, uint32_t tf, DocId doc) {
    sa::ColumnContext col;
    col.term = term;
    col.doc_freq = term == kInvalidTerm ? 0 : stats_view_.DocFreq(term);
    col.tf_in_doc = tf;
    const sa::DocContext dctx = doc_context(doc);
    if (tf == 0) {
      return scheme_->Init(dctx, col, kEmptyOffset);
    }
    const sa::InternalScore unit = scheme_->Init(dctx, col, /*offset=*/0);
    return tf <= 1 ? unit : scheme_->Scale(unit, tf);
  };
  const auto column_score = [&](TermId term, DocId doc) {
    const uint32_t tf =
        term == kInvalidTerm ? 0 : stats_view_.TermFreqInDoc(term, doc);
    return column_score_tf(term, tf, doc);
  };

  // Resolve the score-ordered streams. A production system keeps these as
  // impact-ordered postings; here they are built once per term and cached
  // on the engine, so repeated queries pay only for consumption.
  std::vector<Input> inputs(n);
  for (size_t i = 0; i < n; ++i) {
    inputs[i].term = index.LookupTerm(keywords[i]->keyword);
    if (inputs[i].term == kInvalidTerm) {
      if (shape == Shape::kConjunction) {
        return std::vector<ma::ScoredDoc>{};  // term absent: no matches
      }
      continue;
    }
    auto [it, inserted] = stream_cache_.try_emplace(inputs[i].term);
    if (inserted) {
      ++stats_.streams_built;
      const index::PostingList& list = index.postings(inputs[i].term);
      it->second.entries.reserve(list.doc_count());
      it->second.tf.reserve(list.doc_count());
      for (size_t p = 0; p < list.doc_count(); ++p) {
        const DocId doc = list.doc_at(p);
        const uint32_t tf = list.tf_at(p);
        it->second.tf.emplace(doc, tf);
        it->second.entries.emplace_back(
            doc, column_score_tf(inputs[i].term, tf, doc).a);
      }
      std::sort(it->second.entries.begin(), it->second.entries.end(),
                [](const std::pair<DocId, double>& a,
                   const std::pair<DocId, double>& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
    }
    inputs[i].entries = &it->second.entries;
    inputs[i].tf = &it->second.tf;
    stats_.total_candidates += it->second.entries.size();
  }

  // Combines the per-column scores of a document into its final score.
  // Random access resolves tf through the cached per-term maps: O(1).
  const auto full_score = [&](DocId doc, bool* matches) {
    *matches = true;
    sa::InternalScore acc;
    bool first = true;
    for (size_t i = 0; i < n; ++i) {
      uint32_t tf = 0;
      if (inputs[i].tf != nullptr) {
        const auto it = inputs[i].tf->find(doc);
        tf = it == inputs[i].tf->end() ? 0 : it->second;
      }
      if (shape == Shape::kConjunction && tf == 0) {
        *matches = false;
        return 0.0;
      }
      sa::InternalScore column = column_score_tf(inputs[i].term, tf, doc);
      if (first) {
        acc = std::move(column);
        first = false;
      } else {
        acc = shape == Shape::kConjunction ? scheme_->Conj(acc, column)
                                           : scheme_->Disj(acc, column);
      }
    }
    return scheme_->Finalize(doc_context(doc), query_ctx, acc);
  };

  // Threshold-algorithm loop: round-robin pulls in score order; each new
  // document is completed by random access; stop when the k-th best result
  // dominates the threshold assembled from the streams' tails.
  std::vector<ma::ScoredDoc> top;
  std::unordered_set<DocId> seen;
  const auto worst_kept = [&]() {
    return top.size() < k ? -std::numeric_limits<double>::infinity()
                          : top.back().score;
  };
  const auto consider = [&](DocId doc) {
    if (!seen.insert(doc).second) {
      return;
    }
    bool matches = false;
    const double score = full_score(doc, &matches);
    ++stats_.candidates_scored;
    if (!matches) {
      return;
    }
    ma::ScoredDoc candidate{doc, score};
    const auto position = std::upper_bound(
        top.begin(), top.end(), candidate,
        [](const ma::ScoredDoc& a, const ma::ScoredDoc& b) {
          if (a.score != b.score) return a.score > b.score;
          return a.doc < b.doc;
        });
    top.insert(position, candidate);
    ++stats_.heap_ops;
    if (top.size() > k) {
      top.pop_back();
      ++stats_.heap_ops;
    }
  };

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < n; ++i) {
      Input& input = inputs[i];
      if (input.next >= input.size()) {
        continue;
      }
      const DocId pulled_doc = (*input.entries)[input.next++].first;
      ++stats_.entries_pulled;
      progressed = true;
      consider(pulled_doc);
    }
    if (!progressed) {
      break;
    }
    // Threshold: the best score any unseen document could still reach.
    // Conjunction: every column of an unseen doc is bounded by its
    // stream's tail value; disjunction likewise. Exhausted streams bound
    // by their final (smallest) value or by an ∅-column for disjunction.
    sa::InternalScore bound;
    bool first = true;
    bool bound_valid = true;
    for (size_t i = 0; i < n; ++i) {
      const Input& input = inputs[i];
      sa::InternalScore tail;
      if (input.empty()) {
        if (shape == Shape::kConjunction) {
          bound_valid = false;
          break;
        }
        tail = sa::InternalScore(0.0);
      } else {
        const size_t idx = std::min(input.next, input.size() - 1);
        // Reconstruct the tail's internal score from its document.
        tail = column_score(input.term, (*input.entries)[idx].first);
      }
      if (first) {
        bound = std::move(tail);
        first = false;
      } else {
        bound = shape == Shape::kConjunction ? scheme_->Conj(bound, tail)
                                             : scheme_->Disj(bound, tail);
      }
    }
    if (bound_valid && top.size() >= k) {
      // ω is monotone in the aggregate for rank-eligible schemes.
      sa::DocContext generic;
      generic.length = 1;
      generic.collection_size = stats_view_.CollectionSize();
      generic.avg_doc_length = stats_view_.AverageDocLength();
      const double threshold =
          scheme_->Finalize(generic, query_ctx, bound);
      if (worst_kept() >= threshold) {
        break;
      }
    }
  }
  stats_.stopping_depth = stats_.entries_pulled;
  return top;
}

}  // namespace graft::exec
