#include "exec/executor.h"

#include <algorithm>

namespace graft::exec {

StatusOr<std::vector<ma::ScoredDoc>> Executor::ExecuteRanked(
    const ma::PlanNode& plan) {
  if (plan.schema.columns.size() != 1 ||
      plan.schema.columns[0].kind != ma::Column::Kind::kScore) {
    return Status::InvalidArgument(
        "ranked execution expects a single score column, got " +
        plan.schema.ToString());
  }
  EvalEnv env(index_, scheme_, query_ctx_, overlay_, &stats_, global_);
  GRAFT_ASSIGN_OR_RETURN(DocOperatorPtr root, BuildOperator(plan, &env));

  std::vector<ma::ScoredDoc> results;
  DocId next = 0;
  ma::Tuple row;
  while (root->AdvanceDoc(next)) {
    const DocId doc = root->doc();
    ++stats_.docs_visited;
    // A complete scoring plan emits exactly one row per document.
    if (root->NextRow(&row)) {
      results.push_back(ma::ScoredDoc{doc, row.values[0].score.a});
    }
    if (doc == kInvalidDoc - 1) break;
    next = doc + 1;
  }
  std::sort(results.begin(), results.end(),
            [](const ma::ScoredDoc& a, const ma::ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  return results;
}

StatusOr<ma::MatchTable> Executor::ExecuteTable(const ma::PlanNode& plan) {
  EvalEnv env(index_, scheme_, query_ctx_, overlay_, &stats_, global_);
  GRAFT_ASSIGN_OR_RETURN(DocOperatorPtr root, BuildOperator(plan, &env));

  ma::MatchTable table;
  table.schema = plan.schema;
  DocId next = 0;
  ma::Tuple row;
  while (root->AdvanceDoc(next)) {
    const DocId doc = root->doc();
    ++stats_.docs_visited;
    while (root->NextRow(&row)) {
      table.rows.push_back(std::move(row));
    }
    if (doc == kInvalidDoc - 1) break;
    next = doc + 1;
  }
  return table;
}

}  // namespace graft::exec
