// Streaming physical operators.
//
// Execution is document-at-a-time: every operator exposes a document
// cursor (AdvanceDoc) and a lazy row iterator for the current document
// (NextRow). This shape gives the paper's physical techniques directly:
//
//   * AdvanceDoc(min_doc) propagates skip targets down to the index scans,
//     which gallop — this is the zig-zag join / skip-pointer machinery
//     (Section 5.2.1): a join aligns its inputs by leapfrogging doc ids.
//   * Rows are produced lazily, so an alternate-elimination operator that
//     takes one row per document implicitly signals every operator below
//     it to skip the rest of the document's tuples (Section 5.2.3) — and a
//     join that produces only one row per doc behaves as the stateless
//     forward-scan join (Section 5.2.2).
//   * EagerCountScanOp iterates the term-position postings to count
//     (classical eager counting); PreCountScanOp reads the term-document
//     arrays and never touches position memory (pre-counting).
//
// Operators are built from resolved logical plans by BuildOperator.

#ifndef GRAFT_EXEC_OPERATORS_H_
#define GRAFT_EXEC_OPERATORS_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "index/stats.h"
#include "ma/plan.h"
#include "sa/scoring_scheme.h"

namespace graft::exec {

// Per-query execution counters: what the physical operators actually did.
// Surfaced by EXPLAIN ANALYZE / ?explain=1 and compared against cost-model
// predictions; tests use them to verify physical claims (e.g. that
// pre-counting touches no position entries).
struct ExecStats {
  uint64_t positions_scanned = 0;      // term positions read (A scans)
  uint64_t count_entries_scanned = 0;  // doc/tf entries read (CA scans)
  uint64_t rows_built = 0;             // join output rows materialized
  uint64_t docs_visited = 0;           // documents surfaced by the root
  uint64_t blocks_decoded = 0;         // varint position blocks decoded
  uint64_t gallop_probes = 0;          // doc-id comparisons inside GallopTo
  uint64_t skip_calls = 0;             // SkipTo invocations by operators
  uint64_t skip_hits = 0;              // SkipTo calls that leapfrogged >= 1
                                       // posting (the zig-zag payoff)
  // Rank-processing (threshold algorithm) counters; zero on the full
  // streaming path.
  uint64_t rank_heap_ops = 0;        // top-k candidate inserts + evictions
  uint64_t rank_stopping_depth = 0;  // sorted entries pulled before stop
  uint64_t docs_scored = 0;          // candidates fully scored
  uint64_t docs_pruned = 0;          // candidate postings never completed
  // Block-max pruning counters; zero unless the MaxScoreTopK path ran.
  uint64_t topk_blocks_skipped = 0;     // whole-block skips via ceilings
  uint64_t topk_blocks_decoded = 0;     // distinct posting blocks read by
                                        // the pruned operator (vs. every
                                        // block on the unpruned top-k)
  uint64_t topk_ceiling_probes = 0;     // block/term ceiling evaluations
  uint64_t topk_threshold_updates = 0;  // k-th-best-score improvements
  // Fagin middleware-aggregation counters; zero unless the ThresholdTopK
  // (TA) or NraTopK (NRA) strategy ran.
  uint64_t topk_sorted_accesses = 0;    // score-ordered stream entries read
  uint64_t topk_random_accesses = 0;    // TA candidate completions by probe
  uint64_t topk_bound_refinements = 0;  // NRA candidate upper-bound updates
  // Decoded-block cache traffic (v5 mmap indexes); zero on materialized
  // indexes. Harvested from the thread-local BlockCache accumulator around
  // query execution by the engine.
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t block_cache_evictions = 0;
  uint64_t packed_payload_decodes = 0;  // blocks whose score payload (tfs +
                                        // offset lengths) was bit-unpacked
  // Per-rewrite-rule fired counters, indexed by the rule's position in
  // core::RewriteRuleRegistry (kAllOptimizations order). Sized with slack
  // so exec/ needs no core/ include; the engine stamps one count per fired
  // rule per query and the server aggregates them into /metrics.
  static constexpr size_t kMaxRules = 16;
  uint64_t rule_fired[kMaxRules] = {};

  void Accumulate(const ExecStats& other) {
    positions_scanned += other.positions_scanned;
    count_entries_scanned += other.count_entries_scanned;
    rows_built += other.rows_built;
    docs_visited += other.docs_visited;
    blocks_decoded += other.blocks_decoded;
    gallop_probes += other.gallop_probes;
    skip_calls += other.skip_calls;
    skip_hits += other.skip_hits;
    rank_heap_ops += other.rank_heap_ops;
    rank_stopping_depth += other.rank_stopping_depth;
    docs_scored += other.docs_scored;
    docs_pruned += other.docs_pruned;
    topk_blocks_skipped += other.topk_blocks_skipped;
    topk_blocks_decoded += other.topk_blocks_decoded;
    topk_ceiling_probes += other.topk_ceiling_probes;
    topk_threshold_updates += other.topk_threshold_updates;
    topk_sorted_accesses += other.topk_sorted_accesses;
    topk_random_accesses += other.topk_random_accesses;
    topk_bound_refinements += other.topk_bound_refinements;
    block_cache_hits += other.block_cache_hits;
    block_cache_misses += other.block_cache_misses;
    block_cache_evictions += other.block_cache_evictions;
    packed_payload_decodes += other.packed_payload_decodes;
    for (size_t i = 0; i < kMaxRules; ++i) {
      rule_fired[i] += other.rule_fired[i];
    }
  }
};

// Shared evaluation environment.
struct EvalEnv {
  index::StatsView stats;
  const sa::ScoringScheme* scheme = nullptr;  // may be null (no scoring ops)
  sa::QueryContext query_ctx;
  ExecStats* counters = nullptr;

  EvalEnv(const index::InvertedIndex* index, const sa::ScoringScheme* s,
          sa::QueryContext qctx, const index::StatsOverlay* overlay,
          ExecStats* c, const index::GlobalStats* global = nullptr)
      : stats(index, overlay, global), scheme(s), query_ctx(qctx),
        counters(c) {}
};

class DocOperator {
 public:
  virtual ~DocOperator() = default;

  // Positions the operator at the first document with at least one output
  // row whose id is >= min_doc. If the current document already satisfies
  // that, stays (without disturbing row iteration). Returns false when no
  // such document exists.
  virtual bool AdvanceDoc(DocId min_doc) = 0;

  // Valid after AdvanceDoc returned true.
  DocId doc() const { return current_doc_; }

  // Produces the next row of the current document, or returns false.
  // Moving to a new document resets iteration.
  virtual bool NextRow(ma::Tuple* out) = 0;

 protected:
  DocId current_doc_ = kInvalidDoc;
  bool started_ = false;
};

using DocOperatorPtr = std::unique_ptr<DocOperator>;

// Builds the operator tree for a resolved plan. The plan must outlive the
// returned operator (operators reference its schemas and expressions).
StatusOr<DocOperatorPtr> BuildOperator(const ma::PlanNode& node,
                                       EvalEnv* env);

}  // namespace graft::exec

#endif  // GRAFT_EXEC_OPERATORS_H_
