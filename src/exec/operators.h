// Streaming physical operators.
//
// Execution is document-at-a-time: every operator exposes a document
// cursor (AdvanceDoc) and a lazy row iterator for the current document
// (NextRow). This shape gives the paper's physical techniques directly:
//
//   * AdvanceDoc(min_doc) propagates skip targets down to the index scans,
//     which gallop — this is the zig-zag join / skip-pointer machinery
//     (Section 5.2.1): a join aligns its inputs by leapfrogging doc ids.
//   * Rows are produced lazily, so an alternate-elimination operator that
//     takes one row per document implicitly signals every operator below
//     it to skip the rest of the document's tuples (Section 5.2.3) — and a
//     join that produces only one row per doc behaves as the stateless
//     forward-scan join (Section 5.2.2).
//   * EagerCountScanOp iterates the term-position postings to count
//     (classical eager counting); PreCountScanOp reads the term-document
//     arrays and never touches position memory (pre-counting).
//
// Operators are built from resolved logical plans by BuildOperator.

#ifndef GRAFT_EXEC_OPERATORS_H_
#define GRAFT_EXEC_OPERATORS_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "index/stats.h"
#include "ma/plan.h"
#include "sa/scoring_scheme.h"

namespace graft::exec {

// Execution counters for benches and tests (e.g. verifying that
// pre-counting touches no position entries).
struct ExecStats {
  uint64_t positions_scanned = 0;
  uint64_t count_entries_scanned = 0;
  uint64_t rows_built = 0;
  uint64_t docs_visited = 0;
};

// Shared evaluation environment.
struct EvalEnv {
  index::StatsView stats;
  const sa::ScoringScheme* scheme = nullptr;  // may be null (no scoring ops)
  sa::QueryContext query_ctx;
  ExecStats* counters = nullptr;

  EvalEnv(const index::InvertedIndex* index, const sa::ScoringScheme* s,
          sa::QueryContext qctx, const index::StatsOverlay* overlay,
          ExecStats* c, const index::GlobalStats* global = nullptr)
      : stats(index, overlay, global), scheme(s), query_ctx(qctx),
        counters(c) {}
};

class DocOperator {
 public:
  virtual ~DocOperator() = default;

  // Positions the operator at the first document with at least one output
  // row whose id is >= min_doc. If the current document already satisfies
  // that, stays (without disturbing row iteration). Returns false when no
  // such document exists.
  virtual bool AdvanceDoc(DocId min_doc) = 0;

  // Valid after AdvanceDoc returned true.
  DocId doc() const { return current_doc_; }

  // Produces the next row of the current document, or returns false.
  // Moving to a new document resets iteration.
  virtual bool NextRow(ma::Tuple* out) = 0;

 protected:
  DocId current_doc_ = kInvalidDoc;
  bool started_ = false;
};

using DocOperatorPtr = std::unique_ptr<DocOperator>;

// Builds the operator tree for a resolved plan. The plan must outlive the
// returned operator (operators reference its schemas and expressions).
StatusOr<DocOperatorPtr> BuildOperator(const ma::PlanNode& node,
                                       EvalEnv* env);

}  // namespace graft::exec

#endif  // GRAFT_EXEC_OPERATORS_H_
