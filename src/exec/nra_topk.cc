#include "exec/nra_topk.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/optimization_gate.h"
#include "exec/topk_common.h"

namespace graft::exec {

namespace {

// Candidate bookkeeping bit-masks cap the keyword count; far above any
// realistic pure-keyword query, and the gate reports it honestly.
constexpr size_t kMaxNraColumns = 64;

}  // namespace

std::string NraTopK::GateVerdict(const mcalc::Query& query,
                                 const sa::ScoringScheme& scheme) {
  std::vector<const mcalc::Node*> keywords;
  const topk::Shape shape = topk::QueryShape(query, &keywords);
  if (shape == topk::Shape::kUnsupported || keywords.empty()) {
    return "blocked: not a pure keyword conjunction or disjunction";
  }
  if (keywords.size() > kMaxNraColumns) {
    return "blocked: more than 64 keywords (candidate mask width)";
  }
  const core::Optimization opt = shape == topk::Shape::kConjunction
                                     ? core::Optimization::kRankJoin
                                     : core::Optimization::kRankUnion;
  if (!core::IsOptimizationValid(opt, scheme.properties())) {
    return "blocked by gate: " +
           core::ExplainGate(opt, scheme.properties()).reason;
  }
  if (!scheme.properties().alt.idempotent) {
    return "blocked: ⊕ not idempotent (stream tails cannot bound unseen "
           "documents)";
  }
  // NRA-specific: the upper bound of a partially known candidate
  // substitutes a stream tail's internal score for each unknown column,
  // which over-approximates only when α is upper-boundable (monotone with
  // term-invariant non-primary slots) — the `bounded` property.
  if (!scheme.properties().bounded) {
    return "blocked by gate: α not upper-boundable (NRA bound pairs need "
           "a bounded α)";
  }
  return "";
}

StatusOr<std::vector<ma::ScoredDoc>> NraTopK::TopK(const mcalc::Query& query,
                                                   size_t k) {
  std::vector<const mcalc::Node*> keywords;
  const topk::Shape shape = topk::QueryShape(query, &keywords);
  const std::string verdict = GateVerdict(query, *scheme_);
  if (!verdict.empty()) {
    return Status::FailedPrecondition("NRA top-k " + verdict);
  }
  stats_ = NraStats();
  if (k == 0) {
    return std::vector<ma::ScoredDoc>{};
  }

  const index::InvertedIndex& index = stats_view_.index();
  const size_t n = keywords.size();
  const topk::ColumnScorer scorer(&stats_view_, scheme_,
                                  static_cast<uint32_t>(n));
  const bool conj = shape == topk::Shape::kConjunction;

  // Sorted-access streams carry (doc, primary score, tf): NRA may not
  // probe a list by document, so the tf rides along with the entry.
  struct Entry {
    DocId doc;
    double score;
    uint32_t tf;
  };
  struct Input {
    TermId term = kInvalidTerm;
    std::vector<Entry> entries;  // score desc, doc asc
    size_t next = 0;

    bool exhausted() const { return next >= entries.size(); }
  };
  std::vector<Input> inputs(n);
  for (size_t i = 0; i < n; ++i) {
    inputs[i].term = index.LookupTerm(keywords[i]->keyword);
    if (inputs[i].term == kInvalidTerm) {
      if (conj) {
        return std::vector<ma::ScoredDoc>{};  // term absent: no matches
      }
      continue;
    }
    const index::PostingList& list = index.postings(inputs[i].term);
    inputs[i].entries.reserve(list.doc_count());
    for (size_t p = 0; p < list.doc_count(); ++p) {
      const DocId doc = list.doc_at(p);
      const uint32_t tf = list.tf_at(p);
      inputs[i].entries.push_back(
          Entry{doc, scorer.ColumnScoreTf(inputs[i].term, tf, doc).a, tf});
    }
    std::sort(inputs[i].entries.begin(), inputs[i].entries.end(),
              [](const Entry& a, const Entry& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    stats_.total_entries += inputs[i].entries.size();
  }

  // Bound-pair bookkeeping: per candidate, the columns seen under sorted
  // access (bitmask) with their term frequencies. A column is *known* when
  // seen, or when its stream is exhausted (the full list passed by without
  // the document: tf == 0 exactly — legitimate NRA knowledge, not a random
  // access).
  struct Cand {
    std::vector<uint32_t> tf;
    uint64_t seen = 0;
  };
  std::unordered_map<DocId, Cand> cands;
  std::unordered_set<DocId> done;  // resolved (emitted or discarded)

  std::vector<ma::ScoredDoc> top;
  const auto worst_kept = [&]() {
    return top.size() < k ? -std::numeric_limits<double>::infinity()
                          : top.back().score;
  };
  const auto emit = [&](DocId doc, double score) {
    ma::ScoredDoc candidate{doc, score};
    const auto position = std::upper_bound(
        top.begin(), top.end(), candidate,
        [](const ma::ScoredDoc& a, const ma::ScoredDoc& b) {
          if (a.score != b.score) return a.score > b.score;
          return a.doc < b.doc;
        });
    top.insert(position, candidate);
    ++stats_.heap_ops;
    if (top.size() > k) {
      top.pop_back();
      ++stats_.heap_ops;
    }
  };

  // The column score of (doc, column i) given the candidate's knowledge,
  // or the stream-tail over-approximation when unknown. `exact` reports
  // whether the value is the true column score.
  const auto column_bound = [&](DocId doc, const Cand& cand, size_t i,
                                bool* exact) {
    *exact = true;
    if ((cand.seen >> i) & 1) {
      return scorer.ColumnScoreTf(inputs[i].term, cand.tf[i], doc);
    }
    if (inputs[i].exhausted()) {
      // Whole list passed by without this document: tf is exactly 0.
      return scorer.ColumnScoreTf(inputs[i].term, 0, doc);
    }
    *exact = false;
    // Unseen entries of a live stream sort at or below the last pulled
    // one; reconstruct its internal score from its own document (sound
    // for bounded α: non-primary slots are term-invariant).
    const Entry& tail = inputs[i].entries[inputs[i].next - 1];
    return scorer.ColumnScoreTf(inputs[i].term, tail.tf, tail.doc);
  };

  bool stopped = false;
  while (!stopped) {
    // One NRA round: one sorted access per live stream.
    bool progressed = false;
    for (size_t i = 0; i < n; ++i) {
      Input& input = inputs[i];
      if (input.exhausted()) {
        continue;
      }
      const Entry& entry = input.entries[input.next++];
      ++stats_.sorted_accesses;
      progressed = true;
      if (done.count(entry.doc) != 0) {
        continue;
      }
      auto [it, inserted] = cands.try_emplace(entry.doc);
      if (inserted) {
        it->second.tf.assign(n, 0);
        ++stats_.candidates_tracked;
      }
      it->second.tf[i] = entry.tf;
      it->second.seen |= uint64_t{1} << i;
    }
    ++stats_.rounds;

    // Resolve candidates whose every column is known (seen or implied by
    // an exhausted stream); conjunctions drop candidates an exhausted
    // stream proves non-matching.
    std::vector<DocId> resolved;
    for (auto& [doc, cand] : cands) {
      bool all_known = true;
      bool dead = false;
      for (size_t i = 0; i < n; ++i) {
        if ((cand.seen >> i) & 1) {
          continue;
        }
        if (!inputs[i].exhausted()) {
          all_known = false;
          break;
        }
        if (conj) {
          dead = true;  // tf == 0 in a conjunction column
          break;
        }
      }
      if (!all_known && !dead) {
        continue;
      }
      resolved.push_back(doc);
      if (dead) {
        continue;
      }
      sa::InternalScore acc;
      bool first = true;
      for (size_t i = 0; i < n; ++i) {
        const uint32_t tf = ((cand.seen >> i) & 1) ? cand.tf[i] : 0;
        sa::InternalScore column =
            scorer.ColumnScoreTf(inputs[i].term, tf, doc);
        if (first) {
          acc = std::move(column);
          first = false;
        } else {
          acc = scorer.Combine(shape, acc, column);
        }
      }
      ++stats_.candidates_resolved;
      emit(doc, scorer.Finalize(doc, acc));
    }
    for (const DocId doc : resolved) {
      done.insert(doc);
      cands.erase(doc);
    }

    if (!progressed && cands.empty()) {
      break;  // streams exhausted, everything resolved
    }

    // Stop test: the k-th best exact score must dominate (a) the best
    // upper bound among unresolved candidates and (b) the threshold for
    // completely unseen documents (the TA τ over stream tails).
    if (top.size() < k) {
      continue;
    }
    double best_open = -std::numeric_limits<double>::infinity();
    for (const auto& [doc, cand] : cands) {
      sa::InternalScore acc;
      bool first = true;
      for (size_t i = 0; i < n; ++i) {
        bool exact = false;
        sa::InternalScore column = column_bound(doc, cand, i, &exact);
        if (first) {
          acc = std::move(column);
          first = false;
        } else {
          acc = scorer.Combine(shape, acc, column);
        }
      }
      ++stats_.bound_refinements;
      best_open = std::max(best_open, scorer.Finalize(doc, acc));
      if (best_open > worst_kept()) {
        break;  // cannot stop this round; skip the remaining bounds
      }
    }

    sa::InternalScore tau;
    bool tau_first = true;
    bool tau_valid = true;
    for (size_t i = 0; i < n; ++i) {
      const Input& input = inputs[i];
      sa::InternalScore tail;
      if (input.entries.empty()) {
        if (conj) {
          tau_valid = false;  // unreachable: absent conj terms exit early
          break;
        }
        tail = sa::InternalScore(0.0);
      } else if (input.exhausted() && conj) {
        // A conjunction column fully consumed: no unseen document matches.
        tau_valid = false;
        break;
      } else {
        const size_t idx = std::min(input.next, input.entries.size()) - 1;
        const Entry& last = input.entries[idx];
        tail = scorer.ColumnScoreTf(input.term, last.tf, last.doc);
      }
      if (tau_first) {
        tau = std::move(tail);
        tau_first = false;
      } else {
        tau = scorer.Combine(shape, tau, tail);
      }
    }
    double unseen_bound = -std::numeric_limits<double>::infinity();
    if (tau_valid && progressed) {
      unseen_bound = scorer.FinalizeGeneric(tau);
    }

    if (worst_kept() >= best_open && worst_kept() >= unseen_bound) {
      stopped = true;
    }
  }
  stats_.stopping_depth = stats_.sorted_accesses;
  return top;
}

}  // namespace graft::exec
