// Score-safe dynamic pruning: block-max top-k (the MaxScore / block-max
// WAND family, adapted to the GRAFT algebra).
//
// The index stores, per posting block, the inputs a *bounded* scheme needs
// to compute a score ceiling: the Pareto frontier of the block's (tf,
// document length) pairs. A bounded α is monotone ↑tf / ↓length, so every
// document in the block is dominated by some frontier point and the
// frontier's best α is the block's exact ceiling (evaluating α at the
// single (max tf, min length) point instead pairs extremes from different
// documents and is too loose to skip anything in practice). Monotone ⊘/⊚
// lift per-column ceilings to a whole-document ceiling. Blocks whose
// ceiling cannot reach the k-th best score already in the heap are skipped
// without scoring a single document.
//
// Score consistency: pruning only changes WHICH documents get scored,
// never any returned score. The scoring path is the exact α/⊘/⊚/⊕/ω
// pipeline of the full engine (replicated from TopKRankEngine), so the
// result is bit-identical to the unpruned top-k — the differential fuzzer
// enforces this across every licensed scheme.
//
// The gate (Table-1 discipline, extended): α bounded, ⊕ idempotent (so ⊗
// is the identity and the block ceiling is a single α evaluation), ⊘/⊚
// monotonic increasing, diagonal scheme; plus execution-time requirements:
// a pure keyword conjunction/disjunction, an index carrying block-max
// metadata (v4 files; v3 loads gate themselves off), and no statistics
// overlay (overridden stats would invalidate the stored ceilings).
//
// Conjunctions leapfrog the cursors and skip past the earliest-ending
// block when the folded block ceilings cannot beat the heap. Disjunctions
// use the MaxScore partition: terms are split into essential / non-
// essential by term-level upper bound; documents matching only
// non-essential terms are never driven, and the essential frontier also
// skips whole blocks via the same ceiling fold.

#ifndef GRAFT_EXEC_MAXSCORE_TOPK_H_
#define GRAFT_EXEC_MAXSCORE_TOPK_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "index/stats.h"
#include "ma/match_table.h"
#include "mcalc/ast.h"
#include "sa/scoring_scheme.h"

namespace graft::exec {

// What the pruned top-k actually did; surfaced through ExecStats and
// EXPLAIN ANALYZE, and the quantity the pruning bench reports.
struct PruneStats {
  uint64_t blocks_skipped = 0;      // whole-block skips taken via ceilings
  uint64_t blocks_decoded = 0;      // distinct posting blocks whose entries
                                    // the operator read (the unpruned top-k
                                    // reads EVERY block of every term list
                                    // to build its impact streams, so this
                                    // is the decode-work comparison)
  uint64_t ceiling_probes = 0;      // block/term ceiling evaluations (α calls)
  uint64_t threshold_updates = 0;   // heap-threshold (k-th score) improvements
  uint64_t candidates_scored = 0;   // documents fully scored
  uint64_t candidates_pruned = 0;   // driver candidates bypassed unscored
                                    // (lower bound: skips bypass >= 1 match)
  uint64_t heap_ops = 0;            // top-k inserts + evictions
};

class MaxScoreTopK {
 public:
  // `global` (optional) installs whole-corpus collection statistics; used
  // when `index` is one segment of a SegmentedIndex so per-segment pruned
  // scores match the monolithic index exactly. No overlay parameter: the
  // gate rejects overlays outright (see GateVerdict).
  MaxScoreTopK(const index::InvertedIndex* index,
               const sa::ScoringScheme* scheme,
               const index::GlobalStats* global = nullptr)
      : stats_view_(index, /*overlay=*/nullptr, global), scheme_(scheme) {}

  // Empty string when block-max pruning is licensed for this query +
  // scheme + index; otherwise the human-readable EXPLAIN verdict
  // ("blocked: no block-max metadata", "blocked by gate: ...").
  static std::string GateVerdict(const mcalc::Query& query,
                                 const sa::ScoringScheme& scheme,
                                 const index::InvertedIndex& index,
                                 const index::StatsOverlay* overlay);

  static bool Supports(const mcalc::Query& query,
                       const sa::ScoringScheme& scheme,
                       const index::InvertedIndex& index,
                       const index::StatsOverlay* overlay) {
    return GateVerdict(query, scheme, index, overlay).empty();
  }

  StatusOr<std::vector<ma::ScoredDoc>> TopK(const mcalc::Query& query,
                                            size_t k);

  const PruneStats& stats() const { return stats_; }

 private:
  index::StatsView stats_view_;
  const sa::ScoringScheme* scheme_;
  PruneStats stats_;
};

}  // namespace graft::exec

#endif  // GRAFT_EXEC_MAXSCORE_TOPK_H_
