// Plan execution driver: streams a resolved logical plan document-at-a-time
// through the physical operators and collects results.

#ifndef GRAFT_EXEC_EXECUTOR_H_
#define GRAFT_EXEC_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "exec/operators.h"
#include "ma/match_table.h"
#include "ma/plan.h"

namespace graft::exec {

class Executor {
 public:
  // `global` (optional) installs whole-corpus collection statistics; used
  // when `index` is one segment of a SegmentedIndex so scoring matches
  // the monolithic index exactly.
  Executor(const index::InvertedIndex* index, const sa::ScoringScheme* scheme,
           sa::QueryContext query_ctx,
           const index::StatsOverlay* overlay = nullptr,
           const index::GlobalStats* global = nullptr)
      : index_(index), scheme_(scheme), query_ctx_(query_ctx),
        overlay_(overlay), global_(global) {}

  // Executes a complete scoring plan (output schema: one finalized score
  // column) and returns results ranked by score desc, ties by doc asc.
  StatusOr<std::vector<ma::ScoredDoc>> ExecuteRanked(
      const ma::PlanNode& plan);

  // Executes any plan and materializes its full output (differential
  // testing against the reference evaluator).
  StatusOr<ma::MatchTable> ExecuteTable(const ma::PlanNode& plan);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  const index::InvertedIndex* index_;
  const sa::ScoringScheme* scheme_;
  sa::QueryContext query_ctx_;
  const index::StatsOverlay* overlay_;
  const index::GlobalStats* global_;
  ExecStats stats_;
};

}  // namespace graft::exec

#endif  // GRAFT_EXEC_EXECUTOR_H_
