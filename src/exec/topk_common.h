// Shared machinery for the Fagin-style middleware top-k operators
// (ThresholdTopK, NraTopK): the pure-keyword query-shape probe and the
// exact column/row scorer.
//
// The scorer reproduces the full engine's α/⊘/⊚/⊕/ω pipeline bit-for-bit
// (the same discipline as TopKRankEngine): a column's score is α at the
// first offset, ⊗-scaled by the term frequency, with tf == 0 mapping to
// the ∅ cell; the document score folds the columns in keyword order with
// ⊘/⊚ and applies ω under the real document context. Only the *set of
// documents scored* may differ between operators — never a score.

#ifndef GRAFT_EXEC_TOPK_COMMON_H_
#define GRAFT_EXEC_TOPK_COMMON_H_

#include <vector>

#include "index/stats.h"
#include "mcalc/ast.h"
#include "sa/scoring_scheme.h"

namespace graft::exec::topk {

// Query shape probe: And(keywords...) or Or(keywords...) or one keyword.
enum class Shape { kUnsupported, kConjunction, kDisjunction };

inline Shape QueryShape(const mcalc::Query& query,
                        std::vector<const mcalc::Node*>* keywords) {
  const mcalc::Node& root = *query.root;
  if (root.kind == mcalc::NodeKind::kKeyword) {
    keywords->push_back(&root);
    return Shape::kConjunction;
  }
  if (root.kind != mcalc::NodeKind::kAnd &&
      root.kind != mcalc::NodeKind::kOr) {
    return Shape::kUnsupported;
  }
  for (const mcalc::NodePtr& child : root.children) {
    if (child->kind != mcalc::NodeKind::kKeyword) {
      return Shape::kUnsupported;
    }
    keywords->push_back(child.get());
  }
  return root.kind == mcalc::NodeKind::kAnd ? Shape::kConjunction
                                            : Shape::kDisjunction;
}

class ColumnScorer {
 public:
  ColumnScorer(const index::StatsView* view, const sa::ScoringScheme* scheme,
               uint32_t num_columns)
      : view_(view), scheme_(scheme) {
    query_ctx_.num_columns = num_columns;
  }

  sa::DocContext DocCtx(DocId doc) const {
    sa::DocContext ctx;
    ctx.doc = doc;
    ctx.length = view_->DocLength(doc);
    ctx.collection_size = view_->CollectionSize();
    ctx.avg_doc_length = view_->AverageDocLength();
    return ctx;
  }

  // The column score: the ⊕-fold of the tf equal alternates = ⊗.
  sa::InternalScore ColumnScoreTf(TermId term, uint32_t tf, DocId doc) const {
    sa::ColumnContext col;
    col.term = term;
    col.doc_freq = term == kInvalidTerm ? 0 : view_->DocFreq(term);
    col.tf_in_doc = tf;
    const sa::DocContext dctx = DocCtx(doc);
    if (tf == 0) {
      return scheme_->Init(dctx, col, kEmptyOffset);
    }
    const sa::InternalScore unit = scheme_->Init(dctx, col, /*offset=*/0);
    return tf <= 1 ? unit : scheme_->Scale(unit, tf);
  }

  sa::InternalScore Combine(Shape shape, const sa::InternalScore& acc,
                            const sa::InternalScore& column) const {
    return shape == Shape::kConjunction ? scheme_->Conj(acc, column)
                                        : scheme_->Disj(acc, column);
  }

  double Finalize(DocId doc, const sa::InternalScore& acc) const {
    return scheme_->Finalize(DocCtx(doc), query_ctx_, acc);
  }

  // ω over a generic document context (length 1): used for stream-tail
  // thresholds, where no concrete document exists. ω is monotone in the
  // aggregate for the rank-eligible schemes.
  double FinalizeGeneric(const sa::InternalScore& acc) const {
    sa::DocContext generic;
    generic.length = 1;
    generic.collection_size = view_->CollectionSize();
    generic.avg_doc_length = view_->AverageDocLength();
    return scheme_->Finalize(generic, query_ctx_, acc);
  }

 private:
  const index::StatsView* view_;
  const sa::ScoringScheme* scheme_;
  sa::QueryContext query_ctx_;
};

}  // namespace graft::exec::topk

#endif  // GRAFT_EXEC_TOPK_COMMON_H_
