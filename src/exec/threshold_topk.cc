#include "exec/threshold_topk.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/optimization_gate.h"
#include "exec/topk_common.h"

namespace graft::exec {

std::string ThresholdTopK::GateVerdict(const mcalc::Query& query,
                                       const sa::ScoringScheme& scheme) {
  std::vector<const mcalc::Node*> keywords;
  const topk::Shape shape = topk::QueryShape(query, &keywords);
  if (shape == topk::Shape::kUnsupported || keywords.empty()) {
    return "blocked: not a pure keyword conjunction or disjunction";
  }
  const core::Optimization opt = shape == topk::Shape::kConjunction
                                     ? core::Optimization::kRankJoin
                                     : core::Optimization::kRankUnion;
  if (!core::IsOptimizationValid(opt, scheme.properties())) {
    return "blocked by gate: " +
           core::ExplainGate(opt, scheme.properties()).reason;
  }
  // Implementation constraint on top of the Table-1 gate (same as
  // TopKRankEngine): stream-tail thresholds are exact only when ⊕ over a
  // column's equal alternates is idempotent.
  if (!scheme.properties().alt.idempotent) {
    return "blocked: ⊕ not idempotent (stream tails cannot bound unseen "
           "documents)";
  }
  return "";
}

StatusOr<std::vector<ma::ScoredDoc>> ThresholdTopK::TopK(
    const mcalc::Query& query, size_t k) {
  std::vector<const mcalc::Node*> keywords;
  const topk::Shape shape = topk::QueryShape(query, &keywords);
  const std::string verdict = GateVerdict(query, *scheme_);
  if (!verdict.empty()) {
    return Status::FailedPrecondition("threshold top-k (TA) " + verdict);
  }
  stats_ = TaStats();
  if (k == 0) {
    return std::vector<ma::ScoredDoc>{};
  }

  const index::InvertedIndex& index = stats_view_.index();
  const size_t n = keywords.size();
  const topk::ColumnScorer scorer(&stats_view_, scheme_,
                                  static_cast<uint32_t>(n));

  // Sorted access: per-term streams ordered by column score (desc, doc
  // asc). Random access: per-term doc → tf maps. Built per query — TA's
  // cost model charges for every access, so nothing is cached across
  // queries (TopKRankEngine is the cached variant).
  struct Input {
    TermId term = kInvalidTerm;
    std::vector<std::pair<DocId, double>> entries;  // score desc, doc asc
    std::unordered_map<DocId, uint32_t> tf;
    size_t next = 0;
  };
  std::vector<Input> inputs(n);
  for (size_t i = 0; i < n; ++i) {
    inputs[i].term = index.LookupTerm(keywords[i]->keyword);
    if (inputs[i].term == kInvalidTerm) {
      if (shape == topk::Shape::kConjunction) {
        return std::vector<ma::ScoredDoc>{};  // term absent: no matches
      }
      continue;
    }
    const index::PostingList& list = index.postings(inputs[i].term);
    inputs[i].entries.reserve(list.doc_count());
    inputs[i].tf.reserve(list.doc_count());
    for (size_t p = 0; p < list.doc_count(); ++p) {
      const DocId doc = list.doc_at(p);
      const uint32_t tf = list.tf_at(p);
      inputs[i].tf.emplace(doc, tf);
      inputs[i].entries.emplace_back(
          doc, scorer.ColumnScoreTf(inputs[i].term, tf, doc).a);
    }
    std::sort(inputs[i].entries.begin(), inputs[i].entries.end(),
              [](const std::pair<DocId, double>& a,
                 const std::pair<DocId, double>& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    stats_.total_entries += inputs[i].entries.size();
  }

  // Exact document score by random access; nullopt-style (matches=false)
  // for conjunctions missing a term.
  const auto full_score = [&](DocId doc, bool* matches) {
    *matches = true;
    sa::InternalScore acc;
    bool first = true;
    for (size_t i = 0; i < n; ++i) {
      uint32_t tf = 0;
      if (!inputs[i].tf.empty()) {
        const auto it = inputs[i].tf.find(doc);
        tf = it == inputs[i].tf.end() ? 0 : it->second;
      }
      ++stats_.random_accesses;
      if (shape == topk::Shape::kConjunction && tf == 0) {
        *matches = false;
        return 0.0;
      }
      sa::InternalScore column =
          scorer.ColumnScoreTf(inputs[i].term, tf, doc);
      if (first) {
        acc = std::move(column);
        first = false;
      } else {
        acc = scorer.Combine(shape, acc, column);
      }
    }
    return scorer.Finalize(doc, acc);
  };

  std::vector<ma::ScoredDoc> top;
  std::unordered_set<DocId> seen;
  const auto worst_kept = [&]() {
    return top.size() < k ? -std::numeric_limits<double>::infinity()
                          : top.back().score;
  };
  const auto consider = [&](DocId doc) {
    if (!seen.insert(doc).second) {
      return;
    }
    bool matches = false;
    const double score = full_score(doc, &matches);
    ++stats_.candidates_scored;
    if (!matches) {
      return;
    }
    ma::ScoredDoc candidate{doc, score};
    const auto position = std::upper_bound(
        top.begin(), top.end(), candidate,
        [](const ma::ScoredDoc& a, const ma::ScoredDoc& b) {
          if (a.score != b.score) return a.score > b.score;
          return a.doc < b.doc;
        });
    top.insert(position, candidate);
    ++stats_.heap_ops;
    if (top.size() > k) {
      top.pop_back();
      ++stats_.heap_ops;
    }
  };

  // TA loop: one round = one sorted access per non-exhausted list, each
  // pulled document completed by random access; then the threshold test
  // τ = ω(fold of last-seen sorted values).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < n; ++i) {
      Input& input = inputs[i];
      if (input.next >= input.entries.size()) {
        continue;
      }
      const DocId pulled_doc = input.entries[input.next++].first;
      ++stats_.sorted_accesses;
      progressed = true;
      consider(pulled_doc);
    }
    if (!progressed) {
      break;
    }
    // τ: the best score any unseen document could still reach. The i-th
    // column of an unseen document is bounded by list i's last value seen
    // under sorted access (unseen entries sort at or below it). Exhausted
    // lists bound by their final (smallest) value — or, for disjunctions,
    // an initially empty list contributes a zero column.
    sa::InternalScore bound;
    bool first = true;
    bool bound_valid = true;
    for (size_t i = 0; i < n; ++i) {
      const Input& input = inputs[i];
      sa::InternalScore tail;
      if (input.entries.empty()) {
        if (shape == topk::Shape::kConjunction) {
          bound_valid = false;
          break;
        }
        tail = sa::InternalScore(0.0);
      } else {
        const size_t idx = std::min(input.next, input.entries.size()) - 1;
        // Reconstruct the last-seen internal score from its document (the
        // stream stores only the primary slot; non-primary slots are
        // invariant across one term's matched cells for bounded schemes).
        const DocId tail_doc = input.entries[idx].first;
        const auto it = input.tf.find(tail_doc);
        const uint32_t tf = it == input.tf.end() ? 0 : it->second;
        tail = scorer.ColumnScoreTf(input.term, tf, tail_doc);
      }
      if (first) {
        bound = std::move(tail);
        first = false;
      } else {
        bound = scorer.Combine(shape, bound, tail);
      }
    }
    if (bound_valid && top.size() >= k) {
      ++stats_.threshold_checks;
      const double threshold = scorer.FinalizeGeneric(bound);
      if (worst_kept() >= threshold) {
        break;
      }
    }
  }
  stats_.stopping_depth = stats_.sorted_accesses;
  return top;
}

}  // namespace graft::exec
