// Top-k rank-join / rank-union (Section 5.2.1).
//
// For diagonal schemes with monotonically increasing ⊘ (⊚), a conjunctive
// (disjunctive) keyword query can be answered top-k without scoring every
// matching document: per-keyword document streams sorted by column score
// are consumed in score order, candidates are completed by random access
// (the zig-zag probe), and execution stops as soon as the k-th best result
// is at least the threshold computed from the streams' tail values —
// the threshold-algorithm formulation of the relational rank-join [17].
//
// Score consistency: the scores produced equal the full engine's scores
// exactly (same α/⊘/⊚/⊕/ω); only the set of documents *examined* shrinks.
// The gate conditions are those of Table 1: ⊘ (⊚) monotonic increasing and
// a diagonal scheme; additionally the query must be a pure keyword
// conjunction (disjunction) — positional predicates would require
// re-verification that rank order cannot bound.

#ifndef GRAFT_EXEC_RANK_JOIN_H_
#define GRAFT_EXEC_RANK_JOIN_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "index/stats.h"
#include "ma/match_table.h"
#include "mcalc/ast.h"
#include "sa/scoring_scheme.h"

namespace graft::exec {

struct RankStats {
  uint64_t entries_pulled = 0;      // sorted-stream entries consumed
  uint64_t candidates_scored = 0;   // documents fully scored
  uint64_t total_candidates = 0;    // stream entries that match at all
  uint64_t streams_built = 0;       // score-ordered streams materialized
  uint64_t heap_ops = 0;            // top-k inserts + evictions
  // entries_pulled at the moment the threshold stop fired (== the TA
  // aggregation depth of Fagin et al.); equals entries_pulled when the
  // streams were exhausted before the threshold bound the result.
  uint64_t stopping_depth = 0;
  // Stream entries never consumed nor completed by random access: the
  // work the threshold stop avoided.
  uint64_t entries_pruned() const {
    return total_candidates > entries_pulled
               ? total_candidates - entries_pulled
               : 0;
  }
};

class TopKRankEngine {
 public:
  // `global` (optional) installs whole-corpus collection statistics; used
  // when `index` is one segment of a SegmentedIndex so per-segment top-k
  // scores match the monolithic index exactly.
  TopKRankEngine(const index::InvertedIndex* index,
                 const sa::ScoringScheme* scheme,
                 const index::StatsOverlay* overlay = nullptr,
                 const index::GlobalStats* global = nullptr)
      : stats_view_(index, overlay, global), scheme_(scheme) {}

  // True when the gate admits rank processing for this query + scheme:
  // pure conjunction → rank-join; pure disjunction → rank-union.
  static bool Supports(const mcalc::Query& query,
                       const sa::ScoringScheme& scheme);

  StatusOr<std::vector<ma::ScoredDoc>> TopK(const mcalc::Query& query,
                                            size_t k);

  const RankStats& stats() const { return stats_; }

 private:
  index::StatsView stats_view_;
  const sa::ScoringScheme* scheme_;
  RankStats stats_;

  // Score-ordered streams are what a production system keeps as
  // impact-ordered postings; the engine caches them per term so repeated
  // queries pay only for consumption (the one-time build is counted in
  // RankStats::streams_built).
  struct CachedStream {
    std::vector<std::pair<DocId, double>> entries;  // key desc
    // O(1) random access for candidate completion (the zig-zag probe).
    std::unordered_map<DocId, uint32_t> tf;
  };
  std::unordered_map<TermId, CachedStream> stream_cache_;
};

}  // namespace graft::exec

#endif  // GRAFT_EXEC_RANK_JOIN_H_
