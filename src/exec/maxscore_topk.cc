#include "exec/maxscore_topk.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "core/optimization_gate.h"
#include "index/posting_list.h"

namespace graft::exec {

namespace {

// Query shape probe: And(keywords...) or Or(keywords...) or one keyword.
// (Mirrors rank_join.cc; a single keyword processes as a conjunction.)
enum class Shape { kUnsupported, kConjunction, kDisjunction };

Shape QueryShape(const mcalc::Query& query,
                 std::vector<const mcalc::Node*>* keywords) {
  const mcalc::Node& root = *query.root;
  if (root.kind == mcalc::NodeKind::kKeyword) {
    keywords->push_back(&root);
    return Shape::kConjunction;
  }
  if (root.kind != mcalc::NodeKind::kAnd &&
      root.kind != mcalc::NodeKind::kOr) {
    return Shape::kUnsupported;
  }
  for (const mcalc::NodePtr& child : root.children) {
    if (child->kind != mcalc::NodeKind::kKeyword) {
      return Shape::kUnsupported;
    }
    keywords->push_back(child.get());
  }
  return root.kind == mcalc::NodeKind::kAnd ? Shape::kConjunction
                                            : Shape::kDisjunction;
}

}  // namespace

std::string MaxScoreTopK::GateVerdict(const mcalc::Query& query,
                                      const sa::ScoringScheme& scheme,
                                      const index::InvertedIndex& index,
                                      const index::StatsOverlay* overlay) {
  std::vector<const mcalc::Node*> keywords;
  const Shape shape = QueryShape(query, &keywords);
  if (shape == Shape::kUnsupported || keywords.empty()) {
    return "blocked: not a pure keyword conjunction/disjunction";
  }
  const core::GateDecision gate = core::ExplainGate(
      core::Optimization::kBlockMaxPruning, scheme.properties());
  if (!gate.valid) {
    return "blocked by gate: " + gate.reason;
  }
  if (!index.has_block_max()) {
    return "blocked: no block-max metadata";
  }
  if (overlay != nullptr) {
    return "blocked: stats overlay overrides stored ceilings";
  }
  return std::string();
}

StatusOr<std::vector<ma::ScoredDoc>> MaxScoreTopK::TopK(
    const mcalc::Query& query, size_t k) {
  std::vector<const mcalc::Node*> keywords;
  const Shape shape = QueryShape(query, &keywords);
  const index::InvertedIndex& index = stats_view_.index();
  const std::string verdict =
      GateVerdict(query, *scheme_, index, /*overlay=*/nullptr);
  if (!verdict.empty()) {
    return Status::FailedPrecondition("block-max pruning not licensed: " +
                                      verdict);
  }
  stats_ = PruneStats();
  if (k == 0) {
    return std::vector<ma::ScoredDoc>{};
  }

  const size_t n = keywords.size();
  sa::QueryContext query_ctx;
  query_ctx.num_columns = static_cast<uint32_t>(n);

  // ---- Scoring (replicated from TopKRankEngine so the scores are
  // bit-identical to the unpruned paths) ----
  const auto doc_context = [this](DocId doc) {
    sa::DocContext ctx;
    ctx.doc = doc;
    ctx.length = stats_view_.DocLength(doc);
    ctx.collection_size = stats_view_.CollectionSize();
    ctx.avg_doc_length = stats_view_.AverageDocLength();
    return ctx;
  };
  const auto column_score_tf = [&](TermId term, uint32_t tf, DocId doc) {
    sa::ColumnContext col;
    col.term = term;
    col.doc_freq = term == kInvalidTerm ? 0 : stats_view_.DocFreq(term);
    col.tf_in_doc = tf;
    const sa::DocContext dctx = doc_context(doc);
    if (tf == 0) {
      return scheme_->Init(dctx, col, kEmptyOffset);
    }
    const sa::InternalScore unit = scheme_->Init(dctx, col, /*offset=*/0);
    return tf <= 1 ? unit : scheme_->Scale(unit, tf);
  };
  // ---- Cursors ----
  struct Cursor {
    TermId term = kInvalidTerm;
    const index::PostingList* list = nullptr;  // null: term absent / empty
    size_t pos = 0;
    // Ceiling of the block the cursor currently sits in, computed lazily
    // and reused while the cursor stays inside the block.
    size_t cached_block = std::numeric_limits<size_t>::max();
    sa::InternalScore cached_ceiling;
    // Last block charged to blocks_decoded (cursors only move forward, so
    // one high-water mark per cursor counts distinct blocks exactly).
    size_t counted_block = std::numeric_limits<size_t>::max();

    bool exhausted() const {
      return list == nullptr || pos >= list->doc_count();
    }
    DocId doc() const { return list->doc_at(pos); }
    size_t block() const { return pos / index::PostingList::kBlockSize; }
  };
  std::vector<Cursor> cursors(n);
  for (size_t i = 0; i < n; ++i) {
    cursors[i].term = index.LookupTerm(keywords[i]->keyword);
    if (cursors[i].term == kInvalidTerm) {
      if (shape == Shape::kConjunction) {
        return std::vector<ma::ScoredDoc>{};  // term absent: no matches
      }
      continue;
    }
    const index::PostingList& list = index.postings(cursors[i].term);
    if (list.doc_count() == 0) {
      if (shape == Shape::kConjunction) {
        return std::vector<ma::ScoredDoc>{};
      }
      continue;
    }
    cursors[i].list = &list;
  }

  // Charges the cursor's current block to blocks_decoded the first time a
  // tf entry (the score payload) is read from it. Doc-id reads for
  // alignment are boundary probes of the skip structure, not payload
  // decodes: a ceiling-skipped block has its first doc id examined as a
  // candidate and is then abandoned, so charging on doc-id reads would
  // count every block and hide the skip. Blocks whose payload is never
  // scored — galloped over, ceiling-skipped, or alignment-only — stay
  // uncharged; the bench compares this against the unpruned engine's
  // full-list stream build.
  const auto touch = [&](Cursor& c) {
    const size_t b = c.block();
    if (c.counted_block != b) {
      ++stats_.blocks_decoded;
      c.counted_block = b;
    }
  };

  // Generic context for ceilings and ∅-cell bounds: length 1 maximizes a
  // bounded α, and ω ignores the document for gate-licensed schemes (the
  // same convention rank_join's threshold uses).
  sa::DocContext generic;
  generic.length = 1;
  generic.collection_size = stats_view_.CollectionSize();
  generic.avg_doc_length = stats_view_.AverageDocLength();

  // Ceiling of the cursor's current block: the best-α point of the block's
  // (tf, doc length) Pareto frontier. Boundedness dominates every in-block
  // document by SOME frontier point, and the frontier points are real
  // (tf, length) pairs from the block, so the max over them is the EXACT
  // per-block ceiling — tight enough for whole-block skips to actually
  // fire (the naive α(max tf, min length) pairs extremes from different
  // documents and rarely prunes anything). Selecting the point by the
  // primary slot is sound because licensed schemes keep their non-primary
  // slots constant across matched cells of one term (AnySum/AnyProd use
  // only `a`; Lucene's `b` is the matched count, 1 for every frontier
  // point), so the chosen point dominates slot-wise, which the monotone
  // ⊘/⊚ folds require. ⊕-idempotence makes ⊗ the identity, so one α call
  // per point bounds the column regardless of tf.
  const auto frontier_max = [&](const index::PostingList& list, TermId term,
                                size_t begin, size_t end) {
    sa::ColumnContext col;
    col.term = term;
    col.doc_freq = stats_view_.DocFreq(term);
    sa::DocContext dctx = generic;
    sa::InternalScore best;
    bool first = true;
    for (size_t p = begin; p < end; ++p) {
      col.tf_in_doc = list.frontier_tf(p);
      dctx.length = list.frontier_doc_length(p);
      sa::InternalScore point = scheme_->Init(dctx, col, /*offset=*/0);
      if (first || point.a > best.a) {
        best = std::move(point);
        first = false;
      }
    }
    return best;
  };
  const auto block_ceiling = [&](Cursor& c) -> const sa::InternalScore& {
    const size_t b = c.block();
    if (c.cached_block != b) {
      ++stats_.ceiling_probes;
      c.cached_ceiling = frontier_max(*c.list, c.term, c.list->frontier_begin(b),
                                      c.list->frontier_end(b));
      c.cached_block = b;
    }
    return c.cached_ceiling;
  };

  // ---- Top-k heap (sorted vector; identical tie-breaking to rank_join:
  // score desc, doc asc) ----
  std::vector<ma::ScoredDoc> top;
  const auto worst_kept = [&]() {
    return top.size() < k ? -std::numeric_limits<double>::infinity()
                          : top.back().score;
  };
  const auto consider = [&](DocId doc, double score) {
    ma::ScoredDoc candidate{doc, score};
    const auto position = std::upper_bound(
        top.begin(), top.end(), candidate,
        [](const ma::ScoredDoc& a, const ma::ScoredDoc& b) {
          if (a.score != b.score) return a.score > b.score;
          return a.doc < b.doc;
        });
    top.insert(position, candidate);
    ++stats_.heap_ops;
    if (top.size() > k) {
      top.pop_back();
      ++stats_.heap_ops;
    }
  };
  const auto full_score = [&](DocId doc, const std::vector<uint32_t>& tfs) {
    sa::InternalScore acc;
    bool first = true;
    for (size_t i = 0; i < n; ++i) {
      sa::InternalScore column = column_score_tf(cursors[i].term, tfs[i], doc);
      if (first) {
        acc = std::move(column);
        first = false;
      } else {
        acc = shape == Shape::kConjunction ? scheme_->Conj(acc, column)
                                           : scheme_->Disj(acc, column);
      }
    }
    return scheme_->Finalize(doc_context(doc), query_ctx, acc);
  };
  std::vector<uint32_t> tfs(n);

  if (shape == Shape::kConjunction) {
    // ---- Conjunction: leapfrog + block-max skip (BMW-style) ----
    while (true) {
      // Leapfrog alignment on the largest current doc.
      DocId candidate = 0;
      bool done = false;
      for (Cursor& c : cursors) {
        if (c.exhausted()) {
          done = true;
          break;
        }
        candidate = std::max(candidate, c.doc());
      }
      if (done) break;
      bool aligned = true;
      for (Cursor& c : cursors) {
        if (c.doc() < candidate) {
          c.pos = c.list->GallopTo(c.pos, candidate);
          if (c.pos >= c.list->doc_count()) {
            done = true;
            break;
          }
          if (c.doc() > candidate) {
            aligned = false;  // overshoot: next round raises the candidate
            break;
          }
        }
      }
      if (done) break;
      if (!aligned) continue;

      if (top.size() >= k) {
        // Fold the current blocks' ceilings (keyword order, like scoring:
        // monotone rounding then guarantees ceiling >= any in-block score
        // at the bit level). Skip to just past the earliest-ending block
        // when the fold cannot beat the heap.
        sa::InternalScore bound;
        bool first = true;
        DocId frontier = std::numeric_limits<DocId>::max();
        for (Cursor& c : cursors) {
          const sa::InternalScore& ceiling = block_ceiling(c);
          if (first) {
            bound = ceiling;
            first = false;
          } else {
            bound = scheme_->Conj(bound, ceiling);
          }
          frontier = std::min(frontier, c.list->block_last_doc(c.block()));
        }
        const double ceiling_score =
            scheme_->Finalize(generic, query_ctx, bound);
        if (worst_kept() >= ceiling_score) {
          // Every term's postings in [candidate, frontier] lie inside the
          // term's current block, so no document there can reach the heap.
          ++stats_.blocks_skipped;
          ++stats_.candidates_pruned;  // the aligned candidate, at least
          for (Cursor& c : cursors) {
            c.pos = c.list->GallopTo(c.pos, frontier + 1);
          }
          continue;
        }
      }

      for (size_t i = 0; i < n; ++i) {
        touch(cursors[i]);
        tfs[i] = cursors[i].list->tf_at(cursors[i].pos);
      }
      consider(candidate, full_score(candidate, tfs));
      ++stats_.candidates_scored;
      for (Cursor& c : cursors) {
        ++c.pos;
      }
    }
    return top;
  }

  // ---- Disjunction: MaxScore essential/non-essential partition ----
  // Term-level upper bound: the best α across every block's frontier —
  // the exact list-wide maximum column score. The ∅ cell (tf = 0) is
  // dominated by any ceiling for a bounded scheme.
  std::vector<sa::InternalScore> ub(n);
  std::vector<sa::InternalScore> empty_cell(n);
  for (size_t i = 0; i < n; ++i) {
    sa::ColumnContext col;
    col.term = cursors[i].term;
    col.doc_freq =
        cursors[i].term == kInvalidTerm ? 0 : stats_view_.DocFreq(cursors[i].term);
    col.tf_in_doc = 0;
    empty_cell[i] = scheme_->Init(generic, col, kEmptyOffset);
    if (cursors[i].list == nullptr) {
      ub[i] = empty_cell[i];
      continue;
    }
    const index::PostingList& list = *cursors[i].list;
    ++stats_.ceiling_probes;
    ub[i] = frontier_max(list, cursors[i].term, /*begin=*/0,
                         list.frontier_end(list.block_count() - 1));
  }

  // Keywords sorted by upper bound; rank[i] is keyword i's position in
  // that order. The non-essential set is always a prefix of the order.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (ub[a].a != ub[b].a) return ub[a].a < ub[b].a;
    return a < b;
  });
  std::vector<size_t> rank(n);
  for (size_t p = 0; p < n; ++p) {
    rank[order[p]] = p;
  }
  // prefix_bound[p]: ceiling on any document whose matched keywords all
  // rank below p — keyword-order fold of (UB if rank < p else ∅ cell).
  // Monotone in p because UB dominates the ∅ cell slot-wise.
  std::vector<double> prefix_bound(n + 1);
  for (size_t p = 0; p <= n; ++p) {
    sa::InternalScore bound;
    bool first = true;
    for (size_t i = 0; i < n; ++i) {
      const sa::InternalScore& v = rank[i] < p ? ub[i] : empty_cell[i];
      if (first) {
        bound = v;
        first = false;
      } else {
        bound = scheme_->Disj(bound, v);
      }
    }
    prefix_bound[p] = scheme_->Finalize(generic, query_ctx, bound);
  }

  double last_worst = -std::numeric_limits<double>::infinity();
  size_t num_nonessential = 0;
  while (true) {
    const double worst = worst_kept();
    if (worst != last_worst) {
      // The k-th best improved: re-partition. Documents matching only
      // keywords in the non-essential prefix can no longer enter the heap.
      last_worst = worst;
      ++stats_.threshold_updates;
      while (num_nonessential < n &&
             prefix_bound[num_nonessential + 1] <= worst) {
        ++num_nonessential;
      }
    }
    if (num_nonessential >= n) {
      break;  // no remaining document can beat the heap
    }

    // Next candidate: smallest current doc among live essential cursors.
    DocId candidate = kInvalidDoc;
    for (size_t i = 0; i < n; ++i) {
      if (rank[i] < num_nonessential || cursors[i].exhausted()) {
        continue;
      }
      candidate = std::min(candidate, cursors[i].doc());
    }
    if (candidate == kInvalidDoc) {
      break;  // essential lists exhausted
    }

    if (top.size() >= k) {
      // Block-level skip: fold (keyword order) the live essential cursors'
      // current-block ceilings with the non-essential terms' UBs (∅ cell
      // for exhausted lists). If the fold cannot beat the heap, every
      // essential posting up to the earliest block end is skippable.
      sa::InternalScore bound;
      bool first = true;
      DocId frontier = std::numeric_limits<DocId>::max();
      for (size_t i = 0; i < n; ++i) {
        Cursor& c = cursors[i];
        const bool essential_alive =
            rank[i] >= num_nonessential && !c.exhausted();
        const sa::InternalScore* v;
        if (essential_alive) {
          v = &block_ceiling(c);
          frontier = std::min(frontier, c.list->block_last_doc(c.block()));
        } else if (c.exhausted()) {
          v = &empty_cell[i];  // no document >= candidate contains it
        } else {
          v = &ub[i];  // non-essential, probed only on demand
        }
        if (first) {
          bound = *v;
          first = false;
        } else {
          bound = scheme_->Disj(bound, *v);
        }
      }
      const double ceiling_score =
          scheme_->Finalize(generic, query_ctx, bound);
      if (worst_kept() >= ceiling_score) {
        ++stats_.blocks_skipped;
        ++stats_.candidates_pruned;  // the candidate itself matches
        for (size_t i = 0; i < n; ++i) {
          Cursor& c = cursors[i];
          if (rank[i] >= num_nonessential && !c.exhausted()) {
            c.pos = c.list->GallopTo(c.pos, frontier + 1);
          }
        }
        continue;
      }
    }

    // Complete the candidate: essential tfs from the cursors, non-essential
    // tfs by forward-only galloping probes (candidates ascend).
    for (size_t i = 0; i < n; ++i) {
      Cursor& c = cursors[i];
      uint32_t tf = 0;
      if (c.list != nullptr) {
        if (rank[i] >= num_nonessential) {
          if (!c.exhausted() && c.doc() == candidate) {
            touch(c);
            tf = c.list->tf_at(c.pos);
          }
        } else {
          c.pos = c.list->GallopTo(c.pos, candidate);
          if (!c.exhausted() && c.doc() == candidate) {
            touch(c);
            tf = c.list->tf_at(c.pos);
          }
        }
      }
      tfs[i] = tf;
    }
    consider(candidate, full_score(candidate, tfs));
    ++stats_.candidates_scored;
    for (size_t i = 0; i < n; ++i) {
      Cursor& c = cursors[i];
      if (rank[i] >= num_nonessential && !c.exhausted() &&
          c.doc() == candidate) {
        ++c.pos;
      }
    }
  }
  return top;
}

}  // namespace graft::exec
