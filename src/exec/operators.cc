#include "exec/operators.h"

#include <algorithm>
#include <optional>
#include <set>

#include "ma/match_table.h"

namespace graft::exec {

namespace {

using ma::Column;
using ma::OpKind;
using ma::PlanNode;
using ma::Schema;
using ma::Tuple;
using ma::Value;

// Predicate compiled against an output schema: direct evaluator call plus
// precomputed column indexes. ∅ positions are dropped (Section 3.1).
struct CompiledPredicate {
  const mcalc::PredicateDef* def = nullptr;
  std::vector<int> column_idx;
  std::vector<int64_t> params;

  bool Eval(const Tuple& row) const {
    Offset positions[64];
    size_t count = 0;
    for (const int idx : column_idx) {
      const Offset offset = row.values[idx].pos;
      if (offset != kEmptyOffset) {
        positions[count++] = offset;
      }
    }
    return def->evaluator(std::span<const Offset>(positions, count), params);
  }
};

StatusOr<std::vector<CompiledPredicate>> CompilePredicates(
    const std::vector<mcalc::PredicateCall>& calls, const Schema& schema) {
  std::vector<CompiledPredicate> compiled;
  compiled.reserve(calls.size());
  for (const mcalc::PredicateCall& call : calls) {
    CompiledPredicate p;
    p.def = mcalc::PredicateRegistry::Global().Lookup(call.name);
    if (p.def == nullptr) {
      return Status::NotFound("unknown predicate: " + call.name);
    }
    for (const mcalc::VarId var : call.vars) {
      const int idx = schema.FindVar(var);
      if (idx < 0) {
        return Status::Internal("predicate variable not in schema: p" +
                                std::to_string(var));
      }
      p.column_idx.push_back(idx);
    }
    p.params = call.params;
    compiled.push_back(std::move(p));
  }
  return compiled;
}

// cursor.SkipTo under counter accounting: galloping probes, skip calls,
// and skip hits (a hit = the gallop leapfrogged at least one posting
// beyond sequential advance).
template <typename Cursor>
void CountedSkipTo(Cursor* cursor, DocId target, ExecStats* counters) {
  if (counters == nullptr) {
    cursor->SkipTo(target);
    return;
  }
  const size_t before = cursor->position();
  cursor->SkipTo(target, &counters->gallop_probes);
  ++counters->skip_calls;
  if (cursor->position() > before + 1) {
    ++counters->skip_hits;
  }
}

// Lazily materializes the current document's rows of a child operator (for
// join rescans). Only pulls what the consumer touches; row storage is
// pooled across documents so steady-state pulls allocate nothing.
class RowBuffer {
 public:
  void Attach(DocOperator* op) {
    op_ = op;
    filled_ = 0;
    exhausted_ = false;
  }

  const Tuple* Get(size_t i) {
    while (filled_ <= i && !exhausted_) {
      if (rows_.size() <= filled_) {
        rows_.emplace_back();
      }
      if (op_->NextRow(&rows_[filled_])) {
        ++filled_;
      } else {
        exhausted_ = true;
      }
    }
    return i < filled_ ? &rows_[i] : nullptr;
  }

 private:
  DocOperator* op_ = nullptr;
  std::vector<Tuple> rows_;
  size_t filled_ = 0;
  bool exhausted_ = true;
};

// ------------------------------------------------------------- ScanOp --
// A(k): one row per term position, doc-ordered, galloping SkipTo.
class ScanOp final : public DocOperator {
 public:
  ScanOp(const index::PostingList* list, ExecStats* counters)
      : cursor_(list), counters_(counters) {}

  bool AdvanceDoc(DocId min_doc) override {
    if (started_ && current_doc_ != kInvalidDoc && current_doc_ >= min_doc) {
      // The buffered document is still valid (the cursor is pre-advanced).
      return true;
    }
    started_ = true;
    CountedSkipTo(&cursor_, min_doc, counters_);
    if (cursor_.AtEnd()) {
      return false;
    }
    current_doc_ = cursor_.doc();
    offsets_ = cursor_.offsets();
    if (counters_ != nullptr) {
      ++counters_->blocks_decoded;
    }
    next_offset_ = 0;
    cursor_.Next();  // pre-advance so the next SkipTo starts beyond.
    return true;
  }

  bool NextRow(Tuple* out) override {
    if (next_offset_ >= offsets_.size()) {
      return false;
    }
    if (counters_ != nullptr) {
      ++counters_->positions_scanned;
    }
    out->doc = current_doc_;
    out->values.clear();
    out->values.push_back(Value::Pos(offsets_[next_offset_++]));
    return true;
  }

 private:
  index::PostingCursor cursor_;
  std::span<const Offset> offsets_;
  size_t next_offset_ = 0;
  ExecStats* counters_;
};

// Scan over a keyword absent from the index: empty.
class EmptyOp final : public DocOperator {
 public:
  bool AdvanceDoc(DocId) override { return false; }
  bool NextRow(Tuple*) override { return false; }
};

// -------------------------------------------------- Count scan ops --
// CA(k) (pre-count): reads the term-document arrays; O(1) per doc, no
// position memory touched.
class PreCountScanOp final : public DocOperator {
 public:
  PreCountScanOp(const index::PostingList* list, ExecStats* counters)
      : cursor_(list), counters_(counters) {}

  bool AdvanceDoc(DocId min_doc) override {
    if (started_ && current_doc_ != kInvalidDoc && current_doc_ >= min_doc) {
      // The buffered document is still valid (the cursor is pre-advanced).
      return true;
    }
    started_ = true;
    CountedSkipTo(&cursor_, min_doc, counters_);
    if (cursor_.AtEnd()) {
      return false;
    }
    current_doc_ = cursor_.doc();
    count_ = cursor_.tf();
    emitted_ = false;
    cursor_.Next();
    if (counters_ != nullptr) {
      ++counters_->count_entries_scanned;
    }
    return true;
  }

  bool NextRow(Tuple* out) override {
    if (emitted_) {
      return false;
    }
    emitted_ = true;
    out->doc = current_doc_;
    out->values.clear();
    out->values.push_back(Value::Count(count_));
    return true;
  }

 private:
  index::CountCursor cursor_;
  uint32_t count_ = 0;
  bool emitted_ = false;
  ExecStats* counters_;
};

// γ_{d|c:COUNT}(π_d(A(k))) (classical eager counting): the count is
// produced by iterating the document's position list — same output as
// pre-counting, but the position memory is walked.
class EagerCountScanOp final : public DocOperator {
 public:
  EagerCountScanOp(const index::PostingList* list, ExecStats* counters)
      : cursor_(list), counters_(counters) {}

  bool AdvanceDoc(DocId min_doc) override {
    if (started_ && current_doc_ != kInvalidDoc && current_doc_ >= min_doc) {
      // The buffered document is still valid (the cursor is pre-advanced).
      return true;
    }
    started_ = true;
    CountedSkipTo(&cursor_, min_doc, counters_);
    if (cursor_.AtEnd()) {
      return false;
    }
    current_doc_ = cursor_.doc();
    // Walk the offsets (the "π_d then COUNT" of the logical rewrite); the
    // checksum forces the position memory to actually be read.
    const std::span<const Offset> offsets = cursor_.offsets();
    for (const Offset offset : offsets) {
      checksum_ += offset;
    }
    if (counters_ != nullptr) {
      counters_->positions_scanned += offsets.size();
      ++counters_->blocks_decoded;
    }
    count_ = offsets.size();
    emitted_ = false;
    cursor_.Next();
    return true;
  }

  bool NextRow(Tuple* out) override {
    if (emitted_) {
      return false;
    }
    emitted_ = true;
    out->doc = current_doc_;
    out->values.clear();
    out->values.push_back(Value::Count(count_));
    return true;
  }

 private:
  index::PostingCursor cursor_;
  uint64_t count_ = 0;
  uint64_t checksum_ = 0;
  bool emitted_ = false;
  ExecStats* counters_;
};

// ----------------------------------------------- FusedScoredCountScan --
// Physical fusion of the aggregated pre-count leaf pattern
// π{s := α⊗(c) ⊗ c, c}(CA(k)): one operator emits the keyword's
// per-document ⟨column score, count⟩ pair straight from the term-document
// arrays — no intermediate tuples, no statistics lookups (tf is the
// cursor's count; df is a constant).
class FusedScoredCountScan final : public DocOperator {
 public:
  FusedScoredCountScan(const index::PostingList* list, TermId term,
                       EvalEnv* env)
      : cursor_(list), env_(env) {
    col_.term = term;
    col_.doc_freq = env->stats.DocFreq(term);
    doc_ctx_.collection_size = env->stats.CollectionSize();
    doc_ctx_.avg_doc_length = env->stats.AverageDocLength();
  }

  bool AdvanceDoc(DocId min_doc) override {
    if (started_ && current_doc_ != kInvalidDoc && current_doc_ >= min_doc) {
      return true;
    }
    started_ = true;
    CountedSkipTo(&cursor_, min_doc, env_->counters);
    if (cursor_.AtEnd()) {
      current_doc_ = kInvalidDoc;
      return false;
    }
    current_doc_ = cursor_.doc();
    count_ = cursor_.tf();
    emitted_ = false;
    cursor_.Next();
    if (env_->counters != nullptr) {
      ++env_->counters->count_entries_scanned;
    }
    return true;
  }

  bool NextRow(Tuple* out) override {
    if (emitted_) {
      return false;
    }
    emitted_ = true;
    doc_ctx_.doc = current_doc_;
    doc_ctx_.length = env_->stats.DocLength(current_doc_);
    col_.tf_in_doc = count_;
    sa::InternalScore score =
        env_->scheme->Init(doc_ctx_, col_, /*offset=*/0);
    if (count_ > 1) {
      score = env_->scheme->Scale(score, count_);
    }
    out->doc = current_doc_;
    out->values.clear();
    out->values.push_back(Value::Score(std::move(score)));
    out->values.push_back(Value::Count(count_));
    return true;
  }

 private:
  index::CountCursor cursor_;
  EvalEnv* env_;
  sa::DocContext doc_ctx_;
  sa::ColumnContext col_;
  uint32_t count_ = 0;
  bool emitted_ = false;
};

// --------------------------------------------------------------- JoinOp --
// Natural join on d: leapfrog alignment (zig-zag) plus a lazy odometer
// over the two sides' rows with residual predicates.
class JoinOp final : public DocOperator {
 public:
  JoinOp(DocOperatorPtr left, DocOperatorPtr right,
         std::vector<CompiledPredicate> predicates, ExecStats* counters)
      : left_(std::move(left)),
        right_(std::move(right)),
        predicates_(std::move(predicates)),
        counters_(counters) {}

  bool AdvanceDoc(DocId min_doc) override {
    if (started_ && current_doc_ != kInvalidDoc && current_doc_ >= min_doc) {
      return true;
    }
    started_ = true;
    DocId target = min_doc;
    while (true) {
      if (!left_->AdvanceDoc(target)) {
        current_doc_ = kInvalidDoc;
        return false;
      }
      const DocId d = left_->doc();
      if (!right_->AdvanceDoc(d)) {
        current_doc_ = kInvalidDoc;
        return false;
      }
      if (right_->doc() != d) {
        target = right_->doc();
        continue;
      }
      // Aligned. With residual predicates we must verify that at least one
      // combination survives; without them alignment alone guarantees a
      // row, so the odometer is deferred until someone actually asks — an
      // outer join level that skips this document never pays for its rows.
      left_rows_.Attach(left_.get());
      right_rows_.Attach(right_.get());
      li_ = 0;
      ri_ = 0;
      if (predicates_.empty()) {
        pending_ = false;
        combo_deferred_ = true;
        current_doc_ = d;
        return true;
      }
      combo_deferred_ = false;
      if (FindCombo()) {
        current_doc_ = d;
        return true;
      }
      target = d + 1;
    }
  }

  bool NextRow(Tuple* out) override {
    if (combo_deferred_) {
      combo_deferred_ = false;
      FindCombo();
    }
    if (!pending_) {
      return false;
    }
    std::swap(*out, pending_row_);  // both sides keep their capacity
    pending_ = false;
    ++ri_;
    FindCombo();
    return true;
  }

 private:
  // Scans the odometer from (li_, ri_) for the next passing combination;
  // assembles it in pending_row_ (storage reused across combinations).
  bool FindCombo() {
    pending_ = false;
    while (true) {
      const Tuple* lrow = left_rows_.Get(li_);
      if (lrow == nullptr) {
        return false;
      }
      const Tuple* rrow = right_rows_.Get(ri_);
      if (rrow == nullptr) {
        ++li_;
        ri_ = 0;
        continue;
      }
      pending_row_.doc = lrow->doc;
      pending_row_.values.clear();
      pending_row_.values.reserve(lrow->values.size() + rrow->values.size());
      pending_row_.values.insert(pending_row_.values.end(),
                                 lrow->values.begin(), lrow->values.end());
      pending_row_.values.insert(pending_row_.values.end(),
                                 rrow->values.begin(), rrow->values.end());
      bool pass = true;
      for (const CompiledPredicate& pred : predicates_) {
        if (!pred.Eval(pending_row_)) {
          pass = false;
          break;
        }
      }
      if (pass) {
        if (counters_ != nullptr) {
          ++counters_->rows_built;
        }
        pending_ = true;
        return true;
      }
      ++ri_;
    }
  }

  DocOperatorPtr left_;
  DocOperatorPtr right_;
  std::vector<CompiledPredicate> predicates_;
  RowBuffer left_rows_;
  RowBuffer right_rows_;
  size_t li_ = 0;
  size_t ri_ = 0;
  bool pending_ = false;
  bool combo_deferred_ = false;
  Tuple pending_row_;
  ExecStats* counters_;
};

// -------------------------------------------------------------- UnionOp --
// ⊎: doc-merge of the children; rows of every child at the current doc,
// padded per the output schema (∅ positions, 0 counts).
class UnionOp final : public DocOperator {
 public:
  UnionOp(std::vector<DocOperatorPtr> children,
          std::vector<std::vector<int>> mappings, const Schema* schema)
      : children_(std::move(children)),
        mappings_(std::move(mappings)),
        schema_(schema),
        alive_(children_.size(), true) {}

  bool AdvanceDoc(DocId min_doc) override {
    if (started_ && current_doc_ != kInvalidDoc && current_doc_ >= min_doc) {
      return true;
    }
    started_ = true;
    DocId best = kInvalidDoc;
    for (size_t i = 0; i < children_.size(); ++i) {
      alive_[i] = children_[i]->AdvanceDoc(min_doc);
      if (alive_[i]) {
        best = std::min(best, children_[i]->doc());
      }
    }
    if (best == kInvalidDoc) {
      current_doc_ = kInvalidDoc;
      return false;
    }
    current_doc_ = best;
    active_child_ = 0;
    return true;
  }

  bool NextRow(Tuple* out) override {
    while (active_child_ < children_.size()) {
      const size_t c = active_child_;
      if (!alive_[c] || children_[c]->doc() != current_doc_) {
        ++active_child_;
        continue;
      }
      Tuple row;
      if (!children_[c]->NextRow(&row)) {
        ++active_child_;
        continue;
      }
      out->doc = current_doc_;
      out->values.clear();
      out->values.reserve(schema_->columns.size());
      const std::vector<int>& mapping = mappings_[c];
      for (size_t o = 0; o < schema_->columns.size(); ++o) {
        if (mapping[o] >= 0) {
          out->values.push_back(row.values[mapping[o]]);
        } else if (schema_->columns[o].kind == Column::Kind::kCount) {
          out->values.push_back(Value::Count(0));
        } else {
          out->values.push_back(Value::EmptyPos());
        }
      }
      return true;
    }
    return false;
  }

 private:
  std::vector<DocOperatorPtr> children_;
  std::vector<std::vector<int>> mappings_;  // output col -> child col / -1
  const Schema* schema_;
  std::vector<bool> alive_;
  size_t active_child_ = 0;
};

// ------------------------------------------------------------- FilterOp --
class FilterOp final : public DocOperator {
 public:
  FilterOp(DocOperatorPtr child, std::vector<CompiledPredicate> predicates)
      : child_(std::move(child)), predicates_(std::move(predicates)) {}

  bool AdvanceDoc(DocId min_doc) override {
    if (started_ && current_doc_ != kInvalidDoc && current_doc_ >= min_doc) {
      return true;
    }
    started_ = true;
    DocId target = min_doc;
    while (child_->AdvanceDoc(target)) {
      if (PullPassing()) {
        current_doc_ = child_->doc();
        return true;
      }
      target = child_->doc() + 1;
    }
    current_doc_ = kInvalidDoc;
    return false;
  }

  bool NextRow(Tuple* out) override {
    if (!pending_) {
      return false;
    }
    *out = std::move(pending_row_);
    pending_ = false;
    PullPassing();
    return true;
  }

 private:
  bool PullPassing() {
    Tuple row;
    while (child_->NextRow(&row)) {
      bool pass = true;
      for (const CompiledPredicate& pred : predicates_) {
        if (!pred.Eval(row)) {
          pass = false;
          break;
        }
      }
      if (pass) {
        pending_row_ = std::move(row);
        pending_ = true;
        return true;
      }
    }
    pending_ = false;
    return false;
  }

  DocOperatorPtr child_;
  std::vector<CompiledPredicate> predicates_;
  bool pending_ = false;
  Tuple pending_row_;
};

// ------------------------------------------------------------ ProjectOp --
// π hosting score expressions (α, ⊘, ⊚, ⊗, ω) and count products.
class ProjectOp final : public DocOperator {
 public:
  struct Item {
    int source = -1;
    std::vector<int> count_product;
    std::optional<ma::CompiledScoreExpr> expr;
    bool finalize = false;
  };

  ProjectOp(DocOperatorPtr child, std::vector<Item> items,
            const Schema* input_schema, EvalEnv* env)
      : child_(std::move(child)),
        items_(std::move(items)),
        input_schema_(input_schema),
        env_(env) {
    // Document frequencies are per-term constants; prefetch. Per-document
    // tf is resolved with a monotone cursor per column (documents arrive
    // in increasing order, so each lookup is an amortized-O(1) gallop
    // instead of a binary search).
    base_col_ctx_.resize(input_schema_->columns.size());
    for (size_t i = 0; i < input_schema_->columns.size(); ++i) {
      const Column& column = input_schema_->columns[i];
      if (column.kind != Column::Kind::kScore &&
          column.term != kInvalidTerm) {
        base_col_ctx_[i].term = column.term;
        base_col_ctx_[i].doc_freq = env_->stats.DocFreq(column.term);
        tf_cursors_.emplace_back(
            i, index::CountCursor(&env_->stats.index().postings(column.term)));
      }
    }
    col_ctx_ = base_col_ctx_;
  }

  bool AdvanceDoc(DocId min_doc) override {
    if (started_ && current_doc_ != kInvalidDoc && current_doc_ >= min_doc) {
      return true;
    }
    started_ = true;
    if (!child_->AdvanceDoc(min_doc)) {
      current_doc_ = kInvalidDoc;
      return false;
    }
    current_doc_ = child_->doc();
    PrepareDocContexts();
    return true;
  }

  bool NextRow(Tuple* out) override {
    Tuple row;
    if (!child_->NextRow(&row)) {
      return false;
    }
    out->doc = row.doc;
    out->values.clear();
    out->values.reserve(items_.size());
    for (const Item& item : items_) {
      if (item.source >= 0) {
        out->values.push_back(row.values[item.source]);
      } else if (!item.count_product.empty()) {
        uint64_t product = 1;
        for (const int idx : item.count_product) {
          product *= std::max<uint64_t>(1, row.values[idx].count);
        }
        out->values.push_back(Value::Count(product));
      } else {
        sa::InternalScore score = item.expr->Evaluate(
            *env_->scheme, doc_ctx_, col_ctx_, row, &expr_scratch_);
        if (item.finalize) {
          score = sa::InternalScore(
              env_->scheme->Finalize(doc_ctx_, env_->query_ctx, score));
        }
        out->values.push_back(Value::Score(std::move(score)));
      }
    }
    return true;
  }

 private:
  void PrepareDocContexts() {
    doc_ctx_.doc = current_doc_;
    doc_ctx_.length = env_->stats.DocLength(current_doc_);
    doc_ctx_.collection_size = env_->stats.CollectionSize();
    doc_ctx_.avg_doc_length = env_->stats.AverageDocLength();
    if (env_->stats.has_overlay()) {
      // Statistics overlays (tests) must see every lookup. Documents
      // arrive in ascending order, so the fallback index lookups gallop
      // from a per-column probe.
      if (tf_probes_.size() != col_ctx_.size()) {
        tf_probes_.assign(col_ctx_.size(), 0);
      }
      for (size_t i = 0; i < col_ctx_.size(); ++i) {
        sa::ColumnContext& ctx = col_ctx_[i];
        if (ctx.term != kInvalidTerm) {
          ctx.tf_in_doc = env_->stats.TermFreqInDoc(ctx.term, current_doc_,
                                                    &tf_probes_[i]);
        }
      }
      return;
    }
    // Only tf varies per document; the rest of col_ctx_ is constant.
    for (auto& [column_index, cursor] : tf_cursors_) {
      CountedSkipTo(&cursor, current_doc_, env_->counters);
      col_ctx_[column_index].tf_in_doc =
          (!cursor.AtEnd() && cursor.doc() == current_doc_) ? cursor.tf()
                                                            : 0;
    }
  }

  DocOperatorPtr child_;
  std::vector<Item> items_;
  const Schema* input_schema_;
  EvalEnv* env_;
  std::vector<sa::ColumnContext> base_col_ctx_;
  std::vector<std::pair<size_t, index::CountCursor>> tf_cursors_;
  std::vector<size_t> tf_probes_;  // per-column gallop seeds (overlay path)
  sa::DocContext doc_ctx_;
  std::vector<sa::ColumnContext> col_ctx_;
  std::vector<sa::InternalScore> expr_scratch_;
};

// -------------------------------------------------------------- GroupOp --
// γ: consumes the document's rows and emits one row per group (first-seen
// order), hosting ⊕ (with optional ⊗ count weighting) and counts.
class GroupOp final : public DocOperator {
 public:
  struct Agg {
    int input = -1;
    int scale = -1;
  };

  GroupOp(DocOperatorPtr child, std::vector<int> key_idx,
          std::vector<Agg> aggs, bool want_count, int count_in, EvalEnv* env)
      : child_(std::move(child)),
        key_idx_(std::move(key_idx)),
        aggs_(std::move(aggs)),
        want_count_(want_count),
        count_in_(count_in),
        env_(env) {}

  bool AdvanceDoc(DocId min_doc) override {
    if (started_ && current_doc_ != kInvalidDoc && current_doc_ >= min_doc) {
      return true;
    }
    started_ = true;
    if (!child_->AdvanceDoc(min_doc)) {
      current_doc_ = kInvalidDoc;
      return false;
    }
    current_doc_ = child_->doc();
    BuildGroups();
    return true;
  }

  bool NextRow(Tuple* out) override {
    if (next_group_ >= output_.size()) {
      return false;
    }
    *out = std::move(output_[next_group_++]);
    return true;
  }

 private:
  struct GroupState {
    std::vector<Value> key_values;
    std::vector<sa::InternalScore> scores;
    std::vector<bool> initialized;
    uint64_t count = 0;
  };

  // Fast path for the ubiquitous keyless γ_d: one accumulator, no
  // per-document allocations (buffers are members, reused across docs).
  void BuildSingleGroup() {
    scratch_scores_.assign(aggs_.size(), sa::InternalScore());
    scratch_init_.assign(aggs_.size(), false);
    uint64_t count = 0;
    bool any = false;
    while (child_->NextRow(&scratch_row_)) {
      any = true;
      for (size_t a = 0; a < aggs_.size(); ++a) {
        sa::InternalScore contribution =
            scratch_row_.values[aggs_[a].input].score;
        if (aggs_[a].scale >= 0) {
          const uint64_t weight = std::max<uint64_t>(
              1, scratch_row_.values[aggs_[a].scale].count);
          if (weight != 1) {
            contribution = env_->scheme->Scale(contribution, weight);
          }
        }
        if (scratch_init_[a]) {
          scratch_scores_[a] =
              env_->scheme->Alt(scratch_scores_[a], contribution);
        } else {
          scratch_scores_[a] = std::move(contribution);
          scratch_init_[a] = true;
        }
      }
      if (want_count_) {
        count +=
            count_in_ >= 0 ? scratch_row_.values[count_in_].count : 1;
      }
    }
    output_.clear();
    if (any) {
      output_.emplace_back();
      Tuple& out = output_.back();
      out.doc = current_doc_;
      out.values.reserve(aggs_.size() + (want_count_ ? 1 : 0));
      for (sa::InternalScore& score : scratch_scores_) {
        out.values.push_back(Value::Score(std::move(score)));
      }
      if (want_count_) {
        out.values.push_back(Value::Count(count));
      }
    }
    next_group_ = 0;
  }

  void BuildGroups() {
    if (key_idx_.empty()) {
      BuildSingleGroup();
      return;
    }
    std::vector<GroupState> groups;
    Tuple row;
    while (child_->NextRow(&row)) {
      std::vector<Value> key_values;
      key_values.reserve(key_idx_.size());
      for (const int idx : key_idx_) {
        key_values.push_back(row.values[idx]);
      }
      GroupState* state = nullptr;
      for (GroupState& g : groups) {
        bool same = true;
        for (size_t k = 0; k < key_values.size(); ++k) {
          if (ma::CompareValue(g.key_values[k], key_values[k]) != 0) {
            same = false;
            break;
          }
        }
        if (same) {
          state = &g;
          break;
        }
      }
      if (state == nullptr) {
        groups.emplace_back();
        state = &groups.back();
        state->key_values = std::move(key_values);
        state->scores.resize(aggs_.size());
        state->initialized.assign(aggs_.size(), false);
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        sa::InternalScore contribution = row.values[aggs_[a].input].score;
        if (aggs_[a].scale >= 0) {
          const uint64_t weight =
              std::max<uint64_t>(1, row.values[aggs_[a].scale].count);
          if (weight != 1) {
            contribution = env_->scheme->Scale(contribution, weight);
          }
        }
        if (state->initialized[a]) {
          state->scores[a] =
              env_->scheme->Alt(state->scores[a], contribution);
        } else {
          state->scores[a] = std::move(contribution);
          state->initialized[a] = true;
        }
      }
      if (want_count_) {
        state->count += count_in_ >= 0 ? row.values[count_in_].count : 1;
      }
    }

    output_.clear();
    output_.reserve(groups.size());
    for (GroupState& g : groups) {
      Tuple out;
      out.doc = current_doc_;
      for (Value& key : g.key_values) {
        out.values.push_back(std::move(key));
      }
      for (sa::InternalScore& score : g.scores) {
        out.values.push_back(Value::Score(std::move(score)));
      }
      if (want_count_) {
        out.values.push_back(Value::Count(g.count));
      }
      output_.push_back(std::move(out));
    }
    next_group_ = 0;
  }

  DocOperatorPtr child_;
  std::vector<int> key_idx_;
  std::vector<Agg> aggs_;
  bool want_count_;
  int count_in_;
  EvalEnv* env_;
  std::vector<Tuple> output_;
  size_t next_group_ = 0;
  // Reused scratch for the keyless fast path.
  Tuple scratch_row_;
  std::vector<sa::InternalScore> scratch_scores_;
  std::vector<bool> scratch_init_;
};

// ------------------------------------------------------------ AltElimOp --
// δ_A: emits the first row of each document and skips the rest — the lazy
// row protocol makes the skip signal implicit (the child never computes
// rows nobody asks for).
class AltElimOp final : public DocOperator {
 public:
  explicit AltElimOp(DocOperatorPtr child) : child_(std::move(child)) {}

  bool AdvanceDoc(DocId min_doc) override {
    if (started_ && current_doc_ != kInvalidDoc && current_doc_ >= min_doc) {
      return true;
    }
    started_ = true;
    if (!child_->AdvanceDoc(min_doc)) {
      current_doc_ = kInvalidDoc;
      return false;
    }
    current_doc_ = child_->doc();
    emitted_ = false;
    return true;
  }

  bool NextRow(Tuple* out) override {
    if (emitted_) {
      return false;
    }
    emitted_ = true;
    return child_->NextRow(out);
  }

 private:
  DocOperatorPtr child_;
  bool emitted_ = false;
};

// ----------------------------------------------------------- AntiJoinOp --
class AntiJoinOp final : public DocOperator {
 public:
  AntiJoinOp(DocOperatorPtr left, DocOperatorPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  bool AdvanceDoc(DocId min_doc) override {
    if (started_ && current_doc_ != kInvalidDoc && current_doc_ >= min_doc) {
      return true;
    }
    started_ = true;
    DocId target = min_doc;
    while (left_->AdvanceDoc(target)) {
      const DocId d = left_->doc();
      if (right_exhausted_ || !right_->AdvanceDoc(d)) {
        right_exhausted_ = true;
        current_doc_ = d;
        return true;
      }
      if (right_->doc() != d) {
        current_doc_ = d;
        return true;
      }
      target = d + 1;
    }
    current_doc_ = kInvalidDoc;
    return false;
  }

  bool NextRow(Tuple* out) override { return left_->NextRow(out); }

 private:
  DocOperatorPtr left_;
  DocOperatorPtr right_;
  bool right_exhausted_ = false;
};

// --------------------------------------------------------------- SortOp --
// τ: global doc order is inherent; sorts the current document's rows in
// the canonical column order.
class SortOp final : public DocOperator {
 public:
  SortOp(DocOperatorPtr child, std::vector<size_t> column_order)
      : child_(std::move(child)), column_order_(std::move(column_order)) {}

  bool AdvanceDoc(DocId min_doc) override {
    if (started_ && current_doc_ != kInvalidDoc && current_doc_ >= min_doc) {
      return true;
    }
    started_ = true;
    if (!child_->AdvanceDoc(min_doc)) {
      current_doc_ = kInvalidDoc;
      return false;
    }
    current_doc_ = child_->doc();
    rows_.clear();
    Tuple row;
    while (child_->NextRow(&row)) {
      rows_.push_back(std::move(row));
    }
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Tuple& a, const Tuple& b) {
                       for (const size_t i : column_order_) {
                         const int c = ma::CompareValue(a.values[i],
                                                        b.values[i]);
                         if (c != 0) return c < 0;
                       }
                       return false;
                     });
    next_row_ = 0;
    return true;
  }

  bool NextRow(Tuple* out) override {
    if (next_row_ >= rows_.size()) {
      return false;
    }
    *out = std::move(rows_[next_row_++]);
    return true;
  }

 private:
  DocOperatorPtr child_;
  std::vector<size_t> column_order_;
  std::vector<Tuple> rows_;
  size_t next_row_ = 0;
};

}  // namespace

StatusOr<DocOperatorPtr> BuildOperator(const ma::PlanNode& node,
                                       EvalEnv* env) {
  switch (node.kind) {
    case OpKind::kAtom: {
      if (node.term == kInvalidTerm) {
        return DocOperatorPtr(std::make_unique<EmptyOp>());
      }
      return DocOperatorPtr(std::make_unique<ScanOp>(
          &env->stats.index().postings(node.term), env->counters));
    }
    case OpKind::kPreCountAtom: {
      if (node.term == kInvalidTerm) {
        return DocOperatorPtr(std::make_unique<EmptyOp>());
      }
      return DocOperatorPtr(std::make_unique<PreCountScanOp>(
          &env->stats.index().postings(node.term), env->counters));
    }
    case OpKind::kJoin: {
      GRAFT_ASSIGN_OR_RETURN(DocOperatorPtr left,
                             BuildOperator(*node.children[0], env));
      GRAFT_ASSIGN_OR_RETURN(DocOperatorPtr right,
                             BuildOperator(*node.children[1], env));
      GRAFT_ASSIGN_OR_RETURN(
          std::vector<CompiledPredicate> predicates,
          CompilePredicates(node.predicates, node.schema));
      return DocOperatorPtr(std::make_unique<JoinOp>(
          std::move(left), std::move(right), std::move(predicates),
          env->counters));
    }
    case OpKind::kOuterUnion: {
      std::vector<DocOperatorPtr> children;
      std::vector<std::vector<int>> mappings;
      for (const ma::PlanNodePtr& child : node.children) {
        GRAFT_ASSIGN_OR_RETURN(DocOperatorPtr op,
                               BuildOperator(*child, env));
        children.push_back(std::move(op));
        std::vector<int> mapping(node.schema.columns.size(), -1);
        for (size_t o = 0; o < node.schema.columns.size(); ++o) {
          const Column& out = node.schema.columns[o];
          mapping[o] = out.kind == Column::Kind::kPos
                           ? child->schema.FindVar(out.var)
                           : child->schema.Find(out.name);
        }
        mappings.push_back(std::move(mapping));
      }
      return DocOperatorPtr(std::make_unique<UnionOp>(
          std::move(children), std::move(mappings), &node.schema));
    }
    case OpKind::kSelect: {
      GRAFT_ASSIGN_OR_RETURN(DocOperatorPtr child,
                             BuildOperator(*node.children[0], env));
      GRAFT_ASSIGN_OR_RETURN(
          std::vector<CompiledPredicate> predicates,
          CompilePredicates(node.predicates, node.schema));
      return DocOperatorPtr(std::make_unique<FilterOp>(
          std::move(child), std::move(predicates)));
    }
    case OpKind::kProject: {
      // Physical fusion: the aggregated pre-count leaf
      // π{s := α⊗(c) ⊗ c, c}(CA(k)) becomes one operator.
      if (env->scheme != nullptr && node.children[0]->kind ==
              OpKind::kPreCountAtom && node.items.size() == 2 &&
          !env->stats.has_overlay()) {
        const ma::ProjectItem& scored = node.items[0];
        const ma::ProjectItem& passthrough = node.items[1];
        const ma::PlanNode& ca = *node.children[0];
        const bool matches =
            scored.expr != nullptr && !scored.finalize &&
            scored.expr->kind == ma::ScoreExpr::Kind::kScaleByCount &&
            scored.expr->column == ca.output_column &&
            scored.expr->left->kind == ma::ScoreExpr::Kind::kInitFromCount &&
            scored.expr->left->column == ca.output_column &&
            passthrough.source == ca.output_column;
        if (matches) {
          if (ca.term == kInvalidTerm) {
            return DocOperatorPtr(std::make_unique<EmptyOp>());
          }
          return DocOperatorPtr(std::make_unique<FusedScoredCountScan>(
              &env->stats.index().postings(ca.term), ca.term, env));
        }
      }
      GRAFT_ASSIGN_OR_RETURN(DocOperatorPtr child,
                             BuildOperator(*node.children[0], env));
      const Schema& input = node.children[0]->schema;
      std::vector<ProjectOp::Item> items;
      for (const ma::ProjectItem& item : node.items) {
        ProjectOp::Item compiled;
        if (!item.source.empty()) {
          compiled.source = input.Find(item.source);
          if (compiled.source < 0) {
            return Status::Internal("unresolved projection source: " +
                                    item.source);
          }
        } else if (!item.count_product.empty()) {
          for (const std::string& source : item.count_product) {
            compiled.count_product.push_back(input.Find(source));
          }
        } else {
          if (env->scheme == nullptr) {
            return Status::FailedPrecondition(
                "plan hosts scoring operators but no scheme was provided");
          }
          GRAFT_ASSIGN_OR_RETURN(
              auto expr, ma::CompiledScoreExpr::Compile(*item.expr, input));
          compiled.expr.emplace(std::move(expr));
          compiled.finalize = item.finalize;
        }
        items.push_back(std::move(compiled));
      }
      return DocOperatorPtr(std::make_unique<ProjectOp>(
          std::move(child), std::move(items), &node.children[0]->schema,
          env));
    }
    case OpKind::kAntiJoin: {
      GRAFT_ASSIGN_OR_RETURN(DocOperatorPtr left,
                             BuildOperator(*node.children[0], env));
      GRAFT_ASSIGN_OR_RETURN(DocOperatorPtr right,
                             BuildOperator(*node.children[1], env));
      return DocOperatorPtr(
          std::make_unique<AntiJoinOp>(std::move(left), std::move(right)));
    }
    case OpKind::kGroup: {
      // Physical fast path: the eager-counting pattern
      // γ_{d|c:COUNT}(π_d(A(k))) executes as a dedicated count scan that
      // walks the position list once per doc instead of building tuples.
      if (node.group.keys.empty() && node.group.score_aggs.empty() &&
          !node.group.count_output.empty() && node.group.count_input.empty()) {
        const ma::PlanNode& child = *node.children[0];
        if (child.kind == OpKind::kProject && child.items.empty() &&
            child.children[0]->kind == OpKind::kAtom) {
          const ma::PlanNode& atom = *child.children[0];
          if (atom.term == kInvalidTerm) {
            return DocOperatorPtr(std::make_unique<EmptyOp>());
          }
          return DocOperatorPtr(std::make_unique<EagerCountScanOp>(
              &env->stats.index().postings(atom.term), env->counters));
        }
      }
      if (!node.group.score_aggs.empty() && env->scheme == nullptr) {
        return Status::FailedPrecondition(
            "plan hosts ⊕ aggregation but no scheme was provided");
      }
      GRAFT_ASSIGN_OR_RETURN(DocOperatorPtr child,
                             BuildOperator(*node.children[0], env));
      const Schema& input = node.children[0]->schema;
      std::vector<int> key_idx;
      for (const std::string& key : node.group.keys) {
        key_idx.push_back(input.Find(key));
      }
      std::vector<GroupOp::Agg> aggs;
      for (const ma::GroupSpec::ScoreAgg& agg : node.group.score_aggs) {
        GroupOp::Agg a;
        a.input = input.Find(agg.input);
        a.scale =
            agg.scale_count.empty() ? -1 : input.Find(agg.scale_count);
        aggs.push_back(a);
      }
      const bool want_count = !node.group.count_output.empty();
      const int count_in = node.group.count_input.empty()
                               ? -1
                               : input.Find(node.group.count_input);
      return DocOperatorPtr(std::make_unique<GroupOp>(
          std::move(child), std::move(key_idx), std::move(aggs), want_count,
          count_in, env));
    }
    case OpKind::kAltElim: {
      GRAFT_ASSIGN_OR_RETURN(DocOperatorPtr child,
                             BuildOperator(*node.children[0], env));
      return DocOperatorPtr(std::make_unique<AltElimOp>(std::move(child)));
    }
    case OpKind::kSort: {
      GRAFT_ASSIGN_OR_RETURN(DocOperatorPtr child,
                             BuildOperator(*node.children[0], env));
      // Canonical column order (see ReferenceEvaluator::EvaluateSort).
      std::vector<size_t> order;
      for (size_t i = 0; i < node.schema.columns.size(); ++i) {
        order.push_back(i);
      }
      const Schema& schema = node.schema;
      std::stable_sort(order.begin(), order.end(),
                       [&schema](size_t a, size_t b) {
                         const Column& ca = schema.columns[a];
                         const Column& cb = schema.columns[b];
                         const bool pa = ca.kind == Column::Kind::kPos;
                         const bool pb = cb.kind == Column::Kind::kPos;
                         if (pa != pb) return pa;
                         if (pa && pb) return ca.var < cb.var;
                         return ca.name < cb.name;
                       });
      return DocOperatorPtr(
          std::make_unique<SortOp>(std::move(child), std::move(order)));
    }
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace graft::exec
