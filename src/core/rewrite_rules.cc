#include "core/rewrite_rules.h"

#include <algorithm>

namespace graft::core {

namespace {

// Requirement predicates (function pointers: the registry is constexpr-ish
// static data, no captures needed).
bool AltCommutative(const sa::SchemeProperties& p) {
  return p.alt.commutative;
}
bool AltAssociative(const sa::SchemeProperties& p) {
  return p.alt.associative;
}
bool AltIdempotent(const sa::SchemeProperties& p) {
  return p.alt.idempotent;
}
bool ConstantScheme(const sa::SchemeProperties& p) { return p.constant; }
bool NotRowFirst(const sa::SchemeProperties& p) { return !p.row_first(); }
bool NonPositional(const sa::SchemeProperties& p) { return !p.positional; }
bool ConjMonotonic(const sa::SchemeProperties& p) {
  return p.conj.monotonic_increasing;
}
bool DisjMonotonic(const sa::SchemeProperties& p) {
  return p.disj.monotonic_increasing;
}
bool Diagonal(const sa::SchemeProperties& p) { return p.diagonal(); }
bool Bounded(const sa::SchemeProperties& p) { return p.bounded; }

// ---- structural skip reasons (EXPLAIN's rewrite table) -------------------

std::string SkipAlways(const OptimizerOptions&, const RuleQueryFacts&) {
  return "always applied";
}

std::string SkipSelectionPushing(const OptimizerOptions&,
                                 const RuleQueryFacts&) {
  return "no predicates to push";
}

std::string SkipNeedsSortElim(const OptimizerOptions&,
                              const RuleQueryFacts&) {
  return "requires sort elimination";
}

std::string SkipEagerAggregation(const OptimizerOptions&,
                                 const RuleQueryFacts& facts) {
  if (!facts.sort_eliminated) return "requires sort elimination";
  if (facts.can_alt_elim) {
    return "superseded by alternate elimination (constant scheme)";
  }
  return "no predicate-free keyword leaves";
}

std::string SkipEagerCounting(const OptimizerOptions&,
                              const RuleQueryFacts& facts) {
  if (!facts.sort_eliminated) return "requires sort elimination";
  if (facts.can_alt_elim) {
    return "superseded by alternate elimination (constant scheme)";
  }
  if (facts.can_eager_agg) {
    return facts.use_pre_count ? "superseded by pre-counting"
                               : "no predicate-free keyword leaves";
  }
  if (facts.positional_scheme) {
    return "positions required by α (positional scheme)";
  }
  if (!facts.row_first_scheme && facts.has_disjunction) {
    return "query has disjunction and scheme is not row-first";
  }
  return "no predicate-free keyword leaves";
}

std::string SkipPreCounting(const OptimizerOptions&,
                            const RuleQueryFacts& facts) {
  if (!facts.sort_eliminated) return "requires sort elimination";
  if (facts.no_free_leaves) return "no predicate-free keyword leaves";
  return "no counting path applicable";
}

}  // namespace

bool RewriteRule::Licensed(const sa::SchemeProperties& props) const {
  for (const PropertyRequirement& req : requirements) {
    if (!req.check(props)) return false;
  }
  return true;
}

GateDecision RewriteRule::Explain(const sa::SchemeProperties& props) const {
  GateDecision decision;
  decision.valid = true;
  for (const PropertyRequirement& req : requirements) {
    if (!req.check(props)) {
      decision.valid = false;
      decision.reason = req.fail_reason;
      return decision;
    }
  }
  if (!licensed_reason.empty()) {
    decision.reason = licensed_reason;
    return decision;
  }
  if (requirements.empty()) {
    decision.reason = "no scheme requirement (Section 5.2.4)";
    return decision;
  }
  for (const PropertyRequirement& req : requirements) {
    if (!decision.reason.empty()) decision.reason += ", ";
    decision.reason += req.name;
  }
  return decision;
}

bool RewriteRule::Enabled(const OptimizerOptions& options) const {
  return toggle == nullptr || options.*toggle;
}

RewriteRuleRegistry::RewriteRuleRegistry() {
  // Catalog order == kAllOptimizations order == EXPLAIN's rewrite table.
  rules_.push_back(RewriteRule{
      Optimization::kSortElimination,
      "sort_elimination",
      "γ_d τ_⊕ over match rows",
      "γ_d with order-insensitive ⊕ fold (drop the τ)",
      RuleStage::kPlan,
      {{"⊕ commutes", "⊕ not commutative", &AltCommutative}},
      /*licensed_reason=*/"",
      &OptimizerOptions::eliminate_sort,
      {},
      &SkipAlways,
      /*execution_note=*/""});
  rules_.push_back(RewriteRule{
      Optimization::kJoinReordering,
      "join_reordering",
      "⋈ tree over keyword scans",
      "⋈ tree ordered by ascending positions-scanned (or cost model)",
      RuleStage::kPlan,
      {},
      "",
      &OptimizerOptions::reorder_joins,
      {},
      &SkipAlways,
      ""});
  rules_.push_back(RewriteRule{
      Optimization::kSelectionPushing,
      "selection_pushing",
      "σ_p above a ⋈/∪ subtree",
      "σ_p pushed onto the scan(s) of the predicate's variable",
      RuleStage::kPlan,
      {},
      "",
      &OptimizerOptions::push_selections,
      {},
      &SkipSelectionPushing,
      ""});
  rules_.push_back(RewriteRule{
      Optimization::kZigZagJoin,
      "zigzag_join",
      "any ⋈ of document-sorted inputs",
      "galloping zig-zag ⋈ with skip probes",
      RuleStage::kPlan,
      {},
      "",
      /*toggle=*/nullptr,
      {},
      &SkipAlways,
      ""});
  rules_.push_back(RewriteRule{
      Optimization::kForwardScanJoin,
      "forward_scan_join",
      "δ_A-limited scans under a ⋈ (constant scheme)",
      "forward scan taking the first alternate per document",
      RuleStage::kPlan,
      {{"scheme is constant", "scheme not constant", &ConstantScheme}},
      "",
      &OptimizerOptions::alternate_elimination,
      {&OptimizerOptions::eliminate_sort},
      &SkipNeedsSortElim,
      ""});
  rules_.push_back(RewriteRule{
      Optimization::kAlternateElimination,
      "alternate_elimination",
      "γ_d ⊕-fold over equal alternates (constant scheme)",
      "δ_A above the matching tree: keep one surviving match per document",
      RuleStage::kPlan,
      {{"scheme is constant", "scheme not constant", &ConstantScheme}},
      "",
      &OptimizerOptions::alternate_elimination,
      {&OptimizerOptions::eliminate_sort},
      &SkipNeedsSortElim,
      ""});
  rules_.push_back(RewriteRule{
      Optimization::kEagerAggregation,
      "eager_aggregation",
      "per-keyword ⊕ above the ⋈ tree",
      "⊕ pushed below the joins with ⊗ count bookkeeping at each ⋈",
      RuleStage::kPlan,
      {{"⊕ fully associative", "⊕ not fully associative", &AltAssociative},
       {"not row-first", "scheme is row-first", &NotRowFirst}},
      "",
      &OptimizerOptions::eager_aggregation,
      {&OptimizerOptions::eliminate_sort},
      &SkipEagerAggregation,
      ""});
  rules_.push_back(RewriteRule{
      Optimization::kEagerCounting,
      "eager_counting",
      "row-first Φ over predicate-free keyword leaves",
      "leaves collapsed to (doc, count); row scores weighted by counts",
      RuleStage::kPlan,
      {},
      "",
      &OptimizerOptions::eager_counting,
      {&OptimizerOptions::eliminate_sort},
      &SkipEagerCounting,
      ""});
  rules_.push_back(RewriteRule{
      Optimization::kPreCounting,
      "pre_counting",
      "predicate-free keyword scans (non-positional α)",
      "CA count-table scans replacing position enumeration",
      RuleStage::kPlan,
      {{"non-positional scheme", "scheme is positional", &NonPositional}},
      "",
      &OptimizerOptions::pre_counting,
      // Pre-counted leaves only exist inside the alt-elim or eager-agg
      // grouped paths, which in turn need the sort eliminated.
      {&OptimizerOptions::eliminate_sort,
       &OptimizerOptions::alternate_elimination,
       &OptimizerOptions::eager_aggregation},
      &SkipPreCounting,
      ""});
  rules_.push_back(RewriteRule{
      Optimization::kRankJoin,
      "rank_join",
      "top-k over a pure keyword conjunction",
      "threshold-algorithm rank-join over score-ordered streams",
      RuleStage::kExecution,
      {{"⊘ monotonic increasing", "⊘ not monotonic increasing",
        &ConjMonotonic},
       {"diagonal", "scheme not diagonal", &Diagonal}},
      "",
      nullptr,
      {},
      nullptr,
      "; applies to top-k pure keyword queries at execution"});
  rules_.push_back(RewriteRule{
      Optimization::kRankUnion,
      "rank_union",
      "top-k over a pure keyword disjunction",
      "threshold-algorithm rank-union over score-ordered streams",
      RuleStage::kExecution,
      {{"⊚ monotonic increasing", "⊚ not monotonic increasing",
        &DisjMonotonic},
       {"diagonal", "scheme not diagonal", &Diagonal}},
      "",
      nullptr,
      {},
      nullptr,
      "; applies to top-k pure keyword queries at execution"});
  rules_.push_back(RewriteRule{
      Optimization::kBlockMaxPruning,
      "block_max_pruning",
      "top-k pure keyword query over a block-max index",
      "MaxScore block skipping against exact per-block score ceilings",
      RuleStage::kExecution,
      // Fail-check order (first violated property decides the reason);
      // the licensed wording below keeps the canonical Table-1 order.
      {{"α bounded", "α not upper-boundable", &Bounded},
       {"⊕ idempotent", "⊕ not idempotent", &AltIdempotent},
       {"scheme diagonal", "scheme not diagonal", &Diagonal},
       {"⊘ monotonic increasing", "⊘ not monotonic increasing",
        &ConjMonotonic},
       {"⊚ monotonic increasing", "⊚ not monotonic increasing",
        &DisjMonotonic}},
      "α bounded, ⊕ idempotent, ⊘/⊚ monotonic increasing, diagonal",
      nullptr,
      {},
      nullptr,
      "; applies to top-k pure keyword queries over block-max "
      "indexes at execution"});
}

const RewriteRuleRegistry& RewriteRuleRegistry::Global() {
  static const RewriteRuleRegistry* registry = new RewriteRuleRegistry();
  return *registry;
}

const RewriteRule* RewriteRuleRegistry::Lookup(std::string_view id) const {
  for (const RewriteRule& rule : rules_) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

const RewriteRule* RewriteRuleRegistry::Find(Optimization opt) const {
  for (const RewriteRule& rule : rules_) {
    if (rule.opt == opt) return &rule;
  }
  return nullptr;
}

OptimizerOptions RewriteRuleRegistry::AllRulesOff() const {
  OptimizerOptions options;
  options.push_selections = false;
  options.reorder_joins = false;
  options.cost_based_join_order = false;
  options.eliminate_sort = false;
  options.eager_aggregation = false;
  options.eager_counting = false;
  options.pre_counting = false;
  options.alternate_elimination = false;
  return options;
}

OptimizerOptions RewriteRuleRegistry::OnlyRuleOptions(
    const RewriteRule& rule) const {
  OptimizerOptions options = AllRulesOff();
  if (rule.toggle != nullptr) {
    options.*(rule.toggle) = true;
  }
  for (bool OptimizerOptions::* prereq : rule.prerequisites) {
    options.*prereq = true;
  }
  return options;
}

}  // namespace graft::core
