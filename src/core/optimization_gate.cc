#include "core/optimization_gate.h"

#include "core/rewrite_rules.h"

namespace graft::core {

// The gate is a thin view over the declarative rule catalog
// (rewrite_rules.cc): each Optimization's Table-1 requirements live on its
// RewriteRule, and the decision logic below just evaluates them.

std::string OptimizationName(Optimization opt) {
  switch (opt) {
    case Optimization::kSortElimination: return "τ elim.";
    case Optimization::kJoinReordering: return "⋈ reordering";
    case Optimization::kSelectionPushing: return "σ pushing";
    case Optimization::kZigZagJoin: return "zig-zag ⋈";
    case Optimization::kForwardScanJoin: return "forward-scan ⋈";
    case Optimization::kAlternateElimination: return "alt. elim.";
    case Optimization::kEagerAggregation: return "eager agg.";
    case Optimization::kEagerCounting: return "eager count";
    case Optimization::kPreCounting: return "pre-count";
    case Optimization::kRankJoin: return "rank-join";
    case Optimization::kRankUnion: return "rank-union";
    case Optimization::kBlockMaxPruning: return "block-max prune";
  }
  return "?";
}

std::string OperatorRequirement(Optimization opt) {
  switch (opt) {
    case Optimization::kSortElimination: return "⊕ commutes";
    case Optimization::kJoinReordering: return "";
    case Optimization::kSelectionPushing: return "";
    case Optimization::kZigZagJoin: return "";
    case Optimization::kForwardScanJoin: return "constant";
    case Optimization::kAlternateElimination: return "constant";
    case Optimization::kEagerAggregation: return "⊕ fully associative";
    case Optimization::kEagerCounting: return "";
    case Optimization::kPreCounting: return "non-positional";
    case Optimization::kRankJoin: return "⊘ monotonic increasing";
    case Optimization::kRankUnion: return "⊚ monotonic increasing";
    case Optimization::kBlockMaxPruning:
      return "α bounded, ⊕ idempotent, ⊘/⊚ monotonic increasing";
  }
  return "";
}

std::string DirectionRequirement(Optimization opt) {
  switch (opt) {
    case Optimization::kEagerAggregation: return "not row-first";
    case Optimization::kRankJoin:
    case Optimization::kRankUnion:
    case Optimization::kBlockMaxPruning: return "diagonal";
    default: return "";
  }
}

bool IsOptimizationValid(Optimization opt,
                         const sa::SchemeProperties& props) {
  const RewriteRule* rule = RewriteRuleRegistry::Global().Find(opt);
  return rule != nullptr && rule->Licensed(props);
}

GateDecision ExplainGate(Optimization opt,
                         const sa::SchemeProperties& props) {
  const RewriteRule* rule = RewriteRuleRegistry::Global().Find(opt);
  if (rule == nullptr) {
    return GateDecision{false, "optimization not in the rule catalog"};
  }
  return rule->Explain(props);
}

std::vector<Optimization> ValidOptimizations(
    const sa::SchemeProperties& props) {
  std::vector<Optimization> valid;
  for (const Optimization opt : kAllOptimizations) {
    if (IsOptimizationValid(opt, props)) {
      valid.push_back(opt);
    }
  }
  return valid;
}

}  // namespace graft::core
