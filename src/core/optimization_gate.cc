#include "core/optimization_gate.h"

namespace graft::core {

std::string OptimizationName(Optimization opt) {
  switch (opt) {
    case Optimization::kSortElimination: return "τ elim.";
    case Optimization::kJoinReordering: return "⋈ reordering";
    case Optimization::kSelectionPushing: return "σ pushing";
    case Optimization::kZigZagJoin: return "zig-zag ⋈";
    case Optimization::kForwardScanJoin: return "forward-scan ⋈";
    case Optimization::kAlternateElimination: return "alt. elim.";
    case Optimization::kEagerAggregation: return "eager agg.";
    case Optimization::kEagerCounting: return "eager count";
    case Optimization::kPreCounting: return "pre-count";
    case Optimization::kRankJoin: return "rank-join";
    case Optimization::kRankUnion: return "rank-union";
    case Optimization::kBlockMaxPruning: return "block-max prune";
  }
  return "?";
}

std::string OperatorRequirement(Optimization opt) {
  switch (opt) {
    case Optimization::kSortElimination: return "⊕ commutes";
    case Optimization::kJoinReordering: return "";
    case Optimization::kSelectionPushing: return "";
    case Optimization::kZigZagJoin: return "";
    case Optimization::kForwardScanJoin: return "constant";
    case Optimization::kAlternateElimination: return "constant";
    case Optimization::kEagerAggregation: return "⊕ fully associative";
    case Optimization::kEagerCounting: return "";
    case Optimization::kPreCounting: return "non-positional";
    case Optimization::kRankJoin: return "⊘ monotonic increasing";
    case Optimization::kRankUnion: return "⊚ monotonic increasing";
    case Optimization::kBlockMaxPruning:
      return "α bounded, ⊕ idempotent, ⊘/⊚ monotonic increasing";
  }
  return "";
}

std::string DirectionRequirement(Optimization opt) {
  switch (opt) {
    case Optimization::kEagerAggregation: return "not row-first";
    case Optimization::kRankJoin:
    case Optimization::kRankUnion:
    case Optimization::kBlockMaxPruning: return "diagonal";
    default: return "";
  }
}

bool IsOptimizationValid(Optimization opt,
                         const sa::SchemeProperties& props) {
  switch (opt) {
    case Optimization::kSortElimination:
      return props.alt.commutative;
    case Optimization::kJoinReordering:
    case Optimization::kSelectionPushing:
    case Optimization::kZigZagJoin:
    case Optimization::kEagerCounting:
      // No restrictions: score aggregation is decoupled from join and
      // selection operators (the central point of Section 5.2.4).
      return true;
    case Optimization::kForwardScanJoin:
    case Optimization::kAlternateElimination:
      return props.constant;
    case Optimization::kEagerAggregation:
      return props.alt.associative && !props.row_first();
    case Optimization::kPreCounting:
      return !props.positional;
    case Optimization::kRankJoin:
      return props.conj.monotonic_increasing && props.diagonal();
    case Optimization::kRankUnion:
      return props.disj.monotonic_increasing && props.diagonal();
    case Optimization::kBlockMaxPruning:
      // A block ceiling evaluates α over the block's (tf, doc length)
      // Pareto frontier; the best point bounds every document's column
      // score only when α is upper-boundable, one match stands for all
      // alternates (⊕
      // idempotent, where ⊗ is the identity), the row combinators cannot
      // shrink under a larger input, and the scheme walks the table
      // column-wise (diagonal).
      return props.bounded && props.alt.idempotent && props.diagonal() &&
             props.conj.monotonic_increasing &&
             props.disj.monotonic_increasing;
  }
  return false;
}

GateDecision ExplainGate(Optimization opt,
                         const sa::SchemeProperties& props) {
  GateDecision decision;
  decision.valid = IsOptimizationValid(opt, props);
  switch (opt) {
    case Optimization::kSortElimination:
      decision.reason =
          decision.valid ? "⊕ commutes" : "⊕ not commutative";
      break;
    case Optimization::kJoinReordering:
    case Optimization::kSelectionPushing:
    case Optimization::kZigZagJoin:
    case Optimization::kEagerCounting:
      decision.reason = "no scheme requirement (Section 5.2.4)";
      break;
    case Optimization::kForwardScanJoin:
    case Optimization::kAlternateElimination:
      decision.reason =
          decision.valid ? "scheme is constant" : "scheme not constant";
      break;
    case Optimization::kEagerAggregation:
      if (decision.valid) {
        decision.reason = "⊕ fully associative, not row-first";
      } else if (!props.alt.associative) {
        decision.reason = "⊕ not fully associative";
      } else {
        decision.reason = "scheme is row-first";
      }
      break;
    case Optimization::kPreCounting:
      decision.reason = decision.valid ? "non-positional scheme"
                                       : "scheme is positional";
      break;
    case Optimization::kRankJoin:
      if (decision.valid) {
        decision.reason = "⊘ monotonic increasing, diagonal";
      } else if (!props.conj.monotonic_increasing) {
        decision.reason = "⊘ not monotonic increasing";
      } else {
        decision.reason = "scheme not diagonal";
      }
      break;
    case Optimization::kRankUnion:
      if (decision.valid) {
        decision.reason = "⊚ monotonic increasing, diagonal";
      } else if (!props.disj.monotonic_increasing) {
        decision.reason = "⊚ not monotonic increasing";
      } else {
        decision.reason = "scheme not diagonal";
      }
      break;
    case Optimization::kBlockMaxPruning:
      if (decision.valid) {
        decision.reason =
            "α bounded, ⊕ idempotent, ⊘/⊚ monotonic increasing, diagonal";
      } else if (!props.bounded) {
        decision.reason = "α not upper-boundable";
      } else if (!props.alt.idempotent) {
        decision.reason = "⊕ not idempotent";
      } else if (!props.diagonal()) {
        decision.reason = "scheme not diagonal";
      } else if (!props.conj.monotonic_increasing) {
        decision.reason = "⊘ not monotonic increasing";
      } else {
        decision.reason = "⊚ not monotonic increasing";
      }
      break;
  }
  return decision;
}

std::vector<Optimization> ValidOptimizations(
    const sa::SchemeProperties& props) {
  std::vector<Optimization> valid;
  for (const Optimization opt : kAllOptimizations) {
    if (IsOptimizationValid(opt, props)) {
      valid.push_back(opt);
    }
  }
  return valid;
}

}  // namespace graft::core
