#include "core/optimizer.h"

#include <functional>
#include <algorithm>
#include <set>

#include "core/cost_model.h"

namespace graft::core {

namespace {

using ma::OpKind;
using ma::PlanNode;
using ma::PlanNodePtr;
using mcalc::VarId;

std::string PosCol(VarId var) { return "p" + std::to_string(var); }
std::string ScoreCol(VarId var) { return "s" + std::to_string(var); }
std::string CntCol(VarId var) { return "c" + std::to_string(var); }

// ---------------------------------------------------------------------
// Join reordering (always score-consistent: the match table, not the join
// order, defines scoring; Section 5.2.1).
// ---------------------------------------------------------------------

// Estimated scan cost of a subtree (term positions touched).
uint64_t EstimateCost(const PlanNode& node,
                      const index::InvertedIndex& index) {
  switch (node.kind) {
    case OpKind::kAtom: {
      const TermId term = index.LookupTerm(node.keyword);
      return term == kInvalidTerm ? 0 : index.CollectionFreq(term);
    }
    case OpKind::kPreCountAtom: {
      const TermId term = index.LookupTerm(node.keyword);
      return term == kInvalidTerm ? 0 : index.DocFreq(term);
    }
    default: {
      uint64_t total = node.kind == OpKind::kAntiJoin ? 0 : 0;
      for (size_t i = 0; i < node.children.size(); ++i) {
        // The anti side of ▷ filters but contributes no rows.
        total += EstimateCost(*node.children[i], index);
      }
      return total;
    }
  }
}

// Flattens a maximal join tree into its non-join leaves, recursing into
// each leaf so nested join regions (e.g. inside union branches) reorder
// too.
void FlattenJoins(PlanNodePtr node, std::vector<PlanNodePtr>* leaves,
                  std::vector<mcalc::PredicateCall>* residuals) {
  if (node->kind == OpKind::kJoin) {
    for (mcalc::PredicateCall& call : node->predicates) {
      residuals->push_back(std::move(call));
    }
    FlattenJoins(std::move(node->children[0]), leaves, residuals);
    FlattenJoins(std::move(node->children[1]), leaves, residuals);
    return;
  }
  leaves->push_back(std::move(node));
}

PlanNodePtr ReorderJoins(PlanNodePtr node,
                         const index::InvertedIndex& index,
                         bool cost_based) {
  // Recurse into non-join structure first.
  if (node->kind != OpKind::kJoin) {
    for (PlanNodePtr& child : node->children) {
      child = ReorderJoins(std::move(child), index, cost_based);
    }
    return node;
  }
  std::vector<PlanNodePtr> leaves;
  std::vector<mcalc::PredicateCall> residuals;
  FlattenJoins(std::move(node), &leaves, &residuals);
  for (PlanNodePtr& leaf : leaves) {
    leaf = ReorderJoins(std::move(leaf), index, cost_based);
  }
  if (cost_based) {
    // Most selective input (fewest estimated documents) outermost: under
    // the independence assumption the greedy smallest-intermediate order
    // is ascending document-count order.
    const CostModel model(&index);
    std::vector<std::pair<double, size_t>> keys;
    for (size_t i = 0; i < leaves.size(); ++i) {
      const CostEstimate estimate = model.Estimate(*leaves[i]);
      keys.emplace_back(estimate.docs + estimate.cost * 1e-9, i);
    }
    std::stable_sort(keys.begin(), keys.end());
    std::vector<PlanNodePtr> ordered;
    ordered.reserve(leaves.size());
    for (const auto& [key, i] : keys) {
      ordered.push_back(std::move(leaves[i]));
    }
    leaves = std::move(ordered);
  } else {
    // The paper's heuristic: fewest positions scanned first.
    std::stable_sort(leaves.begin(), leaves.end(),
                     [&index](const PlanNodePtr& a, const PlanNodePtr& b) {
                       return EstimateCost(*a, index) <
                              EstimateCost(*b, index);
                     });
  }
  PlanNodePtr acc;
  for (auto it = leaves.rbegin(); it != leaves.rend(); ++it) {
    acc = acc == nullptr ? std::move(*it)
                         : ma::MakeJoin(std::move(*it), std::move(acc));
  }
  if (!residuals.empty()) {
    // Residual predicates reattach above the rebuilt region; selection
    // pushing then re-sinks them.
    acc = ma::MakeSelect(std::move(acc), std::move(residuals));
  }
  return acc;
}

// ---------------------------------------------------------------------
// Selection pushing (always score-consistent in GRAFT; Section 5.2.1).
// ---------------------------------------------------------------------

void CollectVars(const PlanNode& node, std::set<VarId>* vars) {
  if (node.kind == OpKind::kAtom) {
    vars->insert(node.var);
  }
  // The anti side of ▷ binds no output variables.
  const size_t limit =
      node.kind == OpKind::kAntiJoin ? 1 : node.children.size();
  for (size_t i = 0; i < limit; ++i) {
    CollectVars(*node.children[i], vars);
  }
}

bool Covers(const std::set<VarId>& vars, const mcalc::PredicateCall& call) {
  for (const VarId var : call.vars) {
    if (vars.count(var) == 0) return false;
  }
  return true;
}

// Removes every kSelect in the tree, accumulating predicates.
PlanNodePtr StripSelects(PlanNodePtr node,
                         std::vector<mcalc::PredicateCall>* predicates) {
  for (PlanNodePtr& child : node->children) {
    child = StripSelects(std::move(child), predicates);
  }
  if (node->kind == OpKind::kSelect) {
    for (mcalc::PredicateCall& call : node->predicates) {
      predicates->push_back(std::move(call));
    }
    return std::move(node->children[0]);
  }
  if (node->kind == OpKind::kJoin) {
    for (mcalc::PredicateCall& call : node->predicates) {
      predicates->push_back(std::move(call));
    }
    node->predicates.clear();
  }
  return node;
}

// Sinks one predicate to the deepest node whose variables cover it.
PlanNodePtr PlacePredicate(PlanNodePtr node, mcalc::PredicateCall call) {
  switch (node->kind) {
    case OpKind::kJoin: {
      std::set<VarId> left_vars;
      std::set<VarId> right_vars;
      CollectVars(*node->children[0], &left_vars);
      CollectVars(*node->children[1], &right_vars);
      if (Covers(left_vars, call)) {
        node->children[0] =
            PlacePredicate(std::move(node->children[0]), std::move(call));
        return node;
      }
      if (Covers(right_vars, call)) {
        node->children[1] =
            PlacePredicate(std::move(node->children[1]), std::move(call));
        return node;
      }
      // Spans both sides: becomes a join residual (evaluated during the
      // join, i.e. "selection pushed into the join").
      node->predicates.push_back(std::move(call));
      return node;
    }
    case OpKind::kOuterUnion: {
      for (PlanNodePtr& branch : node->children) {
        std::set<VarId> branch_vars;
        CollectVars(*branch, &branch_vars);
        if (Covers(branch_vars, call)) {
          branch = PlacePredicate(std::move(branch), std::move(call));
          return node;
        }
      }
      // Spans branches (or references variables that are ∅ in every
      // branch): stays above the union.
      return ma::MakeSelect(std::move(node), {std::move(call)});
    }
    case OpKind::kAntiJoin: {
      std::set<VarId> left_vars;
      CollectVars(*node->children[0], &left_vars);
      if (Covers(left_vars, call)) {
        node->children[0] =
            PlacePredicate(std::move(node->children[0]), std::move(call));
        return node;
      }
      return ma::MakeSelect(std::move(node), {std::move(call)});
    }
    case OpKind::kSelect: {
      node->predicates.push_back(std::move(call));
      return node;
    }
    default:
      return ma::MakeSelect(std::move(node), {std::move(call)});
  }
}

// ---------------------------------------------------------------------
// Leaf strategies.
// ---------------------------------------------------------------------

struct StrategyContext {
  const sa::SchemeProperties* props = nullptr;
  std::set<VarId> predicate_vars;  // variables referenced by any predicate
  bool use_pre_count = false;
  bool use_alt_elim = false;
  // Output bookkeeping.
  std::set<VarId> counted_vars;     // replaced by a counted leaf
  std::set<VarId> aggregated_vars;  // replaced by an aggregated leaf
  int next_combined_count = 0;
};

bool AtomIsFree(const PlanNode& atom, const StrategyContext& ctx) {
  return atom.kind == OpKind::kAtom &&
         ctx.predicate_vars.count(atom.var) == 0;
}

// Path A/C leaf rewrite: predicate-free atoms become counted leaves —
// CA(k) when pre-counting is valid, otherwise γ_{d|c:COUNT}(π_d(A(k)))
// (classical eager counting; physically a position scan that only emits
// counts). Applies inside unions too: padded counts encode ∅ as 0.
// `allow_in_union` is false for the eager-aggregation path.
PlanNodePtr RewriteCountedLeaves(PlanNodePtr node, StrategyContext* ctx,
                                 bool in_union, bool in_anti_right,
                                 bool allow_in_union) {
  if (AtomIsFree(*node, *ctx) && !in_anti_right &&
      (!in_union || allow_in_union)) {
    const VarId var = node->var;
    ctx->counted_vars.insert(var);
    if (ctx->use_pre_count) {
      return ma::MakePreCountAtom(node->keyword, CntCol(var));
    }
    // γ_{d | c:COUNT(*)}(π_d(A)) — the eager-counting equivalence.
    const std::string keyword = node->keyword;
    PlanNodePtr projected =
        ma::MakeProject(std::move(node), std::vector<ma::ProjectItem>{});
    ma::GroupSpec spec;
    spec.count_output = CntCol(var);
    spec.count_keyword = keyword;
    return ma::MakeGroup(std::move(projected), std::move(spec));
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const bool child_in_union =
        in_union || node->kind == OpKind::kOuterUnion;
    const bool child_in_anti_right =
        in_anti_right || (node->kind == OpKind::kAntiJoin && i == 1);
    node->children[i] = RewriteCountedLeaves(
        std::move(node->children[i]), ctx, child_in_union,
        child_in_anti_right, allow_in_union);
  }
  return node;
}

// Path A leaf rewrite without pre-counting: δ_A over predicate-free atoms
// (first position per document is enough for constant schemes; physically
// the scan skips the rest of the document's positions).
PlanNodePtr RewriteAltElimLeaves(PlanNodePtr node, StrategyContext* ctx,
                                 bool in_anti_right) {
  if (AtomIsFree(*node, *ctx) && !in_anti_right) {
    return ma::MakeAltElim(std::move(node));
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const bool child_in_anti_right =
        in_anti_right || (node->kind == OpKind::kAntiJoin && i == 1);
    node->children[i] = RewriteAltElimLeaves(std::move(node->children[i]),
                                             ctx, child_in_anti_right);
  }
  return node;
}

// Path B leaf rewrite: predicate-free atoms outside unions become
// aggregated leaves carrying (s_v, c_v): the column's ⊕-fold and its row
// count. With pre-counting: π{s_v := α⊗(c_v) ⊗ c_v, c_v}(CA(k));
// otherwise: γ_{d | s_v:⊕(s_v), c_v:COUNT}(π{s_v:α(p_v)}(A(k))).
PlanNodePtr RewriteAggregatedLeaves(PlanNodePtr node, StrategyContext* ctx,
                                    bool in_union, bool in_anti_right) {
  if (AtomIsFree(*node, *ctx) && !in_union && !in_anti_right) {
    const VarId var = node->var;
    ctx->aggregated_vars.insert(var);
    if (ctx->use_pre_count) {
      PlanNodePtr ca = ma::MakePreCountAtom(node->keyword, CntCol(var));
      std::vector<ma::ProjectItem> items;
      items.push_back(ma::ProjectItem::Scored(
          ScoreCol(var),
          ma::ScoreExpr::ScaleByCount(
              ma::ScoreExpr::InitFromCount(CntCol(var)), CntCol(var))));
      items.push_back(ma::ProjectItem::Passthrough(CntCol(var)));
      return ma::MakeProject(std::move(ca), std::move(items));
    }
    std::vector<ma::ProjectItem> alpha;
    alpha.push_back(ma::ProjectItem::Scored(
        ScoreCol(var), ma::ScoreExpr::InitPos(PosCol(var))));
    PlanNodePtr projected = ma::MakeProject(std::move(node), std::move(alpha));
    ma::GroupSpec spec;
    spec.score_aggs.push_back({ScoreCol(var), ScoreCol(var), ""});
    spec.count_output = CntCol(var);
    return ma::MakeGroup(std::move(projected), std::move(spec));
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const bool child_in_union =
        in_union || node->kind == OpKind::kOuterUnion;
    const bool child_in_anti_right =
        in_anti_right || (node->kind == OpKind::kAntiJoin && i == 1);
    node->children[i] = RewriteAggregatedLeaves(
        std::move(node->children[i]), ctx, child_in_union,
        child_in_anti_right);
  }
  return node;
}

// Result of the join-scaling pass: which count column and score columns a
// subtree carries.
struct CarryInfo {
  std::string count_col;  // empty if none
  std::vector<std::string> score_cols;
};

// Path B join bookkeeping: whenever both join inputs carry counts, wrap a
// π that cross-scales each side's column scores by the partner's count (a
// column's ⊕-fold must absorb the multiplicity the join introduces) and
// multiplies the counts — the eager-aggregation arithmetic of Yan & Larson
// adapted to ⊕/⊗.
CarryInfo ScaleAtJoins(PlanNodePtr* node_ref, StrategyContext* ctx) {
  PlanNode* node = node_ref->get();
  switch (node->kind) {
    case OpKind::kJoin: {
      CarryInfo left = ScaleAtJoins(&node->children[0], ctx);
      CarryInfo right = ScaleAtJoins(&node->children[1], ctx);
      CarryInfo merged;
      merged.score_cols = left.score_cols;
      merged.score_cols.insert(merged.score_cols.end(),
                               right.score_cols.begin(),
                               right.score_cols.end());
      if (!left.count_col.empty() && !right.count_col.empty()) {
        // Wrap the scaling π. Position columns pass through; each side's
        // scores scale by the partner count; counts multiply.
        const std::string combined =
            "cx" + std::to_string(ctx->next_combined_count++);
        std::vector<ma::ProjectItem> items;
        // Passthrough of position columns requires the (unresolved)
        // schema; defer by listing the known score/count columns and
        // letting a marker item stand for "all position columns". To keep
        // the plan language simple we enumerate instead: positions flow
        // only from residual subtrees, which carry no counts, so a join
        // with counts on both sides has no position columns from counted
        // sides; residual position columns can only be on one side.
        // We therefore rebuild items from both children's *known*
        // variables at resolve time — here we list score/count scaling
        // and positions are handled by PassthroughAllPos below.
        (void)items;
        std::vector<ma::ProjectItem> out;
        // Positions: passthrough by name for every variable not counted
        // or aggregated (collected later); simplest is to mark them via
        // the special helper that the caller fills in. To avoid deferred
        // machinery we enumerate positions from the subtree variables.
        std::set<VarId> vars;
        CollectVars(*node, &vars);
        for (const VarId var : vars) {
          if (ctx->aggregated_vars.count(var) == 0 &&
              ctx->counted_vars.count(var) == 0) {
            out.push_back(ma::ProjectItem::Passthrough(PosCol(var)));
          }
        }
        for (const std::string& s : left.score_cols) {
          out.push_back(ma::ProjectItem::Scored(
              s, ma::ScoreExpr::ScaleByCount(ma::ScoreExpr::ColRef(s),
                                             right.count_col)));
        }
        for (const std::string& s : right.score_cols) {
          out.push_back(ma::ProjectItem::Scored(
              s, ma::ScoreExpr::ScaleByCount(ma::ScoreExpr::ColRef(s),
                                             left.count_col)));
        }
        out.push_back(ma::ProjectItem::CountProduct(
            combined, {left.count_col, right.count_col}));
        *node_ref = ma::MakeProject(std::move(*node_ref), std::move(out));
        merged.count_col = combined;
        return merged;
      }
      merged.count_col =
          !left.count_col.empty() ? left.count_col : right.count_col;
      return merged;
    }
    case OpKind::kAntiJoin: {
      // Only the left side carries scored/counted state.
      return ScaleAtJoins(&node->children[0], ctx);
    }
    case OpKind::kSelect: {
      return ScaleAtJoins(&node->children[0], ctx);
    }
    case OpKind::kPreCountAtom: {
      CarryInfo info;
      info.count_col = node->output_column;
      return info;
    }
    case OpKind::kProject: {
      // Aggregated pre-count leaf (π over CA) or a previously inserted
      // scaling π: report its score/count columns from the items.
      CarryInfo info;
      for (const ma::ProjectItem& item : node->items) {
        if (item.expr != nullptr) {
          info.score_cols.push_back(item.name);
        } else if (!item.count_product.empty()) {
          info.count_col = item.name;
        } else if (!item.source.empty() && item.source.rfind("c", 0) == 0 &&
                   item.name == item.source) {
          info.count_col = item.name;
        }
      }
      return info;
    }
    case OpKind::kGroup: {
      CarryInfo info;
      for (const ma::GroupSpec::ScoreAgg& agg : node->group.score_aggs) {
        info.score_cols.push_back(agg.output);
      }
      if (!node->group.count_output.empty()) {
        info.count_col = node->group.count_output;
      }
      return info;
    }
    default:
      return CarryInfo();
  }
}

}  // namespace

std::string OptimizedPlan::AppliedToString() const {
  std::string out;
  for (size_t i = 0; i < applied.size(); ++i) {
    if (i > 0) out += ", ";
    out += OptimizationName(applied[i]);
  }
  return out;
}

std::string FormatRewriteAttempts(
    const std::vector<RewriteAttempt>& attempts) {
  std::string out;
  for (const RewriteAttempt& attempt : attempts) {
    out += "  ";
    out += OptimizationName(attempt.opt);
    out += attempt.fired ? ": fired (" : ": skipped (";
    out += attempt.verdict;
    out += ")\n";
  }
  return out;
}

StatusOr<OptimizedPlan> Optimizer::Optimize(
    const mcalc::Query& query, const index::InvertedIndex& index,
    common::QueryTrace* trace) const {
  const sa::SchemeProperties& props = scheme_->properties();
  OptimizedPlan result;
  GRAFT_ASSIGN_OR_RETURN(result.phi, DeriveScoringPlan(query));

  // 1. Boolean structure without σ/τ (constraints collected).
  GRAFT_ASSIGN_OR_RETURN(ma::PlanNodePtr tree,
                         BuildMatchingSubplanNoSort(query));
  std::vector<mcalc::PredicateCall> predicates;
  tree = StripSelects(std::move(tree), &predicates);

  // 2. Join reordering (always valid: the gate has no requirements).
  if (options_.reorder_joins &&
      IsOptimizationValid(Optimization::kJoinReordering, props)) {
    tree = ReorderJoins(std::move(tree), index,
                        options_.cost_based_join_order);
    // Reordering may have re-attached residuals as selects; restrip.
    tree = StripSelects(std::move(tree), &predicates);
    result.applied.push_back(Optimization::kJoinReordering);
  }

  // 3. Selection pushing.
  if (options_.push_selections &&
      IsOptimizationValid(Optimization::kSelectionPushing, props) &&
      !predicates.empty()) {
    for (mcalc::PredicateCall& call : predicates) {
      tree = PlacePredicate(std::move(tree), std::move(call));
    }
    predicates.clear();
    result.applied.push_back(Optimization::kSelectionPushing);
  } else if (!predicates.empty()) {
    tree = ma::MakeSelect(std::move(tree), std::move(predicates));
    predicates.clear();
  }

  // 4. Sort elimination. If ⊕ does not commute, the canonical τ must stay
  // and the grouped paths below (which fold in stream order) are skipped.
  const bool sort_eliminated =
      options_.eliminate_sort &&
      IsOptimizationValid(Optimization::kSortElimination, props);
  if (sort_eliminated) {
    result.applied.push_back(Optimization::kSortElimination);
  } else {
    tree = ma::MakeSort(std::move(tree));
  }

  StrategyContext ctx;
  ctx.props = &props;
  for (const mcalc::PredicateCall* call :
       mcalc::AllConstraints(*query.root)) {
    for (const VarId var : call->vars) {
      ctx.predicate_vars.insert(var);
    }
  }
  ctx.use_pre_count =
      options_.pre_counting &&
      IsOptimizationValid(Optimization::kPreCounting, props);

  const std::vector<VarId> free_vars = mcalc::FreeVariables(*query.root);
  const bool can_alt_elim =
      options_.alternate_elimination && sort_eliminated &&
      IsOptimizationValid(Optimization::kAlternateElimination, props);
  const bool can_eager_agg =
      options_.eager_aggregation && sort_eliminated &&
      IsOptimizationValid(Optimization::kEagerAggregation, props);
  // The eager-counting path scores row-first over the collapsed rows. For
  // schemes that are not genuinely row-first this is only consistent when
  // no column ever mixes real and ∅ alternates — i.e. on disjunction-free
  // queries (on those, position-independent α makes every alternate of a
  // column equal, so row and column aggregation coincide).
  std::function<bool(const mcalc::Node&)> has_disjunction =
      [&has_disjunction](const mcalc::Node& node) {
        if (node.kind == mcalc::NodeKind::kOr) return true;
        for (const mcalc::NodePtr& child : node.children) {
          if (has_disjunction(*child)) return true;
        }
        return false;
      };
  const bool can_eager_count =
      options_.eager_counting && sort_eliminated && !props.positional &&
      (props.row_first() || !has_disjunction(*query.root)) &&
      IsOptimizationValid(Optimization::kEagerCounting, props);

  if (can_alt_elim) {
    // ---- Path A: alternate elimination (constant schemes). ----
    // Predicate-free leaves become CA scans (pre-count) or δ_A-limited
    // scans; a δ_A above the matching tree takes the first surviving match
    // per document; a single π hosts α, Φ, and ω.
    if (ctx.use_pre_count) {
      tree = RewriteCountedLeaves(std::move(tree), &ctx, false, false,
                                  /*allow_in_union=*/true);
      if (!ctx.counted_vars.empty()) {
        result.applied.push_back(Optimization::kPreCounting);
      }
    } else {
      tree = RewriteAltElimLeaves(std::move(tree), &ctx, false);
    }
    tree = ma::MakeAltElim(std::move(tree));
    result.applied.push_back(Optimization::kAlternateElimination);
    result.applied.push_back(Optimization::kForwardScanJoin);

    ma::ScoreExprPtr phi_expr =
        PhiToScoreExpr(*result.phi, [&ctx](VarId var) {
          if (ctx.counted_vars.count(var) != 0) {
            return ma::ScoreExpr::InitFromCount(CntCol(var));
          }
          return ma::ScoreExpr::InitPos(PosCol(var));
        });
    std::vector<ma::ProjectItem> items;
    items.push_back(ma::ProjectItem::Scored("score", std::move(phi_expr),
                                            /*finalize=*/true));
    result.plan = ma::MakeProject(std::move(tree), std::move(items));
  } else if (can_eager_agg) {
    // ---- Path B: eager aggregation (column-first / diagonal). ----
    tree = RewriteAggregatedLeaves(std::move(tree), &ctx, false, false);
    if (!ctx.aggregated_vars.empty()) {
      result.applied.push_back(Optimization::kEagerAggregation);
      if (ctx.use_pre_count) {
        result.applied.push_back(Optimization::kPreCounting);
      } else {
        result.applied.push_back(Optimization::kEagerCounting);
      }
    }
    CarryInfo carry = ScaleAtJoins(&tree, &ctx);

    // Residual α: variables whose positions still flow to the top.
    std::vector<ma::ProjectItem> pre_group;
    std::vector<VarId> residual_vars;
    for (const VarId var : free_vars) {
      if (ctx.aggregated_vars.count(var) == 0) {
        residual_vars.push_back(var);
        pre_group.push_back(ma::ProjectItem::Scored(
            ScoreCol(var), ma::ScoreExpr::InitPos(PosCol(var))));
      }
    }
    for (const VarId var : free_vars) {
      if (ctx.aggregated_vars.count(var) != 0) {
        pre_group.push_back(ma::ProjectItem::Passthrough(ScoreCol(var)));
      }
    }
    if (!carry.count_col.empty()) {
      pre_group.push_back(ma::ProjectItem::Passthrough(carry.count_col));
    }
    ma::PlanNodePtr plan =
        ma::MakeProject(std::move(tree), std::move(pre_group));

    // Final γ_d: residual columns ⊕-fold (each row weighted by the
    // aggregate count product); aggregated columns fold over the group's
    // residual rows, which scales them by the residual multiplicity.
    ma::GroupSpec group;
    for (const VarId var : residual_vars) {
      group.score_aggs.push_back(
          {ScoreCol(var), ScoreCol(var), carry.count_col});
    }
    for (const VarId var : free_vars) {
      if (ctx.aggregated_vars.count(var) != 0) {
        group.score_aggs.push_back({ScoreCol(var), ScoreCol(var), ""});
      }
    }
    plan = ma::MakeGroup(std::move(plan), std::move(group));

    std::vector<ma::ProjectItem> final_items;
    final_items.push_back(ma::ProjectItem::Scored(
        "score", PhiToScoreExpr(*result.phi,
                                [](VarId var) {
                                  return ma::ScoreExpr::ColRef(ScoreCol(var));
                                }),
        /*finalize=*/true));
    result.plan = ma::MakeProject(std::move(plan), std::move(final_items));
  } else if (can_eager_count) {
    // ---- Path C: eager counting with row-first scoring preserved. ----
    tree = RewriteCountedLeaves(std::move(tree), &ctx, false, false,
                                /*allow_in_union=*/true);
    if (!ctx.counted_vars.empty()) {
      if (ctx.use_pre_count) {
        result.applied.push_back(Optimization::kPreCounting);
      }
      result.applied.push_back(Optimization::kEagerCounting);
    }

    // Row score over the collapsed rows; each physical row stands for the
    // product of its counts many match rows with identical scores.
    ma::ScoreExprPtr phi_expr =
        PhiToScoreExpr(*result.phi, [&ctx](VarId var) {
          if (ctx.counted_vars.count(var) != 0) {
            return ma::ScoreExpr::InitFromCount(CntCol(var));
          }
          return ma::ScoreExpr::InitPos(PosCol(var));
        });
    std::vector<ma::ProjectItem> row_items;
    row_items.push_back(
        ma::ProjectItem::Scored("s", std::move(phi_expr)));
    std::vector<std::string> count_cols;
    for (const VarId var : free_vars) {
      if (ctx.counted_vars.count(var) != 0) {
        count_cols.push_back(CntCol(var));
      }
    }
    std::string weight_col;
    if (!count_cols.empty()) {
      weight_col = "cw";
      row_items.push_back(
          ma::ProjectItem::CountProduct(weight_col, std::move(count_cols)));
    }
    ma::PlanNodePtr plan =
        ma::MakeProject(std::move(tree), std::move(row_items));

    ma::GroupSpec group;
    group.score_aggs.push_back({"s", "s", weight_col});
    plan = ma::MakeGroup(std::move(plan), std::move(group));

    std::vector<ma::ProjectItem> final_items;
    final_items.push_back(ma::ProjectItem::Scored(
        "score", ma::ScoreExpr::ColRef("s"), /*finalize=*/true));
    result.plan = ma::MakeProject(std::move(plan), std::move(final_items));
  } else {
    // ---- Path D: matching optimizations only. ----
    // Canonical-shaped scoring portion over the (pushed, reordered)
    // matching subplan, honouring the scheme's directionality. Used for
    // positional row-first schemes (BestSum+MinDist) and whenever the
    // grouped paths are disabled or gated off.
    if (props.row_first()) {
      ma::ScoreExprPtr phi_expr =
          PhiToScoreExpr(*result.phi, [](VarId var) {
            return ma::ScoreExpr::InitPos(PosCol(var));
          });
      std::vector<ma::ProjectItem> row_items;
      row_items.push_back(ma::ProjectItem::Scored("s", std::move(phi_expr)));
      ma::PlanNodePtr plan =
          ma::MakeProject(std::move(tree), std::move(row_items));
      ma::GroupSpec group;
      group.score_aggs.push_back({"s", "s", ""});
      plan = ma::MakeGroup(std::move(plan), std::move(group));
      std::vector<ma::ProjectItem> final_items;
      final_items.push_back(ma::ProjectItem::Scored(
          "score", ma::ScoreExpr::ColRef("s"), /*finalize=*/true));
      result.plan = ma::MakeProject(std::move(plan), std::move(final_items));
    } else {
      std::vector<ma::ProjectItem> alpha_items;
      for (const VarId var : free_vars) {
        alpha_items.push_back(ma::ProjectItem::Scored(
            ScoreCol(var), ma::ScoreExpr::InitPos(PosCol(var))));
      }
      ma::PlanNodePtr plan =
          ma::MakeProject(std::move(tree), std::move(alpha_items));
      ma::GroupSpec group;
      for (const VarId var : free_vars) {
        group.score_aggs.push_back({ScoreCol(var), ScoreCol(var), ""});
      }
      plan = ma::MakeGroup(std::move(plan), std::move(group));
      std::vector<ma::ProjectItem> final_items;
      final_items.push_back(ma::ProjectItem::Scored(
          "score",
          PhiToScoreExpr(*result.phi,
                         [](VarId var) {
                           return ma::ScoreExpr::ColRef(ScoreCol(var));
                         }),
          /*finalize=*/true));
      result.plan = ma::MakeProject(std::move(plan), std::move(final_items));
    }
  }

  // Zig-zag joins are the default physical join everywhere (always valid).
  result.applied.push_back(Optimization::kZigZagJoin);

  // Record the complete rewrite-attempt table (catalog order) by iterating
  // the declarative rule registry: for every rule, whether it fired and the
  // gate/option/structural reason. This is what EXPLAIN prints and what the
  // differential fuzzer checks against `applied`.
  {
    const auto fired = [&result](Optimization opt) {
      return std::find(result.applied.begin(), result.applied.end(), opt) !=
             result.applied.end();
    };
    RuleQueryFacts facts;
    facts.sort_eliminated = sort_eliminated;
    facts.can_alt_elim = can_alt_elim;
    facts.can_eager_agg = can_eager_agg;
    facts.use_pre_count = ctx.use_pre_count;
    facts.no_free_leaves =
        ctx.counted_vars.empty() && ctx.aggregated_vars.empty();
    facts.has_disjunction = has_disjunction(*query.root);
    facts.positional_scheme = props.positional;
    facts.row_first_scheme = props.row_first();
    for (const RewriteRule& rule : RewriteRuleRegistry::Global().All()) {
      RewriteAttempt attempt;
      attempt.opt = rule.opt;
      attempt.fired = fired(rule.opt);
      const GateDecision gate = rule.Explain(props);
      if (attempt.fired) {
        attempt.verdict = "gate ok: " + gate.reason;
      } else if (!gate.valid) {
        attempt.verdict = "blocked by gate: " + gate.reason;
      } else if (rule.stage == RuleStage::kExecution) {
        // Execution-stage strategies never fire at plan time; the verdict
        // records that the gate would license them on the top-k path.
        attempt.verdict = "gate ok: " + gate.reason + rule.execution_note;
      } else if (!rule.Enabled(options_)) {
        attempt.verdict = "disabled by options";
      } else {
        // Gate admits it and the toggle is on; the query's structure kept
        // it from firing.
        attempt.verdict = rule.skip_reason != nullptr
                              ? rule.skip_reason(options_, facts)
                              : "always applied";
      }
      if (trace != nullptr) {
        trace->AddEvent("rewrite " + OptimizationName(attempt.opt),
                        (attempt.fired ? "fired; " : "skipped; ") +
                            attempt.verdict);
      }
      result.attempts.push_back(std::move(attempt));
    }
  }

  GRAFT_RETURN_IF_ERROR(ma::ResolvePlan(result.plan.get(), index));
  return result;
}

}  // namespace graft::core
