// GRAFT's public entry point.
//
// Typical use:
//
//   graft::index::IndexBuilder builder;
//   builder.AddDocumentStrings(graft::text::Tokenize("free software ..."));
//   graft::index::InvertedIndex index = builder.Build();
//
//   graft::core::Engine engine(&index);
//   auto result = engine.Search(
//       "(windows emulator)WINDOW[50] (foss | \"free software\")",
//       "MeanSum");
//   for (const auto& hit : result->results) { ... }
//
// The scoring scheme is a plug-in parameter: any scheme registered in
// sa::SchemeRegistry (the seven from the paper's Section 7 plus
// user-defined ones) can be named, and the optimizer adapts the plan to
// the scheme's declared properties.
//
// Parallel execution: constructing the engine with a SegmentedIndex turns
// on intra-query parallelism. The query is parsed and optimized ONCE
// against the monolithic index; the optimized plan is then cloned and
// resolved per segment, segments execute concurrently on the engine's
// thread pool (each against global collection statistics, so scores are
// bit-identical to the monolithic run), and the per-segment ranked
// streams are merged — a full sort for top_k == 0, a k-way heap merge of
// per-segment top-k lists otherwise. The engine is safe to share across
// threads for concurrent Search calls (inter-query parallelism).

#ifndef GRAFT_CORE_ENGINE_H_
#define GRAFT_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "exec/rank_join.h"
#include "index/segmented_index.h"
#include "index/stats.h"
#include "ma/match_table.h"
#include "mcalc/parser.h"

namespace graft::core {

// Which top-k physical operator SearchQuery should run when the gate
// licenses rank processing. kAuto is the production policy; the forced
// strategies exist for head-to-head comparison (bench_parallel_throughput)
// and differential testing — an unlicensed forced strategy falls back to
// full ranking + truncate rather than failing.
enum class TopKStrategy {
  kAuto,       // block-max pruned when licensed, else threshold rank engine
  kThreshold,  // force Fagin TA (exec::ThresholdTopK) when licensed
  kNra,        // force Fagin NRA (exec::NraTopK) when licensed
};

struct SearchOptions {
  OptimizerOptions optimizer;

  // 0 = return all matching documents. > 0: return the k best; when the
  // gate admits rank-join/rank-union for the query and scheme (and
  // `allow_rank_processing`), a threshold-based top-k execution that stops
  // early is used instead of scoring every document.
  size_t top_k = 0;
  bool allow_rank_processing = true;

  // Top-k operator selection (see TopKStrategy). Ignored when top_k == 0
  // or rank processing is disallowed.
  TopKStrategy topk_strategy = TopKStrategy::kAuto;

  // Score-safe dynamic pruning (block-max top-k). On top-k queries where
  // the extended gate licenses it (α bounded, ⊕ idempotent, ⊘/⊚ monotonic,
  // diagonal scheme, pure keyword query, index with block-max metadata,
  // no overlay), posting blocks whose score ceiling cannot reach the k-th
  // best result are skipped entirely. Results are bit-identical to the
  // unpruned top-k. Subordinate to allow_rank_processing: disabling rank
  // processing disables pruning too.
  bool allow_block_max_pruning = true;

  // Max workers for parallel segmented execution (engines constructed
  // with a SegmentedIndex): 0 = the engine's pool plus the calling
  // thread; 1 = execute segments serially on the calling thread; N caps
  // the per-query concurrency at N without resizing the shared pool.
  size_t num_threads = 0;

  // When false, an engine constructed with a SegmentedIndex executes the
  // query monolithically (segments_searched == 1) instead of fanning out.
  // Scores are identical either way; serving front ends expose this as a
  // per-request escape hatch.
  bool use_segmented = true;

  // Evaluate with the canonical score-isolated plan on the materializing
  // reference evaluator instead of the optimized streaming plan. Slow;
  // meant for oracle comparisons.
  bool use_canonical_reference = false;

  // Per-request statistics overlay (borrowed; must outlive the call).
  // When set it takes the place of the engine's constructor overlay for
  // this query only: collection-level statistics resolve against it before
  // the live index, which is how a router shard pins the distributed
  // corpus' global statistics so its scores are bit-identical to a
  // single-process run (block-max pruning stands down, exactly as with a
  // constructor overlay). Not supported on the segmented fan-out path —
  // overlay doc ids are global; combine with use_segmented = false or a
  // monolithic engine.
  const index::StatsOverlay* stats_overlay = nullptr;

  // When non-null, the engine records spans into it: parse (on the
  // text-query entry points) → optimize (one event per attempted rewrite,
  // with the gate verdict) → execute (one child span per segment) → rank →
  // merge. Independently, whenever common::Tracer::Global() is enabled,
  // Search() traces every text query into the global ring even with
  // trace == nullptr.
  common::QueryTrace* trace = nullptr;
};

struct SearchResult {
  std::vector<ma::ScoredDoc> results;
  // The executed plan (EXPLAIN-style rendering) and the rewrites applied.
  std::string plan_text;
  std::string applied_optimizations;
  // Every catalog rewrite attempted for this query, with its gate verdict
  // (or option/structural reason) — EXPLAIN's rewrite table. Populated on
  // both the streaming and rank-processing paths; empty only for the
  // canonical-reference oracle.
  std::vector<RewriteAttempt> rewrite_attempts;
  exec::ExecStats exec_stats;
  bool used_rank_processing = false;
  // True when the block-max pruned top-k operator produced the results
  // (implies used_rank_processing). The differential fuzzer asserts this
  // stays false for schemes the gate does not license.
  bool used_block_max_pruning = false;
  // Which top-k physical operator produced the results: "maxscore",
  // "hrjn" (the cached threshold rank engine), "ta", "nra"; empty on the
  // full ranking + truncate and streaming paths. The fuzzer's activation
  // invariant checks this against the operators' gates.
  std::string topk_operator;
  // Number of index segments the query executed over (1 = monolithic).
  size_t segments_searched = 1;
};

class Engine {
 public:
  explicit Engine(const index::InvertedIndex* index,
                  const index::StatsOverlay* overlay = nullptr)
      : index_(index), overlay_(overlay) {}

  // Parallel segmented engine. `segmented` must have been built from
  // `*index` (same documents and statistics); both must outlive the
  // engine. `pool_threads` worker threads are spawned eagerly (0 =
  // hardware concurrency); the calling thread also participates in each
  // query, so per-query concurrency is pool_threads + 1. Statistics
  // overlays are not supported on the segmented path (overlay doc ids are
  // global); pass an overlay-free index.
  Engine(const index::InvertedIndex* index,
         const index::SegmentedIndex* segmented, size_t pool_threads);

  // Parses the Section 8 shorthand syntax and searches.
  StatusOr<SearchResult> Search(std::string_view query_text,
                                std::string_view scheme_name,
                                const SearchOptions& options = {}) const;

  // Pre-parsed / programmatically built queries.
  StatusOr<SearchResult> SearchQuery(const mcalc::Query& query,
                                     const sa::ScoringScheme& scheme,
                                     const SearchOptions& options = {}) const;

  // Renders the optimized plan for a query + scheme without executing:
  // query, Φ, scheme, the full rewrite-attempt table (every catalog
  // optimization with its gate verdict), and the physical plan with
  // cost-model estimates.
  StatusOr<std::string> Explain(std::string_view query_text,
                                std::string_view scheme_name,
                                const SearchOptions& options = {}) const;

  // EXPLAIN ANALYZE: executes the query under a trace and renders
  // everything Explain shows plus the measured per-operator counters
  // (postings blocks decoded, galloping probes, skip hits, rank-join heap
  // ops and stopping depth, docs scored vs pruned) side by side with the
  // cost-model estimate, and the span timeline.
  StatusOr<std::string> ExplainAnalyze(std::string_view query_text,
                                       std::string_view scheme_name,
                                       const SearchOptions& options = {}) const;

  const index::InvertedIndex& index() const { return *index_; }
  const index::SegmentedIndex* segmented() const { return segmented_; }

 private:
  StatusOr<const sa::ScoringScheme*> ResolveScheme(
      std::string_view name) const;

  // SearchQuery minus the block-cache accounting wrapper: SearchQuery
  // harvests the calling thread's decoded-block cache counters around this
  // call so EXPLAIN ANALYZE and /stats attribute cache traffic per query.
  StatusOr<SearchResult> SearchQueryImpl(const mcalc::Query& query,
                                         const sa::ScoringScheme& scheme,
                                         const SearchOptions& options) const;

  // The parallel path: one operator tree per segment, executed on the
  // pool, merged score-consistently.
  StatusOr<SearchResult> SearchQuerySegmented(
      const mcalc::Query& query, const sa::ScoringScheme& scheme,
      const SearchOptions& options) const;

  const index::InvertedIndex* index_;
  const index::StatsOverlay* overlay_ = nullptr;
  const index::SegmentedIndex* segmented_ = nullptr;
  std::unique_ptr<common::ThreadPool> pool_;
};

}  // namespace graft::core

#endif  // GRAFT_CORE_ENGINE_H_
