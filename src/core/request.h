// Front-end request plumbing shared by every GRAFT entry point (the
// graft_cli tool and the src/server HTTP service), so query parsing,
// scheme selection, and engine construction cannot drift between them.
//
// A front end collects a SearchRequestParams from its native surface
// (argv flags, URL query parameters), then:
//
//   GRAFT_ASSIGN_OR_RETURN(core::EngineBundle bundle,
//                          core::LoadEngineBundle(path, segments, threads));
//   GRAFT_ASSIGN_OR_RETURN(core::ResolvedRequest resolved,
//                          core::ResolveRequest(*bundle.engine, params));
//   auto result = bundle.engine->SearchQuery(resolved.query,
//                                            *resolved.scheme,
//                                            resolved.options);
//
// All validation failures come back as Status (InvalidArgument /
// NotFound), never as crashes, so servers can map them to 4xx directly.

#ifndef GRAFT_CORE_REQUEST_H_
#define GRAFT_CORE_REQUEST_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/engine.h"
#include "index/inverted_index.h"
#include "index/segmented_index.h"
#include "mcalc/parser.h"
#include "sa/scoring_scheme.h"

namespace graft::core {

// Surface-independent search request: the fields a CLI flag parser and an
// HTTP query-string parser both produce.
struct SearchRequestParams {
  std::string query;
  std::string scheme = "MeanSum";
  // 0 = all matching documents.
  size_t top_k = 0;
  // Per-query worker cap (SearchOptions::num_threads semantics).
  size_t num_threads = 0;
  // Requested segment fan-out: 0 = engine default (all segments when the
  // engine is segmented), 1 = force monolithic execution. Any other value
  // must equal the engine's segment count — partitioning is fixed at
  // engine construction, so a mismatch is a client error, not a silent
  // fallback.
  size_t segments = 0;
};

// A validated request: parsed query, resolved scheme, engine options.
struct ResolvedRequest {
  mcalc::Query query;
  const sa::ScoringScheme* scheme = nullptr;
  SearchOptions options;
};

// Parses params.query, resolves params.scheme against the global registry,
// and validates params.segments against the engine's configuration.
StatusOr<ResolvedRequest> ResolveRequest(const Engine& engine,
                                         const SearchRequestParams& params);

// Parses a non-negative decimal count ("0", "17"). `what` names the field
// in the error message ("k", "--segments", ...). Rejects empty strings,
// signs, and trailing garbage — strtoul's permissiveness is exactly the
// drift this helper exists to prevent.
StatusOr<size_t> ParseCount(std::string_view text, std::string_view what);

// An engine plus the storage it searches, loaded from an index file as one
// movable unit. `segments` <= 1 builds a monolithic engine; otherwise the
// index is partitioned and the engine executes segment-parallel with
// `pool_threads` eager workers (0 = hardware concurrency; the calling
// thread also participates per query).
struct EngineBundle {
  std::unique_ptr<index::InvertedIndex> index;
  std::unique_ptr<index::SegmentedIndex> segmented;  // null when monolithic
  std::unique_ptr<Engine> engine;
};

// How LoadEngineBundle opens the index file.
struct BundleLoadOptions {
  // Map the index (v5) instead of materializing it: postings stay on disk
  // and decode through the block cache on demand. v3/v4 files load eagerly
  // regardless (they have no packed sections).
  bool mmap_index = false;
  // Decoded-block cache for mapped loads; shared across hot reloads so the
  // decoded working set stays bounded across generations. Null gets the
  // bundle a private cache of `block_cache_bytes`.
  std::shared_ptr<index::BlockCache> block_cache;
  size_t block_cache_bytes = size_t{64} << 20;
};

StatusOr<EngineBundle> LoadEngineBundle(const std::string& index_path,
                                        size_t segments, size_t pool_threads);
StatusOr<EngineBundle> LoadEngineBundle(const std::string& index_path,
                                        size_t segments, size_t pool_threads,
                                        const BundleLoadOptions& load);

// Builds a bundle around an already-built index (used by tests and the
// in-process load generator); the bundle takes ownership of `index`.
StatusOr<EngineBundle> MakeEngineBundle(index::InvertedIndex index,
                                        size_t segments, size_t pool_threads);

}  // namespace graft::core

#endif  // GRAFT_CORE_REQUEST_H_
