// Scoring plans Φ (Section 4.2.1).
//
// A scoring plan is the syntactic skeleton of the query that tells the
// scorer how column scores combine: erase all non-HAS predicates, erase
// negations, erase dangling connectives, replace each HAS with its position
// variable, and replace ∧/∨ with ⊘/⊚. For the paper's Q3:
//
//   Φ = (p0 ⊘ p1) ⊘ ((p2 ⊘ p3) ⊚ p4)      (Example 4)
//
// The matching plan and the scoring plan are derived from *independent*
// syntax trees: the optimizer may reorder joins freely (FO equivalence)
// while Φ keeps the aggregation order demanded by a rigid scheme.

#ifndef GRAFT_CORE_SCORING_PLAN_H_
#define GRAFT_CORE_SCORING_PLAN_H_

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "ma/score_expr.h"
#include "mcalc/ast.h"

namespace graft::core {

struct PhiNode;
using PhiNodePtr = std::unique_ptr<PhiNode>;

struct PhiNode {
  enum class Kind { kVar, kConj, kDisj };

  Kind kind = Kind::kVar;
  mcalc::VarId var = -1;
  PhiNodePtr left;
  PhiNodePtr right;

  PhiNodePtr Clone() const;
  // Paper rendering, e.g. "(p0 ⊘ p1) ⊘ ((p2 ⊘ p3) ⊚ p4)".
  std::string ToString() const;
};

// Derives Φ from the query. Fails only if the query scores nothing (e.g.
// every keyword is negated).
StatusOr<PhiNodePtr> DeriveScoringPlan(const mcalc::Query& query);

// Lowers Φ to a hosted score expression; `leaf` supplies the expression for
// each variable (α over its position column for row-first plans, a
// reference to its aggregated column score for column-first plans, a unit
// α over its count column for pre-counted keywords, ...).
ma::ScoreExprPtr PhiToScoreExpr(
    const PhiNode& phi,
    const std::function<ma::ScoreExprPtr(mcalc::VarId)>& leaf);

}  // namespace graft::core

#endif  // GRAFT_CORE_SCORING_PLAN_H_
