// Cardinality and cost estimation for GRAFT plans.
//
// The paper optimizes with a fixed heuristic ("we expect a cost-based
// optimizer to outperform the heuristic optimization we used. Cost-based
// optimization is beyond the scope of this work.") — this module is that
// natural extension. Estimates use the textbook independence assumptions:
//
//   * an atom touches df(t) documents and cf(t) positions;
//   * a doc-join's document count is |D_L| · |D_R| / N;
//   * within a matching document, row counts multiply (position cross
//     product), and each positional predicate keeps a fixed fraction;
//   * a union's document count is bounded by the sum (capped at N).
//
// Cost is a unit-weight mix of documents visited, positions decoded, and
// rows built — the three quantities the executor's counters track.
//
// Used by the optimizer's cost-based join ordering (a greedy smallest-
// intermediate-first order over the estimated document counts), enabled
// with OptimizerOptions::cost_based_join_order, and compared against the
// paper's heuristic in bench_join_order_ablation.

#ifndef GRAFT_CORE_COST_MODEL_H_
#define GRAFT_CORE_COST_MODEL_H_

#include "index/inverted_index.h"
#include "ma/plan.h"

namespace graft::core {

struct CostEstimate {
  double docs = 0.0;   // documents with at least one output row
  double rows = 0.0;   // total output rows
  double cost = 0.0;   // accumulated work units
};

// Fraction of rows a positional predicate is assumed to keep.
inline constexpr double kPredicateSelectivity = 0.2;

class CostModel {
 public:
  explicit CostModel(const index::InvertedIndex* index) : index_(index) {}

  // Estimates the output and cost of a (possibly unresolved) plan subtree.
  // Keywords are resolved against the index by text.
  CostEstimate Estimate(const ma::PlanNode& node) const;

 private:
  const index::InvertedIndex* index_;
};

}  // namespace graft::core

#endif  // GRAFT_CORE_COST_MODEL_H_
