// The optimization gate: Table 1 of the paper as executable logic.
//
// Each optimization lists the scheme properties required for it to be
// score-consistent. The optimizer consults the gate before applying any
// rewrite; benches print the gate (Table 1) and its product with the scheme
// declarations (Table 3).

#ifndef GRAFT_CORE_OPTIMIZATION_GATE_H_
#define GRAFT_CORE_OPTIMIZATION_GATE_H_

#include <string>
#include <vector>

#include "sa/properties.h"

namespace graft::core {

enum class Optimization {
  kSortElimination,
  kJoinReordering,
  kSelectionPushing,
  kZigZagJoin,
  kForwardScanJoin,
  kAlternateElimination,
  kEagerAggregation,
  kEagerCounting,
  kPreCounting,
  kRankJoin,
  kRankUnion,
  // Block-max dynamic pruning (MaxScore-style top-k early termination).
  // Not in the paper's Table 1; the same gate discipline extends to it:
  // skipping a posting block is score-consistent only when α is
  // upper-boundable and the row combinators are monotone.
  kBlockMaxPruning,
};

inline constexpr Optimization kAllOptimizations[] = {
    Optimization::kSortElimination,     Optimization::kJoinReordering,
    Optimization::kSelectionPushing,    Optimization::kZigZagJoin,
    Optimization::kForwardScanJoin,     Optimization::kAlternateElimination,
    Optimization::kEagerAggregation,    Optimization::kEagerCounting,
    Optimization::kPreCounting,         Optimization::kRankJoin,
    Optimization::kRankUnion,           Optimization::kBlockMaxPruning,
};

std::string OptimizationName(Optimization opt);

// The paper's Table 1 rows: human-readable operator and direction
// requirements for documentation output.
std::string OperatorRequirement(Optimization opt);
std::string DirectionRequirement(Optimization opt);

// True iff the optimization preserves score consistency for a scheme with
// these properties (Table 1's decision logic).
bool IsOptimizationValid(Optimization opt, const sa::SchemeProperties& props);

// A gate verdict with the scheme property that decided it, for EXPLAIN
// output ("gate ok: ⊕ commutes" / "blocked: ⊕ not commutative").
struct GateDecision {
  bool valid = false;
  std::string reason;  // the deciding Table-1 requirement, human-readable
};

GateDecision ExplainGate(Optimization opt, const sa::SchemeProperties& props);

// All optimizations valid for the scheme (one Table 3 column).
std::vector<Optimization> ValidOptimizations(
    const sa::SchemeProperties& props);

}  // namespace graft::core

#endif  // GRAFT_CORE_OPTIMIZATION_GATE_H_
