#include "core/engine.h"

#include <algorithm>
#include <atomic>

#include "ma/reference_evaluator.h"

namespace graft::core {

namespace {

// Score-desc, doc-asc: the engine's global result order. Per-segment
// result lists are already sorted this way (after local→global doc-id
// rebasing), so merging them with the same comparator reproduces the
// monolithic order exactly.
bool ScoredBefore(const ma::ScoredDoc& a, const ma::ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

// ExecStats accumulated across concurrent segment executors. Workers add
// their private executor counters once per segment; relaxed ordering
// suffices because the ParallelFor completion latch sequences the final
// read after all writes.
struct AtomicExecStats {
  std::atomic<uint64_t> positions_scanned{0};
  std::atomic<uint64_t> count_entries_scanned{0};
  std::atomic<uint64_t> rows_built{0};
  std::atomic<uint64_t> docs_visited{0};

  void Add(const exec::ExecStats& s) {
    positions_scanned.fetch_add(s.positions_scanned,
                                std::memory_order_relaxed);
    count_entries_scanned.fetch_add(s.count_entries_scanned,
                                    std::memory_order_relaxed);
    rows_built.fetch_add(s.rows_built, std::memory_order_relaxed);
    docs_visited.fetch_add(s.docs_visited, std::memory_order_relaxed);
  }

  exec::ExecStats Snapshot() const {
    exec::ExecStats s;
    s.positions_scanned = positions_scanned.load(std::memory_order_relaxed);
    s.count_entries_scanned =
        count_entries_scanned.load(std::memory_order_relaxed);
    s.rows_built = rows_built.load(std::memory_order_relaxed);
    s.docs_visited = docs_visited.load(std::memory_order_relaxed);
    return s;
  }
};

// K-way merge of per-segment (score desc, doc asc) sorted lists into the
// global top-k (k == 0 → full sort merge). The heap holds one head per
// non-empty list — the Fagin-style merge of independently ranked streams.
std::vector<ma::ScoredDoc> MergeRanked(
    std::vector<std::vector<ma::ScoredDoc>>& partials, size_t k) {
  size_t total = 0;
  for (const auto& partial : partials) {
    total += partial.size();
  }
  std::vector<ma::ScoredDoc> merged;
  if (k == 0) {
    // Full-sort merge: concatenate and sort once (O(n log n) with tiny
    // constants beats heap-merging full result sets).
    merged.reserve(total);
    for (auto& partial : partials) {
      merged.insert(merged.end(), partial.begin(), partial.end());
    }
    std::sort(merged.begin(), merged.end(), ScoredBefore);
    return merged;
  }

  struct Head {
    const std::vector<ma::ScoredDoc>* list;
    size_t next;
  };
  // Max-heap on the best remaining entry of each list.
  const auto heap_after = [](const Head& a, const Head& b) {
    return ScoredBefore((*b.list)[b.next], (*a.list)[a.next]);
  };
  std::vector<Head> heap;
  heap.reserve(partials.size());
  for (const auto& partial : partials) {
    if (!partial.empty()) {
      heap.push_back(Head{&partial, 0});
    }
  }
  std::make_heap(heap.begin(), heap.end(), heap_after);
  merged.reserve(std::min(k, total));
  while (!heap.empty() && merged.size() < k) {
    std::pop_heap(heap.begin(), heap.end(), heap_after);
    Head head = heap.back();
    heap.pop_back();
    merged.push_back((*head.list)[head.next]);
    if (++head.next < head.list->size()) {
      heap.push_back(head);
      std::push_heap(heap.begin(), heap.end(), heap_after);
    }
  }
  return merged;
}

}  // namespace

Engine::Engine(const index::InvertedIndex* index,
               const index::SegmentedIndex* segmented, size_t pool_threads)
    : index_(index),
      segmented_(segmented),
      pool_(std::make_unique<common::ThreadPool>(pool_threads)) {}

StatusOr<const sa::ScoringScheme*> Engine::ResolveScheme(
    std::string_view name) const {
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup(name);
  if (scheme == nullptr) {
    return Status::NotFound("unknown scoring scheme: " + std::string(name));
  }
  return scheme;
}

StatusOr<SearchResult> Engine::Search(std::string_view query_text,
                                      std::string_view scheme_name,
                                      const SearchOptions& options) const {
  GRAFT_ASSIGN_OR_RETURN(mcalc::Query query, mcalc::ParseQuery(query_text));
  GRAFT_ASSIGN_OR_RETURN(const sa::ScoringScheme* scheme,
                         ResolveScheme(scheme_name));
  return SearchQuery(query, *scheme, options);
}

StatusOr<SearchResult> Engine::SearchQuery(const mcalc::Query& query,
                                           const sa::ScoringScheme& scheme,
                                           const SearchOptions& options) const {
  if (segmented_ != nullptr && options.use_segmented &&
      !options.use_canonical_reference) {
    return SearchQuerySegmented(query, scheme, options);
  }

  SearchResult result;
  const sa::QueryContext query_ctx = MakeQueryContext(query);

  if (options.use_canonical_reference) {
    GRAFT_ASSIGN_OR_RETURN(CanonicalBuild canonical,
                           BuildCanonicalPlan(query, scheme));
    GRAFT_RETURN_IF_ERROR(ma::ResolvePlan(canonical.plan.get(), *index_));
    ma::ReferenceEvaluator evaluator(index_, &scheme, query_ctx, overlay_);
    GRAFT_ASSIGN_OR_RETURN(const ma::MatchTable table,
                           evaluator.Evaluate(*canonical.plan));
    GRAFT_ASSIGN_OR_RETURN(result.results, ma::ExtractRankedResults(table));
    result.plan_text = ma::PlanToString(*canonical.plan);
    result.applied_optimizations = "(canonical score-isolated plan)";
    if (options.top_k > 0 && result.results.size() > options.top_k) {
      result.results.resize(options.top_k);
    }
    return result;
  }

  // Top-k rank processing when the gate admits it.
  if (options.top_k > 0 && options.allow_rank_processing &&
      exec::TopKRankEngine::Supports(query, scheme)) {
    exec::TopKRankEngine rank_engine(index_, &scheme, overlay_);
    GRAFT_ASSIGN_OR_RETURN(result.results,
                           rank_engine.TopK(query, options.top_k));
    result.used_rank_processing = true;
    result.applied_optimizations = "rank-join/rank-union (top-k)";
    return result;
  }

  Optimizer optimizer(&scheme, options.optimizer);
  GRAFT_ASSIGN_OR_RETURN(OptimizedPlan plan,
                         optimizer.Optimize(query, *index_));
  exec::Executor executor(index_, &scheme, query_ctx, overlay_);
  GRAFT_ASSIGN_OR_RETURN(result.results, executor.ExecuteRanked(*plan.plan));
  result.plan_text = ma::PlanToString(*plan.plan);
  result.applied_optimizations = plan.AppliedToString();
  result.exec_stats = executor.stats();
  if (options.top_k > 0 && result.results.size() > options.top_k) {
    result.results.resize(options.top_k);
  }
  return result;
}

StatusOr<SearchResult> Engine::SearchQuerySegmented(
    const mcalc::Query& query, const sa::ScoringScheme& scheme,
    const SearchOptions& options) const {
  SearchResult result;
  const sa::QueryContext query_ctx = MakeQueryContext(query);
  const size_t num_segments = segmented_->segment_count();
  result.segments_searched = num_segments;

  // Per-segment output slots: distinct indexes, no locking needed; the
  // ParallelFor latch publishes all writes to this thread.
  std::vector<Status> statuses(num_segments, Status::Ok());
  std::vector<std::vector<ma::ScoredDoc>> partials(num_segments);
  AtomicExecStats agg_stats;

  // Top-k rank processing: per-segment threshold-algorithm top-k against
  // global statistics, then a k-way merge — score-consistent because each
  // segment's top-k is exact for its documents.
  if (options.top_k > 0 && options.allow_rank_processing &&
      exec::TopKRankEngine::Supports(query, scheme)) {
    common::ParallelFor(
        pool_.get(), options.num_threads, num_segments, [&](size_t i) {
          const index::SegmentedIndex::Segment& seg = segmented_->segment(i);
          exec::TopKRankEngine rank_engine(&seg.index, &scheme,
                                           /*overlay=*/nullptr, &seg.stats);
          auto local = rank_engine.TopK(query, options.top_k);
          if (!local.ok()) {
            statuses[i] = local.status();
            return;
          }
          partials[i] = std::move(local).value();
          for (ma::ScoredDoc& hit : partials[i]) {
            hit.doc += seg.base;
          }
        });
    for (const Status& status : statuses) {
      GRAFT_RETURN_IF_ERROR(status);
    }
    result.results = MergeRanked(partials, options.top_k);
    result.used_rank_processing = true;
    result.applied_optimizations =
        "rank-join/rank-union (top-k), segmented ×" +
        std::to_string(num_segments);
    return result;
  }

  // Optimize ONCE against the monolithic index (cost estimates use global
  // posting lengths); resolve the plan per segment.
  Optimizer optimizer(&scheme, options.optimizer);
  GRAFT_ASSIGN_OR_RETURN(OptimizedPlan plan,
                         optimizer.Optimize(query, *index_));

  common::ParallelFor(
      pool_.get(), options.num_threads, num_segments, [&](size_t i) {
        const index::SegmentedIndex::Segment& seg = segmented_->segment(i);
        ma::PlanNodePtr local_plan = plan.plan->Clone();
        Status resolved = ma::ResolvePlan(local_plan.get(), seg.index);
        if (!resolved.ok()) {
          statuses[i] = std::move(resolved);
          return;
        }
        exec::Executor executor(&seg.index, &scheme, query_ctx,
                                /*overlay=*/nullptr, &seg.stats);
        auto local = executor.ExecuteRanked(*local_plan);
        if (!local.ok()) {
          statuses[i] = local.status();
          return;
        }
        partials[i] = std::move(local).value();
        for (ma::ScoredDoc& hit : partials[i]) {
          hit.doc += seg.base;
        }
        agg_stats.Add(executor.stats());
      });
  for (const Status& status : statuses) {
    GRAFT_RETURN_IF_ERROR(status);
  }

  result.results = MergeRanked(partials, options.top_k);
  result.plan_text = ma::PlanToString(*plan.plan);
  result.applied_optimizations =
      plan.AppliedToString() + ", segmented ×" + std::to_string(num_segments);
  result.exec_stats = agg_stats.Snapshot();
  return result;
}

StatusOr<std::string> Engine::Explain(std::string_view query_text,
                                      std::string_view scheme_name,
                                      const SearchOptions& options) const {
  GRAFT_ASSIGN_OR_RETURN(mcalc::Query query, mcalc::ParseQuery(query_text));
  GRAFT_ASSIGN_OR_RETURN(const sa::ScoringScheme* scheme,
                         ResolveScheme(scheme_name));
  Optimizer optimizer(scheme, options.optimizer);
  GRAFT_ASSIGN_OR_RETURN(OptimizedPlan plan,
                         optimizer.Optimize(query, *index_));
  std::string out = "query: " + mcalc::ToMCalcString(query) + "\n";
  out += "scoring plan Φ: " + plan.phi->ToString() + "\n";
  out += "scheme: " + std::string(scheme->name()) + " (" +
         sa::DirectionName(scheme->properties().direction) + ")\n";
  out += "applied: " + plan.AppliedToString() + "\n";
  out += plan.plan == nullptr ? "" : ma::PlanToString(*plan.plan);
  return out;
}

}  // namespace graft::core
