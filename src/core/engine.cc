#include "core/engine.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "core/cost_model.h"
#include "core/rewrite_rules.h"
#include "exec/maxscore_topk.h"
#include "exec/nra_topk.h"
#include "exec/threshold_topk.h"
#include "ma/reference_evaluator.h"

namespace graft::core {

namespace {

// Score-desc, doc-asc: the engine's global result order. Per-segment
// result lists are already sorted this way (after local→global doc-id
// rebasing), so merging them with the same comparator reproduces the
// monolithic order exactly.
bool ScoredBefore(const ma::ScoredDoc& a, const ma::ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

// ExecStats accumulated across concurrent segment executors. Workers add
// their private executor counters once per segment (a handful of adds per
// query), so one mutex beats maintaining an atomic per counter field.
struct SharedExecStats {
  std::mutex mu;
  exec::ExecStats stats;

  void Add(const exec::ExecStats& s) {
    std::lock_guard<std::mutex> lock(mu);
    stats.Accumulate(s);
  }
};

// Folds threshold-algorithm counters into the per-query ExecStats view.
void FoldRankStats(const exec::RankStats& rank, exec::ExecStats* stats) {
  stats->rank_heap_ops += rank.heap_ops;
  stats->rank_stopping_depth += rank.stopping_depth;
  stats->docs_scored += rank.candidates_scored;
  stats->docs_pruned += rank.entries_pruned();
}

// Folds block-max pruning counters into the per-query ExecStats view.
void FoldPruneStats(const exec::PruneStats& prune, exec::ExecStats* stats) {
  stats->rank_heap_ops += prune.heap_ops;
  stats->docs_scored += prune.candidates_scored;
  stats->docs_pruned += prune.candidates_pruned;
  stats->topk_blocks_skipped += prune.blocks_skipped;
  stats->topk_blocks_decoded += prune.blocks_decoded;
  stats->topk_ceiling_probes += prune.ceiling_probes;
  stats->topk_threshold_updates += prune.threshold_updates;
}

// Folds Fagin TA counters into the per-query ExecStats view.
void FoldTaStats(const exec::TaStats& ta, exec::ExecStats* stats) {
  stats->rank_heap_ops += ta.heap_ops;
  stats->rank_stopping_depth += ta.stopping_depth;
  stats->docs_scored += ta.candidates_scored;
  stats->docs_pruned += ta.entries_pruned();
  stats->topk_sorted_accesses += ta.sorted_accesses;
  stats->topk_random_accesses += ta.random_accesses;
}

// Folds Fagin NRA counters into the per-query ExecStats view.
void FoldNraStats(const exec::NraStats& nra, exec::ExecStats* stats) {
  stats->rank_heap_ops += nra.heap_ops;
  stats->rank_stopping_depth += nra.stopping_depth;
  stats->docs_scored += nra.candidates_resolved;
  stats->docs_pruned += nra.entries_pruned();
  stats->topk_sorted_accesses += nra.sorted_accesses;
  stats->topk_bound_refinements += nra.bound_refinements;
}

// Stamps one count per fired rewrite rule (registry order) into the
// result's ExecStats — the per-rule counters /metrics aggregates.
void StampRuleCounters(SearchResult* result) {
  const auto& rules = RewriteRuleRegistry::Global().All();
  for (const RewriteAttempt& attempt : result->rewrite_attempts) {
    if (!attempt.fired) continue;
    for (size_t i = 0; i < rules.size() && i < exec::ExecStats::kMaxRules;
         ++i) {
      if (rules[i].opt == attempt.opt) {
        ++result->exec_stats.rule_fired[i];
        break;
      }
    }
  }
}

// Rewrite-attempt table for the rank-processing path, where the optimizer
// never runs: the gate verdicts are still what admitted rank processing,
// so EXPLAIN ANALYZE and ?explain=1 stay complete on this path too.
// `pruned` marks the block-max row as fired; otherwise `pruning_verdict`
// says why the pruned operator stood down.
std::vector<RewriteAttempt> RankPathAttempts(
    const mcalc::Query& query, const sa::ScoringScheme& scheme,
    const std::string& pruning_verdict, bool pruned,
    const std::string& operator_note = "; threshold top-k execution") {
  const Optimization fired_opt = query.root->kind == mcalc::NodeKind::kOr
                                     ? Optimization::kRankUnion
                                     : Optimization::kRankJoin;
  std::vector<RewriteAttempt> attempts;
  for (const Optimization opt : kAllOptimizations) {
    RewriteAttempt attempt;
    attempt.opt = opt;
    if (opt == Optimization::kBlockMaxPruning) {
      attempt.fired = pruned;
      attempt.verdict =
          pruned ? "gate ok: " +
                       ExplainGate(opt, scheme.properties()).reason +
                       "; block-max dynamic pruning"
                 : pruning_verdict;
    } else if (opt == fired_opt) {
      attempt.fired = !pruned;
      attempt.verdict =
          pruned ? "superseded by block-max pruned top-k"
                 : "gate ok: " +
                       ExplainGate(opt, scheme.properties()).reason +
                       operator_note;
    } else {
      attempt.verdict = "not attempted (rank processing path)";
    }
    attempts.push_back(std::move(attempt));
  }
  return attempts;
}

std::string FormatExecStats(const exec::ExecStats& s) {
  std::string out =
      "  docs_visited=" + std::to_string(s.docs_visited) +
      " rows_built=" + std::to_string(s.rows_built) +
      " positions_scanned=" + std::to_string(s.positions_scanned) +
      " count_entries_scanned=" + std::to_string(s.count_entries_scanned) +
      "\n  blocks_decoded=" + std::to_string(s.blocks_decoded) +
      " gallop_probes=" + std::to_string(s.gallop_probes) +
      " skip_calls=" + std::to_string(s.skip_calls) +
      " skip_hits=" + std::to_string(s.skip_hits) + "\n";
  if (s.rank_heap_ops != 0 || s.docs_scored != 0 || s.docs_pruned != 0 ||
      s.rank_stopping_depth != 0) {
    out += "  rank: heap_ops=" + std::to_string(s.rank_heap_ops) +
           " stopping_depth=" + std::to_string(s.rank_stopping_depth) +
           " docs_scored=" + std::to_string(s.docs_scored) +
           " docs_pruned=" + std::to_string(s.docs_pruned) + "\n";
  }
  if (s.topk_blocks_skipped != 0 || s.topk_ceiling_probes != 0 ||
      s.topk_threshold_updates != 0 || s.topk_blocks_decoded != 0) {
    out += "  pruning: blocks_skipped=" +
           std::to_string(s.topk_blocks_skipped) +
           " blocks_decoded=" + std::to_string(s.topk_blocks_decoded) +
           " ceiling_probes=" + std::to_string(s.topk_ceiling_probes) +
           " threshold_updates=" + std::to_string(s.topk_threshold_updates) +
           "\n";
  }
  if (s.topk_sorted_accesses != 0 || s.topk_random_accesses != 0 ||
      s.topk_bound_refinements != 0) {
    out += "  fagin: sorted_accesses=" +
           std::to_string(s.topk_sorted_accesses) +
           " random_accesses=" + std::to_string(s.topk_random_accesses) +
           " bound_refinements=" +
           std::to_string(s.topk_bound_refinements) + "\n";
  }
  if (s.block_cache_hits != 0 || s.block_cache_misses != 0 ||
      s.block_cache_evictions != 0 || s.packed_payload_decodes != 0) {
    out += "  block_cache: hits=" + std::to_string(s.block_cache_hits) +
           " misses=" + std::to_string(s.block_cache_misses) +
           " evictions=" + std::to_string(s.block_cache_evictions) +
           " payload_decodes=" + std::to_string(s.packed_payload_decodes) +
           "\n";
  }
  std::string rules;
  const auto& catalog = RewriteRuleRegistry::Global().All();
  for (size_t i = 0; i < catalog.size() && i < exec::ExecStats::kMaxRules;
       ++i) {
    if (s.rule_fired[i] == 0) continue;
    if (!rules.empty()) rules += " ";
    rules += catalog[i].id + "=" + std::to_string(s.rule_fired[i]);
  }
  if (!rules.empty()) {
    out += "  rules_fired: " + rules + "\n";
  }
  return out;
}

// K-way merge of per-segment (score desc, doc asc) sorted lists into the
// global top-k (k == 0 → full sort merge). The heap holds one head per
// non-empty list — the Fagin-style merge of independently ranked streams.
std::vector<ma::ScoredDoc> MergeRanked(
    std::vector<std::vector<ma::ScoredDoc>>& partials, size_t k) {
  size_t total = 0;
  for (const auto& partial : partials) {
    total += partial.size();
  }
  std::vector<ma::ScoredDoc> merged;
  if (k == 0) {
    // Full-sort merge: concatenate and sort once (O(n log n) with tiny
    // constants beats heap-merging full result sets).
    merged.reserve(total);
    for (auto& partial : partials) {
      merged.insert(merged.end(), partial.begin(), partial.end());
    }
    std::sort(merged.begin(), merged.end(), ScoredBefore);
    return merged;
  }

  struct Head {
    const std::vector<ma::ScoredDoc>* list;
    size_t next;
  };
  // Max-heap on the best remaining entry of each list.
  const auto heap_after = [](const Head& a, const Head& b) {
    return ScoredBefore((*b.list)[b.next], (*a.list)[a.next]);
  };
  std::vector<Head> heap;
  heap.reserve(partials.size());
  for (const auto& partial : partials) {
    if (!partial.empty()) {
      heap.push_back(Head{&partial, 0});
    }
  }
  std::make_heap(heap.begin(), heap.end(), heap_after);
  merged.reserve(std::min(k, total));
  while (!heap.empty() && merged.size() < k) {
    std::pop_heap(heap.begin(), heap.end(), heap_after);
    Head head = heap.back();
    heap.pop_back();
    merged.push_back((*head.list)[head.next]);
    if (++head.next < head.list->size()) {
      heap.push_back(head);
      std::push_heap(heap.begin(), heap.end(), heap_after);
    }
  }
  return merged;
}

}  // namespace

Engine::Engine(const index::InvertedIndex* index,
               const index::SegmentedIndex* segmented, size_t pool_threads)
    : index_(index),
      segmented_(segmented),
      pool_(std::make_unique<common::ThreadPool>(pool_threads)) {}

StatusOr<const sa::ScoringScheme*> Engine::ResolveScheme(
    std::string_view name) const {
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup(name);
  if (scheme == nullptr) {
    return Status::NotFound("unknown scoring scheme: " + std::string(name));
  }
  return scheme;
}

StatusOr<SearchResult> Engine::Search(std::string_view query_text,
                                      std::string_view scheme_name,
                                      const SearchOptions& options) const {
  SearchOptions opts = options;
  // When the global tracer is on and the caller did not supply a trace,
  // trace into a local one and publish it to the ring on completion.
  common::QueryTrace ring_trace;
  const bool record_global =
      opts.trace == nullptr && common::Tracer::Global().enabled();
  if (record_global) {
    opts.trace = &ring_trace;
  }

  common::ScopedSpan parse_span(opts.trace, "parse");
  GRAFT_ASSIGN_OR_RETURN(mcalc::Query query, mcalc::ParseQuery(query_text));
  parse_span.End();
  GRAFT_ASSIGN_OR_RETURN(const sa::ScoringScheme* scheme,
                         ResolveScheme(scheme_name));
  auto result = SearchQuery(query, *scheme, opts);
  if (record_global) {
    common::Tracer::Global().Record(std::string(query_text), ring_trace);
  }
  return result;
}

StatusOr<SearchResult> Engine::SearchQuery(const mcalc::Query& query,
                                           const sa::ScoringScheme& scheme,
                                           const SearchOptions& options) const {
  // Harvest the calling thread's decoded-block cache traffic into the
  // query's ExecStats. Packed (v5 mmap) posting access runs on this thread
  // for every monolithic path; segmented queries execute over materialized
  // per-segment indexes, which produce no cache traffic.
  const index::BlockCacheTls before = index::TlsBlockCacheCounters();
  auto result = SearchQueryImpl(query, scheme, options);
  if (result.ok()) {
    const index::BlockCacheTls& after = index::TlsBlockCacheCounters();
    exec::ExecStats& s = result.value().exec_stats;
    s.block_cache_hits += after.hits - before.hits;
    s.block_cache_misses += after.misses - before.misses;
    s.block_cache_evictions += after.evictions - before.evictions;
    s.packed_payload_decodes += after.payload_decodes - before.payload_decodes;
  }
  return result;
}

StatusOr<SearchResult> Engine::SearchQueryImpl(
    const mcalc::Query& query, const sa::ScoringScheme& scheme,
    const SearchOptions& options) const {
  if (segmented_ != nullptr && options.use_segmented &&
      !options.use_canonical_reference) {
    if (options.stats_overlay != nullptr) {
      return Status::InvalidArgument(
          "stats_overlay is not supported on the segmented path (overlay "
          "doc ids are global); set use_segmented = false");
    }
    return SearchQuerySegmented(query, scheme, options);
  }

  // The per-request overlay replaces (not merges with) the engine overlay:
  // a router shard must score against exactly the pinned statistics.
  const index::StatsOverlay* overlay =
      options.stats_overlay != nullptr ? options.stats_overlay : overlay_;

  SearchResult result;
  common::QueryTrace* trace = options.trace;
  const sa::QueryContext query_ctx = MakeQueryContext(query);

  if (options.use_canonical_reference) {
    common::ScopedSpan canonical_span(trace, "canonical-evaluate");
    GRAFT_ASSIGN_OR_RETURN(CanonicalBuild canonical,
                           BuildCanonicalPlan(query, scheme));
    GRAFT_RETURN_IF_ERROR(ma::ResolvePlan(canonical.plan.get(), *index_));
    ma::ReferenceEvaluator evaluator(index_, &scheme, query_ctx, overlay);
    GRAFT_ASSIGN_OR_RETURN(const ma::MatchTable table,
                           evaluator.Evaluate(*canonical.plan));
    GRAFT_ASSIGN_OR_RETURN(result.results, ma::ExtractRankedResults(table));
    result.plan_text = ma::PlanToString(*canonical.plan);
    result.applied_optimizations = "(canonical score-isolated plan)";
    if (options.top_k > 0 && result.results.size() > options.top_k) {
      result.results.resize(options.top_k);
    }
    return result;
  }

  // Forced Fagin middleware strategies (TA / NRA): run the requested
  // operator when its gate licenses it; otherwise fall back to full
  // ranking + truncate below (never a different top-k operator, so the
  // comparison benches and the fuzzer see exactly the strategy they ask
  // for).
  if (options.top_k > 0 && options.allow_rank_processing &&
      options.topk_strategy == TopKStrategy::kThreshold &&
      exec::ThresholdTopK::Supports(query, scheme)) {
    common::ScopedSpan rank_span(trace, "rank");
    exec::ThresholdTopK ta(index_, &scheme, overlay);
    GRAFT_ASSIGN_OR_RETURN(result.results, ta.TopK(query, options.top_k));
    rank_span.End("stopping_depth=" +
                  std::to_string(ta.stats().stopping_depth));
    result.used_rank_processing = true;
    result.topk_operator = "ta";
    result.applied_optimizations = "threshold top-k (TA, forced)";
    result.rewrite_attempts = RankPathAttempts(
        query, scheme, "not attempted (TA strategy forced)",
        /*pruned=*/false, "; threshold top-k (TA) execution");
    FoldTaStats(ta.stats(), &result.exec_stats);
    StampRuleCounters(&result);
    return result;
  }
  if (options.top_k > 0 && options.allow_rank_processing &&
      options.topk_strategy == TopKStrategy::kNra &&
      exec::NraTopK::Supports(query, scheme)) {
    common::ScopedSpan rank_span(trace, "rank");
    exec::NraTopK nra(index_, &scheme, overlay);
    GRAFT_ASSIGN_OR_RETURN(result.results, nra.TopK(query, options.top_k));
    rank_span.End("stopping_depth=" +
                  std::to_string(nra.stats().stopping_depth));
    result.used_rank_processing = true;
    result.topk_operator = "nra";
    result.applied_optimizations = "NRA top-k (forced)";
    result.rewrite_attempts = RankPathAttempts(
        query, scheme, "not attempted (NRA strategy forced)",
        /*pruned=*/false, "; no-random-access top-k (NRA) execution");
    FoldNraStats(nra.stats(), &result.exec_stats);
    StampRuleCounters(&result);
    return result;
  }

  // Top-k rank processing when the gate admits it. The block-max pruned
  // operator runs first when its (stricter) gate also passes; it gates
  // itself off conservatively and falls back to the threshold algorithm.
  if (options.top_k > 0 && options.allow_rank_processing &&
      options.topk_strategy == TopKStrategy::kAuto &&
      exec::TopKRankEngine::Supports(query, scheme)) {
    const std::string prune_verdict =
        options.allow_block_max_pruning
            ? exec::MaxScoreTopK::GateVerdict(query, scheme, *index_,
                                              overlay)
            : "blocked: disabled by request options";
    if (prune_verdict.empty()) {
      common::ScopedSpan rank_span(trace, "rank");
      exec::MaxScoreTopK pruner(index_, &scheme);
      GRAFT_ASSIGN_OR_RETURN(result.results,
                             pruner.TopK(query, options.top_k));
      rank_span.End("blocks_skipped=" +
                    std::to_string(pruner.stats().blocks_skipped));
      result.used_rank_processing = true;
      result.used_block_max_pruning = true;
      result.topk_operator = "maxscore";
      result.applied_optimizations = "block-max pruned top-k";
      result.rewrite_attempts =
          RankPathAttempts(query, scheme, prune_verdict, /*pruned=*/true);
      FoldPruneStats(pruner.stats(), &result.exec_stats);
      StampRuleCounters(&result);
      return result;
    }
    common::ScopedSpan rank_span(trace, "rank");
    exec::TopKRankEngine rank_engine(index_, &scheme, overlay);
    GRAFT_ASSIGN_OR_RETURN(result.results,
                           rank_engine.TopK(query, options.top_k));
    rank_span.End("stopping_depth=" +
                  std::to_string(rank_engine.stats().stopping_depth));
    result.used_rank_processing = true;
    result.topk_operator = "hrjn";
    result.applied_optimizations = "rank-join/rank-union (top-k)";
    result.rewrite_attempts =
        RankPathAttempts(query, scheme, prune_verdict, /*pruned=*/false);
    FoldRankStats(rank_engine.stats(), &result.exec_stats);
    StampRuleCounters(&result);
    return result;
  }

  Optimizer optimizer(&scheme, options.optimizer);
  common::ScopedSpan optimize_span(trace, "optimize");
  GRAFT_ASSIGN_OR_RETURN(OptimizedPlan plan,
                         optimizer.Optimize(query, *index_, trace));
  optimize_span.End("applied: " + plan.AppliedToString());
  exec::Executor executor(index_, &scheme, query_ctx, overlay);
  common::ScopedSpan execute_span(trace, "execute");
  GRAFT_ASSIGN_OR_RETURN(result.results, executor.ExecuteRanked(*plan.plan));
  execute_span.End("docs_visited=" +
                   std::to_string(executor.stats().docs_visited));
  result.plan_text = ma::PlanToString(*plan.plan);
  result.applied_optimizations = plan.AppliedToString();
  result.rewrite_attempts = std::move(plan.attempts);
  result.exec_stats = executor.stats();
  StampRuleCounters(&result);
  if (options.top_k > 0 && result.results.size() > options.top_k) {
    result.results.resize(options.top_k);
  }
  return result;
}

StatusOr<SearchResult> Engine::SearchQuerySegmented(
    const mcalc::Query& query, const sa::ScoringScheme& scheme,
    const SearchOptions& options) const {
  SearchResult result;
  common::QueryTrace* trace = options.trace;
  const sa::QueryContext query_ctx = MakeQueryContext(query);
  const size_t num_segments = segmented_->segment_count();
  result.segments_searched = num_segments;

  // Per-segment output slots: distinct indexes, no locking needed; the
  // ParallelFor latch publishes all writes to this thread.
  std::vector<Status> statuses(num_segments, Status::Ok());
  std::vector<std::vector<ma::ScoredDoc>> partials(num_segments);
  SharedExecStats agg_stats;

  // Top-k rank processing: per-segment threshold-algorithm top-k against
  // global statistics, then a k-way merge — score-consistent because each
  // segment's top-k is exact for its documents. Forced TA/NRA strategies
  // fan out the same way (each segment runs the forced operator against
  // global statistics); unlicensed forced strategies fall through to the
  // full streaming path below.
  const bool force_ta =
      options.topk_strategy == TopKStrategy::kThreshold &&
      exec::ThresholdTopK::Supports(query, scheme);
  const bool force_nra = options.topk_strategy == TopKStrategy::kNra &&
                         exec::NraTopK::Supports(query, scheme);
  const bool rank_path =
      options.top_k > 0 && options.allow_rank_processing &&
      (options.topk_strategy == TopKStrategy::kAuto
           ? exec::TopKRankEngine::Supports(query, scheme)
           : (force_ta || force_nra));
  if (rank_path) {
    // Per-segment pruning: each segment carries its own block-max metadata
    // (rebuilt over the rebased slice iff the source index has it), prunes
    // against its local threshold, and the k-way merge reproduces the
    // monolithic order because per-segment scores use global statistics.
    const std::string prune_verdict =
        force_ta || force_nra
            ? std::string("not attempted (") +
                  (force_ta ? "TA" : "NRA") + " strategy forced)"
            : options.allow_block_max_pruning
                  ? exec::MaxScoreTopK::GateVerdict(query, scheme, *index_,
                                                    overlay_)
                  : "blocked: disabled by request options";
    const bool prune = !force_ta && !force_nra && prune_verdict.empty();
    common::ScopedSpan rank_span(
        trace, "rank", "segments=" + std::to_string(num_segments));
    common::ParallelFor(
        pool_.get(), options.num_threads, num_segments, [&](size_t i) {
          common::ScopedSpan segment_span(trace,
                                          "segment " + std::to_string(i));
          const index::SegmentedIndex::Segment& seg = segmented_->segment(i);
          StatusOr<std::vector<ma::ScoredDoc>> local =
              Status::Internal("unreached");
          exec::ExecStats rank_stats;
          if (force_ta) {
            exec::ThresholdTopK ta(&seg.index, &scheme,
                                   /*overlay=*/nullptr, &seg.stats);
            local = ta.TopK(query, options.top_k);
            FoldTaStats(ta.stats(), &rank_stats);
          } else if (force_nra) {
            exec::NraTopK nra(&seg.index, &scheme,
                              /*overlay=*/nullptr, &seg.stats);
            local = nra.TopK(query, options.top_k);
            FoldNraStats(nra.stats(), &rank_stats);
          } else if (prune) {
            exec::MaxScoreTopK pruner(&seg.index, &scheme, &seg.stats);
            local = pruner.TopK(query, options.top_k);
            FoldPruneStats(pruner.stats(), &rank_stats);
          } else {
            exec::TopKRankEngine rank_engine(&seg.index, &scheme,
                                             /*overlay=*/nullptr, &seg.stats);
            local = rank_engine.TopK(query, options.top_k);
            FoldRankStats(rank_engine.stats(), &rank_stats);
          }
          if (!local.ok()) {
            statuses[i] = local.status();
            return;
          }
          partials[i] = std::move(local).value();
          for (ma::ScoredDoc& hit : partials[i]) {
            hit.doc += seg.base;
          }
          agg_stats.Add(rank_stats);
        });
    for (const Status& status : statuses) {
      GRAFT_RETURN_IF_ERROR(status);
    }
    rank_span.End();
    common::ScopedSpan merge_span(trace, "merge");
    result.results = MergeRanked(partials, options.top_k);
    merge_span.End("results=" + std::to_string(result.results.size()));
    result.used_rank_processing = true;
    result.used_block_max_pruning = prune;
    result.topk_operator =
        force_ta ? "ta" : force_nra ? "nra" : prune ? "maxscore" : "hrjn";
    result.applied_optimizations =
        (force_ta
             ? std::string("threshold top-k (TA, forced), segmented ×")
             : force_nra
                   ? std::string("NRA top-k (forced), segmented ×")
                   : prune
                         ? std::string("block-max pruned top-k, segmented ×")
                         : std::string(
                               "rank-join/rank-union (top-k), segmented ×")) +
        std::to_string(num_segments);
    result.rewrite_attempts = RankPathAttempts(
        query, scheme, prune_verdict, prune,
        force_ta ? "; threshold top-k (TA) execution"
                 : force_nra ? "; no-random-access top-k (NRA) execution"
                             : "; threshold top-k execution");
    result.exec_stats = agg_stats.stats;
    StampRuleCounters(&result);
    return result;
  }

  // Optimize ONCE against the monolithic index (cost estimates use global
  // posting lengths); resolve the plan per segment.
  Optimizer optimizer(&scheme, options.optimizer);
  common::ScopedSpan optimize_span(trace, "optimize");
  GRAFT_ASSIGN_OR_RETURN(OptimizedPlan plan,
                         optimizer.Optimize(query, *index_, trace));
  optimize_span.End("applied: " + plan.AppliedToString());

  common::ScopedSpan execute_span(
      trace, "execute", "segments=" + std::to_string(num_segments));
  common::ParallelFor(
      pool_.get(), options.num_threads, num_segments, [&](size_t i) {
        common::ScopedSpan segment_span(trace,
                                        "segment " + std::to_string(i));
        const index::SegmentedIndex::Segment& seg = segmented_->segment(i);
        ma::PlanNodePtr local_plan = plan.plan->Clone();
        Status resolved = ma::ResolvePlan(local_plan.get(), seg.index);
        if (!resolved.ok()) {
          statuses[i] = std::move(resolved);
          return;
        }
        exec::Executor executor(&seg.index, &scheme, query_ctx,
                                /*overlay=*/nullptr, &seg.stats);
        auto local = executor.ExecuteRanked(*local_plan);
        if (!local.ok()) {
          statuses[i] = local.status();
          return;
        }
        partials[i] = std::move(local).value();
        for (ma::ScoredDoc& hit : partials[i]) {
          hit.doc += seg.base;
        }
        agg_stats.Add(executor.stats());
      });
  for (const Status& status : statuses) {
    GRAFT_RETURN_IF_ERROR(status);
  }
  execute_span.End();

  common::ScopedSpan merge_span(trace, "merge");
  result.results = MergeRanked(partials, options.top_k);
  merge_span.End("results=" + std::to_string(result.results.size()));
  result.plan_text = ma::PlanToString(*plan.plan);
  result.applied_optimizations =
      plan.AppliedToString() + ", segmented ×" + std::to_string(num_segments);
  result.rewrite_attempts = std::move(plan.attempts);
  result.exec_stats = agg_stats.stats;
  StampRuleCounters(&result);
  return result;
}

StatusOr<std::string> Engine::Explain(std::string_view query_text,
                                      std::string_view scheme_name,
                                      const SearchOptions& options) const {
  GRAFT_ASSIGN_OR_RETURN(mcalc::Query query, mcalc::ParseQuery(query_text));
  GRAFT_ASSIGN_OR_RETURN(const sa::ScoringScheme* scheme,
                         ResolveScheme(scheme_name));
  Optimizer optimizer(scheme, options.optimizer);
  GRAFT_ASSIGN_OR_RETURN(OptimizedPlan plan,
                         optimizer.Optimize(query, *index_));
  std::string out = "query: " + mcalc::ToMCalcString(query) + "\n";
  out += "scoring plan Φ: " + plan.phi->ToString() + "\n";
  out += "scheme: " + std::string(scheme->name()) + " (" +
         sa::DirectionName(scheme->properties().direction) + ")\n";
  out += "applied: " + plan.AppliedToString() + "\n";
  if (options.top_k > 0) {
    // Deterministic top-k strategy verdict (golden-snapshot friendly):
    // which top-k execution path SearchQuery would take, and why.
    out += "top-k strategy (k=" + std::to_string(options.top_k) + "): ";
    if (!options.allow_rank_processing) {
      out += "full ranking + truncate (rank processing disabled)\n";
    } else if (options.topk_strategy == TopKStrategy::kThreshold) {
      const std::string verdict =
          exec::ThresholdTopK::GateVerdict(query, *scheme);
      out += verdict.empty()
                 ? "threshold top-k (TA, forced)\n"
                 : "full ranking + truncate; TA " + verdict + "\n";
    } else if (options.topk_strategy == TopKStrategy::kNra) {
      const std::string verdict = exec::NraTopK::GateVerdict(query, *scheme);
      out += verdict.empty()
                 ? "NRA top-k (forced)\n"
                 : "full ranking + truncate; NRA " + verdict + "\n";
    } else if (exec::TopKRankEngine::Supports(query, *scheme)) {
      const std::string prune_verdict =
          options.allow_block_max_pruning
              ? exec::MaxScoreTopK::GateVerdict(query, *scheme, *index_,
                                                overlay_)
              : "blocked: disabled by request options";
      if (prune_verdict.empty()) {
        out += "block-max pruned top-k\n";
      } else {
        out += "threshold top-k; block-max prune " + prune_verdict + "\n";
      }
    } else {
      out += "full ranking + truncate (rank processing not licensed)\n";
    }
  }
  out += "rewrites:\n" + FormatRewriteAttempts(plan.attempts);
  if (plan.plan != nullptr) {
    const CostEstimate estimate = CostModel(index_).Estimate(*plan.plan);
    char line[96];
    std::snprintf(line, sizeof(line),
                  "cost estimate: docs=%.1f rows=%.1f cost=%.1f\n",
                  estimate.docs, estimate.rows, estimate.cost);
    out += line;
    out += ma::PlanToString(*plan.plan);
  }
  return out;
}

StatusOr<std::string> Engine::ExplainAnalyze(
    std::string_view query_text, std::string_view scheme_name,
    const SearchOptions& options) const {
  GRAFT_ASSIGN_OR_RETURN(std::string out,
                         Explain(query_text, scheme_name, options));

  // Execute under a local trace (chaining to any caller-supplied one
  // would double-count spans; EXPLAIN ANALYZE owns its trace).
  common::QueryTrace trace;
  SearchOptions opts = options;
  opts.trace = &trace;
  GRAFT_ASSIGN_OR_RETURN(SearchResult result,
                         Search(query_text, scheme_name, opts));

  out += "-- analyze --\n";
  out += "executed: " + result.applied_optimizations + "\n";
  out += "segments searched: " + std::to_string(result.segments_searched) +
         "\n";
  if (result.used_rank_processing) {
    out += "rank processing rewrites:\n" +
           FormatRewriteAttempts(result.rewrite_attempts);
  }
  out += "results: " + std::to_string(result.results.size()) + "\n";
  out += "measured operator work:\n" + FormatExecStats(result.exec_stats);
  out += "trace:\n" + trace.ToText();
  return out;
}

}  // namespace graft::core
