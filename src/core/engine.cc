#include "core/engine.h"

#include "ma/reference_evaluator.h"

namespace graft::core {

StatusOr<const sa::ScoringScheme*> Engine::ResolveScheme(
    std::string_view name) const {
  const sa::ScoringScheme* scheme =
      sa::SchemeRegistry::Global().Lookup(name);
  if (scheme == nullptr) {
    return Status::NotFound("unknown scoring scheme: " + std::string(name));
  }
  return scheme;
}

StatusOr<SearchResult> Engine::Search(std::string_view query_text,
                                      std::string_view scheme_name,
                                      const SearchOptions& options) const {
  GRAFT_ASSIGN_OR_RETURN(mcalc::Query query, mcalc::ParseQuery(query_text));
  GRAFT_ASSIGN_OR_RETURN(const sa::ScoringScheme* scheme,
                         ResolveScheme(scheme_name));
  return SearchQuery(query, *scheme, options);
}

StatusOr<SearchResult> Engine::SearchQuery(const mcalc::Query& query,
                                           const sa::ScoringScheme& scheme,
                                           const SearchOptions& options) const {
  SearchResult result;
  const sa::QueryContext query_ctx = MakeQueryContext(query);

  if (options.use_canonical_reference) {
    GRAFT_ASSIGN_OR_RETURN(CanonicalBuild canonical,
                           BuildCanonicalPlan(query, scheme));
    GRAFT_RETURN_IF_ERROR(ma::ResolvePlan(canonical.plan.get(), *index_));
    ma::ReferenceEvaluator evaluator(index_, &scheme, query_ctx, overlay_);
    GRAFT_ASSIGN_OR_RETURN(const ma::MatchTable table,
                           evaluator.Evaluate(*canonical.plan));
    GRAFT_ASSIGN_OR_RETURN(result.results, ma::ExtractRankedResults(table));
    result.plan_text = ma::PlanToString(*canonical.plan);
    result.applied_optimizations = "(canonical score-isolated plan)";
    if (options.top_k > 0 && result.results.size() > options.top_k) {
      result.results.resize(options.top_k);
    }
    return result;
  }

  // Top-k rank processing when the gate admits it.
  if (options.top_k > 0 && options.allow_rank_processing &&
      exec::TopKRankEngine::Supports(query, scheme)) {
    exec::TopKRankEngine rank_engine(index_, &scheme, overlay_);
    GRAFT_ASSIGN_OR_RETURN(result.results,
                           rank_engine.TopK(query, options.top_k));
    result.used_rank_processing = true;
    result.applied_optimizations = "rank-join/rank-union (top-k)";
    return result;
  }

  Optimizer optimizer(&scheme, options.optimizer);
  GRAFT_ASSIGN_OR_RETURN(OptimizedPlan plan,
                         optimizer.Optimize(query, *index_));
  exec::Executor executor(index_, &scheme, query_ctx, overlay_);
  GRAFT_ASSIGN_OR_RETURN(result.results, executor.ExecuteRanked(*plan.plan));
  result.plan_text = ma::PlanToString(*plan.plan);
  result.applied_optimizations = plan.AppliedToString();
  result.exec_stats = executor.stats();
  if (options.top_k > 0 && result.results.size() > options.top_k) {
    result.results.resize(options.top_k);
  }
  return result;
}

StatusOr<std::string> Engine::Explain(std::string_view query_text,
                                      std::string_view scheme_name,
                                      const SearchOptions& options) const {
  GRAFT_ASSIGN_OR_RETURN(mcalc::Query query, mcalc::ParseQuery(query_text));
  GRAFT_ASSIGN_OR_RETURN(const sa::ScoringScheme* scheme,
                         ResolveScheme(scheme_name));
  Optimizer optimizer(scheme, options.optimizer);
  GRAFT_ASSIGN_OR_RETURN(OptimizedPlan plan,
                         optimizer.Optimize(query, *index_));
  std::string out = "query: " + mcalc::ToMCalcString(query) + "\n";
  out += "scoring plan Φ: " + plan.phi->ToString() + "\n";
  out += "scheme: " + std::string(scheme->name()) + " (" +
         sa::DirectionName(scheme->properties().direction) + ")\n";
  out += "applied: " + plan.AppliedToString() + "\n";
  out += plan.plan == nullptr ? "" : ma::PlanToString(*plan.plan);
  return out;
}

}  // namespace graft::core
