#include "core/request.h"

#include <utility>

#include "common/failpoint.h"
#include "index/index_io.h"

namespace graft::core {

namespace {

// Covers the whole bundle-construction path (load + partition + engine):
// the hot-reload tests arm this to prove a failed reload degrades
// gracefully instead of taking the service down.
GRAFT_DEFINE_FAILPOINT(g_fp_load_bundle, "core.load_bundle");

}  // namespace

StatusOr<ResolvedRequest> ResolveRequest(const Engine& engine,
                                         const SearchRequestParams& params) {
  if (params.query.empty()) {
    return Status::InvalidArgument("query must not be empty");
  }
  ResolvedRequest resolved;
  GRAFT_ASSIGN_OR_RETURN(resolved.query, mcalc::ParseQuery(params.query));
  resolved.scheme = sa::SchemeRegistry::Global().Lookup(params.scheme);
  if (resolved.scheme == nullptr) {
    return Status::NotFound("unknown scoring scheme: " + params.scheme);
  }
  resolved.options.top_k = params.top_k;
  resolved.options.num_threads = params.num_threads;

  const size_t engine_segments =
      engine.segmented() == nullptr ? 1 : engine.segmented()->segment_count();
  if (params.segments == 1) {
    resolved.options.use_segmented = false;
  } else if (params.segments != 0 && params.segments != engine_segments) {
    return Status::InvalidArgument(
        "segments=" + std::to_string(params.segments) +
        " does not match the engine's partitioning (" +
        std::to_string(engine_segments) +
        " segments; pass 0 for the default or 1 for monolithic)");
  }
  return resolved;
}

StatusOr<size_t> ParseCount(std::string_view text, std::string_view what) {
  if (text.empty()) {
    return Status::InvalidArgument(std::string(what) + " must not be empty");
  }
  size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string(what) +
                                     " must be a non-negative integer, got '" +
                                     std::string(text) + "'");
    }
    const size_t digit = static_cast<size_t>(c - '0');
    if (value > (SIZE_MAX - digit) / 10) {
      return Status::OutOfRange(std::string(what) + " is too large: '" +
                                std::string(text) + "'");
    }
    value = value * 10 + digit;
  }
  return value;
}

namespace {

StatusOr<EngineBundle> FinishBundle(EngineBundle bundle, size_t segments,
                                    size_t pool_threads) {
  if (segments > 1) {
    GRAFT_ASSIGN_OR_RETURN(
        index::SegmentedIndex segmented,
        index::SegmentedIndex::BuildFromMonolithic(*bundle.index, segments));
    bundle.segmented =
        std::make_unique<index::SegmentedIndex>(std::move(segmented));
    bundle.engine = std::make_unique<Engine>(
        bundle.index.get(), bundle.segmented.get(), pool_threads);
  } else {
    bundle.engine = std::make_unique<Engine>(bundle.index.get());
  }
  return bundle;
}

}  // namespace

StatusOr<EngineBundle> LoadEngineBundle(const std::string& index_path,
                                        size_t segments, size_t pool_threads) {
  return LoadEngineBundle(index_path, segments, pool_threads,
                          BundleLoadOptions{});
}

StatusOr<EngineBundle> LoadEngineBundle(const std::string& index_path,
                                        size_t segments, size_t pool_threads,
                                        const BundleLoadOptions& load) {
  GRAFT_FAILPOINT(g_fp_load_bundle);
  EngineBundle bundle;
  if (load.mmap_index) {
    index::MappedLoadOptions mapped;
    mapped.cache = load.block_cache;
    mapped.private_cache_bytes = load.block_cache_bytes;
    GRAFT_ASSIGN_OR_RETURN(
        index::InvertedIndex loaded,
        index::LoadIndexMapped(index_path, std::move(mapped)));
    bundle.index = std::make_unique<index::InvertedIndex>(std::move(loaded));
  } else {
    GRAFT_ASSIGN_OR_RETURN(index::InvertedIndex loaded,
                           index::LoadIndex(index_path));
    bundle.index = std::make_unique<index::InvertedIndex>(std::move(loaded));
  }
  return FinishBundle(std::move(bundle), segments, pool_threads);
}

StatusOr<EngineBundle> MakeEngineBundle(index::InvertedIndex index,
                                        size_t segments, size_t pool_threads) {
  EngineBundle bundle;
  bundle.index = std::make_unique<index::InvertedIndex>(std::move(index));
  return FinishBundle(std::move(bundle), segments, pool_threads);
}

}  // namespace graft::core
