// The score-consistent optimizer (Section 5).
//
// Starting from the canonical score-isolated plan, the optimizer applies
// the rewrite catalog of Section 5.2, consulting the optimization gate
// (Table 1) against the selected scheme's declared properties (Table 2) so
// that only score-preserving rewrites fire. The same query therefore
// optimizes into very different plans under different schemes:
//
//   AnySum           pre-counted leaves + alternate elimination (δ_A),
//                    no grouping at all (Plan-8 flavour for constants);
//   SumBest/Lucene/  eager aggregation: per-keyword ⊕ pushed below the
//   JoinNorm/Event   joins with count bookkeeping (⊗ scaling);
//   MeanSum          eager counting with row-first scoring preserved;
//   BestSumMinDist   positional and row-first: only the always-valid
//                    rewrites (join reordering, selection pushing,
//                    zig-zag joins, sort elimination) apply.
//
// Every rewrite here is differential-tested against the canonical plan's
// reference evaluation (Definition 1) in tests/core/score_consistency_test.

#ifndef GRAFT_CORE_OPTIMIZER_H_
#define GRAFT_CORE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "core/canonical_plan.h"
#include "core/optimization_gate.h"
#include "core/rewrite_rules.h"
#include "index/inverted_index.h"
#include "ma/plan.h"
#include "mcalc/ast.h"
#include "sa/scoring_scheme.h"

namespace graft::core {

// OptimizerOptions (the per-rewrite toggles) lives in rewrite_rules.h next
// to the declarative rule catalog that binds each toggle to its rule.

// One catalog rewrite's outcome for this query + scheme: fired or not,
// and why — the gate verdict with the deciding Table-1/Table-2 property,
// an option toggle, or a structural reason (EXPLAIN's rewrite table).
struct RewriteAttempt {
  Optimization opt;
  bool fired = false;
  std::string verdict;
};

// "  ⊕ name: fired|skipped (verdict)" lines, one per attempt.
std::string FormatRewriteAttempts(const std::vector<RewriteAttempt>& attempts);

struct OptimizedPlan {
  ma::PlanNodePtr plan;  // resolved against the index
  PhiNodePtr phi;
  std::vector<Optimization> applied;
  // One entry per catalog optimization (kAllOptimizations order): the
  // complete rewrite-attempt record behind `applied`.
  std::vector<RewriteAttempt> attempts;

  std::string AppliedToString() const;
};

class Optimizer {
 public:
  Optimizer(const sa::ScoringScheme* scheme, OptimizerOptions options = {})
      : scheme_(scheme), options_(options) {}

  // Builds the optimized plan for `query`. The index supplies cost
  // estimates (posting lengths) and term resolution. When `trace` is
  // non-null, one point span per attempted rewrite is recorded.
  StatusOr<OptimizedPlan> Optimize(const mcalc::Query& query,
                                   const index::InvertedIndex& index,
                                   common::QueryTrace* trace = nullptr) const;

 private:
  const sa::ScoringScheme* scheme_;
  OptimizerOptions options_;
};

}  // namespace graft::core

#endif  // GRAFT_CORE_OPTIMIZER_H_
