// The §5 rewrite catalog as declarative, verifiable data.
//
// Each catalog entry is a RewriteRule: a match pattern and transform
// (human-readable), the SA properties (sa/properties.h) the rule needs to
// be score-consistent (Table 1), the optimizer option that toggles it, and
// a structural skip-reason callback for EXPLAIN's rewrite table. The
// optimization gate (optimization_gate.h) delegates to this registry, the
// optimizer iterates it to build the rewrite-attempt table, the
// differential fuzzer runs once per rule with only that rule enabled
// (GRAFT_FUZZ_RULE), and /metrics exports a fired counter per rule id.
//
// Adding a rule declaratively = appending a RewriteRule here; the fuzzer
// matrix and the EXPLAIN/metrics surfaces pick it up from the registry.

#ifndef GRAFT_CORE_REWRITE_RULES_H_
#define GRAFT_CORE_REWRITE_RULES_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/optimization_gate.h"
#include "sa/properties.h"

namespace graft::core {

// Per-rewrite toggles. All default on; the optimizer still only applies a
// rewrite when the gate validates it for the scheme. Benches toggle these
// to isolate individual optimizations (Figure 3).
struct OptimizerOptions {
  bool push_selections = true;
  bool reorder_joins = true;
  // Order join inputs with the cost model (estimated document counts)
  // instead of the paper's heuristic (positions-scanned ascending). The
  // default matches the paper; bench_join_order_ablation compares the two.
  bool cost_based_join_order = false;
  bool eliminate_sort = true;
  bool eager_aggregation = true;
  bool eager_counting = true;
  bool pre_counting = true;
  bool alternate_elimination = true;
};

// One scheme property a rule needs: the satisfied/violated wording that
// ExplainGate reports, and the predicate over the declared properties.
struct PropertyRequirement {
  std::string name;         // wording when satisfied ("⊕ commutes")
  std::string fail_reason;  // wording when violated ("⊕ not commutative")
  bool (*check)(const sa::SchemeProperties&) = nullptr;
};

// Where in the pipeline a rule applies.
enum class RuleStage {
  kPlan,       // applied by the Optimizer while rewriting the MA plan
  kExecution,  // licensed physical strategy chosen at execution (top-k)
};

// Structural facts about one optimization run, for skip-reason callbacks:
// why did a gate-admitted, option-enabled rule not fire on this query?
struct RuleQueryFacts {
  bool sort_eliminated = false;
  bool can_alt_elim = false;
  bool can_eager_agg = false;
  bool use_pre_count = false;
  bool no_free_leaves = false;
  bool has_disjunction = false;
  bool positional_scheme = false;
  bool row_first_scheme = false;
};

struct RewriteRule {
  Optimization opt;
  // Stable ASCII identifier: GRAFT_FUZZ_RULE value, /metrics label,
  // `graft_cli rules` output. Never reuse or rename.
  std::string id;
  std::string pattern;    // what the rule matches, human-readable
  std::string transform;  // what it rewrites to, human-readable
  RuleStage stage = RuleStage::kPlan;
  // Table-1 requirements in gate-check order; empty = always valid
  // (Section 5.2.4: scoring is decoupled from matching).
  std::vector<PropertyRequirement> requirements;
  // When set, replaces the ", "-joined requirement names as the licensed
  // reason (used when the canonical Table-1 wording orders the properties
  // differently from the check order).
  std::string licensed_reason;
  // The OptimizerOptions member that enables the rule; nullptr for rules
  // with no plan-stage toggle (zig-zag join, execution-stage strategies).
  bool OptimizerOptions::* toggle = nullptr;
  // Toggles that must also be on for this rule to be structurally
  // reachable (e.g. the counting rules only exist below an eliminated
  // sort); OnlyRuleOptions enables these alongside `toggle`.
  std::vector<bool OptimizerOptions::*> prerequisites;
  // EXPLAIN verdict when the rule was admitted and enabled but did not
  // fire for structural reasons; nullptr → "always applied".
  std::string (*skip_reason)(const OptimizerOptions& options,
                             const RuleQueryFacts& facts) = nullptr;
  // Appended after "gate ok: <reason>" for execution-stage rules in the
  // plan-path rewrite table (they never fire at plan time).
  std::string execution_note;

  // Table-1 decision logic for this rule: all requirements hold.
  bool Licensed(const sa::SchemeProperties& props) const;
  // The deciding requirement, human-readable (ExplainGate's reason).
  GateDecision Explain(const sa::SchemeProperties& props) const;
  bool Enabled(const OptimizerOptions& options) const;
};

// The catalog, in kAllOptimizations order (EXPLAIN's rewrite-table order).
class RewriteRuleRegistry {
 public:
  static const RewriteRuleRegistry& Global();

  const std::vector<RewriteRule>& All() const { return rules_; }
  const RewriteRule* Lookup(std::string_view id) const;
  const RewriteRule* Find(Optimization opt) const;

  // OptimizerOptions with every rewrite toggle off except `rule`'s (plus
  // its structural prerequisites) — the per-rule fuzzer configuration.
  // Execution-stage rules have no optimizer toggle: all-off options.
  OptimizerOptions OnlyRuleOptions(const RewriteRule& rule) const;
  OptimizerOptions AllRulesOff() const;

 private:
  RewriteRuleRegistry();
  std::vector<RewriteRule> rules_;
};

}  // namespace graft::core

#endif  // GRAFT_CORE_REWRITE_RULES_H_
