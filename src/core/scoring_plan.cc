#include "core/scoring_plan.h"

namespace graft::core {

namespace {

PhiNodePtr MakeVar(mcalc::VarId var) {
  auto node = std::make_unique<PhiNode>();
  node->kind = PhiNode::Kind::kVar;
  node->var = var;
  return node;
}

PhiNodePtr MakeBinary(PhiNode::Kind kind, PhiNodePtr left, PhiNodePtr right) {
  auto node = std::make_unique<PhiNode>();
  node->kind = kind;
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

// Returns null for subtrees erased by the Φ transformation (negations and
// dangling connectives).
PhiNodePtr Derive(const mcalc::Node& node) {
  switch (node.kind) {
    case mcalc::NodeKind::kKeyword:
      return MakeVar(node.var);
    case mcalc::NodeKind::kNot:
      return nullptr;  // "erase all negations"
    case mcalc::NodeKind::kConstrained:
      return Derive(*node.children[0]);  // "erase all non-HAS predicates"
    case mcalc::NodeKind::kAnd:
    case mcalc::NodeKind::kOr: {
      const PhiNode::Kind kind = node.kind == mcalc::NodeKind::kAnd
                                     ? PhiNode::Kind::kConj
                                     : PhiNode::Kind::kDisj;
      PhiNodePtr acc;
      for (const mcalc::NodePtr& child : node.children) {
        PhiNodePtr derived = Derive(*child);
        if (derived == nullptr) {
          continue;  // "erase dangling local connectives"
        }
        acc = acc == nullptr
                  ? std::move(derived)
                  : MakeBinary(kind, std::move(acc), std::move(derived));
      }
      return acc;
    }
  }
  return nullptr;
}

}  // namespace

PhiNodePtr PhiNode::Clone() const {
  auto copy = std::make_unique<PhiNode>();
  copy->kind = kind;
  copy->var = var;
  if (left != nullptr) copy->left = left->Clone();
  if (right != nullptr) copy->right = right->Clone();
  return copy;
}

std::string PhiNode::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return "p" + std::to_string(var);
    case Kind::kConj:
      return "(" + left->ToString() + " ⊘ " + right->ToString() + ")";
    case Kind::kDisj:
      return "(" + left->ToString() + " ⊚ " + right->ToString() + ")";
  }
  return "?";
}

StatusOr<PhiNodePtr> DeriveScoringPlan(const mcalc::Query& query) {
  if (query.root == nullptr) {
    return Status::InvalidArgument("query has no root");
  }
  PhiNodePtr phi = Derive(*query.root);
  if (phi == nullptr) {
    return Status::InvalidArgument(
        "query has no scorable keywords (all erased by Φ derivation)");
  }
  return phi;
}

ma::ScoreExprPtr PhiToScoreExpr(
    const PhiNode& phi,
    const std::function<ma::ScoreExprPtr(mcalc::VarId)>& leaf) {
  switch (phi.kind) {
    case PhiNode::Kind::kVar:
      return leaf(phi.var);
    case PhiNode::Kind::kConj:
      return ma::ScoreExpr::Conj(PhiToScoreExpr(*phi.left, leaf),
                                 PhiToScoreExpr(*phi.right, leaf));
    case PhiNode::Kind::kDisj:
      return ma::ScoreExpr::Disj(PhiToScoreExpr(*phi.left, leaf),
                                 PhiToScoreExpr(*phi.right, leaf));
  }
  return nullptr;
}

}  // namespace graft::core
