// Canonical score-isolated plans (Sections 2 and 4.3).
//
// The canonical plan is the optimizer's starting point and the *semantic
// definition* of the query's answers and scores (Definition 1 measures
// every optimized plan against it):
//
//   * the matching subplan uses a right-deep join tree in keyword order,
//     selections above the joins, and a sort above the selections;
//   * the scoring portion hosts α and Φ in π, ⊕ in γ_d, and ω in a final π,
//     arranged row-first or column-first per the scheme's directionality
//     (diagonal schemes default to column-first).

#ifndef GRAFT_CORE_CANONICAL_PLAN_H_
#define GRAFT_CORE_CANONICAL_PLAN_H_

#include "common/status.h"
#include "core/scoring_plan.h"
#include "ma/plan.h"
#include "mcalc/ast.h"
#include "sa/scoring_scheme.h"

namespace graft::core {

// The matching subplan only: joins/unions/anti-joins at the bottom, a
// single σ carrying every positional constraint above them, and τ on top.
// Produces the query's match table.
StatusOr<ma::PlanNodePtr> BuildMatchingSubplan(const mcalc::Query& query);

// As above but without the final τ (used by optimized plans once sort
// elimination applies) and, when `inline_selections` is true, with each
// constraint already placed at its natural scope instead of a top σ.
StatusOr<ma::PlanNodePtr> BuildMatchingSubplanNoSort(
    const mcalc::Query& query);

struct CanonicalBuild {
  ma::PlanNodePtr plan;   // complete score-isolated plan
  PhiNodePtr phi;         // the scoring plan it hosts
  sa::Direction direction_used = sa::Direction::kColumnFirst;
};

StatusOr<CanonicalBuild> BuildCanonicalPlan(const mcalc::Query& query,
                                            const sa::ScoringScheme& scheme);

// The QueryContext (ω inputs) for this query.
sa::QueryContext MakeQueryContext(const mcalc::Query& query);

}  // namespace graft::core

#endif  // GRAFT_CORE_CANONICAL_PLAN_H_
