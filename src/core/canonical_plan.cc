#include "core/canonical_plan.h"

namespace graft::core {

namespace {

// Translates the boolean structure into MA. Constraints in non-negated
// scope are collected into `top_constraints` (canonical plans place them in
// one σ above the joins); constraints under negation stay inline in the
// anti-join subplan (they are invisible at the top: their variables are
// quantified away).
StatusOr<ma::PlanNodePtr> TranslateBool(
    const mcalc::Node& node, bool collecting,
    std::vector<mcalc::PredicateCall>* top_constraints) {
  switch (node.kind) {
    case mcalc::NodeKind::kKeyword:
      return ma::MakeAtom(node.keyword, node.var);
    case mcalc::NodeKind::kAnd: {
      std::vector<const mcalc::Node*> positives;
      std::vector<const mcalc::Node*> negatives;
      for (const mcalc::NodePtr& child : node.children) {
        if (child->kind == mcalc::NodeKind::kNot) {
          negatives.push_back(child->children[0].get());
        } else {
          positives.push_back(child.get());
        }
      }
      if (positives.empty()) {
        return Status::InvalidArgument(
            "conjunction of only negated terms is unsafe (no positive "
            "keyword to range over)");
      }
      // Right-deep join tree in keyword order (canonical).
      ma::PlanNodePtr acc;
      for (auto it = positives.rbegin(); it != positives.rend(); ++it) {
        GRAFT_ASSIGN_OR_RETURN(
            ma::PlanNodePtr plan,
            TranslateBool(**it, collecting, top_constraints));
        acc = acc == nullptr
                  ? std::move(plan)
                  : ma::MakeJoin(std::move(plan), std::move(acc));
      }
      // Negated subtrees become anti-joins above the positive tree.
      for (const mcalc::Node* negative : negatives) {
        GRAFT_ASSIGN_OR_RETURN(
            ma::PlanNodePtr anti,
            TranslateBool(*negative, /*collecting=*/false, nullptr));
        acc = ma::MakeAntiJoin(std::move(acc), std::move(anti));
      }
      return acc;
    }
    case mcalc::NodeKind::kOr: {
      std::vector<ma::PlanNodePtr> branches;
      branches.reserve(node.children.size());
      for (const mcalc::NodePtr& child : node.children) {
        if (child->kind == mcalc::NodeKind::kNot) {
          return Status::InvalidArgument(
              "negation directly under disjunction is unsafe");
        }
        GRAFT_ASSIGN_OR_RETURN(
            ma::PlanNodePtr plan,
            TranslateBool(*child, collecting, top_constraints));
        branches.push_back(std::move(plan));
      }
      return ma::MakeOuterUnion(std::move(branches));
    }
    case mcalc::NodeKind::kNot:
      return Status::InvalidArgument(
          "negation is only supported as a conjunct (a AND NOT b)");
    case mcalc::NodeKind::kConstrained: {
      GRAFT_ASSIGN_OR_RETURN(
          ma::PlanNodePtr child,
          TranslateBool(*node.children[0], collecting, top_constraints));
      if (collecting) {
        for (const mcalc::PredicateCall& call : node.constraints) {
          top_constraints->push_back(call);
        }
        return child;
      }
      return ma::MakeSelect(std::move(child), node.constraints);
    }
  }
  return Status::Internal("unknown AST node kind");
}

StatusOr<ma::PlanNodePtr> BuildMatching(const mcalc::Query& query,
                                        bool with_sort) {
  GRAFT_RETURN_IF_ERROR(mcalc::ValidateQuery(query));
  std::vector<mcalc::PredicateCall> constraints;
  GRAFT_ASSIGN_OR_RETURN(
      ma::PlanNodePtr plan,
      TranslateBool(*query.root, /*collecting=*/true, &constraints));
  if (!constraints.empty()) {
    plan = ma::MakeSelect(std::move(plan), std::move(constraints));
  }
  if (with_sort) {
    plan = ma::MakeSort(std::move(plan));
  }
  return plan;
}

}  // namespace

StatusOr<ma::PlanNodePtr> BuildMatchingSubplan(const mcalc::Query& query) {
  return BuildMatching(query, /*with_sort=*/true);
}

StatusOr<ma::PlanNodePtr> BuildMatchingSubplanNoSort(
    const mcalc::Query& query) {
  return BuildMatching(query, /*with_sort=*/false);
}

sa::QueryContext MakeQueryContext(const mcalc::Query& query) {
  sa::QueryContext ctx;
  ctx.num_columns = static_cast<uint32_t>(
      mcalc::FreeVariables(*query.root).size());
  return ctx;
}

StatusOr<CanonicalBuild> BuildCanonicalPlan(const mcalc::Query& query,
                                            const sa::ScoringScheme& scheme) {
  CanonicalBuild build;
  GRAFT_ASSIGN_OR_RETURN(build.phi, DeriveScoringPlan(query));
  GRAFT_ASSIGN_OR_RETURN(ma::PlanNodePtr matching,
                         BuildMatchingSubplan(query));

  const std::vector<mcalc::VarId> vars =
      mcalc::FreeVariables(*query.root);
  const sa::Direction direction = scheme.properties().direction;
  build.direction_used = direction == sa::Direction::kRowFirst
                             ? sa::Direction::kRowFirst
                             : sa::Direction::kColumnFirst;

  if (build.direction_used == sa::Direction::kRowFirst) {
    // Plan 6: π scores each row via α and Φ, γ_d aggregates rows with ⊕,
    // π applies ω.
    std::vector<ma::ProjectItem> row_score;
    row_score.push_back(ma::ProjectItem::Scored(
        "s", PhiToScoreExpr(*build.phi, [](mcalc::VarId var) {
          return ma::ScoreExpr::InitPos("p" + std::to_string(var));
        })));
    ma::PlanNodePtr plan =
        ma::MakeProject(std::move(matching), std::move(row_score));

    ma::GroupSpec group;
    group.score_aggs.push_back({"s", "s", ""});
    plan = ma::MakeGroup(std::move(plan), std::move(group));

    std::vector<ma::ProjectItem> final_items;
    final_items.push_back(ma::ProjectItem::Scored(
        "score", ma::ScoreExpr::ColRef("s"), /*finalize=*/true));
    build.plan = ma::MakeProject(std::move(plan), std::move(final_items));
  } else {
    // Plan 5: π applies α per cell, γ_d aggregates each column with ⊕,
    // π evaluates Φ over the column scores and applies ω.
    std::vector<ma::ProjectItem> alpha_items;
    for (const mcalc::VarId var : vars) {
      alpha_items.push_back(ma::ProjectItem::Scored(
          "s" + std::to_string(var),
          ma::ScoreExpr::InitPos("p" + std::to_string(var))));
    }
    ma::PlanNodePtr plan =
        ma::MakeProject(std::move(matching), std::move(alpha_items));

    ma::GroupSpec group;
    for (const mcalc::VarId var : vars) {
      const std::string name = "s" + std::to_string(var);
      group.score_aggs.push_back({name, name, ""});
    }
    plan = ma::MakeGroup(std::move(plan), std::move(group));

    std::vector<ma::ProjectItem> final_items;
    final_items.push_back(ma::ProjectItem::Scored(
        "score", PhiToScoreExpr(*build.phi, [](mcalc::VarId var) {
          return ma::ScoreExpr::ColRef("s" + std::to_string(var));
        }),
        /*finalize=*/true));
    build.plan = ma::MakeProject(std::move(plan), std::move(final_items));
  }
  return build;
}

}  // namespace graft::core
