#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

namespace graft::core {

CostEstimate CostModel::Estimate(const ma::PlanNode& node) const {
  const double collection =
      std::max<double>(1.0, static_cast<double>(index_->doc_count()));

  switch (node.kind) {
    case ma::OpKind::kAtom: {
      const TermId term = index_->LookupTerm(node.keyword);
      CostEstimate estimate;
      if (term == kInvalidTerm) {
        return estimate;
      }
      estimate.docs = static_cast<double>(index_->DocFreq(term));
      estimate.rows = static_cast<double>(index_->CollectionFreq(term));
      estimate.cost = estimate.rows + estimate.docs;  // decode + visit
      return estimate;
    }
    case ma::OpKind::kPreCountAtom: {
      const TermId term = index_->LookupTerm(node.keyword);
      CostEstimate estimate;
      if (term == kInvalidTerm) {
        return estimate;
      }
      estimate.docs = static_cast<double>(index_->DocFreq(term));
      estimate.rows = estimate.docs;
      estimate.cost = estimate.docs;  // no position decode
      return estimate;
    }
    case ma::OpKind::kJoin: {
      const CostEstimate left = Estimate(*node.children[0]);
      const CostEstimate right = Estimate(*node.children[1]);
      CostEstimate estimate;
      estimate.docs = left.docs * right.docs / collection;
      const double left_rows_per_doc =
          left.docs > 0 ? left.rows / left.docs : 0.0;
      const double right_rows_per_doc =
          right.docs > 0 ? right.rows / right.docs : 0.0;
      estimate.rows =
          estimate.docs * left_rows_per_doc * right_rows_per_doc;
      for (size_t i = 0; i < node.predicates.size(); ++i) {
        estimate.rows *= kPredicateSelectivity;
      }
      estimate.cost = left.cost + right.cost + estimate.rows;
      return estimate;
    }
    case ma::OpKind::kOuterUnion: {
      CostEstimate estimate;
      for (const ma::PlanNodePtr& child : node.children) {
        const CostEstimate branch = Estimate(*child);
        estimate.docs += branch.docs;
        estimate.rows += branch.rows;
        estimate.cost += branch.cost;
      }
      estimate.docs = std::min(estimate.docs, collection);
      estimate.cost += estimate.rows;
      return estimate;
    }
    case ma::OpKind::kSelect: {
      CostEstimate estimate = Estimate(*node.children[0]);
      estimate.cost += estimate.rows;
      for (size_t i = 0; i < node.predicates.size(); ++i) {
        estimate.rows *= kPredicateSelectivity;
      }
      // Selection may empty out some documents entirely.
      estimate.docs = std::min(estimate.docs, std::max(estimate.rows, 1.0));
      return estimate;
    }
    case ma::OpKind::kAntiJoin: {
      const CostEstimate left = Estimate(*node.children[0]);
      const CostEstimate right = Estimate(*node.children[1]);
      CostEstimate estimate = left;
      const double keep =
          std::max(0.0, 1.0 - right.docs / collection);
      estimate.docs *= keep;
      estimate.rows *= keep;
      estimate.cost = left.cost + right.docs + estimate.rows;
      return estimate;
    }
    case ma::OpKind::kProject: {
      CostEstimate estimate = Estimate(*node.children[0]);
      estimate.cost += estimate.rows;
      return estimate;
    }
    case ma::OpKind::kGroup: {
      CostEstimate estimate = Estimate(*node.children[0]);
      estimate.cost += estimate.rows;
      estimate.rows = estimate.docs;  // one group per document (plus keys)
      return estimate;
    }
    case ma::OpKind::kAltElim: {
      CostEstimate estimate = Estimate(*node.children[0]);
      // Emits one row per doc and signals the child to skip the rest: the
      // child's row cost collapses toward its doc count.
      estimate.cost = estimate.docs * 2.0;
      estimate.rows = estimate.docs;
      return estimate;
    }
    case ma::OpKind::kSort: {
      CostEstimate estimate = Estimate(*node.children[0]);
      const double rows = std::max(estimate.rows, 1.0);
      estimate.cost += rows * std::log2(rows + 1.0);
      return estimate;
    }
  }
  return CostEstimate();
}

}  // namespace graft::core
