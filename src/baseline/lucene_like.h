// A from-scratch "Lucene-like" rigid engine: the Figure-4 comparison
// baseline.
//
// Mirrors the architecture of the 2010-era Lucene the paper compares
// against: a rigid plan generator (one hard-coded plan shape per query
// class), document-at-a-time evaluation with skip-based postings
// intersection, and a single built-in scoring function (Lucene classic:
// sqrt(tf)·idf²/√|d| per term with a coordination factor) fused directly
// into the match loop — no algebra, no plug-in scoring, no generic
// operators.
//
// Query support matches the paper's description of Lucene's expressive
// power: conjunctions of terms, term-disjunction groups, PHRASE, and
// PROXIMITY. WINDOW / DISTANCE / ORDER / plug-in predicates are rejected
// (which is why the paper's Q8 and Q10 are n/a for this engine).
//
// On supported queries its scores coincide with GRAFT running the Lucene
// scheme, which the integration tests assert.

#ifndef GRAFT_BASELINE_LUCENE_LIKE_H_
#define GRAFT_BASELINE_LUCENE_LIKE_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "index/inverted_index.h"
#include "ma/match_table.h"
#include "mcalc/ast.h"

namespace graft::baseline {

class LuceneLikeEngine {
 public:
  explicit LuceneLikeEngine(const index::InvertedIndex* index)
      : index_(index) {}

  // True when the query uses only the constructs Lucene supports.
  static bool SupportsQuery(const mcalc::Query& query);

  StatusOr<std::vector<ma::ScoredDoc>> Search(std::string_view query_text,
                                              size_t top_k = 0) const;
  StatusOr<std::vector<ma::ScoredDoc>> SearchQuery(const mcalc::Query& query,
                                                   size_t top_k = 0) const;

 private:
  const index::InvertedIndex* index_;
};

}  // namespace graft::baseline

#endif  // GRAFT_BASELINE_LUCENE_LIKE_H_
