// A from-scratch "Terrier-like" rigid engine: the second Figure-4
// baseline.
//
// Mirrors Terrier's evaluation style: term-at-a-time scoring into an
// accumulator array (one pass over each query term's postings, adding the
// hard-coded BM25 weight), with a final pass that applies boolean /
// positional filters (phrase, proximity) and ranks the accumulators. Like
// Terrier, scoring is AnySum-shaped: the document score is the sum of
// per-term weights, independent of how many matches the document has.
//
// Supports the same query classes as the Lucene-like engine (no WINDOW /
// DISTANCE / ORDER / plug-ins).

#ifndef GRAFT_BASELINE_TERRIER_LIKE_H_
#define GRAFT_BASELINE_TERRIER_LIKE_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "index/inverted_index.h"
#include "ma/match_table.h"
#include "mcalc/ast.h"

namespace graft::baseline {

class TerrierLikeEngine {
 public:
  explicit TerrierLikeEngine(const index::InvertedIndex* index)
      : index_(index) {}

  static bool SupportsQuery(const mcalc::Query& query);

  StatusOr<std::vector<ma::ScoredDoc>> Search(std::string_view query_text,
                                              size_t top_k = 0) const;
  StatusOr<std::vector<ma::ScoredDoc>> SearchQuery(const mcalc::Query& query,
                                                   size_t top_k = 0) const;

 private:
  const index::InvertedIndex* index_;
};

}  // namespace graft::baseline

#endif  // GRAFT_BASELINE_TERRIER_LIKE_H_
