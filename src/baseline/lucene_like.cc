#include "baseline/lucene_like.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "index/posting_list.h"
#include "mcalc/parser.h"

namespace graft::baseline {

namespace {

struct Clause {
  enum class Kind { kTerm, kPhrase, kProximity, kDisjunction };
  Kind kind = Kind::kTerm;
  std::vector<std::string> words;
  int64_t slop = 0;
};

// Recognizes the query classes Lucene supports; fills `clauses`.
bool CompileQuery(const mcalc::Query& query, std::vector<Clause>* clauses) {
  const auto compile_child = [clauses](const mcalc::Node& node) -> bool {
    switch (node.kind) {
      case mcalc::NodeKind::kKeyword: {
        Clause clause;
        clause.kind = Clause::Kind::kTerm;
        clause.words.push_back(node.keyword);
        clauses->push_back(std::move(clause));
        return true;
      }
      case mcalc::NodeKind::kOr: {
        Clause clause;
        clause.kind = Clause::Kind::kDisjunction;
        for (const mcalc::NodePtr& branch : node.children) {
          if (branch->kind != mcalc::NodeKind::kKeyword) {
            return false;
          }
          clause.words.push_back(branch->keyword);
        }
        clauses->push_back(std::move(clause));
        return true;
      }
      case mcalc::NodeKind::kConstrained: {
        const mcalc::Node& inner = *node.children[0];
        std::vector<std::string> words;
        std::vector<mcalc::VarId> vars;
        if (inner.kind == mcalc::NodeKind::kKeyword) {
          words.push_back(inner.keyword);
          vars.push_back(inner.var);
        } else if (inner.kind == mcalc::NodeKind::kAnd) {
          for (const mcalc::NodePtr& kw : inner.children) {
            if (kw->kind != mcalc::NodeKind::kKeyword) {
              return false;
            }
            words.push_back(kw->keyword);
            vars.push_back(kw->var);
          }
        } else {
          return false;
        }
        // PHRASE: a DISTANCE(v_i, v_{i+1}, 1) chain. PROXIMITY: one call.
        bool is_phrase = node.constraints.size() == words.size() - 1;
        for (size_t i = 0; is_phrase && i < node.constraints.size(); ++i) {
          const mcalc::PredicateCall& call = node.constraints[i];
          is_phrase = call.name == "DISTANCE" && call.params.size() == 1 &&
                      call.params[0] == 1 && call.vars.size() == 2 &&
                      call.vars[0] == vars[i] && call.vars[1] == vars[i + 1];
        }
        if (is_phrase && words.size() >= 2) {
          Clause clause;
          clause.kind = Clause::Kind::kPhrase;
          clause.words = std::move(words);
          clauses->push_back(std::move(clause));
          return true;
        }
        if (node.constraints.size() == 1 &&
            node.constraints[0].name == "PROXIMITY") {
          Clause clause;
          clause.kind = Clause::Kind::kProximity;
          clause.words = std::move(words);
          clause.slop = node.constraints[0].params[0];
          clauses->push_back(std::move(clause));
          return true;
        }
        return false;
      }
      default:
        return false;
    }
  };

  const mcalc::Node& root = *query.root;
  if (root.kind == mcalc::NodeKind::kAnd) {
    for (const mcalc::NodePtr& child : root.children) {
      if (!compile_child(*child)) return false;
    }
    return true;
  }
  return compile_child(root);
}

// Lucene-classic term weight. Must stay in sync with sa::LuceneScheme.
double Weight(const index::InvertedIndex& index, TermId term, DocId doc,
              uint32_t tf) {
  if (tf == 0) return 0.0;
  const double idf =
      1.0 + std::log(static_cast<double>(index.doc_count()) /
                     (static_cast<double>(index.DocFreq(term)) + 1.0));
  return std::sqrt(static_cast<double>(tf)) * idf * idf /
         std::sqrt(static_cast<double>(index.doc_length(doc)));
}

// Exists o ∈ lists[0] with o+i ∈ lists[i] for all i.
bool PhraseMatches(const std::vector<std::span<const Offset>>& lists) {
  for (const Offset start : lists[0]) {
    bool ok = true;
    for (size_t i = 1; i < lists.size(); ++i) {
      if (!std::binary_search(lists[i].begin(), lists[i].end(),
                              start + static_cast<Offset>(i))) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

// Minimal window containing one position from each list; true iff its
// span is <= slop (matches GRAFT's variadic PROXIMITY semantics).
bool ProximityMatches(const std::vector<std::span<const Offset>>& lists,
                      int64_t slop) {
  struct Tagged {
    Offset offset;
    size_t list;
  };
  std::vector<Tagged> all;
  for (size_t i = 0; i < lists.size(); ++i) {
    for (const Offset offset : lists[i]) {
      all.push_back(Tagged{offset, i});
    }
  }
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    return a.offset < b.offset;
  });
  std::vector<size_t> in_window(lists.size(), 0);
  size_t covered = 0;
  size_t left = 0;
  for (size_t right = 0; right < all.size(); ++right) {
    if (in_window[all[right].list]++ == 0) ++covered;
    while (covered == lists.size()) {
      if (static_cast<int64_t>(all[right].offset) -
              static_cast<int64_t>(all[left].offset) <=
          slop) {
        return true;
      }
      if (--in_window[all[left].list] == 0) --covered;
      ++left;
    }
  }
  return false;
}

}  // namespace

bool LuceneLikeEngine::SupportsQuery(const mcalc::Query& query) {
  std::vector<Clause> clauses;
  return CompileQuery(query, &clauses);
}

StatusOr<std::vector<ma::ScoredDoc>> LuceneLikeEngine::Search(
    std::string_view query_text, size_t top_k) const {
  GRAFT_ASSIGN_OR_RETURN(mcalc::Query query, mcalc::ParseQuery(query_text));
  return SearchQuery(query, top_k);
}

StatusOr<std::vector<ma::ScoredDoc>> LuceneLikeEngine::SearchQuery(
    const mcalc::Query& query, size_t top_k) const {
  std::vector<Clause> clauses;
  if (!CompileQuery(query, &clauses)) {
    return Status::Unimplemented(
        "query uses constructs beyond terms/phrases/proximity/term "
        "disjunctions (e.g. WINDOW); Lucene-like engine does not support "
        "it");
  }

  // Cursor per term occurrence. Required = every term of a non-disjunction
  // clause (conjunctive semantics); optional = disjunction members.
  struct TermSlot {
    TermId term = kInvalidTerm;
    std::unique_ptr<index::PostingCursor> cursor;
    size_t clause = 0;
  };
  std::vector<TermSlot> required;
  std::vector<TermSlot> optional;
  size_t total_occurrences = 0;
  for (size_t c = 0; c < clauses.size(); ++c) {
    for (const std::string& word : clauses[c].words) {
      ++total_occurrences;
      TermSlot slot;
      slot.term = index_->LookupTerm(word);
      slot.clause = c;
      if (slot.term != kInvalidTerm) {
        slot.cursor = std::make_unique<index::PostingCursor>(
            &index_->postings(slot.term));
      }
      if (clauses[c].kind == Clause::Kind::kDisjunction) {
        optional.push_back(std::move(slot));
      } else {
        if (slot.term == kInvalidTerm) {
          return std::vector<ma::ScoredDoc>{};  // required term absent
        }
        required.push_back(std::move(slot));
      }
    }
  }

  const bool has_disjunction = std::any_of(
      clauses.begin(), clauses.end(), [](const Clause& clause) {
        return clause.kind == Clause::Kind::kDisjunction;
      });

  std::vector<ma::ScoredDoc> results;

  const auto score_doc = [&](DocId doc) {
    // Positional verification per clause.
    std::map<size_t, std::vector<std::span<const Offset>>> clause_lists;
    for (TermSlot& slot : required) {
      const Clause& clause = clauses[slot.clause];
      if (clause.kind != Clause::Kind::kTerm) {
        clause_lists[slot.clause].push_back(slot.cursor->offsets());
      }
    }
    for (const auto& [clause_idx, lists] : clause_lists) {
      const Clause& clause = clauses[clause_idx];
      if (clause.kind == Clause::Kind::kPhrase) {
        if (!PhraseMatches(lists)) return;
      } else if (clause.kind == Clause::Kind::kProximity) {
        if (!ProximityMatches(lists, clause.slop)) return;
      }
    }
    // Disjunction clauses: at least one member present.
    size_t matched = required.size();
    std::vector<bool> clause_satisfied(clauses.size(), false);
    double optional_score = 0.0;
    for (TermSlot& slot : optional) {
      if (slot.cursor == nullptr) continue;
      slot.cursor->SkipTo(doc);
      if (!slot.cursor->AtEnd() && slot.cursor->doc() == doc) {
        clause_satisfied[slot.clause] = true;
        ++matched;
        optional_score +=
            Weight(*index_, slot.term, doc, slot.cursor->tf());
      }
    }
    for (size_t c = 0; c < clauses.size(); ++c) {
      if (clauses[c].kind == Clause::Kind::kDisjunction &&
          !clause_satisfied[c]) {
        return;  // conjunctive semantics: the group must match
      }
    }
    double score = optional_score;
    for (TermSlot& slot : required) {
      score += Weight(*index_, slot.term, doc, slot.cursor->tf());
    }
    const double coord =
        static_cast<double>(matched) /
        static_cast<double>(std::max<size_t>(1, total_occurrences));
    results.push_back(ma::ScoredDoc{doc, score * coord});
  };

  if (!required.empty()) {
    // Document-at-a-time leapfrog intersection over required terms (the
    // skip-pointer technique).
    DocId target = 0;
    while (target != kInvalidDoc) {
      DocId doc = target;
      bool at_end = false;
      bool realigned = true;
      while (realigned) {
        realigned = false;
        for (TermSlot& slot : required) {
          slot.cursor->SkipTo(doc);
          if (slot.cursor->AtEnd()) {
            at_end = true;
            break;
          }
          if (slot.cursor->doc() > doc) {
            doc = slot.cursor->doc();
            realigned = true;
            break;
          }
        }
        if (at_end) break;
      }
      if (at_end) break;
      score_doc(doc);
      target = doc + 1;
    }
  } else if (has_disjunction) {
    // Pure disjunction: k-way doc merge over the optional cursors.
    while (true) {
      DocId doc = kInvalidDoc;
      for (TermSlot& slot : optional) {
        if (slot.cursor != nullptr && !slot.cursor->AtEnd()) {
          doc = std::min(doc, slot.cursor->doc());
        }
      }
      if (doc == kInvalidDoc) break;
      score_doc(doc);
      for (TermSlot& slot : optional) {
        if (slot.cursor != nullptr && !slot.cursor->AtEnd() &&
            slot.cursor->doc() == doc) {
          slot.cursor->Next();
        }
      }
    }
  }

  std::sort(results.begin(), results.end(),
            [](const ma::ScoredDoc& a, const ma::ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (top_k > 0 && results.size() > top_k) {
    results.resize(top_k);
  }
  return results;
}

}  // namespace graft::baseline
