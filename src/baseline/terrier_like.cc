#include "baseline/terrier_like.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "index/posting_list.h"
#include "mcalc/parser.h"
#include "sa/scoring_scheme.h"
#include "sa/weighting.h"

namespace graft::baseline {

namespace {

// Query compilation shared shape with the Lucene-like engine: conjunction
// of terms / phrases / proximity groups / term disjunctions.
struct Group {
  enum class Kind { kTerm, kPhrase, kProximity, kDisjunction };
  Kind kind = Kind::kTerm;
  std::vector<std::string> words;
  int64_t slop = 0;
};

bool CompileQuery(const mcalc::Query& query, std::vector<Group>* groups) {
  const auto compile_child = [groups](const mcalc::Node& node) -> bool {
    switch (node.kind) {
      case mcalc::NodeKind::kKeyword: {
        groups->push_back(Group{Group::Kind::kTerm, {node.keyword}, 0});
        return true;
      }
      case mcalc::NodeKind::kOr: {
        Group group;
        group.kind = Group::Kind::kDisjunction;
        for (const mcalc::NodePtr& branch : node.children) {
          if (branch->kind != mcalc::NodeKind::kKeyword) return false;
          group.words.push_back(branch->keyword);
        }
        groups->push_back(std::move(group));
        return true;
      }
      case mcalc::NodeKind::kConstrained: {
        const mcalc::Node& inner = *node.children[0];
        std::vector<std::string> words;
        if (inner.kind == mcalc::NodeKind::kKeyword) {
          words.push_back(inner.keyword);
        } else if (inner.kind == mcalc::NodeKind::kAnd) {
          for (const mcalc::NodePtr& kw : inner.children) {
            if (kw->kind != mcalc::NodeKind::kKeyword) return false;
            words.push_back(kw->keyword);
          }
        } else {
          return false;
        }
        bool all_distance_one = !node.constraints.empty();
        for (const mcalc::PredicateCall& call : node.constraints) {
          if (call.name != "DISTANCE" || call.params.size() != 1 ||
              call.params[0] != 1) {
            all_distance_one = false;
            break;
          }
        }
        if (all_distance_one) {
          groups->push_back(
              Group{Group::Kind::kPhrase, std::move(words), 0});
          return true;
        }
        if (node.constraints.size() == 1 &&
            node.constraints[0].name == "PROXIMITY") {
          groups->push_back(Group{Group::Kind::kProximity, std::move(words),
                                  node.constraints[0].params[0]});
          return true;
        }
        return false;
      }
      default:
        return false;
    }
  };
  const mcalc::Node& root = *query.root;
  if (root.kind == mcalc::NodeKind::kAnd) {
    for (const mcalc::NodePtr& child : root.children) {
      if (!compile_child(*child)) return false;
    }
    return true;
  }
  return compile_child(root);
}

bool PhraseInDoc(const index::InvertedIndex& index,
                 const std::vector<TermId>& terms, DocId doc) {
  std::vector<std::vector<Offset>> lists;
  for (const TermId term : terms) {
    const index::PostingList& postings = index.postings(term);
    const size_t pos = postings.GallopTo(0, doc);
    if (pos >= postings.doc_count() || postings.doc_at(pos) != doc) {
      return false;
    }
    lists.push_back(postings.OffsetsAt(pos));
  }
  for (const Offset start : lists[0]) {
    bool ok = true;
    for (size_t i = 1; i < lists.size(); ++i) {
      if (!std::binary_search(lists[i].begin(), lists[i].end(),
                              start + static_cast<Offset>(i))) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

bool ProximityInDoc(const index::InvertedIndex& index,
                    const std::vector<TermId>& terms, DocId doc,
                    int64_t slop) {
  struct Tagged {
    Offset offset;
    size_t list;
  };
  std::vector<Tagged> all;
  for (size_t i = 0; i < terms.size(); ++i) {
    const index::PostingList& postings = index.postings(terms[i]);
    const size_t pos = postings.GallopTo(0, doc);
    if (pos >= postings.doc_count() || postings.doc_at(pos) != doc) {
      return false;
    }
    for (const Offset offset : postings.OffsetsAt(pos)) {
      all.push_back(Tagged{offset, i});
    }
  }
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    return a.offset < b.offset;
  });
  std::vector<size_t> in_window(terms.size(), 0);
  size_t covered = 0;
  size_t left = 0;
  for (size_t right = 0; right < all.size(); ++right) {
    if (in_window[all[right].list]++ == 0) ++covered;
    while (covered == terms.size()) {
      if (static_cast<int64_t>(all[right].offset) -
              static_cast<int64_t>(all[left].offset) <=
          slop) {
        return true;
      }
      if (--in_window[all[left].list] == 0) --covered;
      ++left;
    }
  }
  return false;
}

}  // namespace

bool TerrierLikeEngine::SupportsQuery(const mcalc::Query& query) {
  std::vector<Group> groups;
  return CompileQuery(query, &groups);
}

StatusOr<std::vector<ma::ScoredDoc>> TerrierLikeEngine::Search(
    std::string_view query_text, size_t top_k) const {
  GRAFT_ASSIGN_OR_RETURN(mcalc::Query query, mcalc::ParseQuery(query_text));
  return SearchQuery(query, top_k);
}

StatusOr<std::vector<ma::ScoredDoc>> TerrierLikeEngine::SearchQuery(
    const mcalc::Query& query, size_t top_k) const {
  std::vector<Group> groups;
  if (!CompileQuery(query, &groups)) {
    return Status::Unimplemented(
        "query uses constructs beyond terms/phrases/proximity/term "
        "disjunctions; Terrier-like engine does not support it");
  }

  // Resolve terms; a missing required term empties the result (conjunctive
  // semantics of the paper's queries).
  struct ResolvedGroup {
    Group::Kind kind;
    std::vector<TermId> terms;
    int64_t slop;
  };
  std::vector<ResolvedGroup> resolved;
  for (const Group& group : groups) {
    ResolvedGroup r;
    r.kind = group.kind;
    r.slop = group.slop;
    for (const std::string& word : group.words) {
      const TermId term = index_->LookupTerm(word);
      if (term == kInvalidTerm &&
          group.kind != Group::Kind::kDisjunction) {
        return std::vector<ma::ScoredDoc>{};
      }
      if (term != kInvalidTerm) {
        r.terms.push_back(term);
      }
    }
    resolved.push_back(std::move(r));
  }

  // Term-at-a-time accumulation: one pass per term, adding BM25 into the
  // document's accumulator and counting which groups the doc satisfied
  // (bit per group; positional groups verified in the final pass).
  struct Accumulator {
    double score = 0.0;
    uint32_t groups_hit = 0;
  };
  std::unordered_map<DocId, Accumulator> accumulators;
  sa::DocContext doc_ctx;
  doc_ctx.collection_size = index_->doc_count();
  doc_ctx.avg_doc_length = index_->average_doc_length();

  for (size_t g = 0; g < resolved.size(); ++g) {
    for (const TermId term : resolved[g].terms) {
      const index::PostingList& list = index_->postings(term);
      sa::ColumnContext col;
      col.term = term;
      col.doc_freq = index_->DocFreq(term);
      for (size_t p = 0; p < list.doc_count(); ++p) {
        const DocId doc = list.doc_at(p);
        doc_ctx.doc = doc;
        doc_ctx.length = index_->doc_length(doc);
        col.tf_in_doc = list.tf_at(p);
        Accumulator& acc = accumulators[doc];
        acc.score += sa::Bm25(doc_ctx, col);
        acc.groups_hit |= 1u << g;
      }
    }
  }

  // Final pass: boolean semantics (every group satisfied) + positional
  // verification, then rank.
  const uint32_t all_groups =
      resolved.size() >= 32 ? ~0u : (1u << resolved.size()) - 1;
  std::vector<ma::ScoredDoc> results;
  for (const auto& [doc, acc] : accumulators) {
    if ((acc.groups_hit & all_groups) != all_groups) {
      continue;
    }
    bool ok = true;
    for (const ResolvedGroup& group : resolved) {
      if (group.kind == Group::Kind::kPhrase) {
        ok = PhraseInDoc(*index_, group.terms, doc);
      } else if (group.kind == Group::Kind::kProximity) {
        ok = ProximityInDoc(*index_, group.terms, doc, group.slop);
      }
      if (!ok) break;
    }
    if (ok) {
      results.push_back(ma::ScoredDoc{doc, acc.score});
    }
  }

  std::sort(results.begin(), results.end(),
            [](const ma::ScoredDoc& a, const ma::ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (top_k > 0 && results.size() > top_k) {
    results.resize(top_k);
  }
  return results;
}

}  // namespace graft::baseline
