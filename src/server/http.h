// Minimal dependency-free HTTP/1.1 plumbing for the embedded search
// service: a blocking TCP listener, a hardened request-head parser, and a
// tiny blocking client used by tests and the load generator.
//
// Scope is deliberately narrow — exactly what a GET-only JSON service
// needs:
//   * requests: method + target + version, headers, no body support
//     (Content-Length > 0 is rejected with 413/400 semantics upstream);
//   * responses: status line + fixed headers + Content-Length body,
//     Connection: close (one request per connection keeps the admission
//     accounting trivially correct);
//   * every malformed input maps to a Status — the parser never crashes,
//     never allocates unboundedly (request heads are capped), and never
//     trusts lengths from the wire.

#ifndef GRAFT_SERVER_HTTP_H_
#define GRAFT_SERVER_HTTP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace graft::server {

// Largest request head (request line + headers + blank line) the server
// will buffer before answering 431-style with InvalidArgument.
inline constexpr size_t kMaxRequestHeadBytes = 16 * 1024;

struct HttpRequest {
  std::string method;                          // "GET"
  std::string path;                            // decoded, e.g. "/search"
  std::map<std::string, std::string> params;   // decoded query parameters
  std::map<std::string, std::string> headers;  // keys lower-cased
};

// Percent-decodes a URL component ('+' becomes space). Invalid escapes are
// an error, not a pass-through: a client that sends "%zz" gets a 400.
StatusOr<std::string> UrlDecode(std::string_view text);

// Parses everything up to (not including) the blank line that ends the
// request head. Enforces: a well-formed request line, HTTP/1.0 or /1.1,
// CRLF or LF line endings, "name: value" headers. Query parameters are
// split on '&' and '=' and percent-decoded.
StatusOr<HttpRequest> ParseRequestHead(std::string_view head);

// Serializes a response with Content-Length and Connection: close.
// `extra_headers`, if non-empty, is spliced verbatim into the header block
// and must be CRLF-terminated (e.g. "Retry-After: 1\r\n").
std::string SerializeResponse(int status_code, std::string_view content_type,
                              std::string_view body,
                              std::string_view extra_headers = {});

// Reason phrase for the handful of codes the service emits ("OK",
// "Bad Request", ...); "Unknown" otherwise.
std::string_view StatusReason(int status_code);

// Writes all of `data` to `fd`, retrying short writes and EINTR, with
// SIGPIPE suppressed (MSG_NOSIGNAL + a process-wide SIG_IGN installed by
// the transport). The single write path shared by the server side
// (WriteResponse) and the client side (HttpGet, the router's ShardClient):
// a peer that disappears mid-response surfaces as Status::IOError on this
// connection, never as a process-killing signal.
Status SendAll(int fd, std::string_view data);

// Idempotently installs SIG_IGN for SIGPIPE. Bind() and HttpGet() call it;
// multi-process front ends (graft_server, graft_router) inherit the
// protection through their first socket operation.
void IgnoreSigpipeOnce();

// Appends `text` to `out` with JSON string escaping (quotes, backslash,
// control characters). Shared by the stats and search serializers.
void JsonAppendEscaped(std::string* out, std::string_view text);

// A blocking IPv4 listener. Shutdown protocol: Interrupt() may be called
// from any thread and unblocks a pending Accept (which then returns an
// error); Close() must only be called once no Accept is concurrently
// running (e.g. after joining the accept thread) — it releases the fd.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and
  // listens with `backlog`.
  Status Bind(uint16_t port, int backlog = 128);

  // The bound port (valid after a successful Bind).
  uint16_t port() const { return port_; }

  // Blocks for one connection; returns the connected socket fd, or an
  // error after Close(). The accepted socket carries `io_timeout_ms`
  // send/receive timeouts so a stalled peer cannot wedge a worker.
  StatusOr<int> Accept(int io_timeout_ms = 5000) const;

  // Thread-safe: unblocks a concurrent Accept without releasing the fd.
  void Interrupt();

  // Releases the fd. NOT safe concurrently with Accept.
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// Reads a request head from `fd` (until the blank line, capped at
// kMaxRequestHeadBytes) and parses it. Does not close the fd.
StatusOr<HttpRequest> ReadRequest(int fd);

// Writes the full serialized response to `fd`. Does not close the fd.
Status WriteResponse(int fd, int status_code, std::string_view content_type,
                     std::string_view body,
                     std::string_view extra_headers = {});

// --- client side (tests + load generator) ---

struct HttpClientResponse {
  int status_code = 0;
  std::string body;
  std::map<std::string, std::string> headers;  // keys lower-cased
};

// One blocking GET against 127.0.0.1:`port`. `target` is the raw
// request-target ("/search?q=foo%20bar&k=10"). `timeout_ms` bounds
// connect, send, and receive individually.
StatusOr<HttpClientResponse> HttpGet(uint16_t port, std::string_view target,
                                     int timeout_ms = 10000);

// Percent-encodes a query-parameter value.
std::string UrlEncode(std::string_view text);

}  // namespace graft::server

#endif  // GRAFT_SERVER_HTTP_H_
