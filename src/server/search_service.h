// The embedded HTTP search service: a long-lived server process around a
// loaded Engine, exposing
//
//   GET /search?q=<query>&scheme=<name>&k=<n>&threads=<n>&segments=<n>
//              [&deadline_ms=<n>]
//       -> 200 JSON: ranked results with scores, timings, and
//          segments_searched; 400/404 on any malformed input.
//   GET /stats   -> 200 JSON: cumulative counters + latency percentiles.
//   GET /healthz -> 200 {"status":"ok",...} (serving) — used by probes.
//
// Concurrency model (mirrors DESIGN.md §2c):
//   * one blocking accept thread; each accepted connection is one request
//     (Connection: close) handled as a task on a common::ThreadPool;
//   * admission control is connection-level: an atomic in-flight count
//     (running + queued handlers) is capped at max_inflight, and a
//     connection over the cap gets an immediate 503 written from the
//     accept thread — the pool queue can never grow beyond max_inflight,
//     so overload degrades into fast rejections, not latency collapse;
//   * per-request deadlines are measured from admission: a request whose
//     deadline elapsed while queued is answered 504 without touching the
//     engine, and one that exceeds it during execution is answered 504
//     after the fact (the engine is not preemptible mid-query);
//   * Shutdown() stops accepting, drains every admitted request to a
//     written response, then joins the pool — in-flight work is never
//     dropped (SIGINT/SIGTERM in graft_server map to exactly this).
//
// The Engine is shared by all handlers without locking: Engine::Search is
// const and thread-safe (inter-query parallelism), and scores are
// bit-identical to direct engine calls — tests/server pins that down.

#ifndef GRAFT_SERVER_SEARCH_SERVICE_H_
#define GRAFT_SERVER_SEARCH_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/request.h"
#include "ma/match_table.h"
#include "server/http.h"
#include "server/server_stats.h"

namespace graft::server {

struct ServiceOptions {
  // 0 = kernel-assigned ephemeral port (tests; read back via port()).
  uint16_t port = 0;
  // Handler pool workers. 0 = hardware concurrency.
  size_t handler_threads = 0;
  // Admission cap: max connections admitted but not yet answered
  // (queued + executing). Beyond it, connections get an immediate 503.
  size_t max_inflight = 64;
  // Deadline applied when the client sends no deadline_ms; client values
  // are clamped to max_deadline_ms.
  uint64_t default_deadline_ms = 2000;
  uint64_t max_deadline_ms = 30000;
  // k applied when the client sends no k (0 = all matching documents).
  size_t default_top_k = 10;
  size_t max_top_k = 10000;
  // Per-connection socket send/receive timeout.
  int io_timeout_ms = 5000;
  // Test hook: artificial delay (before the engine call) per /search, so
  // overload and deadline paths are deterministic to test. 0 in
  // production.
  uint64_t test_search_delay_ms = 0;
};

// A routed response before serialization.
struct Response {
  int status_code = 200;
  std::string content_type = "application/json";
  std::string body;
};

class SearchService {
 public:
  // `engine` must outlive the service.
  SearchService(const core::Engine* engine, ServiceOptions options);
  ~SearchService();

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  // Binds the listener and starts the accept thread + handler pool.
  Status Start();

  // Stops accepting, drains all admitted requests, joins every thread.
  // Idempotent; called by the destructor if still running.
  void Shutdown();

  // Valid after Start(); the actual bound port.
  uint16_t port() const { return listener_.port(); }

  const ServerStats& stats() const { return stats_; }

  // Routes one parsed request to a response. Pure apart from stats
  // recording; exposed so tests can drive the handler without sockets.
  // `queued_micros` is how long the request waited before handling;
  // `deadline_micros_left` < 0 means the deadline already elapsed.
  Response Handle(const HttpRequest& request, uint64_t queued_micros);

  // The exact `"results":[...]` JSON fragment for a result list — scores
  // rendered with %.17g round-trip precision. Tests compare this against
  // direct Engine calls byte-for-byte.
  static std::string FormatResultsFragment(
      const std::vector<ma::ScoredDoc>& results);

 private:
  void AcceptLoop();
  void HandleConnection(int fd,
                        std::chrono::steady_clock::time_point admitted);
  Response HandleSearch(const HttpRequest& request, uint64_t queued_micros);
  Response HandleStats() const;
  Response HandleHealthz() const;

  const core::Engine* engine_;
  const ServiceOptions options_;

  TcpListener listener_;
  std::unique_ptr<common::ThreadPool> pool_;
  std::thread accept_thread_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;

  // Admission/drain accounting.
  std::atomic<size_t> inflight_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  ServerStats stats_;
  std::chrono::steady_clock::time_point started_at_;
};

// Maps a library Status to the HTTP code the service answers with:
// InvalidArgument/OutOfRange -> 400, NotFound -> 404, everything else 500.
int HttpCodeForStatus(const Status& status);

// {"error":"<code name>","message":"..."} body for an error response.
std::string ErrorBody(const Status& status);

}  // namespace graft::server

#endif  // GRAFT_SERVER_SEARCH_SERVICE_H_
