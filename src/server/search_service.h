// The embedded HTTP search service: a long-lived server process around a
// loaded Engine, exposing
//
//   GET /search?q=<query>&scheme=<name>&k=<n>&threads=<n>&segments=<n>
//              [&deadline_ms=<n>]
//       -> 200 JSON: ranked results with scores, timings, and
//          segments_searched; 400/404 on any malformed input.
//       Adding &explain=1 appends an "explain" JSON block: the pinned
//       engine generation, every attempted rewrite with its gate verdict,
//       the full per-operator counters, and the span trace.
//       Router extras: &gstats=<encoded PinnedStats> installs the
//       router-pinned global collection statistics as a per-request
//       overlay (and forces monolithic execution), so this shard scores
//       bit-identically to a single-process run over the whole corpus;
//       &expect_gen=<g> answers 409 Conflict when this server's engine
//       generation differs (a reload raced the router's stats exchange),
//       so the router re-collects instead of merging mixed-stat scores.
//   GET /shard/stats?terms=<t1,t2,...> -> 200 JSON: this server's engine
//       generation, corpus doc/word counts, and per-term df/cf for the
//       requested terms — phase 1 of the router's two-phase stats
//       exchange (src/server/pinned_stats.h). Unknown terms report df=0.
//   GET /stats   -> 200 JSON: cumulative counters + latency percentiles
//                   + reload generation / degraded state.
//   GET /metrics -> 200 Prometheus text exposition of the same counters.
//   GET /healthz -> 200 {"status":"ok"|"degraded",...} — used by probes.
//   GET /admin/reload -> swap in a freshly loaded engine (see below).
//
// Concurrency model (mirrors DESIGN.md §2c):
//   * one blocking accept thread; each accepted connection is one request
//     (Connection: close) handled as a task on a common::ThreadPool;
//   * admission control is connection-level: an atomic in-flight count
//     (running + queued handlers) is capped at max_inflight, and a
//     connection over the cap gets an immediate 503 written from the
//     accept thread — the pool queue can never grow beyond max_inflight,
//     so overload degrades into fast rejections, not latency collapse;
//   * per-request deadlines are measured from admission: a request whose
//     deadline elapsed while queued is answered 504 without touching the
//     engine, and one that exceeds it during execution is answered 504
//     after the fact (the engine is not preemptible mid-query);
//   * 503 and 504 responses carry a Retry-After header so well-behaved
//     clients back off instead of hammering an overloaded server;
//   * Shutdown() stops accepting, drains every admitted request to a
//     written response, then joins the pool — in-flight work is never
//     dropped (SIGINT/SIGTERM in graft_server map to exactly this).
//
// Hot reload (DESIGN.md §2d): the engine is held behind a mutex-guarded
// shared_ptr snapshot (one uncontended pointer copy per request — noise
// next to parsing and execution, and clean under TSan, unlike
// std::atomic<shared_ptr>'s lock-bit protocol).
// Every request pins the generation it started on, so
// Reload() — driven by GET /admin/reload or SIGHUP in graft_server — swaps
// in a freshly loaded EngineBundle under full load with zero dropped
// requests; the old generation is destroyed when its last in-flight
// request finishes. Scores are bit-identical across the swap because the
// index file defines them. A FAILED reload (missing/corrupt/torn file, or
// an injected failpoint) leaves the current generation serving and flips
// the service into a visible "degraded" state on /stats + /healthz — the
// process never dies and never serves wrong data.

#ifndef GRAFT_SERVER_SEARCH_SERVICE_H_
#define GRAFT_SERVER_SEARCH_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/request.h"
#include "ma/match_table.h"
#include "server/http.h"
#include "server/server_stats.h"

namespace graft::server {

struct ServiceOptions {
  // 0 = kernel-assigned ephemeral port (tests; read back via port()).
  uint16_t port = 0;
  // Handler pool workers. 0 = hardware concurrency.
  size_t handler_threads = 0;
  // Admission cap: max connections admitted but not yet answered
  // (queued + executing). Beyond it, connections get an immediate 503.
  size_t max_inflight = 64;
  // Deadline applied when the client sends no deadline_ms; client values
  // are clamped to max_deadline_ms.
  uint64_t default_deadline_ms = 2000;
  uint64_t max_deadline_ms = 30000;
  // k applied when the client sends no k (0 = all matching documents).
  size_t default_top_k = 10;
  size_t max_top_k = 10000;
  // Per-connection socket send/receive timeout.
  int io_timeout_ms = 5000;
  // Seconds advertised in the Retry-After header of 503/504 responses.
  unsigned retry_after_s = 1;
  // Reload source: when non-empty, /admin/reload (and SIGHUP in
  // graft_server) reloads the bundle from this file with the partitioning
  // below. Empty = reload unsupported (e.g. in-memory test engines).
  std::string index_path;
  size_t segments = 1;        // reload partitioning (LoadEngineBundle arg)
  size_t engine_threads = 0;  // reload engine pool workers
  // Map the index (v5) instead of materializing it on load and reload.
  // The service keeps one BlockCache of block_cache_bytes across all
  // reload generations (old generations are erased from it on swap).
  bool mmap_index = false;
  size_t block_cache_bytes = size_t{64} << 20;
  // Slow-query log: a /search whose total latency (queued + handled)
  // reaches this many milliseconds is logged to stderr with its query,
  // scheme, and measured operator counters, and counted in
  // stats.slow_queries / graft_slow_queries_total. 0 disables the log.
  uint64_t slow_query_ms = 0;
  // Test hook: artificial delay (before the engine call) per /search, so
  // overload and deadline paths are deterministic to test. 0 in
  // production.
  uint64_t test_search_delay_ms = 0;
};

// A routed response before serialization.
struct Response {
  int status_code = 200;
  std::string content_type = "application/json";
  std::string body;
  // Non-zero => a "Retry-After: <n>" header is attached (503/504).
  unsigned retry_after_s = 0;
};

class SearchService {
 public:
  // Non-owning: `engine` must outlive the service. Reload is unsupported
  // in this mode regardless of options.index_path.
  SearchService(const core::Engine* engine, ServiceOptions options);

  // Owning: the service keeps the bundle (and every predecessor still
  // pinned by in-flight requests) alive via shared_ptr. Reload swaps it
  // for a fresh LoadEngineBundle(options.index_path, ...) product.
  SearchService(std::shared_ptr<const core::EngineBundle> bundle,
                ServiceOptions options);

  ~SearchService();

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  // Binds the listener and starts the accept thread + handler pool.
  Status Start();

  // Stops accepting, drains all admitted requests, joins every thread.
  // Idempotent; called by the destructor if still running.
  void Shutdown();

  // Loads a new EngineBundle from options.index_path and atomically swaps
  // it in (generation + 1). On failure the current generation keeps
  // serving, the degraded flag is raised, and the error is returned (and
  // surfaced on /stats). Thread-safe; concurrent reloads serialize.
  Status Reload();

  // Valid after Start(); the actual bound port.
  uint16_t port() const { return listener_.port(); }

  const ServerStats& stats() const { return stats_; }

  // Monotonic engine generation: 1 after construction, +1 per successful
  // reload.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // True while the most recent reload attempt failed (old generation still
  // serving).
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  // Routes one parsed request to a response. Pure apart from stats
  // recording; exposed so tests can drive the handler without sockets.
  // `queued_micros` is how long the request waited before handling;
  // `deadline_micros_left` < 0 means the deadline already elapsed.
  Response Handle(const HttpRequest& request, uint64_t queued_micros);

  // The exact `"results":[...]` JSON fragment for a result list — scores
  // rendered with %.17g round-trip precision. Tests compare this against
  // direct Engine calls byte-for-byte.
  static std::string FormatResultsFragment(
      const std::vector<ma::ScoredDoc>& results);

 private:
  void AcceptLoop();
  void HandleConnection(int fd,
                        std::chrono::steady_clock::time_point admitted);
  Response HandleSearch(const HttpRequest& request, uint64_t queued_micros);
  Response HandleShardStats(const HttpRequest& request);
  Response HandleStats() const;
  Response HandleMetrics() const;
  Response HandleHealthz() const;
  Response HandleReload();

  // The engine generation a request executes against: pinned once at the
  // top of the handler so a mid-request reload cannot mix generations.
  std::shared_ptr<const core::Engine> SnapshotEngine() const {
    std::lock_guard<std::mutex> lock(engine_mu_);
    return engine_;
  }

  const ServiceOptions options_;

  // Current engine, possibly aliasing into owned (reloadable) bundle
  // storage; the shared_ptr's control block keeps the whole bundle alive
  // for as long as any request still holds the snapshot. engine_mu_ covers
  // only the pointer copy/swap, never a load or a search.
  mutable std::mutex engine_mu_;
  std::shared_ptr<const core::Engine> engine_;

  mutable std::mutex reload_mu_;    // serializes Reload(); guards the below
  std::string last_reload_error_;   // empty unless degraded
  const bool reloadable_;           // owning ctor + non-empty index_path

  // Shared decoded-block cache for mmap_index mode: one cache across all
  // reload generations (created lazily on the first mapped load), so the
  // decoded working set stays bounded through hot reloads. Also the /stats
  // + /metrics source for cache counters.
  std::shared_ptr<index::BlockCache> block_cache_;

  std::atomic<uint64_t> generation_{1};
  std::atomic<bool> degraded_{false};

  TcpListener listener_;
  std::unique_ptr<common::ThreadPool> pool_;
  std::thread accept_thread_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;

  // Admission/drain accounting.
  std::atomic<size_t> inflight_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  ServerStats stats_;
  std::chrono::steady_clock::time_point started_at_;
};

// Maps a library Status to the HTTP code the service answers with:
// InvalidArgument/OutOfRange -> 400, NotFound -> 404, everything else 500.
int HttpCodeForStatus(const Status& status);

// {"error":"<code name>","message":"..."} body for an error response.
std::string ErrorBody(const Status& status);

}  // namespace graft::server

#endif  // GRAFT_SERVER_SEARCH_SERVICE_H_
