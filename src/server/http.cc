#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace graft::server {

namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// Strips one trailing '\r' (the parser splits on '\n').
std::string_view StripCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  return line;
}

Status SetSocketTimeouts(int fd, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError("setsockopt timeout failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

}  // namespace

void IgnoreSigpipeOnce() {
  // MSG_NOSIGNAL covers send(); SIG_IGN covers everything else (e.g. a
  // write on a connect()ed socket whose peer vanished between calls, or
  // platform paths that bypass send). Belt and suspenders: a dead peer
  // must be an IOError on one connection, never process death.
  static const bool ignored = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    return ::sigaction(SIGPIPE, &sa, nullptr) == 0;
  }();
  (void)ignored;
}

Status SendAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send failed: " +
                             std::string(std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<std::string> UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= text.size()) {
        return Status::InvalidArgument("truncated percent-escape");
      }
      const int hi = HexValue(text[i + 1]);
      const int lo = HexValue(text[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("invalid percent-escape in URL");
      }
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

StatusOr<HttpRequest> ParseRequestHead(std::string_view head) {
  HttpRequest request;

  const size_t line_end = head.find('\n');
  if (line_end == std::string_view::npos) {
    return Status::InvalidArgument("request line missing line terminator");
  }
  const std::string_view request_line = StripCr(head.substr(0, line_end));

  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Status::InvalidArgument("malformed request line");
  }
  request.method = std::string(request_line.substr(0, sp1));
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (request.method.empty() || target.empty()) {
    return Status::InvalidArgument("malformed request line");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported HTTP version: " +
                                   std::string(version));
  }
  if (target[0] != '/') {
    return Status::InvalidArgument("request target must be origin-form");
  }

  // Split target into path and query string.
  const size_t question = target.find('?');
  const std::string_view raw_path = target.substr(0, question);
  GRAFT_ASSIGN_OR_RETURN(request.path, UrlDecode(raw_path));
  if (question != std::string_view::npos) {
    std::string_view query = target.substr(question + 1);
    while (!query.empty()) {
      const size_t amp = query.find('&');
      const std::string_view pair = query.substr(0, amp);
      query = amp == std::string_view::npos ? std::string_view()
                                            : query.substr(amp + 1);
      if (pair.empty()) continue;
      const size_t eq = pair.find('=');
      const std::string_view raw_key = pair.substr(0, eq);
      const std::string_view raw_value =
          eq == std::string_view::npos ? std::string_view()
                                       : pair.substr(eq + 1);
      GRAFT_ASSIGN_OR_RETURN(std::string key, UrlDecode(raw_key));
      GRAFT_ASSIGN_OR_RETURN(std::string value, UrlDecode(raw_value));
      if (key.empty()) {
        return Status::InvalidArgument("empty query parameter name");
      }
      request.params[std::move(key)] = std::move(value);
    }
  }

  // Header lines.
  std::string_view rest = head.substr(line_end + 1);
  while (!rest.empty()) {
    const size_t next = rest.find('\n');
    const std::string_view line =
        StripCr(next == std::string_view::npos ? rest : rest.substr(0, next));
    rest = next == std::string_view::npos ? std::string_view()
                                          : rest.substr(next + 1);
    if (line.empty()) break;  // end of head
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line");
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.remove_suffix(1);
    }
    request.headers[ToLower(line.substr(0, colon))] = std::string(value);
  }
  return request;
}

std::string_view StatusReason(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string SerializeResponse(int status_code, std::string_view content_type,
                              std::string_view body,
                              std::string_view extra_headers) {
  std::string out;
  out.reserve(body.size() + 128 + extra_headers.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status_code);
  out += ' ';
  out += StatusReason(status_code);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n";
  out += extra_headers;  // each entry CRLF-terminated by the caller
  out += "\r\n";
  out += body;
  return out;
}

void JsonAppendEscaped(std::string* out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

TcpListener::~TcpListener() { Close(); }

Status TcpListener::Bind(uint16_t port, int backlog) {
  IgnoreSigpipeOnce();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError("socket failed: " +
                           std::string(std::strerror(errno)));
  }
  const int one = 1;
  (void)setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // EADDRINUSE gets a precise, actionable message: startup must fail
    // fast and say which port is taken, not hang or report a vague errno.
    const Status status =
        errno == EADDRINUSE
            ? Status::IOError("port " + std::to_string(port) +
                              " is already in use on 127.0.0.1 (pick "
                              "another --port or stop the other process)")
            : Status::IOError("bind failed: " +
                              std::string(std::strerror(errno)));
    Close();
    return status;
  }
  if (::listen(fd_, backlog) != 0) {
    const Status status = Status::IOError(
        "listen failed: " + std::string(std::strerror(errno)));
    Close();
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status status = Status::IOError(
        "getsockname failed: " + std::string(std::strerror(errno)));
    Close();
    return status;
  }
  port_ = ntohs(addr.sin_port);
  return Status::Ok();
}

StatusOr<int> TcpListener::Accept(int io_timeout_ms) const {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("accept failed: " +
                             std::string(std::strerror(errno)));
    }
    const Status timeouts = SetSocketTimeouts(fd, io_timeout_ms);
    if (!timeouts.ok()) {
      ::close(fd);
      return timeouts;
    }
    return fd;
  }
}

void TcpListener::Interrupt() {
  if (fd_ >= 0) {
    // shutdown() makes a blocked (or future) accept() on fd_ fail with
    // EINVAL without invalidating the fd number, so a concurrent Accept
    // never touches a recycled descriptor.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<HttpRequest> ReadRequest(int fd) {
  std::string head;
  head.reserve(512);
  char buf[2048];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    if (head.size() > kMaxRequestHeadBytes) {
      return Status::InvalidArgument("request head too large");
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("timed out reading request");
      }
      return Status::IOError("recv failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      if (head.empty()) {
        return Status::IOError("connection closed before request");
      }
      return Status::InvalidArgument("connection closed mid-request");
    }
    head.append(buf, static_cast<size_t>(n));
  }
  GRAFT_ASSIGN_OR_RETURN(HttpRequest request, ParseRequestHead(head));
  const auto content_length = request.headers.find("content-length");
  if (content_length != request.headers.end() &&
      content_length->second != "0") {
    return Status::InvalidArgument("request bodies are not supported");
  }
  return request;
}

Status WriteResponse(int fd, int status_code, std::string_view content_type,
                     std::string_view body, std::string_view extra_headers) {
  return SendAll(
      fd, SerializeResponse(status_code, content_type, body, extra_headers));
}

std::string UrlEncode(std::string_view text) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    const bool unreserved = (u >= 'A' && u <= 'Z') || (u >= 'a' && u <= 'z') ||
                            (u >= '0' && u <= '9') || u == '-' || u == '_' ||
                            u == '.' || u == '~';
    if (unreserved) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    }
  }
  return out;
}

StatusOr<HttpClientResponse> HttpGet(uint16_t port, std::string_view target,
                                     int timeout_ms) {
  IgnoreSigpipeOnce();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket failed: " +
                           std::string(std::strerror(errno)));
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  GRAFT_RETURN_IF_ERROR(SetSocketTimeouts(fd, timeout_ms));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError("connect failed: " +
                           std::string(std::strerror(errno)));
  }

  std::string request = "GET ";
  request += target;
  request += " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  GRAFT_RETURN_IF_ERROR(SendAll(fd, request));

  std::string raw;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("timed out reading response");
      }
      return Status::IOError("recv failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
    if (raw.size() > (64u << 20)) {
      return Status::OutOfRange("response too large");
    }
  }

  // "HTTP/1.1 200 OK\r\n...\r\n\r\n<body>"
  if (raw.size() < 12 || raw.compare(0, 5, "HTTP/") != 0) {
    return Status::DataLoss("malformed HTTP response");
  }
  HttpClientResponse response;
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    return Status::DataLoss("malformed HTTP status line");
  }
  response.status_code = std::atoi(raw.c_str() + sp + 1);
  size_t body_start = raw.find("\r\n\r\n");
  size_t skip = 4;
  if (body_start == std::string::npos) {
    body_start = raw.find("\n\n");
    skip = 2;
  }
  if (body_start == std::string::npos) {
    return Status::DataLoss("HTTP response missing header terminator");
  }
  // Capture response headers (lower-cased names) so clients and tests can
  // assert on them, e.g. Retry-After on 503/504.
  const std::string_view head(raw.data(), body_start);
  size_t line_start = head.find('\n');
  while (line_start != std::string_view::npos && line_start + 1 < head.size()) {
    const size_t line_end_raw = head.find('\n', line_start + 1);
    const size_t line_end =
        line_end_raw == std::string_view::npos ? head.size() : line_end_raw;
    std::string_view line = head.substr(line_start + 1, line_end - line_start - 1);
    line = StripCr(line);
    const size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string_view value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
      response.headers[ToLower(line.substr(0, colon))] = std::string(value);
    }
    line_start = line_end_raw;
  }
  response.body = raw.substr(body_start + skip);
  return response;
}

}  // namespace graft::server
