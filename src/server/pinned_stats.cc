#include "server/pinned_stats.h"

#include <cstdlib>

namespace graft::server {

namespace {

// Codec-level escaping: keeps ';' (record separator) and ':' (field
// separator) unambiguous for arbitrary term text, independent of the URL
// percent-encoding applied by the HTTP layer on top.
void AppendEscapedTerm(std::string* out, std::string_view term) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  for (const char c : term) {
    if (c == '%' || c == ':' || c == ';') {
      const unsigned char u = static_cast<unsigned char>(c);
      out->push_back('%');
      out->push_back(kHex[u >> 4]);
      out->push_back(kHex[u & 0xF]);
    } else {
      out->push_back(c);
    }
  }
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

StatusOr<std::string> UnescapeTerm(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c != '%') {
      out.push_back(c);
      continue;
    }
    if (i + 2 >= text.size()) {
      return Status::InvalidArgument("pinned stats: truncated term escape");
    }
    const int hi = HexValue(text[i + 1]);
    const int lo = HexValue(text[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("pinned stats: invalid term escape");
    }
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

// Strict uint64 parse: digits only, no signs, no empties, no trailing
// garbage (the same drift-prevention stance as core::ParseCount, but for
// 64-bit corpus counters).
StatusOr<uint64_t> ParseU64(std::string_view text, const char* what) {
  if (text.empty()) {
    return Status::InvalidArgument(std::string("pinned stats: empty ") + what);
  }
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("pinned stats: bad ") + what +
                                     ": '" + std::string(text) + "'");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument(std::string("pinned stats: ") + what +
                                     " overflows uint64");
    }
    value = value * 10 + digit;
  }
  return value;
}

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  while (true) {
    const size_t pos = text.find(sep);
    parts.push_back(text.substr(0, pos));
    if (pos == std::string_view::npos) break;
    text = text.substr(pos + 1);
  }
  return parts;
}

}  // namespace

std::string EncodePinnedStats(const PinnedStats& stats) {
  std::string out;
  out.reserve(24 + stats.terms.size() * 24);
  out += std::to_string(stats.doc_count);
  out += ';';
  out += std::to_string(stats.total_words);
  for (const PinnedTermStats& term : stats.terms) {
    out += ';';
    AppendEscapedTerm(&out, term.term);
    out += ':';
    out += std::to_string(term.doc_freq);
    out += ':';
    out += std::to_string(term.collection_freq);
  }
  return out;
}

StatusOr<PinnedStats> DecodePinnedStats(std::string_view encoded) {
  const std::vector<std::string_view> records = Split(encoded, ';');
  if (records.size() < 2) {
    return Status::InvalidArgument(
        "pinned stats: expected '<docs>;<words>[;term:df:cf]...'");
  }
  PinnedStats stats;
  GRAFT_ASSIGN_OR_RETURN(stats.doc_count, ParseU64(records[0], "doc_count"));
  GRAFT_ASSIGN_OR_RETURN(stats.total_words,
                         ParseU64(records[1], "total_words"));
  stats.terms.reserve(records.size() - 2);
  for (size_t i = 2; i < records.size(); ++i) {
    const std::vector<std::string_view> fields = Split(records[i], ':');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          "pinned stats: term record is not 'term:df:cf': '" +
          std::string(records[i]) + "'");
    }
    PinnedTermStats term;
    GRAFT_ASSIGN_OR_RETURN(term.term, UnescapeTerm(fields[0]));
    if (term.term.empty()) {
      return Status::InvalidArgument("pinned stats: empty term");
    }
    GRAFT_ASSIGN_OR_RETURN(term.doc_freq, ParseU64(fields[1], "doc_freq"));
    GRAFT_ASSIGN_OR_RETURN(term.collection_freq,
                           ParseU64(fields[2], "collection_freq"));
    stats.terms.push_back(std::move(term));
  }
  return stats;
}

index::StatsOverlay ToOverlay(const PinnedStats& stats) {
  index::StatsOverlay overlay;
  overlay.SetCollectionSize(stats.doc_count);
  overlay.SetTotalWords(stats.total_words);
  for (const PinnedTermStats& term : stats.terms) {
    overlay.SetDocFreq(term.term, term.doc_freq);
    overlay.SetCollectionFreq(term.term, term.collection_freq);
  }
  return overlay;
}

}  // namespace graft::server
